// Randomized cross-validation sweeps: on seeded random graphs, the
// three oracles — the Corollary 3.1 predicate, the exhaustive optimal
// search, and the actual algorithms (SymmRV with known parameters,
// AsymmRV) — must tell one consistent story.
#include <gtest/gtest.h>

#include "analysis/optimal_search.hpp"
#include "analysis/stics.hpp"
#include "core/asymm_rv.hpp"
#include "core/bounds.hpp"
#include "core/signature.hpp"
#include "core/symm_rv.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "uxs/corpus.hpp"
#include "uxs/verifier.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

namespace rdv {
namespace {

using graph::Graph;
using graph::Node;
namespace families = rdv::graph::families;

class RandomGraphSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomGraphSweep, OptimalSearchMatchesPredicateOnSymmetricPairs) {
  const std::uint64_t seed = GetParam();
  const Graph g = families::random_connected(6, 3, seed);
  const auto classes = views::compute_view_classes(g);
  for (Node u = 0; u < g.size(); ++u) {
    for (Node v = 0; v < g.size(); ++v) {
      if (u == v || !classes.symmetric(u, v)) continue;
      const std::uint32_t s = views::shrink(g, u, v);
      for (std::uint64_t delay = 0; delay <= s + 1 && delay <= 3;
           ++delay) {
        analysis::OptimalSearchConfig config;
        config.horizon = 4096;
        const auto r = analysis::optimal_oblivious(g, u, v, delay,
                                                   config);
        EXPECT_EQ(r.outcome == analysis::OptimalOutcome::kMet,
                  delay >= s)
            << g.name() << " (" << u << "," << v << ") delay " << delay;
      }
    }
  }
}

TEST_P(RandomGraphSweep, SymmRVMeetsAllSymmetricPairsAtShrink) {
  const std::uint64_t seed = GetParam();
  const Graph g = families::random_connected(7, 4, seed);
  const uxs::Uxs y = uxs::covering_uxs(g);
  ASSERT_TRUE(uxs::is_uxs_for(g, y));
  const auto classes = views::compute_view_classes(g);
  for (const auto& [u, v] : views::symmetric_pairs(g, classes)) {
    const std::uint32_t s = views::shrink(g, u, v);
    sim::RunConfig config;
    config.max_rounds = support::sat_mul(
        4, core::symm_rv_time_bound(g.size(), s, s, y.length()));
    const auto r = sim::run_anonymous(
        g, core::symm_rv_program(g.size(), s, s, y), u, v, s, config);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.met) << g.name() << " (" << u << "," << v << ")";
  }
}

TEST_P(RandomGraphSweep, AsymmRVMeetsSampledNonsymmetricPairs) {
  const std::uint64_t seed = GetParam();
  const Graph g = families::random_connected(8, 5, seed + 100);
  const uxs::Uxs y = uxs::covering_uxs(g);
  ASSERT_TRUE(uxs::is_uxs_for(g, y));
  const auto classes = views::compute_view_classes(g);
  std::size_t tested = 0;
  for (Node u = 0; u < g.size() && tested < 6; ++u) {
    for (Node v = u + 1; v < g.size() && tested < 6; v += 3) {
      if (classes.symmetric(u, v)) continue;
      for (const std::uint64_t delay : {0ull, 1ull}) {
        const std::uint64_t budget =
            core::asymm_rv_time_bound(g.size(), delay, y.length());
        sim::RunConfig config;
        config.max_rounds =
            support::sat_add(support::sat_mul(2, budget), delay);
        const auto r = sim::run_anonymous(
            g, core::asymm_rv_program(g.size(), y, budget), u, v, delay,
            config);
        ASSERT_TRUE(r.ok()) << r.error;
        EXPECT_TRUE(r.met)
            << g.name() << " (" << u << "," << v << ") delay " << delay;
      }
      ++tested;
    }
  }
  EXPECT_GT(tested, 0u) << g.name();
}

TEST_P(RandomGraphSweep, SignatureSeparationHolds) {
  // The empirical pillar of the AsymmRV substitution, stress-tested on
  // random instances beyond the fixed corpus.
  const std::uint64_t seed = GetParam();
  for (const std::uint32_t n : {6u, 9u}) {
    const Graph g = families::random_connected(n, n / 2, seed + 7 * n);
    const uxs::Uxs y = uxs::covering_uxs(g);
    ASSERT_TRUE(uxs::is_uxs_for(g, y)) << g.name();
    const auto classes = views::compute_view_classes(g);
    for (Node u = 0; u < g.size(); ++u) {
      for (Node v = u + 1; v < g.size(); ++v) {
        const bool sig_eq = core::signature_offline(g, u, n, y) ==
                            core::signature_offline(g, v, n, y);
        EXPECT_EQ(sig_eq, classes.symmetric(u, v))
            << g.name() << " (" << u << "," << v << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSweep,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

}  // namespace
}  // namespace rdv
