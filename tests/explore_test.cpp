#include <gtest/gtest.h>

#include "core/explore.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"

namespace rdv::core {
namespace {

using graph::Graph;
using graph::Node;
using sim::AgentProgram;
using sim::Mailbox;
using sim::Observation;
using sim::Proc;
using sim::RunConfig;
using sim::RunResult;
namespace families = rdv::graph::families;

/// Earlier agent runs one Explore; the later agent sleeps somewhere
/// unreachable-by-meeting so we can inspect pure Explore behaviour.
AgentProgram explore_once(std::uint32_t d, std::uint64_t delta,
                          bool* completed, std::uint64_t* rounds_used) {
  return [=](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2, std::uint32_t d2, std::uint64_t delta2,
              bool* comp, std::uint64_t* used) -> Proc {
      const std::uint64_t start = mb2.clock();
      co_await explore(mb2, d2, delta2, kNoDeadline, 0, comp);
      *used = mb2.clock() - start;
    }(mb, d, delta, completed, rounds_used);
  };
}

AgentProgram sleeper() {
  return [](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2) -> Proc {
      co_await mb2.wait(support::kRoundInfinity);
    }(mb);
  };
}

/// Number of paths of length d from u (product of degrees along all
/// branches), by observer-side DFS — the exact iteration count of
/// Explore.
std::uint64_t count_paths(const Graph& g, Node u, std::uint32_t d) {
  if (d == 0) return 1;
  std::uint64_t total = 0;
  for (graph::Port p = 0; p < g.degree(u); ++p) {
    total += count_paths(g, g.step(u, p).to, d - 1);
  }
  return total;
}

TEST(Explore, RoundsMatchLemmaAccounting) {
  // Each path iteration costs exactly d + delta rounds (Lemma 3.2's
  // accounting), so a full Explore costs (#paths) * (d + delta).
  const Graph g = families::random_connected(7, 4, 5);
  for (std::uint32_t d : {1u, 2u, 3u}) {
    for (std::uint64_t delta : {static_cast<std::uint64_t>(d),
                                static_cast<std::uint64_t>(d + 2)}) {
      bool completed = false;
      std::uint64_t used = 0;
      RunConfig config;
      config.max_rounds = 1u << 22;
      // The sleeper never spawns (huge delay): we measure Explore pure.
      const RunResult r =
          sim::run_pair(g, explore_once(d, delta, &completed, &used),
                        sleeper(), 0, 1, support::kRoundInfinity - 8,
                        config);
      ASSERT_TRUE(r.ok()) << r.error;
      EXPECT_TRUE(completed);
      EXPECT_EQ(used, count_paths(g, 0, d) * (d + delta))
          << "d=" << d << " delta=" << delta;
    }
  }
}

TEST(Explore, ReturnsToStartEveryTime) {
  const Graph g = families::oriented_ring(5);
  bool completed = false;
  std::uint64_t used = 0;
  const RunResult r = sim::run_pair(
      g, explore_once(3, 5, &completed, &used), sleeper(), 0, 2,
      support::kRoundInfinity - 8);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(completed);
  // The agent's final position is its start node.
  EXPECT_EQ(r.final_pos[0], 0u);
}

TEST(Explore, VisitsEveryNodeWithinRadius) {
  // Explore(u, d, ...) traverses ALL paths of length d, so every node
  // at distance <= d is visited: place the sleeper at each such node
  // and expect a meet.
  const Graph g = families::balanced_tree(2, 2);
  const auto dist = graph::bfs_distances(g, 0);
  for (Node v = 1; v < g.size(); ++v) {
    bool completed = false;
    std::uint64_t used = 0;
    const RunResult r = sim::run_pair(
        g, explore_once(2, 2, &completed, &used), sleeper(), 0, v, 0);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.met, dist[v] <= 2) << "node " << v;
  }
}

TEST(Explore, DZeroIsPureWait) {
  const Graph g = families::path_graph(3);
  bool completed = false;
  std::uint64_t used = 0;
  const RunResult r = sim::run_pair(
      g, explore_once(0, 6, &completed, &used), sleeper(), 0, 2, 0);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(completed);
  EXPECT_EQ(used, 6u);
  EXPECT_EQ(r.moves[0], 0u);
}

TEST(Explore, RejectsDeltaBelowD) {
  const Graph g = families::path_graph(3);
  bool completed = false;
  std::uint64_t used = 0;
  const RunResult r = sim::run_pair(
      g, explore_once(3, 1, &completed, &used), sleeper(), 0, 2, 0);
  EXPECT_FALSE(r.ok());  // the invalid_argument surfaces as an error
}

TEST(Explore, BudgetTruncationKeepsAgentHome) {
  const Graph g = families::oriented_ring(6);
  AgentProgram prog = [](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2) -> Proc {
      bool completed = true;
      // Budget for only a couple of iterations of cost (2+4)=6 each.
      co_await explore(mb2, 2, 4, /*end_clock=*/13, /*reserve=*/0,
                       &completed);
      EXPECT_FALSE(completed);
      EXPECT_LE(mb2.clock(), 13u);
      // Level off the rest of the budget at home.
      if (mb2.clock() < 13) co_await mb2.wait(13 - mb2.clock());
    }(mb);
  };
  const RunResult r = sim::run_pair(g, prog, sleeper(), 0, 3, 0);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.final_pos[0], 0u);
}

TEST(Explore, LexicographicOrderIsRespected) {
  // On the oriented ring the first path of length 2 is (0,0) and the
  // last is (1,1); record the sequence of visited nodes and check the
  // first and last excursions.
  const Graph g = families::oriented_ring(7);
  RunConfig config;
  config.record_trace = true;
  bool completed = false;
  std::uint64_t used = 0;
  const RunResult r =
      sim::run_pair(g, explore_once(2, 2, &completed, &used), sleeper(),
                    0, 3, 0, config);
  ASSERT_TRUE(r.ok()) << r.error;
  // Trace: spawns, then moves. First excursion: 0 ->1 ->2 ->1 ->0
  // (path (0,0) out and back).
  std::vector<Node> moves;
  for (const auto& e : r.trace.events()) {
    if (e.agent == 0 && e.via_port != sim::kNoPort) moves.push_back(e.node);
  }
  ASSERT_GE(moves.size(), 4u);
  EXPECT_EQ(moves[0], 1u);
  EXPECT_EQ(moves[1], 2u);
  EXPECT_EQ(moves[2], 1u);
  EXPECT_EQ(moves[3], 0u);
  // Last excursion (path (1,1)): 0 ->6 ->5 ->6 ->0.
  const std::size_t m = moves.size();
  EXPECT_EQ(moves[m - 4], 6u);
  EXPECT_EQ(moves[m - 3], 5u);
  EXPECT_EQ(moves[m - 2], 6u);
  EXPECT_EQ(moves[m - 1], 0u);
}

}  // namespace
}  // namespace rdv::core
