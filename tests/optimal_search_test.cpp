#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/optimal_search.hpp"
#include "analysis/stics.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

namespace rdv::analysis {
namespace {

using graph::Graph;
using graph::Node;
namespace families = rdv::graph::families;

TEST(OptimalSearch, TwoNodeDelayedMeetsInstantly) {
  // Delay 1 on the two-node graph: "move every round" meets the moment
  // the later agent spawns — optimal time 0 (string: move at round 0).
  const Graph g = families::two_node_graph();
  const OptimalResult r = optimal_oblivious(g, 0, 1, 1);
  EXPECT_EQ(r.outcome, OptimalOutcome::kMet);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(OptimalSearch, TwoNodeSimultaneousProvenInfeasible) {
  // Lemma 3.1 at delta = 0 < Shrink = 1: the search drains the entire
  // joint state space without a meet — an exhaustive impossibility
  // certificate.
  const Graph g = families::two_node_graph();
  const OptimalResult r = optimal_oblivious(g, 0, 1, 0);
  EXPECT_EQ(r.outcome, OptimalOutcome::kProvenInfeasible);
}

TEST(OptimalSearch, RingBelowShrinkProvenInfeasible) {
  // ring(6), pair (0,3): Shrink = 3; delays 0..2 are all infeasible.
  const Graph g = families::oriented_ring(6);
  ASSERT_EQ(views::shrink(g, 0, 3), 3u);
  for (std::uint64_t delay = 0; delay <= 2; ++delay) {
    OptimalSearchConfig config;
    config.horizon = 1u << 20;  // irrelevant: the space drains first
    const OptimalResult r = optimal_oblivious(g, 0, 3, delay, config);
    EXPECT_EQ(r.outcome, OptimalOutcome::kProvenInfeasible)
        << "delay " << delay;
  }
}

TEST(OptimalSearch, RingAtShrinkMeets) {
  const Graph g = families::oriented_ring(6);
  const OptimalResult r = optimal_oblivious(g, 0, 3, 3);
  EXPECT_EQ(r.outcome, OptimalOutcome::kMet);
  // A dedicated optimal algorithm meets at time 0: the earlier agent
  // walks 3 steps toward v during the delay and waits there.
  EXPECT_EQ(r.rounds, 0u);
}

TEST(OptimalSearch, MatchesCharacterizationOnSmallGraphs) {
  // The ground-truth cross-check of Corollary 3.1: for symmetric pairs
  // the optimal-oblivious search is exact over ALL algorithms, so
  // met <-> feasible must coincide. For nonsymmetric pairs oblivious
  // strings still suffice (dedicated: walk the earlier agent onto v
  // during the delay... only with delay > 0; at delay 0 a nonsymmetric
  // pair needs observations in general, so we only require
  // met -> feasible there).
  const std::vector<Graph> corpus = {
      families::oriented_ring(4),
      families::oriented_ring(5),
      families::two_node_graph(),
      families::path_graph(4),
      families::symmetric_double_tree(1, 1),
  };
  for (const Graph& g : corpus) {
    const auto classes = views::compute_view_classes(g);
    for (Node u = 0; u < g.size(); ++u) {
      for (Node v = 0; v < g.size(); ++v) {
        if (u == v) continue;
        for (std::uint64_t delay = 0; delay <= 3; ++delay) {
          OptimalSearchConfig config;
          config.horizon = 4096;
          const auto cls = classify_stic(g, classes, Stic{u, v, delay});
          const OptimalResult r =
              optimal_oblivious(g, u, v, delay, config);
          if (cls.symmetric) {
            EXPECT_EQ(r.outcome == OptimalOutcome::kMet, cls.feasible)
                << g.name() << " [(" << u << "," << v << ")," << delay
                << "]";
          } else if (r.outcome == OptimalOutcome::kMet) {
            EXPECT_TRUE(cls.feasible);
          }
        }
      }
    }
  }
}

TEST(OptimalSearch, SymmetricDoubleTreeDelayOneMeets) {
  const Graph g = families::symmetric_double_tree(2, 1);
  const Node v = families::double_tree_mirror(g, 0);
  const OptimalResult r = optimal_oblivious(g, 0, v, 1);
  EXPECT_EQ(r.outcome, OptimalOutcome::kMet);
}

TEST(OptimalSearch, WitnessReplaysToTheSameMeeting) {
  // Cross-validation searcher <-> engine: the reconstructed optimal
  // action string, executed by both agents through the simulator, must
  // meet at exactly the searched optimum.
  const std::vector<Graph> corpus = {
      families::oriented_ring(6),
      families::two_node_graph(),
      families::symmetric_double_tree(2, 1),
      families::grid(2, 3),
      families::hypercube(3),
  };
  for (const Graph& g : corpus) {
    const auto classes = views::compute_view_classes(g);
    for (Node v = 1; v < std::min<Node>(g.size(), 4); ++v) {
      for (std::uint64_t delay = 0; delay <= 2; ++delay) {
        OptimalSearchConfig config;
        config.horizon = 512;
        config.want_witness = true;
        const OptimalResult r = optimal_oblivious(g, 0, v, delay, config);
        if (r.outcome != OptimalOutcome::kMet) continue;
        ASSERT_EQ(r.witness.size(), delay + r.rounds)
            << g.name() << " v=" << v << " delay=" << delay;
        sim::RunConfig run_config;
        run_config.max_rounds = delay + r.rounds + 8;
        const sim::RunResult run = sim::run_anonymous(
            g, oblivious_program(r.witness), 0, v, delay, run_config);
        ASSERT_TRUE(run.ok()) << run.error;
        EXPECT_TRUE(run.met) << g.name() << " v=" << v << " d=" << delay;
        EXPECT_EQ(run.meet_from_later_start, r.rounds)
            << g.name() << " v=" << v << " delay=" << delay;
      }
    }
  }
}

TEST(OptimalSearch, WitnessIsShortestByBfs) {
  // BFS explores by level, so no shorter string can meet: verify by
  // replaying every strict prefix of the witness (truncated strings
  // cannot have met earlier, or BFS would have found them).
  const Graph g = families::oriented_ring(5);
  OptimalSearchConfig config;
  config.want_witness = true;
  const OptimalResult r = optimal_oblivious(g, 0, 2, 2, config);
  ASSERT_EQ(r.outcome, OptimalOutcome::kMet);
  ASSERT_EQ(r.witness.size(), 2 + r.rounds);
  // Replay with the last action removed: must NOT meet within the
  // shorter horizon.
  if (!r.witness.empty() && r.rounds > 0) {
    auto shorter = r.witness;
    shorter.pop_back();
    sim::RunConfig run_config;
    run_config.max_rounds = shorter.size();
    const sim::RunResult run = sim::run_anonymous(
        g, oblivious_program(shorter), 0, 2, 2, run_config);
    ASSERT_TRUE(run.ok());
    EXPECT_FALSE(run.met);
  }
}

TEST(OptimalSearch, GuardsStateSpace) {
  const Graph g = families::complete(8);  // alphabet 8: 8^6 buffers
  OptimalSearchConfig config;
  config.max_states = 1000;
  EXPECT_THROW(optimal_oblivious(g, 0, 1, 6, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace rdv::analysis
