#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "support/saturating.hpp"

namespace rdv::core {
namespace {

TEST(SymmBound, MatchesLemma33Formula) {
  // T(n,d,delta) = [(d+delta)(n-1)^d](M+2) + 2(M+1).
  // n=4, d=2, delta=3, M=10: (5 * 9) * 12 + 22 = 562.
  EXPECT_EQ(symm_rv_time_bound(4, 2, 3, 10), 562u);
  // n=2, d=1, delta=1, M=8: (2 * 1) * 10 + 18 = 38.
  EXPECT_EQ(symm_rv_time_bound(2, 1, 1, 8), 38u);
}

TEST(SymmBound, SaturatesGracefully) {
  EXPECT_EQ(symm_rv_time_bound(100, 50, 10, 1000),
            support::kRoundInfinity);
}

TEST(SymmBound, MonotoneInEachParameter) {
  const std::uint64_t base = symm_rv_time_bound(5, 2, 3, 16);
  EXPECT_LT(base, symm_rv_time_bound(6, 2, 3, 16));
  EXPECT_LT(base, symm_rv_time_bound(5, 3, 3, 16));
  EXPECT_LT(base, symm_rv_time_bound(5, 2, 4, 16));
  EXPECT_LT(base, symm_rv_time_bound(5, 2, 3, 17));
}

TEST(ExploreReturn, Formula) {
  EXPECT_EQ(explore_return_rounds(0), 2u);
  EXPECT_EQ(explore_return_rounds(10), 22u);
}

TEST(SignatureBits, Formula) {
  // (M+1) arrivals * 2 fields * bits_for(n).
  EXPECT_EQ(asymm_signature_bits(8, 10), 11u * 2 * 4);
  EXPECT_EQ(asymm_signature_bits(2, 0), 1u * 2 * 2);
}

TEST(AsymmBound, GrowsPolynomiallyInDelta) {
  const std::uint64_t M = 16;
  const std::uint64_t at0 = asymm_rv_time_bound(6, 0, M);
  const std::uint64_t at100 = asymm_rv_time_bound(6, 100, M);
  const std::uint64_t at10000 = asymm_rv_time_bound(6, 10000, M);
  EXPECT_LE(at0, at100);
  EXPECT_LE(at100, at10000);
  // Doubling blocks: the bound is O(bits * (E + delta)), far below
  // exponential: for delta = 10^4 it stays under bits * 8 * (2E+delta).
  const std::uint64_t E = explore_return_rounds(M);
  const std::uint64_t bits = asymm_signature_bits(6, M);
  EXPECT_LE(at10000, E + bits * 8 * (2 * E + 10000));
}

TEST(AsymmBound, CoversCriticalBlock) {
  // The bound must include a full phase whose block length reaches
  // 2E + delta (the meeting guarantee's requirement).
  const std::uint64_t M = 8;
  const std::uint64_t E = explore_return_rounds(M);
  const std::uint64_t bits = asymm_signature_bits(4, M);
  for (const std::uint64_t delta : {0ull, 5ull, 99ull, 4096ull}) {
    std::uint64_t needed = E;
    for (std::uint32_t p = 0;; ++p) {
      const std::uint64_t block = E << (p + 2);
      needed += bits * block;
      if (block >= 2 * E + delta) break;
    }
    EXPECT_EQ(asymm_rv_time_bound(4, delta, M), needed);
  }
}

TEST(PhaseDuration, ZeroWhenDGeN) {
  EXPECT_EQ(universal_phase_duration(3, 3, 1, 8), 0u);
  EXPECT_EQ(universal_phase_duration(2, 5, 1, 8), 0u);
}

TEST(PhaseDuration, AsymmOnlyWhenDeltaBelowD) {
  const std::uint64_t M = 8;
  const std::uint64_t asymm_only = universal_phase_duration(5, 3, 2, M);
  EXPECT_EQ(asymm_only, 2 * (asymm_rv_time_bound(5, 2, M) + 2));
}

TEST(PhaseDuration, AddsSymmArmWhenDeltaGeD) {
  const std::uint64_t M = 8;
  const std::uint64_t full = universal_phase_duration(5, 2, 3, M);
  EXPECT_EQ(full, 2 * (asymm_rv_time_bound(5, 3, M) + 3) +
                      symm_rv_time_bound(5, 2, 3, M));
}

}  // namespace
}  // namespace rdv::core
