#include <gtest/gtest.h>

#include "core/explore.hpp"
#include "graph/families/families.hpp"
#include "sim/multi_engine.hpp"
#include "support/saturating.hpp"
#include "uxs/corpus.hpp"
#include "uxs/uxs.hpp"

namespace rdv::sim {
namespace {

using graph::Graph;
using graph::Node;
namespace families = rdv::graph::families;

AgentProgram sleeper() {
  return [](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2) -> Proc {
      co_await mb2.wait(support::kRoundInfinity);
    }(mb);
  };
}

AgentProgram forward_forever() {
  return [](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2) -> Proc {
      for (;;) co_await mb2.move(0);
    }(mb);
  };
}

/// Walk to a fixed port once, then halt there.
AgentProgram step_once(graph::Port p) {
  return [p](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2, graph::Port port) -> Proc {
      co_await mb2.move(port);
      co_await mb2.wait(support::kRoundInfinity);
    }(mb, p);
  };
}

TEST(MultiEngine, ThreeAgentsGatherOnPath) {
  const Graph g = families::path_graph(3);
  std::vector<AgentSpec> specs;
  specs.push_back({step_once(0), 0, 0});   // 0 -> 1 (its only port)
  specs.push_back({sleeper(), 1, 0});      // stays at 1
  specs.push_back({step_once(0), 2, 2});   // spawns late, 2 -> 1
  const MultiRunResult r = run_multi(g, specs);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.gathered);
  EXPECT_EQ(r.gather_round_absolute, 3u);  // last agent moves at round 3
  EXPECT_EQ(r.gather_from_last_start, 1u);
  // Pairwise: agents 0 and 1 met at round 1 already.
  EXPECT_EQ(r.meeting_of(0, 1, 3), 1u);
  EXPECT_EQ(r.meeting_of(0, 2, 3), 3u);
}

TEST(MultiEngine, RotatingRingNeverGathers) {
  const Graph g = families::oriented_ring(6);
  std::vector<AgentSpec> specs;
  for (const Node start : {Node{0}, Node{2}, Node{4}}) {
    specs.push_back({forward_forever(), start, 0});
  }
  MultiRunConfig config;
  config.max_rounds = 2000;
  const MultiRunResult r = run_multi(g, specs, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.gathered);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      EXPECT_EQ(r.meeting_of(i, j, 3), kNever);
    }
  }
}

TEST(MultiEngine, WaitingForMommy) {
  // The paper's reduction (Section 1): with roles assigned, non-leaders
  // wait and the leader explores — the leader meets every waiter.
  const Graph g = families::random_connected(9, 4, 13);
  const auto& y = uxs::cached_uxs(9);
  AgentProgram leader = [&y](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2, uxs::Uxs seq) -> Proc {
      // Walk the UXS application (covers all nodes), then halt.
      Observation o = co_await mb2.move(0);
      for (std::uint64_t a : seq.terms()) {
        o = co_await mb2.move(
            static_cast<graph::Port>((*o.entry_port + a) % o.degree));
      }
      co_await mb2.wait(support::kRoundInfinity);
    }(mb, y);
  };
  std::vector<AgentSpec> specs;
  specs.push_back({leader, 0, 0});
  specs.push_back({sleeper(), 3, 0});
  specs.push_back({sleeper(), 5, 0});
  specs.push_back({sleeper(), 8, 0});
  MultiRunConfig config;
  config.max_rounds = 8 * (y.length() + 2);
  const MultiRunResult r = run_multi(g, specs, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.gathered);  // waiters sit at distinct nodes forever
  for (std::size_t w = 1; w < specs.size(); ++w) {
    EXPECT_NE(r.meeting_of(0, w, specs.size()), kNever)
        << "leader never reached waiter " << w;
  }
  // Waiters at distinct nodes never meet each other.
  for (std::size_t i = 1; i < specs.size(); ++i) {
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      EXPECT_EQ(r.meeting_of(i, j, specs.size()), kNever);
    }
  }
}

TEST(MultiEngine, SingleAgentGathersTrivially) {
  const Graph g = families::path_graph(2);
  std::vector<AgentSpec> specs;
  specs.push_back({sleeper(), 0, 0});
  const MultiRunResult r = run_multi(g, specs);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.gathered);
  EXPECT_EQ(r.gather_round_absolute, 0u);
}

TEST(MultiEngine, StaggeredSpawnsTracked) {
  const Graph g = families::path_graph(4);
  std::vector<AgentSpec> specs;
  specs.push_back({sleeper(), 0, 0});
  specs.push_back({sleeper(), 3, 7});
  MultiRunConfig config;
  config.max_rounds = 100;
  const MultiRunResult r = run_multi(g, specs, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.gathered);
  EXPECT_EQ(r.final_pos[0], 0u);
  EXPECT_EQ(r.final_pos[1], 3u);
  EXPECT_EQ(r.moves[0], 0u);
}

TEST(MultiEngine, ErrorsPropagateWithAgentIndex) {
  const Graph g = families::path_graph(3);
  std::vector<AgentSpec> specs;
  specs.push_back({sleeper(), 0, 0});
  specs.push_back({sleeper(), 1, 0});
  specs.push_back({[](Mailbox& mb, Observation) -> Proc {
                     return [](Mailbox& mb2) -> Proc {
                       co_await mb2.move(9);  // invalid port
                     }(mb);
                   },
                   2, 0});
  const MultiRunResult r = run_multi(g, specs);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("agent 2"), std::string::npos);
}

}  // namespace
}  // namespace rdv::sim
