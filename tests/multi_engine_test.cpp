#include <gtest/gtest.h>

#include "cache/artifact_cache.hpp"
#include "core/explore.hpp"
#include "graph/families/families.hpp"
#include "sim/multi_engine.hpp"
#include "support/saturating.hpp"
#include "uxs/uxs.hpp"

namespace rdv::sim {
namespace {

using graph::Graph;
using graph::Node;
namespace families = rdv::graph::families;

AgentProgram sleeper() {
  return [](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2) -> Proc {
      co_await mb2.wait(support::kRoundInfinity);
    }(mb);
  };
}

AgentProgram forward_forever() {
  return [](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2) -> Proc {
      for (;;) co_await mb2.move(0);
    }(mb);
  };
}

/// Walk to a fixed port once, then halt there.
AgentProgram step_once(graph::Port p) {
  return [p](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2, graph::Port port) -> Proc {
      co_await mb2.move(port);
      co_await mb2.wait(support::kRoundInfinity);
    }(mb, p);
  };
}

TEST(MultiEngine, ThreeAgentsGatherOnPath) {
  const Graph g = families::path_graph(3);
  std::vector<AgentSpec> specs;
  specs.push_back({step_once(0), 0, 0});   // 0 -> 1 (its only port)
  specs.push_back({sleeper(), 1, 0});      // stays at 1
  specs.push_back({step_once(0), 2, 2});   // spawns late, 2 -> 1
  const MultiRunResult r = run_multi(g, specs);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.gathered);
  EXPECT_EQ(r.gather_round_absolute, 3u);  // last agent moves at round 3
  EXPECT_EQ(r.gather_from_last_start, 1u);
  // Pairwise: agents 0 and 1 met at round 1 already.
  EXPECT_EQ(r.meeting_of(0, 1, 3), 1u);
  EXPECT_EQ(r.meeting_of(0, 2, 3), 3u);
}

TEST(MultiEngine, RotatingRingNeverGathers) {
  const Graph g = families::oriented_ring(6);
  std::vector<AgentSpec> specs;
  for (const Node start : {Node{0}, Node{2}, Node{4}}) {
    specs.push_back({forward_forever(), start, 0});
  }
  MultiRunConfig config;
  config.max_rounds = 2000;
  const MultiRunResult r = run_multi(g, specs, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.gathered);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      EXPECT_EQ(r.meeting_of(i, j, 3), kNever);
    }
  }
}

TEST(MultiEngine, WaitingForMommy) {
  // The paper's reduction (Section 1): with roles assigned, non-leaders
  // wait and the leader explores — the leader meets every waiter.
  const Graph g = families::random_connected(9, 4, 13);
  const auto y_handle = cache::cached_uxs(9);
  const uxs::Uxs& y = *y_handle;
  AgentProgram leader = [&y](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2, uxs::Uxs seq) -> Proc {
      // Walk the UXS application (covers all nodes), then halt.
      Observation o = co_await mb2.move(0);
      for (std::uint64_t a : seq.terms()) {
        o = co_await mb2.move(
            static_cast<graph::Port>((*o.entry_port + a) % o.degree));
      }
      co_await mb2.wait(support::kRoundInfinity);
    }(mb, y);
  };
  std::vector<AgentSpec> specs;
  specs.push_back({leader, 0, 0});
  specs.push_back({sleeper(), 3, 0});
  specs.push_back({sleeper(), 5, 0});
  specs.push_back({sleeper(), 8, 0});
  MultiRunConfig config;
  config.max_rounds = 8 * (y.length() + 2);
  const MultiRunResult r = run_multi(g, specs, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.gathered);  // waiters sit at distinct nodes forever
  for (std::size_t w = 1; w < specs.size(); ++w) {
    EXPECT_NE(r.meeting_of(0, w, specs.size()), kNever)
        << "leader never reached waiter " << w;
  }
  // Waiters at distinct nodes never meet each other.
  for (std::size_t i = 1; i < specs.size(); ++i) {
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      EXPECT_EQ(r.meeting_of(i, j, specs.size()), kNever);
    }
  }
}

TEST(MultiEngine, SingleAgentGathersTrivially) {
  const Graph g = families::path_graph(2);
  std::vector<AgentSpec> specs;
  specs.push_back({sleeper(), 0, 0});
  const MultiRunResult r = run_multi(g, specs);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.gathered);
  EXPECT_EQ(r.gather_round_absolute, 0u);
}

TEST(MultiEngine, StaggeredSpawnsTracked) {
  const Graph g = families::path_graph(4);
  std::vector<AgentSpec> specs;
  specs.push_back({sleeper(), 0, 0});
  specs.push_back({sleeper(), 3, 7});
  MultiRunConfig config;
  config.max_rounds = 100;
  const MultiRunResult r = run_multi(g, specs, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.gathered);
  EXPECT_EQ(r.final_pos[0], 0u);
  EXPECT_EQ(r.final_pos[1], 3u);
  EXPECT_EQ(r.moves[0], 0u);
}

TEST(MultiEngine, StopOnPairTerminatesBeforeGathering) {
  // Same scenario as ThreeAgentsGatherOnPath (gathering at round 3),
  // but the run must stop at round 1 when agents 0 and 1 first meet.
  const Graph g = families::path_graph(3);
  std::vector<AgentSpec> specs;
  specs.push_back({step_once(0), 0, 0});  // 0 -> 1 at round 1
  specs.push_back({sleeper(), 1, 0});     // stays at 1
  specs.push_back({step_once(0), 2, 2});  // would reach 1 at round 3
  MultiRunConfig config;
  config.stop_on_pair_a = 0;
  config.stop_on_pair_b = 1;
  const MultiRunResult r = run_multi(g, specs, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.gathered);
  EXPECT_EQ(r.rounds_simulated, 1u);
  EXPECT_EQ(r.meeting_of(0, 1, 3), 1u);
  EXPECT_EQ(r.meeting_of(0, 2, 3), kNever);
  EXPECT_EQ(r.meeting_of(1, 2, 3), kNever);
}

// Regression: the meeting scan visits ordered pairs (i < j) only, so a
// reversed stop pair (a > b) used to never trigger and the run silently
// continued to the cap.
TEST(MultiEngine, StopOnPairIsOrderInsensitive) {
  const Graph g = families::path_graph(3);
  std::vector<AgentSpec> specs;
  specs.push_back({step_once(0), 0, 0});
  specs.push_back({sleeper(), 1, 0});
  specs.push_back({step_once(0), 2, 2});
  MultiRunConfig config;
  config.stop_on_pair_a = 1;  // reversed on purpose
  config.stop_on_pair_b = 0;
  config.max_rounds = 100;
  const MultiRunResult r = run_multi(g, specs, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.rounds_simulated, 1u);
  EXPECT_EQ(r.meeting_of(0, 1, 3), 1u);
}

TEST(MultiEngine, StopOnPairStillReportsGatheringAtThatRound) {
  // The stop pair (0, 2) first meets exactly when all three gather;
  // gathering detection must win over the early stop.
  const Graph g = families::path_graph(3);
  std::vector<AgentSpec> specs;
  specs.push_back({step_once(0), 0, 0});
  specs.push_back({sleeper(), 1, 0});
  specs.push_back({step_once(0), 2, 2});
  MultiRunConfig config;
  config.stop_on_pair_a = 0;
  config.stop_on_pair_b = 2;
  const MultiRunResult r = run_multi(g, specs, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.gathered);
  EXPECT_EQ(r.gather_round_absolute, 3u);
  EXPECT_EQ(r.meeting_of(0, 2, 3), 3u);
}

TEST(MultiEngine, FirstMeetingMatrixForFourAgents) {
  // oriented_ring(4), port 0 = clockwise (+1 each round):
  //   agent 0: rotates from node 0 (position r mod 4)
  //   agent 1: sleeps at node 2     -> met by agent 0 at round 2
  //   agent 2: sleeps at node 3     -> met by agent 0 at round 3
  //   agent 3: rotates from node 2  -> starts on agent 1 (round 0),
  //            reaches agent 2 at round 1, stays 2 apart from agent 0
  const Graph g = families::oriented_ring(4);
  std::vector<AgentSpec> specs;
  specs.push_back({forward_forever(), 0, 0});
  specs.push_back({sleeper(), 2, 0});
  specs.push_back({sleeper(), 3, 0});
  specs.push_back({forward_forever(), 2, 0});
  MultiRunConfig config;
  config.max_rounds = 40;
  const MultiRunResult r = run_multi(g, specs, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.gathered);
  const std::size_t k = specs.size();
  EXPECT_EQ(r.meeting_of(0, 1, k), 2u);
  EXPECT_EQ(r.meeting_of(0, 2, k), 3u);
  EXPECT_EQ(r.meeting_of(0, 3, k), kNever);  // constant ring offset of 2
  EXPECT_EQ(r.meeting_of(1, 2, k), kNever);  // distinct parked nodes
  EXPECT_EQ(r.meeting_of(1, 3, k), 0u);      // shared start node
  EXPECT_EQ(r.meeting_of(2, 3, k), 1u);
  // meeting_of must be symmetric in its agent arguments.
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      EXPECT_EQ(r.meeting_of(i, j, k), r.meeting_of(j, i, k));
    }
  }
}

TEST(MultiEngine, ErrorsPropagateWithAgentIndex) {
  const Graph g = families::path_graph(3);
  std::vector<AgentSpec> specs;
  specs.push_back({sleeper(), 0, 0});
  specs.push_back({sleeper(), 1, 0});
  specs.push_back({[](Mailbox& mb, Observation) -> Proc {
                     return [](Mailbox& mb2) -> Proc {
                       co_await mb2.move(9);  // invalid port
                     }(mb);
                   },
                   2, 0});
  const MultiRunResult r = run_multi(g, specs);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("agent 2"), std::string::npos);
}

}  // namespace
}  // namespace rdv::sim
