// Tests for support/check.hpp (ISSUE 10): RDV_CHECK semantics in both
// build flavors, and the lock-rank checker catching a deliberately
// inverted acquisition order. The suite compiles in every matrix slot;
// the death tests arm only under RDV_CHECKED, and the zero-cost pins
// only when it is off — between the CI jobs both halves run.
#include "support/check.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>

#include "support/thread_pool.hpp"

namespace rdv::support {
namespace {

// ---------------------------------------------------------------- //
// RDV_CHECK semantics
// ---------------------------------------------------------------- //

// Compile-time pin: kCheckedBuild mirrors the build flag exactly.
#if defined(RDV_CHECKED)
static_assert(kCheckedBuild, "RDV_CHECKED build must set kCheckedBuild");
#else
static_assert(!kCheckedBuild, "plain build must not set kCheckedBuild");
#endif

TEST(Check, PassingCheckIsSilentInEveryBuild) {
  RDV_CHECK(1 + 1 == 2);
  RDV_CHECK_MSG(true, "never printed");
  SUCCEED();
}

#if defined(RDV_CHECKED)

TEST(CheckDeathTest, FailingCheckAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(RDV_CHECK(2 + 2 == 5), "RDV_CHECK failed");
  EXPECT_DEATH(RDV_CHECK_MSG(false, "the message"), "the message");
}

TEST(Check, EnabledChecksEvaluateTheCondition) {
  int evaluations = 0;
  RDV_CHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

#else

// The zero-cost pin: a disabled RDV_CHECK must not evaluate its
// condition — a side-effecting expression stays unexecuted, so checks
// are free to guard hot paths.
TEST(Check, DisabledChecksDoNotEvaluateTheCondition) {
  int evaluations = 0;
  RDV_CHECK(++evaluations > 0);
  RDV_CHECK_MSG(++evaluations > 0, "also unevaluated");
  EXPECT_EQ(evaluations, 0);
}

TEST(Check, DisabledFailingChecksDoNotAbort) {
  RDV_CHECK(false);
  RDV_CHECK_MSG(false, "ignored");
  SUCCEED();
}

#endif  // RDV_CHECKED

// ---------------------------------------------------------------- //
// Lock-rank checker
// ---------------------------------------------------------------- //

TEST(LockRank, AscendingAcquisitionIsLegal) {
  RankedMutex pool(LockRank::kPoolQueue);
  RankedMutex shard(LockRank::kCacheShard);
  RankedMutex ring(LockRank::kObsRing);
  {
    std::scoped_lock a(pool);
    std::scoped_lock b(shard);
    std::scoped_lock c(ring);
    if constexpr (kCheckedBuild) {
      EXPECT_EQ(held_rank_count(), 3u);
    } else {
      EXPECT_EQ(held_rank_count(), 0u);
    }
  }
  EXPECT_EQ(held_rank_count(), 0u);
}

TEST(LockRank, ReacquisitionAfterReleaseIsLegal) {
  RankedMutex shard(LockRank::kCacheShard);
  for (int i = 0; i < 3; ++i) {
    std::lock_guard lock(shard);
  }
  // Same rank on DIFFERENT mutexes is fine sequentially too (the cache
  // stats loop locks every shard one after another).
  RankedMutex other(LockRank::kCacheShard);
  {
    std::lock_guard lock(other);
  }
  SUCCEED();
}

TEST(LockRank, NonLifoReleaseIsTracked) {
  RankedMutex pool(LockRank::kPoolQueue);
  RankedMutex store(LockRank::kStore);
  std::unique_lock a(pool);
  std::unique_lock b(store);
  a.unlock();  // release the OLDER rank first
  b.unlock();
  EXPECT_EQ(held_rank_count(), 0u);
}

TEST(LockRank, RanksAreThreadLocal) {
  // A rank held on this thread must not constrain another thread.
  RankedMutex ring(LockRank::kObsRing);
  RankedMutex pool(LockRank::kPoolQueue);
  std::scoped_lock high(ring);
  std::thread other([&] {
    std::scoped_lock low(pool);  // fresh stack: legal
  });
  other.join();
  SUCCEED();
}

#if defined(RDV_CHECKED)

// THE death test: acquiring against the global order (a store-rank
// lock while already holding an obs-ring-rank lock) must abort with a
// diagnostic naming both ranks — this is a schedule-independent
// deadlock catch, it fires on the very first inverted acquisition.
TEST(LockRankDeathTest, InvertedAcquisitionOrderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        RankedMutex ring(LockRank::kObsRing);
        RankedMutex store(LockRank::kStore);
        std::scoped_lock a(ring);
        std::scoped_lock b(store);  // obs_ring -> store: inverted
      },
      "lock-rank violation.*acquiring store.*holding obs_ring");
}

TEST(LockRankDeathTest, SameRankNestingAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Two locks of one rank class may never nest (two cache shards held
  // together would deadlock against the opposite interleaving).
  EXPECT_DEATH(
      {
        RankedMutex a(LockRank::kCacheShard);
        RankedMutex b(LockRank::kCacheShard);
        std::scoped_lock la(a);
        std::scoped_lock lb(b);
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, ScopeAnnotationParticipates) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        LockRankScope scope(LockRank::kObsRegistry);
        RankedMutex pool(LockRank::kPoolQueue);
        std::scoped_lock lock(pool);  // below the annotated scope
      },
      "lock-rank violation");
}

TEST(LockRank, TryLockSuccessJoinsTheStack) {
  RankedMutex shard(LockRank::kCacheShard);
  ASSERT_TRUE(shard.try_lock());
  EXPECT_EQ(held_rank_count(), 1u);
  shard.unlock();
  EXPECT_EQ(held_rank_count(), 0u);
}

#else

TEST(LockRank, UncheckedBuildAllowsAnyOrder) {
  // Without RDV_CHECKED the wrapper is a plain mutex: the inverted
  // order must NOT abort (and costs nothing).
  RankedMutex ring(LockRank::kObsRing);
  RankedMutex store(LockRank::kStore);
  std::scoped_lock a(ring);
  std::scoped_lock b(store);
  EXPECT_EQ(held_rank_count(), 0u);
}

#endif  // RDV_CHECKED

// The substrate wiring smoke: a nested sweep-shaped workload (pool
// tasks waiting on sub-tasks) runs clean under the checker — the
// rank discipline holds on real schedules, not just unit locks.
TEST(LockRank, PoolWorkAssistRunsCleanUnderChecker) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 8; ++i) {
    outer.submit([&pool, &done] {
      TaskGroup inner(pool);
      for (int j = 0; j < 4; ++j) {
        inner.submit([&done] {
          done.fetch_add(1, std::memory_order_relaxed);
        });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(done.load(), 32);
}

}  // namespace
}  // namespace rdv::support
