// Property tests for the adversary argument inside Lemma 3.1: two
// agents on symmetric starting nodes that follow the SAME outgoing
// port sequence observe identical histories (degrees and entry ports)
// and remain on symmetric nodes forever — which is why no deterministic
// algorithm can make them act differently.
#include <gtest/gtest.h>

#include "graph/families/families.hpp"
#include "graph/families/qhat.hpp"
#include "graph/walk.hpp"
#include "support/splitmix.hpp"
#include "views/refinement.hpp"

namespace rdv::views {
namespace {

using graph::Graph;
using graph::Node;
using graph::Port;
namespace families = rdv::graph::families;

/// Random common port sequence applied from a and b simultaneously; at
/// each step the port is drawn below min(deg) so it is valid at both.
struct LockstepWalk {
  std::vector<Port> ports;
  std::vector<Node> path_a;
  std::vector<Node> path_b;
  std::vector<Port> entries_a;
  std::vector<Port> entries_b;
  std::vector<Port> degrees_a;
  std::vector<Port> degrees_b;
};

LockstepWalk lockstep(const Graph& g, Node a, Node b, std::size_t steps,
                      std::uint64_t seed) {
  support::SplitMix64 rng(seed);
  LockstepWalk w;
  w.path_a.push_back(a);
  w.path_b.push_back(b);
  for (std::size_t i = 0; i < steps; ++i) {
    const Port common = std::min(g.degree(a), g.degree(b));
    const Port p = static_cast<Port>(rng.next_below(common));
    const graph::Step sa = g.step(a, p);
    const graph::Step sb = g.step(b, p);
    w.ports.push_back(p);
    a = sa.to;
    b = sb.to;
    w.path_a.push_back(a);
    w.path_b.push_back(b);
    w.entries_a.push_back(sa.entry_port);
    w.entries_b.push_back(sb.entry_port);
    w.degrees_a.push_back(g.degree(a));
    w.degrees_b.push_back(g.degree(b));
  }
  return w;
}

class AdversaryInvariant : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AdversaryInvariant, SymmetricStartsObserveIdentically) {
  const std::vector<Graph> corpus = {
      families::oriented_ring(7),
      families::oriented_torus(3, 4),
      families::hypercube(3),
      families::symmetric_double_tree(2, 2),
      families::qhat_explicit(3).graph,
  };
  const std::uint64_t seed = GetParam();
  for (const Graph& g : corpus) {
    const ViewClasses classes = compute_view_classes(g);
    // Reuse the partition just computed instead of refining again.
    const auto pairs = symmetric_pairs(g, classes);
    ASSERT_FALSE(pairs.empty()) << g.name();
    // Sample a few pairs per graph.
    for (std::size_t idx = 0; idx < pairs.size();
         idx += std::max<std::size_t>(1, pairs.size() / 5)) {
      const auto [u, v] = pairs[idx];
      const LockstepWalk w = lockstep(g, u, v, 64, seed);
      // Identical observation histories...
      EXPECT_EQ(w.entries_a, w.entries_b) << g.name();
      EXPECT_EQ(w.degrees_a, w.degrees_b) << g.name();
      // ...and the agents stay on symmetric (same-class) nodes.
      for (std::size_t t = 0; t < w.path_a.size(); ++t) {
        EXPECT_EQ(classes.class_of[w.path_a[t]],
                  classes.class_of[w.path_b[t]])
            << g.name() << " step " << t;
      }
    }
  }
}

TEST_P(AdversaryInvariant, NonsymmetricStartsEventuallyDiverge) {
  // Contrast: from nonsymmetric starts the SAME port sequence need not
  // keep observations equal — and on these graphs a short lockstep walk
  // already exposes a difference for most sampled pairs. (We assert a
  // weaker, deterministic property: at least one sampled nonsymmetric
  // pair diverges per graph.)
  const std::vector<Graph> corpus = {
      families::path_graph(6),
      families::scrambled_ring(7, 5),
      families::random_connected(8, 5, 21),
  };
  const std::uint64_t seed = GetParam();
  for (const Graph& g : corpus) {
    const ViewClasses classes = compute_view_classes(g);
    bool some_divergence = false;
    for (Node u = 0; u < g.size() && !some_divergence; ++u) {
      for (Node v = u + 1; v < g.size(); ++v) {
        if (classes.symmetric(u, v)) continue;
        const LockstepWalk w = lockstep(g, u, v, 64, seed);
        if (w.entries_a != w.entries_b || w.degrees_a != w.degrees_b) {
          some_divergence = true;
          break;
        }
      }
    }
    EXPECT_TRUE(some_divergence) << g.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversaryInvariant,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(AdversaryInvariant, LaterAgentRetracesEarlierTrajectory) {
  // The Lemma 3.1 proof's framing: with delay delta, the path traversed
  // by the later agent equals (as a port sequence) the earlier agent's
  // path up to delta rounds before — here verified as node classes along
  // the lockstep walk shifted by delta.
  const Graph g = families::oriented_torus(3, 3);
  const ViewClasses classes = compute_view_classes(g);
  const LockstepWalk w = lockstep(g, 0, 4, 40, 9);
  const std::uint64_t delta = 5;
  for (std::size_t t = 0; t + delta < w.path_a.size(); ++t) {
    // Earlier agent at absolute time t + delta executed the same number
    // of actions as the later agent at its local time t.
    EXPECT_EQ(classes.class_of[w.path_b[t]],
              classes.class_of[w.path_a[t]]);
  }
}

}  // namespace
}  // namespace rdv::views
