#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/families/families.hpp"
#include "graph/serialize.hpp"
#include "graph/walk.hpp"

namespace rdv::graph {
namespace {

Graph square() {
  // 4-cycle with oriented ports.
  GraphBuilder b(4, "square");
  b.connect(0, 0, 1, 1);
  b.connect(1, 0, 2, 1);
  b.connect(2, 0, 3, 1);
  b.connect(3, 0, 0, 1);
  return std::move(b).build();
}

TEST(Builder, BuildsValidGraph) {
  const Graph g = square();
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Builder, RejectsSelfLoop) {
  GraphBuilder b(2, "bad");
  EXPECT_THROW(b.connect(0, 0, 0, 1), std::invalid_argument);
}

TEST(Builder, RejectsPortReuse) {
  GraphBuilder b(3, "bad");
  b.connect(0, 0, 1, 0);
  EXPECT_THROW(b.connect(0, 0, 2, 0), std::invalid_argument);
}

TEST(Builder, RejectsOutOfRangeNode) {
  GraphBuilder b(2, "bad");
  EXPECT_THROW(b.connect(0, 0, 5, 0), std::invalid_argument);
}

TEST(Builder, RejectsPortGap) {
  GraphBuilder b(2, "bad");
  b.connect(0, 1, 1, 0);  // node 0 skips port 0
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(Builder, RejectsIsolatedNode) {
  GraphBuilder b(3, "bad");
  b.connect(0, 0, 1, 0);
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(Builder, RejectsDisconnected) {
  GraphBuilder b(4, "bad");
  b.connect(0, 0, 1, 0);
  b.connect(2, 0, 3, 0);
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(Builder, RejectsParallelEdges) {
  GraphBuilder b(2, "bad");
  b.connect(0, 0, 1, 0);
  b.connect(0, 1, 1, 1);
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(Graph, StepReciprocal) {
  const Graph g = square();
  for (Node v = 0; v < g.size(); ++v) {
    for (Port p = 0; p < g.degree(v); ++p) {
      const Step s = g.step(v, p);
      const Step back = g.step(s.to, s.entry_port);
      EXPECT_EQ(back.to, v);
      EXPECT_EQ(back.entry_port, p);
    }
  }
}

TEST(Graph, BfsDistances) {
  const Graph g = square();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 1u);
  EXPECT_EQ(distance(g, 1, 3), 2u);
}

TEST(Walk, ApplyPorts) {
  const Graph g = square();
  const std::vector<Port> alpha{0, 0, 0};
  const auto end = apply_ports(g, 0, alpha);
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(*end, 3u);
}

TEST(Walk, ApplyPortsRejectsBadPort) {
  const Graph g = square();
  const std::vector<Port> alpha{5};
  EXPECT_FALSE(apply_ports(g, 0, alpha).has_value());
}

TEST(Walk, ReversePathReturnsHome) {
  const Graph g = families::random_connected(12, 6, 3);
  const std::vector<Port> alpha{0, 0, 0, 0, 0};  // port 0 always exists
  const auto entries = entry_ports_along(g, 0, alpha);
  ASSERT_EQ(entries.size(), alpha.size());
  const auto fwd = apply_ports(g, 0, alpha);
  ASSERT_TRUE(fwd.has_value());
  const auto back = apply_ports(g, *fwd, reverse_path(entries));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, 0u);
}

TEST(Serialize, TextRoundTrip) {
  const Graph g = families::random_connected(9, 4, 11);
  const Graph g2 = from_text(to_text(g));
  ASSERT_EQ(g2.size(), g.size());
  for (Node v = 0; v < g.size(); ++v) {
    ASSERT_EQ(g2.degree(v), g.degree(v));
    for (Port p = 0; p < g.degree(v); ++p) {
      EXPECT_EQ(g2.step(v, p), g.step(v, p));
    }
  }
}

TEST(Serialize, DotContainsEdges) {
  const Graph g = square();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("graph"), std::string::npos);
}

TEST(Serialize, FromTextRejectsGarbage) {
  EXPECT_THROW(from_text("nonsense"), std::invalid_argument);
}

}  // namespace
}  // namespace rdv::graph
