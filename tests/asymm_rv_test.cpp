#include <gtest/gtest.h>

#include "analysis/stics.hpp"
#include "cache/artifact_cache.hpp"
#include "core/asymm_rv.hpp"
#include "core/bounds.hpp"
#include "core/signature.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "uxs/verifier.hpp"
#include "views/refinement.hpp"

namespace rdv::core {
namespace {

using graph::Graph;
using graph::Node;
using sim::RunConfig;
using sim::RunResult;
namespace families = rdv::graph::families;

RunResult run_asymm(const Graph& g, Node u, Node v, std::uint64_t delay) {
  const auto y_handle = cache::cached_uxs(g.size());
  const uxs::Uxs& y = *y_handle;
  EXPECT_TRUE(uxs::is_uxs_for(g, y)) << g.name();
  const std::uint64_t budget =
      asymm_rv_time_bound(g.size(), delay, y.length());
  RunConfig config;
  config.max_rounds = support::sat_add(support::sat_mul(2, budget), delay);
  return sim::run_anonymous(g, asymm_rv_program(g.size(), y, budget), u,
                            v, delay, config);
}

TEST(Signature, SeparatesNonsymmetricNodes) {
  // The label mechanism's load-bearing property (DESIGN.md §2.2):
  // UXS observation traces distinguish nodes in different view classes.
  const std::vector<Graph> corpus = {
      families::path_graph(5),
      families::complete(4),
      families::scrambled_ring(7, 3),
      families::random_connected(8, 4, 6),
      families::balanced_tree(2, 2),
  };
  for (const Graph& g : corpus) {
    const auto y_handle = cache::cached_uxs(g.size());
    const uxs::Uxs& y = *y_handle;
    ASSERT_TRUE(uxs::is_uxs_for(g, y)) << g.name();
    const auto classes = views::compute_view_classes(g);
    for (Node u = 0; u < g.size(); ++u) {
      for (Node v = u + 1; v < g.size(); ++v) {
        const auto su = signature_offline(g, u, g.size(), y);
        const auto sv = signature_offline(g, v, g.size(), y);
        if (classes.symmetric(u, v)) {
          EXPECT_EQ(su, sv) << g.name() << " " << u << "," << v;
        } else {
          EXPECT_NE(su, sv) << g.name() << " " << u << "," << v;
        }
      }
    }
  }
}

TEST(Signature, PhysicalWalkMatchesOfflineComputation) {
  // The agent-side signature_walk (through the engine) must record the
  // exact bits signature_offline predicts from the observer side.
  const Graph g = families::random_connected(7, 4, 31);
  const auto y_handle = cache::cached_uxs(7);
  const uxs::Uxs& y = *y_handle;
  for (const Node start : {Node{0}, Node{3}, Node{6}}) {
    std::vector<bool> physical;
    sim::AgentProgram prog = [&](sim::Mailbox& mb,
                                 sim::Observation) -> sim::Proc {
      return [](sim::Mailbox& mb2, std::uint32_t n, uxs::Uxs seq,
                std::vector<bool>* out) -> sim::Proc {
        co_await signature_walk(mb2, n, seq, out);
      }(mb, 7, y, &physical);
    };
    sim::RunConfig config;
    config.max_rounds = 8 * (y.length() + 2);
    const RunResult r = sim::run_pair(
        g, prog,
        [](sim::Mailbox& mb, sim::Observation) -> sim::Proc {
          return [](sim::Mailbox& mb2) -> sim::Proc {
            co_await mb2.wait(support::kRoundInfinity);
          }(mb);
        },
        start, start == 0 ? 1 : 0, support::kRoundInfinity - 8, config);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(physical, signature_offline(g, start, 7, y))
        << "start " << start;
    // The walk ends back home (needed for budget-exactness).
    EXPECT_EQ(r.final_pos[0], start);
  }
}

TEST(AsymmRV, MeetsOnPathAllDelays) {
  const Graph g = families::path_graph(5);
  for (std::uint64_t delay : {0ull, 1ull, 2ull, 5ull}) {
    const RunResult r = run_asymm(g, 0, 3, delay);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.met) << "delay " << delay;
  }
}

TEST(AsymmRV, MeetsOnAllNonsymmetricPairsOfScrambledRing) {
  const Graph g = families::scrambled_ring(6, 19);
  const auto classes = views::compute_view_classes(g);
  for (Node u = 0; u < g.size(); ++u) {
    for (Node v = 0; v < g.size(); ++v) {
      if (u == v || classes.symmetric(u, v)) continue;
      const RunResult r = run_asymm(g, u, v, 1);
      ASSERT_TRUE(r.ok()) << r.error;
      EXPECT_TRUE(r.met) << u << "," << v;
    }
  }
}

TEST(AsymmRV, RespectsTimeBound) {
  const Graph g = families::path_graph(4);
  const auto y_handle = cache::cached_uxs(4);
  const uxs::Uxs& y = *y_handle;
  for (std::uint64_t delay : {0ull, 2ull}) {
    const RunResult r = run_asymm(g, 0, 2, delay);
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_TRUE(r.met);
    EXPECT_LE(r.meet_from_later_start,
              asymm_rv_time_bound(4, delay, y.length()));
  }
}

TEST(AsymmRV, ExactBudgetConsumption) {
  // Budget-exactness is what keeps UniversalRV's phases in lockstep:
  // whatever happens, the procedure consumes exactly its budget. Run a
  // single agent (partner effectively absent) and check it finishes at
  // its budget, at home.
  const Graph g = families::path_graph(5);
  const auto y_handle = cache::cached_uxs(5);
  const uxs::Uxs& y = *y_handle;
  for (const std::uint64_t budget : {0ull, 7ull, 100ull, 3001ull}) {
    RunConfig config;
    config.max_rounds = budget + 10;
    const RunResult r = sim::run_pair(
        g, asymm_rv_program(5, y, budget),
        [](sim::Mailbox& mb, sim::Observation) -> sim::Proc {
          return [](sim::Mailbox& mb2) -> sim::Proc {
            co_await mb2.wait(support::kRoundInfinity);
          }(mb);
        },
        0, 4, support::kRoundInfinity - 8, config);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.final_pos[0], 0u) << "budget " << budget;
    EXPECT_TRUE(r.programs_finished || !r.met);
  }
}

TEST(AsymmRV, OracleLabelsAlsoMeet) {
  // Oracle mode (T9): hand the agents distinct labels directly.
  const Graph g = families::oriented_ring(5);  // symmetric pair!
  const auto y_handle = cache::cached_uxs(5);
  const uxs::Uxs& y = *y_handle;
  const std::uint64_t budget = asymm_rv_time_bound(5, 2, y.length());
  RunConfig config;
  config.max_rounds = 4 * budget;
  // Symmetric positions, but distinct oracle labels break the symmetry
  // (this models label-based rendezvous, not the anonymous setting).
  const RunResult r = sim::run_pair(
      g, asymm_rv_program(5, y, budget, std::vector<bool>{false, true}),
      asymm_rv_program(5, y, budget, std::vector<bool>{true, false}), 0,
      2, 2, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.met);
}

TEST(AsymmRV, IdenticalLabelsOnSymmetricPairNeverMeet) {
  // Sanity: symmetric positions + equal labels = lockstep forever.
  const Graph g = families::oriented_ring(6);
  const auto y_handle = cache::cached_uxs(6);
  const uxs::Uxs& y = *y_handle;
  const std::uint64_t budget = 5'000;
  RunConfig config;
  config.max_rounds = 20'000;
  const RunResult r = sim::run_anonymous(
      g, asymm_rv_program(6, y, budget, std::vector<bool>{true, false}),
      0, 3, 0, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.met);
}

}  // namespace
}  // namespace rdv::core
