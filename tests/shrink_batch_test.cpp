// Equivalence and determinism suite for the batched all-pairs Shrink
// kernel (views::shrink_all_pairs): the per-pair product BFS
// (shrink_with_witness) is the oracle, the batched level-ordered
// backward closure must agree on EVERY ordered pair of every family,
// through every cache/store/thread configuration the census runs
// under.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "graph/families/families.hpp"
#include "graph/families/implicit.hpp"
#include "graph/graph.hpp"
#include "store/disk_store.hpp"
#include "views/shrink.hpp"

namespace rdv::views {
namespace {

using graph::Graph;
using graph::Node;
namespace families = rdv::graph::families;

std::vector<Graph> equivalence_corpus() {
  std::vector<Graph> corpus;
  corpus.push_back(families::two_node_graph());
  corpus.push_back(families::oriented_ring(7));
  corpus.push_back(families::oriented_ring(8));
  corpus.push_back(families::scrambled_ring(9, /*seed=*/5));
  corpus.push_back(families::path_graph(9));
  corpus.push_back(families::complete(6));
  corpus.push_back(families::star(7));
  corpus.push_back(families::grid(3, 4));
  corpus.push_back(families::complete_bipartite(3, 4));
  corpus.push_back(families::oriented_torus(3, 4));
  corpus.push_back(families::hypercube(3));
  corpus.push_back(families::symmetric_double_tree(2, 2));
  corpus.push_back(families::balanced_tree(3, 2));
  corpus.push_back(families::ring_with_chord(10));
  corpus.push_back(families::random_connected(14, 12, 71));
  corpus.push_back(families::random_connected(17, 30, 72));
  return corpus;
}

TEST(ShrinkAllPairs, MatchesPerPairOracleOnEveryFamily) {
  for (const Graph& g : equivalence_corpus()) {
    SCOPED_TRACE(g.name());
    const AllPairsShrink all = shrink_all_pairs(g);
    ASSERT_EQ(all.n, g.size());
    ASSERT_EQ(all.values.size(),
              static_cast<std::size_t>(g.size()) * g.size());
    for (Node u = 0; u < g.size(); ++u) {
      for (Node v = 0; v < g.size(); ++v) {
        EXPECT_EQ(all.at(u, v), shrink(g, u, v))
            << "pair " << u << "," << v;
      }
    }
  }
}

TEST(ShrinkAllPairs, SymmetricWithZeroDiagonal) {
  for (const Graph& g : equivalence_corpus()) {
    SCOPED_TRACE(g.name());
    const AllPairsShrink all = shrink_all_pairs(g);
    for (Node u = 0; u < g.size(); ++u) {
      EXPECT_EQ(all.at(u, u), 0u);
      for (Node v = u + 1; v < g.size(); ++v) {
        EXPECT_EQ(all.at(u, v), all.at(v, u))
            << "pair " << u << "," << v;
      }
    }
  }
}

TEST(ShrinkAllPairs, ExploresAtLeastReachablePairCount) {
  const Graph g = families::oriented_ring(8);
  const AllPairsShrink all = shrink_all_pairs(g);
  // Every ordered pair of a connected graph is reachable in the product
  // graph from itself, so the closure visits at least the canonical
  // (upper-triangle + diagonal) pair count.
  EXPECT_GE(all.pairs_explored, 8ull * 9 / 2);
}

TEST(ShrinkAllPairs, DisconnectedCrossComponentPairsAreUnreachable) {
  // Two disjoint 2-cycles, built through the public Graph constructor
  // (GraphBuilder would reject the disconnectivity).
  std::vector<std::vector<graph::HalfEdge>> adj(4);
  adj[0] = {{1, 0}};
  adj[1] = {{0, 0}};
  adj[2] = {{3, 0}};
  adj[3] = {{2, 0}};
  const Graph g(std::move(adj), "two-edges");
  const AllPairsShrink all = shrink_all_pairs(g);
  for (Node u = 0; u < 4; ++u) {
    for (Node v = 0; v < 4; ++v) {
      const bool same_component = (u / 2) == (v / 2);
      if (same_component) {
        EXPECT_NE(all.at(u, v), graph::kUnreachable) << u << "," << v;
        EXPECT_EQ(all.at(u, v), shrink(g, u, v)) << u << "," << v;
      } else {
        EXPECT_EQ(all.at(u, v), graph::kUnreachable) << u << "," << v;
      }
    }
  }
}

TEST(ShrinkAllPairs, ImplicitFamiliesPinShrinkEqualsDistance) {
  // The implicit census (c2) classifies STICs via Shrink == dist on
  // vertex-transitive families. Pin that identity against the batched
  // kernel on the explicit twins.
  {
    const families::OrientedRingTopology ring(9);
    const Graph g = families::oriented_ring(9);
    const AllPairsShrink all = shrink_all_pairs(g);
    for (Node u = 0; u < g.size(); ++u) {
      for (Node v = 0; v < g.size(); ++v) {
        EXPECT_EQ(all.at(u, v), ring.distance(u, v)) << u << "," << v;
      }
    }
  }
  {
    const families::OrientedTorusTopology torus(3, 4);
    const Graph g = families::oriented_torus(3, 4);
    const AllPairsShrink all = shrink_all_pairs(g);
    for (Node u = 0; u < g.size(); ++u) {
      for (Node v = 0; v < g.size(); ++v) {
        EXPECT_EQ(all.at(u, v), torus.distance(u, v)) << u << "," << v;
      }
    }
  }
  {
    const families::HypercubeTopology cube(4);
    const Graph g = families::hypercube(4);
    const AllPairsShrink all = shrink_all_pairs(g);
    for (Node u = 0; u < g.size(); ++u) {
      for (Node v = 0; v < g.size(); ++v) {
        EXPECT_EQ(all.at(u, v), cube.distance(u, v)) << u << "," << v;
      }
    }
  }
}

/// The census determinism contract: resolving the all-pairs table
/// through the cache from many threads, with the cache enabled,
/// disabled, or eviction-thrashed, always yields the same values —
/// byte-identical once serialized into census rows.
TEST(ShrinkAllPairs, IdenticalValuesAcrossThreadsAndCacheConfigs) {
  const Graph g = families::random_connected(20, 30, 73);
  const AllPairsShrink reference = shrink_all_pairs(g);

  cache::CacheConfig off;
  off.enabled = false;
  cache::CacheConfig tiny;
  tiny.shards = 1;
  tiny.capacity_per_shard = 1;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{16}}) {
    for (const cache::CacheConfig& config :
         {cache::CacheConfig{}, off, tiny}) {
      cache::ArtifactCache cache(config);
      std::vector<std::vector<std::uint32_t>> seen(threads);
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (std::size_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
          const auto all = cache::cached_all_pairs_shrink(g, &cache);
          seen[t] = all->values;
        });
      }
      for (std::thread& w : workers) w.join();
      for (std::size_t t = 0; t < threads; ++t) {
        EXPECT_EQ(seen[t], reference.values)
            << threads << " threads, thread " << t;
      }
    }
  }
}

TEST(ShrinkAllPairs, WarmStoreRerunRecomputesNothing) {
  const std::string root =
      ::testing::TempDir() + "shrink_batch_warm_store";
  std::filesystem::remove_all(root);
  const Graph g = families::random_connected(12, 14, 74);

  store::DiskConfig disk_config;
  disk_config.root = root;

  // Cold run: one batched compute, persisted write-behind.
  const std::uint64_t before = shrink_all_pairs_compute_count();
  std::vector<std::uint32_t> cold_values;
  {
    cache::CacheConfig config;
    config.disk = std::make_shared<store::DiskStore>(disk_config);
    cache::ArtifactCache cache(config);
    cold_values = cache::cached_all_pairs_shrink(g, &cache)->values;
    EXPECT_EQ(shrink_all_pairs_compute_count(), before + 1);
    EXPECT_EQ(cache.stats().all_pairs_shrink.misses, 1u);
  }

  // Warm run in a fresh process image (new cache, same store): the
  // artifact decodes from disk — ZERO batched recomputes.
  {
    cache::CacheConfig config;
    config.disk = std::make_shared<store::DiskStore>(disk_config);
    cache::ArtifactCache cache(config);
    const auto warm = cache::cached_all_pairs_shrink(g, &cache);
    EXPECT_EQ(warm->values, cold_values);
    EXPECT_EQ(shrink_all_pairs_compute_count(), before + 1);
    EXPECT_EQ(config.disk->stats(store::Kind::kShrinkAllPairs).hits, 1u);
  }
  std::filesystem::remove_all(root);
}

TEST(ShrinkAllPairs, PairBfsCounterOnlyCountsPerPairCalls) {
  const Graph g = families::oriented_ring(6);
  const std::uint64_t pair_before = shrink_pair_bfs_count();
  const std::uint64_t batch_before = shrink_all_pairs_compute_count();
  (void)shrink_all_pairs(g);
  EXPECT_EQ(shrink_pair_bfs_count(), pair_before);
  EXPECT_EQ(shrink_all_pairs_compute_count(), batch_before + 1);
  (void)shrink(g, 0, 3);
  EXPECT_EQ(shrink_pair_bfs_count(), pair_before + 1);
}

}  // namespace
}  // namespace rdv::views
