#include <gtest/gtest.h>

#include "cache/artifact_cache.hpp"
#include "core/bounds.hpp"
#include "core/universal_rv.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

namespace rdv::core {
namespace {

using graph::Graph;
using graph::Node;
using sim::RunConfig;
using sim::RunResult;
namespace families = rdv::graph::families;

RunResult run_universal(const Graph& g, Node u, Node v,
                        std::uint64_t delay, std::uint64_t max_rounds,
                        std::uint64_t max_phases = 200) {
  UniversalOptions options;
  options.max_phases = max_phases;
  RunConfig config;
  config.max_rounds = max_rounds;
  return sim::run_anonymous(g, universal_rv_program(options), u, v, delay,
                            config);
}

TEST(UniversalRV, TwoNodeGraphSymmetricDelayOne) {
  // The smallest feasible symmetric STIC: [(0,1), 1] in the two-node
  // graph; Shrink = 1; success guaranteed by phase g(2,1,1) = 6.
  const Graph g = families::two_node_graph();
  EXPECT_EQ(guaranteed_phase_symmetric(2, 1, 1), 6u);
  const RunResult r = run_universal(g, 0, 1, 1, 1u << 22);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.met);
}

TEST(UniversalRV, TwoNodeGraphLargerDelays) {
  const Graph g = families::two_node_graph();
  for (std::uint64_t delay : {2ull, 3ull, 5ull}) {
    const RunResult r = run_universal(g, 0, 1, delay, 1u << 23);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.met) << "delay " << delay;
  }
}

TEST(UniversalRV, NonsymmetricPathNoDelay) {
  // Nonsymmetric positions, delta = 0: the AsymmRV arm of the first
  // phase with n' = 3 fires.
  const Graph g = families::path_graph(3);
  ASSERT_FALSE(views::symmetric(g, 0, 2));
  const RunResult r = run_universal(g, 0, 2, 0, 1u << 23);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.met);
}

TEST(UniversalRV, NonsymmetricBothOrders) {
  // The universal algorithm is role-free: either agent may be earlier.
  const Graph g = families::path_graph(4);
  for (const auto& [u, v] : {std::pair<Node, Node>{0, 2},
                             std::pair<Node, Node>{2, 0}}) {
    const RunResult r = run_universal(g, u, v, 1, 1u << 23);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.met) << u << "," << v;
  }
}

TEST(UniversalRV, SymmetricRingAtShrink) {
  // ring(4), opposite nodes: Shrink = 2; delay 2 is feasible.
  const Graph g = families::oriented_ring(4);
  ASSERT_EQ(views::shrink(g, 0, 2), 2u);
  const RunResult r = run_universal(g, 0, 2, 2, 1u << 24);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.met);
}

TEST(UniversalRV, InfeasibleSymmetricBelowShrink) {
  // ring(4), delay 1 < Shrink = 2: no algorithm can meet (Lemma 3.1);
  // UniversalRV must run forever without meeting. Bound the simulation
  // by phases and rounds.
  const Graph g = families::oriented_ring(4);
  const RunResult r =
      run_universal(g, 0, 2, 1, /*max_rounds=*/1u << 22,
                    /*max_phases=*/60);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.met);
}

TEST(UniversalRV, SimultaneousSymmetricNeverMeets) {
  const Graph g = families::two_node_graph();
  const RunResult r = run_universal(g, 0, 1, 0, /*max_rounds=*/1u << 22,
                                    /*max_phases=*/60);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.met);
}

TEST(UniversalRV, MeetsWithinGuaranteedPhaseBudget) {
  // Stronger than "met": it met no later than the end of the
  // guaranteed phase, i.e. within the sum of phase durations through
  // g(n, Shrink, delta) (counted from the later agent's start; the
  // earlier agent spends `delay` extra rounds, which only helps).
  const Graph g = families::two_node_graph();
  const std::uint64_t P = guaranteed_phase_symmetric(2, 1, 1);
  std::uint64_t budget = 0;
  for (std::uint64_t p = 1; p <= P; ++p) {
    const PhaseTriple t = phase_decode(p);
    if (t.d >= t.n) continue;  // skipped phases consume no rounds
    const std::uint64_t M = cache::cached_uxs(
        static_cast<std::uint32_t>(t.n))->length();
    budget = support::sat_add(
        budget, universal_phase_duration(t.n, t.d, t.delta, M));
  }
  const RunResult r = run_universal(g, 0, 1, 1, 1u << 24);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_TRUE(r.met);
  EXPECT_LE(r.meet_from_later_start, budget);
}

TEST(UniversalRV, AblationAsymmOnlyStillMeetsNonsymmetric) {
  UniversalOptions options;
  options.enable_symm = false;
  options.max_phases = 200;
  RunConfig config;
  config.max_rounds = 1u << 23;
  const Graph g = families::path_graph(3);
  const RunResult r = sim::run_anonymous(
      g, universal_rv_program(options), 0, 2, 0, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.met);
}

TEST(UniversalRV, AblationSymmOnlyStillMeetsSymmetric) {
  UniversalOptions options;
  options.enable_asymm = false;
  options.max_phases = 200;
  RunConfig config;
  config.max_rounds = 1u << 23;
  const Graph g = families::two_node_graph();
  const RunResult r = sim::run_anonymous(
      g, universal_rv_program(options), 0, 1, 1, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.met);
}

}  // namespace
}  // namespace rdv::core
