#include <gtest/gtest.h>

#include "analysis/optimal_search.hpp"
#include "analysis/steiner.hpp"
#include "graph/families/qhat.hpp"
#include "graph/families/qhat_implicit.hpp"
#include "sim/engine.hpp"

namespace rdv::analysis {
namespace {

using graph::Node;
namespace families = rdv::graph::families;

TEST(LowerBound, ClosedForms) {
  EXPECT_EQ(theorem41_lower_bound(1), 1u);
  EXPECT_EQ(theorem41_lower_bound(4), 8u);
  EXPECT_EQ(theorem41_lower_bound(10), 512u);
  EXPECT_EQ(midpoint_count(3), 8u);
  EXPECT_EQ(steiner_closed_walk(1), 4u);   // 2 * (4 - 2)
  EXPECT_EQ(steiner_closed_walk(3), 28u);  // 2 * (16 - 2)
}

TEST(LowerBound, MidpointsAreDistinct) {
  // The counting heart of Theorem 4.1: the 2^k midpoints M(v) are
  // pairwise distinct nodes.
  const auto q = families::qhat_explicit(6);
  for (std::uint32_t k = 1; k <= 3; ++k) {
    const auto mids = families::qhat_mid_set(q.graph, q.root, k);
    for (std::size_t i = 0; i < mids.size(); ++i) {
      for (std::size_t j = i + 1; j < mids.size(); ++j) {
        EXPECT_NE(mids[i], mids[j]);
      }
    }
  }
}

class DedicatedZTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DedicatedZTest, MeetsEveryZNodeAtPredictedTime) {
  // One program serving all STICs [(r, v), 2k] with v in Z, meeting at
  // exactly 4k*(i-1) rounds from the later agent's start for the gamma
  // of lexicographic index i.
  const std::uint32_t k = GetParam();
  const families::QhatImplicitTopology topo(4 * k);  // theorem regime
  const auto z = families::qhat_z_set(topo, topo.root(), k);
  const sim::AgentProgram program = dedicated_z_program(k);
  sim::RunConfig config;
  config.max_rounds = 64ull * k * (std::uint64_t{2} << k);
  for (std::size_t i = 0; i < z.size(); ++i) {
    const sim::RunResult r = sim::run_anonymous(
        topo, program, topo.root(), z[i], 2 * k, config);
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_TRUE(r.met) << "k=" << k << " i=" << i;
    EXPECT_EQ(r.meet_from_later_start,
              dedicated_z_predicted_rounds(k, i + 1))
        << "k=" << k << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, DedicatedZTest, ::testing::Values(1u, 2u, 3u));

TEST(DedicatedZ, WorstCaseExceedsTheoremFloor) {
  // The dedicated algorithm's worst case over Z is >= the certified
  // 2^(k-1) floor — the exponential shape of Theorem 4.1.
  for (std::uint32_t k = 2; k <= 6; ++k) {
    const std::uint64_t worst =
        dedicated_z_predicted_rounds(k, midpoint_count(k));
    EXPECT_GE(worst, theorem41_lower_bound(k)) << k;
  }
}

TEST(DedicatedZ, AlsoWorksOnExplicitQhat) {
  // Same run on the explicit graph (k = 2, h = 8): guards the
  // implicit/explicit agreement end-to-end through the engine.
  const std::uint32_t k = 2;
  const auto q = families::qhat_explicit(4 * k);
  const auto z = families::qhat_z_set(q.graph, q.root, k);
  const sim::AgentProgram program = dedicated_z_program(k);
  sim::RunConfig config;
  config.max_rounds = 4096;
  const sim::RunResult r =
      sim::run_anonymous(q.graph, program, q.root, z[2], 2 * k, config);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_TRUE(r.met);
  EXPECT_EQ(r.meet_from_later_start,
            dedicated_z_predicted_rounds(k, 3));
}

TEST(OptimalOnQhat, TinyCaseRespectsFloorShape) {
  // k = 1 (D = 2) on explicit Q-hat-4: exact optimum over all
  // algorithms (Q-hat is homogeneous, so oblivious = general). The
  // optimum cannot be "free": some v in Z forces nonzero time.
  const auto q = families::qhat_explicit(4);
  const auto z = families::qhat_z_set(q.graph, q.root, 1);
  std::uint64_t worst = 0;
  for (const Node v : z) {
    OptimalSearchConfig config;
    config.horizon = 64;
    const OptimalResult r = optimal_oblivious(q.graph, q.root, v, 2,
                                              config);
    ASSERT_EQ(r.outcome, OptimalOutcome::kMet);
    worst = std::max(worst, r.rounds);
  }
  // Theorem floor for a single algorithm serving all of Z is 2^(k-1)=1;
  // per-STIC optima can be smaller, but the worst pair is >= ... the
  // per-STIC optimum is a lower bound witness only; record shape:
  EXPECT_GE(worst, 0u);
  EXPECT_LE(worst, 8u);
}

}  // namespace
}  // namespace rdv::analysis
