#include <gtest/gtest.h>

#include "graph/families/families.hpp"
#include "views/quotient.hpp"
#include "views/refinement.hpp"
#include "views/view_tree.hpp"

namespace rdv::views {
namespace {

using graph::Graph;
using graph::Node;
namespace families = rdv::graph::families;

TEST(Refinement, OrientedRingFullySymmetric) {
  const Graph g = families::oriented_ring(7);
  const ViewClasses c = compute_view_classes(g);
  EXPECT_EQ(c.class_count, 1u);
  EXPECT_TRUE(c.symmetric(0, 4));
}

TEST(Refinement, OrientedTorusFullySymmetric) {
  const Graph g = families::oriented_torus(4, 5);
  EXPECT_EQ(compute_view_classes(g).class_count, 1u);
}

TEST(Refinement, HypercubeFullySymmetric) {
  const Graph g = families::hypercube(3);
  EXPECT_EQ(compute_view_classes(g).class_count, 1u);
}

TEST(Refinement, PathClassesMirrorButPortsBreak) {
  // path(4): 0-1-2-3. Endpoints 0 and 3 are symmetric by shape, but our
  // port convention (interior port 0 toward the smaller id) breaks the
  // reflection for interior nodes... and with interior nodes split, the
  // endpoints split too (their neighbors differ).
  const Graph g = families::path_graph(4);
  const ViewClasses c = compute_view_classes(g);
  EXPECT_FALSE(c.symmetric(1, 2));
  EXPECT_FALSE(c.symmetric(0, 3));
}

TEST(Refinement, PathOfThreeEndpointsSymmetric) {
  // path(3): 0-1-2 — node 1 sees both endpoints through distinct ports
  // but the endpoints' views are genuinely equal: each is a degree-1
  // node attached by the middle node's distinct ports... The views
  // differ only if the port labels differ; endpoint 0 enters 1 by port
  // 0, endpoint 2 enters 1 by port 1, so their views differ at depth 1.
  const Graph g = families::path_graph(3);
  const ViewClasses c = compute_view_classes(g);
  EXPECT_FALSE(c.symmetric(0, 2));
}

TEST(Refinement, SymmetricDoubleTreeMirrors) {
  const Graph g = families::symmetric_double_tree(2, 2);
  const ViewClasses c = compute_view_classes(g);
  const Node half = g.size() / 2;
  for (Node v = 0; v < half; ++v) {
    EXPECT_TRUE(c.symmetric(v, v + half)) << v;
  }
  // Nodes at different depths are never symmetric.
  EXPECT_FALSE(c.symmetric(0, 1));
}

TEST(Refinement, ScrambledRingBreaksSymmetryForSomePair) {
  const Graph g = families::scrambled_ring(8, 3);
  const ViewClasses c = compute_view_classes(g);
  // Port scrambling almost surely leaves multiple classes; at minimum
  // the partition must be a valid function.
  ASSERT_EQ(c.class_of.size(), g.size());
  EXPECT_GE(c.class_count, 1u);
}

TEST(Refinement, MatchesExplicitViewsOnCorpus) {
  // The refinement fixpoint must agree with explicit truncated views at
  // depth >= n-1 on every pair, across assorted graphs.
  const std::vector<Graph> corpus = {
      families::oriented_ring(5),       families::path_graph(5),
      families::complete(4),            families::symmetric_double_tree(2, 1),
      families::random_connected(7, 3, 9),
      families::scrambled_ring(6, 21),
  };
  for (const Graph& g : corpus) {
    const ViewClasses c = compute_view_classes(g);
    const std::uint32_t depth = g.size();  // > n-1 for good measure
    for (Node u = 0; u < g.size(); ++u) {
      for (Node v = u + 1; v < g.size(); ++v) {
        EXPECT_EQ(c.symmetric(u, v), views_equal_to_depth(g, u, v, depth))
            << g.name() << " nodes " << u << "," << v;
      }
    }
  }
}

TEST(ViewTree, EncodingDepthZeroIsDegree) {
  const Graph g = families::path_graph(3);
  EXPECT_EQ(view_encoding(g, 0, 0), "(1:)");
  EXPECT_EQ(view_encoding(g, 1, 0), "(2:)");
}

TEST(SymmetricPairs, CountsOnKnownFamilies) {
  // Oriented ring on n nodes: all pairs symmetric: n(n-1)/2.
  const Graph ring = families::oriented_ring(6);
  EXPECT_EQ(symmetric_pairs(ring).size(), 15u);
  // Double tree with halves of size s: exactly s mirror pairs...plus
  // any within-half symmetry; with branching 1 (a path of two chains)
  // none exist within halves. b=1,t=2: halves are 3-chains.
  const Graph dt = families::symmetric_double_tree(1, 2);
  EXPECT_EQ(symmetric_pairs(dt).size(), 3u);
}

TEST(ViewDistance, ZeroWhenDegreesDiffer) {
  const Graph g = families::path_graph(4);
  EXPECT_EQ(view_distance(g, 0, 1), 0u);  // degree 1 vs 2
}

TEST(ViewDistance, SymmetricPairsReportEqual) {
  const Graph g = families::oriented_ring(6);
  EXPECT_EQ(view_distance(g, 0, 3), kViewsEqual);
}

TEST(ViewDistance, MatchesExplicitViewComparison) {
  const std::vector<Graph> corpus = {
      families::path_graph(5),
      families::scrambled_ring(6, 21),
      families::random_connected(7, 3, 9),
      families::grid(2, 3),
  };
  for (const Graph& g : corpus) {
    for (Node u = 0; u < g.size(); ++u) {
      for (Node v = u + 1; v < g.size(); ++v) {
        const std::uint32_t dist = view_distance(g, u, v);
        if (dist == kViewsEqual) {
          EXPECT_TRUE(views_equal_to_depth(g, u, v, g.size()))
              << g.name() << " " << u << "," << v;
        } else {
          // Views agree strictly below `dist` and differ at `dist`.
          if (dist > 0) {
            EXPECT_TRUE(views_equal_to_depth(g, u, v, dist - 1))
                << g.name() << " " << u << "," << v;
          }
          EXPECT_FALSE(views_equal_to_depth(g, u, v, dist))
              << g.name() << " " << u << "," << v;
        }
      }
    }
  }
}

TEST(Refinement, StarLeavesAreNotSymmetric) {
  // Each leaf enters the hub by a distinct port, so the hub's port
  // numbering labels the leaves: views differ at depth 1.
  const Graph g = families::star(7);
  const ViewClasses c = compute_view_classes(g);
  EXPECT_EQ(c.class_count, 7u);
  EXPECT_EQ(view_distance(g, 1, 2), 1u);
}

TEST(Quotient, OrientedRingCollapsesToOneClass) {
  const Graph g = families::oriented_ring(9);
  const ViewClasses c = compute_view_classes(g);
  const QuotientGraph q = build_quotient(g, c);
  ASSERT_EQ(q.class_count(), 1u);
  EXPECT_EQ(q.multiplicity[0], 9u);
  ASSERT_EQ(q.arcs[0].size(), 2u);
  EXPECT_EQ(q.arcs[0][0].to_class, 0u);
  EXPECT_EQ(q.arcs[0][0].rev_port, 1u);
}

TEST(Quotient, MultiplicitiesSumToSize) {
  const Graph g = families::random_connected(10, 5, 4);
  const ViewClasses c = compute_view_classes(g);
  const QuotientGraph q = build_quotient(g, c);
  std::uint32_t total = 0;
  for (std::uint32_t m : q.multiplicity) total += m;
  EXPECT_EQ(total, g.size());
}

}  // namespace
}  // namespace rdv::views
