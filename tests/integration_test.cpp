#include <gtest/gtest.h>

#include "analysis/feasibility.hpp"
#include "analysis/optimal_search.hpp"
#include "cache/artifact_cache.hpp"
#include "core/bounds.hpp"
#include "core/symm_rv.hpp"
#include "core/universal_rv.hpp"
#include "graph/families/families.hpp"
#include "graph/families/qhat.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "uxs/verifier.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

namespace rdv {
namespace {

using graph::Graph;
using graph::Node;
namespace families = rdv::graph::families;

TEST(Integration, UniversalOnSymmetricDoubleTree) {
  // Feasible symmetric STIC on the paper's Shrink = 1 family, solved
  // with zero knowledge.
  const Graph g = families::symmetric_double_tree(1, 1);
  ASSERT_TRUE(views::symmetric(g, 1, 3));
  ASSERT_EQ(views::shrink(g, 1, 3), 1u);
  core::UniversalOptions options;
  options.max_phases = 120;
  sim::RunConfig config;
  config.max_rounds = 1u << 24;
  const sim::RunResult r = sim::run_anonymous(
      g, core::universal_rv_program(options), 1, 3, 1, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.met);
}

TEST(Integration, UniversalOnScrambledRingNonsymmetric) {
  const Graph g = families::scrambled_ring(5, 23);
  const auto classes = views::compute_view_classes(g);
  // Find a nonsymmetric pair (the scrambling virtually guarantees one).
  Node u = graph::kNoNode;
  Node v = graph::kNoNode;
  for (Node a = 0; a < g.size() && u == graph::kNoNode; ++a) {
    for (Node b = 0; b < g.size(); ++b) {
      if (a != b && !classes.symmetric(a, b)) {
        u = a;
        v = b;
        break;
      }
    }
  }
  ASSERT_NE(u, graph::kNoNode);
  core::UniversalOptions options;
  options.max_phases = 200;
  sim::RunConfig config;
  config.max_rounds = 1u << 24;
  const sim::RunResult r = sim::run_anonymous(
      g, core::universal_rv_program(options), u, v, 0, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.met);
}

TEST(Integration, FeasibilitySweepOrientedRing3) {
  // ring(3): all pairs symmetric with Shrink = 1; Corollary 3.1 says
  // delay 0 infeasible, delays >= 1 feasible — verified by the
  // universal algorithm across the full STIC grid.
  const Graph g = families::oriented_ring(3);
  core::UniversalOptions options;
  options.max_phases = 120;
  sim::RunConfig config;
  config.max_rounds = 1u << 23;
  const analysis::SweepSummary summary = analysis::feasibility_sweep(
      g, 1, core::universal_rv_program(options), config);
  EXPECT_EQ(summary.inconsistent, 0u);
  EXPECT_EQ(summary.infeasible, 6u);  // six ordered pairs at delay 0
  EXPECT_EQ(summary.feasible, 6u);
}

TEST(Integration, SymmRVOnQhat2) {
  // Section 4 graph as a rendezvous arena: all nodes symmetric; pick
  // the root and a neighbor, delay = Shrink, known parameters.
  const auto q = families::qhat_explicit(2);
  const Node v = q.graph.step(q.root, 0).to;
  const std::uint32_t s = views::shrink(q.graph, q.root, v);
  ASSERT_GE(s, 1u);
  ASSERT_LE(s, 2u);
  const auto y_handle = cache::cached_uxs(q.graph.size());
  const uxs::Uxs& y = *y_handle;
  ASSERT_TRUE(uxs::is_uxs_for(q.graph, y));
  sim::RunConfig config;
  config.max_rounds = support::sat_mul(
      4, core::symm_rv_time_bound(q.graph.size(), s, s, y.length()));
  const sim::RunResult r = sim::run_anonymous(
      q.graph, core::symm_rv_program(q.graph.size(), s, s, y), q.root, v,
      s, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.met);
  EXPECT_LE(r.meet_from_later_start,
            core::symm_rv_time_bound(q.graph.size(), s, s, y.length()));
}

TEST(Integration, OptimalAgreesWithUniversalOnRing4) {
  // Three independent oracles on the same STICs: the characterization
  // predicate, the exhaustive optimal search, and the universal
  // algorithm.
  const Graph g = families::oriented_ring(4);
  const auto classes = views::compute_view_classes(g);
  core::UniversalOptions options;
  options.max_phases = 150;
  sim::RunConfig config;
  config.max_rounds = 1u << 24;
  for (const Node v : {Node{1}, Node{2}}) {
    for (std::uint64_t delay = 0; delay <= 2; ++delay) {
      const auto cls =
          analysis::classify_stic(g, classes, analysis::Stic{0, v, delay});
      const auto opt = analysis::optimal_oblivious(g, 0, v, delay);
      const auto run = sim::run_anonymous(
          g, core::universal_rv_program(options), 0, v, delay, config);
      ASSERT_TRUE(run.ok()) << run.error;
      EXPECT_EQ(cls.feasible,
                opt.outcome == analysis::OptimalOutcome::kMet);
      EXPECT_EQ(cls.feasible, run.met)
          << "v=" << v << " delay=" << delay;
    }
  }
}

}  // namespace
}  // namespace rdv
