#include <gtest/gtest.h>

#include "analysis/feasibility.hpp"
#include "analysis/stics.hpp"
#include "core/universal_rv.hpp"
#include "graph/families/families.hpp"

namespace rdv::analysis {
namespace {

using graph::Graph;
using graph::Node;
namespace families = rdv::graph::families;

TEST(Stics, EnumerationCounts) {
  const Graph g = families::path_graph(3);
  const auto stics = enumerate_stics(g, 2);
  // 3*2 ordered pairs * 3 delays.
  EXPECT_EQ(stics.size(), 18u);
}

TEST(Classify, SymmetricRequiresShrinkDelay) {
  const Graph g = families::oriented_ring(6);
  // (0, 3): symmetric, Shrink = 3.
  for (std::uint64_t delay = 0; delay <= 5; ++delay) {
    const auto cls = classify_stic(g, Stic{0, 3, delay});
    EXPECT_TRUE(cls.symmetric);
    EXPECT_EQ(cls.shrink, 3u);
    EXPECT_EQ(cls.feasible, delay >= 3);
  }
}

TEST(Classify, NonsymmetricAlwaysFeasible) {
  const Graph g = families::path_graph(4);
  for (std::uint64_t delay = 0; delay <= 3; ++delay) {
    const auto cls = classify_stic(g, Stic{0, 2, delay});
    EXPECT_FALSE(cls.symmetric);
    EXPECT_TRUE(cls.feasible);
  }
}

TEST(FeasibilitySweep, TwoNodeGraphMatchesCharacterization) {
  // Full cross-check of Corollary 3.1 on the two-node graph with
  // UniversalRV: [(0,1), 0] infeasible, [(0,1), delta>=1] feasible.
  const Graph g = families::two_node_graph();
  core::UniversalOptions options;
  options.max_phases = 60;
  sim::RunConfig config;
  config.max_rounds = 1u << 22;
  const SweepSummary summary = feasibility_sweep(
      g, 2, core::universal_rv_program(options), config);
  EXPECT_EQ(summary.checks.size(), 6u);
  EXPECT_EQ(summary.feasible, 4u);    // delays 1,2 in both orders
  EXPECT_EQ(summary.infeasible, 2u);  // delay 0 in both orders
  EXPECT_EQ(summary.inconsistent, 0u);
}

TEST(FeasibilitySweep, Path3MatchesCharacterization) {
  // path(3): all pairs nonsymmetric -> everything feasible.
  const Graph g = families::path_graph(3);
  core::UniversalOptions options;
  options.max_phases = 120;
  sim::RunConfig config;
  config.max_rounds = 1u << 23;
  const SweepSummary summary = feasibility_sweep(
      g, 1, core::universal_rv_program(options), config);
  EXPECT_EQ(summary.infeasible, 0u);
  EXPECT_EQ(summary.inconsistent, 0u);
}

}  // namespace
}  // namespace rdv::analysis
