// ISSUE 8: the worklist refinement engine must be byte-identical to the
// naive oracle on class_of/class_count (the canonical contract) on
// every family, deterministic across thread counts and cache modes, and
// exercised through the batched entry point. `rounds` is an
// engine-specific diagnostic and is deliberately NOT compared between
// engines.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "graph/families/families.hpp"
#include "store/codec.hpp"
#include "support/thread_pool.hpp"
#include "views/refinement.hpp"
#include "views/refinement_worklist.hpp"

namespace rdv::views {
namespace {

using graph::Graph;
using graph::Node;
namespace families = rdv::graph::families;

std::vector<Graph> family_corpus() {
  std::vector<Graph> graphs;
  graphs.push_back(families::two_node_graph());
  graphs.push_back(families::oriented_ring(3));
  graphs.push_back(families::oriented_ring(7));
  graphs.push_back(families::oriented_ring(12));
  graphs.push_back(families::scrambled_ring(8, 3));
  graphs.push_back(families::scrambled_ring(17, 11));
  graphs.push_back(families::oriented_torus(4, 5));
  graphs.push_back(families::oriented_torus(6, 6));
  graphs.push_back(families::hypercube(3));
  graphs.push_back(families::hypercube(4));
  graphs.push_back(families::complete(4));
  graphs.push_back(families::complete(7));
  graphs.push_back(families::path_graph(3));
  graphs.push_back(families::path_graph(4));
  graphs.push_back(families::path_graph(9));
  graphs.push_back(families::balanced_tree(2, 3));
  graphs.push_back(families::balanced_tree(3, 2));
  graphs.push_back(families::symmetric_double_tree(2, 2));
  graphs.push_back(families::symmetric_double_tree(1, 2));
  graphs.push_back(families::grid(3, 4));
  graphs.push_back(families::grid(5, 5));
  graphs.push_back(families::star(7));
  graphs.push_back(families::complete_bipartite(3, 4));
  graphs.push_back(families::complete_bipartite(4, 4));
  graphs.push_back(families::ring_with_chord(10));
  graphs.push_back(families::random_connected(7, 3, 9));
  graphs.push_back(families::random_connected(12, 10, 25));
  graphs.push_back(families::random_connected(20, 24, 27));
  graphs.push_back(families::random_connected(40, 70, 30));
  return graphs;
}

void expect_canonical_match(const Graph& g, const ViewClasses& got,
                            const ViewClasses& oracle) {
  ASSERT_EQ(got.class_of.size(), g.size()) << g.name();
  EXPECT_EQ(got.class_count, oracle.class_count) << g.name();
  EXPECT_EQ(got.class_of, oracle.class_of) << g.name();
}

TEST(WorklistRefinement, MatchesNaiveOracleOnEveryFamily) {
  for (const Graph& g : family_corpus()) {
    expect_canonical_match(g, compute_view_classes_worklist(g),
                           compute_view_classes_naive(g));
  }
}

TEST(WorklistRefinement, ImplicitTwinFamiliesCollapseToOneClass) {
  // Vertex-transitive families must collapse to a single class — the
  // "implicit twins" the c2 census exploits.
  EXPECT_EQ(compute_view_classes_worklist(families::oriented_ring(16))
                .class_count, 1u);
  EXPECT_EQ(compute_view_classes_worklist(families::oriented_torus(5, 7))
                .class_count, 1u);
  EXPECT_EQ(compute_view_classes_worklist(families::hypercube(5))
                .class_count, 1u);
  // NOT complete(n): its neighbor-sorted port labeling is incoherent
  // (each node's reverse-port vector differs), so even the oracle
  // splits it — same reason star(7) has 7 classes in views_test.
}

TEST(WorklistRefinement, DisconnectedGraphsRefineComponentwise) {
  // GraphBuilder rejects disconnected graphs, but the refinement
  // engines are total over the public Graph constructor. Two disjoint
  // 2-rings: all four nodes look identical to an anonymous agent.
  std::vector<std::vector<graph::HalfEdge>> adj(4);
  adj[0] = {{1, 0}};
  adj[1] = {{0, 0}};
  adj[2] = {{3, 0}};
  adj[3] = {{2, 0}};
  const Graph twin_edges(std::move(adj), "two-edges");
  const ViewClasses c = compute_view_classes_worklist(twin_edges);
  expect_canonical_match(twin_edges, c,
                         compute_view_classes_naive(twin_edges));
  EXPECT_EQ(c.class_count, 1u);

  // A path(3) next to an isolated edge: components of different shape
  // must not merge, and mirrored roles across components must.
  std::vector<std::vector<graph::HalfEdge>> mixed(5);
  mixed[0] = {{1, 0}};
  mixed[1] = {{0, 0}, {2, 0}};
  mixed[2] = {{1, 1}};
  mixed[3] = {{4, 0}};
  mixed[4] = {{3, 0}};
  const Graph path_plus_edge(std::move(mixed), "path3+edge");
  const ViewClasses m = compute_view_classes_worklist(path_plus_edge);
  expect_canonical_match(path_plus_edge, m,
                         compute_view_classes_naive(path_plus_edge));
  EXPECT_TRUE(m.symmetric(3, 4));
  EXPECT_FALSE(m.symmetric(0, 3));
}

TEST(WorklistRefinement, CanonicalIdsAreFirstOccurrenceDense) {
  for (const Graph& g : family_corpus()) {
    const ViewClasses c = compute_view_classes_worklist(g);
    // Scanning class_of in node order, every id is either already seen
    // or exactly the next dense id — the canonical-ordering contract
    // fingerprint keys and codec bytes rely on.
    std::uint32_t next = 0;
    for (Node v = 0; v < g.size(); ++v) {
      ASSERT_LE(c.class_of[v], next) << g.name() << " node " << v;
      if (c.class_of[v] == next) ++next;
    }
    EXPECT_EQ(next, c.class_count) << g.name();
  }
}

TEST(WorklistRefinement, CodecRoundTripsWorklistOutput) {
  // Decode-compatibility of stored artifacts: the worklist output goes
  // through the unchanged kViewClasses codec byte-exactly.
  for (const Graph& g : {families::scrambled_ring(9, 5),
                         families::random_connected(16, 16, 26)}) {
    const ViewClasses c = compute_view_classes_worklist(g);
    const ViewClasses back =
        store::decode_view_classes(store::encode_view_classes(c));
    EXPECT_EQ(back.class_of, c.class_of);
    EXPECT_EQ(back.class_count, c.class_count);
    EXPECT_EQ(back.rounds, c.rounds);
  }
}

TEST(WorklistRefinement, BatchMatchesSerialComputation) {
  const std::vector<Graph> graphs = family_corpus();
  std::vector<const Graph*> ptrs;
  for (const Graph& g : graphs) ptrs.push_back(&g);
  const std::vector<ViewClasses> batched = view_classes_batch(ptrs);
  ASSERT_EQ(batched.size(), graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const ViewClasses direct = compute_view_classes_worklist(graphs[i]);
    EXPECT_EQ(batched[i].class_of, direct.class_of) << graphs[i].name();
    EXPECT_EQ(batched[i].class_count, direct.class_count);
    // Same engine on both paths, so even the diagnostic agrees.
    EXPECT_EQ(batched[i].rounds, direct.rounds);
  }
}

TEST(WorklistRefinement, DeterministicAcrossThreadCountsAndCacheModes) {
  const std::vector<Graph> graphs = family_corpus();
  std::vector<const Graph*> ptrs;
  for (const Graph& g : graphs) ptrs.push_back(&g);
  // Baseline: serial worklist, encoded through the codec so the
  // comparison covers every byte (ids, count, diagnostic).
  std::vector<std::string> baseline;
  for (const Graph& g : graphs) {
    baseline.push_back(
        store::encode_view_classes(compute_view_classes_worklist(g)));
  }
  for (const std::size_t threads : {1u, 4u, 16u}) {
    support::ThreadPool pool(threads);
    ViewClassesBatchOptions options;
    options.pool = &pool;
    const std::vector<ViewClasses> batched = view_classes_batch(ptrs, options);
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      EXPECT_EQ(store::encode_view_classes(batched[i]), baseline[i])
          << graphs[i].name() << " at " << threads << " threads";
    }
    for (const bool enabled : {true, false}) {
      cache::CacheConfig config;
      config.enabled = enabled;
      cache::ArtifactCache cache(config);
      for (std::size_t i = 0; i < graphs.size(); ++i) {
        EXPECT_EQ(store::encode_view_classes(*cache.view_classes(graphs[i])),
                  baseline[i])
            << graphs[i].name() << " cache enabled=" << enabled;
      }
    }
  }
}

TEST(WorklistRefinement, SeededRandomFuzzSweepToN512) {
  // Worklist vs oracle over a seeded random-graph sweep: sizes double
  // to n=512, edge surplus sweeps sparse to dense-ish, 3 seeds per
  // size. This is the acceptance fuzz bar for the kernel swap.
  for (const std::uint32_t n : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const std::uint32_t extra = n / 2 + static_cast<std::uint32_t>(seed) * n / 4;
      const Graph g = families::random_connected(n, extra, 1000 + n + seed);
      expect_canonical_match(g, compute_view_classes_worklist(g),
                             compute_view_classes_naive(g));
    }
  }
}

TEST(WorklistRefinement, ProcessCountersAdvance) {
  const std::uint64_t computes0 = refine_worklist_compute_count();
  const std::uint64_t pops0 = refine_worklist_pop_count();
  const std::uint64_t naive0 = refine_naive_count();
  (void)compute_view_classes_worklist(families::scrambled_ring(9, 2));
  EXPECT_EQ(refine_worklist_compute_count(), computes0 + 1);
  EXPECT_GT(refine_worklist_pop_count(), pops0);
  EXPECT_EQ(refine_naive_count(), naive0);  // production path, no oracle
  (void)compute_view_classes_naive(families::scrambled_ring(9, 2));
  EXPECT_EQ(refine_naive_count(), naive0 + 1);
}

TEST(WorklistRefinement, ViewDistanceAgreesWithPartition) {
  // Satellite regression for the view_distance buffer-reuse rewrite:
  // finite distance exactly on asymmetric pairs, kViewsEqual on
  // symmetric ones.
  for (const Graph& g : {families::scrambled_ring(8, 3),
                         families::path_graph(5),
                         families::symmetric_double_tree(2, 1)}) {
    const ViewClasses c = compute_view_classes_worklist(g);
    for (Node u = 0; u < g.size(); ++u) {
      for (Node v = u + 1; v < g.size(); ++v) {
        const std::uint32_t d = view_distance(g, u, v);
        if (c.symmetric(u, v)) {
          EXPECT_EQ(d, kViewsEqual) << g.name() << " " << u << "," << v;
        } else {
          EXPECT_NE(d, kViewsEqual) << g.name() << " " << u << "," << v;
        }
      }
    }
  }
}

}  // namespace
}  // namespace rdv::views
