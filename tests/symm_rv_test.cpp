#include <gtest/gtest.h>

#include "analysis/stics.hpp"
#include "cache/artifact_cache.hpp"
#include "core/bounds.hpp"
#include "core/symm_rv.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "uxs/verifier.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

namespace rdv::core {
namespace {

using graph::Graph;
using graph::Node;
using sim::RunConfig;
using sim::RunResult;
namespace families = rdv::graph::families;

RunResult run_symm(const Graph& g, Node u, Node v, std::uint64_t delay,
                   std::uint32_t d, std::uint64_t delta_param,
                   std::uint64_t cap = 0) {
  const auto y_handle = cache::cached_uxs(g.size());
  const uxs::Uxs& y = *y_handle;
  EXPECT_TRUE(uxs::is_uxs_for(g, y)) << g.name();
  RunConfig config;
  config.max_rounds =
      cap ? cap : support::sat_mul(
                      4, symm_rv_time_bound(g.size(), d, delta_param,
                                            y.length()));
  return sim::run_anonymous(
      g, symm_rv_program(g.size(), d, delta_param, y), u, v, delay,
      config);
}

TEST(SymmRV, MeetsOnSymmetricDoubleTree) {
  // The paper's flagship symmetric example: Shrink = 1, so delay 1
  // suffices no matter the distance.
  const Graph g = families::symmetric_double_tree(2, 2);
  const Node half = g.size() / 2;
  for (const Node u : {Node{0}, Node{3}, half - 1}) {
    const Node v = families::double_tree_mirror(g, u);
    const RunResult r = run_symm(g, u, v, /*delay=*/1, /*d=*/1,
                                 /*delta_param=*/1);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.met) << "pair " << u << "," << v;
  }
}

TEST(SymmRV, MeetsOnOrientedRingAtShrinkDelay) {
  // Ring: Shrink(0, v) = dist(0, v); delay = Shrink is feasible.
  const Graph g = families::oriented_ring(6);
  for (const Node v : {Node{1}, Node{2}, Node{3}}) {
    const std::uint32_t d = views::shrink(g, 0, v);
    const RunResult r = run_symm(g, 0, v, /*delay=*/d, d, d);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.met) << "v=" << v;
  }
}

TEST(SymmRV, MeetsWithDelayBetweenDAndDelta) {
  // Lemma 3.2 extended: SymmRV(n, d, delta') meets whenever the actual
  // delay is in [d, delta'].
  const Graph g = families::symmetric_double_tree(2, 1);
  const Node v = families::double_tree_mirror(g, 2);
  for (std::uint64_t actual_delay = 1; actual_delay <= 4; ++actual_delay) {
    const RunResult r =
        run_symm(g, 2, v, actual_delay, /*d=*/1, /*delta_param=*/4);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.met) << "delay " << actual_delay;
  }
}

TEST(SymmRV, RespectsLemma33TimeBound) {
  const Graph g = families::symmetric_double_tree(2, 1);
  const auto y_handle = cache::cached_uxs(g.size());
  const uxs::Uxs& y = *y_handle;
  const Node v = families::double_tree_mirror(g, 0);
  const RunResult r = run_symm(g, 0, v, 1, 1, 1);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_TRUE(r.met);
  EXPECT_LE(r.meet_from_later_start,
            symm_rv_time_bound(g.size(), 1, 1, y.length()));
}

TEST(SymmRV, NoMeetBelowShrinkDelay) {
  // Lemma 3.1: symmetric pair with delay < Shrink is infeasible — and
  // in particular SymmRV cannot beat it.
  const Graph g = families::oriented_ring(8);
  const std::uint32_t d = views::shrink(g, 0, 4);  // = 4
  ASSERT_EQ(d, 4u);
  for (std::uint64_t delay = 0; delay < d; ++delay) {
    const RunResult r = run_symm(g, 0, 4, delay, d, d, /*cap=*/200'000);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_FALSE(r.met) << "delay " << delay;
  }
}

TEST(SymmRV, SimultaneousStartNeverMeets) {
  // delta = 0 on symmetric positions: agents mirror each other forever.
  const Graph g = families::symmetric_double_tree(2, 2);
  const Node v = families::double_tree_mirror(g, 1);
  const RunResult r = run_symm(g, 1, v, 0, 1, 1, /*cap=*/100'000);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.met);
}

TEST(SymmRV, CompletesAndReturnsHomeWithoutPartner) {
  // A single agent finishing SymmRV ends at its start node
  // (Algorithm 1's final backtrack).
  const Graph g = families::oriented_ring(5);
  const auto y_handle = cache::cached_uxs(5);
  const uxs::Uxs& y = *y_handle;
  sim::RunConfig config;
  config.max_rounds = support::sat_mul(
      4, symm_rv_time_bound(5, 1, 1, y.length()));
  // Later agent sleeps far away with a huge delay so it never appears.
  const RunResult r = sim::run_pair(
      g, symm_rv_program(5, 1, 1, y),
      [](sim::Mailbox& mb, sim::Observation) -> sim::Proc {
        return [](sim::Mailbox& mb2) -> sim::Proc {
          co_await mb2.wait(support::kRoundInfinity);
        }(mb);
      },
      0, 2, support::kRoundInfinity - 8, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.met);
  EXPECT_EQ(r.final_pos[0], 0u);
}

class SymmRVFeasiblePairs
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymmRVFeasiblePairs, AllSymmetricPairsMeetAtShrinkDelay) {
  // Property sweep: on the hypercube, every pair is symmetric; with
  // d = Shrink(u, v) and delay = d, SymmRV must always meet.
  const Graph g = families::hypercube(3);
  const std::uint64_t u = GetParam();
  for (Node v = 0; v < g.size(); ++v) {
    if (v == u) continue;
    const std::uint32_t d = views::shrink(g, static_cast<Node>(u), v);
    const RunResult r =
        run_symm(g, static_cast<Node>(u), v, d, d, d);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.met) << "pair " << u << "," << v;
  }
}

INSTANTIATE_TEST_SUITE_P(HypercubeStarts, SymmRVFeasiblePairs,
                         ::testing::Values(0u, 3u, 5u, 7u));

}  // namespace
}  // namespace rdv::core
