#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include <fstream>
#include <iterator>

#include "cache/artifact_cache.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "store/result_log.hpp"
#include "support/thread_pool.hpp"
#include "views/shrink.hpp"

namespace rdv::exp {
namespace {

/// Full rendered output of one run: every emission format plus notes,
/// so a difference anywhere (cells, schema, commentary) is caught.
std::string render(const Experiment& e, const ExpContext& ctx) {
  const ExpOutput output = run_experiment(e, ctx);
  std::string out = output.table.to_markdown() + output.table.to_csv() +
                    output.table.to_json();
  for (const std::string& note : output.notes) out += note + "\n";
  return out;
}

TEST(Registry, BuiltinRegistersEveryPaperExperiment) {
  const Registry& registry = builtin_registry();
  EXPECT_GE(registry.size(), 12u);
  const char* ids[] = {
      "t1_shrink_families",     "t2_feasibility_characterization",
      "t3_symm_rv_time",        "t4_asymm_rv_time",
      "t5_universal_time",      "t6_lower_bound_qhat",
      "t7_infeasible_stics",    "t8_uxs_ablation",
      "t9_label_ablation",      "t10_optimal_crossover",
      "t11_randomized_baseline", "f1_qhat_construction",
      "c1_random_census",       "c2_implicit_census"};
  for (const char* id : ids) {
    const Experiment* e = registry.find(id);
    ASSERT_NE(e, nullptr) << id;
    EXPECT_EQ(e->id, id);
    EXPECT_FALSE(e->title.empty()) << id;
    EXPECT_FALSE(e->headers.empty()) << id;
    EXPECT_FALSE(e->axes.empty()) << id;
    EXPECT_FALSE(e->tags.empty()) << id;
  }
}

TEST(Registry, MatchFiltersByIdTitleAndTag) {
  const Registry& registry = builtin_registry();
  EXPECT_EQ(registry.match("").size(), registry.size());
  // Tag filter: both Q-hat experiments carry the "qhat" tag.
  const auto qhat = registry.match("qhat");
  EXPECT_GE(qhat.size(), 2u);
  // Id filter is a substring match.
  const auto t1 = registry.match("t11_");
  ASSERT_EQ(t1.size(), 1u);
  EXPECT_EQ(t1[0]->id, "t11_randomized_baseline");
  EXPECT_TRUE(registry.match("no-such-experiment").empty());
}

TEST(Registry, RejectsDuplicateAndMalformedRegistrations) {
  Registry registry;
  Experiment e;
  e.id = "dup";
  e.headers = {"x"};
  e.cases = [](const ExpContext&) { return std::vector<CaseFn>{}; };
  registry.add(e);
  EXPECT_THROW(registry.add(e), std::invalid_argument);
  Experiment no_id = e;
  no_id.id.clear();
  EXPECT_THROW(registry.add(no_id), std::invalid_argument);
  Experiment no_cases;
  no_cases.id = "no-cases";
  no_cases.headers = {"x"};
  EXPECT_THROW(registry.add(no_cases), std::invalid_argument);
}

TEST(RunExperiment, MergesRowsInCaseOrderAndSkipsEmpty) {
  Experiment e;
  e.id = "synthetic";
  e.headers = {"i"};
  e.cases = [](const ExpContext&) {
    std::vector<CaseFn> fns;
    for (std::size_t i = 0; i < 64; ++i) {
      fns.push_back([i](const ExpContext&) {
        // Every third case produces no row.
        if (i % 3 == 2) return std::vector<std::string>{};
        return std::vector<std::string>{std::to_string(i)};
      });
    }
    return fns;
  };
  support::ThreadPool pool(4);
  ExpContext ctx;
  ctx.sweep.pool = &pool;
  const ExpOutput output = run_experiment(e, ctx);
  EXPECT_EQ(output.stats.items_total, 64u);
  ASSERT_EQ(output.table.row_count(), 64u - 64u / 3);
  // Declined (empty) rows are not "produced".
  EXPECT_EQ(output.stats.items_produced, output.table.row_count());
  // Rows come out in case order although cases ran on 4 threads.
  std::string expected;
  for (std::size_t i = 0; i < 64; ++i) {
    if (i % 3 != 2) expected += std::to_string(i) + "\n";
  }
  std::string csv = output.table.to_csv();
  EXPECT_EQ(csv, "i\n" + expected);
}

/// The acceptance bar for the registry port: every registered
/// experiment's rendered output is byte-identical at 1 vs N threads
/// (including an oversubscribed 16-thread pool driving the pipelined
/// scheduler with tiny chunks, so inner sweeps span many wave slots —
/// and with every case on the pool, t1/t2's nested sweeps included)
/// and with the artifact cache enabled, disabled, and
/// eviction-thrashed — the same contract cache_test.cpp pins for raw
/// sweeps.
TEST(ExpDeterminism, ByteIdenticalAcrossThreadsChunksAndCacheConfigs) {
  cache::CacheConfig off;
  off.enabled = false;
  cache::CacheConfig tiny;  // force evictions mid-experiment
  tiny.shards = 1;
  tiny.capacity_per_shard = 1;
  struct Schedule {
    std::size_t threads;
    std::size_t chunk;  // 0 = the default chunk size
  };
  const Schedule schedules[] = {{1, 0}, {4, 0}, {16, 2}};
  for (const Experiment& e : builtin_registry().all()) {
    SCOPED_TRACE(e.id);
    std::vector<std::string> outputs;
    for (const Schedule& schedule : schedules) {
      for (const cache::CacheConfig& config :
           {cache::CacheConfig{}, off, tiny}) {
        cache::ArtifactCache cache(config);
        support::ThreadPool pool(schedule.threads);
        ExpContext ctx;
        ctx.scale = Scale::kSmoke;
        ctx.sweep.pool = &pool;
        ctx.sweep.cache = &cache;
        if (schedule.chunk != 0) ctx.sweep.chunk_size = schedule.chunk;
        outputs.push_back(render(e, ctx));
      }
    }
    ASSERT_EQ(outputs.size(), 9u);
    for (std::size_t i = 1; i < outputs.size(); ++i) {
      EXPECT_EQ(outputs[0], outputs[i]) << "variant " << i;
    }
  }
}

/// The census acceptance bar: streamed detail records reach the result
/// log byte-identically at every thread count (OrderedResultStream
/// re-serializes completion order into case order, and streamed records
/// carry no wall-clock), and the census path never falls back to the
/// per-pair product BFS — everything resolves through the batched
/// all-pairs kernel.
TEST(ExpCensusStreaming, LogBytesIdenticalAcrossThreadCounts) {
  const char* census_ids[] = {"c1_random_census", "c2_implicit_census"};
  for (const char* id : census_ids) {
    SCOPED_TRACE(id);
    const Experiment* e = builtin_registry().find(id);
    ASSERT_NE(e, nullptr);
    std::vector<std::string> logs;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const std::string path = ::testing::TempDir() + "census_stream_" +
                               std::string(id) + "_t" +
                               std::to_string(threads) + ".rdvl";
      cache::ArtifactCache cache;
      support::ThreadPool pool(threads);
      ExpContext ctx;
      ctx.scale = Scale::kQuick;
      ctx.sweep.pool = &pool;
      ctx.sweep.cache = &cache;
      store::ResultLogWriter writer(path);
      ASSERT_TRUE(writer.ok());
      store::OrderedResultStream stream(writer);
      ctx.stream = &stream;
      const ExpOutput output = run_experiment(*e, ctx);
      EXPECT_GE(output.table.row_count(), 1u);
      EXPECT_GT(stream.flushed(), 0u);
      EXPECT_EQ(stream.pending(), 0u);
      std::ifstream in(path, std::ios::binary);
      logs.emplace_back(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
      std::filesystem::remove(path);
    }
    ASSERT_EQ(logs.size(), 2u);
    EXPECT_FALSE(logs[0].empty());
    EXPECT_EQ(logs[0], logs[1]);
    // Every streamed record round-trips through the strict reader.
    const std::string replay = ::testing::TempDir() + "census_replay.rdvl";
    {
      std::ofstream out(replay, std::ios::binary | std::ios::trunc);
      out.write(logs[0].data(),
                static_cast<std::streamsize>(logs[0].size()));
    }
    EXPECT_FALSE(store::read_result_log(replay).empty());
    std::filesystem::remove(replay);
  }
}

TEST(ExpCensusStreaming, CensusPathNeverRunsPerPairBfs) {
  const Experiment* e = builtin_registry().find("c1_random_census");
  ASSERT_NE(e, nullptr);
  cache::ArtifactCache cache;
  support::ThreadPool pool(2);
  ExpContext ctx;
  ctx.scale = Scale::kSmoke;
  ctx.sweep.pool = &pool;
  ctx.sweep.cache = &cache;
  const std::uint64_t pair_before = views::shrink_pair_bfs_count();
  const std::uint64_t batch_before = views::shrink_all_pairs_compute_count();
  const ExpOutput output = run_experiment(*e, ctx);
  EXPECT_GE(output.table.row_count(), 1u);
  EXPECT_EQ(views::shrink_pair_bfs_count(), pair_before);
  EXPECT_GT(views::shrink_all_pairs_compute_count(), batch_before);
}

TEST(ExpSmoke, EveryExperimentProducesRowsAtSmokeScale) {
  support::ThreadPool pool(2);
  for (const Experiment& e : builtin_registry().all()) {
    SCOPED_TRACE(e.id);
    ExpContext ctx;
    ctx.scale = Scale::kSmoke;
    ctx.sweep.pool = &pool;
    const ExpOutput output = run_experiment(e, ctx);
    EXPECT_GE(output.table.row_count(), 1u);
    EXPECT_EQ(output.table.column_count(), e.headers.size());
  }
}

// A disk-full short write must be reported as a failure, not a
// successfully emitted path: write_file's success is the stream state
// AFTER the flush. /dev/full opens fine and fails on write — exactly
// the ENOSPC shape — so use it where the platform provides it.
TEST(Emit, WriteFileReportsShortWritesAndUnwritablePaths) {
  const std::string ok_path = ::testing::TempDir() + "write_file_ok.txt";
  EXPECT_TRUE(write_file(ok_path, "contents\n"));
  // Unwritable: open fails (directory does not exist).
  EXPECT_FALSE(write_file("/no/such/dir/out.csv", "x"));
  // Exhausted device: open succeeds, the write itself is short.
  std::error_code ec;
  if (std::filesystem::exists("/dev/full", ec) && !ec) {
    EXPECT_FALSE(write_file("/dev/full", "does not fit"));
  }
  std::remove(ok_path.c_str());
}

TEST(Emit, CheckCountsFilesOnlyWhenFlushedClean) {
  const Experiment* e = builtin_registry().find("f1_qhat_construction");
  ASSERT_NE(e, nullptr);
  ExpContext ctx;
  ctx.scale = Scale::kSmoke;
  const ExpOutput output = run_experiment(*e, ctx);
  EmitOptions options;
  options.markdown = false;
  options.csv_dir = "/no/such/dir";  // both writes fail at open
  options.json_dir = "/no/such/dir";
  EXPECT_TRUE(emit(*e, output, options).empty());
}

TEST(Emit, WritesCsvAndJsonFiles) {
  const Experiment* e = builtin_registry().find("f1_qhat_construction");
  ASSERT_NE(e, nullptr);
  ExpContext ctx;
  ctx.scale = Scale::kSmoke;
  const ExpOutput output = run_experiment(*e, ctx);
  EmitOptions options;
  options.markdown = false;
  options.csv_dir = ::testing::TempDir();
  options.json_dir = ::testing::TempDir();
  const std::vector<std::string> written = emit(*e, output, options);
  ASSERT_EQ(written.size(), 2u);
  EXPECT_NE(written[0].find("f1_qhat_construction.csv"), std::string::npos);
  EXPECT_NE(written[1].find("f1_qhat_construction.json"),
            std::string::npos);
}

}  // namespace
}  // namespace rdv::exp
