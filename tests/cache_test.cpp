#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/optimal_search.hpp"
#include "analysis/stics.hpp"
#include "cache/artifact_cache.hpp"
#include "cache/fingerprint.hpp"
#include "graph/families/families.hpp"
#include "graph/serialize.hpp"
#include "support/thread_pool.hpp"
#include "sweep/sweep.hpp"
#include "uxs/corpus.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

namespace rdv::cache {
namespace {

namespace families = rdv::graph::families;
using analysis::Stic;

TEST(Fingerprint, StableAcrossReconstruction) {
  const graph::Graph a = families::oriented_ring(7);
  const graph::Graph b = families::oriented_ring(7);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_EQ(to_string(fingerprint(a)), to_string(fingerprint(b)));
  EXPECT_EQ(fingerprint(a).n, 7u);
}

TEST(Fingerprint, NameDoesNotAffectKey) {
  // Same structure serialized and re-parsed under a different name:
  // artifacts depend only on structure, so the keys must agree.
  const graph::Graph a = families::path_graph(6);
  std::string text = graph::to_text(a);
  const std::string::size_type name_at = text.find(a.name());
  ASSERT_NE(name_at, std::string::npos);
  text.replace(name_at, a.name().size(), "renamed");
  const graph::Graph b = graph::from_text(text);
  EXPECT_NE(a.name(), b.name());
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, RelabelledAndDistinctGraphsGetDistinctKeys) {
  // scrambled_ring is the same ring up to port relabelling — the
  // adjacency stream differs, so the key must too (the cache
  // deduplicates exact structural repeats, never isomorphism classes).
  const std::vector<graph::Graph> graphs = {
      families::oriented_ring(8),
      families::scrambled_ring(8, /*seed=*/11),
      families::scrambled_ring(8, /*seed=*/12),
      families::path_graph(8),
      families::complete(8),
      families::oriented_ring(9),
  };
  std::set<std::string> keys;
  for (const graph::Graph& g : graphs) keys.insert(to_string(fingerprint(g)));
  EXPECT_EQ(keys.size(), graphs.size());
}

TEST(ArtifactCache, ComputeOncePointerSharing) {
  ArtifactCache cache;
  const graph::Graph g = families::oriented_torus(3, 3);
  const auto first = cache.view_classes(g);
  const auto second = cache.view_classes(g);
  EXPECT_EQ(first.get(), second.get());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.view_classes.misses, 1u);
  EXPECT_EQ(stats.view_classes.hits, 1u);
  EXPECT_EQ(stats.view_classes.entries, 1u);
  EXPECT_GT(stats.view_classes.bytes, 0u);
  // Values match the uncached computation exactly.
  const views::ViewClasses direct = views::compute_view_classes(g);
  EXPECT_EQ(first->class_of, direct.class_of);
  EXPECT_EQ(first->class_count, direct.class_count);
}

TEST(ArtifactCache, QuotientWarmsViewClassesStore) {
  ArtifactCache cache;
  const graph::Graph g = families::oriented_ring(6);
  const auto q = cache.quotient(g);
  EXPECT_EQ(q->class_count(), 1u);  // oriented ring is fully symmetric
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.quotients.misses, 1u);
  EXPECT_EQ(stats.view_classes.misses, 1u);
  // Subsequent view-classes requests hit the entry the quotient warmed.
  (void)cache.view_classes(g);
  EXPECT_EQ(cache.stats().view_classes.hits, 1u);
}

TEST(ArtifactCache, UxsMatchesUncachedConstruction) {
  ArtifactCache cache;
  const auto y = cache.uxs(6);
  const uxs::Uxs direct = uxs::corpus_verified_uxs(6);
  ASSERT_EQ(y->length(), direct.length());
  for (std::size_t i = 0; i < y->length(); ++i) {
    EXPECT_EQ(y->terms()[i], direct.terms()[i]);
  }
  EXPECT_EQ(cache.uxs(6).get(), y.get());
  EXPECT_EQ(cache.stats().uxs.misses, 1u);
  EXPECT_EQ(cache.stats().uxs.hits, 1u);
}

TEST(ArtifactCache, ConcurrentHammerComputesOncePerGraph) {
  ArtifactCache cache;
  std::vector<graph::Graph> graphs;
  graphs.push_back(families::oriented_ring(8));
  graphs.push_back(families::scrambled_ring(8, /*seed=*/11));
  graphs.push_back(families::path_graph(8));
  graphs.push_back(families::oriented_torus(3, 3));

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRoundsPerThread = 25;
  // Every thread hammers every graph; collect the pointers each thread
  // saw so pointer identity can be checked across threads.
  std::vector<std::vector<const views::ViewClasses*>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < kRoundsPerThread; ++round) {
        for (const graph::Graph& g : graphs) {
          seen[t].push_back(cache.view_classes(g).get());
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Exactly one artifact per distinct graph, shared by every thread.
  std::set<const views::ViewClasses*> distinct;
  for (const auto& pointers : seen) {
    distinct.insert(pointers.begin(), pointers.end());
  }
  EXPECT_EQ(distinct.size(), graphs.size());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.view_classes.misses, graphs.size());
  EXPECT_EQ(stats.view_classes.hits + stats.view_classes.misses,
            kThreads * kRoundsPerThread * graphs.size());
}

TEST(ArtifactCache, EvictionUnderCapacityBound) {
  CacheConfig config;
  config.shards = 1;  // deterministic eviction order
  config.capacity_per_shard = 2;
  ArtifactCache cache(config);
  const graph::Graph g1 = families::oriented_ring(5);
  const graph::Graph g2 = families::path_graph(5);
  const graph::Graph g3 = families::complete(5);

  const auto v1 = cache.view_classes(g1);
  (void)cache.view_classes(g2);
  (void)cache.view_classes(g3);  // evicts the LRU entry (g1)
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.view_classes.evictions, 1u);
  EXPECT_EQ(stats.view_classes.entries, 2u);

  // The evicted value stays alive through the caller's shared_ptr and a
  // re-request recomputes an identical artifact.
  const auto v1_again = cache.view_classes(g1);
  EXPECT_NE(v1.get(), v1_again.get());
  EXPECT_EQ(v1->class_of, v1_again->class_of);
  stats = cache.stats();
  EXPECT_EQ(stats.view_classes.misses, 4u);
  EXPECT_EQ(stats.view_classes.hits, 0u);
  EXPECT_LE(stats.view_classes.entries, 2u);
}

TEST(ArtifactCache, ByteBudgetBoundsResidency) {
  CacheConfig config;
  config.shards = 1;  // deterministic eviction order
  config.capacity_per_shard = 64;  // entry count never binds here
  config.bytes_per_shard = 1;      // any second entry exceeds the budget
  ArtifactCache cache(config);
  const graph::Graph g1 = families::oriented_ring(5);
  const graph::Graph g2 = families::path_graph(5);

  (void)cache.view_classes(g1);
  CacheStats stats = cache.stats();
  // One oversized artifact is retained anyway (never evict down to
  // nothing), so residency is exactly one entry...
  EXPECT_EQ(stats.view_classes.entries, 1u);
  EXPECT_GT(stats.view_classes.bytes, config.bytes_per_shard);
  EXPECT_EQ(stats.view_classes.evictions, 0u);

  // ...and inserting another evicts the LRU one, never both.
  (void)cache.view_classes(g2);
  stats = cache.stats();
  EXPECT_EQ(stats.view_classes.entries, 1u);
  EXPECT_EQ(stats.view_classes.evictions, 1u);

  // The survivor is g2: re-requesting it hits, g1 misses again.
  (void)cache.view_classes(g2);
  EXPECT_EQ(cache.stats().view_classes.hits, 1u);
  (void)cache.view_classes(g1);
  EXPECT_EQ(cache.stats().view_classes.misses, 3u);
}

TEST(ArtifactCache, ByteBudgetKeepsEntriesThatFit) {
  CacheConfig config;
  config.shards = 1;
  config.capacity_per_shard = 64;
  config.bytes_per_shard = 1u << 20;  // roomy: nothing should evict
  ArtifactCache cache(config);
  for (std::uint32_t n = 4; n < 8; ++n) {
    (void)cache.view_classes(families::oriented_ring(n));
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.view_classes.entries, 4u);
  EXPECT_EQ(stats.view_classes.evictions, 0u);
  EXPECT_LE(stats.view_classes.bytes, config.bytes_per_shard);
}

TEST(ArtifactCache, ShrinkComputedOncePerPairAndMatchesDirect) {
  ArtifactCache cache;
  const graph::Graph g = families::oriented_ring(6);
  const auto first = cache.shrink(g, 0, 3);
  const auto again = cache.shrink(g, 0, 3);
  EXPECT_EQ(first.get(), again.get());
  const views::ShrinkResult direct = views::shrink_with_witness(g, 0, 3);
  EXPECT_EQ(first->shrink, direct.shrink);
  EXPECT_EQ(first->witness, direct.witness);
  EXPECT_EQ(first->closest_u, direct.closest_u);
  EXPECT_EQ(first->closest_v, direct.closest_v);

  // Distinct pairs (and distinct graphs) are distinct keys.
  const auto other_pair = cache.shrink(g, 0, 2);
  EXPECT_NE(other_pair.get(), first.get());
  const graph::Graph h = families::oriented_ring(8);
  const auto other_graph = cache.shrink(h, 0, 3);
  EXPECT_NE(other_graph.get(), first.get());

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.shrink.misses, 3u);
  EXPECT_EQ(stats.shrink.hits, 1u);
  EXPECT_GT(stats.shrink.bytes, 0u);
}

TEST(ArtifactCache, AllPairsShrinkComputedOncePerGraphAndMatchesOracle) {
  ArtifactCache cache;
  const graph::Graph g = families::random_connected(9, 10, 51);
  const auto first = cache.all_pairs_shrink(g);
  const auto again = cache.all_pairs_shrink(g);
  EXPECT_EQ(first.get(), again.get());
  ASSERT_EQ(first->n, g.size());
  for (graph::Node u = 0; u < g.size(); ++u) {
    for (graph::Node v = 0; v < g.size(); ++v) {
      EXPECT_EQ(first->at(u, v), views::shrink(g, u, v));
    }
  }
  const graph::Graph h = families::oriented_ring(9);
  EXPECT_NE(cache.all_pairs_shrink(h).get(), first.get());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.all_pairs_shrink.misses, 2u);
  EXPECT_EQ(stats.all_pairs_shrink.hits, 1u);
  EXPECT_GT(stats.all_pairs_shrink.bytes, 0u);

  const auto via_helper = cached_all_pairs_shrink(g, &cache);
  EXPECT_EQ(via_helper.get(), first.get());
}

TEST(ArtifactCache, DiskKeysNeverTruncateOrCollideOnWideKeys) {
  // Regression: disk_key once rendered into a fixed char[64]; a wider
  // key layout (or future format growth) would have silently truncated
  // into colliding prefixes. Keys are std::string-built now — pin full
  // width and pairwise distinctness on adversarially extreme values.
  GraphFingerprint wide;
  wide.hi = ~0ull;
  wide.lo = ~0ull;
  wide.n = ~0u;
  const std::string fp_key = ArtifactCache::disk_key(wide);
  EXPECT_EQ(fp_key,
            "fp-ffffffffffffffff-ffffffffffffffff-n4294967295");

  ShrinkKey pair_key;
  pair_key.fp = wide;
  pair_key.u = ~0u;
  pair_key.v = ~0u;
  const std::string widest = ArtifactCache::disk_key(pair_key);
  // Longer than the old buffer could hold, yet every component intact.
  EXPECT_GT(widest.size(), 63u);
  EXPECT_NE(widest.find("u4294967295"), std::string::npos);
  EXPECT_NE(widest.find("v4294967295"), std::string::npos);

  // Distinct keys that agree on every leading component must stay
  // distinct — the collision a truncating formatter produces.
  ShrinkKey other = pair_key;
  other.v = ~0u - 1;
  EXPECT_NE(ArtifactCache::disk_key(other), widest);
  GraphFingerprint other_fp = wide;
  other_fp.n = ~0u - 1;
  EXPECT_NE(ArtifactCache::disk_key(other_fp), fp_key);
}

TEST(CachedEntryPoints, CachedShrinkResolvesThroughExplicitCache) {
  ArtifactCache cache;
  const graph::Graph g = families::oriented_torus(3, 3);
  const auto via_helper = cached_shrink(g, 0, 4, &cache);
  EXPECT_EQ(via_helper->shrink, views::shrink(g, 0, 4));
  EXPECT_EQ(cache.stats().shrink.misses, 1u);
  EXPECT_EQ(cached_shrink(g, 0, 4, &cache).get(), via_helper.get());
}

TEST(ArtifactCache, LruKeepsRecentlyUsedEntries) {
  CacheConfig config;
  config.shards = 1;
  config.capacity_per_shard = 2;
  ArtifactCache cache(config);
  const graph::Graph g1 = families::oriented_ring(5);
  const graph::Graph g2 = families::path_graph(5);
  const graph::Graph g3 = families::complete(5);

  (void)cache.view_classes(g1);
  (void)cache.view_classes(g2);
  (void)cache.view_classes(g1);  // refresh g1: g2 becomes the victim
  (void)cache.view_classes(g3);
  (void)cache.view_classes(g1);  // still resident -> hit
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.view_classes.hits, 2u);
  EXPECT_EQ(stats.view_classes.misses, 3u);
  EXPECT_EQ(stats.view_classes.evictions, 1u);
}

TEST(ArtifactCache, DisabledCacheRecomputesButAgrees) {
  CacheConfig config;
  config.enabled = false;
  ArtifactCache cache(config);
  const graph::Graph g = families::oriented_ring(6);
  const auto a = cache.view_classes(g);
  const auto b = cache.view_classes(g);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->class_of, b->class_of);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.view_classes.misses, 2u);
  EXPECT_EQ(stats.view_classes.hits, 0u);
  EXPECT_EQ(stats.view_classes.entries, 0u);
  EXPECT_EQ(stats.view_classes.bytes, 0u);
}

TEST(ArtifactCache, ClearDropsEntriesKeepsCounters) {
  ArtifactCache cache;
  const graph::Graph g = families::oriented_ring(6);
  (void)cache.view_classes(g);
  cache.clear();
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.view_classes.entries, 0u);
  EXPECT_EQ(stats.view_classes.bytes, 0u);
  EXPECT_EQ(stats.view_classes.misses, 1u);
  (void)cache.view_classes(g);
  EXPECT_EQ(cache.stats().view_classes.misses, 2u);
}

TEST(CachedEntryPoints, NullCacheUsesGlobal) {
  if (!global_cache().config().enabled) {
    GTEST_SKIP() << "RDV_CACHE_DISABLE set: global cache retains nothing";
  }
  const graph::Graph g = families::oriented_torus(3, 3);
  const auto via_null = cached_view_classes(g);
  const auto via_global = global_cache().view_classes(g);
  EXPECT_EQ(via_null.get(), via_global.get());
}

/// The acceptance-bar determinism contract: a sweep resolving its
/// artifacts through the cache produces byte-identical output with the
/// cache enabled, disabled, and at any thread count.
TEST(SweepDeterminism, ByteIdenticalWithCacheOnOffAndAcrossThreads) {
  std::vector<graph::Graph> graphs;
  graphs.push_back(families::oriented_ring(6));
  graphs.push_back(families::scrambled_ring(6, /*seed=*/11));
  graphs.push_back(families::path_graph(6));

  const std::vector<std::string> headers = {"graph", "u", "v", "delay",
                                            "feasible", "classes"};
  // One full classification sweep over every graph's STICs, rendered to
  // CSV; `cache` and `pool` vary, bytes must not.
  const auto render = [&](ArtifactCache& cache, support::ThreadPool& pool) {
    support::Table table(headers);
    for (const graph::Graph& g : graphs) {
      const std::vector<Stic> stics = analysis::enumerate_stics(g, 2);
      const sweep::SticKernel kernel = [&g, &cache](const Stic& stic) {
        const auto classes = cached_view_classes(g, &cache);
        const auto quotient = cached_quotient(g, &cache);
        sweep::SticRecord record;
        record.stic = stic;
        record.cls = analysis::classify_stic(g, *classes, stic);
        record.cells = {g.name(),
                        std::to_string(stic.u),
                        std::to_string(stic.v),
                        std::to_string(stic.delay),
                        record.cls.feasible ? "yes" : "no",
                        std::to_string(quotient->class_count())};
        return record;
      };
      sweep::SweepConfig config;
      config.pool = &pool;
      config.chunk_size = 3;
      const sweep::SticSweepResult result =
          sweep::run_stic_sweep(stics, kernel, config);
      for (const sweep::SticRecord& record : result.records) {
        table.add_row(record.cells);
      }
    }
    return table.to_csv();
  };

  CacheConfig off;
  off.enabled = false;
  CacheConfig tiny;  // force evictions mid-sweep
  tiny.shards = 1;
  tiny.capacity_per_shard = 1;

  std::vector<std::string> outputs;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const CacheConfig& config : {CacheConfig{}, off, tiny}) {
      ArtifactCache cache(config);
      support::ThreadPool pool(threads);
      outputs.push_back(render(cache, pool));
    }
  }
  ASSERT_FALSE(outputs.empty());
  for (std::size_t i = 1; i < outputs.size(); ++i) {
    EXPECT_EQ(outputs[0], outputs[i]) << "variant " << i;
  }
  EXPECT_NE(outputs[0].find("yes"), std::string::npos);
}

TEST(OptimalForStic, ConsistentWithCharacterizationThroughCache) {
  const graph::Graph g = families::oriented_ring(4);
  ArtifactCache cache;
  analysis::OptimalSearchConfig config;
  config.horizon = 32;

  // Antipodal pair at delay 0: symmetric with Shrink 2 -> infeasible,
  // and the oblivious search must drain the state space.
  const analysis::SticOptimal infeasible =
      analysis::optimal_for_stic(g, Stic{0, 2, 0}, config, &cache);
  EXPECT_TRUE(infeasible.cls.symmetric);
  EXPECT_FALSE(infeasible.cls.feasible);
  EXPECT_EQ(infeasible.search.outcome,
            analysis::OptimalOutcome::kProvenInfeasible);
  EXPECT_TRUE(infeasible.consistent);

  // Delay >= Shrink flips the verdict; the search finds a meeting.
  const analysis::SticOptimal feasible = analysis::optimal_for_stic(
      g, Stic{0, 2, infeasible.cls.shrink}, config, &cache);
  EXPECT_TRUE(feasible.cls.feasible);
  EXPECT_EQ(feasible.search.outcome, analysis::OptimalOutcome::kMet);
  EXPECT_TRUE(feasible.consistent);

  // Both classifications resolved through one cached partition.
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.view_classes.misses, 1u);
  EXPECT_EQ(stats.view_classes.hits, 1u);
}

}  // namespace
}  // namespace rdv::cache
