#include <gtest/gtest.h>

#include "graph/families/qhat.hpp"
#include "graph/families/qhat_implicit.hpp"
#include "views/refinement.hpp"

namespace rdv::graph::families {
namespace {

TEST(QhatSize, Formula) {
  EXPECT_EQ(qhat_size(1), 1u + 2 * (3 - 1));
  EXPECT_EQ(qhat_size(2), 17u);
  EXPECT_EQ(qhat_size(3), 53u);
  EXPECT_EQ(qhat_size(4), 161u);
  EXPECT_EQ(qhat_leaves_per_type(2), 3u);
  EXPECT_EQ(qhat_leaves_per_type(4), 27u);
}

TEST(Dir, OppositePairs) {
  EXPECT_EQ(opposite(Dir::N), Dir::S);
  EXPECT_EQ(opposite(Dir::S), Dir::N);
  EXPECT_EQ(opposite(Dir::E), Dir::W);
  EXPECT_EQ(opposite(Dir::W), Dir::E);
}

class QhatExplicitTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(QhatExplicitTest, FourRegularAndSized) {
  const QhatGraph q = qhat_explicit(GetParam());
  EXPECT_EQ(q.graph.size(), qhat_size(GetParam()));
  EXPECT_TRUE(q.graph.validate().empty());
  for (Node v = 0; v < q.graph.size(); ++v) {
    EXPECT_EQ(q.graph.degree(v), 4u) << "node " << v;
  }
}

TEST_P(QhatExplicitTest, EdgesCarryOppositeDirections) {
  // Every edge has ports N-S or E-W at its extremities (Section 4).
  const QhatGraph q = qhat_explicit(GetParam());
  for (Node v = 0; v < q.graph.size(); ++v) {
    for (Port p = 0; p < 4; ++p) {
      const Step s = q.graph.step(v, p);
      EXPECT_EQ(static_cast<Dir>(s.entry_port),
                opposite(static_cast<Dir>(p)));
    }
  }
}

TEST_P(QhatExplicitTest, AllNodesSymmetric) {
  // "the view of each node of Qhat_h is identical, and hence all pairs
  // of nodes are symmetric."
  const QhatGraph q = qhat_explicit(GetParam());
  const views::ViewClasses classes =
      views::compute_view_classes(q.graph);
  EXPECT_EQ(classes.class_count, 1u);
}

TEST_P(QhatExplicitTest, LeafCountsPerType) {
  const QhatGraph q = qhat_explicit(GetParam());
  const std::uint64_t x = qhat_leaves_per_type(GetParam());
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(q.leaves_by_type[t].size(), x);
  }
}

INSTANTIATE_TEST_SUITE_P(Heights, QhatExplicitTest,
                         ::testing::Values(2u, 3u, 4u));

TEST(QhatExplicit, RejectsBadHeights) {
  EXPECT_THROW(qhat_explicit(1), std::invalid_argument);
  EXPECT_THROW(qhat_explicit(10), std::invalid_argument);
}

TEST(QhatZ, SizeAndDistance) {
  const std::uint32_t k = 2;  // D = 4, h = 8 would be the theorem regime
  const QhatGraph q = qhat_explicit(4);
  const auto z = qhat_z_set(q.graph, q.root, k);
  EXPECT_EQ(z.size(), 4u);  // 2^k
  for (const Node v : z) {
    EXPECT_EQ(distance(q.graph, q.root, v), 2 * k);
  }
  // All distinct.
  for (std::size_t i = 0; i < z.size(); ++i) {
    for (std::size_t j = i + 1; j < z.size(); ++j) {
      EXPECT_NE(z[i], z[j]);
    }
  }
}

TEST(QhatZ, MidpointsAreHalfway) {
  const std::uint32_t k = 2;
  const QhatGraph q = qhat_explicit(4);
  const auto z = qhat_z_set(q.graph, q.root, k);
  const auto mids = qhat_mid_set(q.graph, q.root, k);
  ASSERT_EQ(mids.size(), z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    EXPECT_EQ(distance(q.graph, q.root, mids[i]), k);
    EXPECT_EQ(distance(q.graph, mids[i], z[i]), k);
  }
}

TEST(QhatImplicit, RankUnrankRoundTrip) {
  const QhatImplicitTopology topo(5);
  const std::uint64_t x = qhat_leaves_per_type(5);
  for (std::uint8_t last = 0; last < 4; ++last) {
    for (std::uint64_t i = 1; i <= x; i += 13) {
      const auto path = topo.leaf_unrank(static_cast<Dir>(last), i);
      ASSERT_EQ(path.size(), 5u);
      EXPECT_EQ(path.back(), static_cast<Dir>(last));
      EXPECT_EQ(topo.leaf_rank(path), i);
    }
  }
}

class QhatAgreementTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(QhatAgreementTest, ImplicitMatchesExplicit) {
  // Walk every port of every node and check the two constructions are
  // isomorphic under the path-string identification.
  const std::uint32_t h = GetParam();
  const QhatGraph q = qhat_explicit(h);
  const QhatImplicitTopology topo(h);
  std::vector<Node> to_implicit(q.graph.size());
  for (Node v = 0; v < q.graph.size(); ++v) {
    to_implicit[v] = topo.node_at(q.node_paths[v]);
  }
  for (Node v = 0; v < q.graph.size(); ++v) {
    ASSERT_EQ(topo.degree(to_implicit[v]), q.graph.degree(v));
    for (Port p = 0; p < 4; ++p) {
      const Step se = q.graph.step(v, p);
      const Step si = topo.step(to_implicit[v], p);
      EXPECT_EQ(si.to, to_implicit[se.to])
          << "h=" << h << " node " << v << " port " << p;
      EXPECT_EQ(si.entry_port, se.entry_port);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Heights, QhatAgreementTest,
                         ::testing::Values(2u, 3u, 4u, 5u));

TEST(QhatImplicit, LazyMaterialization) {
  const QhatImplicitTopology topo(30);  // explicit would be ~2 * 3^30 nodes
  Node v = topo.root();
  // Take a 28-step zig-zag walk (staying above the leaves); only the
  // visited ball materializes.
  for (int i = 0; i < 14; ++i) {
    v = topo.step(v, to_port(Dir::N)).to;
    v = topo.step(v, to_port(Dir::E)).to;
  }
  EXPECT_LE(topo.materialized(), 29u * 2);
  const auto& path = topo.path_of(v);
  EXPECT_EQ(path.size(), 28u);
}

TEST(QhatImplicit, ZSetWorksAtTheoremScale) {
  // Theorem 4.1 regime: D = 2k, h = 2D. For k = 5: h = 20 (explicit
  // size would be ~7 * 10^9).
  const std::uint32_t k = 5;
  const QhatImplicitTopology topo(4 * k);
  const auto z = qhat_z_set(topo, topo.root(), k);
  EXPECT_EQ(z.size(), 32u);
  for (const Node v : z) {
    EXPECT_EQ(topo.path_of(v).size(), 2 * k);
  }
}

}  // namespace
}  // namespace rdv::graph::families
