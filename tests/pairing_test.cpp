#include <gtest/gtest.h>

#include <set>

#include "core/pairing.hpp"

namespace rdv::core {
namespace {

TEST(CantorF, PaperFormulaValues) {
  // f(x,y) = x + (x+y-1)(x+y-2)/2: the diagonal enumeration.
  EXPECT_EQ(cantor_f(1, 1), 1u);
  EXPECT_EQ(cantor_f(1, 2), 2u);
  EXPECT_EQ(cantor_f(2, 1), 3u);
  EXPECT_EQ(cantor_f(1, 3), 4u);
  EXPECT_EQ(cantor_f(2, 2), 5u);
  EXPECT_EQ(cantor_f(3, 1), 6u);
}

TEST(CantorF, BijectionOnPrefix) {
  // Every w in [1, 5000] decodes to a unique (x, y) that encodes back.
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (std::uint64_t w = 1; w <= 5000; ++w) {
    const auto [x, y] = cantor_f_inverse(w);
    EXPECT_GE(x, 1u);
    EXPECT_GE(y, 1u);
    EXPECT_EQ(cantor_f(x, y), w);
    EXPECT_TRUE(seen.emplace(x, y).second);
  }
}

TEST(CantorF, InverseOfLargeValues) {
  for (const std::uint64_t w :
       {std::uint64_t{1} << 20, std::uint64_t{1} << 40,
        (std::uint64_t{1} << 40) + 12345}) {
    const auto [x, y] = cantor_f_inverse(w);
    EXPECT_EQ(cantor_f(x, y), w);
  }
}

TEST(PhaseCoding, RoundTripTriples) {
  for (std::uint64_t n = 1; n <= 12; ++n) {
    for (std::uint64_t d = 1; d <= 12; ++d) {
      for (std::uint64_t delta = 1; delta <= 12; ++delta) {
        const PhaseTriple t{n, d, delta};
        EXPECT_EQ(phase_decode(phase_encode(t)), t);
      }
    }
  }
}

TEST(PhaseCoding, EnumeratesAllTriplesOnPrefix) {
  std::set<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> seen;
  for (std::uint64_t P = 1; P <= 3000; ++P) {
    const PhaseTriple t = phase_decode(P);
    EXPECT_EQ(phase_encode(t), P);
    EXPECT_TRUE(seen.emplace(t.n, t.d, t.delta).second);
  }
  // The prefix covers a full cube of small triples.
  for (std::uint64_t n = 1; n <= 6; ++n) {
    for (std::uint64_t d = 1; d <= 6; ++d) {
      for (std::uint64_t delta = 1; delta <= 6; ++delta) {
        if (phase_encode(PhaseTriple{n, d, delta}) <= 3000) {
          EXPECT_TRUE(seen.count({n, d, delta}));
        }
      }
    }
  }
}

TEST(PhaseCoding, MonotoneInDelta) {
  // Used by guaranteed_phase_*: the smallest dominating phase sits at
  // delta' = delta.
  for (std::uint64_t n : {2u, 5u, 9u}) {
    for (std::uint64_t d = 1; d < n; ++d) {
      for (std::uint64_t delta = 1; delta <= 6; ++delta) {
        EXPECT_LT(phase_encode(PhaseTriple{n, d, delta}),
                  phase_encode(PhaseTriple{n, d, delta + 1}));
      }
    }
  }
}

}  // namespace
}  // namespace rdv::core
