#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "cache/fingerprint.hpp"
#include "graph/families/families.hpp"
#include "store/codec.hpp"
#include "store/disk_store.hpp"
#include "store/log_tools.hpp"
#include "store/result_log.hpp"
#include "uxs/corpus.hpp"
#include "views/quotient.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

namespace rdv::store {
namespace {

namespace fs = std::filesystem;
namespace families = rdv::graph::families;

/// Fresh directory per test (TempDir is shared across the binary).
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "store_test_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// ---- codec ----------------------------------------------------------

TEST(Codec, PrimitivesRoundTripAndRejectTrailing) {
  Encoder e;
  e.u32(0xDEADBEEFu);
  e.u64(0x0123456789ABCDEFULL);
  e.str("hello");
  e.u32_vec({1, 2, 3});
  e.u64_vec({});
  const std::string bytes = e.bytes();

  Decoder d(bytes);
  EXPECT_EQ(d.u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(d.str(), "hello");
  EXPECT_EQ(d.u32_vec(), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(d.u64_vec().empty());
  EXPECT_NO_THROW(d.finish());

  // Keep the buffer alive: Decoder views, it does not copy.
  const std::string with_tail = bytes + "x";
  Decoder trailing(with_tail);
  (void)trailing.u32();
  (void)trailing.u64();
  (void)trailing.str();
  (void)trailing.u32_vec();
  (void)trailing.u64_vec();
  EXPECT_THROW(trailing.finish(), CodecError);

  const std::string cut = bytes.substr(0, 6);
  Decoder truncated(cut);
  (void)truncated.u32();
  EXPECT_THROW(truncated.u64(), CodecError);
}

TEST(Codec, ChecksumDetectsFlipsAndPermutations) {
  const std::uint64_t base = checksum("abcdefgh12345678");
  EXPECT_EQ(checksum("abcdefgh12345678"), base);
  EXPECT_NE(checksum("Abcdefgh12345678"), base);
  EXPECT_NE(checksum("12345678abcdefgh"), base);  // permuted blocks
  EXPECT_NE(checksum("abcdefgh1234567"), base);   // truncated
}

TEST(Codec, ArtifactsRoundTripByteExactly) {
  const graph::Graph g = families::oriented_torus(3, 3);

  const uxs::Uxs y = uxs::corpus_verified_uxs(4);
  const uxs::Uxs y2 = decode_uxs(encode_uxs(y));
  EXPECT_TRUE(std::equal(y.terms().begin(), y.terms().end(),
                         y2.terms().begin(), y2.terms().end()));
  EXPECT_EQ(y.provenance(), y2.provenance());
  // Determinism: encoding the decoded value reproduces the same bytes.
  EXPECT_EQ(encode_uxs(y), encode_uxs(y2));

  const views::ViewClasses c = views::compute_view_classes(g);
  const views::ViewClasses c2 = decode_view_classes(encode_view_classes(c));
  EXPECT_EQ(c.class_of, c2.class_of);
  EXPECT_EQ(c.class_count, c2.class_count);
  EXPECT_EQ(c.rounds, c2.rounds);

  const views::QuotientGraph q = views::build_quotient(g, c);
  const views::QuotientGraph q2 = decode_quotient(encode_quotient(q));
  EXPECT_EQ(q.multiplicity, q2.multiplicity);
  ASSERT_EQ(q.arcs.size(), q2.arcs.size());
  for (std::size_t i = 0; i < q.arcs.size(); ++i) {
    ASSERT_EQ(q.arcs[i].size(), q2.arcs[i].size());
    for (std::size_t p = 0; p < q.arcs[i].size(); ++p) {
      EXPECT_EQ(q.arcs[i][p].to_class, q2.arcs[i][p].to_class);
      EXPECT_EQ(q.arcs[i][p].rev_port, q2.arcs[i][p].rev_port);
    }
  }

  const views::ShrinkResult r = views::shrink_with_witness(g, 0, 4);
  const views::ShrinkResult r2 = decode_shrink(encode_shrink(r));
  EXPECT_EQ(r.shrink, r2.shrink);
  EXPECT_EQ(r.witness, r2.witness);
  EXPECT_EQ(r.closest_u, r2.closest_u);
  EXPECT_EQ(r.closest_v, r2.closest_v);
  EXPECT_EQ(r.pairs_explored, r2.pairs_explored);
}

TEST(Codec, DecodersRejectGarbage) {
  EXPECT_THROW(decode_uxs("garbage"), CodecError);
  EXPECT_THROW(decode_view_classes(""), CodecError);
  EXPECT_THROW(decode_quotient("\x01\x02"), CodecError);
  EXPECT_THROW(decode_shrink("x"), CodecError);
  // Valid payload + trailing byte is rejected too.
  const std::string ok = encode_view_classes(views::ViewClasses{{0, 1}, 2, 1});
  EXPECT_THROW(decode_view_classes(ok + "z"), CodecError);
}

// ---- DiskStore ------------------------------------------------------

TEST(DiskStore, SaveLoadRoundTripWithStats) {
  DiskConfig config;
  config.root = fresh_dir("roundtrip");
  DiskStore store(config);

  EXPECT_FALSE(store.load(Kind::kUxs, "n6").has_value());
  EXPECT_EQ(store.stats(Kind::kUxs).misses, 1u);

  const std::string payload = encode_uxs(uxs::corpus_verified_uxs(4));
  EXPECT_TRUE(store.save(Kind::kUxs, "n6", payload));
  const auto loaded = store.load(Kind::kUxs, "n6");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, payload);

  const DiskStats stats = store.stats(Kind::kUxs);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.corrupt, 0u);
  EXPECT_GT(stats.bytes_written, payload.size());  // header overhead
  EXPECT_GT(stats.bytes, 0u);  // bytes served (the shared TierStats axis)
  EXPECT_EQ(stats.lookups(), 2u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
  // Kinds are separate namespaces (and separate subdirectories).
  EXPECT_FALSE(store.load(Kind::kShrink, "n6").has_value());
  EXPECT_TRUE(
      fs::exists(fs::path(config.root) / "uxs" / "n6.bin"));
}

TEST(DiskStore, CorruptionAndTruncationFallBackToMiss) {
  DiskConfig config;
  config.root = fresh_dir("corrupt");
  DiskStore store(config);
  const std::string payload = "payload-bytes-0123456789";
  ASSERT_TRUE(store.save(Kind::kShrink, "k1", payload));
  const std::string path = store.path_for(Kind::kShrink, "k1");

  // Flip one payload byte: checksum mismatch -> corrupt miss.
  std::string bytes = read_file(path);
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x40);
  write_file(path, bytes);
  EXPECT_FALSE(store.load(Kind::kShrink, "k1").has_value());
  EXPECT_EQ(store.stats(Kind::kShrink).corrupt, 1u);

  // Truncate mid-header: corrupt miss, not a crash.
  write_file(path, read_file(path).substr(0, 9));
  EXPECT_FALSE(store.load(Kind::kShrink, "k1").has_value());

  // Garbage magic: corrupt miss.
  write_file(path, "not a store file at all");
  EXPECT_FALSE(store.load(Kind::kShrink, "k1").has_value());

  // Empty file (torn creation): corrupt miss.
  write_file(path, "");
  EXPECT_FALSE(store.load(Kind::kShrink, "k1").has_value());
  EXPECT_EQ(store.stats(Kind::kShrink).corrupt, 4u);

  // A rewrite repairs the entry.
  ASSERT_TRUE(store.save(Kind::kShrink, "k1", payload));
  const auto repaired = store.load(Kind::kShrink, "k1");
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(*repaired, payload);
}

TEST(DiskStore, VersionAndSaltMismatchAreMissesNotCorruption) {
  const std::string root = fresh_dir("salt");
  DiskConfig writer_config;
  writer_config.root = root;
  writer_config.build_salt = "salt-A";
  DiskStore writer(writer_config);
  ASSERT_TRUE(writer.save(Kind::kUxs, "n5", "uxs-payload"));

  // Same salt reads back...
  DiskStore same(writer_config);
  EXPECT_TRUE(same.load(Kind::kUxs, "n5").has_value());

  // ...a different build salt must NOT trust the artifact.
  DiskConfig reader_config;
  reader_config.root = root;
  reader_config.build_salt = "salt-B";
  DiskStore reader(reader_config);
  EXPECT_FALSE(reader.load(Kind::kUxs, "n5").has_value());
  const DiskStats stats = reader.stats(Kind::kUxs);
  EXPECT_EQ(stats.version_mismatch, 1u);
  EXPECT_EQ(stats.corrupt, 0u);

  // A bumped on-disk format version is likewise a clean miss: patch the
  // version field (4 bytes, little-endian, right after the magic).
  std::string bytes = read_file(writer.path_for(Kind::kUxs, "n5"));
  bytes[4] = static_cast<char>(kFormatVersion + 1);
  write_file(writer.path_for(Kind::kUxs, "n5"), bytes);
  EXPECT_FALSE(same.load(Kind::kUxs, "n5").has_value());
  EXPECT_EQ(same.stats(Kind::kUxs).version_mismatch, 1u);
}

TEST(DiskStore, KeyEchoRejectsRenamedFiles) {
  DiskConfig config;
  config.root = fresh_dir("echo");
  DiskStore store(config);
  ASSERT_TRUE(store.save(Kind::kUxs, "n5", "five"));
  // A file copied under another key must not serve that key.
  fs::copy_file(store.path_for(Kind::kUxs, "n5"),
                store.path_for(Kind::kUxs, "n7"));
  EXPECT_FALSE(store.load(Kind::kUxs, "n7").has_value());
  EXPECT_EQ(store.stats(Kind::kUxs).corrupt, 1u);
}

TEST(DiskStore, ReadOnlyServesHitsWithoutWriting) {
  const std::string root = fresh_dir("readonly");
  DiskConfig rw;
  rw.root = root;
  DiskStore writer(rw);
  ASSERT_TRUE(writer.save(Kind::kUxs, "n5", "five"));

  DiskConfig ro = rw;
  ro.read_only = true;
  DiskStore reader(ro);
  EXPECT_TRUE(reader.load(Kind::kUxs, "n5").has_value());
  EXPECT_FALSE(reader.save(Kind::kUxs, "n9", "nine"));
  EXPECT_EQ(reader.stats(Kind::kUxs).writes, 0u);
  EXPECT_FALSE(fs::exists(reader.path_for(Kind::kUxs, "n9")));
}

// Crash-safety of the final file: the temp must never be renamed into
// place unless every durable-write stage — write, the pre-rename
// fsync, close — succeeded. A failure injected at each stage must
// leave NO final file (not a zero-length or partial one) and no stray
// temp, and count a write failure.
TEST(DiskStore, TempFileIsNeverRenamedUnflushed) {
  for (const char* failing_stage : {"open", "write", "sync", "close"}) {
    SCOPED_TRACE(failing_stage);
    DiskConfig config;
    config.root = fresh_dir(std::string("unflushed_") + failing_stage);
    std::string observed;
    config.fail_stage = [&observed, failing_stage](const char* stage) {
      observed += stage;
      observed += ";";
      return std::string_view(stage) == failing_stage;
    };
    DiskStore store(config);
    EXPECT_FALSE(store.save(Kind::kUxs, "n7", "payload-bytes"));
    EXPECT_EQ(store.stats(Kind::kUxs).write_failures, 1u);
    EXPECT_EQ(store.stats(Kind::kUxs).writes, 0u);
    // No final file at all — a torn rename-without-flush would have
    // left one — and the temp was cleaned up.
    EXPECT_FALSE(fs::exists(store.path_for(Kind::kUxs, "n7")));
    std::size_t residue = 0;
    for (const auto& entry :
         fs::recursive_directory_iterator(config.root)) {
      if (entry.is_regular_file()) ++residue;
    }
    EXPECT_EQ(residue, 0u);
    // The sync stage sits between write and close: flush-before-rename
    // is on the path of every successful save.
    if (std::string_view(failing_stage) == "close") {
      EXPECT_EQ(observed, "open;write;sync;close;");
    }
  }
  // With no injected failure the same sequence of stages runs and the
  // save lands.
  DiskConfig config;
  config.root = fresh_dir("unflushed_none");
  std::string observed;
  config.fail_stage = [&observed](const char* stage) {
    observed += stage;
    observed += ";";
    return false;
  };
  DiskStore store(config);
  EXPECT_TRUE(store.save(Kind::kUxs, "n7", "payload-bytes"));
  EXPECT_EQ(observed, "open;write;sync;close;");
  EXPECT_TRUE(fs::exists(store.path_for(Kind::kUxs, "n7")));
}

TEST(DiskStore, UnusableRootDegradesGracefully) {
  DiskConfig config;
  // A root under a path that is a FILE cannot be created.
  const std::string blocker = fresh_dir("blocked") + "/file";
  write_file(blocker, "x");
  config.root = blocker + "/store";
  DiskStore store(config);
  EXPECT_FALSE(store.load(Kind::kUxs, "n5").has_value());
  EXPECT_FALSE(store.save(Kind::kUxs, "n5", "five"));
  EXPECT_EQ(store.stats(Kind::kUxs).write_failures, 1u);
}

TEST(DiskStore, ConcurrentWritersOneDirectorySettleOnCompleteFiles) {
  // Several stores (the in-process stand-in for several processes) on
  // ONE directory, racing writes to the same keys: every final file
  // must parse as one complete value — never interleaved bytes.
  const std::string root = fresh_dir("race");
  constexpr int kWriters = 4;
  constexpr int kKeys = 6;
  constexpr int kRounds = 8;
  std::vector<std::unique_ptr<DiskStore>> stores;
  for (int w = 0; w < kWriters; ++w) {
    DiskConfig config;
    config.root = root;
    stores.push_back(std::make_unique<DiskStore>(config));
  }
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          // Deterministic payload per key (the real workload: artifacts
          // are pure functions of the key), large enough that a torn
          // write would be visible.
          const std::string payload(4096 + 97 * k, static_cast<char>('a' + k));
          ASSERT_TRUE(stores[static_cast<std::size_t>(w)]->save(
              Kind::kShrink, "key" + std::to_string(k), payload));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  DiskConfig config;
  config.root = root;
  DiskStore reader(config);
  for (int k = 0; k < kKeys; ++k) {
    const auto loaded = reader.load(Kind::kShrink, "key" + std::to_string(k));
    ASSERT_TRUE(loaded.has_value()) << k;
    EXPECT_EQ(*loaded,
              std::string(4096 + 97 * k, static_cast<char>('a' + k)));
  }
  // No temp droppings left behind.
  std::size_t files = 0;
  for (const auto& entry :
       fs::directory_iterator(fs::path(root) / "shrink")) {
    EXPECT_EQ(entry.path().extension(), ".bin") << entry.path();
    ++files;
  }
  EXPECT_EQ(files, static_cast<std::size_t>(kKeys));
}

TEST(DiskStore, TwoProcessesWritingOneStoreDir) {
  // The genuine two-process case (ISSUE 4 satellite): parent and child
  // race DIFFERENT payload sizes onto the same key; rename atomicity
  // must leave a file that parses completely as one of the two.
  const std::string root = fresh_dir("twoproc");
  const std::string small(1024, 's');
  const std::string large(1024 * 256, 'L');

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child process: no gtest assertions (they would double-report);
    // exit code carries success.
    DiskConfig config;
    config.root = root;
    DiskStore store(config);
    bool ok = true;
    for (int round = 0; round < 50; ++round) {
      ok = store.save(Kind::kUxs, "contended", small) && ok;
    }
    _exit(ok ? 0 : 1);
  }
  {
    DiskConfig config;
    config.root = root;
    DiskStore store(config);
    for (int round = 0; round < 50; ++round) {
      ASSERT_TRUE(store.save(Kind::kUxs, "contended", large));
    }
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  DiskConfig config;
  config.root = root;
  DiskStore reader(config);
  const auto final_value = reader.load(Kind::kUxs, "contended");
  ASSERT_TRUE(final_value.has_value());
  EXPECT_TRUE(*final_value == small || *final_value == large);
  EXPECT_EQ(reader.stats(Kind::kUxs).corrupt, 0u);
}

// ---- ArtifactCache two-tier integration -----------------------------

TEST(CacheStoreIntegration, WarmCacheSkipsEveryRecomputeIncludingUxs) {
  auto disk = std::make_shared<DiskStore>(
      DiskConfig{fresh_dir("twotier"), kDefaultBuildSalt, false, {}});
  const graph::Graph g = families::oriented_torus(3, 3);

  // Cold pass: one compute + one disk write per artifact kind.
  cache::CacheConfig cold_config;
  cold_config.disk = disk;
  cache::ArtifactCache cold(cold_config);
  const auto classes = cold.view_classes(g);
  const auto quotient = cold.quotient(g);
  const auto y = cold.uxs(5);
  const auto shr = cold.shrink(g, 0, 4);
  EXPECT_EQ(disk->stats(Kind::kViewClasses).writes, 1u);
  EXPECT_EQ(disk->stats(Kind::kQuotients).writes, 1u);
  EXPECT_EQ(disk->stats(Kind::kUxs).writes, 1u);
  EXPECT_EQ(disk->stats(Kind::kShrink).writes, 1u);
  const std::uint64_t verifications_after_cold =
      uxs::corpus_verification_count();

  // Warm pass through a FRESH memory cache (a second process, in
  // effect): every kind is served from disk, values are identical, and
  // — the acceptance bar — no UXS corpus verification runs.
  cache::CacheConfig warm_config;
  warm_config.disk = disk;
  cache::ArtifactCache warm(warm_config);
  EXPECT_EQ(warm.view_classes(g)->class_of, classes->class_of);
  EXPECT_EQ(warm.quotient(g)->class_count(), quotient->class_count());
  const auto y_warm = warm.uxs(5);
  ASSERT_EQ(y_warm->length(), y->length());
  EXPECT_TRUE(std::equal(y_warm->terms().begin(), y_warm->terms().end(),
                         y->terms().begin(), y->terms().end()));
  EXPECT_EQ(y_warm->provenance(), y->provenance());
  const auto shr_warm = warm.shrink(g, 0, 4);
  EXPECT_EQ(shr_warm->shrink, shr->shrink);
  EXPECT_EQ(shr_warm->witness, shr->witness);

  EXPECT_EQ(uxs::corpus_verification_count(), verifications_after_cold);
  EXPECT_EQ(disk->stats(Kind::kViewClasses).hits, 1u);
  EXPECT_EQ(disk->stats(Kind::kQuotients).hits, 1u);
  EXPECT_EQ(disk->stats(Kind::kUxs).hits, 1u);
  EXPECT_EQ(disk->stats(Kind::kShrink).hits, 1u);
  // And the memory tier now shields the disk: repeated requests add no
  // disk traffic.
  (void)warm.uxs(5);
  EXPECT_EQ(disk->stats(Kind::kUxs).hits, 1u);
}

TEST(CacheStoreIntegration, CorruptStoreFileFallsBackToRecompute) {
  auto disk = std::make_shared<DiskStore>(
      DiskConfig{fresh_dir("fallback"), kDefaultBuildSalt, false, {}});
  const graph::Graph g = families::oriented_ring(6);
  const cache::GraphFingerprint fp = cache::fingerprint(g);

  cache::CacheConfig config;
  config.disk = disk;
  {
    cache::ArtifactCache cache(config);
    (void)cache.view_classes(g);
  }
  // Corrupt the stored artifact file.
  std::string path;
  for (const auto& entry : fs::recursive_directory_iterator(
           disk->config().root)) {
    if (entry.is_regular_file()) path = entry.path().string();
  }
  ASSERT_FALSE(path.empty());
  write_file(path, "corrupted beyond recognition");

  cache::ArtifactCache again(config);
  const auto recomputed = again.view_classes(g, fp);
  EXPECT_EQ(recomputed->class_of,
            views::compute_view_classes(g).class_of);
  EXPECT_EQ(disk->stats(Kind::kViewClasses).corrupt, 1u);
  // The recompute healed the file on disk: a third cache hits it.
  cache::ArtifactCache healed(config);
  (void)healed.view_classes(g, fp);
  EXPECT_EQ(disk->stats(Kind::kViewClasses).hits, 1u);
}

TEST(CacheStoreIntegration, DisabledMemoryTierStillReadsThrough) {
  auto disk = std::make_shared<DiskStore>(
      DiskConfig{fresh_dir("nomem"), kDefaultBuildSalt, false, {}});
  cache::CacheConfig config;
  config.enabled = false;
  config.disk = disk;
  cache::ArtifactCache cache(config);
  const graph::Graph g = families::path_graph(5);
  const auto a = cache.view_classes(g);
  const auto b = cache.view_classes(g);
  EXPECT_EQ(a->class_of, b->class_of);
  // First request computed + wrote; the second was served from disk.
  EXPECT_EQ(disk->stats(Kind::kViewClasses).writes, 1u);
  EXPECT_EQ(disk->stats(Kind::kViewClasses).hits, 1u);
}

// ---- result log -----------------------------------------------------

ResultRecord sample_record(int i) {
  ResultRecord r;
  r.experiment_id = "exp_" + std::to_string(i);
  r.scale = "smoke";
  r.wall_micros = 1000u + static_cast<std::uint64_t>(i);
  r.items_total = 4;
  r.items_produced = 3;
  r.headers = {"graph", "value"};
  r.rows = {{"ring(6)", std::to_string(i)},
            {"path(5)", "x,y|z\"quoted\""},
            {"", ""}};
  return r;
}

TEST(ResultLog, RoundTripsRecords) {
  const std::string path = fresh_dir("log") + "/results.rdvl";
  {
    ResultLogWriter writer(path);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 3; ++i) writer.append(sample_record(i));
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ(writer.records_written(), 3u);
  }
  const std::vector<ResultRecord> read = read_result_log(path);
  ASSERT_EQ(read.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(encode_result_record(read[static_cast<std::size_t>(i)]),
              encode_result_record(sample_record(i)));
  }
}

TEST(ResultLog, EmptyLogIsValid) {
  const std::string path = fresh_dir("logempty") + "/results.rdvl";
  { ResultLogWriter writer(path); }
  EXPECT_TRUE(read_result_log(path).empty());
}

TEST(ResultLog, DetectsTruncationCorruptionAndBadHeader) {
  const std::string path = fresh_dir("logbad") + "/results.rdvl";
  {
    ResultLogWriter writer(path);
    for (int i = 0; i < 2; ++i) writer.append(sample_record(i));
  }
  const std::string bytes = read_file(path);

  // Tail truncation (torn final record).
  write_file(path, bytes.substr(0, bytes.size() - 5));
  EXPECT_THROW(read_result_log(path), CodecError);

  // One flipped byte in the middle of a record.
  std::string flipped = bytes;
  flipped[bytes.size() / 2] =
      static_cast<char>(flipped[bytes.size() / 2] ^ 0x01);
  write_file(path, flipped);
  EXPECT_THROW(read_result_log(path), CodecError);

  // Foreign magic / version.
  write_file(path, "JUNK" + bytes.substr(4));
  EXPECT_THROW(read_result_log(path), CodecError);
  std::string wrong_version = bytes;
  wrong_version[4] = static_cast<char>(kResultLogVersion + 1);
  write_file(path, wrong_version);
  EXPECT_THROW(read_result_log(path), CodecError);

  // Missing file.
  EXPECT_THROW(read_result_log(path + ".nope"), CodecError);
}

TEST(Codec, AllPairsShrinkRoundTripsAndRejectsBadShape) {
  const graph::Graph g = families::random_connected(8, 9, 61);
  const views::AllPairsShrink a = views::shrink_all_pairs(g);
  const views::AllPairsShrink a2 =
      decode_all_pairs_shrink(encode_all_pairs_shrink(a));
  EXPECT_EQ(a.n, a2.n);
  EXPECT_EQ(a.values, a2.values);
  EXPECT_EQ(a.pairs_explored, a2.pairs_explored);
  EXPECT_EQ(encode_all_pairs_shrink(a), encode_all_pairs_shrink(a2));

  const std::string ok = encode_all_pairs_shrink(a);
  EXPECT_THROW(decode_all_pairs_shrink(ok.substr(0, ok.size() - 3)),
               CodecError);
  EXPECT_THROW(decode_all_pairs_shrink(ok + "z"), CodecError);
  EXPECT_THROW(decode_all_pairs_shrink(""), CodecError);
  // Well-formed stream whose table is not n x n.
  views::AllPairsShrink skewed = a;
  skewed.values.pop_back();
  EXPECT_THROW(decode_all_pairs_shrink(encode_all_pairs_shrink(skewed)),
               CodecError);
}

TEST(OrderedResultStream, FlushesContiguousPrefixInIndexOrder) {
  const std::string path = fresh_dir("logstream") + "/results.rdvl";
  std::vector<ResultRecord> collected;
  {
    ResultLogWriter writer(path);
    OrderedResultStream stream(writer, &collected);
    // Submit out of order: 2 and 1 must wait for 0.
    stream.submit(2, sample_record(2));
    EXPECT_EQ(stream.flushed(), 0u);
    EXPECT_EQ(stream.pending(), 1u);
    stream.submit(1, sample_record(1));
    EXPECT_EQ(stream.flushed(), 0u);
    EXPECT_EQ(stream.pending(), 2u);
    stream.submit(0, sample_record(0));
    EXPECT_EQ(stream.flushed(), 3u);
    EXPECT_EQ(stream.pending(), 0u);
    // Duplicates and already-flushed indices are dropped.
    stream.submit(1, sample_record(9));
    EXPECT_EQ(stream.flushed(), 3u);
    stream.submit(3, sample_record(3));
    EXPECT_EQ(stream.flushed(), 4u);
  }
  const std::vector<ResultRecord> read = read_result_log(path);
  ASSERT_EQ(read.size(), 4u);
  ASSERT_EQ(collected.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(encode_result_record(read[static_cast<std::size_t>(i)]),
              encode_result_record(sample_record(i)));
    EXPECT_EQ(
        encode_result_record(collected[static_cast<std::size_t>(i)]),
        encode_result_record(sample_record(i)));
  }
}

TEST(OrderedResultStream, ConcurrentSubmittersProduceOneOrdering) {
  const std::string base = fresh_dir("logstreamconc");
  constexpr int kRecords = 64;
  std::vector<std::string> files;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const std::string path =
        base + "/t" + std::to_string(threads) + ".rdvl";
    ResultLogWriter writer(path);
    OrderedResultStream stream(writer);
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = static_cast<int>(t); i < kRecords;
             i += static_cast<int>(threads)) {
          stream.submit(static_cast<std::size_t>(i), sample_record(i));
        }
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(stream.flushed(), static_cast<std::size_t>(kRecords));
    EXPECT_EQ(stream.pending(), 0u);
    files.push_back(path);
  }
  // Identical bytes no matter how many threads raced the submits.
  EXPECT_EQ(read_file(files[0]), read_file(files[1]));
}

TEST(LogTools, CsvAndJsonRenderingsAreWallStableByDefault) {
  std::vector<ResultRecord> run_a = {sample_record(0), sample_record(1)};
  std::vector<ResultRecord> run_b = run_a;
  run_b[0].wall_micros = 999999;  // same tables, different timing

  EXPECT_EQ(render_log_csv(run_a), render_log_csv(run_b));
  EXPECT_EQ(render_log_json(run_a), render_log_json(run_b));
  EXPECT_NE(render_log_csv(run_a, /*include_wall=*/true),
            render_log_csv(run_b, /*include_wall=*/true));

  const std::string csv = render_log_csv(run_a);
  EXPECT_NE(csv.find("# record 0: exp_0"), std::string::npos);
  EXPECT_NE(csv.find("graph,value"), std::string::npos);
  const std::string json = render_log_json(run_a);
  EXPECT_NE(json.find("\"experiment_id\": \"exp_0\""), std::string::npos);
  // The quoted-cell row must survive JSON escaping.
  EXPECT_NE(json.find("x,y|z\\\"quoted\\\""), std::string::npos);
}

TEST(LogTools, DiffIgnoresWallByDefaultAndCatchesRealDivergence) {
  std::vector<ResultRecord> run_a = {sample_record(0), sample_record(1)};
  std::vector<ResultRecord> run_b = run_a;
  run_b[1].wall_micros += 12345;

  EXPECT_TRUE(diff_logs(run_a, run_b).identical);
  const LogDiff strict = diff_logs(run_a, run_b, /*ignore_wall=*/false);
  EXPECT_FALSE(strict.identical);
  EXPECT_FALSE(strict.report.empty());

  // A single changed cell is a real divergence under either mode.
  run_b[1].wall_micros = run_a[1].wall_micros;
  run_b[1].rows[0][1] = "changed";
  const LogDiff cell = diff_logs(run_a, run_b);
  EXPECT_FALSE(cell.identical);
  EXPECT_NE(cell.report.find("exp_1"), std::string::npos);

  // Length mismatch reports counts instead of walking records.
  run_b.pop_back();
  const LogDiff len = diff_logs(run_a, run_b);
  EXPECT_FALSE(len.identical);
  EXPECT_FALSE(len.report.empty());
}

}  // namespace
}  // namespace rdv::store
