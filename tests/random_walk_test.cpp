#include <gtest/gtest.h>

#include "core/random_walk.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "views/shrink.hpp"

namespace rdv::core {
namespace {

using graph::Graph;
using graph::Node;
namespace families = rdv::graph::families;

TEST(RandomWalk, DeterministicGivenSeeds) {
  const Graph g = families::oriented_ring(8);
  sim::RunConfig config;
  config.max_rounds = 50'000;
  const auto a = sim::run_pair(g, lazy_random_walk_program(1),
                               lazy_random_walk_program(2), 0, 4, 0,
                               config);
  const auto b = sim::run_pair(g, lazy_random_walk_program(1),
                               lazy_random_walk_program(2), 0, 4, 0,
                               config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.met, b.met);
  EXPECT_EQ(a.meet_round_absolute, b.meet_round_absolute);
}

TEST(RandomWalk, LazyWalksMeetEvenOnInfeasibleSymmetricStics) {
  // The conclusion's contrast: [(0, n/2), 0] on an even oriented ring
  // is deterministically INFEASIBLE (symmetric, delta = 0 < Shrink),
  // yet independent lazy random walks meet quickly.
  const Graph g = families::oriented_ring(8);
  ASSERT_EQ(views::shrink(g, 0, 4), 4u);
  sim::RunConfig config;
  config.max_rounds = 100'000;
  int met = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto r = sim::run_pair(
        g, lazy_random_walk_program(2 * seed + 1),
        lazy_random_walk_program(2 * seed + 2), 0, 4, 0, config);
    ASSERT_TRUE(r.ok()) << r.error;
    if (r.met) ++met;
  }
  EXPECT_EQ(met, 10);  // w.h.p. per run; certain across this cap
}

TEST(RandomWalk, PlainWalksTrappedByParity) {
  // Two plain (non-lazy) walks on a bipartite graph at odd initial
  // distance can cross but never meet: both move every round, so the
  // distance parity is invariant.
  const Graph g = families::oriented_ring(8);  // bipartite (even cycle)
  sim::RunConfig config;
  config.max_rounds = 20'000;
  const auto r = sim::run_pair(g, random_walk_program(7),
                               random_walk_program(8), 0, 3, 0, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.met);
  EXPECT_GT(r.edge_crossings, 0u);
}

TEST(RandomWalk, IdenticalSeedsOnSymmetricPairNeverMeet) {
  // With the SAME seed the "randomized" agents are deterministic clones
  // again — Lemma 3.1's impossibility reappears. Randomness only helps
  // because it is independent.
  const Graph g = families::oriented_ring(6);
  sim::RunConfig config;
  config.max_rounds = 20'000;
  const auto r = sim::run_anonymous(g, lazy_random_walk_program(5), 0, 3,
                                    0, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.met);
}

TEST(RandomWalk, MeetsAcrossFamilies) {
  const std::vector<Graph> corpus = {
      families::hypercube(3),
      families::oriented_torus(3, 3),
      families::symmetric_double_tree(2, 2),
      families::random_connected(10, 5, 3),
  };
  sim::RunConfig config;
  config.max_rounds = 200'000;
  for (const Graph& g : corpus) {
    const auto r = sim::run_pair(g, lazy_random_walk_program(11),
                                 lazy_random_walk_program(12), 0,
                                 g.size() / 2, 1, config);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.met) << g.name();
  }
}

TEST(RandomWalk, RejectsAlwaysStay) {
  EXPECT_THROW(lazy_random_walk_program(1, 1000), std::invalid_argument);
}

}  // namespace
}  // namespace rdv::core
