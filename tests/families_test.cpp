#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/families/families.hpp"
#include "graph/families/implicit.hpp"
#include "graph/graph.hpp"

namespace rdv::graph::families {
namespace {

TEST(OrientedRing, Structure) {
  const Graph g = oriented_ring(6);
  EXPECT_EQ(g.size(), 6u);
  EXPECT_EQ(g.edge_count(), 6u);
  for (Node v = 0; v < 6; ++v) {
    EXPECT_EQ(g.degree(v), 2u);
    EXPECT_EQ(g.step(v, 0).to, (v + 1) % 6);
    EXPECT_EQ(g.step(v, 1).to, (v + 5) % 6);
  }
  EXPECT_THROW(oriented_ring(2), std::invalid_argument);
}

TEST(ScrambledRing, ValidAndDeterministic) {
  const Graph a = scrambled_ring(9, 5);
  const Graph b = scrambled_ring(9, 5);
  EXPECT_TRUE(a.validate().empty());
  for (Node v = 0; v < a.size(); ++v) {
    for (Port p = 0; p < a.degree(v); ++p) {
      EXPECT_EQ(a.step(v, p), b.step(v, p));
    }
  }
}

TEST(OrientedTorus, Structure) {
  const Graph g = oriented_torus(4, 3);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_EQ(g.edge_count(), 24u);
  for (Node v = 0; v < g.size(); ++v) {
    EXPECT_EQ(g.degree(v), 4u);
    // East then West returns home; South then North returns home.
    EXPECT_EQ(g.step(g.step(v, 0).to, 2).to, v);
    EXPECT_EQ(g.step(g.step(v, 1).to, 3).to, v);
  }
  EXPECT_THROW(oriented_torus(2, 5), std::invalid_argument);
}

TEST(OrientedTorus, DistancesMatchManhattanWraps) {
  const Graph g = oriented_torus(5, 4);
  // node (x, y) = y*5 + x; distance((0,0),(2,3)) = 2 + 1 (wrap).
  EXPECT_EQ(distance(g, 0, 3 * 5 + 2), 3u);
}

TEST(Hypercube, Structure) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.size(), 16u);
  for (Node v = 0; v < g.size(); ++v) {
    EXPECT_EQ(g.degree(v), 4u);
    for (Port i = 0; i < 4; ++i) {
      EXPECT_EQ(g.step(v, i).to, v ^ (1u << i));
      EXPECT_EQ(g.step(v, i).entry_port, i);
    }
  }
}

TEST(Complete, PortConvention) {
  const Graph g = complete(5);
  EXPECT_EQ(g.edge_count(), 10u);
  for (Node u = 0; u < 5; ++u) {
    EXPECT_EQ(g.degree(u), 4u);
    for (Port p = 0; p < 4; ++p) {
      const Node expect = (p < u) ? p : p + 1;
      EXPECT_EQ(g.step(u, p).to, expect);
    }
  }
}

TEST(PathGraph, Structure) {
  const Graph g = path_graph(5);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(4), 1u);
  for (Node v = 1; v < 4; ++v) {
    EXPECT_EQ(g.degree(v), 2u);
    EXPECT_EQ(g.step(v, 0).to, v - 1);
    EXPECT_EQ(g.step(v, 1).to, v + 1);
  }
  EXPECT_EQ(two_node_graph().size(), 2u);
}

TEST(BalancedTree, SizesAndDegrees) {
  const Graph g = balanced_tree(2, 3);  // 1+2+4+8 = 15 nodes
  EXPECT_EQ(g.size(), 15u);
  EXPECT_EQ(g.edge_count(), 14u);
  EXPECT_EQ(g.degree(0), 2u);  // root: two children
}

TEST(SymmetricDoubleTree, MirrorStructure) {
  const Graph g = symmetric_double_tree(2, 2);  // halves of 7, total 14
  EXPECT_EQ(g.size(), 14u);
  const Node half = 7;
  // The central edge uses port `branching` = 2 at both roots.
  EXPECT_EQ(g.step(0, 2).to, half);
  EXPECT_EQ(g.step(half, 2).to, 0u);
  EXPECT_EQ(g.step(0, 2).entry_port, 2u);
  EXPECT_EQ(double_tree_mirror(g, 3), 3 + half);
  EXPECT_EQ(double_tree_mirror(g, 3 + half), 3u);
  // Mirrored steps agree: the automorphism is port-preserving.
  for (Node v = 0; v < half; ++v) {
    ASSERT_EQ(g.degree(v), g.degree(v + half));
    for (Port p = 0; p < g.degree(v); ++p) {
      EXPECT_EQ(double_tree_mirror(g, g.step(v, p).to),
                g.step(v + half, p).to);
      EXPECT_EQ(g.step(v, p).entry_port, g.step(v + half, p).entry_port);
    }
  }
}

TEST(Grid, StructureAndDegrees) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_EQ(g.edge_count(), 2u * 4 + 3u * 3);  // (w-1)h + w(h-1)
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(1), 3u);   // edge
  EXPECT_EQ(g.degree(4), 4u);   // interior (x=1,y=1)
  // Interior node ports follow E,S,W,N: from (1,1)=4, port 0 is East.
  EXPECT_EQ(g.step(4, 0).to, 5u);
  EXPECT_EQ(g.step(4, 1).to, 7u);
  EXPECT_THROW(grid(1, 5), std::invalid_argument);
}

TEST(Star, HubAndLeaves) {
  const Graph g = star(6);
  EXPECT_EQ(g.degree(0), 5u);
  for (Node leaf = 1; leaf < 6; ++leaf) {
    EXPECT_EQ(g.degree(leaf), 1u);
    EXPECT_EQ(g.step(leaf, 0).to, 0u);
    EXPECT_EQ(g.step(0, leaf - 1).to, leaf);
  }
}

TEST(CompleteBipartite, Wiring) {
  const Graph g = complete_bipartite(2, 3);
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.degree(0), 3u);  // left side sees all of the right
  EXPECT_EQ(g.degree(2), 2u);  // right side sees all of the left
  EXPECT_EQ(g.step(0, 1).to, 3u);
  EXPECT_EQ(g.step(3, 0).to, 0u);
}

TEST(RingWithChord, Structure) {
  const Graph g = ring_with_chord(8);
  EXPECT_EQ(g.edge_count(), 9u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(4), 3u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.step(0, 2).to, 4u);
  EXPECT_THROW(ring_with_chord(7), std::invalid_argument);
}

TEST(RandomConnected, ValidDeterministicAndSized) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const Graph g = random_connected(15, 10, seed);
    EXPECT_TRUE(g.validate().empty());
    EXPECT_EQ(g.size(), 15u);
    EXPECT_EQ(g.edge_count(), 14u + 10u);
  }
  EXPECT_THROW(random_connected(5, 100, 1), std::invalid_argument);
}

// ---- implicit (non-materialized) twins ------------------------------

/// Every implicit topology must match its explicit generator EXACTLY —
/// step and degree node by node, port by port — plus agree on the two
/// closed forms (distance, distance_histogram) the implicit census
/// relies on instead of BFS.
template <typename Topo>
void expect_matches_explicit(const Topo& topo, const Graph& g) {
  ASSERT_EQ(topo.size(), g.size());
  EXPECT_EQ(topo.edge_count(), g.edge_count());
  for (Node v = 0; v < g.size(); ++v) {
    ASSERT_EQ(topo.degree(v), g.degree(v)) << v;
    for (Port p = 0; p < g.degree(v); ++p) {
      EXPECT_EQ(topo.step(v, p).to, g.step(v, p).to) << v << ":" << p;
      EXPECT_EQ(topo.step(v, p).entry_port, g.step(v, p).entry_port)
          << v << ":" << p;
    }
  }
  // distance() vs BFS on the explicit twin, and the histogram vs
  // source-0 distance counts (vertex-transitive: any source works).
  const std::vector<std::uint32_t> d0 = bfs_distances(g, 0);
  std::vector<std::uint64_t> counts;
  for (Node v = 0; v < g.size(); ++v) {
    EXPECT_EQ(topo.distance(0, v), d0[v]) << v;
    EXPECT_EQ(topo.distance(v, 0), d0[v]) << v;
    if (d0[v] >= counts.size()) counts.resize(d0[v] + 1, 0);
    if (v != 0) ++counts[d0[v]];
  }
  counts[0] = 0;  // histogram convention: counts[0] excluded
  EXPECT_EQ(topo.distance_histogram(), counts);
}

TEST(ImplicitRing, MatchesExplicitTwin) {
  for (std::uint32_t n : {3u, 6u, 7u, 12u}) {
    SCOPED_TRACE(n);
    expect_matches_explicit(OrientedRingTopology(n), oriented_ring(n));
  }
  EXPECT_THROW(OrientedRingTopology(2), std::invalid_argument);
}

TEST(ImplicitTorus, MatchesExplicitTwin) {
  expect_matches_explicit(OrientedTorusTopology(3, 3), oriented_torus(3, 3));
  expect_matches_explicit(OrientedTorusTopology(5, 4), oriented_torus(5, 4));
  expect_matches_explicit(OrientedTorusTopology(4, 6), oriented_torus(4, 6));
  EXPECT_THROW(OrientedTorusTopology(2, 5), std::invalid_argument);
}

TEST(ImplicitHypercube, MatchesExplicitTwin) {
  for (std::uint32_t dim : {1u, 3u, 5u}) {
    SCOPED_TRACE(dim);
    expect_matches_explicit(HypercubeTopology(dim), hypercube(dim));
  }
  EXPECT_THROW(HypercubeTopology(0), std::invalid_argument);
  EXPECT_THROW(HypercubeTopology(26), std::invalid_argument);
}

TEST(ImplicitFamilies, HistogramsSumToAllPairsAtCensusScale) {
  // Beyond explicit reach: the histogram still covers every other node
  // exactly once, so the implicit census's pair counts are exact.
  const OrientedRingTopology ring(4096);
  std::uint64_t total = 0;
  for (const std::uint64_t c : ring.distance_histogram()) total += c;
  EXPECT_EQ(total, 4095u);

  const HypercubeTopology cube(12);
  total = 0;
  for (const std::uint64_t c : cube.distance_histogram()) total += c;
  EXPECT_EQ(total, (1u << 12) - 1u);

  const OrientedTorusTopology torus(48, 48);
  total = 0;
  for (const std::uint64_t c : torus.distance_histogram()) total += c;
  EXPECT_EQ(total, 48u * 48u - 1u);
}

}  // namespace
}  // namespace rdv::graph::families
