#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "analysis/feasibility.hpp"
#include "analysis/stics.hpp"
#include "core/universal_rv.hpp"
#include "graph/families/families.hpp"
#include "support/thread_pool.hpp"
#include "sweep/sweep.hpp"
#include "views/refinement.hpp"

namespace rdv::sweep {
namespace {

namespace families = rdv::graph::families;
using analysis::Stic;

/// Pure classification kernel (no simulation) — cheap and
/// deterministic, the workhorse for the ordering tests.
SticKernel classify_kernel(const graph::Graph& g,
                           const views::ViewClasses& classes) {
  return [&g, &classes](const Stic& stic) {
    SticRecord record;
    record.stic = stic;
    record.cls = analysis::classify_stic(g, classes, stic);
    record.cells = {std::to_string(stic.u), std::to_string(stic.v),
                    std::to_string(stic.delay),
                    record.cls.feasible ? "yes" : "no"};
    return record;
  };
}

TEST(SweepMap, CoversRangeInOrder) {
  const std::function<int(std::size_t)> square = [](std::size_t i) {
    return static_cast<int>(i * i);
  };
  SweepStats stats;
  SweepConfig config;
  config.chunk_size = 3;  // 7 items -> chunks of 3,3,1 (non-divisible)
  const std::vector<int> out = sweep_map<int>(7, square, config, {}, &stats);
  ASSERT_EQ(out.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
  EXPECT_EQ(stats.items_total, 7u);
  EXPECT_EQ(stats.chunks_total, 3u);
  EXPECT_EQ(stats.items_produced, 7u);
  EXPECT_FALSE(stats.stopped_early);
}

TEST(SweepMap, EmptyRange) {
  const std::function<int(std::size_t)> id = [](std::size_t i) {
    return static_cast<int>(i);
  };
  SweepStats stats;
  const std::vector<int> out = sweep_map<int>(0, id, {}, {}, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.chunks_total, 0u);
  EXPECT_EQ(stats.chunks_scheduled, 0u);
  EXPECT_FALSE(stats.stopped_early);
}

TEST(SweepMap, SingleItemAndOversizedChunk) {
  const std::function<int(std::size_t)> id = [](std::size_t i) {
    return static_cast<int>(i);
  };
  SweepConfig config;
  config.chunk_size = 1000;  // one chunk swallows everything
  SweepStats stats;
  const std::vector<int> out = sweep_map<int>(1, id, config, {}, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(stats.chunks_total, 1u);
}

TEST(SweepMap, ChunkSizeZeroFallsBackToDefault) {
  const std::function<int(std::size_t)> id = [](std::size_t i) {
    return static_cast<int>(i);
  };
  SweepConfig config;
  config.chunk_size = 0;
  const std::vector<int> out = sweep_map<int>(5, id, config);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[4], 4);
}

TEST(SweepMap, ChunkSizeOne) {
  const std::function<int(std::size_t)> id = [](std::size_t i) {
    return static_cast<int>(i);
  };
  SweepConfig config;
  config.chunk_size = 1;
  SweepStats stats;
  const std::vector<int> out = sweep_map<int>(9, id, config, {}, &stats);
  ASSERT_EQ(out.size(), 9u);
  EXPECT_EQ(stats.chunks_total, 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(SweepMap, EarlyExitTruncatesInclusively) {
  const std::function<int(std::size_t)> id = [](std::size_t i) {
    return static_cast<int>(i);
  };
  const std::function<bool(const int&)> at_37 = [](const int& v) {
    return v == 37;
  };
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    support::ThreadPool pool(threads);
    SweepConfig config;
    config.chunk_size = 7;
    config.pool = &pool;
    SweepStats stats;
    const std::vector<int> out =
        sweep_map<int>(100, id, config, at_37, &stats);
    ASSERT_EQ(out.size(), 38u) << threads << " threads";
    EXPECT_EQ(out.back(), 37);
    EXPECT_TRUE(stats.stopped_early);
    EXPECT_EQ(stats.stop_index, 37u);
    EXPECT_EQ(stats.items_produced, 38u);
  }
}

TEST(SweepMap, EarlyExitOnVeryFirstItem) {
  const std::function<int(std::size_t)> id = [](std::size_t i) {
    return static_cast<int>(i);
  };
  const std::function<bool(const int&)> always = [](const int&) {
    return true;
  };
  SweepStats stats;
  const std::vector<int> out = sweep_map<int>(50, id, {}, always, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.stop_index, 0u);
  EXPECT_TRUE(stats.stopped_early);
}

TEST(SweepMap, PredicateNeverFiringProducesEverything) {
  const std::function<int(std::size_t)> id = [](std::size_t i) {
    return static_cast<int>(i);
  };
  const std::function<bool(const int&)> never = [](const int&) {
    return false;
  };
  SweepStats stats;
  const std::vector<int> out = sweep_map<int>(20, id, {}, never, &stats);
  EXPECT_EQ(out.size(), 20u);
  EXPECT_FALSE(stats.stopped_early);
}

/// Counts live instances so tests can observe whether sweep_map holds
/// discarded chunk buffers (every constructed-but-not-yet-destroyed
/// Tracked is a retained result item).
struct Tracked {
  static std::atomic<int> live;
  int value = 0;
  Tracked() { live.fetch_add(1); }
  explicit Tracked(int v) : value(v) { live.fetch_add(1); }
  Tracked(const Tracked& o) : value(o.value) { live.fetch_add(1); }
  Tracked(Tracked&& o) noexcept : value(o.value) { live.fetch_add(1); }
  Tracked& operator=(const Tracked&) = default;
  Tracked& operator=(Tracked&&) = default;
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

// Regression for the early-exit buffer leak: chunks scheduled past the
// stop trigger used to keep their full output until sweep_map
// returned, and kept computing it. Now in-flight chunks observe the
// stop flag — skipping their remaining kernel calls — and every
// discarded buffer is released. Kernels for items past the stop are
// gated on the predicate having fired, which ALSO pins the pipelining
// contract itself: the merge loop must run while later chunks are
// still executing (the old wave-barrier scheduler, which merged only
// after the whole wave finished, would deadlock here).
TEST(SweepMap, EarlyExitReleasesDiscardedChunkBuffersAndSkipsWork) {
  support::ThreadPool pool(4);
  SweepConfig config;
  config.pool = &pool;
  config.chunk_size = 1;  // every item its own chunk, window = 8 chunks
  std::atomic<bool> fired{false};
  std::atomic<int> kernel_calls{0};
  const std::function<Tracked(std::size_t)> make = [&](std::size_t i) {
    kernel_calls.fetch_add(1);
    // Items past the stop run only once the trigger is merged, so
    // every one of them is provably discarded output.
    if (i > 0) {
      while (!fired.load()) std::this_thread::yield();
    }
    return Tracked(static_cast<int>(i));
  };
  const std::function<bool(const Tracked&)> at_0 = [&](const Tracked& t) {
    if (t.value == 0) fired.store(true);
    return t.value == 0;
  };
  ASSERT_EQ(Tracked::live.load(), 0);
  SweepStats stats;
  const std::vector<Tracked> out =
      sweep_map<Tracked>(99, make, config, at_0, &stats);
  // Truncation semantics unchanged: stop on item 0, inclusive.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 0);
  EXPECT_TRUE(stats.stopped_early);
  EXPECT_EQ(stats.stop_index, 0u);
  EXPECT_EQ(stats.items_produced, 1u);
  // Chunks that had not started when the stop was merged skipped their
  // kernels entirely: nowhere near all 99 items were computed.
  EXPECT_LE(kernel_calls.load(), 9);
  // Every live instance is in the returned vector — each discarded
  // chunk buffer was released, not retained.
  EXPECT_EQ(Tracked::live.load(), static_cast<int>(out.size()));
}

// The pipelined scheduler (schedule wave k+1 while merging wave k)
// must keep the byte-for-byte ordering contract at any thread count,
// chunk size, and early-exit position — including stops landing mid-
// chunk, at a chunk boundary, and past the end.
TEST(SweepMap, PipelinedSchedulerDeterministicAcrossConfigs) {
  const std::function<int(std::size_t)> id = [](std::size_t i) {
    return static_cast<int>(i);
  };
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{16}}) {
    support::ThreadPool pool(threads);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                    std::size_t{64}}) {
      for (const int stop_at : {-1, 0, 17, 63, 64, 98}) {
        SweepConfig config;
        config.pool = &pool;
        config.chunk_size = chunk;
        std::function<bool(const int&)> stop_when;
        if (stop_at >= 0) {
          stop_when = [stop_at](const int& v) { return v == stop_at; };
        }
        SweepStats stats;
        const std::vector<int> out =
            sweep_map<int>(99, id, config, stop_when, &stats);
        const std::size_t expected =
            (stop_at >= 0 && stop_at < 99) ? stop_at + 1u : 99u;
        ASSERT_EQ(out.size(), expected)
            << threads << " threads, chunk " << chunk << ", stop at "
            << stop_at;
        for (std::size_t i = 0; i < out.size(); ++i) {
          ASSERT_EQ(out[i], static_cast<int>(i));
        }
        EXPECT_EQ(stats.stopped_early, stop_at >= 0 && stop_at < 99);
        EXPECT_EQ(stats.items_produced, expected);
      }
    }
  }
}

// A kernel that itself sweeps on the same pool: the nested shape that
// used to deadlock (the outer chunk's worker blocked on inner chunks
// only it could run). Work-assisting waits execute them instead.
TEST(SweepMap, NestedSweepInsideKernelCompletesAndStaysDeterministic) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    support::ThreadPool pool(threads);
    SweepConfig config;
    config.pool = &pool;
    config.chunk_size = 1;
    const std::function<int(std::size_t)> outer = [&](std::size_t i) {
      const std::function<int(std::size_t)> inner = [i](std::size_t j) {
        return static_cast<int>(i * 10 + j);
      };
      const std::vector<int> parts = sweep_map<int>(5, inner, config);
      int sum = 0;
      for (int p : parts) sum += p;
      return sum;
    };
    const std::vector<int> out = sweep_map<int>(8, outer, config);
    ASSERT_EQ(out.size(), 8u) << threads << " threads";
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i * 50 + 10));
    }
  }
}

TEST(SticSweep, TableIdenticalForOneAndManyThreads) {
  const graph::Graph g = families::oriented_ring(5);
  const views::ViewClasses classes = views::compute_view_classes(g);
  const std::vector<Stic> stics = analysis::enumerate_stics(g, 3);
  const SticKernel kernel = classify_kernel(g, classes);
  const std::vector<std::string> headers = {"u", "v", "delay", "feasible"};

  support::ThreadPool one(1);
  SweepConfig config_one;
  config_one.pool = &one;
  config_one.chunk_size = 5;
  const SticSweepResult r1 = run_stic_sweep(stics, kernel, config_one);

  support::ThreadPool many(4);
  SweepConfig config_many;
  config_many.pool = &many;
  config_many.chunk_size = 5;
  const SticSweepResult rn = run_stic_sweep(stics, kernel, config_many);

  ASSERT_EQ(r1.records.size(), stics.size());
  ASSERT_EQ(rn.records.size(), stics.size());
  for (std::size_t i = 0; i < stics.size(); ++i) {
    EXPECT_EQ(r1.records[i].stic, rn.records[i].stic);
    EXPECT_EQ(r1.records[i].cls.feasible, rn.records[i].cls.feasible);
    EXPECT_EQ(r1.records[i].cells, rn.records[i].cells);
  }
  // Byte-identical aggregated tables: the acceptance bar.
  EXPECT_EQ(to_table(headers, r1.records).to_csv(),
            to_table(headers, rn.records).to_csv());
  EXPECT_EQ(to_table(headers, r1.records).to_markdown(),
            to_table(headers, rn.records).to_markdown());
}

TEST(SticSweep, EarlyExitAtFirstInfeasibleIsThreadCountInvariant) {
  const graph::Graph g = families::oriented_ring(4);
  const views::ViewClasses classes = views::compute_view_classes(g);
  const std::vector<Stic> stics = analysis::enumerate_stics(g, 2);
  const SticKernel kernel = classify_kernel(g, classes);

  // Ground truth: index of the first infeasible STIC, found serially.
  std::size_t expected_stop = stics.size();
  for (std::size_t i = 0; i < stics.size(); ++i) {
    if (!analysis::classify_stic(g, classes, stics[i]).feasible) {
      expected_stop = i;
      break;
    }
  }
  ASSERT_LT(expected_stop, stics.size())
      << "oriented_ring(4) must have an infeasible STIC in delay 0..2";

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    support::ThreadPool pool(threads);
    SweepConfig config;
    config.pool = &pool;
    config.chunk_size = 3;
    const SticSweepResult r =
        run_stic_sweep(stics, kernel, config, stop_at_infeasible);
    EXPECT_TRUE(r.stats.stopped_early);
    EXPECT_EQ(r.stats.stop_index, expected_stop);
    ASSERT_EQ(r.records.size(), expected_stop + 1);
    EXPECT_FALSE(r.records.back().cls.feasible);
    for (std::size_t i = 0; i < expected_stop; ++i) {
      EXPECT_TRUE(r.records[i].cls.feasible);
    }
  }
}

TEST(SticSweep, ToTableSkipsRecordsWithoutCells) {
  std::vector<SticRecord> records(3);
  records[0].cells = {"a"};
  records[2].cells = {"c"};
  const support::Table table = to_table({"col"}, records);
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_NE(table.to_csv().find("a\nc"), std::string::npos);
}

TEST(SticSweep, FeasibilitySweepMatchesAnalysisLayer) {
  const graph::Graph g = families::oriented_ring(3);
  core::UniversalOptions options;
  options.max_phases = 120;
  const sim::AgentProgram program = core::universal_rv_program(options);
  sim::RunConfig config;
  config.max_rounds = 1u << 23;

  const analysis::SweepSummary via_sweep =
      feasibility_sweep(g, 2, program, config);
  const analysis::SweepSummary via_analysis =
      analysis::feasibility_sweep(g, 2, program, config);

  EXPECT_EQ(via_sweep.feasible, via_analysis.feasible);
  EXPECT_EQ(via_sweep.infeasible, via_analysis.infeasible);
  EXPECT_EQ(via_sweep.inconsistent, 0u);
  EXPECT_EQ(via_analysis.inconsistent, 0u);
  ASSERT_EQ(via_sweep.checks.size(), via_analysis.checks.size());
  for (std::size_t i = 0; i < via_sweep.checks.size(); ++i) {
    EXPECT_EQ(via_sweep.checks[i].cls.stic, via_analysis.checks[i].cls.stic);
    EXPECT_EQ(via_sweep.checks[i].run.met, via_analysis.checks[i].run.met);
    EXPECT_TRUE(via_sweep.checks[i].consistent);
  }
}

TEST(SticSweep, FeasibilitySweepDeterministicAcrossThreadCounts) {
  const graph::Graph g = families::path_graph(3);
  core::UniversalOptions options;
  options.max_phases = 120;
  const sim::AgentProgram program = core::universal_rv_program(options);
  sim::RunConfig config;
  config.max_rounds = 1u << 23;

  support::ThreadPool one(1);
  SweepConfig sweep_one;
  sweep_one.pool = &one;
  support::ThreadPool many(4);
  SweepConfig sweep_many;
  sweep_many.pool = &many;

  const analysis::SweepSummary r1 =
      feasibility_sweep(g, 1, program, config, sweep_one);
  const analysis::SweepSummary rn =
      feasibility_sweep(g, 1, program, config, sweep_many);
  ASSERT_EQ(r1.checks.size(), rn.checks.size());
  for (std::size_t i = 0; i < r1.checks.size(); ++i) {
    EXPECT_EQ(r1.checks[i].cls.stic, rn.checks[i].cls.stic);
    EXPECT_EQ(r1.checks[i].cls.feasible, rn.checks[i].cls.feasible);
    EXPECT_EQ(r1.checks[i].run.met, rn.checks[i].run.met);
    EXPECT_EQ(r1.checks[i].run.meet_from_later_start,
              rn.checks[i].run.meet_from_later_start);
  }
}

}  // namespace
}  // namespace rdv::sweep
