#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "analysis/experiments.hpp"
#include "support/saturating.hpp"
#include "core/random_walk.hpp"
#include "graph/families/families.hpp"

namespace rdv::analysis {
namespace {

namespace families = rdv::graph::families;

TEST(Experiments, MeasuredRendezvousReportsRounds) {
  const graph::Graph g = families::two_node_graph();
  // Two lazy walks with distinct seeds meet quickly.
  const auto rounds = measured_rendezvous(
      g,
      [](sim::Mailbox& mb, sim::Observation) -> sim::Proc {
        return [](sim::Mailbox& mb2) -> sim::Proc {
          for (;;) co_await mb2.move(0);
        }(mb);
      },
      Stic{0, 1, 3}, /*max_rounds=*/100);
  ASSERT_TRUE(rounds.has_value());
  EXPECT_EQ(*rounds, 0u);
}

TEST(Experiments, MeasuredRendezvousTimesOut) {
  const graph::Graph g = families::two_node_graph();
  const auto rounds = measured_rendezvous(
      g,
      [](sim::Mailbox& mb, sim::Observation) -> sim::Proc {
        return [](sim::Mailbox& mb2) -> sim::Proc {
          co_await mb2.wait(support::kRoundInfinity);
        }(mb);
      },
      Stic{0, 1, 0}, /*max_rounds=*/50);
  EXPECT_FALSE(rounds.has_value());
}

TEST(Experiments, RendezvousCellFormats) {
  EXPECT_EQ(rendezvous_cell(std::optional<std::uint64_t>{42}, 100), "42");
  EXPECT_EQ(rendezvous_cell(std::nullopt, 100), "no-meet(cap=100)");
}

TEST(Experiments, EmitTableWritesCsvWhenConfigured) {
  support::Table table({"a", "b"});
  table.add_row({"1", "2"});
  // Without the env var: prints only, returns empty.
  unsetenv("REPRO_CSV_DIR");
  EXPECT_TRUE(emit_table("unit_test_table", "heading", table).empty());
  // With it: writes the CSV.
  const std::string dir = ::testing::TempDir();
  setenv("REPRO_CSV_DIR", dir.c_str(), 1);
  const std::string path = emit_table("unit_test_table", "heading", table);
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  unsetenv("REPRO_CSV_DIR");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rdv::analysis
