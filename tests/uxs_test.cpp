#include <gtest/gtest.h>

#include "cache/artifact_cache.hpp"
#include "graph/families/families.hpp"
#include "graph/families/qhat.hpp"
#include "uxs/corpus.hpp"
#include "uxs/uxs.hpp"
#include "uxs/verifier.hpp"

namespace rdv::uxs {
namespace {

using graph::Graph;
using graph::Node;
namespace families = rdv::graph::families;

TEST(Uxs, PseudoRandomDeterministic) {
  const Uxs a = Uxs::pseudo_random(64, 9);
  const Uxs b = Uxs::pseudo_random(64, 9);
  ASSERT_EQ(a.length(), b.length());
  for (std::size_t i = 0; i < a.length(); ++i) {
    EXPECT_EQ(a.terms()[i], b.terms()[i]);
  }
  const Uxs c = Uxs::pseudo_random(64, 10);
  EXPECT_NE(a.terms()[0], c.terms()[0]);
}

TEST(Uxs, DefaultLengthGrowsPolynomially) {
  EXPECT_GE(Uxs::default_length(2), 8u);
  EXPECT_LT(Uxs::default_length(8), Uxs::default_length(16));
  EXPECT_EQ(Uxs::default_length(4), 4u * 16 * 3);
}

TEST(Apply, PathLengthIsMPlusTwoNodes) {
  const Graph g = families::oriented_ring(5);
  const Uxs y = Uxs::pseudo_random(10, 1);
  const auto walk = apply_uxs(g, 0, y);
  EXPECT_EQ(walk.size(), y.length() + 2);
  EXPECT_EQ(walk[0], 0u);
  EXPECT_EQ(walk[1], 1u);  // first step is port 0 = clockwise
}

TEST(Apply, StaysInGraph) {
  const Graph g = families::random_connected(9, 5, 2);
  const Uxs y = Uxs::pseudo_random(200, 3);
  for (Node u = 0; u < g.size(); ++u) {
    for (const Node v : apply_uxs(g, u, y)) {
      EXPECT_LT(v, g.size());
    }
  }
}

TEST(Verifier, DetectsNonCoverage) {
  // A sequence of all zeros in an oriented ring with entry ports: step
  // port 0, then (entry + 0) mod 2: entering clockwise means entry port
  // 1, so (1+0)%2 = 1 = go back: it oscillates and cannot cover a long
  // ring.
  const Graph g = families::oriented_ring(8);
  const Uxs zeros(std::vector<std::uint64_t>(16, 0), "zeros");
  const CoverageReport report = check_coverage(g, zeros);
  EXPECT_FALSE(report.universal);
  EXPECT_FALSE(report.failing_starts.empty());
}

TEST(Verifier, AcceptsCoveringSequence) {
  // All-ones in the oriented ring: (entry 1 + 1) mod 2 = 0 = keep going
  // clockwise; covers after n-1 terms.
  const Graph g = families::oriented_ring(8);
  const Uxs ones(std::vector<std::uint64_t>(8, 1), "ones");
  const CoverageReport report = check_coverage(g, ones);
  EXPECT_TRUE(report.universal);
  EXPECT_GE(report.sufficient_prefix, 6u);
}

TEST(Corpus, ContainsExpectedFamilies) {
  const auto corpus = standard_corpus(8);
  // path, complete, rings, hypercube(3), random instances at least.
  EXPECT_GE(corpus.size(), 8u);
  for (const Graph& g : corpus) {
    EXPECT_EQ(g.size(), 8u) << g.name();
    EXPECT_TRUE(g.validate().empty()) << g.name();
  }
}

class CorpusUxsTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CorpusUxsTest, CoversItsCorpus) {
  const std::uint32_t n = GetParam();
  const Uxs y = corpus_verified_uxs(n);
  for (const Graph& g : standard_corpus(n)) {
    EXPECT_TRUE(is_uxs_for(g, y)) << g.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CorpusUxsTest,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 8u, 12u, 17u));

TEST(CorpusUxs, CachedIsStable) {
  // The global artifact cache is the one process-wide UXS memoizer:
  // repeated requests share one artifact.
  const auto a = cache::cached_uxs(6);
  const auto b = cache::cached_uxs(6);
  if (cache::global_cache().config().enabled) {
    EXPECT_EQ(a.get(), b.get());
  }
  EXPECT_EQ(a->provenance(), corpus_verified_uxs(6).provenance());
}

TEST(CoveringUxs, CoversArbitraryGraph) {
  const Graph g = families::random_connected(11, 7, 77);
  const Uxs y = covering_uxs(g);
  EXPECT_TRUE(is_uxs_for(g, y));
  EXPECT_NE(y.provenance().find("graph-verified"), std::string::npos);
  // Deterministic: same call, same sequence.
  const Uxs y2 = covering_uxs(g);
  EXPECT_EQ(y.provenance(), y2.provenance());
  EXPECT_EQ(y.length(), y2.length());
}

TEST(CorpusUxs, CoversQhat2) {
  // qhat_size(2) = 17, so the size-17 corpus includes Q-hat-2; the
  // cached UXS must cover it (needed by UniversalRV runs on Q-hat).
  const auto q = rdv::graph::families::qhat_explicit(2);
  EXPECT_TRUE(is_uxs_for(q.graph, *cache::cached_uxs(17)));
}

}  // namespace
}  // namespace rdv::uxs
