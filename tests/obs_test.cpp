#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/driver.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_tools.hpp"
#include "obs/trace.hpp"

namespace rdv::obs {
namespace {

// ---- metrics primitives ----------------------------------------------

/// Bumps a local counter from `threads` threads, `per_thread` times
/// each — the merged value must be exact no matter the thread count.
std::uint64_t count_with_threads(std::size_t threads,
                                 std::uint64_t per_thread) {
  Counter counter;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&counter, per_thread] {
      for (std::uint64_t i = 0; i < per_thread; ++i) counter.add();
    });
  }
  for (auto& w : workers) w.join();
  return counter.value();
}

TEST(Metrics, CounterMergesDeterministicallyAcrossThreadCounts) {
  // 16 threads deliberately exceeds kStripes on small runners: several
  // threads share stripes, and the sum must still be exact.
  EXPECT_EQ(count_with_threads(1, 4800), 4800u);
  EXPECT_EQ(count_with_threads(4, 1200), 4800u);
  EXPECT_EQ(count_with_threads(16, 300), 4800u);
}

/// Observes the fixed multiset {0, 1, ..., n-1} partitioned across
/// `threads` threads and returns the merged snapshot.
HistogramSnapshot observe_with_threads(std::size_t threads,
                                       std::uint64_t n) {
  Histogram hist;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&hist, t, threads, n] {
      for (std::uint64_t v = t; v < n; v += threads) hist.observe(v);
    });
  }
  for (auto& w : workers) w.join();
  return hist.snapshot();
}

TEST(Metrics, HistogramMergesDeterministicallyAcrossThreadCounts) {
  const HistogramSnapshot a = observe_with_threads(1, 1000);
  const HistogramSnapshot b = observe_with_threads(4, 1000);
  const HistogramSnapshot c = observe_with_threads(16, 1000);
  EXPECT_EQ(a.count, 1000u);
  EXPECT_EQ(a.sum, 999u * 1000u / 2);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.count, c.count);
  EXPECT_EQ(a.sum, c.sum);
  EXPECT_EQ(a.buckets, c.buckets);
}

TEST(Metrics, HistogramBucketEdges) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(std::uint64_t{1} << 62), 63u);
  // bit_width of 2^63.. is 64 — must clamp into the last bucket, not
  // index out of range.
  EXPECT_EQ(histogram_bucket(std::uint64_t{1} << 63), 63u);
  EXPECT_EQ(histogram_bucket(~std::uint64_t{0}), 63u);
}

TEST(Metrics, GaugeSetAndAdd) {
  Gauge gauge;
  gauge.set(7);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), -3);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(Metrics, RegistryHandlesSurviveReset) {
  Counter& counter = Registry::instance().counter("obs_test.survivor");
  counter.add(5);
  EXPECT_EQ(counter.value(), 5u);
  Registry::instance().reset_for_tests();
  // Same object, zeroed — cached static handles elsewhere stay valid.
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(&Registry::instance().counter("obs_test.survivor"), &counter);
  counter.add(1);
  EXPECT_EQ(counter.value(), 1u);
  Registry::instance().reset_for_tests();
}

TEST(Metrics, SnapshotSourcesAreIdempotentByName) {
  Registry::instance().reset_for_tests();
  Registry::instance().register_source(
      "obs_test.src",
      [](MetricsSnapshot& snap) { snap.counters["obs_test.a"] = 1; });
  // Re-registration replaces, never stacks.
  Registry::instance().register_source(
      "obs_test.src",
      [](MetricsSnapshot& snap) { snap.counters["obs_test.a"] = 2; });
  const MetricsSnapshot snap = Registry::instance().snapshot();
  ASSERT_EQ(snap.counters.count("obs_test.a"), 1u);
  EXPECT_EQ(snap.counters.at("obs_test.a"), 2u);
  Registry::instance().reset_for_tests();
}

// ---- tracer ----------------------------------------------------------

TEST(Trace, DisabledSpansRecordNothing) {
  set_trace_enabled(false);
  clear_trace();
  {
    Span span("obs_test", "invisible");
    span.arg("x", 1);
  }
  record_span("also_invisible", "obs_test", 0, 1);
  for (const TraceEvent& e : drain_trace()) {
    EXPECT_STRNE(e.category, "obs_test");
  }
}

TEST(Trace, RingOverflowDropsOldestAndNeverBlocks) {
  clear_trace();
  set_trace_ring_capacity(4);
  set_trace_enabled(true);
  // A fresh thread gets a fresh (capacity-4) ring; recording far more
  // events than capacity must complete (recording never blocks) and
  // keep exactly the newest four.
  std::thread([] {
    for (int i = 0; i < 100; ++i) {
      const std::string name = "evt" + std::to_string(i);
      record_span(name, "obs_test_ring", 1000 + static_cast<uint64_t>(i),
                  1);
    }
  }).join();
  set_trace_enabled(false);
  set_trace_ring_capacity(16384);
  std::vector<TraceEvent> mine;
  for (const TraceEvent& e : drain_trace()) {
    if (std::string_view(e.category) == "obs_test_ring") mine.push_back(e);
  }
  ASSERT_EQ(mine.size(), 4u);
  EXPECT_STREQ(mine[0].name, "evt96");
  EXPECT_STREQ(mine[3].name, "evt99");
  EXPECT_GE(trace_dropped_count(), 96u);
  clear_trace();
  EXPECT_EQ(trace_dropped_count(), 0u);
}

TEST(Trace, LongNamesTruncateSafely) {
  clear_trace();
  set_trace_enabled(true);
  const std::string longname(200, 'x');
  record_span(longname, "obs_test_name", 1, 2, "k", 3);
  set_trace_enabled(false);
  bool found = false;
  for (const TraceEvent& e : drain_trace()) {
    if (std::string_view(e.category) != "obs_test_name") continue;
    found = true;
    EXPECT_EQ(std::string_view(e.name).size(), TraceEvent::kNameCapacity);
    EXPECT_EQ(e.arg_value, 3u);
  }
  EXPECT_TRUE(found);
  clear_trace();
}

TEST(Trace, ChromeRenderEscapesAndShapes) {
  TraceEvent e;
  std::snprintf(e.name, sizeof e.name, "quote\"back\\slash");
  e.category = "cat";
  e.start_micros = 10;
  e.dur_micros = 5;
  e.tid = 3;
  e.arg_key = "items";
  e.arg_value = 42;
  const std::string json = render_chrome_trace({e});
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"items\":42}"), std::string::npos);
}

// ---- snapshot JSON + the gate ----------------------------------------

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot snap;
  snap.counters["alpha.hits"] = 3;
  snap.counters["beta.misses"] = 0;
  snap.gauges["depth"] = -4;
  HistogramSnapshot hist;
  hist.count = 2;
  hist.sum = 300;
  hist.buckets[8] = 2;
  snap.histograms["exp.t1.wall_micros"] = hist;
  return snap;
}

TEST(MetricsJson, RoundTripIsByteStable) {
  const MetricsSnapshot snap = sample_snapshot();
  const std::string json = render_metrics_json(snap);
  const MetricsSnapshot parsed = parse_metrics_json(json);
  EXPECT_EQ(parsed.counters, snap.counters);
  EXPECT_EQ(parsed.gauges, snap.gauges);
  ASSERT_EQ(parsed.histograms.count("exp.t1.wall_micros"), 1u);
  EXPECT_EQ(parsed.histograms.at("exp.t1.wall_micros").sum, 300u);
  // Render(parse(render(x))) == render(x): byte-stable for diffing.
  EXPECT_EQ(render_metrics_json(parsed), json);
}

TEST(MetricsJson, ParserIsStrict) {
  EXPECT_THROW((void)parse_metrics_json(""), std::runtime_error);
  EXPECT_THROW((void)parse_metrics_json("{}"), std::runtime_error);
  EXPECT_THROW((void)parse_metrics_json("not json"), std::runtime_error);
  EXPECT_THROW((void)parse_metrics_json(R"({"format":99,"counters":{},)"
                                        R"("gauges":{},"histograms":{}})"),
               std::runtime_error);
  const std::string good = render_metrics_json(sample_snapshot());
  EXPECT_THROW((void)parse_metrics_json(good.substr(0, good.size() - 2)),
               std::runtime_error);
  EXPECT_THROW((void)parse_metrics_json(good + "x"), std::runtime_error);
}

TEST(Diff, PassesWithinBandFailsBeyond) {
  MetricsSnapshot base = sample_snapshot();
  MetricsSnapshot current = sample_snapshot();
  // Identical snapshots never regress.
  EXPECT_EQ(diff_snapshots(base, current).regressions, 0u);
  // 30% slower: beyond a 25% band, within a 50% one.
  current.histograms["exp.t1.wall_micros"].sum = 390;
  DiffOptions strict;
  strict.tolerance = 0.25;
  const DiffReport bad = diff_snapshots(base, current, strict);
  EXPECT_EQ(bad.regressions, 1u);
  ASSERT_FALSE(bad.lines.empty());
  EXPECT_NE(bad.lines[0].find("REGRESSION"), std::string::npos);
  DiffOptions loose;
  loose.tolerance = 0.5;
  EXPECT_EQ(diff_snapshots(base, current, loose).regressions, 0u);
  // Below the noise floor nothing regresses, however slow relatively.
  strict.min_micros = 1000;
  EXPECT_EQ(diff_snapshots(base, current, strict).regressions, 0u);
}

TEST(Diff, MissingSeriesIsReportedNotFailed) {
  const MetricsSnapshot base = sample_snapshot();
  MetricsSnapshot current = sample_snapshot();
  current.histograms.clear();
  const DiffReport report = diff_snapshots(base, current);
  EXPECT_EQ(report.regressions, 0u);
  bool missing = false;
  for (const std::string& line : report.lines) {
    if (line.find("MISSING") != std::string::npos) missing = true;
  }
  EXPECT_TRUE(missing);
}

TEST(Assertions, ResolveCountersGaugesAndHistogramProjections) {
  const MetricsSnapshot snap = sample_snapshot();
  EXPECT_TRUE(check_assertion(snap, "alpha.hits==3").ok);
  EXPECT_TRUE(check_assertion(snap, "alpha.hits>=3").ok);
  EXPECT_TRUE(check_assertion(snap, "alpha.hits<=3").ok);
  EXPECT_TRUE(check_assertion(snap, "alpha.hits!=2").ok);
  EXPECT_TRUE(check_assertion(snap, "beta.misses==0").ok);
  EXPECT_FALSE(check_assertion(snap, "alpha.hits<3").ok);
  EXPECT_FALSE(check_assertion(snap, "alpha.hits>3").ok);
  EXPECT_TRUE(check_assertion(snap, "depth==-4").ok);
  EXPECT_TRUE(check_assertion(snap, "exp.t1.wall_micros.count==2").ok);
  EXPECT_TRUE(check_assertion(snap, "exp.t1.wall_micros.sum==300").ok);
  // Missing names and malformed expressions fail with a message, never
  // pass silently.
  EXPECT_FALSE(check_assertion(snap, "no.such.series==0").ok);
  EXPECT_FALSE(check_assertion(snap, "alpha.hits").ok);
  EXPECT_FALSE(check_assertion(snap, "alpha.hits==").ok);
  EXPECT_FALSE(check_assertion(snap, "").ok);
}

// ---- end-to-end: sidecars never change primary output ----------------

/// Runs exp::run_main with stdout redirected to a temp file; returns
/// the captured bytes.
std::string run_capturing_stdout(const std::vector<const char*>& argv,
                                 int& exit_code) {
  std::fflush(stdout);
  const int saved = ::dup(STDOUT_FILENO);
  EXPECT_GE(saved, 0);
  char path[] = "/tmp/rdv_obs_stdout_XXXXXX";
  const int fd = ::mkstemp(path);
  EXPECT_GE(fd, 0);
  ::dup2(fd, STDOUT_FILENO);
  exit_code = exp::run_main(static_cast<int>(argv.size()), argv.data());
  std::fflush(stdout);
  ::dup2(saved, STDOUT_FILENO);
  ::close(saved);
  ::close(fd);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ::unlink(path);
  return buffer.str();
}

TEST(EndToEnd, PrimaryStdoutIsByteIdenticalWithSidecarsOn) {
  const std::string metrics_path = "/tmp/rdv_obs_test_metrics.json";
  const std::string trace_path = "/tmp/rdv_obs_test_trace.json";
  const std::string metrics_flag = "--metrics-out=" + metrics_path;
  const std::string trace_flag = "--trace-out=" + trace_path;

  int plain_rc = -1;
  const std::string plain = run_capturing_stdout(
      {"rdv_bench", "t1_shrink_families", "--smoke"}, plain_rc);
  int sidecar_rc = -1;
  const std::string sidecar = run_capturing_stdout(
      {"rdv_bench", "t1_shrink_families", "--smoke", metrics_flag.c_str(),
       trace_flag.c_str()},
      sidecar_rc);
  set_trace_enabled(false);

  EXPECT_EQ(plain_rc, 0);
  EXPECT_EQ(sidecar_rc, 0);
  EXPECT_FALSE(plain.empty());
  EXPECT_EQ(plain, sidecar);

  // The metrics sidecar parses strictly and carries the pool, sweep,
  // cache, store, and per-experiment series the gate consumes.
  std::ifstream min(metrics_path, std::ios::binary);
  ASSERT_TRUE(min.good());
  std::ostringstream mbuf;
  mbuf << min.rdbuf();
  const MetricsSnapshot snap = parse_metrics_json(mbuf.str());
  EXPECT_EQ(snap.counters.count("pool.submits"), 1u);
  EXPECT_EQ(snap.counters.count("sweep.chunks"), 1u);
  EXPECT_EQ(snap.counters.count("cache.view_classes.hits"), 1u);
  EXPECT_EQ(snap.counters.count("store.view_classes.hits"), 1u);
  EXPECT_EQ(snap.counters.count("uxs.corpus_verifications"), 1u);
  EXPECT_EQ(
      snap.histograms.count("exp.t1_shrink_families.wall_micros"), 1u);
  EXPECT_GE(
      snap.histograms.at("exp.t1_shrink_families.wall_micros").count, 1u);

  // The trace sidecar is a Chrome-trace JSON with experiment spans.
  std::ifstream tin(trace_path, std::ios::binary);
  ASSERT_TRUE(tin.good());
  std::ostringstream tbuf;
  tbuf << tin.rdbuf();
  const std::string trace = tbuf.str();
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"t1_shrink_families\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"exp.case\""), std::string::npos);

  ::unlink(metrics_path.c_str());
  ::unlink(trace_path.c_str());
  clear_trace();
}

}  // namespace
}  // namespace rdv::obs
