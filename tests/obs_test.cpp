#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/driver.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_tools.hpp"
#include "obs/profile.hpp"
#include "obs/task_events.hpp"
#include "obs/trace.hpp"
#include "support/thread_pool.hpp"
#include "sweep/sweep.hpp"

namespace rdv::obs {
namespace {

// ---- metrics primitives ----------------------------------------------

/// Bumps a local counter from `threads` threads, `per_thread` times
/// each — the merged value must be exact no matter the thread count.
std::uint64_t count_with_threads(std::size_t threads,
                                 std::uint64_t per_thread) {
  Counter counter;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&counter, per_thread] {
      for (std::uint64_t i = 0; i < per_thread; ++i) counter.add();
    });
  }
  for (auto& w : workers) w.join();
  return counter.value();
}

TEST(Metrics, CounterMergesDeterministicallyAcrossThreadCounts) {
  // 16 threads deliberately exceeds kStripes on small runners: several
  // threads share stripes, and the sum must still be exact.
  EXPECT_EQ(count_with_threads(1, 4800), 4800u);
  EXPECT_EQ(count_with_threads(4, 1200), 4800u);
  EXPECT_EQ(count_with_threads(16, 300), 4800u);
}

/// Observes the fixed multiset {0, 1, ..., n-1} partitioned across
/// `threads` threads and returns the merged snapshot.
HistogramSnapshot observe_with_threads(std::size_t threads,
                                       std::uint64_t n) {
  Histogram hist;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&hist, t, threads, n] {
      for (std::uint64_t v = t; v < n; v += threads) hist.observe(v);
    });
  }
  for (auto& w : workers) w.join();
  return hist.snapshot();
}

TEST(Metrics, HistogramMergesDeterministicallyAcrossThreadCounts) {
  const HistogramSnapshot a = observe_with_threads(1, 1000);
  const HistogramSnapshot b = observe_with_threads(4, 1000);
  const HistogramSnapshot c = observe_with_threads(16, 1000);
  EXPECT_EQ(a.count, 1000u);
  EXPECT_EQ(a.sum, 999u * 1000u / 2);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.count, c.count);
  EXPECT_EQ(a.sum, c.sum);
  EXPECT_EQ(a.buckets, c.buckets);
}

TEST(Metrics, HistogramBucketEdges) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(std::uint64_t{1} << 62), 63u);
  // bit_width of 2^63.. is 64 — must clamp into the last bucket, not
  // index out of range.
  EXPECT_EQ(histogram_bucket(std::uint64_t{1} << 63), 63u);
  EXPECT_EQ(histogram_bucket(~std::uint64_t{0}), 63u);
}

TEST(Metrics, GaugeSetAndAdd) {
  Gauge gauge;
  gauge.set(7);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), -3);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(Metrics, RegistryHandlesSurviveReset) {
  Counter& counter = Registry::instance().counter("obs_test.survivor");
  counter.add(5);
  EXPECT_EQ(counter.value(), 5u);
  Registry::instance().reset_for_tests();
  // Same object, zeroed — cached static handles elsewhere stay valid.
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(&Registry::instance().counter("obs_test.survivor"), &counter);
  counter.add(1);
  EXPECT_EQ(counter.value(), 1u);
  Registry::instance().reset_for_tests();
}

TEST(Metrics, SnapshotSourcesAreIdempotentByName) {
  Registry::instance().reset_for_tests();
  Registry::instance().register_source(
      "obs_test.src",
      [](MetricsSnapshot& snap) { snap.counters["obs_test.a"] = 1; });
  // Re-registration replaces, never stacks.
  Registry::instance().register_source(
      "obs_test.src",
      [](MetricsSnapshot& snap) { snap.counters["obs_test.a"] = 2; });
  const MetricsSnapshot snap = Registry::instance().snapshot();
  ASSERT_EQ(snap.counters.count("obs_test.a"), 1u);
  EXPECT_EQ(snap.counters.at("obs_test.a"), 2u);
  Registry::instance().reset_for_tests();
}

// ---- tracer ----------------------------------------------------------

TEST(Trace, DisabledSpansRecordNothing) {
  set_trace_enabled(false);
  clear_trace();
  {
    Span span("obs_test", "invisible");
    span.arg("x", 1);
  }
  record_span("also_invisible", "obs_test", 0, 1);
  for (const TraceEvent& e : drain_trace()) {
    EXPECT_STRNE(e.category, "obs_test");
  }
}

TEST(Trace, RingOverflowDropsOldestAndNeverBlocks) {
  clear_trace();
  set_trace_ring_capacity(4);
  set_trace_enabled(true);
  // A fresh thread gets a fresh (capacity-4) ring; recording far more
  // events than capacity must complete (recording never blocks) and
  // keep exactly the newest four.
  std::thread([] {
    for (int i = 0; i < 100; ++i) {
      const std::string name = "evt" + std::to_string(i);
      record_span(name, "obs_test_ring", 1000 + static_cast<uint64_t>(i),
                  1);
    }
  }).join();
  set_trace_enabled(false);
  set_trace_ring_capacity(16384);
  std::vector<TraceEvent> mine;
  for (const TraceEvent& e : drain_trace()) {
    if (std::string_view(e.category) == "obs_test_ring") mine.push_back(e);
  }
  ASSERT_EQ(mine.size(), 4u);
  EXPECT_STREQ(mine[0].name, "evt96");
  EXPECT_STREQ(mine[3].name, "evt99");
  EXPECT_GE(trace_dropped_count(), 96u);
  clear_trace();
  EXPECT_EQ(trace_dropped_count(), 0u);
}

TEST(Trace, LongNamesTruncateSafely) {
  clear_trace();
  set_trace_enabled(true);
  const std::string longname(200, 'x');
  record_span(longname, "obs_test_name", 1, 2, "k", 3);
  set_trace_enabled(false);
  bool found = false;
  for (const TraceEvent& e : drain_trace()) {
    if (std::string_view(e.category) != "obs_test_name") continue;
    found = true;
    EXPECT_EQ(std::string_view(e.name).size(), TraceEvent::kNameCapacity);
    EXPECT_EQ(e.arg_value, 3u);
  }
  EXPECT_TRUE(found);
  clear_trace();
}

TEST(Trace, ChromeRenderEscapesAndShapes) {
  TraceEvent e;
  std::snprintf(e.name, sizeof e.name, "quote\"back\\slash");
  e.category = "cat";
  e.start_micros = 10;
  e.dur_micros = 5;
  e.tid = 3;
  e.arg_key = "items";
  e.arg_value = 42;
  const std::string json = render_chrome_trace({e});
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"items\":42}"), std::string::npos);
}

// ---- task-lifecycle events -------------------------------------------

TEST(TaskEvents, DisabledRecordsNothingAndAllocatorsStayMonotone) {
  set_task_events_enabled(false);
  clear_task_events();
  record_task_event(TaskEventKind::kSubmit, 424242);
  for (const TaskEvent& e : drain_task_events()) {
    EXPECT_NE(e.task, 424242u);
  }
  EXPECT_EQ(task_events_recorded_count(), 0u);
  const std::uint64_t a = next_task_id();
  const std::uint64_t b = next_task_id();
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, a);
  EXPECT_GT(next_sweep_id(), 0u);
}

TEST(TaskEvents, KindNamesAreStable) {
  EXPECT_STREQ(task_event_kind_name(TaskEventKind::kSubmit), "submit");
  EXPECT_STREQ(task_event_kind_name(TaskEventKind::kDequeue), "dequeue");
  EXPECT_STREQ(task_event_kind_name(TaskEventKind::kSteal), "steal");
  EXPECT_STREQ(task_event_kind_name(TaskEventKind::kBegin), "begin");
  EXPECT_STREQ(task_event_kind_name(TaskEventKind::kEnd), "end");
  EXPECT_STREQ(task_event_kind_name(TaskEventKind::kPark), "park");
  EXPECT_STREQ(task_event_kind_name(TaskEventKind::kUnpark), "unpark");
  EXPECT_STREQ(task_event_kind_name(TaskEventKind::kSweepBegin),
               "sweep_begin");
  EXPECT_STREQ(task_event_kind_name(TaskEventKind::kSweepEnd), "sweep_end");
  EXPECT_STREQ(task_event_kind_name(TaskEventKind::kChunkTask),
               "chunk_task");
  EXPECT_STREQ(task_event_kind_name(TaskEventKind::kMergeBegin),
               "merge_begin");
  EXPECT_STREQ(task_event_kind_name(TaskEventKind::kMergeEnd), "merge_end");
}

TEST(TaskEvents, TinyRingOverflowCountsDropsAndKeepsNewest) {
  clear_task_events();
  set_task_event_ring_capacity(4);
  set_task_events_enabled(true);
  // A fresh thread gets a fresh capacity-4 ring; ten events must never
  // block, keep exactly the newest four, and count the six overwrites.
  std::thread([] {
    for (std::uint64_t i = 0; i < 10; ++i) {
      record_task_event(TaskEventKind::kBegin, 9000 + i);
    }
  }).join();
  set_task_events_enabled(false);
  set_task_event_ring_capacity(65536);
  std::vector<std::uint64_t> mine;
  for (const TaskEvent& e : drain_task_events()) {
    if (e.task >= 9000 && e.task < 9010) mine.push_back(e.task);
  }
  ASSERT_EQ(mine.size(), 4u);
  EXPECT_EQ(mine.front(), 9006u);
  EXPECT_EQ(mine.back(), 9009u);
  EXPECT_EQ(task_events_dropped_count(), 6u);
  EXPECT_EQ(task_events_recorded_count(), 10u);
  clear_task_events();
  EXPECT_EQ(task_events_dropped_count(), 0u);
  EXPECT_EQ(task_events_recorded_count(), 0u);
}

TEST(TaskEvents, DrainIsDeterministicAndPreservesPerThreadOrder) {
  clear_task_events();
  set_task_events_enabled(true);
  // The recording thread exits before the drain: its ring must survive
  // in the directory with every event intact.
  std::thread([] {
    for (std::uint64_t i = 0; i < 50; ++i) {
      record_task_event(TaskEventKind::kSubmit, 7000 + i);
    }
  }).join();
  set_task_events_enabled(false);
  const std::vector<TaskEvent> first = drain_task_events();
  const std::vector<TaskEvent> second = drain_task_events();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].task, second[i].task);
    EXPECT_EQ(first[i].tid, second[i].tid);
    EXPECT_EQ(first[i].seq, second[i].seq);
  }
  std::vector<std::uint64_t> mine;
  std::vector<std::uint32_t> tids;
  for (const TaskEvent& e : first) {
    if (e.task < 7000 || e.task >= 7050) continue;
    mine.push_back(e.task);
    tids.push_back(e.tid);
  }
  // (t, tid, seq) ordering keeps one thread's events in record order.
  ASSERT_EQ(mine.size(), 50u);
  for (std::size_t i = 0; i < mine.size(); ++i) {
    EXPECT_EQ(mine[i], 7000 + i);
    EXPECT_EQ(tids[i], tids[0]);
  }
  clear_task_events();
}

TEST(TaskEvents, ShortLivedThreadsKeepDistinctTids) {
  clear_task_events();
  set_task_events_enabled(true);
  for (std::uint64_t t = 0; t < 3; ++t) {
    std::thread([t] {
      record_task_event(TaskEventKind::kEnd, 7700 + t);
    }).join();
  }
  set_task_events_enabled(false);
  std::vector<std::uint32_t> tids;
  for (const TaskEvent& e : drain_task_events()) {
    if (e.task >= 7700 && e.task < 7703) tids.push_back(e.tid);
  }
  ASSERT_EQ(tids.size(), 3u);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
  clear_task_events();
}

TEST(TaskEvents, DrainWhileRecordingIsSafe) {
  clear_task_events();
  set_task_events_enabled(true);
  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      record_task_event(TaskEventKind::kBegin, 8000 + (i++ % 16));
    }
  });
  // Keep draining until the writer's events show up (it may still be
  // starting); every drained event must be well-formed mid-recording.
  std::size_t seen = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (seen == 0 && std::chrono::steady_clock::now() < deadline) {
    for (const TaskEvent& e : drain_task_events()) {
      if (e.task < 8000 || e.task >= 8016) continue;
      ++seen;
      EXPECT_LE(static_cast<unsigned>(e.kind),
                static_cast<unsigned>(TaskEventKind::kMergeEnd));
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  set_task_events_enabled(false);
  EXPECT_GT(seen, 0u);
  clear_task_events();
}

// ---- pool + sweep lifecycles -----------------------------------------

TEST(TaskEvents, PoolLifecyclesPairSubmitPopBeginEnd) {
  set_task_events_enabled(false);
  {
    // Profiling off: no lifecycle id, the task still runs.
    support::ThreadPool off_pool(1);
    std::atomic<int> ran{0};
    EXPECT_EQ(off_pool.submit([&ran] { ran.fetch_add(1); }), 0u);
    off_pool.wait_idle();
    EXPECT_EQ(ran.load(), 1);
  }
  clear_task_events();
  set_task_events_enabled(true);
  std::vector<std::uint64_t> ids;
  {
    support::ThreadPool pool(2);
    support::TaskGroup group(pool);
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) {
      const std::uint64_t id =
          group.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      EXPECT_NE(id, 0u);
      ids.push_back(id);
    }
    group.wait();
    EXPECT_EQ(ran.load(), 16);
  }
  set_task_events_enabled(false);
  const std::vector<TaskEvent> events = drain_task_events();
  clear_task_events();
  // Ids are distinct and monotone in submission order.
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_GT(ids[i], ids[i - 1]);
  for (const std::uint64_t id : ids) {
    std::size_t submits = 0, pops = 0, begins = 0, ends = 0;
    for (const TaskEvent& e : events) {
      if (e.task != id) continue;
      switch (e.kind) {
        case TaskEventKind::kSubmit: ++submits; break;
        case TaskEventKind::kDequeue:
        case TaskEventKind::kSteal: ++pops; break;
        case TaskEventKind::kBegin: ++begins; break;
        case TaskEventKind::kEnd: ++ends; break;
        default: break;
      }
    }
    EXPECT_EQ(submits, 1u);
    EXPECT_EQ(pops, 1u);
    EXPECT_EQ(begins, 1u);
    EXPECT_EQ(ends, 1u);
  }
  const Profile profile = build_profile(events);
  std::size_t found = 0;
  for (const TaskProfile& t : profile.tasks) {
    if (std::find(ids.begin(), ids.end(), t.id) == ids.end()) continue;
    ++found;
    EXPECT_TRUE(t.complete());
    EXPECT_NE(t.dequeue_t, 0u);
    // kSubmit lands before the enqueue, so it never trails the pop or
    // the begin on the shared clock.
    EXPECT_LE(t.submit_t, t.dequeue_t);
    EXPECT_LE(t.submit_t, t.begin_t);
    EXPECT_LE(t.begin_t, t.end_t);
  }
  EXPECT_EQ(found, ids.size());
}

TEST(TaskEvents, ParkIntervalsCloseAndHerdFactorIsFinite) {
  clear_task_events();
  set_task_events_enabled(true);
  {
    support::ThreadPool pool(2);
    support::TaskGroup group(pool);
    // One deliberately slow task: the external waiter reaches the cv
    // and parks while it runs, so at least one park interval closes.
    group.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    });
    group.wait();
  }
  set_task_events_enabled(false);
  const Profile profile = build_profile(drain_task_events());
  clear_task_events();
  EXPECT_GE(profile.parks.size(), 1u);
  for (const ParkInterval& p : profile.parks) {
    EXPECT_LE(p.begin_t, p.end_t);
  }
  const double herd = herd_factor(profile);
  EXPECT_GE(herd, 0.0);
  EXPECT_TRUE(std::isfinite(herd));
}

// ---- profile analyzer ------------------------------------------------

std::function<int(std::size_t)> busy_kernel() {
  return [](std::size_t i) {
    std::uint64_t x = i + 1;
    for (int k = 0; k < 50000; ++k) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    return static_cast<int>((x >> 32) & 0x3fffffff);
  };
}

TEST(Profile, SweepReconstructionAndCriticalPathBudget) {
  clear_task_events();
  set_task_events_enabled(true);
  std::vector<int> out;
  {
    support::ThreadPool pool(1);
    sweep::SweepConfig config;
    config.pool = &pool;
    config.chunk_size = 8;
    out = sweep::sweep_map<int>(64, busy_kernel(), config);
  }
  set_task_events_enabled(false);
  const Profile profile = build_profile(drain_task_events());
  clear_task_events();

  ASSERT_EQ(out.size(), 64u);
  EXPECT_EQ(profile.dropped, 0u);
  ASSERT_EQ(profile.sweeps.size(), 1u);
  const SweepProfile& sweep = profile.sweeps[0];
  EXPECT_EQ(sweep.chunks, 8u);
  EXPECT_EQ(sweep.items, 64u);
  ASSERT_GT(sweep.micros(), 0u);

  std::vector<std::uint64_t> chunks;
  for (const TaskProfile& t : profile.tasks) {
    if (!t.is_chunk) continue;
    EXPECT_EQ(t.sweep, sweep.id);
    EXPECT_TRUE(t.complete());
    chunks.push_back(t.chunk);
  }
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 8u);
  for (std::uint64_t c = 0; c < 8; ++c) EXPECT_EQ(chunks[c], c);
  ASSERT_EQ(profile.merges.size(), 8u);
  for (std::uint64_t c = 0; c < 8; ++c) {
    EXPECT_EQ(profile.merges[c].sweep, sweep.id);
    EXPECT_EQ(profile.merges[c].chunk, c);
    EXPECT_NE(profile.merges[c].end_t, 0u);
  }

  const CriticalPath cp = critical_path(profile, sweep.id);
  EXPECT_EQ(cp.total_micros, sweep.micros());
  ASSERT_FALSE(cp.steps.empty());
  EXPECT_EQ(cp.steps.front().kind, "merge");
  EXPECT_EQ(cp.steps.back().kind, "task");
  // The stages partition the sweep wall; the telescoped sum deviates
  // only by clamped inversions (a merge can begin a hair before its
  // chunk's kEnd lands), far inside the 5% budget rdv_profile's strict
  // mode enforces.
  const double total = static_cast<double>(cp.total_micros);
  const double sum = static_cast<double>(cp.stage_sum());
  EXPECT_LE(std::abs(sum - total) / total, 0.05);
  EXPECT_GE(herd_factor(profile), 0.0);
}

/// Structural fingerprint of a profiled 1-thread sweep: ids normalized
/// to the first submitted task, everything timing-free.
struct SweepShape {
  std::vector<std::uint64_t> task_norm_ids;
  std::vector<std::uint64_t> task_chunks;
  std::vector<std::uint64_t> merge_chunks;
  std::uint64_t chunks = 0;
  std::uint64_t items = 0;
  std::size_t exec_tids = 0;
  std::size_t stolen = 0;
};

SweepShape one_thread_sweep_shape(std::vector<int>& out) {
  clear_task_events();
  set_task_events_enabled(true);
  {
    support::ThreadPool pool(1);
    sweep::SweepConfig config;
    config.pool = &pool;
    config.chunk_size = 8;
    const std::function<int(std::size_t)> fn = [](std::size_t i) {
      return static_cast<int>(i * 3 + 1);
    };
    out = sweep::sweep_map<int>(48, fn, config);
  }
  set_task_events_enabled(false);
  const Profile profile = build_profile(drain_task_events());
  clear_task_events();
  SweepShape shape;
  std::uint64_t min_id = 0;
  for (const TaskProfile& t : profile.tasks) {
    if (!t.is_chunk) continue;
    if (min_id == 0 || t.id < min_id) min_id = t.id;
  }
  std::vector<std::uint32_t> tids;
  for (const TaskProfile& t : profile.tasks) {
    if (!t.is_chunk) continue;
    shape.task_norm_ids.push_back(t.id - min_id);
    shape.task_chunks.push_back(t.chunk);
    if (t.stolen) ++shape.stolen;
    tids.push_back(t.exec_tid);
  }
  std::sort(tids.begin(), tids.end());
  shape.exec_tids = static_cast<std::size_t>(
      std::unique(tids.begin(), tids.end()) - tids.begin());
  for (const MergeProfile& m : profile.merges) {
    shape.merge_chunks.push_back(m.chunk);
  }
  if (!profile.sweeps.empty()) {
    shape.chunks = profile.sweeps[0].chunks;
    shape.items = profile.sweeps[0].items;
  }
  return shape;
}

TEST(Profile, OneThreadRunsAreStructurallyDeterministic) {
  std::vector<int> out1;
  std::vector<int> out2;
  const SweepShape a = one_thread_sweep_shape(out1);
  const SweepShape b = one_thread_sweep_shape(out2);
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(a.task_norm_ids, b.task_norm_ids);
  EXPECT_EQ(a.task_chunks, b.task_chunks);
  EXPECT_EQ(a.merge_chunks, b.merge_chunks);
  EXPECT_EQ(a.chunks, b.chunks);
  EXPECT_EQ(a.items, b.items);
  // A 1-thread pool executes every chunk on its one worker — no steals,
  // one executor tid, in both runs.
  EXPECT_EQ(a.exec_tids, 1u);
  EXPECT_EQ(b.exec_tids, 1u);
  EXPECT_EQ(a.stolen + b.stolen, 0u);
}

/// Hand-built profile with round-number timestamps, so every stage of
/// the critical path is checkable exactly: sweep [1000, 2000], chunk 0
/// [submit 1010, begin 1020, end 1500], chunk 1 [1012, 1030, 1400],
/// merges [1510,1530] and [1530,1540].
Profile sample_profile() {
  Profile profile;
  profile.events = 42;
  profile.dropped = 0;
  profile.t_min = 1000;
  profile.t_max = 2000;
  SweepProfile sweep;
  sweep.id = 5;
  sweep.chunks = 2;
  sweep.items = 2;
  sweep.tid = 0;
  sweep.begin_t = 1000;
  sweep.end_t = 2000;
  profile.sweeps.push_back(sweep);
  TaskProfile t0;
  t0.id = 11;
  t0.sweep = 5;
  t0.chunk = 0;
  t0.is_chunk = true;
  t0.submit_tid = 0;
  t0.exec_tid = 1;
  t0.submit_t = 1010;
  t0.dequeue_t = 1015;
  t0.begin_t = 1020;
  t0.end_t = 1500;
  TaskProfile t1 = t0;
  t1.id = 12;
  t1.chunk = 1;
  t1.submit_t = 1012;
  t1.dequeue_t = 1016;
  t1.begin_t = 1030;
  t1.end_t = 1400;
  profile.tasks = {t0, t1};
  MergeProfile m0;
  m0.sweep = 5;
  m0.chunk = 0;
  m0.tid = 0;
  m0.begin_t = 1510;
  m0.end_t = 1530;
  MergeProfile m1 = m0;
  m1.chunk = 1;
  m1.begin_t = 1530;
  m1.end_t = 1540;
  profile.merges = {m0, m1};
  profile.parks.push_back(ParkInterval{0, 1100, 1200});
  return profile;
}

TEST(Profile, CriticalPathStagesTelescopeExactly) {
  const Profile profile = sample_profile();
  const CriticalPath cp = critical_path(profile, 5);
  EXPECT_EQ(cp.total_micros, 1000u);
  EXPECT_EQ(cp.tail_micros, 460u);    // 2000 - last merge end 1540
  EXPECT_EQ(cp.merge_micros, 30u);    // both merges are on the path
  EXPECT_EQ(cp.stall_micros, 10u);    // merge 0 began 10us after task 0
  EXPECT_EQ(cp.exec_micros, 480u);    // binding chunk 0: 1020 -> 1500
  EXPECT_EQ(cp.queue_micros, 10u);    // 1010 -> 1020
  EXPECT_EQ(cp.schedule_micros, 10u); // sweep begin 1000 -> submit 1010
  EXPECT_EQ(cp.stage_sum(), cp.total_micros);
  ASSERT_EQ(cp.steps.size(), 3u);
  EXPECT_EQ(cp.steps[0].kind, "merge");
  EXPECT_EQ(cp.steps[0].chunk, 1u);
  EXPECT_EQ(cp.steps[1].kind, "merge");
  EXPECT_EQ(cp.steps[1].chunk, 0u);
  EXPECT_EQ(cp.steps[2].kind, "task");
  EXPECT_EQ(cp.steps[2].chunk, 0u);

  const CriticalPath unknown = critical_path(profile, 999);
  EXPECT_EQ(unknown.total_micros, 0u);
  EXPECT_TRUE(unknown.steps.empty());
}

TEST(Profile, JsonRoundTripIsByteStable) {
  const Profile profile = sample_profile();
  const std::string json = render_profile_json(profile);
  Profile parsed;
  ASSERT_TRUE(parse_profile_json(json, &parsed));
  EXPECT_EQ(render_profile_json(parsed), json);
  EXPECT_EQ(parsed.events, 42u);
  EXPECT_EQ(parsed.t_max, 2000u);
  ASSERT_EQ(parsed.tasks.size(), 2u);
  EXPECT_TRUE(parsed.tasks[0].is_chunk);
  EXPECT_EQ(parsed.tasks[1].chunk, 1u);
  EXPECT_EQ(parsed.merges.size(), 2u);
  EXPECT_EQ(parsed.parks.size(), 1u);
  ASSERT_EQ(parsed.sweeps.size(), 1u);
  EXPECT_EQ(parsed.sweeps[0].items, 2u);
}

TEST(Profile, JsonParserIsStrict) {
  Profile out;
  EXPECT_FALSE(parse_profile_json("", &out));
  EXPECT_FALSE(parse_profile_json("{}", &out));
  EXPECT_FALSE(parse_profile_json("not json", &out));
  const std::string good = render_profile_json(sample_profile());
  EXPECT_FALSE(parse_profile_json(good.substr(0, good.size() - 2), &out));
  EXPECT_FALSE(parse_profile_json(good + "x", &out));
  std::string bad_format = good;
  const std::size_t at = bad_format.find("\"format\":1");
  ASSERT_NE(at, std::string::npos);
  bad_format.replace(at, 10, "\"format\":9");
  EXPECT_FALSE(parse_profile_json(bad_format, &out));
}

TEST(Profile, ReportTopDiffAndTraceRendersCarryTheHeadlines) {
  const Profile profile = sample_profile();
  const std::string report = render_profile_report(profile);
  EXPECT_NE(report.find("critical path (stage sum"), std::string::npos);
  EXPECT_NE(report.find("queue latency (submit -> begin, log2 us):"),
            std::string::npos);
  EXPECT_NE(report.find("steals: 0/"), std::string::npos);
  EXPECT_NE(report.find("herd:"), std::string::npos);

  // Top is ranked by execution time: n=1 keeps chunk 0 (480us), cuts
  // chunk 1 (370us).
  const std::string top = render_profile_top(profile, 1);
  EXPECT_NE(top.find("task 11"), std::string::npos);
  EXPECT_EQ(top.find("task 12"), std::string::npos);

  const std::string diff = render_profile_diff(profile, profile);
  EXPECT_NE(diff.find("tasks executed"), std::string::npos);

  const std::string fragment = render_task_trace_events(profile);
  EXPECT_NE(fragment.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(fragment.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(fragment.find("\"ph\":\"f\""), std::string::npos);
  // The fragment splices into a well-formed Chrome trace.
  const std::string trace = render_chrome_trace({}, fragment);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find(fragment), std::string::npos);
}

// ---- snapshot JSON + the gate ----------------------------------------

MetricsSnapshot sample_snapshot() {
  MetricsSnapshot snap;
  snap.counters["alpha.hits"] = 3;
  snap.counters["beta.misses"] = 0;
  snap.gauges["depth"] = -4;
  HistogramSnapshot hist;
  hist.count = 2;
  hist.sum = 300;
  hist.buckets[8] = 2;
  snap.histograms["exp.t1.wall_micros"] = hist;
  return snap;
}

TEST(MetricsJson, RoundTripIsByteStable) {
  const MetricsSnapshot snap = sample_snapshot();
  const std::string json = render_metrics_json(snap);
  const MetricsSnapshot parsed = parse_metrics_json(json);
  EXPECT_EQ(parsed.counters, snap.counters);
  EXPECT_EQ(parsed.gauges, snap.gauges);
  ASSERT_EQ(parsed.histograms.count("exp.t1.wall_micros"), 1u);
  EXPECT_EQ(parsed.histograms.at("exp.t1.wall_micros").sum, 300u);
  // Render(parse(render(x))) == render(x): byte-stable for diffing.
  EXPECT_EQ(render_metrics_json(parsed), json);
}

TEST(MetricsJson, ParserIsStrict) {
  EXPECT_THROW((void)parse_metrics_json(""), std::runtime_error);
  EXPECT_THROW((void)parse_metrics_json("{}"), std::runtime_error);
  EXPECT_THROW((void)parse_metrics_json("not json"), std::runtime_error);
  EXPECT_THROW((void)parse_metrics_json(R"({"format":99,"counters":{},)"
                                        R"("gauges":{},"histograms":{}})"),
               std::runtime_error);
  const std::string good = render_metrics_json(sample_snapshot());
  EXPECT_THROW((void)parse_metrics_json(good.substr(0, good.size() - 2)),
               std::runtime_error);
  EXPECT_THROW((void)parse_metrics_json(good + "x"), std::runtime_error);
}

TEST(Diff, PassesWithinBandFailsBeyond) {
  MetricsSnapshot base = sample_snapshot();
  MetricsSnapshot current = sample_snapshot();
  // Identical snapshots never regress.
  EXPECT_EQ(diff_snapshots(base, current).regressions, 0u);
  // 30% slower: beyond a 25% band, within a 50% one.
  current.histograms["exp.t1.wall_micros"].sum = 390;
  DiffOptions strict;
  strict.tolerance = 0.25;
  const DiffReport bad = diff_snapshots(base, current, strict);
  EXPECT_EQ(bad.regressions, 1u);
  ASSERT_FALSE(bad.lines.empty());
  EXPECT_NE(bad.lines[0].find("REGRESSION"), std::string::npos);
  DiffOptions loose;
  loose.tolerance = 0.5;
  EXPECT_EQ(diff_snapshots(base, current, loose).regressions, 0u);
  // Below the noise floor nothing regresses, however slow relatively.
  strict.min_micros = 1000;
  EXPECT_EQ(diff_snapshots(base, current, strict).regressions, 0u);
}

TEST(Diff, MissingSeriesIsReportedNotFailed) {
  const MetricsSnapshot base = sample_snapshot();
  MetricsSnapshot current = sample_snapshot();
  current.histograms.clear();
  const DiffReport report = diff_snapshots(base, current);
  EXPECT_EQ(report.regressions, 0u);
  bool missing = false;
  for (const std::string& line : report.lines) {
    if (line.find("MISSING") != std::string::npos) missing = true;
  }
  EXPECT_TRUE(missing);
}

/// History snapshot carrying just the gated series, with mean sum/count.
MetricsSnapshot snapshot_with_wall(std::uint64_t count, std::uint64_t sum) {
  MetricsSnapshot snap;
  HistogramSnapshot hist;
  hist.count = count;
  hist.sum = sum;
  hist.buckets[8] = count;
  snap.histograms["exp.t1.wall_micros"] = hist;
  return snap;
}

TEST(Diff, HistoryTightensTheBandForStableSeries) {
  const MetricsSnapshot base = sample_snapshot();      // mean 150us
  MetricsSnapshot current = sample_snapshot();
  current.histograms["exp.t1.wall_micros"].sum = 224;  // mean 112us

  // No history: the flat band vs the (slow) baseline passes 112 easily.
  EXPECT_EQ(diff_snapshots_with_history(base, current, {}).regressions, 0u);

  // Five stable runs at mean 100: the variance band collapses to
  // mu + mu*min_band_frac = 105, and the same 112 is a regression the
  // flat band would wave through.
  const std::vector<MetricsSnapshot> stable(5, snapshot_with_wall(2, 200));
  const DiffReport tight =
      diff_snapshots_with_history(base, current, stable);
  EXPECT_EQ(tight.regressions, 1u);
  bool noted = false;
  for (const std::string& line : tight.lines) {
    if (line.find("history n=5") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);

  // A noisy history widens its own band: means 80..120 give sigma
  // ~12.6us, so the 3-sigma band (~138us) absorbs the same 112.
  const std::vector<MetricsSnapshot> noisy = {
      snapshot_with_wall(2, 160), snapshot_with_wall(2, 200),
      snapshot_with_wall(2, 240), snapshot_with_wall(2, 200),
      snapshot_with_wall(2, 200)};
  EXPECT_EQ(diff_snapshots_with_history(base, current, noisy).regressions,
            0u);
}

TEST(Diff, ThinHistoryFallsBackToTheFlatBand) {
  const MetricsSnapshot base = sample_snapshot();
  MetricsSnapshot current = sample_snapshot();
  current.histograms["exp.t1.wall_micros"].sum = 224;
  // Two runs are below the default min_history_runs of three: the gate
  // must fall back to the flat band (and say so) instead of trusting a
  // two-point distribution.
  const std::vector<MetricsSnapshot> thin(2, snapshot_with_wall(2, 200));
  const DiffReport report =
      diff_snapshots_with_history(base, current, thin);
  EXPECT_EQ(report.regressions, 0u);
  bool noted = false;
  for (const std::string& line : report.lines) {
    if (line.find("thin history n=2") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(Diff, LoadSnapshotDirSkipsCorruptEntriesAndMissingDirs) {
  char dir_template[] = "/tmp/rdv_obs_hist_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;
  const std::string good = render_metrics_json(sample_snapshot());
  std::ofstream(dir + "/a.json") << good;
  std::ofstream(dir + "/b.json") << good;
  std::ofstream(dir + "/c.json") << "not a snapshot";
  std::ofstream(dir + "/ignored.txt") << good;
  const std::vector<MetricsSnapshot> history = load_snapshot_dir(dir);
  EXPECT_EQ(history.size(), 2u);  // c.json skipped, .txt never considered
  for (const MetricsSnapshot& snap : history) {
    EXPECT_EQ(snap.counters.at("alpha.hits"), 3u);
  }
  EXPECT_TRUE(load_snapshot_dir(dir + "/no/such/dir").empty());
  ::unlink((dir + "/a.json").c_str());
  ::unlink((dir + "/b.json").c_str());
  ::unlink((dir + "/c.json").c_str());
  ::unlink((dir + "/ignored.txt").c_str());
  ::rmdir(dir.c_str());
}

TEST(Assertions, ResolveCountersGaugesAndHistogramProjections) {
  const MetricsSnapshot snap = sample_snapshot();
  EXPECT_TRUE(check_assertion(snap, "alpha.hits==3").ok);
  EXPECT_TRUE(check_assertion(snap, "alpha.hits>=3").ok);
  EXPECT_TRUE(check_assertion(snap, "alpha.hits<=3").ok);
  EXPECT_TRUE(check_assertion(snap, "alpha.hits!=2").ok);
  EXPECT_TRUE(check_assertion(snap, "beta.misses==0").ok);
  EXPECT_FALSE(check_assertion(snap, "alpha.hits<3").ok);
  EXPECT_FALSE(check_assertion(snap, "alpha.hits>3").ok);
  EXPECT_TRUE(check_assertion(snap, "depth==-4").ok);
  EXPECT_TRUE(check_assertion(snap, "exp.t1.wall_micros.count==2").ok);
  EXPECT_TRUE(check_assertion(snap, "exp.t1.wall_micros.sum==300").ok);
  // Missing names and malformed expressions fail with a message, never
  // pass silently.
  EXPECT_FALSE(check_assertion(snap, "no.such.series==0").ok);
  EXPECT_FALSE(check_assertion(snap, "alpha.hits").ok);
  EXPECT_FALSE(check_assertion(snap, "alpha.hits==").ok);
  EXPECT_FALSE(check_assertion(snap, "").ok);
}

// ---- end-to-end: sidecars never change primary output ----------------

/// Runs exp::run_main with stdout redirected to a temp file; returns
/// the captured bytes.
std::string run_capturing_stdout(const std::vector<const char*>& argv,
                                 int& exit_code) {
  std::fflush(stdout);
  const int saved = ::dup(STDOUT_FILENO);
  EXPECT_GE(saved, 0);
  char path[] = "/tmp/rdv_obs_stdout_XXXXXX";
  const int fd = ::mkstemp(path);
  EXPECT_GE(fd, 0);
  ::dup2(fd, STDOUT_FILENO);
  exit_code = exp::run_main(static_cast<int>(argv.size()), argv.data());
  std::fflush(stdout);
  ::dup2(saved, STDOUT_FILENO);
  ::close(saved);
  ::close(fd);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ::unlink(path);
  return buffer.str();
}

TEST(EndToEnd, PrimaryStdoutIsByteIdenticalWithSidecarsOn) {
  const std::string metrics_path = "/tmp/rdv_obs_test_metrics.json";
  const std::string trace_path = "/tmp/rdv_obs_test_trace.json";
  const std::string metrics_flag = "--metrics-out=" + metrics_path;
  const std::string trace_flag = "--trace-out=" + trace_path;

  int plain_rc = -1;
  const std::string plain = run_capturing_stdout(
      {"rdv_bench", "t1_shrink_families", "--smoke"}, plain_rc);
  int sidecar_rc = -1;
  const std::string sidecar = run_capturing_stdout(
      {"rdv_bench", "t1_shrink_families", "--smoke", metrics_flag.c_str(),
       trace_flag.c_str()},
      sidecar_rc);
  set_trace_enabled(false);

  EXPECT_EQ(plain_rc, 0);
  EXPECT_EQ(sidecar_rc, 0);
  EXPECT_FALSE(plain.empty());
  EXPECT_EQ(plain, sidecar);

  // The metrics sidecar parses strictly and carries the pool, sweep,
  // cache, store, and per-experiment series the gate consumes.
  std::ifstream min(metrics_path, std::ios::binary);
  ASSERT_TRUE(min.good());
  std::ostringstream mbuf;
  mbuf << min.rdbuf();
  const MetricsSnapshot snap = parse_metrics_json(mbuf.str());
  EXPECT_EQ(snap.counters.count("pool.submits"), 1u);
  EXPECT_EQ(snap.counters.count("sweep.chunks"), 1u);
  EXPECT_EQ(snap.counters.count("cache.view_classes.hits"), 1u);
  EXPECT_EQ(snap.counters.count("store.view_classes.hits"), 1u);
  EXPECT_EQ(snap.counters.count("uxs.corpus_verifications"), 1u);
  EXPECT_EQ(
      snap.histograms.count("exp.t1_shrink_families.wall_micros"), 1u);
  EXPECT_GE(
      snap.histograms.at("exp.t1_shrink_families.wall_micros").count, 1u);

  // The trace sidecar is a Chrome-trace JSON with experiment spans.
  std::ifstream tin(trace_path, std::ios::binary);
  ASSERT_TRUE(tin.good());
  std::ostringstream tbuf;
  tbuf << tin.rdbuf();
  const std::string trace = tbuf.str();
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"t1_shrink_families\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"exp.case\""), std::string::npos);

  ::unlink(metrics_path.c_str());
  ::unlink(trace_path.c_str());
  clear_trace();
}

TEST(EndToEnd, ProfileSidecarKeepsStdoutByteIdenticalAndStitchesFlows) {
  const std::string profile_path = "/tmp/rdv_obs_test_profile.json";
  const std::string trace_path = "/tmp/rdv_obs_test_profile_trace.json";
  const std::string profile_flag = "--profile-out=" + profile_path;
  const std::string trace_flag = "--trace-out=" + trace_path;

  int plain_rc = -1;
  const std::string plain = run_capturing_stdout(
      {"rdv_bench", "t1_shrink_families", "--smoke"}, plain_rc);
  int profiled_rc = -1;
  const std::string profiled = run_capturing_stdout(
      {"rdv_bench", "t1_shrink_families", "--smoke", profile_flag.c_str(),
       trace_flag.c_str()},
      profiled_rc);
  set_trace_enabled(false);
  set_task_events_enabled(false);

  EXPECT_EQ(plain_rc, 0);
  EXPECT_EQ(profiled_rc, 0);
  EXPECT_FALSE(plain.empty());
  EXPECT_EQ(plain, profiled);

  // The profile sidecar parses strictly and reconstructs the smoke
  // run's sweeps with zero ring drops.
  std::ifstream pin(profile_path, std::ios::binary);
  ASSERT_TRUE(pin.good());
  std::ostringstream pbuf;
  pbuf << pin.rdbuf();
  Profile profile;
  ASSERT_TRUE(parse_profile_json(pbuf.str(), &profile));
  EXPECT_EQ(profile.dropped, 0u);
  EXPECT_GE(profile.sweeps.size(), 1u);
  EXPECT_FALSE(profile.tasks.empty());
  bool chunk_seen = false;
  for (const TaskProfile& t : profile.tasks) chunk_seen |= t.is_chunk;
  EXPECT_TRUE(chunk_seen);

  // With --profile-out active the trace sidecar carries both the span
  // slices and the task flow arrows on one timeline.
  std::ifstream tin(trace_path, std::ios::binary);
  ASSERT_TRUE(tin.good());
  std::ostringstream tbuf;
  tbuf << tin.rdbuf();
  const std::string trace = tbuf.str();
  EXPECT_NE(trace.find("\"cat\":\"exp.case\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"flow\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);

  ::unlink(profile_path.c_str());
  ::unlink(trace_path.c_str());
  clear_trace();
  clear_task_events();
}

}  // namespace
}  // namespace rdv::obs
