#include <gtest/gtest.h>

#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"

namespace rdv::sim {
namespace {

using graph::Graph;
using graph::Node;
using graph::Port;
namespace families = rdv::graph::families;

/// Program: move through port 0 forever.
Proc forward_body(Mailbox& mb) {
  for (;;) co_await mb.move(0);
}
AgentProgram forward_program() {
  return [](Mailbox& mb, Observation) -> Proc { return forward_body(mb); };
}

/// Program: wait forever (in one huge chunk).
AgentProgram sleeper_program() {
  return [](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2) -> Proc {
      co_await mb2.wait(support::kRoundInfinity);
    }(mb);
  };
}

/// Program: execute a fixed script of actions, then halt.
AgentProgram scripted(std::vector<Action> script) {
  return [script = std::move(script)](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2, std::vector<Action> s) -> Proc {
      for (const Action& a : s) {
        if (a.kind == Action::Kind::kMove) {
          co_await mb2.move(a.port);
        } else {
          co_await mb2.wait(a.wait_rounds);
        }
      }
    }(mb, script);
  };
}

TEST(Engine, TwoNodeDelayExample) {
  // The paper's introduction: two-node graph, delay 3, algorithm "move
  // at each round" meets 3 rounds after the earlier agent's start.
  const Graph g = families::two_node_graph();
  const RunResult r = run_anonymous(g, forward_program(), 0, 1, 3);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.met);
  EXPECT_EQ(r.meet_round_absolute, 3u);
  EXPECT_EQ(r.meet_from_later_start, 0u);
}

TEST(Engine, TwoNodeSimultaneousNeverMeets) {
  // Symmetric positions, delta = 0: agents swap forever, crossing in
  // the edge without noticing (Section 1).
  const Graph g = families::two_node_graph();
  RunConfig config;
  config.max_rounds = 500;
  const RunResult r = run_anonymous(g, forward_program(), 0, 1, 0, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.met);
  EXPECT_GE(r.edge_crossings, 250u);
}

TEST(Engine, MeetAtLaterSpawn) {
  // Earlier agent walks onto the later agent's start node and sits
  // there; they meet the moment the later agent appears.
  const Graph g = families::path_graph(3);
  // From node 0: move port 0 -> node 1; wait forever.
  auto prog = scripted({Action::move(0), Action::wait(1'000'000)});
  const RunResult r = run_pair(g, prog, sleeper_program(), 0, 1, 5);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.met);
  EXPECT_EQ(r.meet_round_absolute, 5u);
  EXPECT_EQ(r.meet_from_later_start, 0u);
}

TEST(Engine, WaitFastForwardIsCheap) {
  // Two sleepers a node apart: the engine must jump over the huge wait
  // in O(1) events and stop at the cap without meeting.
  const Graph g = families::path_graph(4);
  RunConfig config;
  config.max_rounds = std::uint64_t{1} << 62;
  const RunResult r =
      run_anonymous(g, sleeper_program(), 0, 3, 7, config);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.met);
}

TEST(Engine, LocalClocksAreObserved) {
  const Graph g = families::path_graph(3);
  std::vector<std::uint64_t> clocks;
  AgentProgram prog = [&clocks](Mailbox& mb, Observation start) -> Proc {
    clocks.push_back(start.clock);
    return [](Mailbox& mb2, std::vector<std::uint64_t>* out) -> Proc {
      Observation o = co_await mb2.wait(4);
      out->push_back(o.clock);
      o = co_await mb2.move(0);
      out->push_back(o.clock);
    }(mb, &clocks);
  };
  const RunResult r = run_pair(g, prog, sleeper_program(), 2, 0, 9);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_GE(clocks.size(), 3u);
  EXPECT_EQ(clocks[0], 0u);  // at spawn
  EXPECT_EQ(clocks[1], 4u);  // after wait(4)
  EXPECT_EQ(clocks[2], 5u);  // after one move
}

TEST(Engine, EntryPortsReported) {
  const Graph g = families::oriented_ring(5);
  std::vector<Port> entries;
  AgentProgram prog = [&entries](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2, std::vector<Port>* out) -> Proc {
      for (int i = 0; i < 3; ++i) {
        const Observation o = co_await mb2.move(0);
        out->push_back(*o.entry_port);
      }
    }(mb, &entries);
  };
  const RunResult r = run_pair(g, prog, sleeper_program(), 0, 3, 0);
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(entries.size(), 3u);
  for (const Port p : entries) EXPECT_EQ(p, 1u);  // clockwise entry
}

TEST(Engine, OutOfRangePortIsAnError) {
  const Graph g = families::path_graph(3);
  auto prog = scripted({Action::move(7)});
  const RunResult r = run_anonymous(g, prog, 0, 2, 0);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("port"), std::string::npos);
}

TEST(Engine, ZeroWaitSpinAborts) {
  const Graph g = families::path_graph(3);
  AgentProgram prog = [](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2) -> Proc {
      for (;;) co_await mb2.wait(0);
    }(mb);
  };
  RunConfig config;
  config.max_zero_wait_spin = 100;
  const RunResult r = run_anonymous(g, prog, 0, 2, 0, config);
  EXPECT_FALSE(r.ok());
}

TEST(Engine, ThrowingProgramIsReported) {
  const Graph g = families::path_graph(3);
  AgentProgram prog = [](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox&) -> Proc {
      throw std::runtime_error("boom");
      co_return;  // unreachable; makes this a coroutine
    }(mb);
  };
  const RunResult r = run_anonymous(g, prog, 0, 2, 0);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("boom"), std::string::npos);
}

TEST(Engine, ProgramsFinishedReported) {
  const Graph g = families::path_graph(4);
  auto prog = scripted({Action::move(0)});
  const RunResult r = run_anonymous(g, prog, 0, 3, 1);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.met);
  EXPECT_TRUE(r.programs_finished);
}

TEST(Engine, TraceRecordsMoves) {
  const Graph g = families::path_graph(4);
  RunConfig config;
  config.record_trace = true;
  auto prog = scripted({Action::move(0), Action::wait(2)});
  const RunResult r = run_anonymous(g, prog, 0, 3, 1, config);
  ASSERT_TRUE(r.ok());
  // 2 spawns + 2 moves.
  EXPECT_EQ(r.trace.events().size(), 4u);
  const std::string rendered = r.trace.to_string();
  EXPECT_NE(rendered.find("appears"), std::string::npos);
  EXPECT_NE(rendered.find("moves via port"), std::string::npos);
}

TEST(Engine, CrossingCountedOnlyOnSwaps) {
  // Oriented ring, both move clockwise from adjacent nodes with delay
  // 0: they chase each other, never crossing, never meeting.
  const Graph g = families::oriented_ring(4);
  RunConfig config;
  config.max_rounds = 100;
  const RunResult r = run_anonymous(g, forward_program(), 0, 1, 0, config);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.met);
  EXPECT_EQ(r.edge_crossings, 0u);
}

TEST(Engine, MovesCounted) {
  const Graph g = families::oriented_ring(6);
  RunConfig config;
  config.max_rounds = 10;
  const RunResult r = run_anonymous(g, forward_program(), 0, 3, 0, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.moves[0], 10u);
  EXPECT_EQ(r.moves[1], 10u);
}

}  // namespace
}  // namespace rdv::sim
