#include <gtest/gtest.h>

#include "graph/families/families.hpp"
#include "graph/families/qhat.hpp"
#include "graph/walk.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

namespace rdv::views {
namespace {

using graph::Graph;
using graph::Node;
namespace families = rdv::graph::families;

TEST(Shrink, OrientedRingEqualsDistance) {
  // Rotation symmetry: same port sequence moves both agents in
  // lockstep, so the gap never changes — Shrink = dist (paper's torus
  // remark, in one dimension).
  const Graph g = families::oriented_ring(8);
  for (Node v = 1; v < 8; ++v) {
    EXPECT_EQ(shrink(g, 0, v), graph::distance(g, 0, v)) << v;
  }
}

TEST(Shrink, OrientedTorusEqualsDistance) {
  // The paper, after Definition 3.1: "in an oriented torus ...
  // Shrink(u,v) is equal to the distance between u and v".
  const Graph g = families::oriented_torus(4, 4);
  for (Node v = 1; v < g.size(); ++v) {
    EXPECT_EQ(shrink(g, 0, v), graph::distance(g, 0, v)) << v;
  }
}

TEST(Shrink, SymmetricDoubleTreeIsOne) {
  // The paper, after Definition 3.1: in a symmetric tree composed of a
  // central edge with port-preserving isomorphic trees on both ends,
  // Shrink(u,v) = 1 for any symmetric pair, at any distance.
  for (std::uint32_t b : {1u, 2u, 3u}) {
    for (std::uint32_t t : {1u, 2u, 3u}) {
      const Graph g = families::symmetric_double_tree(b, t);
      const auto pairs = symmetric_pairs(g);
      ASSERT_FALSE(pairs.empty());
      for (const auto& [u, v] : pairs) {
        EXPECT_EQ(shrink(g, u, v), 1u)
            << g.name() << " pair " << u << "," << v;
      }
    }
  }
}

TEST(Shrink, DistanceGrowsButShrinkStaysOne) {
  // The motivating contrast: distance between mirror leaves is
  // 2*height+1, Shrink stays 1.
  const Graph g = families::symmetric_double_tree(2, 3);
  const Node half = g.size() / 2;
  const Node deep_leaf = half - 1;  // last node of first copy = a leaf
  EXPECT_EQ(graph::distance(g, deep_leaf, deep_leaf + half), 7u);
  EXPECT_EQ(shrink(g, deep_leaf, deep_leaf + half), 1u);
}

TEST(Shrink, WitnessIsConsistent) {
  const Graph g = families::symmetric_double_tree(2, 2);
  const Node half = g.size() / 2;
  const ShrinkResult r = shrink_with_witness(g, half - 1, g.size() - 1);
  EXPECT_EQ(r.shrink, 1u);
  const auto a = graph::apply_ports(g, half - 1, r.witness);
  const auto b = graph::apply_ports(g, g.size() - 1, r.witness);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, r.closest_u);
  EXPECT_EQ(*b, r.closest_v);
  EXPECT_EQ(graph::distance(g, *a, *b), r.shrink);
}

TEST(Shrink, EmptySequenceWitnessesDistanceUpperBound) {
  // Shrink <= dist always (alpha = empty sequence).
  const Graph g = families::random_connected(12, 8, 17);
  for (Node u = 0; u < g.size(); ++u) {
    for (Node v = u + 1; v < g.size(); ++v) {
      EXPECT_LE(shrink(g, u, v), graph::distance(g, u, v));
    }
  }
}

TEST(Shrink, SymmetricPairsHavePositiveShrink) {
  // Shrink(u,v) = 0 for a symmetric pair would contradict the
  // impossibility of simultaneous-start rendezvous (Lemma 3.1 with
  // delta = 0).
  const std::vector<Graph> corpus = {
      families::oriented_ring(6),
      families::hypercube(3),
      families::symmetric_double_tree(2, 2),
      families::oriented_torus(3, 3),
  };
  for (const Graph& g : corpus) {
    for (const auto& [u, v] : symmetric_pairs(g)) {
      EXPECT_GT(shrink(g, u, v), 0u) << g.name();
    }
  }
}

TEST(Shrink, QhatZPairsBounds) {
  // On Q-hat, pairs (r, v) with v in Z at distance D = 2k form feasible
  // STICs at delta = D (Theorem 4.1's setting): Shrink is positive (all
  // pairs are symmetric) and at most the distance D.
  const std::uint32_t k = 1;
  const auto q = families::qhat_explicit(6);  // h = 6 > D: v is interior
  const auto z = families::qhat_z_set(q.graph, q.root, k);
  for (const Node v : z) {
    const std::uint32_t s = shrink(q.graph, q.root, v);
    EXPECT_GT(s, 0u);
    EXPECT_LE(s, 2 * k);
  }
}

TEST(Shrink, CompleteGraphIsAtMostOne) {
  const Graph g = families::complete(5);
  for (Node v = 1; v < 5; ++v) {
    EXPECT_LE(shrink(g, 0, v), 1u);
  }
}

}  // namespace
}  // namespace rdv::views
