#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "graph/families/families.hpp"
#include "graph/families/qhat.hpp"
#include "graph/walk.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

namespace rdv::views {
namespace {

using graph::Graph;
using graph::Node;
namespace families = rdv::graph::families;

TEST(Shrink, OrientedRingEqualsDistance) {
  // Rotation symmetry: same port sequence moves both agents in
  // lockstep, so the gap never changes — Shrink = dist (paper's torus
  // remark, in one dimension).
  const Graph g = families::oriented_ring(8);
  for (Node v = 1; v < 8; ++v) {
    EXPECT_EQ(shrink(g, 0, v), graph::distance(g, 0, v)) << v;
  }
}

TEST(Shrink, OrientedTorusEqualsDistance) {
  // The paper, after Definition 3.1: "in an oriented torus ...
  // Shrink(u,v) is equal to the distance between u and v".
  const Graph g = families::oriented_torus(4, 4);
  for (Node v = 1; v < g.size(); ++v) {
    EXPECT_EQ(shrink(g, 0, v), graph::distance(g, 0, v)) << v;
  }
}

TEST(Shrink, SymmetricDoubleTreeIsOne) {
  // The paper, after Definition 3.1: in a symmetric tree composed of a
  // central edge with port-preserving isomorphic trees on both ends,
  // Shrink(u,v) = 1 for any symmetric pair, at any distance.
  for (std::uint32_t b : {1u, 2u, 3u}) {
    for (std::uint32_t t : {1u, 2u, 3u}) {
      const Graph g = families::symmetric_double_tree(b, t);
      const auto pairs = cache::cached_symmetric_pairs(g);
      ASSERT_FALSE(pairs.empty());
      for (const auto& [u, v] : pairs) {
        EXPECT_EQ(shrink(g, u, v), 1u)
            << g.name() << " pair " << u << "," << v;
      }
    }
  }
}

TEST(Shrink, DistanceGrowsButShrinkStaysOne) {
  // The motivating contrast: distance between mirror leaves is
  // 2*height+1, Shrink stays 1.
  const Graph g = families::symmetric_double_tree(2, 3);
  const Node half = g.size() / 2;
  const Node deep_leaf = half - 1;  // last node of first copy = a leaf
  EXPECT_EQ(graph::distance(g, deep_leaf, deep_leaf + half), 7u);
  EXPECT_EQ(shrink(g, deep_leaf, deep_leaf + half), 1u);
}

TEST(Shrink, WitnessIsConsistent) {
  const Graph g = families::symmetric_double_tree(2, 2);
  const Node half = g.size() / 2;
  const ShrinkResult r = shrink_with_witness(g, half - 1, g.size() - 1);
  EXPECT_EQ(r.shrink, 1u);
  const auto a = graph::apply_ports(g, half - 1, r.witness);
  const auto b = graph::apply_ports(g, g.size() - 1, r.witness);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, r.closest_u);
  EXPECT_EQ(*b, r.closest_v);
  EXPECT_EQ(graph::distance(g, *a, *b), r.shrink);
}

TEST(Shrink, EmptySequenceWitnessesDistanceUpperBound) {
  // Shrink <= dist always (alpha = empty sequence).
  const Graph g = families::random_connected(12, 8, 17);
  for (Node u = 0; u < g.size(); ++u) {
    for (Node v = u + 1; v < g.size(); ++v) {
      EXPECT_LE(shrink(g, u, v), graph::distance(g, u, v));
    }
  }
}

TEST(Shrink, SymmetricPairsHavePositiveShrink) {
  // Shrink(u,v) = 0 for a symmetric pair would contradict the
  // impossibility of simultaneous-start rendezvous (Lemma 3.1 with
  // delta = 0).
  const std::vector<Graph> corpus = {
      families::oriented_ring(6),
      families::hypercube(3),
      families::symmetric_double_tree(2, 2),
      families::oriented_torus(3, 3),
  };
  for (const Graph& g : corpus) {
    for (const auto& [u, v] : cache::cached_symmetric_pairs(g)) {
      EXPECT_GT(shrink(g, u, v), 0u) << g.name();
    }
  }
}

TEST(Shrink, QhatZPairsBounds) {
  // On Q-hat, pairs (r, v) with v in Z at distance D = 2k form feasible
  // STICs at delta = D (Theorem 4.1's setting): Shrink is positive (all
  // pairs are symmetric) and at most the distance D.
  const std::uint32_t k = 1;
  const auto q = families::qhat_explicit(6);  // h = 6 > D: v is interior
  const auto z = families::qhat_z_set(q.graph, q.root, k);
  for (const Node v : z) {
    const std::uint32_t s = shrink(q.graph, q.root, v);
    EXPECT_GT(s, 0u);
    EXPECT_LE(s, 2 * k);
  }
}

TEST(Shrink, CompleteGraphIsAtMostOne) {
  const Graph g = families::complete(5);
  for (Node v = 1; v < 5; ++v) {
    EXPECT_LE(shrink(g, 0, v), 1u);
  }
}

TEST(Shrink, DisconnectedPairReturnsUnreachableWithEmptyWitness) {
  // Regression: the old implementation scanned for a "closest" pair
  // even when no product state was reachable, fabricating a bogus
  // witness for a disconnected input. The contract is now explicit:
  // shrink == kUnreachable, empty witness, closest == kNoNode. Built
  // through the public Graph constructor — GraphBuilder rejects
  // disconnected graphs, shrink_with_witness must still be total.
  std::vector<std::vector<graph::HalfEdge>> adj(4);
  adj[0] = {{1, 0}};
  adj[1] = {{0, 0}};
  adj[2] = {{3, 0}};
  adj[3] = {{2, 0}};
  const Graph g(std::move(adj), "two-edges");
  const ShrinkResult r = shrink_with_witness(g, 0, 2);
  EXPECT_EQ(r.shrink, graph::kUnreachable);
  EXPECT_TRUE(r.witness.empty());
  EXPECT_EQ(r.closest_u, graph::kNoNode);
  EXPECT_EQ(r.closest_v, graph::kNoNode);

  // Same-component pairs on the same graph still resolve normally.
  const ShrinkResult same = shrink_with_witness(g, 0, 1);
  EXPECT_EQ(same.shrink, 1u);
}

TEST(Shrink, FlatParentTableMatchesReferenceBfs) {
  // The parent table moved from unordered_map<uint64_t, Parent> to a
  // flat vector keyed by pair id. Pin the refactor against a
  // test-local reference BFS over the product graph: same minimum
  // distance, and the returned witness still walks both agents to a
  // closest pair at exactly that distance.
  const std::vector<Graph> corpus = {
      families::random_connected(10, 14, 41),
      families::scrambled_ring(9, 6),
      families::grid(3, 3),
  };
  for (const Graph& g : corpus) {
    const std::vector<std::vector<std::uint32_t>> dist = [&g] {
      std::vector<std::vector<std::uint32_t>> d;
      d.reserve(g.size());
      for (Node v = 0; v < g.size(); ++v) {
        d.push_back(graph::bfs_distances(g, v));
      }
      return d;
    }();
    for (Node u = 0; u < g.size(); ++u) {
      for (Node v = u + 1; v < g.size(); ++v) {
        // Reference: plain queue BFS over product states (a, b).
        const std::size_t n = g.size();
        std::vector<char> seen(n * n, 0);
        std::vector<std::uint64_t> frontier = {u * n + v};
        seen[u * n + v] = 1;
        std::uint32_t best = dist[u][v];
        while (!frontier.empty()) {
          std::vector<std::uint64_t> next;
          for (const std::uint64_t id : frontier) {
            const Node a = static_cast<Node>(id / n);
            const Node b = static_cast<Node>(id % n);
            best = std::min(best, dist[a][b]);
            const graph::Port ports =
                std::min(g.degree(a), g.degree(b));
            for (graph::Port p = 0; p < ports; ++p) {
              const std::uint64_t to =
                  static_cast<std::uint64_t>(g.step(a, p).to) * n +
                  g.step(b, p).to;
              if (seen[to] == 0) {
                seen[to] = 1;
                next.push_back(to);
              }
            }
          }
          frontier = std::move(next);
        }
        const ShrinkResult r = shrink_with_witness(g, u, v);
        ASSERT_EQ(r.shrink, best) << g.name() << " " << u << "," << v;
        const auto a = graph::apply_ports(g, u, r.witness);
        const auto b = graph::apply_ports(g, v, r.witness);
        ASSERT_TRUE(a && b);
        EXPECT_EQ(*a, r.closest_u);
        EXPECT_EQ(*b, r.closest_v);
        EXPECT_EQ(graph::distance(g, *a, *b), r.shrink);
      }
    }
  }
}

}  // namespace
}  // namespace rdv::views
