#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/bench_json.hpp"
#include "support/env.hpp"
#include "support/saturating.hpp"
#include "support/splitmix.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace rdv::support {
namespace {

TEST(Saturating, AddSaturates) {
  EXPECT_EQ(sat_add(2, 3), 5u);
  EXPECT_EQ(sat_add(kRoundInfinity, 0), kRoundInfinity);
  EXPECT_EQ(sat_add(kRoundInfinity, 1), kRoundInfinity);
  EXPECT_EQ(sat_add(kRoundInfinity - 1, 1), kRoundInfinity);
  EXPECT_EQ(sat_add(kRoundInfinity - 1, 2), kRoundInfinity);
}

TEST(Saturating, MulSaturates) {
  EXPECT_EQ(sat_mul(6, 7), 42u);
  EXPECT_EQ(sat_mul(0, kRoundInfinity), 0u);
  EXPECT_EQ(sat_mul(kRoundInfinity, 2), kRoundInfinity);
  EXPECT_EQ(sat_mul(std::uint64_t{1} << 33, std::uint64_t{1} << 33),
            kRoundInfinity);
}

TEST(Saturating, PowExactAndSaturating) {
  EXPECT_EQ(sat_pow(3, 0), 1u);
  EXPECT_EQ(sat_pow(3, 4), 81u);
  EXPECT_EQ(sat_pow(1, 1000000), 1u);
  EXPECT_EQ(sat_pow(2, 63), std::uint64_t{1} << 63);
  EXPECT_EQ(sat_pow(2, 64), kRoundInfinity);
  EXPECT_EQ(sat_pow(10, 25), kRoundInfinity);
}

TEST(Saturating, SubClampsAtZero) {
  EXPECT_EQ(sat_sub(5, 3), 2u);
  EXPECT_EQ(sat_sub(3, 5), 0u);
}

TEST(Saturating, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(1, 7), 1u);
}

TEST(Saturating, BitsFor) {
  EXPECT_EQ(bits_for(0), 0u);
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 2u);
  EXPECT_EQ(bits_for(255), 8u);
  EXPECT_EQ(bits_for(256), 9u);
}

TEST(SplitMix, KnownAnswer) {
  SplitMix64 rng(0);
  EXPECT_EQ(rng.next(), 0xE220A8397B1DCDAFULL);
  // The state advances by the golden-gamma increment per draw.
  EXPECT_EQ(rng.state(), 0x9E3779B97F4A7C15ULL);
}

TEST(SplitMix, Deterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix, NextBelowInRangeAndCoversValues) {
  SplitMix64 rng(7);
  bool seen[5] = {};
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.next_below(5);
    ASSERT_LT(v, 5u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(TaskGroup, RunsAllTasksAndWaits) {
  ThreadPool pool(3);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    group.submit([&count] { count.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(group.pending(), 0u);
}

TEST(TaskGroup, WaitOnEmptyGroupReturnsImmediately) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  group.wait();
  EXPECT_EQ(group.pending(), 0u);
}

TEST(TaskGroup, ReusableAcrossBatches) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      group.submit([&count] { count.fetch_add(1); });
    }
    group.wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

// The per-sweep completion-tracking contract (ROADMAP): waiting on one
// group must NOT wait for the rest of the pool. Group B parks a task on
// a gate; group A's wait() still returns — with wait_idle() this test
// would deadlock.
TEST(TaskGroup, WaitDoesNotWaitForOtherGroupsTasks) {
  ThreadPool pool(2);
  TaskGroup blocked(pool);
  TaskGroup quick(pool);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  blocked.submit([opened] { opened.wait(); });
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    quick.submit([&count] { count.fetch_add(1); });
  }
  quick.wait();
  EXPECT_EQ(count.load(), 10);
  EXPECT_EQ(quick.pending(), 0u);
  gate.set_value();
  blocked.wait();
  EXPECT_EQ(blocked.pending(), 0u);
}

TEST(Table, MarkdownShape) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(md.find("| 333 | 4  |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(Table, Csv) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

// Regression: add_row used to validate only via assert, so a
// mismatched row silently indexed out of bounds in NDEBUG builds.
TEST(Table, AddRowRejectsCellCountMismatch) {
  Table t({"x", "y"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, JsonShapeAndEscaping) {
  Table t({"x", "y"});
  t.add_row({"a\"b", "line\nbreak"});
  t.add_row({"back\\slash", "\ttab"});
  EXPECT_EQ(t.to_json(),
            "{\"headers\": [\"x\", \"y\"], \"rows\": [\n"
            "  [\"a\\\"b\", \"line\\nbreak\"],\n"
            "  [\"back\\\\slash\", \"\\ttab\"]\n"
            "]}\n");
  EXPECT_EQ(Table({"only"}).to_json(),
            "{\"headers\": [\"only\"], \"rows\": []}\n");
}

TEST(Env, FlagAndSizeParsing) {
  ASSERT_EQ(setenv("RDV_TEST_ENV", "", 1), 0);
  EXPECT_FALSE(env_flag("RDV_TEST_ENV"));
  ASSERT_EQ(setenv("RDV_TEST_ENV", "0", 1), 0);
  EXPECT_FALSE(env_flag("RDV_TEST_ENV"));
  ASSERT_EQ(setenv("RDV_TEST_ENV", "yes", 1), 0);
  EXPECT_TRUE(env_flag("RDV_TEST_ENV"));
  EXPECT_EQ(env_string("RDV_TEST_ENV"), "yes");
  EXPECT_EQ(env_size_t("RDV_TEST_ENV", 7), 7u);  // unparsable -> fallback
  ASSERT_EQ(setenv("RDV_TEST_ENV", "42", 1), 0);
  EXPECT_EQ(env_size_t("RDV_TEST_ENV", 7), 42u);
  ASSERT_EQ(unsetenv("RDV_TEST_ENV"), 0);
  EXPECT_FALSE(env_flag("RDV_TEST_ENV"));
  EXPECT_EQ(env_string("RDV_TEST_ENV"), "");
  EXPECT_EQ(env_size_t("RDV_TEST_ENV", 7), 7u);
}

TEST(Env, StoreAndCensusKnobs) {
  ASSERT_EQ(setenv("RDV_STORE_DIR", "/tmp/rdv-store-x", 1), 0);
  ASSERT_EQ(setenv("RDV_STORE_SALT", "salt-x", 1), 0);
  ASSERT_EQ(setenv("RDV_STORE_READONLY", "1", 1), 0);
  ASSERT_EQ(setenv("REPRO_CENSUS", "1", 1), 0);
  EXPECT_EQ(rdv_store_dir(), "/tmp/rdv-store-x");
  EXPECT_EQ(rdv_store_salt(), "salt-x");
  EXPECT_TRUE(rdv_store_readonly());
  EXPECT_TRUE(repro_census());
  // Same strict-"1" contract as REPRO_FULL.
  ASSERT_EQ(setenv("REPRO_CENSUS", "true", 1), 0);
  EXPECT_FALSE(repro_census());
  ASSERT_EQ(unsetenv("RDV_STORE_DIR"), 0);
  ASSERT_EQ(unsetenv("RDV_STORE_SALT"), 0);
  ASSERT_EQ(unsetenv("RDV_STORE_READONLY"), 0);
  ASSERT_EQ(unsetenv("REPRO_CENSUS"), 0);
  EXPECT_EQ(rdv_store_dir(), "");
  EXPECT_EQ(rdv_store_salt(), "");
  EXPECT_FALSE(rdv_store_readonly());
  EXPECT_FALSE(repro_census());
}

TEST(BenchJson, UpdateReplacesOwnLineAndPreservesOthers) {
  const std::string path = ::testing::TempDir() + "bench_json_test.json";
  std::remove(path.c_str());
  ASSERT_TRUE(update_bench_json(path, "micro_sweep",
                                "{\"bench\":\"micro_sweep\",\"v\":1}"));
  ASSERT_TRUE(update_bench_json(path, "rdv_bench",
                                "{\"bench\":\"rdv_bench\",\"v\":2}"));
  // Re-emitting one bench replaces only its own line.
  ASSERT_TRUE(update_bench_json(path, "micro_sweep",
                                "{\"bench\":\"micro_sweep\",\"v\":3}"));
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"bench\":\"rdv_bench\",\"v\":2}");
  EXPECT_EQ(lines[1], "{\"bench\":\"micro_sweep\",\"v\":3}");
  std::remove(path.c_str());
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format_rounds(17), "17");
  EXPECT_EQ(format_rounds(kRoundInfinity), "inf");
  EXPECT_EQ(format_double(1.005, 1), "1.0");
}

}  // namespace
}  // namespace rdv::support
