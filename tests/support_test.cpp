#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/bench_json.hpp"
#include "support/env.hpp"
#include "support/saturating.hpp"
#include "support/splitmix.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace rdv::support {
namespace {

TEST(Saturating, AddSaturates) {
  EXPECT_EQ(sat_add(2, 3), 5u);
  EXPECT_EQ(sat_add(kRoundInfinity, 0), kRoundInfinity);
  EXPECT_EQ(sat_add(kRoundInfinity, 1), kRoundInfinity);
  EXPECT_EQ(sat_add(kRoundInfinity - 1, 1), kRoundInfinity);
  EXPECT_EQ(sat_add(kRoundInfinity - 1, 2), kRoundInfinity);
}

TEST(Saturating, MulSaturates) {
  EXPECT_EQ(sat_mul(6, 7), 42u);
  EXPECT_EQ(sat_mul(0, kRoundInfinity), 0u);
  EXPECT_EQ(sat_mul(kRoundInfinity, 2), kRoundInfinity);
  EXPECT_EQ(sat_mul(std::uint64_t{1} << 33, std::uint64_t{1} << 33),
            kRoundInfinity);
}

TEST(Saturating, PowExactAndSaturating) {
  EXPECT_EQ(sat_pow(3, 0), 1u);
  EXPECT_EQ(sat_pow(3, 4), 81u);
  EXPECT_EQ(sat_pow(1, 1000000), 1u);
  EXPECT_EQ(sat_pow(2, 63), std::uint64_t{1} << 63);
  EXPECT_EQ(sat_pow(2, 64), kRoundInfinity);
  EXPECT_EQ(sat_pow(10, 25), kRoundInfinity);
}

TEST(Saturating, SubClampsAtZero) {
  EXPECT_EQ(sat_sub(5, 3), 2u);
  EXPECT_EQ(sat_sub(3, 5), 0u);
}

TEST(Saturating, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(1, 7), 1u);
}

TEST(Saturating, BitsFor) {
  EXPECT_EQ(bits_for(0), 0u);
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 2u);
  EXPECT_EQ(bits_for(255), 8u);
  EXPECT_EQ(bits_for(256), 9u);
}

TEST(SplitMix, KnownAnswer) {
  SplitMix64 rng(0);
  EXPECT_EQ(rng.next(), 0xE220A8397B1DCDAFULL);
  // The state advances by the golden-gamma increment per draw.
  EXPECT_EQ(rng.state(), 0x9E3779B97F4A7C15ULL);
}

TEST(SplitMix, Deterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix, NextBelowInRangeAndCoversValues) {
  SplitMix64 rng(7);
  bool seen[5] = {};
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.next_below(5);
    ASSERT_LT(v, 5u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(TaskGroup, RunsAllTasksAndWaits) {
  ThreadPool pool(3);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    group.submit([&count] { count.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(group.pending(), 0u);
}

TEST(TaskGroup, WaitOnEmptyGroupReturnsImmediately) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  group.wait();
  EXPECT_EQ(group.pending(), 0u);
}

TEST(TaskGroup, ReusableAcrossBatches) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      group.submit([&count] { count.fetch_add(1); });
    }
    group.wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

// The per-sweep completion-tracking contract (ROADMAP): waiting on one
// group must NOT wait for the rest of the pool. Group B parks a task on
// a gate; group A's wait() still returns — with wait_idle() this test
// would deadlock.
TEST(TaskGroup, WaitDoesNotWaitForOtherGroupsTasks) {
  ThreadPool pool(2);
  TaskGroup blocked(pool);
  TaskGroup quick(pool);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  blocked.submit([opened] { opened.wait(); });
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    quick.submit([&count] { count.fetch_add(1); });
  }
  quick.wait();
  EXPECT_EQ(count.load(), 10);
  EXPECT_EQ(quick.pending(), 0u);
  gate.set_value();
  blocked.wait();
  EXPECT_EQ(blocked.pending(), 0u);
}

// THE nested-sweep deadlock regression (ISSUE 5 tentpole): a pool task
// that constructs a TaskGroup and waits on sub-tasks submitted to the
// SAME pool. With a parking wait and one worker, the worker blocks on
// tasks only it could run — pre-fix this hung forever; the
// work-assisting wait has the worker execute its own sub-tasks.
TEST(TaskGroup, NestedWaitInsideOneThreadPoolCompletes) {
  ThreadPool pool(1);
  std::atomic<int> inner_sum{0};
  std::atomic<bool> outer_done{false};
  TaskGroup outer(pool);
  outer.submit([&] {
    TaskGroup inner(pool);
    for (int i = 0; i < 8; ++i) {
      inner.submit([&inner_sum] { inner_sum.fetch_add(1); });
    }
    inner.wait();
    // Everything the outer task waited on finished before it resumed.
    EXPECT_EQ(inner_sum.load(), 8);
    outer_done.store(true);
  });
  outer.wait();
  EXPECT_TRUE(outer_done.load());
  EXPECT_EQ(outer.pending(), 0u);
}

// Three levels of nesting on a one-worker pool: outer case -> inner
// sweep -> innermost chunk group, the shape of a t1/t2 case whose
// kernel sweeps (and whose kernel's kernel sweeps again).
TEST(TaskGroup, DeeplyNestedWaitsOnOneThread) {
  ThreadPool pool(1);
  std::atomic<int> leaves{0};
  TaskGroup outer(pool);
  for (int o = 0; o < 3; ++o) {
    outer.submit([&pool, &leaves] {
      TaskGroup mid(pool);
      for (int m = 0; m < 3; ++m) {
        mid.submit([&pool, &leaves] {
          TaskGroup inner(pool);
          for (int i = 0; i < 3; ++i) {
            inner.submit([&leaves] { leaves.fetch_add(1); });
          }
          inner.wait();
        });
      }
      mid.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(leaves.load(), 27);
}

// Oversubscription stress (run under TSan in CI): many more
// simultaneously-waiting groups than workers, every worker blocked in
// a nested wait at once, plus an external waiter. Completion proves no
// schedule loses tasks and no nesting pattern deadlocks.
TEST(TaskGroup, OversubscribedNestedGroupsStress) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  TaskGroup outer(pool);
  for (int o = 0; o < 16; ++o) {
    outer.submit([&pool, &inner_total] {
      TaskGroup inner(pool);
      for (int i = 0; i < 16; ++i) {
        inner.submit([&inner_total] { inner_total.fetch_add(1); });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(inner_total.load(), 16 * 16);
  EXPECT_EQ(outer.pending(), 0u);
}

// parallel_for from inside a pool task is the nested shape
// exp::run_experiment now relies on (outer cases fan out, inner sweeps
// fan out on the same pool).
TEST(TaskGroup, NestedParallelForInsidePoolTask) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  TaskGroup outer(pool);
  for (int o = 0; o < 4; ++o) {
    outer.submit([&pool, &hits, o] {
      parallel_for(pool, 0, 16, [&hits, o](std::size_t i) {
        hits[static_cast<std::size_t>(o) * 16 + i].fetch_add(1);
      });
    });
  }
  outer.wait();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Work stealing: tasks submitted from one worker land on its own
// deque, and while that worker is parked on a gate only thieves can
// run them — so any task that starts before the gate opens was
// necessarily stolen.
TEST(ThreadPool, IdleWorkersStealFromABusyWorkersDeque) {
  ThreadPool pool(4);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> started{0};
  std::atomic<int> count{0};
  TaskGroup group(pool);
  group.submit([&pool, &started, &count, opened] {
    // Runs on some worker: these land on that worker's own deque.
    TaskGroup batch(pool);
    for (int i = 0; i < 32; ++i) {
      batch.submit([&started, &count, opened] {
        started.fetch_add(1);
        opened.wait();
        count.fetch_add(1);
      });
    }
    // The submitter parks on the gate (not a work-assisting wait), so
    // until the gate opens its deque is drained by thieves alone.
    opened.wait();
    batch.wait();
  });
  // Three tasks running while the submitting worker is parked = three
  // steals, observed before the gate is released.
  while (started.load() < 3) std::this_thread::yield();
  EXPECT_GE(pool.steal_count(), 3u);
  gate.set_value();
  group.wait();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ParkAndWakeupCountsAdvance) {
  ThreadPool pool(2);
  // Idle workers scan the (empty) queues once and park; poll until
  // both have (timing-tolerant, bounded).
  for (int i = 0; i < 5000 && pool.park_count() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(pool.park_count(), 2u);
  EXPECT_EQ(pool.steal_count(), 0u);

  TaskGroup group(pool);
  std::atomic<int> ran{0};
  group.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  group.wait();
  EXPECT_EQ(ran.load(), 1);
  for (int i = 0; i < 5000 && pool.wakeup_count() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(pool.wakeup_count(), 1u);
  // Every wakeup was preceded by its park (read wakeups first: a
  // concurrent park may land between the two loads, never a wakeup
  // without one).
  const std::uint64_t wakeups = pool.wakeup_count();
  EXPECT_GE(pool.park_count(), wakeups);
}

TEST(Table, MarkdownShape) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(md.find("| 333 | 4  |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(Table, Csv) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

// Regression: add_row used to validate only via assert, so a
// mismatched row silently indexed out of bounds in NDEBUG builds.
TEST(Table, AddRowRejectsCellCountMismatch) {
  Table t({"x", "y"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, JsonShapeAndEscaping) {
  Table t({"x", "y"});
  t.add_row({"a\"b", "line\nbreak"});
  t.add_row({"back\\slash", "\ttab"});
  EXPECT_EQ(t.to_json(),
            "{\"headers\": [\"x\", \"y\"], \"rows\": [\n"
            "  [\"a\\\"b\", \"line\\nbreak\"],\n"
            "  [\"back\\\\slash\", \"\\ttab\"]\n"
            "]}\n");
  EXPECT_EQ(Table({"only"}).to_json(),
            "{\"headers\": [\"only\"], \"rows\": []}\n");
}

TEST(Env, FlagAndSizeParsing) {
  ASSERT_EQ(setenv("RDV_TEST_ENV", "", 1), 0);
  EXPECT_FALSE(env_flag("RDV_TEST_ENV"));
  ASSERT_EQ(setenv("RDV_TEST_ENV", "0", 1), 0);
  EXPECT_FALSE(env_flag("RDV_TEST_ENV"));
  ASSERT_EQ(setenv("RDV_TEST_ENV", "yes", 1), 0);
  EXPECT_TRUE(env_flag("RDV_TEST_ENV"));
  EXPECT_EQ(env_string("RDV_TEST_ENV"), "yes");
  EXPECT_EQ(env_size_t("RDV_TEST_ENV", 7), 7u);  // unparsable -> fallback
  ASSERT_EQ(setenv("RDV_TEST_ENV", "42", 1), 0);
  EXPECT_EQ(env_size_t("RDV_TEST_ENV", 7), 42u);
  ASSERT_EQ(unsetenv("RDV_TEST_ENV"), 0);
  EXPECT_FALSE(env_flag("RDV_TEST_ENV"));
  EXPECT_EQ(env_string("RDV_TEST_ENV"), "");
  EXPECT_EQ(env_size_t("RDV_TEST_ENV", 7), 7u);
}

TEST(Env, StoreAndCensusKnobs) {
  ASSERT_EQ(setenv("RDV_STORE_DIR", "/tmp/rdv-store-x", 1), 0);
  ASSERT_EQ(setenv("RDV_STORE_SALT", "salt-x", 1), 0);
  ASSERT_EQ(setenv("RDV_STORE_READONLY", "1", 1), 0);
  ASSERT_EQ(setenv("REPRO_CENSUS", "1", 1), 0);
  EXPECT_EQ(rdv_store_dir(), "/tmp/rdv-store-x");
  EXPECT_EQ(rdv_store_salt(), "salt-x");
  EXPECT_TRUE(rdv_store_readonly());
  EXPECT_TRUE(repro_census());
  // Same strict-"1" contract as REPRO_FULL.
  ASSERT_EQ(setenv("REPRO_CENSUS", "true", 1), 0);
  EXPECT_FALSE(repro_census());
  ASSERT_EQ(unsetenv("RDV_STORE_DIR"), 0);
  ASSERT_EQ(unsetenv("RDV_STORE_SALT"), 0);
  ASSERT_EQ(unsetenv("RDV_STORE_READONLY"), 0);
  ASSERT_EQ(unsetenv("REPRO_CENSUS"), 0);
  EXPECT_EQ(rdv_store_dir(), "");
  EXPECT_EQ(rdv_store_salt(), "");
  EXPECT_FALSE(rdv_store_readonly());
  EXPECT_FALSE(repro_census());
}

TEST(BenchJson, UpdateReplacesOwnLineAndPreservesOthers) {
  const std::string path = ::testing::TempDir() + "bench_json_test.json";
  std::remove(path.c_str());
  ASSERT_TRUE(update_bench_json(path, "micro_sweep",
                                "{\"bench\":\"micro_sweep\",\"v\":1}"));
  ASSERT_TRUE(update_bench_json(path, "rdv_bench",
                                "{\"bench\":\"rdv_bench\",\"v\":2}"));
  // Re-emitting one bench replaces only its own line.
  ASSERT_TRUE(update_bench_json(path, "micro_sweep",
                                "{\"bench\":\"micro_sweep\",\"v\":3}"));
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"bench\":\"rdv_bench\",\"v\":2}");
  EXPECT_EQ(lines[1], "{\"bench\":\"micro_sweep\",\"v\":3}");
  std::remove(path.c_str());
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format_rounds(17), "17");
  EXPECT_EQ(format_rounds(kRoundInfinity), "inf");
  EXPECT_EQ(format_double(1.005, 1), "1.0");
}

}  // namespace
}  // namespace rdv::support
