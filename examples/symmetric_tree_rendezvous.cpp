// The paper's Shrink = 1 showcase (remark after Definition 3.1):
// a central edge with port-preserving isomorphic trees on both ends.
// Mirror nodes can be arbitrarily far apart, yet Shrink = 1: delay 1
// already makes rendezvous feasible, and SymmRV(n, 1, 1) achieves it.
#include <cstdio>

#include "cache/artifact_cache.hpp"
#include "core/bounds.hpp"
#include "core/symm_rv.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::graph::Graph;
  using rdv::graph::Node;

  rdv::support::Table table({"tree", "pair", "distance", "Shrink",
                             "delay", "met", "rounds",
                             "T(n,d,delta) bound"});

  for (std::uint32_t height = 1; height <= 3; ++height) {
    const Graph g = families::symmetric_double_tree(2, height);
    const Node half = g.size() / 2;
    const Node deep = half - 1;  // deepest leaf of the first copy
    const Node mirror = families::double_tree_mirror(g, deep);

    const std::uint32_t s = rdv::views::shrink(g, deep, mirror);
    const auto y_handle = rdv::cache::cached_uxs(g.size());
    const rdv::uxs::Uxs& y = *y_handle;
    const std::uint64_t bound =
        rdv::core::symm_rv_time_bound(g.size(), s, s, y.length());

    rdv::sim::RunConfig config;
    config.max_rounds = 4 * bound;
    const auto r = rdv::sim::run_anonymous(
        g, rdv::core::symm_rv_program(g.size(), s, s, y), deep, mirror,
        /*delay=*/s, config);

    table.add_row({g.name(),
                   std::to_string(deep) + "<->" + std::to_string(mirror),
                   std::to_string(rdv::graph::distance(g, deep, mirror)),
                   std::to_string(s), std::to_string(s),
                   r.met ? "yes" : "NO",
                   rdv::support::format_rounds(r.meet_from_later_start),
                   rdv::support::format_rounds(bound)});
  }

  std::printf("%s", table.to_markdown().c_str());
  std::printf(
      "\nDistance grows with the tree height, Shrink stays 1: delay 1 "
      "suffices at any distance.\n");
  return 0;
}
