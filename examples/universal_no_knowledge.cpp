// UniversalRV end to end: one program, zero knowledge, every feasible
// STIC. Shows the phase schedule (n, d, delta) = g^{-1}(P) and the
// round budgets the algorithm commits to in each phase.
#include <cstdio>

#include "cache/artifact_cache.hpp"
#include "core/bounds.hpp"
#include "core/pairing.hpp"
#include "core/universal_rv.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::core::PhaseTriple;

  // The phase schedule the agents commit to, independent of any run.
  rdv::support::Table schedule(
      {"P", "n", "d", "delta", "executed?", "phase rounds"});
  for (std::uint64_t P = 1; P <= 12; ++P) {
    const PhaseTriple t = rdv::core::phase_decode(P);
    const bool executed = t.d < t.n;
    std::uint64_t duration = 0;
    if (executed) {
      const auto y =
          rdv::cache::cached_uxs(static_cast<std::uint32_t>(t.n));
      duration = rdv::core::universal_phase_duration(t.n, t.d, t.delta,
                                                     y->length());
    }
    schedule.add_row({std::to_string(P), std::to_string(t.n),
                      std::to_string(t.d), std::to_string(t.delta),
                      executed ? "yes" : "skip (d >= n)",
                      rdv::support::format_rounds(duration)});
  }
  std::printf("Phase schedule of UniversalRV:\n%s\n",
              schedule.to_markdown().c_str());

  // Run it on STICs the agents know nothing about.
  struct Case {
    const char* label;
    rdv::graph::Graph g;
    rdv::graph::Node u, v;
    std::uint64_t delay;
  };
  const Case cases[] = {
      {"two-node, delay 1 (symmetric, Shrink 1)",
       families::two_node_graph(), 0, 1, 1},
      {"path(3), delay 0 (nonsymmetric)", families::path_graph(3), 0, 2,
       0},
      {"ring(4) opposite, delay 2 (symmetric, Shrink 2)",
       families::oriented_ring(4), 0, 2, 2},
  };
  rdv::core::UniversalOptions options;
  options.max_phases = 200;
  rdv::sim::RunConfig config;
  config.max_rounds = 1u << 24;
  rdv::support::Table runs({"STIC", "met", "rounds from later start"});
  for (const Case& c : cases) {
    const auto r = rdv::sim::run_anonymous(
        c.g, rdv::core::universal_rv_program(options), c.u, c.v, c.delay,
        config);
    runs.add_row({c.label, r.met ? "yes" : "NO",
                  rdv::support::format_rounds(r.meet_from_later_start)});
  }
  std::printf("%s", runs.to_markdown().c_str());
  return 0;
}
