// stic_explorer — command-line STIC analysis tool.
//
// Usage:
//   stic_explorer <graph-file> <u> <v> <delta>
//   stic_explorer --demo
//
// The graph file uses the library's text format (see
// graph/serialize.hpp):
//   rdv-graph <n> <name>
//   <u> <pu> <v> <pv>        one line per edge
//
// Reports: symmetry of (u, v), Shrink with a witness port sequence,
// the Corollary 3.1 feasibility verdict, the exhaustive-search verdict
// (exact for symmetric pairs), and a UniversalRV simulation.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/optimal_search.hpp"
#include "analysis/stics.hpp"
#include "core/universal_rv.hpp"
#include "graph/serialize.hpp"
#include "sim/engine.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

namespace {

constexpr char kDemoGraph[] =
    "rdv-graph 6 demo-ring\n"
    "0 0 1 1\n1 0 2 1\n2 0 3 1\n3 0 4 1\n4 0 5 1\n5 0 0 1\n";

int analyze(const rdv::graph::Graph& g, rdv::graph::Node u,
            rdv::graph::Node v, std::uint64_t delta) {
  if (u >= g.size() || v >= g.size() || u == v) {
    std::fprintf(stderr, "error: need distinct nodes below %u\n",
                 g.size());
    return 2;
  }
  std::printf("graph: %s (n=%u, m=%llu)\n", g.name().c_str(), g.size(),
              static_cast<unsigned long long>(g.edge_count()));

  const auto classes = rdv::views::compute_view_classes(g);
  const bool sym = classes.symmetric(u, v);
  std::printf("nodes %u and %u are %s", u, v,
              sym ? "SYMMETRIC" : "nonsymmetric");
  if (!sym) {
    std::printf(" (views differ at depth %u)",
                rdv::views::view_distance(g, u, v));
  }
  std::printf("\n");

  const auto shrink = rdv::views::shrink_with_witness(g, u, v);
  std::printf("Shrink(%u,%u) = %u  (witness ports:", u, v,
              shrink.shrink);
  for (const auto p : shrink.witness) std::printf(" %u", p);
  std::printf("%s) -> closest pair (%u, %u)\n",
              shrink.witness.empty() ? " <empty>" : "", shrink.closest_u,
              shrink.closest_v);

  const auto cls = rdv::analysis::classify_stic(
      g, classes, rdv::analysis::Stic{u, v, delta});
  std::printf("STIC [(%u,%u), %llu]: %s by Corollary 3.1\n", u, v,
              static_cast<unsigned long long>(delta),
              cls.feasible ? "FEASIBLE" : "INFEASIBLE");

  try {
    rdv::analysis::OptimalSearchConfig config;
    config.horizon = 1u << 14;
    const auto opt = rdv::analysis::optimal_oblivious(g, u, v, delta,
                                                      config);
    switch (opt.outcome) {
      case rdv::analysis::OptimalOutcome::kMet:
        std::printf("exhaustive search: optimal meeting after %llu "
                    "rounds (%llu states)\n",
                    static_cast<unsigned long long>(opt.rounds),
                    static_cast<unsigned long long>(opt.states_explored));
        break;
      case rdv::analysis::OptimalOutcome::kProvenInfeasible:
        std::printf("exhaustive search: PROVEN infeasible "
                    "(%llu states drained)%s\n",
                    static_cast<unsigned long long>(opt.states_explored),
                    sym ? "" : " [oblivious class only]");
        break;
      case rdv::analysis::OptimalOutcome::kHorizonExceeded:
        std::printf("exhaustive search: inconclusive at horizon\n");
        break;
    }
  } catch (const std::invalid_argument& e) {
    std::printf("exhaustive search skipped: %s\n", e.what());
  }

  rdv::core::UniversalOptions options;
  options.max_phases = 200;
  rdv::sim::RunConfig config;
  config.max_rounds = 1u << 24;
  const auto run = rdv::sim::run_anonymous(
      g, rdv::core::universal_rv_program(options), u, v, delta, config);
  if (run.met) {
    std::printf("UniversalRV: met after %llu rounds (later-start time)\n",
                static_cast<unsigned long long>(run.meet_from_later_start));
  } else {
    std::printf("UniversalRV: no meeting within %llu rounds / %llu "
                "phases\n",
                static_cast<unsigned long long>(config.max_rounds),
                static_cast<unsigned long long>(options.max_phases));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--demo") {
    const auto g = rdv::graph::from_text(kDemoGraph);
    std::printf("== demo: symmetric pair at Shrink ==\n");
    analyze(g, 0, 3, 3);
    std::printf("\n== demo: same pair, one round short ==\n");
    return analyze(g, 0, 3, 2);
  }
  if (argc != 5) {
    std::fprintf(stderr,
                 "usage: %s <graph-file> <u> <v> <delta> | --demo\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    const auto g = rdv::graph::from_text(buffer.str());
    return analyze(g, static_cast<rdv::graph::Node>(std::atoi(argv[2])),
                   static_cast<rdv::graph::Node>(std::atoi(argv[3])),
                   static_cast<std::uint64_t>(std::atoll(argv[4])));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
