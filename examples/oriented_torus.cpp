// The oriented torus: the paper's "Shrink cannot shrink" example.
// Every pair of nodes is symmetric and Shrink(u, v) = dist(u, v), so a
// STIC is feasible exactly when the delay reaches the distance.
#include <cstdio>

#include "analysis/optimal_search.hpp"
#include "cache/artifact_cache.hpp"
#include "core/bounds.hpp"
#include "core/symm_rv.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::graph::Graph;
  using rdv::graph::Node;

  const Graph g = families::oriented_torus(3, 3);
  const auto classes = rdv::views::compute_view_classes(g);
  std::printf("oriented_torus(3x3): %u view classes (all symmetric)\n\n",
              classes.class_count);

  rdv::support::Table table({"v", "dist(0,v)", "Shrink(0,v)", "delay",
                             "feasible?", "SymmRV met", "rounds",
                             "optimal search"});
  const auto y_handle = rdv::cache::cached_uxs(g.size());
  const rdv::uxs::Uxs& y = *y_handle;
  for (const Node v : {Node{1}, Node{4}, Node{8}}) {
    const std::uint32_t s = rdv::views::shrink(g, 0, v);
    for (std::uint64_t delay = s > 1 ? s - 1 : 0; delay <= s; ++delay) {
      const bool feasible = delay >= s;
      std::string met = "-";
      std::string rounds = "-";
      if (feasible) {
        rdv::sim::RunConfig config;
        config.max_rounds = 4 * rdv::core::symm_rv_time_bound(
                                    g.size(), s, delay, y.length());
        const auto r = rdv::sim::run_anonymous(
            g, rdv::core::symm_rv_program(g.size(), s, delay, y), 0, v,
            delay, config);
        met = r.met ? "yes" : "NO";
        rounds = rdv::support::format_rounds(r.meet_from_later_start);
      }
      std::string optimal = "(skipped)";
      if (delay <= 2) {
        const auto opt = rdv::analysis::optimal_oblivious(g, 0, v, delay);
        switch (opt.outcome) {
          case rdv::analysis::OptimalOutcome::kMet:
            optimal = "met@" + std::to_string(opt.rounds);
            break;
          case rdv::analysis::OptimalOutcome::kProvenInfeasible:
            optimal = "proven-infeasible";
            break;
          case rdv::analysis::OptimalOutcome::kHorizonExceeded:
            optimal = "horizon";
            break;
        }
      }
      table.add_row({std::to_string(v),
                     std::to_string(rdv::graph::distance(g, 0, v)),
                     std::to_string(s), std::to_string(delay),
                     feasible ? "yes" : "no", met, rounds, optimal});
    }
  }
  std::printf("%s", table.to_markdown().c_str());
  return 0;
}
