// Gathering infrastructure: the paper's Section 1 reduction in action.
//
// Rendezvous is equivalent to leader election: once roles exist, the
// non-leaders wait at their nodes and the leader explores and finds
// each of them ("waiting for Mommy"). This example runs k agents on a
// random anonymous graph through the multi-agent engine, reporting the
// pairwise first-meeting matrix, and contrasts it with a roleless
// (fully symmetric) crew that provably cannot even pairwise-meet.
#include <cstdio>

#include "cache/artifact_cache.hpp"
#include "graph/families/families.hpp"
#include "sim/multi_engine.hpp"
#include "support/saturating.hpp"
#include "support/table.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::sim::AgentProgram;
  using rdv::sim::AgentSpec;
  using rdv::sim::Mailbox;
  using rdv::sim::Observation;
  using rdv::sim::Proc;

  const rdv::graph::Graph g = families::random_connected(12, 6, 42);
  const auto y_handle = rdv::cache::cached_uxs(g.size());
  const rdv::uxs::Uxs& y = *y_handle;

  AgentProgram waiter = [](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2) -> Proc {
      co_await mb2.wait(rdv::support::kRoundInfinity);
    }(mb);
  };
  AgentProgram leader = [&y](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2, rdv::uxs::Uxs seq) -> Proc {
      Observation o = co_await mb2.move(0);
      for (std::uint64_t a : seq.terms()) {
        o = co_await mb2.move(
            static_cast<rdv::graph::Port>((*o.entry_port + a) % o.degree));
      }
      co_await mb2.wait(rdv::support::kRoundInfinity);
    }(mb, y);
  };

  std::vector<AgentSpec> specs;
  specs.push_back({leader, 0, 0});
  specs.push_back({waiter, 4, 1});
  specs.push_back({waiter, 7, 3});
  specs.push_back({waiter, 11, 0});

  rdv::sim::MultiRunConfig config;
  config.max_rounds = 8 * (y.length() + 2);
  const auto r = rdv::sim::run_multi(g, specs, config);

  std::printf("waiting-for-Mommy on %s, %zu agents\n", g.name().c_str(),
              specs.size());
  rdv::support::Table table({"pair", "first meeting (absolute round)"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      const std::uint64_t m = r.meeting_of(i, j, specs.size());
      table.add_row(
          {std::to_string(i) + "-" + std::to_string(j),
           m == rdv::sim::kNever ? "never (both waiting)"
                                 : std::to_string(m)});
    }
  }
  std::printf("%s", table.to_markdown().c_str());
  std::printf("gathered=%d (waiters cannot gather without moving)\n\n",
              r.gathered);

  // Roleless contrast: three identical movers on an oriented ring stay
  // in perfect rotational lockstep forever (the symmetry the paper's
  // delay mechanism exists to break).
  const rdv::graph::Graph ring = families::oriented_ring(6);
  AgentProgram mover = [](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2) -> Proc {
      for (;;) co_await mb2.move(0);
    }(mb);
  };
  std::vector<AgentSpec> crew;
  for (const rdv::graph::Node start : {0u, 2u, 4u}) {
    crew.push_back({mover, start, 0});
  }
  rdv::sim::MultiRunConfig ring_config;
  ring_config.max_rounds = 1000;
  const auto lockstep = rdv::sim::run_multi(ring, crew, ring_config);
  std::printf(
      "roleless symmetric crew on oriented_ring(6): gathered=%d, "
      "pairwise meetings=%s after %llu rounds\n",
      lockstep.gathered,
      lockstep.meeting_of(0, 1, 3) == rdv::sim::kNever ? "none" : "some",
      static_cast<unsigned long long>(lockstep.rounds_simulated));
  return 0;
}
