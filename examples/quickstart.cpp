// Quickstart: two anonymous agents on the paper's two-node graph.
//
// The introduction's motivating example: identical agents that "move at
// each round" meet after `delay` rounds — time alone breaks the
// symmetry. We then run the full UniversalRV algorithm, which needs no
// knowledge of the graph, the positions, or the delay.
#include <cstdio>
#include <string>

#include "core/universal_rv.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::sim::Mailbox;
  using rdv::sim::Observation;
  using rdv::sim::Proc;

  const rdv::graph::Graph g = families::two_node_graph();

  // 1. The hand-written "move every round" algorithm.
  rdv::sim::AgentProgram mover = [](Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2) -> Proc {
      for (;;) co_await mb2.move(0);
    }(mb);
  };
  for (std::uint64_t delay = 1; delay <= 4; ++delay) {
    rdv::sim::RunConfig cap;
    cap.max_rounds = 100;
    const auto r = rdv::sim::run_anonymous(g, mover, 0, 1, delay, cap);
    std::printf(
        "move-every-round, delay %llu: met=%d%s\n",
        static_cast<unsigned long long>(delay), r.met,
        r.met ? (" at absolute round " +
                 std::to_string(r.meet_round_absolute))
                    .c_str()
              : " (even delay keeps the parity mismatch: this naive "
                "algorithm only uses time, and only odd delays break "
                "the two-node symmetry)");
  }

  // 2. Same STIC, zero knowledge: UniversalRV.
  rdv::core::UniversalOptions options;
  options.max_phases = 64;
  rdv::sim::RunConfig config;
  config.max_rounds = 1u << 22;
  const auto r = rdv::sim::run_anonymous(
      g, rdv::core::universal_rv_program(options), 0, 1, 1, config);
  std::printf("UniversalRV, delay 1: met=%d after %llu rounds\n", r.met,
              static_cast<unsigned long long>(r.meet_from_later_start));

  // 3. And the impossible case: simultaneous start from symmetric
  // positions (Lemma 3.1) — no algorithm can meet.
  const auto never = rdv::sim::run_anonymous(
      g, rdv::core::universal_rv_program(options), 0, 1, 0, config);
  std::printf("UniversalRV, delay 0 (infeasible): met=%d (cap %llu)\n",
              never.met,
              static_cast<unsigned long long>(config.max_rounds));
  return 0;
}
