// Walkthrough of Section 4: the Q-hat construction and the exponential
// lower bound of Theorem 4.1.
#include <algorithm>
#include <cstdio>

#include "analysis/steiner.hpp"
#include "graph/families/qhat.hpp"
#include "graph/families/qhat_implicit.hpp"
#include "graph/serialize.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"
#include "views/refinement.hpp"

int main() {
  namespace families = rdv::graph::families;

  // Figure 1's instance: Q-hat-2.
  const auto q2 = families::qhat_explicit(2);
  std::printf("Q-hat-2: %u nodes, %llu edges, all degree 4, %u view "
              "class(es)\n",
              q2.graph.size(),
              static_cast<unsigned long long>(q2.graph.edge_count()),
              rdv::views::compute_view_classes(q2.graph).class_count);
  std::printf("DOT output (first lines):\n");
  const std::string dot = rdv::graph::to_dot(q2.graph);
  std::fwrite(dot.data(), 1, std::min<std::size_t>(dot.size(), 400), stdout);
  std::printf("...\n\n");

  // Theorem 4.1's regime: D = 2k, h = 2D, STICs [(r, v), D] with v in Z.
  rdv::support::Table table(
      {"k", "D", "h", "n (explicit)", "|Z|", "floor 2^(k-1)",
       "dedicated worst-case", "measured worst (sim)"});
  for (std::uint32_t k = 1; k <= 4; ++k) {
    const families::QhatImplicitTopology topo(4 * k);
    const auto z = families::qhat_z_set(topo, topo.root(), k);
    const auto program = rdv::analysis::dedicated_z_program(k);
    std::uint64_t worst = 0;
    rdv::sim::RunConfig config;
    config.max_rounds = 64ull * k * (std::uint64_t{2} << k);
    for (const auto v : z) {
      const auto r = rdv::sim::run_anonymous(topo, program, topo.root(),
                                             v, 2 * k, config);
      if (r.met) worst = std::max(worst, r.meet_from_later_start);
    }
    table.add_row(
        {std::to_string(k), std::to_string(2 * k), std::to_string(4 * k),
         rdv::support::format_rounds(families::qhat_size(4 * k)),
         std::to_string(z.size()),
         std::to_string(rdv::analysis::theorem41_lower_bound(k)),
         std::to_string(rdv::analysis::dedicated_z_predicted_rounds(
             k, rdv::analysis::midpoint_count(k))),
         std::to_string(worst)});
  }
  std::printf("%s", table.to_markdown().c_str());
  std::printf(
      "\nBoth the certified floor and the dedicated algorithm grow like "
      "2^k: time exponential in the initial distance D = 2k is "
      "unavoidable (Theorem 4.1).\n");
  return 0;
}
