#pragma once

#include <cstdint>

#include "sim/agent.hpp"

/// Randomized rendezvous baseline.
///
/// The paper's conclusion: "the synchronous randomized counterpart of
/// our problem is straightforward, and follows from the fact that two
/// random walks meet with high probability in time polynomial in the
/// size of the graph [39]". This module supplies that baseline: agents
/// with independent randomness (distinct seeds — randomness IS the
/// symmetry breaker) performing random walks. Runs remain
/// bit-reproducible: the "randomness" is a SplitMix64 stream from an
/// explicit seed.
namespace rdv::core {

/// Plain synchronous random walk: every round, move through a uniformly
/// random port. NOTE: on bipartite graphs two plain walks preserve the
/// parity of their distance and can provably never meet (they only
/// cross) — the classical failure the lazy variant fixes.
[[nodiscard]] sim::AgentProgram random_walk_program(std::uint64_t seed);

/// Lazy random walk: with probability stay_permille/1000 stay put,
/// otherwise move through a uniformly random port. Laziness destroys
/// parity invariants, so two independent lazy walks meet with high
/// probability on every connected graph.
[[nodiscard]] sim::AgentProgram lazy_random_walk_program(
    std::uint64_t seed, std::uint32_t stay_permille = 500);

}  // namespace rdv::core
