#pragma once

#include <cstdint>
#include <vector>

#include "sim/agent.hpp"
#include "support/saturating.hpp"

/// Procedure Explore(u, d, delta) — Algorithm 2.
///
/// The agent, currently at some node u, traverses every path of length d
/// starting at u in lexicographic order of port sequences, each time
/// backtracking along the reverse path and then waiting delta - d
/// rounds at u. Each iteration costs exactly d + delta rounds
/// (2d moves + (delta - d) wait), matching the accounting of Lemma 3.2.
namespace rdv::core {

/// Budget discipline shared by the procedures (DESIGN.md "budget-exact
/// phases"): a procedure run under a finite `end_clock` never lets the
/// agent's local clock pass it and always returns with the agent at the
/// node where the procedure started.
inline constexpr std::uint64_t kNoDeadline = support::kRoundInfinity;

/// Runs Explore at the agent's current node. Requires delta >= d.
/// With a finite end_clock, stops before any iteration that would not
/// fit (counting `reserve` rounds the caller needs to get the agent
/// home afterwards) and sets *completed = false; the agent is back at u
/// either way.
[[nodiscard]] sim::Proc explore(sim::Mailbox& mb, std::uint32_t d,
                                std::uint64_t delta,
                                std::uint64_t end_clock,
                                std::uint64_t reserve, bool* completed);

/// Convenience: unbudgeted Explore.
[[nodiscard]] sim::Proc explore_full(sim::Mailbox& mb, std::uint32_t d,
                                     std::uint64_t delta);

}  // namespace rdv::core
