#include "core/asymm_rv.hpp"

#include "core/bounds.hpp"
#include "core/explore.hpp"
#include "core/signature.hpp"
#include "support/saturating.hpp"

namespace rdv::core {

using sim::Mailbox;
using sim::Observation;
using sim::Proc;
using support::sat_add;
using support::sat_mul;
using support::sat_pow;

namespace {

/// One explore-and-return: walk the application of Y, backtrack home.
/// Exactly explore_return_rounds(M) = 2(M+1) rounds.
Proc uxs_explore_return(Mailbox& mb, const uxs::Uxs& y) {
  std::vector<graph::Port> entries;
  entries.reserve(y.length() + 1);
  Observation o = co_await mb.move(0);
  entries.push_back(*o.entry_port);
  for (std::uint64_t a : y.terms()) {
    const graph::Port port =
        static_cast<graph::Port>((*o.entry_port + a) % o.degree);
    o = co_await mb.move(port);
    entries.push_back(*o.entry_port);
  }
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    co_await mb.move(*it);
  }
}

/// Waits out the rest of the budget; the agent must be at its home.
Proc drain(Mailbox& mb, std::uint64_t end_clock) {
  if (mb.clock() < end_clock) co_await mb.wait(end_clock - mb.clock());
}

}  // namespace

Proc asymm_rv(Mailbox& mb, std::uint32_t n, const uxs::Uxs& y,
              std::uint64_t end_clock,
              std::optional<std::vector<bool>> label) {
  const std::uint64_t E = explore_return_rounds(y.length());
  auto remaining = [&]() -> std::uint64_t {
    return end_clock > mb.clock() ? end_clock - mb.clock() : 0;
  };

  std::vector<bool> bits;
  if (label.has_value()) {
    bits = std::move(*label);
  } else {
    if (remaining() < E) {
      co_await drain(mb, end_clock);
      co_return;
    }
    co_await signature_walk(mb, n, y, &bits);
  }
  if (bits.empty()) bits.push_back(true);  // degenerate label: explore

  for (std::uint32_t p = 0;; ++p) {
    const std::uint64_t block = sat_mul(E, sat_pow(2, p + 2));
    const std::uint64_t reps = block / E;
    for (const bool bit : bits) {
      if (bit) {
        for (std::uint64_t r = 0; r < reps; ++r) {
          if (remaining() < E) {
            co_await drain(mb, end_clock);
            co_return;
          }
          co_await uxs_explore_return(mb, y);
        }
      } else {
        if (remaining() < block) {
          co_await drain(mb, end_clock);
          co_return;
        }
        co_await mb.wait(block);
      }
    }
  }
}

sim::AgentProgram asymm_rv_program(std::uint32_t n, uxs::Uxs y,
                                   std::uint64_t budget,
                                   std::optional<std::vector<bool>> label) {
  return [n, y = std::move(y), budget, label = std::move(label)](
             Mailbox& mb, Observation) -> Proc {
    return [](Mailbox& mb2, std::uint32_t n2, uxs::Uxs y2,
              std::uint64_t budget2,
              std::optional<std::vector<bool>> label2) -> Proc {
      co_await asymm_rv(mb2, n2, y2, sat_add(mb2.clock(), budget2),
                        std::move(label2));
    }(mb, n, y, budget, label);
  };
}

}  // namespace rdv::core
