#pragma once

#include <cstdint>

#include "core/pairing.hpp"
#include "sim/agent.hpp"
#include "uxs/uxs.hpp"

/// Algorithm UniversalRV (Algorithm 3, Section 3.2): rendezvous for
/// every feasible STIC with zero a-priori knowledge.
///
/// Phases P = 1, 2, ...: (n, d, delta) = g^{-1}(P). If d < n, run
/// AsymmRV(n) for asymm_rv_time_bound(n, delta) + delta rounds and
/// level to twice that (the paper's backtrack-and-wait); then if
/// delta >= d, run SymmRV(n, d, delta) and level to T(n, d, delta)
/// (Lemma 3.3). Every phase consumes an observation-independent number
/// of rounds ("budget-exact phases", DESIGN.md), so two agents always
/// enter each phase with their original delay intact; rendezvous is
/// then guaranteed at the latest in the first phase whose triple
/// dominates the true (n, Shrink, delta) of a feasible STIC.
namespace rdv::core {

struct UniversalOptions {
  /// Y(n) provider; must be deterministic (both anonymous agents derive
  /// the same sequences). Defaults to the corpus-verified cache.
  uxs::UxsProvider provider;
  /// Stop after this many phases (the program then halts in place);
  /// safety valve for simulations. kRoundInfinity = run forever.
  std::uint64_t max_phases = ~std::uint64_t{0};
  /// Ablations: disable one arm of each phase.
  bool enable_asymm = true;
  bool enable_symm = true;

  UniversalOptions();
};

/// The universal anonymous-rendezvous program.
[[nodiscard]] sim::AgentProgram universal_rv_program(
    UniversalOptions options = {});

/// The first phase index whose triple makes rendezvous certain for a
/// feasible STIC in a size-n graph: the minimal P with g^{-1}(P) =
/// (n, d, delta') and delta' >= delta — with d = Shrink(u,v) for
/// symmetric pairs, or the minimal such P over any d < n for
/// nonsymmetric pairs (their AsymmRV arm fires in every phase with the
/// right n). Used by tests and T5.
[[nodiscard]] std::uint64_t guaranteed_phase_symmetric(std::uint64_t n,
                                                       std::uint64_t shrink,
                                                       std::uint64_t delta);
[[nodiscard]] std::uint64_t guaranteed_phase_nonsymmetric(
    std::uint64_t n, std::uint64_t delta);

}  // namespace rdv::core
