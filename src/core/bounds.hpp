#pragma once

#include <cstdint>

/// Round-count formulas for the algorithms (all saturating uint64; a
/// saturated value means "astronomically large", which the engine's
/// wait fast-forwarding and round caps absorb).
namespace rdv::core {

/// Lemma 3.3: maximum execution time of SymmRV(n, d, delta) with a UXS
/// of length M:  T = [(d+delta) (n-1)^d] (M+2) + 2(M+1).
[[nodiscard]] std::uint64_t symm_rv_time_bound(std::uint64_t n,
                                               std::uint64_t d,
                                               std::uint64_t delta,
                                               std::uint64_t M);

/// Duration of one explore-and-return over a UXS of length M: the
/// application path has M+1 edges, walked out and back.
[[nodiscard]] std::uint64_t explore_return_rounds(std::uint64_t M);

/// Number of signature bits AsymmRV derives from a UXS walk on an
/// assumed size-n graph: M+1 arrivals, each encoded as fixed-width
/// (entry port, degree) with w = bits_for(n) bits per field.
[[nodiscard]] std::uint64_t asymm_signature_bits(std::uint64_t n,
                                                 std::uint64_t M);

/// Our AsymmRV substitute's meeting bound (DESIGN.md §2.2): the
/// signature walk plus doubling explore-or-wait phases p = 0, 1, ...
/// with block length B_p = E * 2^(p+2); the first phase with
/// B_p >= 2E + delta meets (signatures differing). Returns the total
/// rounds through the end of that phase. Polynomial in n and delta.
[[nodiscard]] std::uint64_t asymm_rv_time_bound(std::uint64_t n,
                                                std::uint64_t delta,
                                                std::uint64_t M);

/// Deterministic duration of UniversalRV's phase (n, d, delta) under
/// the budget-exact discipline (DESIGN.md): zero when d >= n; otherwise
/// 2*(asymm_bound + delta) plus, when delta >= d, the SymmRV budget
/// T(n, d, delta).
[[nodiscard]] std::uint64_t universal_phase_duration(std::uint64_t n,
                                                     std::uint64_t d,
                                                     std::uint64_t delta,
                                                     std::uint64_t M);

}  // namespace rdv::core
