#include "core/symm_rv.hpp"

#include <stdexcept>
#include <vector>

#include "core/explore.hpp"

namespace rdv::core {

using sim::Mailbox;
using sim::Observation;
using sim::Proc;

namespace {

/// Walks home along recorded entry ports and, under a finite deadline,
/// waits out the remaining budget there.
Proc go_home_and_level(Mailbox& mb, std::vector<graph::Port> home_entries,
                       std::uint64_t end_clock) {
  for (auto it = home_entries.rbegin(); it != home_entries.rend(); ++it) {
    co_await mb.move(*it);
  }
  if (end_clock != kNoDeadline && mb.clock() < end_clock) {
    co_await mb.wait(end_clock - mb.clock());
  }
}

}  // namespace

Proc symm_rv(Mailbox& mb, std::uint32_t n, std::uint32_t d,
             std::uint64_t delta, const uxs::Uxs& y,
             std::uint64_t end_clock, bool* completed) {
  if (delta < d) throw std::invalid_argument("symm_rv: requires delta >= d");
  (void)n;  // n fixes Y(n) = y and appears in the time bound only
  *completed = false;

  // Entry ports along u_0 .. u_i, for the final backtrack (and for
  // budget-truncated early returns).
  std::vector<graph::Port> home_entries;
  home_entries.reserve(y.length() + 1);
  bool sub_completed = false;

  // Explore(u_0, d, delta).
  co_await explore(mb, d, delta, end_clock, 0, &sub_completed);
  if (!sub_completed) {
    co_await go_home_and_level(mb, std::move(home_entries), end_clock);
    co_return;
  }

  // u_1 = succ(u_0, 0), then Explore(u_1, d, delta).
  if (end_clock != kNoDeadline && mb.clock() + 1 + 1 > end_clock) {
    co_await go_home_and_level(mb, std::move(home_entries), end_clock);
    co_return;
  }
  Observation o = co_await mb.move(0);
  home_entries.push_back(*o.entry_port);
  graph::Port entry = *o.entry_port;
  co_await explore(mb, d, delta, end_clock, home_entries.size(),
                   &sub_completed);
  if (!sub_completed) {
    co_await go_home_and_level(mb, std::move(home_entries), end_clock);
    co_return;
  }

  // for i = 1..M: u_{i+1} = succ(u_i, (q + a_i) mod d(u_i)); Explore.
  for (std::uint64_t a : y.terms()) {
    const graph::Port deg = mb.last().degree;
    const graph::Port port = static_cast<graph::Port>((entry + a) % deg);
    if (end_clock != kNoDeadline &&
        mb.clock() + 1 + (home_entries.size() + 1) > end_clock) {
      co_await go_home_and_level(mb, std::move(home_entries), end_clock);
      co_return;
    }
    o = co_await mb.move(port);
    entry = *o.entry_port;
    home_entries.push_back(entry);
    co_await explore(mb, d, delta, end_clock, home_entries.size(),
                     &sub_completed);
    if (!sub_completed) {
      co_await go_home_and_level(mb, std::move(home_entries), end_clock);
      co_return;
    }
  }

  // Go back to u_0 along the traversed path.
  for (auto it = home_entries.rbegin(); it != home_entries.rend(); ++it) {
    co_await mb.move(*it);
  }
  *completed = true;
}

sim::AgentProgram symm_rv_program(std::uint32_t n, std::uint32_t d,
                                  std::uint64_t delta, uxs::Uxs y) {
  return [n, d, delta, y = std::move(y)](Mailbox& mb,
                                         Observation) -> Proc {
    return [](Mailbox& mb2, std::uint32_t n2, std::uint32_t d2,
              std::uint64_t delta2, uxs::Uxs y2) -> Proc {
      bool completed = false;
      co_await symm_rv(mb2, n2, d2, delta2, y2, kNoDeadline, &completed);
    }(mb, n, d, delta, y);
  };
}

}  // namespace rdv::core
