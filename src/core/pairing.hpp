#pragma once

#include <cstdint>
#include <utility>

/// The phase-enumeration bijections of Section 3.2.
///
/// f(x, y) = x + (x+y-1)(x+y-2)/2 is a bijection from N+ x N+ onto N+
/// (Cantor); g(x, y, z) = f(f(x, y), z) is a bijection from N+^3 onto
/// N+. UniversalRV runs phases P = 1, 2, ... with (n, d, delta) =
/// g^{-1}(P) as the assumed graph size, Shrink value and delay.
namespace rdv::core {

/// A decoded phase triple; all components are positive.
struct PhaseTriple {
  std::uint64_t n = 1;
  std::uint64_t d = 1;
  std::uint64_t delta = 1;

  friend bool operator==(const PhaseTriple&, const PhaseTriple&) = default;
};

/// f(x, y); x, y >= 1. Saturation-free for all realistic phases; callers
/// keep arguments below 2^31.
[[nodiscard]] std::uint64_t cantor_f(std::uint64_t x, std::uint64_t y);

/// f^{-1}(w); w >= 1.
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> cantor_f_inverse(
    std::uint64_t w);

/// g(n, d, delta).
[[nodiscard]] std::uint64_t phase_encode(const PhaseTriple& t);

/// g^{-1}(P); P >= 1.
[[nodiscard]] PhaseTriple phase_decode(std::uint64_t P);

}  // namespace rdv::core
