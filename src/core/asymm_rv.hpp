#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/agent.hpp"
#include "uxs/uxs.hpp"

/// Procedure AsymmRV(n) — substitute for the [CKP12] log-space
/// rendezvous invoked by Proposition 3.1 (see DESIGN.md §2.2).
///
/// Mechanism: derive a label from the UXS observation signature, then
/// time-multiplex explore-or-wait blocks with doubling block lengths
/// B_p = E * 2^(p+2) (E = one explore-and-return). For any two agents
/// whose labels differ at some bit, the first phase with B_p >= 2E +
/// delta contains a full exploration by one agent strictly inside a
/// wait block of the other, and exploration visits all nodes — meeting
/// guaranteed. Runs under an exact round budget (consumes precisely
/// end_clock - start rounds, ending at the start node) so UniversalRV's
/// phases stay in lockstep.
namespace rdv::core {

/// Budget-exact AsymmRV at the agent's current node. If `label`
/// is provided it overrides the signature (oracle mode, T9 ablation).
[[nodiscard]] sim::Proc asymm_rv(
    sim::Mailbox& mb, std::uint32_t n, const uxs::Uxs& y,
    std::uint64_t end_clock,
    std::optional<std::vector<bool>> label = std::nullopt);

/// Standalone program for experiments: runs AsymmRV with the given
/// round budget, then halts in place.
[[nodiscard]] sim::AgentProgram asymm_rv_program(
    std::uint32_t n, uxs::Uxs y, std::uint64_t budget,
    std::optional<std::vector<bool>> label = std::nullopt);

}  // namespace rdv::core
