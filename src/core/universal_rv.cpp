#include "core/universal_rv.hpp"

#include <algorithm>

#include "cache/artifact_cache.hpp"
#include "core/asymm_rv.hpp"
#include "core/bounds.hpp"
#include "core/symm_rv.hpp"
#include "support/saturating.hpp"

namespace rdv::core {

using sim::Mailbox;
using sim::Observation;
using sim::Proc;
using support::kRoundInfinity;
using support::sat_add;
using support::sat_mul;

UniversalOptions::UniversalOptions()
    : provider(cache::cached_uxs_provider()) {}

namespace {

Proc universal_body(Mailbox& mb, UniversalOptions options) {
  for (std::uint64_t P = 1; P <= options.max_phases; ++P) {
    const PhaseTriple t = phase_decode(P);
    // Shrink is a distance within the graph, so it must be < n.
    if (t.d >= t.n) continue;
    const uxs::Uxs y = options.provider(static_cast<std::uint32_t>(t.n));
    const std::uint64_t M = y.length();

    // --- AsymmRV arm: budget A + delta, then level to 2(A + delta) ---
    const std::uint64_t A = asymm_rv_time_bound(t.n, t.delta, M);
    const std::uint64_t half_segment = sat_add(A, t.delta);
    const std::uint64_t asymm_end = sat_add(mb.clock(), half_segment);
    const std::uint64_t segment_end = sat_add(asymm_end, half_segment);
    if (options.enable_asymm) {
      co_await asymm_rv(mb, static_cast<std::uint32_t>(t.n), y, asymm_end);
    }
    if (mb.clock() < segment_end) {
      co_await mb.wait(segment_end - mb.clock());
    }

    // --- SymmRV arm (only when the assumed delay allows d <= delta) ---
    if (t.delta >= t.d) {
      const std::uint64_t T = symm_rv_time_bound(t.n, t.d, t.delta, M);
      const std::uint64_t symm_end = sat_add(mb.clock(), T);
      if (options.enable_symm) {
        bool completed = false;
        co_await symm_rv(mb, static_cast<std::uint32_t>(t.n),
                         static_cast<std::uint32_t>(t.d), t.delta, y,
                         symm_end, &completed);
      }
      if (mb.clock() < symm_end) {
        co_await mb.wait(symm_end - mb.clock());
      }
    }
  }
}

}  // namespace

sim::AgentProgram universal_rv_program(UniversalOptions options) {
  return [options = std::move(options)](Mailbox& mb,
                                        Observation) -> Proc {
    return universal_body(mb, options);
  };
}

std::uint64_t guaranteed_phase_symmetric(std::uint64_t n,
                                         std::uint64_t shrink,
                                         std::uint64_t delta) {
  // The SymmRV arm of phase (n, shrink, delta') meets whenever
  // delta' >= delta >= shrink; pick the smallest encoding.
  std::uint64_t best = kRoundInfinity;
  for (std::uint64_t dprime = std::max<std::uint64_t>(delta, 1);
       dprime <= std::max<std::uint64_t>(delta, 1) + 8; ++dprime) {
    best = std::min(best, phase_encode(PhaseTriple{n, shrink, dprime}));
  }
  return best;
}

std::uint64_t guaranteed_phase_nonsymmetric(std::uint64_t n,
                                            std::uint64_t delta) {
  // The AsymmRV arm fires in every phase with first coordinate n and
  // assumed delay >= the true delay; minimize over d < n.
  std::uint64_t best = kRoundInfinity;
  for (std::uint64_t d = 1; d < n; ++d) {
    for (std::uint64_t dprime = std::max<std::uint64_t>(delta, 1);
         dprime <= std::max<std::uint64_t>(delta, 1) + 8; ++dprime) {
      best = std::min(best, phase_encode(PhaseTriple{n, d, dprime}));
    }
  }
  return best;
}

}  // namespace rdv::core
