#include "core/bounds.hpp"

#include "support/saturating.hpp"

namespace rdv::core {

using support::sat_add;
using support::sat_mul;
using support::sat_pow;
using support::sat_sub;

std::uint64_t symm_rv_time_bound(std::uint64_t n, std::uint64_t d,
                                 std::uint64_t delta, std::uint64_t M) {
  // [(d+delta) (n-1)^d] (M+2) + 2(M+1).
  const std::uint64_t per_node =
      sat_mul(sat_add(d, delta), sat_pow(sat_sub(n, 1), d));
  return sat_add(sat_mul(per_node, sat_add(M, 2)),
                 sat_mul(2, sat_add(M, 1)));
}

std::uint64_t explore_return_rounds(std::uint64_t M) {
  return sat_mul(2, sat_add(M, 1));
}

std::uint64_t asymm_signature_bits(std::uint64_t n, std::uint64_t M) {
  const std::uint64_t w = support::bits_for(n == 0 ? 1 : n);
  return sat_mul(sat_add(M, 1), sat_mul(2, w));
}

std::uint64_t asymm_rv_time_bound(std::uint64_t n, std::uint64_t delta,
                                  std::uint64_t M) {
  const std::uint64_t E = explore_return_rounds(M);
  const std::uint64_t bits = asymm_signature_bits(n, M);
  std::uint64_t total = E;  // the signature walk
  for (std::uint32_t p = 0;; ++p) {
    const std::uint64_t block = sat_mul(E, sat_pow(2, p + 2));
    total = sat_add(total, sat_mul(bits, block));
    if (block >= sat_add(sat_mul(2, E), delta)) break;
    if (block == support::kRoundInfinity) break;
  }
  return total;
}

std::uint64_t universal_phase_duration(std::uint64_t n, std::uint64_t d,
                                       std::uint64_t delta,
                                       std::uint64_t M) {
  if (d >= n) return 0;
  const std::uint64_t asymm_segment =
      sat_mul(2, sat_add(asymm_rv_time_bound(n, delta, M), delta));
  if (delta < d) return asymm_segment;
  return sat_add(asymm_segment, symm_rv_time_bound(n, d, delta, M));
}

}  // namespace rdv::core
