#include "core/signature.hpp"

#include "support/saturating.hpp"

namespace rdv::core {

using sim::Mailbox;
using sim::Observation;
using sim::Proc;

namespace {

void append_fixed_width(std::vector<bool>* bits, std::uint64_t value,
                        unsigned width) {
  for (unsigned b = width; b-- > 0;) {
    bits->push_back(((value >> b) & 1u) != 0);
  }
}

}  // namespace

Proc signature_walk(Mailbox& mb, std::uint32_t n, const uxs::Uxs& y,
                    std::vector<bool>* bits_out) {
  const unsigned width = support::bits_for(n == 0 ? 1 : n);
  std::vector<graph::Port> entries;
  entries.reserve(y.length() + 1);

  Observation o = co_await mb.move(0);
  entries.push_back(*o.entry_port);
  append_fixed_width(bits_out, *o.entry_port & ((1ull << width) - 1), width);
  append_fixed_width(bits_out, o.degree & ((1ull << width) - 1), width);
  for (std::uint64_t a : y.terms()) {
    const graph::Port port =
        static_cast<graph::Port>((*o.entry_port + a) % o.degree);
    o = co_await mb.move(port);
    entries.push_back(*o.entry_port);
    append_fixed_width(bits_out, *o.entry_port & ((1ull << width) - 1),
                       width);
    append_fixed_width(bits_out, o.degree & ((1ull << width) - 1), width);
  }
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    co_await mb.move(*it);
  }
}

std::vector<bool> signature_offline(const graph::ITopology& g,
                                    graph::Node start, std::uint32_t n,
                                    const uxs::Uxs& y) {
  const unsigned width = support::bits_for(n == 0 ? 1 : n);
  std::vector<bool> bits;
  graph::Step s = g.step(start, 0);
  append_fixed_width(&bits, s.entry_port & ((1ull << width) - 1), width);
  append_fixed_width(&bits, g.degree(s.to) & ((1ull << width) - 1), width);
  for (std::uint64_t a : y.terms()) {
    const graph::Port port =
        static_cast<graph::Port>((s.entry_port + a) % g.degree(s.to));
    s = g.step(s.to, port);
    append_fixed_width(&bits, s.entry_port & ((1ull << width) - 1), width);
    append_fixed_width(&bits, g.degree(s.to) & ((1ull << width) - 1), width);
  }
  return bits;
}

}  // namespace rdv::core
