#include "core/random_walk.hpp"

#include <stdexcept>

#include "support/splitmix.hpp"

namespace rdv::core {

using sim::Mailbox;
using sim::Observation;
using sim::Proc;

namespace {

Proc walk_body(Mailbox& mb, std::uint64_t seed,
               std::uint32_t stay_permille) {
  support::SplitMix64 rng(seed);
  for (;;) {
    if (stay_permille > 0 && rng.next_below(1000) < stay_permille) {
      co_await mb.wait(1);
      continue;
    }
    const graph::Port degree = mb.last().degree;
    co_await mb.move(static_cast<graph::Port>(rng.next_below(degree)));
  }
}

}  // namespace

sim::AgentProgram random_walk_program(std::uint64_t seed) {
  return [seed](Mailbox& mb, Observation) -> Proc {
    return walk_body(mb, seed, 0);
  };
}

sim::AgentProgram lazy_random_walk_program(std::uint64_t seed,
                                           std::uint32_t stay_permille) {
  if (stay_permille >= 1000) {
    throw std::invalid_argument(
        "lazy_random_walk_program: stay_permille must be < 1000");
  }
  return [seed, stay_permille](Mailbox& mb, Observation) -> Proc {
    return walk_body(mb, seed, stay_permille);
  };
}

}  // namespace rdv::core
