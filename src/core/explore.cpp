#include "core/explore.hpp"

#include <stdexcept>

namespace rdv::core {

using sim::Mailbox;
using sim::Observation;
using sim::Proc;

Proc explore(Mailbox& mb, std::uint32_t d, std::uint64_t delta,
             std::uint64_t end_clock, std::uint64_t reserve,
             bool* completed) {
  if (delta < d) {
    throw std::invalid_argument("explore: requires delta >= d");
  }
  *completed = false;
  if (d == 0) {
    // Degenerate single empty path: the iteration is a pure wait.
    if (end_clock == kNoDeadline ||
        mb.clock() + delta + reserve <= end_clock) {
      if (delta > 0) co_await mb.wait(delta);
      *completed = true;
    }
    co_return;
  }

  std::vector<graph::Port> path(d, 0);      // current port sequence
  std::vector<graph::Port> degrees(d, 0);   // degree before step i
  std::vector<graph::Port> entries(d, 0);   // entry ports of traversal
  const std::uint64_t iteration_cost = static_cast<std::uint64_t>(d) + delta;

  for (;;) {
    if (end_clock != kNoDeadline &&
        mb.clock() + iteration_cost + reserve > end_clock) {
      co_return;  // would overrun; agent is at u
    }
    // Traverse the path, recording degrees (for the lexicographic
    // successor) and entry ports (for the reverse path).
    for (std::uint32_t i = 0; i < d; ++i) {
      degrees[i] = mb.last().degree;
      const Observation o = co_await mb.move(path[i]);
      entries[i] = *o.entry_port;
    }
    // Reverse path back to u.
    for (std::uint32_t i = d; i-- > 0;) {
      co_await mb.move(entries[i]);
    }
    if (delta > d) co_await mb.wait(delta - d);

    // Lexicographic successor under the discovered degrees; prefix
    // degrees stay valid because the prefix nodes are unchanged.
    std::uint32_t i = d;
    while (i-- > 0) {
      if (path[i] + 1 < degrees[i]) {
        ++path[i];
        for (std::uint32_t j = i + 1; j < d; ++j) path[j] = 0;
        break;
      }
      if (i == 0) {
        *completed = true;
        co_return;
      }
    }
  }
}

Proc explore_full(Mailbox& mb, std::uint32_t d, std::uint64_t delta) {
  bool completed = false;
  co_await explore(mb, d, delta, kNoDeadline, 0, &completed);
}

}  // namespace rdv::core
