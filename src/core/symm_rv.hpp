#pragma once

#include <cstdint>

#include "sim/agent.hpp"
#include "uxs/uxs.hpp"

/// Procedure SymmRV(n, d, delta) — Algorithm 1.
///
/// Follows the application R(u) of the UXS Y(n) from the agent's start
/// node, executing Explore(u_i, d, delta) at every node of R(u), then
/// backtracks to the start. Lemma 3.2: if the agents' start nodes are
/// symmetric, d = Shrink(u, v), and the actual delay is in [d, delta],
/// both agents executing this procedure meet before it ends.
namespace rdv::core {

/// Runs SymmRV at the agent's current node; the agent ends back there.
/// Requires delta >= d. With a finite end_clock the procedure is
/// truncated so the agent is home by end_clock (sets *completed =
/// false); this never triggers when n really bounds the graph size,
/// because the procedure then finishes within symm_rv_time_bound
/// (Lemma 3.3).
[[nodiscard]] sim::Proc symm_rv(sim::Mailbox& mb, std::uint32_t n,
                                std::uint32_t d, std::uint64_t delta,
                                const uxs::Uxs& y, std::uint64_t end_clock,
                                bool* completed);

/// Standalone single-shot program for experiments with known
/// parameters: runs SymmRV once, then halts in place.
[[nodiscard]] sim::AgentProgram symm_rv_program(std::uint32_t n,
                                                std::uint32_t d,
                                                std::uint64_t delta,
                                                uxs::Uxs y);

}  // namespace rdv::core
