#pragma once

#include <cstdint>
#include <vector>

#include "sim/agent.hpp"
#include "uxs/uxs.hpp"

/// Observation signatures (DESIGN.md §2.2).
///
/// An agent walks the application of Y(n) from its start node recording
/// the (entry port, degree) pair of every arrival, then backtracks
/// home. The resulting fixed-width bit string is its label: by the
/// Chalopin–Das–Kosowski map construction, UXS observation traces
/// separate nodes with different views, so nonsymmetric starting
/// positions yield different labels (cross-validated against the exact
/// view oracle in tests and the T9 ablation).
namespace rdv::core {

/// Physically walks Y from the current node and returns home; appends
/// (M+1) * 2 * bits_for(n) bits to *bits_out. Duration: exactly
/// explore_return_rounds(M) = 2(M+1) rounds, observation-independent.
[[nodiscard]] sim::Proc signature_walk(sim::Mailbox& mb, std::uint32_t n,
                                       const uxs::Uxs& y,
                                       std::vector<bool>* bits_out);

/// Observer-side computation of the same signature (no engine); used by
/// tests and analysis to predict labels.
[[nodiscard]] std::vector<bool> signature_offline(const graph::ITopology& g,
                                                  graph::Node start,
                                                  std::uint32_t n,
                                                  const uxs::Uxs& y);

}  // namespace rdv::core
