#include "core/pairing.hpp"

#include <cassert>
#include <cmath>

namespace rdv::core {

std::uint64_t cantor_f(std::uint64_t x, std::uint64_t y) {
  assert(x >= 1 && y >= 1);
  const std::uint64_t s = x + y;
  return x + (s - 1) * (s - 2) / 2;
}

std::pair<std::uint64_t, std::uint64_t> cantor_f_inverse(std::uint64_t w) {
  assert(w >= 1);
  // Find s = x + y: the unique s >= 2 with (s-1)(s-2)/2 < w <=
  // (s-1)(s-2)/2 + (s-1). Start from the real solution and adjust to be
  // safe against floating point rounding.
  std::uint64_t s = static_cast<std::uint64_t>(
      (3.0 + std::sqrt(8.0 * static_cast<double>(w) - 7.0)) / 2.0);
  if (s < 2) s = 2;
  auto base = [](std::uint64_t t) { return (t - 1) * (t - 2) / 2; };
  while (base(s) >= w) --s;
  while (base(s + 1) < w) ++s;
  const std::uint64_t x = w - base(s);
  assert(x >= 1 && x <= s - 1);
  return {x, s - x};
}

std::uint64_t phase_encode(const PhaseTriple& t) {
  return cantor_f(cantor_f(t.n, t.d), t.delta);
}

PhaseTriple phase_decode(std::uint64_t P) {
  const auto [w, delta] = cantor_f_inverse(P);
  const auto [n, d] = cantor_f_inverse(w);
  return PhaseTriple{n, d, delta};
}

}  // namespace rdv::core
