#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "analysis/stics.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"

/// Shared utilities for the bench binaries (one per experiment table;
/// see DESIGN.md §3 and EXPERIMENTS.md).
namespace rdv::analysis {

/// Runs the anonymous program on the STIC; returns rounds from the
/// later agent's start if they met within the cap.
[[nodiscard]] std::optional<std::uint64_t> measured_rendezvous(
    const graph::ITopology& g, const sim::AgentProgram& program,
    const Stic& stic, std::uint64_t max_rounds);

/// "123" or "no-meet(cap=...)" for table cells.
[[nodiscard]] std::string rendezvous_cell(
    const std::optional<std::uint64_t>& rounds, std::uint64_t cap);

/// True when REPRO_FULL=1 is set: benches then run their larger sweeps.
[[nodiscard]] bool full_mode();

/// Prints the table (with a heading) and, when REPRO_CSV_DIR is set,
/// additionally writes `<dir>/<experiment_id>.csv` so downstream
/// plotting scripts can consume the raw rows. Returns the CSV path, or
/// empty if not written.
std::string emit_table(const std::string& experiment_id,
                       const std::string& heading,
                       const support::Table& table);

}  // namespace rdv::analysis
