#pragma once

#include <cstdint>
#include <vector>

#include "analysis/stics.hpp"
#include "cache/artifact_cache.hpp"
#include "graph/graph.hpp"
#include "sim/agent.hpp"

/// Exhaustive search over oblivious deterministic algorithms.
///
/// An oblivious algorithm is a fixed action string: per round, wait or
/// "take port k" (applied modulo the current degree). For SYMMETRIC
/// starting positions this class is exactly as powerful as general
/// deterministic algorithms (both agents observe identical histories
/// until they meet — the argument of Lemma 3.1 — so any algorithm's
/// realized behaviour on the STIC is one such string); on the
/// port-homogeneous Q-hat graphs this holds for all positions (proof of
/// Theorem 4.1). The search therefore yields exact optima for T6 and
/// exhaustive infeasibility certificates for T7.
///
/// State space: (earlier position, later position, delta in-flight
/// actions); the search is a BFS, so the first meeting state gives the
/// minimum rendezvous time, and draining the finite space without
/// meeting PROVES that no oblivious algorithm ever meets.
namespace rdv::analysis {

enum class OptimalOutcome : std::uint8_t {
  kMet,                ///< Minimum meeting time found.
  kProvenInfeasible,   ///< Reachable state space drained without a meet.
  kHorizonExceeded,    ///< Search stopped at the round horizon.
};

/// One step of an oblivious action string (the searcher's alphabet):
/// 0 = wait, 1 + k = "take port k mod degree".
using ObliviousAction = std::uint64_t;

struct OptimalResult {
  OptimalOutcome outcome = OptimalOutcome::kHorizonExceeded;
  /// Rounds from the later agent's start (valid when kMet).
  std::uint64_t rounds = 0;
  std::uint64_t states_explored = 0;
  /// When requested (config.want_witness) and kMet: a shortest action
  /// string realizing the meeting. Its length is delay + rounds: the
  /// earlier agent executes it from round 0, the later from round
  /// `delay`.
  std::vector<ObliviousAction> witness;
};

struct OptimalSearchConfig {
  /// Stop exploring past this many rounds from the later agent's start.
  std::uint64_t horizon = 64;
  /// Hard cap on the state space n^2 * alphabet^delay (guards memory).
  std::uint64_t max_states = std::uint64_t{1} << 28;
  /// Record parent pointers and reconstruct a witness string (costs
  /// O(states) extra memory).
  bool want_witness = false;
};

/// Minimum rendezvous time over oblivious algorithms for
/// [(u, v), delay]. Throws std::invalid_argument when the state space
/// exceeds config.max_states.
[[nodiscard]] OptimalResult optimal_oblivious(
    const graph::Graph& g, graph::Node u, graph::Node v,
    std::uint64_t delay, const OptimalSearchConfig& config = {});

/// Turns an oblivious action string into an agent program (executes the
/// string, then halts in place). Used to replay witnesses through the
/// engine — the searcher and the simulator must agree.
[[nodiscard]] sim::AgentProgram oblivious_program(
    std::vector<ObliviousAction> actions);

/// STIC-level wrapper pairing the exhaustive search with the
/// Corollary 3.1 classification (resolved through the artifact cache,
/// so T7/T10-style sweeps over one graph classify against one shared
/// partition).
struct SticOptimal {
  ClassifiedStic cls;
  OptimalResult search;
  /// Search verdict vs the characterization. kMet on a
  /// predicted-infeasible STIC is a hard inconsistency; so is draining
  /// the state space (kProvenInfeasible) on a SYMMETRIC STIC predicted
  /// feasible (for symmetric positions oblivious strings are fully
  /// general — Lemma 3.1). kHorizonExceeded and nonsymmetric drains
  /// prove nothing and stay consistent.
  bool consistent = false;
};

/// Classifies the STIC through `cache` (nullptr: the global cache) and
/// runs optimal_oblivious on it.
[[nodiscard]] SticOptimal optimal_for_stic(
    const graph::Graph& g, const Stic& stic,
    const OptimalSearchConfig& config = {},
    cache::ArtifactCache* cache = nullptr);

}  // namespace rdv::analysis
