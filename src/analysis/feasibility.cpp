#include "analysis/feasibility.hpp"

#include <memory>

#include "cache/artifact_cache.hpp"
#include "support/thread_pool.hpp"

namespace rdv::analysis {

SticCheck verify_stic(const graph::Graph& g,
                      const views::ViewClasses& classes, const Stic& stic,
                      const sim::AgentProgram& program,
                      const sim::RunConfig& config) {
  SticCheck check;
  check.cls = classify_stic(g, classes, stic);
  check.run = sim::run_anonymous(g, program, stic.u, stic.v, stic.delay,
                                 config);
  check.consistent =
      check.run.ok() && (check.run.met == check.cls.feasible);
  return check;
}

SweepSummary feasibility_sweep(const graph::Graph& g,
                               std::uint64_t max_delay,
                               const sim::AgentProgram& program,
                               const sim::RunConfig& config) {
  const std::shared_ptr<const views::ViewClasses> classes =
      cache::cached_view_classes(g);
  const std::vector<Stic> stics = enumerate_stics(g, max_delay);
  SweepSummary summary;
  summary.checks.resize(stics.size());
  support::parallel_for(
      support::default_pool(), 0, stics.size(), [&](std::size_t i) {
        summary.checks[i] =
            verify_stic(g, *classes, stics[i], program, config);
      });
  for (const SticCheck& check : summary.checks) {
    if (check.cls.feasible) {
      ++summary.feasible;
    } else {
      ++summary.infeasible;
    }
    if (!check.consistent) ++summary.inconsistent;
  }
  return summary;
}

}  // namespace rdv::analysis
