#include "analysis/steiner.hpp"

#include <vector>

#include "graph/families/qhat.hpp"

namespace rdv::analysis {

using sim::Mailbox;
using sim::Observation;
using sim::Proc;

std::uint64_t theorem41_lower_bound(std::uint32_t k) {
  return k == 0 ? 0 : (std::uint64_t{1} << (k - 1));
}

std::uint64_t midpoint_count(std::uint32_t k) {
  return std::uint64_t{1} << k;
}

std::uint64_t steiner_closed_walk(std::uint32_t k) {
  return 2 * ((std::uint64_t{2} << k) - 2);
}

namespace {

Proc dedicated_z_body(Mailbox& mb, std::uint32_t k) {
  const auto gammas = graph::families::qhat_gamma_strings(k);
  std::vector<graph::Port> entries;
  entries.reserve(2 * k);
  for (const auto& gamma : gammas) {
    entries.clear();
    // Traverse gamma gamma.
    for (int rep = 0; rep < 2; ++rep) {
      for (const graph::Port p : gamma) {
        const Observation o = co_await mb.move(p);
        entries.push_back(*o.entry_port);
      }
    }
    // Walk back home.
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      co_await mb.move(*it);
    }
  }
}

}  // namespace

sim::AgentProgram dedicated_z_program(std::uint32_t k) {
  return [k](Mailbox& mb, Observation) -> Proc {
    return dedicated_z_body(mb, k);
  };
}

std::uint64_t dedicated_z_predicted_rounds(std::uint32_t k,
                                           std::uint64_t i) {
  return 4ull * k * (i - 1);
}

}  // namespace rdv::analysis
