#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "views/refinement.hpp"

/// Space-time initial configurations (STICs) and their classification.
namespace rdv::analysis {

/// STIC [(u, v), delta]: u is the earlier agent's start node, v the
/// later agent's, delta the delay between their starting rounds.
struct Stic {
  graph::Node u = 0;
  graph::Node v = 0;
  std::uint64_t delay = 0;

  friend bool operator==(const Stic&, const Stic&) = default;
};

/// Classification per Corollary 3.1.
struct ClassifiedStic {
  Stic stic;
  bool symmetric = false;
  /// Shrink(u, v); meaningful for the characterization when symmetric
  /// (computed for every pair — for nonsymmetric pairs it is still the
  /// min same-sequence distance, reported for diagnostics).
  std::uint32_t shrink = 0;
  /// Corollary 3.1: feasible iff nonsymmetric, or delta >= Shrink.
  bool feasible = false;
};

/// Classify one STIC (computes symmetry and Shrink).
[[nodiscard]] ClassifiedStic classify_stic(const graph::Graph& g,
                                           const Stic& stic);

/// Classify against precomputed view classes (avoids recomputing the
/// partition in sweeps).
[[nodiscard]] ClassifiedStic classify_stic(const graph::Graph& g,
                                           const views::ViewClasses& classes,
                                           const Stic& stic);

/// All ordered STICs (u != v) with delays 0..max_delay.
[[nodiscard]] std::vector<Stic> enumerate_stics(const graph::Graph& g,
                                                std::uint64_t max_delay);

}  // namespace rdv::analysis
