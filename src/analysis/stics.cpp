#include "analysis/stics.hpp"

#include "cache/artifact_cache.hpp"
#include "views/shrink.hpp"

namespace rdv::analysis {

ClassifiedStic classify_stic(const graph::Graph& g, const Stic& stic) {
  // The convenience overload resolves the partition through the global
  // artifact cache: callers classifying many STICs of one graph without
  // precomputing classes no longer pay O(n^2 m) per call.
  return classify_stic(g, *cache::cached_view_classes(g), stic);
}

ClassifiedStic classify_stic(const graph::Graph& g,
                             const views::ViewClasses& classes,
                             const Stic& stic) {
  ClassifiedStic out;
  out.stic = stic;
  out.symmetric = classes.symmetric(stic.u, stic.v);
  out.shrink = views::shrink(g, stic.u, stic.v);
  out.feasible = !out.symmetric || stic.delay >= out.shrink;
  return out;
}

std::vector<Stic> enumerate_stics(const graph::Graph& g,
                                  std::uint64_t max_delay) {
  std::vector<Stic> stics;
  for (graph::Node u = 0; u < g.size(); ++u) {
    for (graph::Node v = 0; v < g.size(); ++v) {
      if (u == v) continue;
      for (std::uint64_t delay = 0; delay <= max_delay; ++delay) {
        stics.push_back(Stic{u, v, delay});
      }
    }
  }
  return stics;
}

}  // namespace rdv::analysis
