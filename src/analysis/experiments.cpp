#include "analysis/experiments.hpp"

#include <cstdio>
#include <fstream>

#include "support/env.hpp"

namespace rdv::analysis {

std::optional<std::uint64_t> measured_rendezvous(
    const graph::ITopology& g, const sim::AgentProgram& program,
    const Stic& stic, std::uint64_t max_rounds) {
  sim::RunConfig config;
  config.max_rounds = max_rounds;
  const sim::RunResult run =
      sim::run_anonymous(g, program, stic.u, stic.v, stic.delay, config);
  if (run.met) return run.meet_from_later_start;
  return std::nullopt;
}

std::string rendezvous_cell(const std::optional<std::uint64_t>& rounds,
                            std::uint64_t cap) {
  if (rounds) return std::to_string(*rounds);
  return "no-meet(cap=" + std::to_string(cap) + ")";
}

bool full_mode() { return support::repro_full(); }

std::string emit_table(const std::string& experiment_id,
                       const std::string& heading,
                       const support::Table& table) {
  std::printf("%s\n%s", heading.c_str(), table.to_markdown().c_str());
  const std::string dir = support::repro_csv_dir();
  if (dir.empty()) return {};
  const std::string path = dir + "/" + experiment_id + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return {};
  }
  out << table.to_csv();
  return path;
}

}  // namespace rdv::analysis
