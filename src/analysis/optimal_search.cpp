#include "analysis/optimal_search.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "support/saturating.hpp"

namespace rdv::analysis {

using graph::Graph;
using graph::Node;
using graph::Port;

OptimalResult optimal_oblivious(const Graph& g, Node u, Node v,
                                std::uint64_t delay,
                                const OptimalSearchConfig& config) {
  const std::uint64_t n = g.size();
  const std::uint64_t alphabet = g.max_degree() + 1;  // wait + ports

  std::uint64_t buffer_space = 1;
  for (std::uint64_t i = 0; i < delay; ++i) {
    buffer_space = support::sat_mul(buffer_space, alphabet);
  }
  const std::uint64_t state_space =
      support::sat_mul(n * n, buffer_space);
  if (state_space > config.max_states) {
    throw std::invalid_argument(
        "optimal_oblivious: state space exceeds max_states");
  }

  // Action 0 = wait; action 1 + k = "port k mod degree".
  const auto apply = [&](Node pos, std::uint64_t action) -> Node {
    if (action == 0) return pos;
    const Port p = static_cast<Port>((action - 1) % g.degree(pos));
    return g.step(pos, p).to;
  };
  const auto encode = [&](Node p1, Node p2, std::uint64_t buf) {
    return (static_cast<std::uint64_t>(p1) * n + p2) * buffer_space + buf;
  };
  const auto decode_buffer_oldest_first = [&](std::uint64_t buf) {
    std::vector<ObliviousAction> actions(delay);
    for (std::uint64_t i = 0; i < delay; ++i) {
      actions[i] = buf % alphabet;
      buf /= alphabet;
    }
    return actions;
  };

  // Parent tracking for witness reconstruction (optional).
  constexpr std::uint64_t kSeed = static_cast<std::uint64_t>(-1);
  struct Parent {
    std::uint64_t from;
    ObliviousAction action;
  };
  std::unordered_map<std::uint64_t, Parent> parents;
  const auto build_witness = [&](std::uint64_t last_state,
                                 ObliviousAction last_action,
                                 bool transition) {
    std::vector<ObliviousAction> tail;
    if (transition) tail.push_back(last_action);
    std::uint64_t cursor = last_state;
    for (;;) {
      const Parent& p = parents.at(cursor);
      if (p.from == kSeed) break;
      tail.push_back(p.action);
      cursor = p.from;
    }
    std::reverse(tail.begin(), tail.end());
    std::vector<ObliviousAction> witness =
        decode_buffer_oldest_first(cursor % buffer_space);
    witness.insert(witness.end(), tail.begin(), tail.end());
    return witness;
  };

  std::vector<bool> visited(state_space, false);
  struct Entry {
    std::uint64_t id;
    std::uint64_t level;  // rounds from the later agent's start
  };
  std::deque<Entry> queue;
  OptimalResult result;
  bool horizon_hit = false;

  // Seed: every choice of the first `delay` actions. The earlier agent
  // has executed them; the later agent appears at v.
  std::uint64_t top_digit = 1;
  for (std::uint64_t i = 0; i + 1 < delay; ++i) top_digit *= alphabet;
  for (std::uint64_t buf = 0; buf < buffer_space; ++buf) {
    Node p1 = u;
    for (const ObliviousAction a : decode_buffer_oldest_first(buf)) {
      p1 = apply(p1, a);
    }
    ++result.states_explored;
    if (p1 == v) {
      result.outcome = OptimalOutcome::kMet;
      result.rounds = 0;
      if (config.want_witness) {
        result.witness = decode_buffer_oldest_first(buf);
      }
      return result;
    }
    const std::uint64_t id = encode(p1, v, buf);
    if (!visited[id]) {
      visited[id] = true;
      if (config.want_witness) parents.emplace(id, Parent{kSeed, 0});
      queue.push_back(Entry{id, 0});
    }
  }

  while (!queue.empty()) {
    const Entry e = queue.front();
    queue.pop_front();
    if (e.level >= config.horizon) {
      horizon_hit = true;
      continue;
    }
    const std::uint64_t buf = e.id % buffer_space;
    const Node p2 = static_cast<Node>((e.id / buffer_space) % n);
    const Node p1 = static_cast<Node>(e.id / buffer_space / n);
    const std::uint64_t oldest = delay == 0 ? 0 : buf % alphabet;
    const std::uint64_t shifted = delay == 0 ? 0 : buf / alphabet;
    for (std::uint64_t a = 0; a < alphabet; ++a) {
      const Node p1n = apply(p1, a);
      const Node p2n = delay == 0 ? apply(p2, a) : apply(p2, oldest);
      const std::uint64_t bufn = delay == 0 ? 0 : shifted + a * top_digit;
      ++result.states_explored;
      if (p1n == p2n) {
        result.outcome = OptimalOutcome::kMet;
        result.rounds = e.level + 1;
        if (config.want_witness) {
          result.witness = build_witness(e.id, a, /*transition=*/true);
        }
        return result;
      }
      const std::uint64_t id = encode(p1n, p2n, bufn);
      if (!visited[id]) {
        visited[id] = true;
        if (config.want_witness) parents.emplace(id, Parent{e.id, a});
        queue.push_back(Entry{id, e.level + 1});
      }
    }
  }

  result.outcome = horizon_hit ? OptimalOutcome::kHorizonExceeded
                               : OptimalOutcome::kProvenInfeasible;
  return result;
}

SticOptimal optimal_for_stic(const Graph& g, const Stic& stic,
                             const OptimalSearchConfig& config,
                             cache::ArtifactCache* cache) {
  SticOptimal out;
  out.cls = classify_stic(g, *cache::cached_view_classes(g, cache), stic);
  out.search = optimal_oblivious(g, stic.u, stic.v, stic.delay, config);
  switch (out.search.outcome) {
    case OptimalOutcome::kMet:
      out.consistent = out.cls.feasible;
      break;
    case OptimalOutcome::kProvenInfeasible:
      out.consistent = !out.cls.symmetric || !out.cls.feasible;
      break;
    case OptimalOutcome::kHorizonExceeded:
      out.consistent = true;
      break;
  }
  return out;
}

sim::AgentProgram oblivious_program(std::vector<ObliviousAction> actions) {
  return [actions = std::move(actions)](
             sim::Mailbox& mb, sim::Observation) -> sim::Proc {
    return [](sim::Mailbox& mb2,
              std::vector<ObliviousAction> script) -> sim::Proc {
      for (const ObliviousAction a : script) {
        if (a == 0) {
          co_await mb2.wait(1);
        } else {
          const graph::Port p = static_cast<graph::Port>(
              (a - 1) % mb2.last().degree);
          co_await mb2.move(p);
        }
      }
    }(mb, actions);
  };
}

}  // namespace rdv::analysis
