#pragma once

#include <cstdint>
#include <vector>

#include "analysis/stics.hpp"
#include "sim/engine.hpp"

/// Cross-validation of the feasibility characterization
/// (Corollary 3.1) against actual simulations — experiment T2.
namespace rdv::analysis {

struct SticCheck {
  ClassifiedStic cls;
  sim::RunResult run;
  /// True when the simulation agrees with the characterization:
  /// a feasible STIC met within the round cap, an infeasible one did
  /// not meet (the cap cannot *prove* infeasibility — optimal_search
  /// can — but any meet on a predicted-infeasible STIC is a hard
  /// inconsistency).
  bool consistent = false;
};

/// Runs the program on one STIC and compares with the prediction.
[[nodiscard]] SticCheck verify_stic(const graph::Graph& g,
                                    const views::ViewClasses& classes,
                                    const Stic& stic,
                                    const sim::AgentProgram& program,
                                    const sim::RunConfig& config);

struct SweepSummary {
  std::vector<SticCheck> checks;
  std::uint64_t feasible = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t inconsistent = 0;
};

/// Verifies every ordered STIC with delays 0..max_delay, in parallel.
[[nodiscard]] SweepSummary feasibility_sweep(const graph::Graph& g,
                                             std::uint64_t max_delay,
                                             const sim::AgentProgram& program,
                                             const sim::RunConfig& config);

}  // namespace rdv::analysis
