#pragma once

#include <cstdint>

#include "sim/agent.hpp"

/// Lower-bound experiment machinery (Theorem 4.1 / T6).
namespace rdv::analysis {

/// Theorem 4.1's certified lower bound for STICs [(r, v), D] with
/// v in Z, D = 2k: any single algorithm serving all of Z must make the
/// earlier agent (or the later, for the other half) visit at least
/// 2^(k-1) distinct midpoints M(v); visiting q distinct nodes takes at
/// least q - 1 rounds.
[[nodiscard]] std::uint64_t theorem41_lower_bound(std::uint32_t k);

/// Number of distinct midpoints M(v) = gamma(r): 2^k.
[[nodiscard]] std::uint64_t midpoint_count(std::uint32_t k);

/// Closed DFS walk length of the Steiner tree spanning {r} and all
/// midpoints (the {N,E}-prefix tree): 2 * (2^(k+1) - 2). The cheapest
/// "visit every midpoint and return" tour — a floor for any dedicated
/// strategy that must check all of Z from the root side.
[[nodiscard]] std::uint64_t steiner_closed_walk(std::uint32_t k);

/// The dedicated-Z algorithm: a single program that achieves rendezvous
/// for EVERY STIC [(r, v), D = 2k] with v in Z on Q-hat (h >= 4k).
/// Both agents iterate gamma over {N,E}^k in lexicographic order,
/// traverse gamma gamma (2k moves) and walk back (2k moves); with the
/// true gamma at lexicographic index i (1-based), the earlier agent
/// reaches v exactly when the later agent sits at home between
/// iterations: meeting at 4k(i-1) + 2k rounds absolute, i.e.
/// 4k(i-1) from the later agent's start. Worst case ~ 4k * 2^k —
/// exponential in k, matching the theorem's 2^(k-1) floor in shape.
[[nodiscard]] sim::AgentProgram dedicated_z_program(std::uint32_t k);

/// Predicted meeting time (from the later agent's start) of
/// dedicated_z_program for the gamma at 1-based lexicographic index i.
[[nodiscard]] std::uint64_t dedicated_z_predicted_rounds(std::uint32_t k,
                                                         std::uint64_t i);

}  // namespace rdv::analysis
