#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/check.hpp"

/// Work-stealing thread pool + parallel_for used by the experiment
/// sweeps (STIC enumeration, feasibility cross-checks).
///
/// Topology: one deque per worker plus one shared queue for external
/// submitters. A worker pushes its own submissions onto its own deque
/// and pops them LIFO (nested-sweep locality); when its deque is empty
/// it drains the shared queue, then steals FIFO from the other workers,
/// and only sleeps when nothing anywhere is runnable.
///
/// Blocking waits issued FROM POOL WORKERS are WORK-ASSISTING
/// (`assist_until`): instead of parking, the waiting worker pops and
/// executes pool tasks — its own deque first, then the shared queue,
/// then steals — until its predicate holds. A pool task may therefore
/// submit sub-tasks and block on their completion (`TaskGroup::wait`)
/// without deadlocking the pool: the blocked worker executes the very
/// tasks it is waiting for. This is what lets nested sweeps (an
/// experiment case running sweep_map inside a pool task) fan out
/// instead of serializing. External threads park instead of helping —
/// they may not run pool tasks, which can block on events only their
/// submitter delivers.
///
/// Design notes (per C++ Core Guidelines CP.*): tasks are plain
/// std::function<void()>; the pool owns its threads (RAII, joined in the
/// destructor); no detached threads. Wakeups go through one epoch
/// counter + condition variable: every submit and every completion
/// bumps the epoch, and sleepers re-scan whenever it moves, so a task
/// enqueued between a scan and the sleep can never be missed.
namespace rdv::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw; exceptions terminate.
  /// Called from a pool worker, the task lands on that worker's own
  /// deque; otherwise on the shared queue. `tag` (never dereferenced)
  /// marks which batch the task belongs to, so an assisting waiter can
  /// restrict itself to the work it actually waits on.
  ///
  /// Returns the task's lifecycle id when the task-event profiler
  /// (obs::task_events_enabled) is on — callers may label the task
  /// (e.g. sweep_map tags chunk tasks with their chunk index) — and 0
  /// when profiling is off.
  std::uint64_t submit(std::function<void()> task,
                       const void* tag = nullptr);

  /// Block until every submitted task has finished (work-assisting
  /// when called from a pool worker; runs tasks of ANY tag — it waits
  /// for all of them anyway).
  void wait_idle();

  /// Work-assisting wait: blocks until `done()` returns true. Called
  /// from a pool worker, the worker pops and executes queued tasks
  /// instead of parking (this is the deadlock fix: it drains the tasks
  /// it would otherwise block on) — its own deque first (those are its
  /// current task's descendants), then, RESTRICTED to tasks whose tag
  /// matches `tag` (when non-null), the shared queue and steals from
  /// the other workers. The restriction keeps an assisting worker from
  /// nesting an unrelated heavyweight task inside the wait — unbounded
  /// recursion over foreign work, or inheriting a task that blocks on
  /// an event delivered only after this wait returns. Called from an
  /// external thread it parks, waking on every submit/completion:
  /// external threads must not execute pool tasks at all. `done` is
  /// called with no locks held and must be thread-safe.
  void assist_until(const std::function<bool()>& done,
                    const void* tag = nullptr);

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Tasks stolen from another worker's deque (monitoring/tests;
  /// cumulative, scheduling-dependent).
  [[nodiscard]] std::uint64_t steal_count() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Times any thread (worker or external waiter) went to sleep on the
  /// epoch cv, and times a sleeper woke from it. The before/after
  /// baseline for the planned per-worker-parking rewrite: the current
  /// single-cv design wakes EVERY sleeper on every submit/completion,
  /// so wakeups per useful task is exactly the thundering-herd factor
  /// this surface is meant to expose. Cumulative, scheduling-dependent.
  [[nodiscard]] std::uint64_t park_count() const noexcept {
    return parks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t wakeup_count() const noexcept {
    return wakeups_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    std::function<void()> fn;
    /// Batch identity for tag-restricted assists; never dereferenced.
    const void* tag = nullptr;
    /// Lifecycle id for the task-event profiler; 0 when profiling was
    /// off at submit time (such tasks record no events at all).
    std::uint64_t id = 0;
  };

  /// One worker's deque. Owner pushes/pops at the back, thieves (other
  /// workers, assisting waiters) pop at the front. unique_ptr keeps the
  /// mutex address stable in the vector.
  struct WorkerQueue {
    RankedMutex mutex{LockRank::kPoolQueue};
    std::deque<Task> tasks;
  };

  static constexpr std::size_t kExternal = static_cast<std::size_t>(-1);

  void worker_loop(std::size_t index);
  /// Pops one runnable task: own deque (when `self` is a worker index,
  /// any tag — own-deque entries are the current task's descendants),
  /// then the shared queue, then steals round-robin from the others.
  /// When `tag` is non-null, shared-queue and steal pops take only
  /// tasks carrying that tag.
  bool try_pop(std::size_t self, Task& task, const void* tag);
  /// Runs a popped task and publishes its completion (in-flight
  /// decrement + epoch bump) so waiters re-check their predicates.
  void run_task(Task& task);
  /// Bumps the wake epoch and wakes sleepers; called after every
  /// enqueue and every completion.
  void bump_epoch();
  [[nodiscard]] std::uint64_t epoch() const;
  /// The calling thread's worker index in THIS pool, or kExternal.
  [[nodiscard]] std::size_t self_index() const noexcept;

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  RankedMutex shared_mutex_{LockRank::kPoolQueue};
  std::deque<Task> shared_;
  /// Sleep machinery: epoch_/sleepers_/stopping_ guarded by
  /// sleep_mutex_; cv_ wakes on every epoch move. The cv is
  /// condition_variable_any so it waits on the rank-checked mutex
  /// (RDV_CHECKED builds verify park/wake acquisitions like any other).
  mutable RankedMutex sleep_mutex_{LockRank::kPoolSleep};
  std::condition_variable_any cv_;
  std::uint64_t epoch_ = 0;
  std::size_t sleepers_ = 0;
  bool stopping_ = false;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> wakeups_{0};
};

/// Completion tracking for ONE batch of tasks on a shared pool.
///
/// ThreadPool::wait_idle() waits for the WHOLE pool — any concurrent
/// sweep's tasks included — which over-synchronizes independent sweeps
/// sharing default_pool(). A TaskGroup counts only the tasks submitted
/// through it, so wait() returns as soon as this group's tasks are
/// done, regardless of what else the pool is running. wait() is
/// work-assisting (it executes pool tasks while the group drains), so
/// it may be called from inside a pool task — nested sweeps cannot
/// deadlock. Reusable: after wait() returns, more tasks may be
/// submitted. The destructor waits for any still-pending tasks.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) noexcept : pool_(pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueue a task on the pool, counted against this group. Returns
  /// the pool task's lifecycle id (0 when profiling is off), same as
  /// ThreadPool::submit.
  std::uint64_t submit(std::function<void()> task);

  /// Block until every task submitted through THIS group has finished,
  /// executing pool tasks on the calling thread meanwhile.
  void wait();

  /// Tasks submitted but not yet finished (monitoring/tests).
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  /// Identity of this group's tasks on the pool — pass to
  /// ThreadPool::assist_until when waiting on a condition this group's
  /// tasks establish (e.g. the sweep runner's per-chunk slots).
  [[nodiscard]] const void* tag() const noexcept { return this; }

 private:
  ThreadPool& pool_;
  std::atomic<std::size_t> pending_{0};
};

/// Runs fn(i) for i in [begin, end) across the pool with contiguous
/// chunking. Blocks until all iterations complete (via a TaskGroup, so
/// unrelated tasks on the same pool are not waited on). With a 1-thread
/// pool this degrades to a serial loop (our CI box has one core; the
/// structure still matches the HPC-sweep idiom).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Process-wide default pool (lazily constructed).
ThreadPool& default_pool();

}  // namespace rdv::support
