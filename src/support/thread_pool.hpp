#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

/// Minimal work-stealing-free thread pool + parallel_for used by the
/// experiment sweeps (STIC enumeration, feasibility cross-checks).
///
/// Design notes (per C++ Core Guidelines CP.*): tasks are plain
/// std::function<void()>; the pool owns its threads (RAII, joined in the
/// destructor); no detached threads; no shared mutable state beyond the
/// queue, guarded by a single mutex.
namespace rdv::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Completion tracking for ONE batch of tasks on a shared pool.
///
/// ThreadPool::wait_idle() waits for the WHOLE pool — any concurrent
/// sweep's tasks included — which over-synchronizes independent sweeps
/// sharing default_pool(). A TaskGroup counts only the tasks submitted
/// through it (counter + condition variable), so wait() returns as soon
/// as this group's tasks are done, regardless of what else the pool is
/// running. Reusable: after wait() returns, more tasks may be
/// submitted. The destructor waits for any still-pending tasks.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) noexcept : pool_(pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueue a task on the pool, counted against this group.
  void submit(std::function<void()> task);

  /// Block until every task submitted through THIS group has finished.
  void wait();

  /// Tasks submitted but not yet finished (monitoring/tests).
  [[nodiscard]] std::size_t pending() const;

 private:
  ThreadPool& pool_;
  mutable std::mutex mutex_;
  std::condition_variable cv_done_;
  std::size_t pending_ = 0;
};

/// Runs fn(i) for i in [begin, end) across the pool with contiguous
/// chunking. Blocks until all iterations complete (via a TaskGroup, so
/// unrelated tasks on the same pool are not waited on). With a 1-thread
/// pool this degrades to a serial loop (our CI box has one core; the
/// structure still matches the HPC-sweep idiom).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Process-wide default pool (lazily constructed).
ThreadPool& default_pool();

}  // namespace rdv::support
