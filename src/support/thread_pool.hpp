#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

/// Minimal work-stealing-free thread pool + parallel_for used by the
/// experiment sweeps (STIC enumeration, feasibility cross-checks).
///
/// Design notes (per C++ Core Guidelines CP.*): tasks are plain
/// std::function<void()>; the pool owns its threads (RAII, joined in the
/// destructor); no detached threads; no shared mutable state beyond the
/// queue, guarded by a single mutex.
namespace rdv::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [begin, end) across the pool with contiguous
/// chunking. Blocks until all iterations complete. With a 1-thread pool
/// this degrades to a serial loop (our CI box has one core; the
/// structure still matches the HPC-sweep idiom).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Process-wide default pool (lazily constructed).
ThreadPool& default_pool();

}  // namespace rdv::support
