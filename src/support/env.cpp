#include "support/env.hpp"

#include <cstdlib>
#include <string_view>

namespace rdv::support {

bool env_flag(const char* name) {
  const char* raw = std::getenv(name);
  return raw != nullptr && !std::string_view(raw).empty() &&
         std::string_view(raw) != "0";
}

std::string env_string(const char* name) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? std::string() : std::string(raw);
}

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  return (end == raw || v == 0) ? fallback : static_cast<std::size_t>(v);
}

bool repro_full() { return env_string("REPRO_FULL") == "1"; }

bool repro_census() { return env_string("REPRO_CENSUS") == "1"; }

std::string repro_csv_dir() { return env_string("REPRO_CSV_DIR"); }

std::string repro_json_dir() { return env_string("REPRO_JSON_DIR"); }

std::string rdv_store_dir() { return env_string("RDV_STORE_DIR"); }

std::string rdv_store_salt() { return env_string("RDV_STORE_SALT"); }

bool rdv_store_readonly() { return env_flag("RDV_STORE_READONLY"); }

bool env_export(const char* name, const std::string& value) {
#if defined(_WIN32)
  return _putenv_s(name, value.c_str()) == 0;
#else
  return ::setenv(name, value.c_str(), 1) == 0;
#endif
}

}  // namespace rdv::support
