#include "support/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/task_events.hpp"
#include "obs/trace.hpp"

namespace rdv::support {

namespace {

/// Identifies the pool (and worker slot) the calling thread belongs to,
/// so submit() can target the worker's own deque and try_pop() knows
/// where "own" is. Null on external threads and inside assist_until
/// callers that are not workers.
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_index = 0;

/// Process-wide scheduler series (all pools aggregated — the registry
/// describes the run, per-pool accessors the instance). Handles are
/// resolved once; bumps are lock-free stripe adds.
struct PoolMetrics {
  obs::Counter& submits = obs::counter("pool.submits");
  obs::Counter& steals = obs::counter("pool.steals");
  obs::Counter& parks = obs::counter("pool.parks");
  obs::Counter& wakeups = obs::counter("pool.wakeups");
  obs::Gauge& queue_depth = obs::gauge("pool.queue_depth");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics metrics;
  return metrics;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(sleep_mutex_);
    stopping_ = true;
    ++epoch_;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::self_index() const noexcept {
  return tl_pool == this ? tl_index : kExternal;
}

std::uint64_t ThreadPool::submit(std::function<void()> task,
                                 const void* tag) {
  // Allocate the lifecycle id and record kSubmit BEFORE enqueueing:
  // once the task is visible a worker may pop it immediately, and the
  // submit timestamp must not trail the dequeue timestamp.
  const std::uint64_t id =
      obs::task_events_enabled() ? obs::next_task_id() : 0;
  if (id != 0) {
    obs::record_task_event(obs::TaskEventKind::kSubmit, id);
  }
  const std::size_t depth =
      in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
  PoolMetrics& metrics = pool_metrics();
  metrics.submits.add();
  metrics.queue_depth.set(static_cast<std::int64_t>(depth));
  const std::size_t self = self_index();
  if (self != kExternal) {
    WorkerQueue& q = *queues_[self];
    std::lock_guard lock(q.mutex);
    q.tasks.push_back(Task{std::move(task), tag, id});
  } else {
    std::lock_guard lock(shared_mutex_);
    shared_.push_back(Task{std::move(task), tag, id});
  }
  bump_epoch();
  return id;
}

void ThreadPool::bump_epoch() {
  std::lock_guard lock(sleep_mutex_);
  ++epoch_;
  if (sleepers_ != 0) cv_.notify_all();
}

std::uint64_t ThreadPool::epoch() const {
  std::lock_guard lock(sleep_mutex_);
  return epoch_;
}

bool ThreadPool::try_pop(std::size_t self, Task& task, const void* tag) {
  // Lifecycle events are recorded AFTER the queue lock is released —
  // the ring mutex is uncontended, but holding two locks for a
  // profiling write would still lengthen the critical section.
  //
  // Own deque, newest first, any tag: entries here were submitted by
  // the task this worker is currently running (its descendants), so a
  // nested sweep's just-submitted chunks are still cache-hot and LIFO
  // keeps the nesting stack shallow.
  if (self != kExternal) {
    bool popped = false;
    {
      WorkerQueue& q = *queues_[self];
      std::lock_guard lock(q.mutex);
      if (!q.tasks.empty()) {
        task = std::move(q.tasks.back());
        q.tasks.pop_back();
        popped = true;
      }
    }
    if (popped) {
      if (task.id != 0) {
        obs::record_task_event(obs::TaskEventKind::kDequeue, task.id);
      }
      return true;
    }
  }
  const auto matches = [tag](const Task& t) {
    return tag == nullptr || t.tag == tag;
  };
  {
    bool popped = false;
    {
      std::lock_guard lock(shared_mutex_);
      for (auto it = shared_.begin(); it != shared_.end(); ++it) {
        if (matches(*it)) {
          task = std::move(*it);
          shared_.erase(it);
          popped = true;
          break;
        }
      }
    }
    if (popped) {
      if (task.id != 0) {
        obs::record_task_event(obs::TaskEventKind::kDequeue, task.id);
      }
      return true;
    }
  }
  // Steal oldest-first from the other workers, round-robin from the
  // slot after our own so one victim is not hammered by everyone.
  const std::size_t n = queues_.size();
  const std::size_t start = self != kExternal ? self + 1 : 0;
  for (std::size_t offset = 0; offset < n; ++offset) {
    const std::size_t victim = (start + offset) % n;
    if (victim == self) continue;
    bool popped = false;
    {
      WorkerQueue& q = *queues_[victim];
      std::lock_guard lock(q.mutex);
      for (auto it = q.tasks.begin(); it != q.tasks.end(); ++it) {
        if (matches(*it)) {
          task = std::move(*it);
          q.tasks.erase(it);
          popped = true;
          break;
        }
      }
    }
    if (popped) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      pool_metrics().steals.add();
      if (task.id != 0) {
        obs::record_task_event(obs::TaskEventKind::kSteal, task.id,
                               victim);
      }
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(Task& task) {
  // Tasks are arbitrary user code reaching into every layer: starting
  // one while this thread still holds a substrate lock would let the
  // task re-acquire "upward" and deadlock under the right schedule.
  RDV_CHECK_MSG(held_rank_count() == 0,
                "pool task started while the worker holds a checked lock");
  if (task.id != 0) {
    obs::record_task_event(obs::TaskEventKind::kBegin, task.id);
  }
  task.fn();
  if (task.id != 0) {
    obs::record_task_event(obs::TaskEventKind::kEnd, task.id);
  }
  task.fn = nullptr;  // release captures before announcing completion
  const std::size_t depth =
      in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  pool_metrics().queue_depth.set(static_cast<std::int64_t>(depth));
  bump_epoch();
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_index = index;
  for (;;) {
    // Epoch read BEFORE the scan: a task enqueued after the scan bumps
    // the epoch past `seen`, so the wait below returns immediately
    // instead of missing it.
    const std::uint64_t seen = epoch();
    Task task;
    if (try_pop(index, task, nullptr)) {
      run_task(task);
      continue;
    }
    const bool traced = obs::trace_enabled();
    const std::uint64_t park_start = traced ? obs::now_micros() : 0;
    obs::record_task_event(obs::TaskEventKind::kPark);
    {
      std::unique_lock lock(sleep_mutex_);
      if (stopping_) return;  // every queue drained
      ++sleepers_;
      parks_.fetch_add(1, std::memory_order_relaxed);
      pool_metrics().parks.add();
      cv_.wait(lock, [&] { return epoch_ != seen || stopping_; });
      --sleepers_;
      wakeups_.fetch_add(1, std::memory_order_relaxed);
      pool_metrics().wakeups.add();
    }
    obs::record_task_event(obs::TaskEventKind::kUnpark);
    if (traced) {
      obs::record_span("park", "pool", park_start,
                       obs::now_micros() - park_start);
    }
  }
}

void ThreadPool::assist_until(const std::function<bool()>& done,
                              const void* tag) {
  // Only pool workers assist. A worker that parked would starve the
  // very tasks it waits on (the nested-sweep deadlock); an external
  // thread parking is safe — the workers make progress without it —
  // and assisting would be WRONG: it could pick up an unrelated task
  // that blocks on an event its submitter signals only after this wait
  // returns (e.g. a test gating a task on a promise). The tag narrows
  // shared-queue/steal pops to the awaited batch for the same reason.
  const std::size_t self = self_index();
  obs::Span span("pool", self != kExternal ? "assist" : "assist.external");
  for (;;) {
    if (done()) return;
    const std::uint64_t seen = epoch();
    Task task;
    if (self != kExternal && try_pop(self, task, tag)) {
      run_task(task);
      continue;
    }
    // Nothing runnable here: every task we are waiting on is queued
    // for or executing on some other thread. Sleep until anything is
    // submitted or completes (both bump the epoch), then re-check.
    if (done()) return;
    const bool traced = obs::trace_enabled();
    const std::uint64_t park_start = traced ? obs::now_micros() : 0;
    obs::record_task_event(obs::TaskEventKind::kPark);
    {
      std::unique_lock lock(sleep_mutex_);
      ++sleepers_;
      parks_.fetch_add(1, std::memory_order_relaxed);
      pool_metrics().parks.add();
      cv_.wait(lock, [&] { return epoch_ != seen; });
      --sleepers_;
      wakeups_.fetch_add(1, std::memory_order_relaxed);
      pool_metrics().wakeups.add();
    }
    obs::record_task_event(obs::TaskEventKind::kUnpark);
    if (traced) {
      obs::record_span("park.wait", "pool", park_start,
                       obs::now_micros() - park_start);
    }
  }
}

void ThreadPool::wait_idle() {
  assist_until([this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

std::uint64_t TaskGroup::submit(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  return pool_.submit(
      [this, task = std::move(task)] {
        task();
        // The pool bumps its wake epoch right after this wrapper
        // returns, so a waiter parked in assist_until re-reads
        // pending() then.
        pending_.fetch_sub(1, std::memory_order_acq_rel);
      },
      tag());
}

void TaskGroup::wait() {
  pool_.assist_until([this] { return pending() == 0; }, tag());
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks =
      std::min(total, std::max<std::size_t>(1, pool.thread_count() * 4));
  const std::size_t chunk = (total + chunks - 1) / chunks;
  TaskGroup group(pool);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    group.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  group.wait();
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace rdv::support
