#include "support/thread_pool.hpp"

#include <algorithm>

namespace rdv::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void TaskGroup::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    ++pending_;
  }
  pool_.submit([this, task = std::move(task)] {
    task();
    std::lock_guard lock(mutex_);
    if (--pending_ == 0) cv_done_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
}

std::size_t TaskGroup::pending() const {
  std::lock_guard lock(mutex_);
  return pending_;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks =
      std::min(total, std::max<std::size_t>(1, pool.thread_count() * 4));
  const std::size_t chunk = (total + chunks - 1) / chunks;
  TaskGroup group(pool);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    group.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  group.wait();
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace rdv::support
