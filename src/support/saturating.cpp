#include "support/saturating.hpp"

// Header-only; this TU pins the header into the build so warnings are
// surfaced exactly once.
namespace rdv::support {

static_assert(sat_add(kRoundInfinity, 1) == kRoundInfinity);
static_assert(sat_mul(1u << 31, std::uint64_t{1} << 34) == kRoundInfinity);
static_assert(sat_pow(2, 64) == kRoundInfinity);
static_assert(sat_pow(2, 10) == 1024);
static_assert(bits_for(0) == 0 && bits_for(1) == 1 && bits_for(8) == 4);

}  // namespace rdv::support
