#pragma once

#include <cstdint>
#include <limits>

/// Saturating unsigned 64-bit arithmetic.
///
/// Round budgets in this library follow the paper's bounds, e.g.
/// T(n,d,delta) = [(d+delta)(n-1)^d](M+2) + 2(M+1)  (Lemma 3.3), which
/// overflows uint64 for modest parameters. All budget arithmetic
/// saturates at kRoundInfinity instead of wrapping; the simulation
/// engine treats a saturated budget as "run until the caller's cap".
namespace rdv::support {

/// Sentinel for "more rounds than any simulation will ever run".
inline constexpr std::uint64_t kRoundInfinity =
    std::numeric_limits<std::uint64_t>::max();

/// a + b, saturating at kRoundInfinity.
[[nodiscard]] constexpr std::uint64_t sat_add(std::uint64_t a,
                                              std::uint64_t b) noexcept {
  return (a > kRoundInfinity - b) ? kRoundInfinity : a + b;
}

/// a * b, saturating at kRoundInfinity.
[[nodiscard]] constexpr std::uint64_t sat_mul(std::uint64_t a,
                                              std::uint64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  if (a > kRoundInfinity / b) return kRoundInfinity;
  return a * b;
}

/// base^exp, saturating at kRoundInfinity.
[[nodiscard]] constexpr std::uint64_t sat_pow(std::uint64_t base,
                                              std::uint64_t exp) noexcept {
  std::uint64_t result = 1;
  while (exp > 0) {
    if (exp & 1u) result = sat_mul(result, base);
    exp >>= 1u;
    if (exp > 0) base = sat_mul(base, base);
  }
  return result;
}

/// a - b clamped at zero (budget countdowns).
[[nodiscard]] constexpr std::uint64_t sat_sub(std::uint64_t a,
                                              std::uint64_t b) noexcept {
  return (a < b) ? 0 : a - b;
}

/// ceil(a / b); b must be nonzero.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return a / b + (a % b != 0 ? 1 : 0);
}

/// Number of bits needed to represent v (bit_width, 0 -> 0).
[[nodiscard]] constexpr unsigned bits_for(std::uint64_t v) noexcept {
  unsigned w = 0;
  while (v != 0) {
    ++w;
    v >>= 1u;
  }
  return w;
}

}  // namespace rdv::support
