#include "support/splitmix.hpp"

namespace rdv::support {

// Known-answer pin: the first output of SplitMix64(0) per the reference
// implementation. Guards against accidental edits to the mixer.
static_assert(SplitMix64(0).next() == 0xE220A8397B1DCDAFULL);

}  // namespace rdv::support
