#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>

/// Debug invariant checks + lock-rank deadlock checker (ISSUE 10).
///
/// Two facilities, both compiled OUT unless the build defines
/// RDV_CHECKED (cmake -DRDV_CHECKED=ON):
///
///  - RDV_CHECK(cond) / RDV_CHECK_MSG(cond, msg): invariant assertions
///    that survive NDEBUG. Disabled they cost NOTHING — the condition
///    is not even evaluated (tests/check_test.cpp pins this at compile
///    time), so they are safe on hot paths that release builds must
///    not pay for.
///
///  - RankedMutex / LockRankScope: a per-thread lock-rank tracker.
///    Every mutex in the concurrent substrate carries a LockRank, and
///    checked builds abort the instant any thread acquires a lock
///    whose rank is not strictly greater than every rank it already
///    holds — the canonical deadlock-freedom discipline, enforced at
///    runtime on EVERY acquisition instead of only on schedules that
///    happen to deadlock. The global order follows the layer DAG:
///
///      pool queue < pool sleep < cache shard < store < obs registry
///                 < obs ring
///
///    i.e. code may call "down" the stack (a pool task locking a cache
///    shard, a shard compute appending to the result log, anything
///    recording into an obs ring) but never back "up" while still
///    holding the lower layer's lock. obs ranks are HIGHEST because
///    obs mutexes are leaves: instrumentation may be called from under
///    any subsystem lock, so nothing may be acquired beneath them.
///
/// This header is deliberately self-contained (std headers only, all
/// inline) so the obs layer — which sits BELOW support in the link DAG
/// and must not depend on rdv_support — can use it too; the invariant
/// linter (tools/lint_invariants.py) special-cases it as a layer-0
/// header for the same reason.
namespace rdv::support {

/// True in builds configured with -DRDV_CHECKED=ON.
#if defined(RDV_CHECKED)
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

/// Global acquisition order; a thread may only acquire strictly
/// ascending ranks. Gaps leave room for future layers (rdv_serve).
enum class LockRank : std::uint32_t {
  kPoolQueue = 10,    ///< ThreadPool worker deques + shared queue.
  kPoolSleep = 20,    ///< ThreadPool epoch/sleep mutex (the park cv).
  kCacheShard = 30,   ///< ShardedLruStore per-shard mutexes.
  kStore = 40,        ///< OrderedResultStream / result-log framing.
  kObsRegistry = 50,  ///< obs metrics Registry name/source maps.
  kObsRing = 60,      ///< obs span/task-event rings + ring directories.
};

[[nodiscard]] inline const char* lock_rank_name(LockRank rank) noexcept {
  switch (rank) {
    case LockRank::kPoolQueue: return "pool_queue";
    case LockRank::kPoolSleep: return "pool_sleep";
    case LockRank::kCacheShard: return "cache_shard";
    case LockRank::kStore: return "store";
    case LockRank::kObsRegistry: return "obs_registry";
    case LockRank::kObsRing: return "obs_ring";
  }
  return "?";
}

/// Prints the failure and aborts. Out-of-line-ish (noinline would need
/// attributes; keeping it simple) — only reached on a violated
/// invariant, never on the success path.
[[noreturn]] inline void check_failed(const char* what, const char* file,
                                      int line) noexcept {
  std::fprintf(stderr, "RDV_CHECK failed at %s:%d: %s\n", file, line, what);
  std::fflush(stderr);
  std::abort();
}

#if defined(RDV_CHECKED)

#define RDV_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::rdv::support::check_failed(#cond, __FILE__, __LINE__);         \
    }                                                                  \
  } while (false)

#define RDV_CHECK_MSG(cond, msg)                                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::rdv::support::check_failed(msg " [" #cond "]", __FILE__,       \
                                   __LINE__);                          \
    }                                                                  \
  } while (false)

#else

// Disabled: the condition is swallowed UNEVALUATED (sizeof keeps it
// syntactically checked and its variables ODR-used, so -Werror builds
// do not trip -Wunused on check-only locals, while generating zero
// code).
#define RDV_CHECK(cond) \
  do {                  \
    (void)sizeof(cond); \
  } while (false)

#define RDV_CHECK_MSG(cond, msg) \
  do {                           \
    (void)sizeof(cond);          \
    (void)sizeof(msg);           \
  } while (false)

#endif  // RDV_CHECKED

namespace detail {

/// Deepest legal nesting of checked locks on one thread; generous —
/// the substrate holds at most two at once today.
inline constexpr std::size_t kMaxHeldRanks = 16;

/// The calling thread's stack of held ranks. Function-local
/// thread_local keeps this header self-contained (no .cpp).
struct HeldRanks {
  LockRank ranks[kMaxHeldRanks];
  std::size_t depth = 0;
};

inline HeldRanks& held_ranks() noexcept {
  thread_local HeldRanks held;
  return held;
}

/// Records an acquisition; aborts when `rank` is not strictly greater
/// than every rank the thread already holds.
inline void push_rank(LockRank rank, const char* file, int line) noexcept {
  HeldRanks& held = held_ranks();
  if (held.depth > 0) {
    const LockRank top = held.ranks[held.depth - 1];
    if (static_cast<std::uint32_t>(rank) <=
        static_cast<std::uint32_t>(top)) {
      std::fprintf(stderr,
                   "RDV lock-rank violation at %s:%d: acquiring %s(%u) "
                   "while holding %s(%u); ranks must strictly ascend "
                   "(pool_queue < pool_sleep < cache_shard < store < "
                   "obs_registry < obs_ring)\n",
                   file, line, lock_rank_name(rank),
                   static_cast<unsigned>(rank), lock_rank_name(top),
                   static_cast<unsigned>(top));
      std::fflush(stderr);
      std::abort();
    }
  }
  if (held.depth >= kMaxHeldRanks) {
    check_failed("lock-rank stack overflow", file, line);
  }
  held.ranks[held.depth++] = rank;
}

/// Releases the most recent hold of `rank`. Non-LIFO release is legal
/// (unique_lock::unlock before scope end): the topmost matching entry
/// is removed and entries above it shift down.
inline void pop_rank(LockRank rank) noexcept {
  HeldRanks& held = held_ranks();
  for (std::size_t i = held.depth; i > 0; --i) {
    if (held.ranks[i - 1] == rank) {
      for (std::size_t j = i - 1; j + 1 < held.depth; ++j) {
        held.ranks[j] = held.ranks[j + 1];
      }
      --held.depth;
      return;
    }
  }
  std::fprintf(stderr,
               "RDV lock-rank violation: releasing %s(%u) which this "
               "thread does not hold\n",
               lock_rank_name(rank), static_cast<unsigned>(rank));
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail

/// The calling thread's current checked-lock nesting depth (0 when
/// RDV_CHECKED is off). Tests and RDV_CHECKs over "no lock held here"
/// contracts read this.
[[nodiscard]] inline std::size_t held_rank_count() noexcept {
  if constexpr (kCheckedBuild) {
    return detail::held_ranks().depth;
  } else {
    return 0;
  }
}

/// std::mutex that knows its place in the global acquisition order.
/// BasicLockable + Lockable, so std::lock_guard / std::unique_lock /
/// std::scoped_lock and std::condition_variable_any all work
/// unchanged. In unchecked builds every member call inlines to the
/// plain std::mutex operation — no rank storage is even kept.
class RankedMutex {
 public:
#if defined(RDV_CHECKED)
  explicit RankedMutex(LockRank rank) noexcept : rank_(rank) {}
#else
  explicit RankedMutex(LockRank rank) noexcept { (void)rank; }
#endif

  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() {
#if defined(RDV_CHECKED)
    detail::push_rank(rank_, "lock", 0);
#endif
    mutex_.lock();
  }

  bool try_lock() {
    const bool locked = mutex_.try_lock();
#if defined(RDV_CHECKED)
    // try_lock may legally be attempted against the order (that is the
    // point of trying); only a SUCCESSFUL acquisition joins the stack,
    // and even that must respect the order — a successful out-of-order
    // try_lock still deadlocks the schedules where it blocks.
    if (locked) detail::push_rank(rank_, "try_lock", 0);
#endif
    return locked;
  }

  void unlock() {
#if defined(RDV_CHECKED)
    detail::pop_rank(rank_);
#endif
    mutex_.unlock();
  }

 private:
  std::mutex mutex_;
#if defined(RDV_CHECKED)
  LockRank rank_;
#endif
};

/// Annotation for lock-shaped critical sections that cannot switch to
/// RankedMutex (a std::mutex owned by third-party code, a file lock, a
/// future external resource): participates in the same per-thread rank
/// stack for the scope's lifetime. No-op unless RDV_CHECKED.
class LockRankScope {
 public:
#if defined(RDV_CHECKED)
  explicit LockRankScope(LockRank rank) noexcept : rank_(rank) {
    detail::push_rank(rank, "scope", 0);
  }
  ~LockRankScope() { detail::pop_rank(rank_); }
#else
  explicit LockRankScope(LockRank rank) noexcept { (void)rank; }
#endif

  LockRankScope(const LockRankScope&) = delete;
  LockRankScope& operator=(const LockRankScope&) = delete;

#if defined(RDV_CHECKED)
 private:
  LockRank rank_;
#endif
};

}  // namespace rdv::support
