#include "support/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "support/saturating.hpp"

namespace rdv::support {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  // A mismatched row would index out of bounds in to_markdown(); this
  // must hold in release builds too, so no assert.
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument(
        "Table::add_row: " + std::to_string(cells.size()) +
        " cells for " + std::to_string(headers_.size()) + " headers");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c]
          << std::string(widths[c] - cells[c].size() + 1, ' ') << '|';
    }
    out << '\n';
  };
  emit_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_row(std::string& out, const std::vector<std::string>& cells) {
  out += '[';
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c != 0) out += ", ";
    append_json_string(out, cells[c]);
  }
  out += ']';
}

}  // namespace

std::string Table::to_json() const {
  std::string out = "{\"headers\": ";
  append_json_row(out, headers_);
  out += ", \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r != 0) out += ',';
    out += "\n  ";
    append_json_row(out, rows_[r]);
  }
  if (!rows_.empty()) out += '\n';
  out += "]}\n";
  return out;
}

std::string format_rounds(std::uint64_t rounds) {
  if (rounds == kRoundInfinity) return "inf";
  return std::to_string(rounds);
}

std::string format_double(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

}  // namespace rdv::support
