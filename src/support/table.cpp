#include "support/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "support/saturating.hpp"

namespace rdv::support {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  // A mismatched row would index out of bounds in to_markdown(); this
  // must hold in release builds too, so no assert.
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument(
        "Table::add_row: " + std::to_string(cells.size()) +
        " cells for " + std::to_string(headers_.size()) + " headers");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c]
          << std::string(widths[c] - cells[c].size() + 1, ' ') << '|';
    }
    out << '\n';
  };
  emit_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string format_rounds(std::uint64_t rounds) {
  if (rounds == kRoundInfinity) return "inf";
  return std::to_string(rounds);
}

std::string format_double(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

}  // namespace rdv::support
