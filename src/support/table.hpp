#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

/// Markdown/CSV table emitter for the benchmark harness. Every bench
/// binary prints the rows of "its" table/figure from EXPERIMENTS.md.
namespace rdv::support {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; the cell count must match the header count.
  Table& add_row(std::vector<std::string> cells);

  /// GitHub-flavored markdown rendering with aligned columns.
  [[nodiscard]] std::string to_markdown() const;

  /// RFC-4180-ish CSV (no quoting of commas; callers keep cells simple).
  [[nodiscard]] std::string to_csv() const;

  /// {"headers": [...], "rows": [[...], ...]} with full string escaping
  /// — the machine-readable rendering for trend tracking.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] std::size_t row_count() const noexcept {
    return rows_.size();
  }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return headers_.size();
  }

  /// Raw cells, for emitters that re-frame rather than render (the
  /// binary result log).
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows()
      const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a round count, rendering kRoundInfinity as "inf".
[[nodiscard]] std::string format_rounds(std::uint64_t rounds);

/// Formats a double with the given precision (fixed notation).
[[nodiscard]] std::string format_double(double v, int precision = 2);

}  // namespace rdv::support
