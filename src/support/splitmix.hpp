#pragma once

#include <cstdint>

/// Deterministic pseudorandom streams.
///
/// The library never uses wall-clock or std::rand: every "random" choice
/// (UXS streams, random graph generation, STIC sampling) is drawn from an
/// explicitly seeded SplitMix64 so all experiments are bit-reproducible.
namespace rdv::support {

/// SplitMix64 (Steele, Lea, Flood 2014): tiny, high-quality, and — key
/// for us — a pure function of the seed, so sequences can be documented
/// by a single integer in EXPERIMENTS.md.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept
      : state_(seed) {}

  /// Next 64-bit value in the stream.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound); bound must be nonzero. Uses rejection
  /// sampling so small bounds are exactly uniform.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % bound;
    std::uint64_t v = next();
    while (v >= limit) v = next();
    return v % bound;
  }

  /// Current internal state (for checkpoint tests).
  [[nodiscard]] constexpr std::uint64_t state() const noexcept {
    return state_;
  }

 private:
  std::uint64_t state_;
};

}  // namespace rdv::support
