#pragma once

#include <cstddef>
#include <string>

/// One place for every environment knob the binaries honor: the REPRO_*
/// reproduction controls shared by all experiments and the RDV_* tuning
/// knobs. Centralizing the parsing keeps the semantics identical across
/// layers (e.g. "any value except empty/0 enables a flag").
namespace rdv::support {

/// True when `name` is set to anything except "" or "0".
[[nodiscard]] bool env_flag(const char* name);

/// The variable's value, or "" when unset.
[[nodiscard]] std::string env_string(const char* name);

/// Parses an unsigned decimal; unset, empty, unparsable, or zero values
/// yield `fallback` (zero is reserved for "use the default"/"unlimited"
/// semantics at each call site).
[[nodiscard]] std::size_t env_size_t(const char* name,
                                     std::size_t fallback);

/// REPRO_FULL=1 — experiments run their larger sweeps. Strictly "1"
/// (the long-documented contract), so REPRO_FULL=false stays a no-op.
[[nodiscard]] bool repro_full();

/// REPRO_CENSUS=1 — experiments run their census-scale sweeps (a strict
/// superset of full; big random-graph STIC censuses). Same strict-"1"
/// contract as REPRO_FULL.
[[nodiscard]] bool repro_census();

/// REPRO_CSV_DIR — when nonempty, experiments also write
/// `<dir>/<experiment_id>.csv`.
[[nodiscard]] std::string repro_csv_dir();

/// REPRO_JSON_DIR — when nonempty, experiments also write
/// `<dir>/<experiment_id>.json`.
[[nodiscard]] std::string repro_json_dir();

/// RDV_STORE_DIR — when nonempty, the global artifact cache attaches a
/// persistent on-disk store rooted there (warm runs skip recomputing
/// every artifact kind, including UXS corpus verification).
[[nodiscard]] std::string rdv_store_dir();

/// RDV_STORE_SALT — overrides the store's build salt (see
/// store::kDefaultBuildSalt); empty means the built-in default.
[[nodiscard]] std::string rdv_store_salt();

/// RDV_STORE_READONLY — serve disk hits but never write (shared or
/// read-only store directories).
[[nodiscard]] bool rdv_store_readonly();

/// Exports `name=value` into this process's environment (CLI flags
/// that are sugar for env knobs, e.g. rdv_bench --store-dir). The one
/// sanctioned write path, for the same reason the readers are
/// centralized: the invariant linter forbids set/putenv elsewhere.
/// Returns false when the underlying setenv fails.
bool env_export(const char* name, const std::string& value);

}  // namespace rdv::support
