#pragma once

#include <cstddef>
#include <string>

/// One place for every environment knob the binaries honor: the REPRO_*
/// reproduction controls shared by all experiments and the RDV_* tuning
/// knobs. Centralizing the parsing keeps the semantics identical across
/// layers (e.g. "any value except empty/0 enables a flag").
namespace rdv::support {

/// True when `name` is set to anything except "" or "0".
[[nodiscard]] bool env_flag(const char* name);

/// The variable's value, or "" when unset.
[[nodiscard]] std::string env_string(const char* name);

/// Parses an unsigned decimal; unset, empty, unparsable, or zero values
/// yield `fallback` (zero is reserved for "use the default"/"unlimited"
/// semantics at each call site).
[[nodiscard]] std::size_t env_size_t(const char* name,
                                     std::size_t fallback);

/// REPRO_FULL=1 — experiments run their larger sweeps. Strictly "1"
/// (the long-documented contract), so REPRO_FULL=false stays a no-op.
[[nodiscard]] bool repro_full();

/// REPRO_CSV_DIR — when nonempty, experiments also write
/// `<dir>/<experiment_id>.csv`.
[[nodiscard]] std::string repro_csv_dir();

/// REPRO_JSON_DIR — when nonempty, experiments also write
/// `<dir>/<experiment_id>.json`.
[[nodiscard]] std::string repro_json_dir();

}  // namespace rdv::support
