#pragma once

#include <string>

/// BENCH_sweep.json maintenance shared by the bench emitters.
///
/// The file is JSON-lines: one object per line, each tagged with a
/// "bench" field ("micro_sweep", "rdv_bench", ...). Each emitter
/// replaces ONLY its own line and preserves every other bench's latest
/// datapoint, so the binaries can share one trend-tracking file in one
/// REPRO_CSV_DIR without clobbering each other.
namespace rdv::support {

/// Rewrites `path` keeping every line whose `"bench":"..."` tag differs
/// from `bench_name` and appending `json_line` (one full JSON object,
/// no trailing newline needed). Returns false when the file cannot be
/// written.
bool update_bench_json(const std::string& path,
                       const std::string& bench_name,
                       const std::string& json_line);

}  // namespace rdv::support
