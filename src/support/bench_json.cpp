#include "support/bench_json.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <vector>

namespace rdv::support {

bool update_bench_json(const std::string& path,
                       const std::string& bench_name,
                       const std::string& json_line) {
  const std::string tag = "\"bench\":\"" + bench_name + "\"";
  std::vector<std::string> kept;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.find(tag) == std::string::npos) {
        kept.push_back(line);
      }
    }
  }
  // Write-temp-then-rename (same pattern as store::DiskStore): a crash
  // mid-write never wipes the other benches' datapoints, and a reader
  // never sees a torn file. Concurrent emitters can still last-write-
  // win on the SAME line, but each rename publishes a complete file.
  const std::string temp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(temp, std::ios::trunc);
    if (!out) return false;
    for (const std::string& line : kept) out << line << "\n";
    out << json_line << "\n";
    out.flush();
    if (!out.good()) {
      std::error_code ec;
      std::filesystem::remove(temp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::filesystem::remove(temp, ec);
    return false;
  }
  return true;
}

}  // namespace rdv::support
