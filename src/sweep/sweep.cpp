#include "sweep/sweep.hpp"

#include <memory>

#include "cache/artifact_cache.hpp"
#include "views/refinement.hpp"

namespace rdv::sweep {

SticSweepResult run_stic_sweep(
    const std::vector<analysis::Stic>& stics, const SticKernel& kernel,
    const SweepConfig& config,
    const std::function<bool(const SticRecord&)>& stop_when) {
  SticSweepResult result;
  result.records = sweep_map<SticRecord>(
      stics.size(), [&](std::size_t i) { return kernel(stics[i]); },
      config, stop_when, &result.stats);
  return result;
}

support::Table to_table(std::vector<std::string> headers,
                        const std::vector<SticRecord>& records) {
  support::Table table(std::move(headers));
  for (const SticRecord& record : records) {
    if (!record.cells.empty()) table.add_row(record.cells);
  }
  return table;
}

analysis::SweepSummary feasibility_sweep(const graph::Graph& g,
                                         std::uint64_t max_delay,
                                         const sim::AgentProgram& program,
                                         const sim::RunConfig& run_config,
                                         const SweepConfig& sweep_config) {
  // Resolved through the artifact cache: repeated sweeps over the same
  // graph (and concurrent sweeps on other threads) share one partition
  // refinement. The shared_ptr keeps the artifact alive past eviction.
  const std::shared_ptr<const views::ViewClasses> classes =
      detail::effective_cache(sweep_config).view_classes(g);
  const std::vector<analysis::Stic> stics =
      analysis::enumerate_stics(g, max_delay);
  analysis::SweepSummary summary;
  summary.checks = sweep_map<analysis::SticCheck>(
      stics.size(),
      [&](std::size_t i) {
        return analysis::verify_stic(g, *classes, stics[i], program,
                                     run_config);
      },
      sweep_config);
  for (const analysis::SticCheck& check : summary.checks) {
    if (check.cls.feasible) {
      ++summary.feasible;
    } else {
      ++summary.infeasible;
    }
    if (!check.consistent) ++summary.inconsistent;
  }
  return summary;
}

bool stop_at_infeasible(const SticRecord& record) {
  return !record.cls.feasible;
}

}  // namespace rdv::sweep
