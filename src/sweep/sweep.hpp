#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/feasibility.hpp"
#include "analysis/stics.hpp"
#include "cache/artifact_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/task_events.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

/// Sharded, pipelined sweep runner — the substrate for the experiment
/// sweeps (STIC enumeration, feasibility cross-checks, rendezvous-time
/// tables).
///
/// The index space is partitioned into contiguous chunks; chunks
/// execute on a support::ThreadPool and results are merged BY CHUNK
/// INDEX, never by completion order, so the output is byte-identical
/// for any thread count. Scheduling and merging are PIPELINED: the
/// merge loop waits (work-assisting, so a nested sweep inside a pool
/// task cannot deadlock) for the front chunk only, merges it while
/// later chunks are still executing, and — when an early-exit
/// predicate bounds the sweep — tops the in-flight window back up one
/// chunk per merged chunk, so wave k+1 runs while wave k's output is
/// consumed. Early-exit predicates are evaluated on the merged stream
/// in index order: the result is truncated right after the first item
/// matching the predicate, no further chunk is scheduled, in-flight
/// chunks observe the stop flag and skip their remaining kernel calls,
/// and every discarded chunk buffer is released before return.
namespace rdv::sweep {

struct SweepConfig {
  /// Items per chunk; 0 falls back to the default. Small chunks load-
  /// balance better, large chunks amortize scheduling.
  std::size_t chunk_size = 64;
  /// Pool to run on; nullptr uses support::default_pool(). The runner
  /// tracks its own chunks with a support::TaskGroup, so independent
  /// sweeps may share one pool without waiting on each other; kernels
  /// may themselves run nested sweeps (or otherwise block on the same
  /// pool via TaskGroup::wait) — waits are work-assisting, so the
  /// blocked worker executes the tasks it is waiting for.
  support::ThreadPool* pool = nullptr;
  /// Per-graph artifact cache used by the kernels the sweep layer
  /// builds itself (e.g. feasibility_sweep's view classes); nullptr
  /// uses cache::global_cache(). Artifacts are deterministic functions
  /// of the graph, so the cache choice never changes sweep output.
  cache::ArtifactCache* cache = nullptr;
};

struct SweepStats {
  std::size_t items_total = 0;
  std::size_t chunks_total = 0;
  /// Chunks actually handed to the pool. Scheduling-dependent (wave
  /// width scales with the pool); everything else in a sweep result is
  /// thread-count-invariant.
  std::size_t chunks_scheduled = 0;
  std::size_t items_produced = 0;
  bool stopped_early = false;
  /// Index (into the merged output) of the item that triggered the
  /// early exit; valid when stopped_early.
  std::size_t stop_index = 0;
};

namespace detail {
inline std::size_t effective_chunk_size(const SweepConfig& config) {
  return config.chunk_size == 0 ? 64 : config.chunk_size;
}
inline support::ThreadPool& effective_pool(const SweepConfig& config) {
  return config.pool != nullptr ? *config.pool : support::default_pool();
}
inline cache::ArtifactCache& effective_cache(const SweepConfig& config) {
  return config.cache != nullptr ? *config.cache : cache::global_cache();
}

/// Process-wide sweep-substrate series (ISSUE 7): chunk/item/early-exit
/// counters plus the pipeline-occupancy gauge (scheduled-but-unmerged
/// chunks; concurrent sweeps last-write-win, which is fine for a
/// point-in-time gauge). Handles resolved once per process.
struct SweepMetrics {
  obs::Counter& chunks = obs::counter("sweep.chunks");
  obs::Counter& items = obs::counter("sweep.items");
  obs::Counter& early_exits = obs::counter("sweep.early_exits");
  obs::Counter& chunk_skips = obs::counter("sweep.chunk_skips");
  obs::Counter& window_refills = obs::counter("sweep.window_refills");
  obs::Gauge& occupancy = obs::gauge("sweep.pipeline_occupancy");
};
inline SweepMetrics& sweep_metrics() {
  static SweepMetrics metrics;
  return metrics;
}
}  // namespace detail

/// Maps fn over [0, n) with deterministic ordering. `stop_when`, if
/// set, is tested against each produced item in index order; the first
/// hit truncates the output (inclusive) and stops scheduling.
template <typename R>
std::vector<R> sweep_map(std::size_t n,
                         const std::function<R(std::size_t)>& fn,
                         const SweepConfig& config = {},
                         const std::function<bool(const R&)>& stop_when = {},
                         SweepStats* stats = nullptr) {
  const std::size_t chunk_size = detail::effective_chunk_size(config);
  support::ThreadPool& pool = detail::effective_pool(config);
  const std::size_t chunks =
      n == 0 ? 0 : (n + chunk_size - 1) / chunk_size;
  obs::Span sweep_span("sweep", "map");
  sweep_span.arg("items", n);
  // Profiler markers (ISSUE 9): the sweep id joins this sweep's chunk
  // tasks and merges into one DAG the analyzer can walk. All profiling
  // is sidecar-only — ids are allocated only when enabled, so the off
  // path costs one relaxed load.
  const bool profiled = obs::task_events_enabled();
  const std::uint64_t sweep_id = profiled ? obs::next_sweep_id() : 0;
  if (profiled) {
    obs::record_task_event(obs::TaskEventKind::kSweepBegin, 0, sweep_id,
                           chunks);
  }

  SweepStats local;
  local.items_total = n;
  local.chunks_total = chunks;

  // Without an early-exit predicate the whole index space is scheduled
  // upfront; with one, a sliding window a few chunks per worker wide is
  // kept in flight so a hit near the front does not pay for the whole
  // space. Either way the merge loop runs concurrently with execution.
  const std::size_t window =
      stop_when ? std::max<std::size_t>(1, pool.thread_count() * 2) : chunks;

  std::vector<std::vector<R>> chunk_out(chunks);
  // Completion slots: a chunk task fills chunk_out[c], then publishes
  // it with a release store the merge loop acquires — the only
  // synchronization the pipeline needs besides the pool's own.
  std::vector<std::atomic<bool>> chunk_done(chunks);
  // Set when the early-exit predicate fires. In-flight chunks poll it
  // per item and bail out: everything they would produce is past the
  // stop index and discarded anyway, so skipping keeps the output
  // byte-identical while releasing their buffers early.
  std::atomic<bool> stop_flag{false};
  std::vector<R> merged;
  merged.reserve(n);
  // Per-sweep completion tracking: the group counts only this sweep's
  // chunks, so concurrent sweeps sharing the pool never wait on each
  // other (ThreadPool::wait_idle would wait for the whole pool).
  support::TaskGroup group(pool);
  const auto schedule = [&](std::size_t c) {
    const std::size_t lo = c * chunk_size;
    const std::size_t hi = std::min(n, lo + chunk_size);
    std::vector<R>* out = &chunk_out[c];
    std::atomic<bool>* done = &chunk_done[c];
    const std::uint64_t task_id =
        group.submit([lo, hi, out, done, &fn, &stop_flag] {
          obs::Span chunk_span("sweep", "chunk");
          chunk_span.arg("items", hi - lo);
          detail::SweepMetrics& metrics = detail::sweep_metrics();
          metrics.chunks.add();
          out->reserve(hi - lo);
          for (std::size_t i = lo; i < hi; ++i) {
            if (stop_flag.load(std::memory_order_relaxed)) {
              std::vector<R>().swap(*out);
              metrics.chunk_skips.add();
              break;
            }
            out->push_back(fn(i));
          }
          metrics.items.add(out->size());
          done->store(true, std::memory_order_release);
        });
    // Labels the pool task as chunk `c` of this sweep — the join key
    // between the pool lifecycle events and the sweep DAG.
    if (task_id != 0) {
      obs::record_task_event(obs::TaskEventKind::kChunkTask, task_id,
                             sweep_id, c);
    }
    ++local.chunks_scheduled;
  };
  std::size_t next_chunk = 0;
  for (; next_chunk < std::min(chunks, window); ++next_chunk) {
    schedule(next_chunk);
  }
  bool stopped = false;
  // next_chunk grows inside the loop as the window refills, so the
  // bound re-reads it: the loop drains every chunk ever scheduled.
  for (std::size_t front = 0; front < next_chunk; ++front) {
    // Tagged with the group: an assisting worker runs only this
    // sweep's chunks (plus its own deque's descendants), never an
    // unrelated task that could block or nest arbitrarily deep.
    pool.assist_until(
        [&chunk_done, front] {
          return chunk_done[front].load(std::memory_order_acquire);
        },
        group.tag());
    if (!stopped) {
      obs::Span merge_span("sweep", "merge");
      merge_span.arg("chunk", front);
      // Note for the analyzer: the chunk task publishes chunk_done
      // BEFORE the pool records its kEnd, so this kMergeBegin may
      // carry a timestamp slightly before the chunk's kEnd — the
      // critical-path walk clamps such subtractions.
      if (profiled) {
        obs::record_task_event(obs::TaskEventKind::kMergeBegin, 0,
                               sweep_id, front);
      }
      for (R& r : chunk_out[front]) {
        merged.push_back(std::move(r));
        if (stop_when && stop_when(merged.back())) {
          local.stopped_early = true;
          local.stop_index = merged.size() - 1;
          stopped = true;
          stop_flag.store(true, std::memory_order_relaxed);
          detail::sweep_metrics().early_exits.add();
          break;
        }
      }
      if (profiled) {
        obs::record_task_event(obs::TaskEventKind::kMergeEnd, 0,
                               sweep_id, front);
      }
    }
    // Swap-with-empty, not clear(): merged chunks would otherwise keep
    // their capacity and discarded chunks (the early-exit trigger and
    // everything scheduled past it) their full contents until return.
    std::vector<R>().swap(chunk_out[front]);
    if (!stopped && next_chunk < chunks) {
      schedule(next_chunk);
      ++next_chunk;
      detail::sweep_metrics().window_refills.add();
    }
    detail::sweep_metrics().occupancy.set(
        static_cast<std::int64_t>(next_chunk - front - 1));
  }
  group.wait();  // defensive: every scheduled chunk is already done
  local.items_produced = merged.size();
  if (profiled) {
    obs::record_task_event(obs::TaskEventKind::kSweepEnd, 0, sweep_id,
                           merged.size());
  }
  if (stats != nullptr) *stats = local;
  return merged;
}

/// One sweep datapoint: the STIC it came from, its classification, the
/// simulation outcome, and (optionally) pre-rendered table cells.
struct SticRecord {
  analysis::Stic stic;
  analysis::ClassifiedStic cls;
  sim::RunResult run;
  /// When nonempty, to_table() emits these as one row.
  std::vector<std::string> cells;
};

/// Computes one record from one STIC. Must be thread-safe: invoked
/// concurrently from pool workers.
using SticKernel = std::function<SticRecord(const analysis::Stic&)>;

struct SticSweepResult {
  /// Records in STIC order (truncated after an early-exit trigger).
  std::vector<SticRecord> records;
  SweepStats stats;
};

/// Runs the kernel over an explicit STIC list (enumerate_stics output
/// or a hand-built case list) with chunked pool execution.
[[nodiscard]] SticSweepResult run_stic_sweep(
    const std::vector<analysis::Stic>& stics, const SticKernel& kernel,
    const SweepConfig& config = {},
    const std::function<bool(const SticRecord&)>& stop_when = {});

/// Collects the records' `cells` rows (records with empty cells are
/// skipped) into a Table, preserving sweep order.
[[nodiscard]] support::Table to_table(std::vector<std::string> headers,
                                      const std::vector<SticRecord>& records);

/// analysis::feasibility_sweep rebuilt on the sweep runner: verifies
/// every ordered STIC with delays 0..max_delay against Corollary 3.1.
[[nodiscard]] analysis::SweepSummary feasibility_sweep(
    const graph::Graph& g, std::uint64_t max_delay,
    const sim::AgentProgram& program, const sim::RunConfig& run_config,
    const SweepConfig& sweep_config = {});

/// Early-exit predicate: first STIC classified infeasible.
[[nodiscard]] bool stop_at_infeasible(const SticRecord& record);

}  // namespace rdv::sweep
