#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "obs/stats.hpp"
#include "store/codec.hpp"

/// Content-addressed, crash-safe on-disk artifact store (ISSUE 4
/// tentpole) — the persistent second tier behind cache::ArtifactCache.
///
/// Layout: one subdirectory per artifact kind under the root, one file
/// per key (`<root>/<kind>/<key>.bin`). Each file carries a header
/// (magic, format version, build salt, kind, key echo, payload size,
/// payload checksum) followed by the codec payload; loads verify every
/// header field and the checksum, and ANY mismatch — corruption,
/// truncation, a stale format version, a different build salt, a hash
/// collision on the key — degrades to a miss so the caller recomputes
/// (and rewrites) instead of trusting stale bytes. Writes are
/// write-temp-fsync-then-rename: the temp file's data reaches the
/// device BEFORE the rename makes it visible (a rename alone only
/// orders metadata — a crash could otherwise publish a zero-length or
/// partial final file), so a crash mid-write leaves at most a stray
/// temp file, never a torn final file, and two processes racing on one
/// key atomically settle on one complete file. On platforms without
/// fsync the write degrades to flush-then-rename.
namespace rdv::store {

/// On-disk format version; bump when the header or any codec changes.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Ties stored artifacts to the generation of the code that produced
/// them: bump when artifact SEMANTICS change (corpus definition, UXS
/// seed, refinement order...) so stale stores fall back to recompute.
/// RDV_STORE_SALT overrides for experiments.
inline constexpr const char* kDefaultBuildSalt = "rdv-artifacts-v1";

/// Per-kind counters; snapshot via DiskStore::stats(). The
/// hits/misses/bytes core is the shared obs::TierStats — the same
/// snapshot vocabulary as cache::StoreStats, so tier-efficiency
/// consumers (the metrics registry bridge, rdv_metrics) handle both
/// uniformly. For this disk tier, inherited `bytes` counts bytes READ
/// (header + payload served on hits); this adds the disk-only fields.
struct DiskStats : obs::TierStats {
  /// Subsets of misses, mutually exclusive: `corrupt` counts files
  /// that failed validation (bad magic, checksum, truncation, codec
  /// error, foreign key echo); `version_mismatch` counts well-formed
  /// files carrying another format version or build salt.
  std::uint64_t corrupt = 0;
  std::uint64_t version_mismatch = 0;
  std::uint64_t writes = 0;
  std::uint64_t write_failures = 0;
  std::uint64_t bytes_written = 0;
};

struct DiskConfig {
  /// Root directory; created (with the per-kind subdirectories) on
  /// construction.
  std::string root;
  std::string build_salt = kDefaultBuildSalt;
  /// When true, save() is a no-op (shared stores on read-only media).
  bool read_only = false;
  /// Test-only failure injection: called at each durable-write stage
  /// ("open", "write", "sync", "close"); returning true fails that
  /// stage. Lets tests pin that the temp file is never renamed into
  /// place unless every stage — including the pre-rename fsync — came
  /// back clean, without needing a real disk fault.
  std::function<bool(const char* stage)> fail_stage;
};

/// Thread-safe (and multi-process-safe: atomicity comes from POSIX
/// rename, not locks). Keys must be filename-safe; the ArtifactCache
/// derives them from fingerprints/sizes, never from user input.
class DiskStore {
 public:
  explicit DiskStore(DiskConfig config);

  /// The validated payload for (kind, key), or nullopt on any miss
  /// (absent, torn, corrupt, version/salt mismatch, foreign key echo).
  [[nodiscard]] std::optional<std::string> load(Kind kind,
                                               const std::string& key);

  /// Persists the payload under (kind, key) atomically. Returns false
  /// (and counts a write failure) when the filesystem refuses; the
  /// store stays usable — persistence is an optimization, never a
  /// correctness dependency.
  bool save(Kind kind, const std::string& key, std::string_view payload);

  [[nodiscard]] DiskStats stats(Kind kind) const;
  /// Sum over all kinds.
  [[nodiscard]] DiskStats total_stats() const;

  [[nodiscard]] const DiskConfig& config() const noexcept { return config_; }

  /// Final path of (kind, key) — exposed for tests that corrupt files.
  [[nodiscard]] std::string path_for(Kind kind,
                                     const std::string& key) const;

 private:
  struct AtomicStats {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> corrupt{0};
    std::atomic<std::uint64_t> version_mismatch{0};
    std::atomic<std::uint64_t> writes{0};
    std::atomic<std::uint64_t> write_failures{0};
    std::atomic<std::uint64_t> bytes_read{0};
    std::atomic<std::uint64_t> bytes_written{0};
  };

  DiskConfig config_;
  AtomicStats stats_[kKindCount];
  std::atomic<std::uint64_t> temp_seq_{0};
};

}  // namespace rdv::store
