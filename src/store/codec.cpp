#include "store/codec.hpp"

namespace rdv::store {

namespace {

constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ULL;

constexpr std::uint64_t scramble(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t checksum(std::string_view bytes) noexcept {
  // Same position-salted SplitMix compression as cache::fingerprint:
  // permuted byte blocks hash differently.
  std::uint64_t state = 0xC0DEC0DE5EED0003ULL;
  std::uint64_t position = 0;
  std::size_t i = 0;
  while (i < bytes.size()) {
    std::uint64_t word = 0;
    for (int b = 0; b < 8 && i < bytes.size(); ++b, ++i) {
      word |= static_cast<std::uint64_t>(
                  static_cast<unsigned char>(bytes[i]))
              << (8 * b);
    }
    state = scramble(state ^ (word + kGamma * ++position));
  }
  return scramble(state ^ bytes.size());
}

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kViewClasses: return "view_classes";
    case Kind::kQuotients: return "quotients";
    case Kind::kUxs: return "uxs";
    case Kind::kShrink: return "shrink";
    case Kind::kShrinkAllPairs: return "shrink_all_pairs";
  }
  return "?";
}

std::string encode_uxs(const uxs::Uxs& y) {
  Encoder e;
  e.u64_vec(std::vector<std::uint64_t>(y.terms().begin(), y.terms().end()));
  e.str(y.provenance());
  return e.take();
}

uxs::Uxs decode_uxs(std::string_view bytes) {
  Decoder d(bytes);
  std::vector<std::uint64_t> terms = d.u64_vec();
  std::string provenance = d.str();
  d.finish();
  return uxs::Uxs(std::move(terms), std::move(provenance));
}

std::string encode_view_classes(const views::ViewClasses& c) {
  Encoder e;
  e.u32_vec(c.class_of);
  e.u32(c.class_count);
  e.u32(c.rounds);
  return e.take();
}

views::ViewClasses decode_view_classes(std::string_view bytes) {
  Decoder d(bytes);
  views::ViewClasses c;
  c.class_of = d.u32_vec();
  c.class_count = d.u32();
  c.rounds = d.u32();
  d.finish();
  return c;
}

std::string encode_quotient(const views::QuotientGraph& q) {
  Encoder e;
  e.u64(q.arcs.size());
  for (const std::vector<views::QuotientArc>& arcs : q.arcs) {
    e.u64(arcs.size());
    for (const views::QuotientArc& arc : arcs) {
      e.u32(arc.to_class);
      e.u32(arc.rev_port);
    }
  }
  e.u32_vec(q.multiplicity);
  return e.take();
}

views::QuotientGraph decode_quotient(std::string_view bytes) {
  Decoder d(bytes);
  views::QuotientGraph q;
  const std::uint64_t classes = d.u64();
  if (classes > d.remaining() / 8) {
    throw CodecError("quotient class count past end");
  }
  q.arcs.resize(classes);
  for (std::uint64_t c = 0; c < classes; ++c) {
    const std::uint64_t ports = d.u64();
    if (ports > d.remaining() / 8) {
      throw CodecError("quotient arc count past end");
    }
    q.arcs[c].resize(ports);
    for (std::uint64_t p = 0; p < ports; ++p) {
      q.arcs[c][p].to_class = d.u32();
      q.arcs[c][p].rev_port = d.u32();
    }
  }
  q.multiplicity = d.u32_vec();
  d.finish();
  return q;
}

std::string encode_shrink(const views::ShrinkResult& r) {
  Encoder e;
  e.u32(r.shrink);
  e.u32_vec(r.witness);
  e.u32(r.closest_u);
  e.u32(r.closest_v);
  e.u64(r.pairs_explored);
  return e.take();
}

views::ShrinkResult decode_shrink(std::string_view bytes) {
  Decoder d(bytes);
  views::ShrinkResult r;
  r.shrink = d.u32();
  r.witness = d.u32_vec();
  r.closest_u = d.u32();
  r.closest_v = d.u32();
  r.pairs_explored = d.u64();
  d.finish();
  return r;
}

std::string encode_all_pairs_shrink(const views::AllPairsShrink& a) {
  Encoder e;
  e.u32(a.n);
  e.u32_vec(a.values);
  e.u64(a.pairs_explored);
  return e.take();
}

views::AllPairsShrink decode_all_pairs_shrink(std::string_view bytes) {
  Decoder d(bytes);
  views::AllPairsShrink a;
  a.n = d.u32();
  a.values = d.u32_vec();
  a.pairs_explored = d.u64();
  d.finish();
  if (a.values.size() !=
      static_cast<std::size_t>(a.n) * static_cast<std::size_t>(a.n)) {
    throw CodecError("all-pairs shrink table is not n x n");
  }
  return a;
}

}  // namespace rdv::store
