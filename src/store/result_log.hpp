#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "store/codec.hpp"
#include "support/check.hpp"

/// Compact binary sweep-result log (ISSUE 4 tentpole) — the
/// "millions-of-STICs" alternative to per-experiment CSV/JSON files.
///
/// One log holds the full result stream of an `rdv_bench` run: a file
/// header (magic, format version) followed by one length-prefixed,
/// checksummed record per experiment (id, scale, wall-clock, sweep
/// counters, output schema, every table row). Records are framed
/// independently, so a torn or corrupt record is detected at its exact
/// boundary; read_result_log is deliberately STRICT — any damage
/// anywhere throws rather than returning a silently partial log — and
/// is the round-trip verifier behind `rdv_bench --result-log --check`.
namespace rdv::store {

inline constexpr std::uint32_t kResultLogVersion = 1;

/// One experiment's result as logged.
struct ResultRecord {
  std::string experiment_id;
  std::string scale;
  /// Wall-clock of run_experiment; scheduling-dependent, excluded from
  /// the byte-identity comparisons (those cover the TABLES).
  std::uint64_t wall_micros = 0;
  std::uint64_t items_total = 0;
  std::uint64_t items_produced = 0;
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

/// Streaming writer; one record per append(), flushed per record so a
/// crash loses at most the record being written.
class ResultLogWriter {
 public:
  /// Truncates and writes the file header. ok() reports failures —
  /// logging is best-effort, never fatal to the run.
  explicit ResultLogWriter(const std::string& path);

  void append(const ResultRecord& record);

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t records_written() const noexcept {
    return records_;
  }

 private:
  std::ofstream out_;
  bool ok_ = false;
  std::size_t records_ = 0;
};

/// Deterministic incremental streaming from concurrent producers.
///
/// Sweep cases finish in scheduler order, but the log must be
/// byte-identical at every thread count, so each producer submits its
/// record under its CASE INDEX: the completed prefix is appended to the
/// writer immediately (streaming — nothing buffers longer than the
/// out-of-order window) and out-of-order records wait in a small
/// pending map until their predecessors arrive. Thread-safe; a record
/// submitted at an index already flushed (or submitted twice) is
/// dropped.
class OrderedResultStream {
 public:
  /// Records flush into `writer`; when `collect` is non-null every
  /// flushed record is also appended there, in flush order (the
  /// verification path of --check).
  explicit OrderedResultStream(ResultLogWriter& writer,
                               std::vector<ResultRecord>* collect = nullptr)
      : writer_(writer), collect_(collect) {}

  void submit(std::size_t index, ResultRecord record);

  /// Records flushed to the writer so far.
  [[nodiscard]] std::size_t flushed() const;
  /// Records still waiting for a predecessor (must be 0 after a run in
  /// which every case index submitted).
  [[nodiscard]] std::size_t pending() const;

 private:
  mutable support::RankedMutex mutex_{support::LockRank::kStore};
  ResultLogWriter& writer_;
  std::vector<ResultRecord>* collect_;
  std::size_t next_ = 0;
  std::map<std::size_t, ResultRecord> pending_;
};

/// Parses a complete log. Throws CodecError on a bad header, a torn or
/// corrupt record, or trailing garbage — the strictness --check needs.
[[nodiscard]] std::vector<ResultRecord> read_result_log(
    const std::string& path);

/// Deterministic byte rendering of one record (the framed payload,
/// without the length/checksum envelope) — reused by the writer and by
/// tests pinning the format.
[[nodiscard]] std::string encode_result_record(const ResultRecord& record);
[[nodiscard]] ResultRecord decode_result_record(std::string_view bytes);

}  // namespace rdv::store
