#include "store/disk_store.hpp"

#if defined(_WIN32)
#include <process.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace rdv::store {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'R', 'D', 'V', 'S'};

std::size_t kind_index(Kind kind) noexcept {
  RDV_CHECK_MSG(static_cast<std::size_t>(kind) < kKindCount,
                "artifact kind out of range");
  return static_cast<std::size_t>(kind);
}

/// Whole-file read; nullopt when the file cannot be opened.
std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return std::move(buffer).str();
}

using FailStage = std::function<bool(const char*)>;

bool stage_fails(const FailStage& fail, const char* stage) {
  return fail && fail(stage);
}

/// Writes `bytes` to `path` and forces the DATA to the device before
/// returning true — the rename that follows only orders metadata, so
/// skipping the fsync could publish a zero-length or partial final
/// file after a crash. Any stage failing (or being injected as a
/// failure by the test hook) leaves the caller free to unlink the temp
/// and report a write failure; the rename must not happen.
bool write_durable(const std::string& path, const std::string& bytes,
                   const FailStage& fail) {
#if defined(_WIN32)
  // No fsync here: degrade to flush-then-rename (crash-safety weakens
  // to "torn files are caught by the checksum on load"). The stage
  // sequence stays open;write;sync;close so the injection hook (and
  // the store_test pinning it) behaves identically.
  bool ok;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out || stage_fails(fail, "open")) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ok = out.good() && !stage_fails(fail, "write");
    out.flush();
    if (ok && (!out.good() || stage_fails(fail, "sync"))) ok = false;
  }
  return ok && !stage_fails(fail, "close");
#else
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0 || stage_fails(fail, "open")) {
    if (fd >= 0) ::close(fd);
    return false;
  }
  bool ok = true;
  std::size_t written = 0;
  while (ok && written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      ok = false;
    } else {
      written += static_cast<std::size_t>(n);
    }
  }
  if (stage_fails(fail, "write")) ok = false;
  if (ok && (::fsync(fd) != 0 || stage_fails(fail, "sync"))) ok = false;
  if (::close(fd) != 0 || stage_fails(fail, "close")) ok = false;
  return ok;
#endif
}

long process_id() {
#if defined(_WIN32)
  return static_cast<long>(::_getpid());
#else
  return static_cast<long>(::getpid());
#endif
}

}  // namespace

DiskStore::DiskStore(DiskConfig config) : config_(std::move(config)) {
  // Best-effort directory creation: an unusable root degrades every
  // load to a miss and every save to a counted failure, it never
  // throws out of experiment setup.
  std::error_code ec;
  for (std::size_t k = 0; k < kKindCount; ++k) {
    fs::create_directories(
        fs::path(config_.root) / kind_name(static_cast<Kind>(k)), ec);
  }
}

std::string DiskStore::path_for(Kind kind, const std::string& key) const {
  return (fs::path(config_.root) / kind_name(kind) / (key + ".bin"))
      .string();
}

std::optional<std::string> DiskStore::load(Kind kind,
                                           const std::string& key) {
  AtomicStats& s = stats_[kind_index(kind)];
  std::optional<std::string> raw = read_file(path_for(kind, key));
  if (!raw.has_value()) {
    s.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  s.bytes_read.fetch_add(raw->size(), std::memory_order_relaxed);
  try {
    if (raw->size() < 4 || !std::equal(kMagic, kMagic + 4, raw->data())) {
      throw CodecError("bad magic");
    }
    Decoder body(std::string_view(*raw).substr(4));
    const std::uint32_t version = body.u32();
    const std::string salt = body.str();
    if (version != kFormatVersion || salt != config_.build_salt) {
      s.version_mismatch.fetch_add(1, std::memory_order_relaxed);
      s.misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    const std::string stored_kind = body.str();
    const std::string stored_key = body.str();
    if (stored_kind != kind_name(kind) || stored_key != key) {
      throw CodecError("foreign key echo");
    }
    const std::uint64_t payload_size = body.u64();
    const std::uint64_t payload_sum = body.u64();
    if (payload_size != body.remaining()) {
      throw CodecError("payload size mismatch");
    }
    std::string payload = body.rest();
    if (checksum(payload) != payload_sum) {
      throw CodecError("payload checksum mismatch");
    }
    s.hits.fetch_add(1, std::memory_order_relaxed);
    return payload;
  } catch (const CodecError&) {
    s.corrupt.fetch_add(1, std::memory_order_relaxed);
    s.misses.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
}

bool DiskStore::save(Kind kind, const std::string& key,
                     std::string_view payload) {
  AtomicStats& s = stats_[kind_index(kind)];
  if (config_.read_only) return false;

  Encoder e;
  // Header; the magic goes in raw so a hexdump identifies store files.
  std::string bytes(kMagic, 4);
  e.u32(kFormatVersion);
  e.str(config_.build_salt);
  e.str(kind_name(kind));
  e.str(key);
  e.u64(payload.size());
  e.u64(checksum(payload));
  bytes += e.take();
  bytes.append(payload.data(), payload.size());

  const std::string final_path = path_for(kind, key);
  // Unique temp in the SAME directory (rename must not cross devices):
  // pid + store identity + per-store sequence keeps concurrent writers
  // — threads, several stores on one dir, and other processes — from
  // colliding on the temp name.
  std::ostringstream temp_name;
  temp_name << final_path << ".tmp." << process_id() << "."
            << reinterpret_cast<std::uintptr_t>(this) << "."
            << temp_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::string temp_path = temp_name.str();
  if (!write_durable(temp_path, bytes, config_.fail_stage)) {
    s.write_failures.fetch_add(1, std::memory_order_relaxed);
    std::error_code ec;
    fs::remove(temp_path, ec);
    return false;
  }
  std::error_code ec;
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    s.write_failures.fetch_add(1, std::memory_order_relaxed);
    fs::remove(temp_path, ec);
    return false;
  }
  s.writes.fetch_add(1, std::memory_order_relaxed);
  s.bytes_written.fetch_add(bytes.size(), std::memory_order_relaxed);
  return true;
}

DiskStats DiskStore::stats(Kind kind) const {
  const AtomicStats& s = stats_[kind_index(kind)];
  DiskStats out;
  out.hits = s.hits.load(std::memory_order_relaxed);
  out.misses = s.misses.load(std::memory_order_relaxed);
  out.corrupt = s.corrupt.load(std::memory_order_relaxed);
  out.version_mismatch = s.version_mismatch.load(std::memory_order_relaxed);
  out.writes = s.writes.load(std::memory_order_relaxed);
  out.write_failures = s.write_failures.load(std::memory_order_relaxed);
  out.bytes = s.bytes_read.load(std::memory_order_relaxed);
  out.bytes_written = s.bytes_written.load(std::memory_order_relaxed);
  return out;
}

DiskStats DiskStore::total_stats() const {
  DiskStats total;
  for (std::size_t k = 0; k < kKindCount; ++k) {
    const DiskStats s = stats(static_cast<Kind>(k));
    static_cast<obs::TierStats&>(total) += s;
    total.corrupt += s.corrupt;
    total.version_mismatch += s.version_mismatch;
    total.writes += s.writes;
    total.write_failures += s.write_failures;
    total.bytes_written += s.bytes_written;
  }
  return total;
}

}  // namespace rdv::store
