#pragma once

#include <string>
#include <vector>

#include "store/result_log.hpp"

/// Rendering and comparison helpers behind the `rdv_log` result-log
/// consumer CLI (dump to CSV/JSON, diff two logs). Kept in the store
/// layer so the formats are unit-testable without spawning the binary.
namespace rdv::store {

/// CSV rendering: one `# record` metadata comment line per record
/// followed by its table (headers + rows), records separated by a
/// blank line. wall_micros is scheduling noise and is omitted unless
/// `include_wall` — the default rendering of the same logical run is
/// byte-identical across thread counts.
[[nodiscard]] std::string render_log_csv(
    const std::vector<ResultRecord>& records, bool include_wall = false);

/// JSON rendering: an array of record objects, each with its table as
/// {"headers": [...], "rows": [[...], ...]}. Same include_wall rule.
[[nodiscard]] std::string render_log_json(
    const std::vector<ResultRecord>& records, bool include_wall = false);

struct LogDiff {
  bool identical = true;
  /// Human-readable divergence report ("" when identical).
  std::string report;
};

/// Structural comparison of two parsed logs via their canonical record
/// encodings. `ignore_wall` (the default) zeroes wall_micros on both
/// sides first, so two runs of the same workload compare equal
/// regardless of timing.
[[nodiscard]] LogDiff diff_logs(const std::vector<ResultRecord>& a,
                                const std::vector<ResultRecord>& b,
                                bool ignore_wall = true);

}  // namespace rdv::store
