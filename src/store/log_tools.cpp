#include "store/log_tools.hpp"

#include <algorithm>
#include <sstream>

#include "support/table.hpp"

namespace rdv::store {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

support::Table record_table(const ResultRecord& r) {
  support::Table table(r.headers);
  for (const std::vector<std::string>& row : r.rows) table.add_row(row);
  return table;
}

}  // namespace

std::string render_log_csv(const std::vector<ResultRecord>& records,
                           bool include_wall) {
  std::ostringstream out;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ResultRecord& r = records[i];
    if (i != 0) out << '\n';
    out << "# record " << i << ": " << r.experiment_id
        << " scale=" << r.scale << " items=" << r.items_produced << '/'
        << r.items_total;
    if (include_wall) out << " wall_us=" << r.wall_micros;
    out << '\n' << record_table(r).to_csv();
  }
  return std::move(out).str();
}

std::string render_log_json(const std::vector<ResultRecord>& records,
                            bool include_wall) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ResultRecord& r = records[i];
    if (i != 0) out << ",";
    out << "\n  {\"experiment_id\": \"" << json_escape(r.experiment_id)
        << "\", \"scale\": \"" << json_escape(r.scale) << "\"";
    if (include_wall) out << ", \"wall_micros\": " << r.wall_micros;
    out << ", \"items_total\": " << r.items_total
        << ", \"items_produced\": " << r.items_produced
        << ", \"table\": " << record_table(r).to_json() << "}";
  }
  out << "\n]\n";
  return std::move(out).str();
}

LogDiff diff_logs(const std::vector<ResultRecord>& a,
                  const std::vector<ResultRecord>& b, bool ignore_wall) {
  LogDiff diff;
  std::ostringstream report;
  if (a.size() != b.size()) {
    diff.identical = false;
    report << "record count differs: " << a.size() << " vs " << b.size()
           << '\n';
  }
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    ResultRecord left = a[i];
    ResultRecord right = b[i];
    if (ignore_wall) {
      left.wall_micros = 0;
      right.wall_micros = 0;
    }
    if (encode_result_record(left) != encode_result_record(right)) {
      diff.identical = false;
      report << "record " << i << " (" << left.experiment_id << " vs "
             << right.experiment_id << ") differs\n";
    }
  }
  diff.report = std::move(report).str();
  return diff;
}

}  // namespace rdv::store
