#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "uxs/uxs.hpp"
#include "views/quotient.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

/// Deterministic binary codec for the persistent artifact store
/// (ISSUE 4 tentpole).
///
/// Every integer is encoded little-endian at a fixed width and every
/// container is length-prefixed, so the byte stream for a given
/// artifact is identical across platforms, runs, and process images —
/// the property the disk store's content checksums and the warm-run
/// byte-identity CI job rely on. Decoding is strict: trailing bytes,
/// truncation, and out-of-range lengths all raise CodecError, which the
/// disk store maps to "corrupt, fall back to recompute".
namespace rdv::store {

/// Decode-side failure (truncation, bad length, trailing garbage).
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width little-endian primitives to a byte string.
class Encoder {
 public:
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(byte_of(v, i));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(byte_of(v, i));
  }
  void str(std::string_view s) {
    u64(s.size());
    out_.append(s.data(), s.size());
  }
  void u32_vec(const std::vector<std::uint32_t>& v) {
    u64(v.size());
    for (std::uint32_t x : v) u32(x);
  }
  void u64_vec(const std::vector<std::uint64_t>& v) {
    u64(v.size());
    for (std::uint64_t x : v) u64(x);
  }

  [[nodiscard]] const std::string& bytes() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }

 private:
  static char byte_of(std::uint64_t v, int i) noexcept {
    return static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  std::string out_;
};

/// Reads the Encoder format back; every accessor throws CodecError on
/// truncation. Call finish() after the last field to reject trailing
/// garbage.
class Decoder {
 public:
  explicit Decoder(std::string_view in) : in_(in) {}

  std::uint32_t u32() { return static_cast<std::uint32_t>(fixed(4)); }
  std::uint64_t u64() { return fixed(8); }

  std::string str() {
    const std::uint64_t size = u64();
    if (size > remaining()) throw CodecError("string length past end");
    std::string s(in_.substr(pos_, size));
    pos_ += size;
    return s;
  }

  std::vector<std::uint32_t> u32_vec() {
    const std::uint64_t size = u64();
    if (size > remaining() / 4) throw CodecError("u32 vector length past end");
    std::vector<std::uint32_t> v(size);
    for (std::uint64_t i = 0; i < size; ++i) v[i] = u32();
    return v;
  }

  std::vector<std::uint64_t> u64_vec() {
    const std::uint64_t size = u64();
    if (size > remaining() / 8) throw CodecError("u64 vector length past end");
    std::vector<std::uint64_t> v(size);
    for (std::uint64_t i = 0; i < size; ++i) v[i] = u64();
    return v;
  }

  /// Consumes exactly n raw bytes (length-framed payloads).
  std::string bytes(std::size_t n) {
    if (n > remaining()) throw CodecError("raw span past end");
    std::string s(in_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// Consumes and returns everything left (raw trailing payloads).
  std::string rest() {
    std::string s(in_.substr(pos_));
    pos_ = in_.size();
    return s;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return in_.size() - pos_;
  }
  void finish() const {
    if (pos_ != in_.size()) throw CodecError("trailing bytes after payload");
  }

 private:
  std::uint64_t fixed(int width) {
    if (remaining() < static_cast<std::size_t>(width)) {
      throw CodecError("truncated integer");
    }
    std::uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(in_[pos_ + i]))
           << (8 * i);
    }
    pos_ += width;
    return v;
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

/// SplitMix-scrambled position-salted checksum over a byte string; the
/// integrity check of the disk store and the result log.
[[nodiscard]] std::uint64_t checksum(std::string_view bytes) noexcept;

/// The artifact kinds the store persists; each gets its own
/// subdirectory and its own stats counters.
enum class Kind {
  kViewClasses = 0,
  kQuotients = 1,
  kUxs = 2,
  kShrink = 3,
  kShrinkAllPairs = 4,
};
inline constexpr std::size_t kKindCount = 5;

/// Stable directory / stats name ("view_classes", "quotients", "uxs",
/// "shrink", "shrink_all_pairs").
[[nodiscard]] const char* kind_name(Kind kind) noexcept;

/// Artifact serializers: deterministic byte renderings of the four
/// cached artifact kinds. decode_* throws CodecError on any malformed
/// input and rejects trailing bytes.
[[nodiscard]] std::string encode_uxs(const uxs::Uxs& y);
[[nodiscard]] uxs::Uxs decode_uxs(std::string_view bytes);

[[nodiscard]] std::string encode_view_classes(const views::ViewClasses& c);
[[nodiscard]] views::ViewClasses decode_view_classes(std::string_view bytes);

[[nodiscard]] std::string encode_quotient(const views::QuotientGraph& q);
[[nodiscard]] views::QuotientGraph decode_quotient(std::string_view bytes);

[[nodiscard]] std::string encode_shrink(const views::ShrinkResult& r);
[[nodiscard]] views::ShrinkResult decode_shrink(std::string_view bytes);

[[nodiscard]] std::string encode_all_pairs_shrink(
    const views::AllPairsShrink& a);
[[nodiscard]] views::AllPairsShrink decode_all_pairs_shrink(
    std::string_view bytes);

}  // namespace rdv::store
