#include "store/result_log.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace rdv::store {

namespace {

constexpr char kLogMagic[4] = {'R', 'D', 'V', 'L'};

}  // namespace

std::string encode_result_record(const ResultRecord& record) {
  Encoder e;
  e.str(record.experiment_id);
  e.str(record.scale);
  e.u64(record.wall_micros);
  e.u64(record.items_total);
  e.u64(record.items_produced);
  e.u64(record.headers.size());
  for (const std::string& h : record.headers) e.str(h);
  e.u64(record.rows.size());
  for (const std::vector<std::string>& row : record.rows) {
    e.u64(row.size());
    for (const std::string& cell : row) e.str(cell);
  }
  return e.take();
}

ResultRecord decode_result_record(std::string_view bytes) {
  Decoder d(bytes);
  ResultRecord r;
  r.experiment_id = d.str();
  r.scale = d.str();
  r.wall_micros = d.u64();
  r.items_total = d.u64();
  r.items_produced = d.u64();
  const std::uint64_t headers = d.u64();
  if (headers > d.remaining()) throw CodecError("header count past end");
  r.headers.reserve(headers);
  for (std::uint64_t i = 0; i < headers; ++i) r.headers.push_back(d.str());
  const std::uint64_t rows = d.u64();
  if (rows > d.remaining()) throw CodecError("row count past end");
  r.rows.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    const std::uint64_t cells = d.u64();
    if (cells > d.remaining()) throw CodecError("cell count past end");
    std::vector<std::string> row;
    row.reserve(cells);
    for (std::uint64_t c = 0; c < cells; ++c) row.push_back(d.str());
    r.rows.push_back(std::move(row));
  }
  d.finish();
  return r;
}

ResultLogWriter::ResultLogWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) return;
  Encoder e;
  e.u32(kResultLogVersion);
  out_.write(kLogMagic, 4);
  const std::string header = e.take();
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.flush();
  ok_ = out_.good();
}

void ResultLogWriter::append(const ResultRecord& record) {
  if (!ok_) return;
  const std::string payload = encode_result_record(record);
  Encoder frame;
  frame.u64(payload.size());
  frame.u64(checksum(payload));
  const std::string head = frame.take();
  out_.write(head.data(), static_cast<std::streamsize>(head.size()));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out_.flush();
  ok_ = out_.good();
  if (ok_) ++records_;
}

void OrderedResultStream::submit(std::size_t index, ResultRecord record) {
  const std::scoped_lock lock(mutex_);
  if (index < next_ || pending_.count(index) != 0) return;
  pending_.emplace(index, std::move(record));
  for (auto it = pending_.find(next_); it != pending_.end();
       it = pending_.find(next_)) {
    writer_.append(it->second);
    if (collect_ != nullptr) collect_->push_back(std::move(it->second));
    pending_.erase(it);
    ++next_;
  }
  RDV_CHECK_MSG(pending_.empty() || pending_.begin()->first > next_,
                "ordered stream holds a record at or before the flush "
                "cursor");
}

std::size_t OrderedResultStream::flushed() const {
  const std::scoped_lock lock(mutex_);
  return next_;
}

std::size_t OrderedResultStream::pending() const {
  const std::scoped_lock lock(mutex_);
  return pending_.size();
}

std::vector<ResultRecord> read_result_log(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CodecError("result log unreadable: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = std::move(buffer).str();

  if (bytes.size() < 4 ||
      !std::equal(kLogMagic, kLogMagic + 4, bytes.data())) {
    throw CodecError("result log: bad magic");
  }
  Decoder d(std::string_view(bytes).substr(4));
  const std::uint32_t version = d.u32();
  if (version != kResultLogVersion) {
    throw CodecError("result log: format version mismatch");
  }
  std::vector<ResultRecord> records;
  while (d.remaining() > 0) {
    const std::uint64_t size = d.u64();
    const std::uint64_t sum = d.u64();
    if (size > d.remaining()) throw CodecError("result log: torn record");
    const std::string payload = d.bytes(size);
    if (checksum(payload) != sum) {
      throw CodecError("result log: record checksum mismatch");
    }
    records.push_back(decode_result_record(payload));
  }
  return records;
}

}  // namespace rdv::store
