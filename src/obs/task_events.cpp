#include "obs/task_events.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"
#include "support/check.hpp"

namespace rdv::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::size_t> g_ring_capacity{65536};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::uint64_t> g_recorded{0};
std::atomic<std::uint64_t> g_next_task{1};
std::atomic<std::uint64_t> g_next_sweep{1};
std::atomic<std::uint32_t> g_next_thread{0};

/// One thread's event ring. Like the span tracer's ring, the mutex is
/// private to the owning thread in steady state (only drain/clear
/// contend), so record() is an uncontended lock plus a struct store.
struct EventRing {
  support::RankedMutex mutex{support::LockRank::kObsRing};
  std::vector<TaskEvent> slots;
  std::size_t head = 0;
  std::size_t size = 0;
  std::uint32_t tid = 0;
  std::uint32_t seq = 0;

  void record(TaskEvent event) {
    std::lock_guard lock(mutex);
    if (slots.empty()) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    event.tid = tid;
    event.seq = seq++;
    if (size == slots.size()) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++size;
    }
    g_recorded.fetch_add(1, std::memory_order_relaxed);
    slots[head] = event;
    head = (head + 1) % slots.size();
  }

  /// Events oldest-first.
  std::vector<TaskEvent> snapshot() {
    std::lock_guard lock(mutex);
    std::vector<TaskEvent> out;
    out.reserve(size);
    const std::size_t capacity = slots.size();
    if (capacity == 0) return out;
    const std::size_t first = (head + capacity - size) % capacity;
    for (std::size_t i = 0; i < size; ++i) {
      out.push_back(slots[(first + i) % capacity]);
    }
    return out;
  }

  void clear() {
    std::lock_guard lock(mutex);
    head = 0;
    size = 0;
    seq = 0;
  }
};

struct RingDirectory {
  support::RankedMutex mutex{support::LockRank::kObsRing};
  std::vector<std::shared_ptr<EventRing>> rings;
};

RingDirectory& directory() {
  static RingDirectory dir;
  return dir;
}

/// The calling thread's ring, registered (and sized) on first use.
/// shared_ptr keeps the ring alive for drains after the thread exits.
EventRing& thread_event_ring() {
  thread_local const std::shared_ptr<EventRing> ring = [] {
    auto r = std::make_shared<EventRing>();
    r->slots.resize(g_ring_capacity.load(std::memory_order_relaxed));
    r->tid = thread_obs_id();
    RingDirectory& dir = directory();
    std::lock_guard lock(dir.mutex);
    dir.rings.push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

std::uint32_t thread_obs_id() noexcept {
  thread_local const std::uint32_t id =
      g_next_thread.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* task_event_kind_name(TaskEventKind kind) noexcept {
  switch (kind) {
    case TaskEventKind::kSubmit: return "submit";
    case TaskEventKind::kDequeue: return "dequeue";
    case TaskEventKind::kSteal: return "steal";
    case TaskEventKind::kBegin: return "begin";
    case TaskEventKind::kEnd: return "end";
    case TaskEventKind::kPark: return "park";
    case TaskEventKind::kUnpark: return "unpark";
    case TaskEventKind::kSweepBegin: return "sweep_begin";
    case TaskEventKind::kSweepEnd: return "sweep_end";
    case TaskEventKind::kChunkTask: return "chunk_task";
    case TaskEventKind::kMergeBegin: return "merge_begin";
    case TaskEventKind::kMergeEnd: return "merge_end";
  }
  return "?";
}

bool task_events_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_task_events_enabled(bool enabled) noexcept {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void set_task_event_ring_capacity(std::size_t events) noexcept {
  g_ring_capacity.store(events, std::memory_order_relaxed);
}

std::uint64_t next_task_id() noexcept {
  return g_next_task.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t next_sweep_id() noexcept {
  return g_next_sweep.fetch_add(1, std::memory_order_relaxed);
}

void record_task_event(TaskEventKind kind, std::uint64_t task,
                       std::uint64_t a, std::uint64_t b) {
  if (!task_events_enabled()) return;
  TaskEvent event;
  event.t_micros = now_micros();
  event.task = task;
  event.a = a;
  event.b = b;
  event.kind = kind;
  thread_event_ring().record(event);
}

std::uint64_t task_events_dropped_count() noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

std::uint64_t task_events_recorded_count() noexcept {
  return g_recorded.load(std::memory_order_relaxed);
}

std::vector<TaskEvent> drain_task_events() {
  std::vector<std::shared_ptr<EventRing>> rings;
  {
    RingDirectory& dir = directory();
    std::lock_guard lock(dir.mutex);
    rings = dir.rings;
  }
  std::vector<TaskEvent> events;
  for (const auto& ring : rings) {
    std::vector<TaskEvent> part = ring->snapshot();
    events.insert(events.end(), part.begin(), part.end());
  }
  std::sort(events.begin(), events.end(),
            [](const TaskEvent& x, const TaskEvent& y) {
              if (x.t_micros != y.t_micros) return x.t_micros < y.t_micros;
              if (x.tid != y.tid) return x.tid < y.tid;
              return x.seq < y.seq;
            });
  return events;
}

void clear_task_events() {
  std::vector<std::shared_ptr<EventRing>> rings;
  {
    RingDirectory& dir = directory();
    std::lock_guard lock(dir.mutex);
    rings = dir.rings;
  }
  for (const auto& ring : rings) ring->clear();
  g_dropped.store(0, std::memory_order_relaxed);
  g_recorded.store(0, std::memory_order_relaxed);
}

}  // namespace rdv::obs
