#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// Lightweight span tracer (ISSUE 7 tentpole): per-thread ring buffers
/// of completed spans, drained to Chrome `chrome://tracing` / Perfetto
/// JSON.
///
/// Design:
///  - Tracing is OFF by default; Span construction then costs one
///    relaxed atomic load and nothing is recorded. `rdv_bench
///    --trace-out` (or set_trace_enabled) switches it on for the run.
///  - Each recording thread owns one fixed-capacity ring. A full ring
///    OVERWRITES its oldest event — recording never blocks and never
///    allocates (events are fixed-size, names are copied into an
///    inline buffer, so dynamically built names are safe).
///  - Spans are recorded ON COMPLETION as Chrome "X" (complete)
///    events: begin timestamp + duration, category, optional one
///    integer arg. A span still open when the trace is drained (e.g.
///    a parked worker) simply isn't in the file.
///  - Rings are registered globally on first use and outlive their
///    threads; drain_trace() snapshots every ring (under its ring
///    mutex — uncontended in steady state) and merges events in
///    timestamp order.
///
/// Like metrics, traces are sidecar-only: nothing here touches stdout
/// or experiment output bytes.
namespace rdv::obs {

/// One completed span. Name/category are copied inline so kernels may
/// trace dynamically composed names without lifetime games.
struct TraceEvent {
  static constexpr std::size_t kNameCapacity = 47;
  char name[kNameCapacity + 1] = {0};
  /// Category pointer — trace call sites pass string literals
  /// ("pool", "sweep", "exp"); the viewer groups by it.
  const char* category = "";
  std::uint64_t start_micros = 0;
  std::uint64_t dur_micros = 0;
  /// Stable per-thread trace id (registration order, 0-based).
  std::uint32_t tid = 0;
  /// Optional single integer argument (nullptr key = none).
  const char* arg_key = nullptr;
  std::uint64_t arg_value = 0;
};

/// Global on/off switch (reads are one relaxed atomic load).
[[nodiscard]] bool trace_enabled() noexcept;
void set_trace_enabled(bool enabled) noexcept;

/// Ring capacity (events per thread) for rings created AFTER the call;
/// existing rings keep theirs. Default 16384.
void set_trace_ring_capacity(std::size_t events) noexcept;

/// Records one completed span on the calling thread's ring (drops the
/// oldest event when full). No-op when tracing is disabled.
void record_span(std::string_view name, const char* category,
                 std::uint64_t start_micros, std::uint64_t dur_micros,
                 const char* arg_key = nullptr, std::uint64_t arg_value = 0);

/// RAII span: stamps the start on construction, records on
/// destruction. When tracing is disabled at construction it records
/// nothing (even if tracing is enabled mid-span).
class Span {
 public:
  Span(const char* category, std::string_view name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches the single integer argument (last call wins).
  void arg(const char* key, std::uint64_t value) noexcept {
    arg_key_ = key;
    arg_value_ = value;
  }

 private:
  bool active_;
  const char* category_;
  char name_[TraceEvent::kNameCapacity + 1];
  const char* arg_key_ = nullptr;
  std::uint64_t arg_value_ = 0;
  std::uint64_t start_micros_ = 0;
};

/// Cumulative count of events dropped to ring overwrites (all rings).
[[nodiscard]] std::uint64_t trace_dropped_count() noexcept;

/// Snapshots every ring, merged by (start, tid) — deterministic for a
/// fixed set of recorded events. Does not stop tracing or clear rings.
[[nodiscard]] std::vector<TraceEvent> drain_trace();

/// Clears every ring and the dropped tally (rings stay registered).
void clear_trace();

/// Renders events as a Chrome trace JSON object (traceEvents array of
/// "X" phase events; ts/dur in micros; pid 1; tid = ring id).
/// `extra_events` is an optional pre-rendered fragment (comma-joined
/// event objects, no surrounding brackets) spliced into the array —
/// the task profiler appends its flow events this way.
[[nodiscard]] std::string render_chrome_trace(
    const std::vector<TraceEvent>& events,
    const std::string& extra_events = {});

/// drain_trace + render + write to path. Returns false when the file
/// cannot be written (reported on stderr, never stdout).
bool write_chrome_trace(const std::string& path);

}  // namespace rdv::obs
