#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// Task-lifecycle event log (ISSUE 9 tentpole): per-thread rings of
/// fixed-size scheduler events — submit / dequeue / steal / begin /
/// end / park / unpark from the thread pool, sweep / chunk / merge
/// markers from the pipelined sweep runner — carrying STABLE TASK IDS,
/// so a post-run analyzer (obs/profile.hpp) can stitch one task's
/// lifecycle across threads: who submitted it, who stole it, when it
/// ran, and which merge consumed its output.
///
/// Design mirrors the span tracer (obs/trace.hpp):
///  - OFF by default; when off, the instrumentation costs one relaxed
///    atomic load per call site and records nothing. `rdv_bench
///    --profile-out` (or set_task_events_enabled) switches it on.
///  - Each recording thread owns one fixed-capacity ring; a full ring
///    overwrites its oldest event (counted in the dropped tally) —
///    recording never blocks and never allocates. Events are plain
///    trivially-copyable structs.
///  - Rings register globally on first use and outlive their threads;
///    drain_task_events() snapshots every ring and merges the events
///    into one deterministic order.
///
/// Like metrics and traces, the event log is sidecar-only: nothing
/// here touches stdout or a result byte.
namespace rdv::obs {

/// Stable per-thread observability id, shared by the span tracer's
/// rings and the task-event rings (assigned once per thread, in
/// first-use order). Sharing one id space is what lets Chrome-trace
/// flow events stitched from task events land on the same timeline
/// rows as that thread's spans.
[[nodiscard]] std::uint32_t thread_obs_id() noexcept;

enum class TaskEventKind : std::uint8_t {
  /// Pool: task enqueued (tid = submitter). task = id.
  kSubmit = 0,
  /// Pool: task popped from the executor's own deque or the shared
  /// queue (tid = executor). task = id.
  kDequeue,
  /// Pool: task popped from ANOTHER worker's deque (tid = thief).
  /// task = id, a = victim worker index within its pool.
  kSteal,
  /// Pool: task body starts / finishes executing (tid = executor).
  kBegin,
  kEnd,
  /// Pool: the thread went to sleep on the wake cv / woke from it.
  kPark,
  kUnpark,
  /// Sweep: sweep_map entry/exit on the merging thread.
  /// a = sweep id, b = chunk count (begin) / items produced (end).
  kSweepBegin,
  kSweepEnd,
  /// Sweep: labels a just-submitted pool task as chunk `b` of sweep
  /// `a` — the join key between the pool lifecycle and the sweep DAG.
  kChunkTask,
  /// Sweep: merge of chunk `b` of sweep `a` starts / finishes on the
  /// merging thread.
  kMergeBegin,
  kMergeEnd,
};

[[nodiscard]] const char* task_event_kind_name(TaskEventKind kind) noexcept;

struct TaskEvent {
  std::uint64_t t_micros = 0;
  /// Pool task id (next_task_id), 0 when the event has no task.
  std::uint64_t task = 0;
  /// Kind-specific (see TaskEventKind): victim index, sweep id.
  std::uint64_t a = 0;
  /// Kind-specific: chunk index, chunk count, items produced.
  std::uint64_t b = 0;
  /// Recording thread (thread_obs_id).
  std::uint32_t tid = 0;
  /// Per-ring sequence number: breaks same-microsecond ties so the
  /// merged order is deterministic for a fixed set of events.
  std::uint32_t seq = 0;
  TaskEventKind kind = TaskEventKind::kSubmit;
};

/// Global on/off switch (reads are one relaxed atomic load).
[[nodiscard]] bool task_events_enabled() noexcept;
void set_task_events_enabled(bool enabled) noexcept;

/// Ring capacity (events per thread) for rings created AFTER the call;
/// existing rings keep theirs. Default 65536.
void set_task_event_ring_capacity(std::size_t events) noexcept;

/// Process-wide task / sweep id allocators (1-based; 0 is "no id").
/// Monotone within a run — with deterministic submit order (a 1-thread
/// pool) the assigned ids are deterministic too.
[[nodiscard]] std::uint64_t next_task_id() noexcept;
[[nodiscard]] std::uint64_t next_sweep_id() noexcept;

/// Records one event on the calling thread's ring (overwrites the
/// oldest when full). No-op when disabled — callers on hot paths
/// should check task_events_enabled() first to skip id allocation.
void record_task_event(TaskEventKind kind, std::uint64_t task = 0,
                       std::uint64_t a = 0, std::uint64_t b = 0);

/// Cumulative events lost to ring overwrites / recorded successfully
/// (all rings). Bridged into metrics as obs.task_events_dropped —
/// CI asserts zero drops on smoke runs.
[[nodiscard]] std::uint64_t task_events_dropped_count() noexcept;
[[nodiscard]] std::uint64_t task_events_recorded_count() noexcept;

/// Snapshots every ring, merged by (t_micros, tid, seq) — deterministic
/// for a fixed set of recorded events. Does not stop recording or
/// clear rings.
[[nodiscard]] std::vector<TaskEvent> drain_task_events();

/// Clears every ring and the dropped/recorded tallies (rings stay
/// registered; the id allocators keep counting).
void clear_task_events();

}  // namespace rdv::obs
