#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/task_events.hpp"
#include "support/check.hpp"

namespace rdv::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::size_t> g_ring_capacity{16384};
std::atomic<std::uint64_t> g_dropped{0};

/// One thread's span ring. The mutex is private to the thread in
/// steady state (only drain/clear contend), so record() is an
/// uncontended lock + two stores — cheap, and TSan-clean.
struct TraceRing {
  support::RankedMutex mutex{support::LockRank::kObsRing};
  std::vector<TraceEvent> slots;
  /// Next write position; wraps. size_ saturates at capacity.
  std::size_t head = 0;
  std::size_t size = 0;
  std::uint32_t tid = 0;

  void record(const TraceEvent& event) {
    std::lock_guard lock(mutex);
    if (slots.empty()) return;  // capacity 0: drop everything
    if (size == slots.size()) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++size;
    }
    slots[head] = event;
    head = (head + 1) % slots.size();
  }

  /// Events oldest-first.
  std::vector<TraceEvent> snapshot() {
    std::lock_guard lock(mutex);
    std::vector<TraceEvent> out;
    out.reserve(size);
    const std::size_t capacity = slots.size();
    const std::size_t first = (head + capacity - size) % capacity;
    for (std::size_t i = 0; i < size; ++i) {
      out.push_back(slots[(first + i) % capacity]);
    }
    return out;
  }

  void clear() {
    std::lock_guard lock(mutex);
    head = 0;
    size = 0;
  }
};

struct RingDirectory {
  support::RankedMutex mutex{support::LockRank::kObsRing};
  std::vector<std::shared_ptr<TraceRing>> rings;
};

RingDirectory& directory() {
  static RingDirectory dir;
  return dir;
}

/// The calling thread's ring, registered (and sized) on first use.
/// shared_ptr keeps the ring alive for drains after the thread exits.
/// The ring id is the shared obs thread id (task_events.hpp), so span
/// rows and task-event flow rows line up in one Chrome timeline.
TraceRing& thread_ring() {
  thread_local const std::shared_ptr<TraceRing> ring = [] {
    auto r = std::make_shared<TraceRing>();
    r->slots.resize(g_ring_capacity.load(std::memory_order_relaxed));
    r->tid = thread_obs_id();
    RingDirectory& dir = directory();
    std::lock_guard lock(dir.mutex);
    dir.rings.push_back(r);
    return r;
  }();
  return *ring;
}

void copy_name(char (&dst)[TraceEvent::kNameCapacity + 1],
               std::string_view name) {
  const std::size_t n = std::min(name.size(), TraceEvent::kNameCapacity);
  std::memcpy(dst, name.data(), n);
  dst[n] = '\0';
}

/// Minimal JSON string escape for names/categories (ours are ASCII
/// identifiers, but stay safe).
void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

bool trace_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool enabled) noexcept {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void set_trace_ring_capacity(std::size_t events) noexcept {
  g_ring_capacity.store(events, std::memory_order_relaxed);
}

std::uint64_t trace_dropped_count() noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

void record_span(std::string_view name, const char* category,
                 std::uint64_t start_micros, std::uint64_t dur_micros,
                 const char* arg_key, std::uint64_t arg_value) {
  if (!trace_enabled()) return;
  TraceRing& ring = thread_ring();
  TraceEvent event;
  copy_name(event.name, name);
  event.category = category;
  event.start_micros = start_micros;
  event.dur_micros = dur_micros;
  event.tid = ring.tid;
  event.arg_key = arg_key;
  event.arg_value = arg_value;
  ring.record(event);
}

Span::Span(const char* category, std::string_view name) noexcept
    : active_(trace_enabled()), category_(category) {
  if (!active_) return;
  copy_name(name_, name);
  start_micros_ = now_micros();
}

Span::~Span() {
  if (!active_) return;
  record_span(name_, category_, start_micros_,
              now_micros() - start_micros_, arg_key_, arg_value_);
}

std::vector<TraceEvent> drain_trace() {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    RingDirectory& dir = directory();
    std::lock_guard lock(dir.mutex);
    rings = dir.rings;
  }
  std::vector<TraceEvent> events;
  for (const auto& ring : rings) {
    std::vector<TraceEvent> part = ring->snapshot();
    events.insert(events.end(), part.begin(), part.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_micros != b.start_micros
                                ? a.start_micros < b.start_micros
                                : a.tid < b.tid;
                   });
  return events;
}

void clear_trace() {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    RingDirectory& dir = directory();
    std::lock_guard lock(dir.mutex);
    rings = dir.rings;
  }
  for (const auto& ring : rings) ring->clear();
  g_dropped.store(0, std::memory_order_relaxed);
}

std::string render_chrome_trace(const std::vector<TraceEvent>& events,
                                const std::string& extra_events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, e.name);
    out += ",\"cat\":";
    append_json_string(out, e.category);
    out += ",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    out += std::to_string(e.start_micros);
    out += ",\"dur\":";
    out += std::to_string(e.dur_micros);
    if (e.arg_key != nullptr) {
      out += ",\"args\":{";
      append_json_string(out, e.arg_key);
      out += ':';
      out += std::to_string(e.arg_value);
      out += '}';
    }
    out += '}';
  }
  if (!extra_events.empty()) {
    if (!first) out += ',';
    out += extra_events;
  }
  out += "]}";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = render_chrome_trace(drain_trace());
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "obs: cannot write trace %s\n", path.c_str());
    return false;
  }
  out << json;
  if (!out.flush().good()) {
    std::fprintf(stderr, "obs: short write to trace %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace rdv::obs
