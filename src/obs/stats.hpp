#pragma once

#include <cstdint>

/// Shared snapshot vocabulary for the tiered lookup structures
/// (ISSUE 7 satellite): `cache::StoreStats` (the in-memory sharded LRU)
/// and `store::DiskStats` (the persistent tier) used to copy-paste the
/// same hits/misses/bytes fields; both now extend this one struct, and
/// anything that aggregates tier efficiency (the metrics registry
/// bridges, `rdv_metrics dump`) speaks TierStats regardless of which
/// tier produced the numbers.
namespace rdv::obs {

/// Hit/miss/byte counters of one lookup tier. `bytes` is the tier's
/// primary byte axis: resident payload bytes for a memory tier, bytes
/// read (served) for a disk tier.
struct TierStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes = 0;

  [[nodiscard]] std::uint64_t lookups() const noexcept {
    return hits + misses;
  }
  /// Hit fraction in [0, 1]; 0 when the tier was never consulted.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = lookups();
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }

  TierStats& operator+=(const TierStats& other) noexcept {
    hits += other.hits;
    misses += other.misses;
    bytes += other.bytes;
    return *this;
  }
};

}  // namespace rdv::obs
