#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "support/check.hpp"

/// Process-wide metrics registry (ISSUE 7 tentpole).
///
/// Three primitives, all safe to bump from any thread with no lock on
/// the hot path:
///
///  - Counter: monotonically increasing uint64, sharded across
///    cache-line-padded per-thread stripes (relaxed fetch_add on the
///    caller's stripe; no CAS loops, no mutex). value() sums the
///    stripes — summation is commutative, so the merged total is
///    DETERMINISTIC for a given set of increments no matter how many
///    threads issued them or which stripes they landed on.
///  - Gauge: a point-in-time int64 (queue depth, window occupancy);
///    set/add are single relaxed atomics, last-writer-wins.
///  - Histogram: fixed 64-bucket log2 latency histogram (bucket b
///    counts values v with bit_width(v) == b, i.e. v in [2^(b-1),
///    2^b)); buckets and the count/sum tallies are striped like
///    counters, so concurrent observes merge deterministically too.
///
/// Handles returned by Registry::{counter,gauge,histogram} are stable
/// for the registry's lifetime: resolve once (function-local static /
/// member), bump forever. Name lookup takes the registry mutex — never
/// resolve per event on a hot path.
///
/// Subsystems that already keep their own counters (the artifact
/// cache's per-shard tallies, the disk store's atomics, the process
/// counters in views/uxs) are bridged via register_source: a source
/// callback contributes series to every snapshot, reading the
/// subsystem's existing accessors, so those structs stay the single
/// source of truth — no double bookkeeping — while the snapshot still
/// carries one unified namespace (cache.*, store.*, pool.*, sweep.*,
/// exp.*).
///
/// Observability is SIDECAR-ONLY by contract: nothing in this layer
/// writes to stdout, and recording metrics must never change a
/// result byte (asserted end-to-end in tests/obs_test.cpp and CI).
namespace rdv::obs {

/// Stripes per metric. Threads hash onto stripes by a per-thread id,
/// so concurrent bumps from different threads usually touch different
/// cache lines; 16 covers the pool sizes the benches drive (64-thread
/// runs contend mildly, never block).
inline constexpr std::size_t kStripes = 16;

/// Buckets of the log2 histogram: bucket 0 counts value 0, bucket b
/// (1..63) counts values with bit_width b.
inline constexpr std::size_t kHistogramBuckets = 64;

/// The calling thread's stripe slot (stable for the thread's life).
[[nodiscard]] std::size_t thread_stripe() noexcept;

namespace detail {
struct alignas(64) StripeCell {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[thread_stripe()].value.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  /// Test isolation; not linearizable against concurrent adds.
  void reset() noexcept {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::StripeCell, kStripes> cells_;
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Deterministically mergeable histogram snapshot — also the parsed
/// form rdv_metrics works with.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Mean observed value (0 when empty) — the series the perf-trend
  /// gate compares against its baseline band.
  [[nodiscard]] double mean() const noexcept {
    return count == 0
               ? 0.0
               : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// log2 bucket index of a value (0 -> 0, v -> bit_width(v)).
[[nodiscard]] std::size_t histogram_bucket(std::uint64_t value) noexcept;

class Histogram {
 public:
  void observe(std::uint64_t value) noexcept {
    const std::size_t stripe = thread_stripe();
    Stripe& s = stripes_[stripe];
    s.buckets[histogram_bucket(value)].fetch_add(1,
                                                 std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot out;
    for (const Stripe& s : stripes_) {
      out.count += s.count.load(std::memory_order_relaxed);
      out.sum += s.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
      }
    }
    return out;
  }
  /// Test isolation; not linearizable against concurrent observes.
  void reset() noexcept {
    for (Stripe& s : stripes_) {
      for (auto& bucket : s.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Stripe, kStripes> stripes_;
};

/// One merged, name-sorted view of every metric (std::map keeps the
/// rendering deterministic given identical values).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Snapshot contributor for subsystems with their own counters. Called
/// OUTSIDE the registry mutex (the registry mutex ranks above the
/// subsystem locks a source takes — cache shards, pool sleep — so
/// holding it across the callback would invert the lock order the
/// RDV_CHECKED rank checker enforces); concurrent snapshots may invoke
/// a source concurrently, so sources must only read thread-safe
/// accessors. Must not register new metrics or sources.
using SnapshotSource = std::function<void(MetricsSnapshot&)>;

class Registry {
 public:
  /// The process-wide registry (what the free helpers below use).
  static Registry& instance();

  /// Named handle, created on first use; stable address for the
  /// registry's lifetime.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Registers (or replaces — registration is idempotent by name) a
  /// snapshot source contributing subsystem-owned series.
  void register_source(std::string name, SnapshotSource source);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Test isolation: zeroes every counter/gauge/histogram and drops
  /// the sources. Metric OBJECTS survive — handles cached in static
  /// locals across the codebase stay valid.
  void reset_for_tests();

 private:
  mutable support::RankedMutex mutex_{support::LockRank::kObsRegistry};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, SnapshotSource> sources_;
};

/// Process-registry conveniences (resolve once, bump forever).
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

/// Microseconds on the process-wide steady clock (also the trace
/// timebase, so metrics and trace timestamps line up).
[[nodiscard]] std::uint64_t now_micros() noexcept;

/// RAII: observes the scope's wall-clock micros into a histogram.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& hist) noexcept
      : hist_(hist), start_(now_micros()) {}
  ~ScopedLatency() { hist_.observe(now_micros() - start_); }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram& hist_;
  std::uint64_t start_;
};

}  // namespace rdv::obs
