#include "obs/metrics_tools.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rdv::obs {

namespace {

// ---- rendering ------------------------------------------------------

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

template <typename Map, typename RenderValue>
void append_object(std::string& out, const Map& map,
                   const RenderValue& render_value) {
  out += '{';
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ':';
    render_value(out, value);
  }
  out += '}';
}

// ---- parsing --------------------------------------------------------
//
// A deliberately small strict parser for the one shape we emit; every
// error names the offset so a truncated or hand-edited baseline is
// diagnosable.

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("metrics json: " + what + " at offset " +
                             std::to_string(pos));
  }
  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  [[nodiscard]] char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  [[nodiscard]] bool try_consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\') {
        if (pos >= text.size()) fail("dangling escape");
        c = text[pos++];
        if (c != '"' && c != '\\') fail("unsupported escape");
      }
      out += c;
    }
    if (pos >= text.size()) fail("unterminated string");
    ++pos;
    return out;
  }
  [[nodiscard]] std::int64_t parse_int() {
    skip_ws();
    const bool negative = pos < text.size() && text[pos] == '-';
    if (negative) ++pos;
    if (pos >= text.size() ||
        std::isdigit(static_cast<unsigned char>(text[pos])) == 0) {
      fail("expected integer");
    }
    std::uint64_t magnitude = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
      magnitude = magnitude * 10 + static_cast<std::uint64_t>(text[pos] - '0');
      ++pos;
    }
    return negative ? -static_cast<std::int64_t>(magnitude)
                    : static_cast<std::int64_t>(magnitude);
  }
  [[nodiscard]] std::uint64_t parse_uint() {
    const std::int64_t v = parse_int();
    if (v < 0) fail("expected non-negative integer");
    return static_cast<std::uint64_t>(v);
  }
};

/// Parses {"name": <value>, ...} invoking on_entry per key.
template <typename OnEntry>
void parse_object(Cursor& cursor, const OnEntry& on_entry) {
  cursor.expect('{');
  if (cursor.try_consume('}')) return;
  do {
    std::string key = cursor.parse_string();
    cursor.expect(':');
    on_entry(std::move(key));
  } while (cursor.try_consume(','));
  cursor.expect('}');
}

HistogramSnapshot parse_histogram(Cursor& cursor) {
  HistogramSnapshot hist;
  bool saw_buckets = false;
  parse_object(cursor, [&](std::string key) {
    if (key == "count") {
      hist.count = cursor.parse_uint();
    } else if (key == "sum") {
      hist.sum = cursor.parse_uint();
    } else if (key == "buckets") {
      saw_buckets = true;
      cursor.expect('[');
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        if (b != 0) cursor.expect(',');
        hist.buckets[b] = cursor.parse_uint();
      }
      cursor.expect(']');
    } else {
      cursor.fail("unknown histogram field '" + key + "'");
    }
  });
  if (!saw_buckets) cursor.fail("histogram missing buckets");
  return hist;
}

std::string format_micros(double micros) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", micros);
  return buf;
}

}  // namespace

std::string render_metrics_json(const MetricsSnapshot& snap) {
  std::string out = "{\"format\":" + std::to_string(kMetricsFormat);
  out += ",\"counters\":";
  append_object(out, snap.counters,
                [](std::string& o, std::uint64_t v) { o += std::to_string(v); });
  out += ",\"gauges\":";
  append_object(out, snap.gauges,
                [](std::string& o, std::int64_t v) { o += std::to_string(v); });
  out += ",\"histograms\":";
  append_object(out, snap.histograms,
                [](std::string& o, const HistogramSnapshot& h) {
                  o += "{\"count\":" + std::to_string(h.count);
                  o += ",\"sum\":" + std::to_string(h.sum);
                  o += ",\"buckets\":[";
                  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
                    if (b != 0) o += ',';
                    o += std::to_string(h.buckets[b]);
                  }
                  o += "]}";
                });
  out += '}';
  return out;
}

MetricsSnapshot parse_metrics_json(std::string_view json) {
  Cursor cursor{json};
  MetricsSnapshot snap;
  bool saw_format = false;
  parse_object(cursor, [&](std::string key) {
    if (key == "format") {
      saw_format = true;
      const std::uint64_t format = cursor.parse_uint();
      if (format != kMetricsFormat) {
        cursor.fail("unsupported format " + std::to_string(format));
      }
    } else if (key == "counters") {
      parse_object(cursor, [&](std::string name) {
        snap.counters[std::move(name)] = cursor.parse_uint();
      });
    } else if (key == "gauges") {
      parse_object(cursor, [&](std::string name) {
        snap.gauges[std::move(name)] = cursor.parse_int();
      });
    } else if (key == "histograms") {
      parse_object(cursor, [&](std::string name) {
        snap.histograms[std::move(name)] = parse_histogram(cursor);
      });
    } else {
      cursor.fail("unknown top-level key '" + key + "'");
    }
  });
  if (!saw_format) cursor.fail("missing format field");
  cursor.skip_ws();
  if (cursor.pos != json.size()) cursor.fail("trailing garbage");
  return snap;
}

std::string render_metrics_dump(const MetricsSnapshot& snap) {
  std::string out;
  out += "counters (" + std::to_string(snap.counters.size()) + ")\n";
  for (const auto& [name, value] : snap.counters) {
    out += "  " + name + " = " + std::to_string(value) + "\n";
  }
  out += "gauges (" + std::to_string(snap.gauges.size()) + ")\n";
  for (const auto& [name, value] : snap.gauges) {
    out += "  " + name + " = " + std::to_string(value) + "\n";
  }
  out += "histograms (" + std::to_string(snap.histograms.size()) + ")\n";
  for (const auto& [name, hist] : snap.histograms) {
    out += "  " + name + ": count=" + std::to_string(hist.count) +
           " sum=" + std::to_string(hist.sum) +
           " mean=" + format_micros(hist.mean()) + "\n";
  }
  return out;
}

DiffReport diff_snapshots(const MetricsSnapshot& base,
                          const MetricsSnapshot& current,
                          const DiffOptions& options) {
  // With no history every series falls back to the flat band, which is
  // exactly the pre-history behavior.
  return diff_snapshots_with_history(base, current, {}, options);
}

DiffReport diff_snapshots_with_history(
    const MetricsSnapshot& base, const MetricsSnapshot& current,
    const std::vector<MetricsSnapshot>& history,
    const DiffOptions& options) {
  DiffReport report;
  constexpr std::string_view kWallSuffix = ".wall_micros";
  for (const auto& [name, base_hist] : base.histograms) {
    if (name.size() < kWallSuffix.size() ||
        name.compare(name.size() - kWallSuffix.size(), kWallSuffix.size(),
                     kWallSuffix) != 0) {
      continue;
    }
    const auto it = current.histograms.find(name);
    if (it == current.histograms.end()) {
      report.lines.push_back("MISSING " + name +
                             ": present in baseline, absent in current run");
      continue;
    }
    const double base_mean = base_hist.mean();
    const double cur_mean = it->second.mean();

    // The variance-aware band: enough history turns the gate into
    // mu + max(sigmas*sigma, mu*min_band_frac) over the historical
    // per-run means — tight for stable series, loose for noisy ones.
    std::vector<double> means;
    for (const MetricsSnapshot& past : history) {
      const auto hit = past.histograms.find(name);
      if (hit != past.histograms.end() && hit->second.count != 0) {
        means.push_back(hit->second.mean());
      }
    }
    double band = base_mean * (1.0 + options.tolerance);
    double floor_mean = base_mean;
    std::string band_note;
    if (means.size() >= options.min_history_runs) {
      double mu = 0.0;
      for (const double m : means) mu += m;
      mu /= static_cast<double>(means.size());
      double var = 0.0;
      for (const double m : means) var += (m - mu) * (m - mu);
      var /= static_cast<double>(means.size());
      const double sigma = std::sqrt(var);
      band = mu + std::max(options.sigmas * sigma,
                           mu * options.min_band_frac);
      floor_mean = mu;
      band_note = " (history n=" + std::to_string(means.size()) +
                  ", mu " + format_micros(mu) + "us, sigma " +
                  format_micros(sigma) + "us)";
    } else if (!history.empty()) {
      band_note = " (thin history n=" + std::to_string(means.size()) +
                  ", flat band)";
    }

    const bool below_floor =
        floor_mean < static_cast<double>(options.min_micros) &&
        cur_mean < static_cast<double>(options.min_micros);
    const bool regressed = !below_floor && cur_mean > band;
    std::string line = (regressed ? "REGRESSION " : "ok ") + name +
                       ": base mean " + format_micros(base_mean) +
                       "us, current " + format_micros(cur_mean) +
                       "us, band <= " + format_micros(band) + "us";
    line += band_note;
    if (below_floor) line += " (below noise floor)";
    report.lines.push_back(std::move(line));
    if (regressed) ++report.regressions;
  }
  for (const auto& [name, base_value] : base.counters) {
    const auto it = current.counters.find(name);
    if (it == current.counters.end()) {
      report.lines.push_back("counter " + name + ": " +
                             std::to_string(base_value) + " -> (absent)");
    } else if (it->second != base_value) {
      report.lines.push_back("counter " + name + ": " +
                             std::to_string(base_value) + " -> " +
                             std::to_string(it->second));
    }
  }
  return report;
}

std::vector<MetricsSnapshot> load_snapshot_dir(const std::string& dir) {
  std::vector<MetricsSnapshot> history;
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      paths.push_back(entry.path());
    }
  }
  if (ec) return history;  // missing directory = empty history
  std::sort(paths.begin(), paths.end());
  for (const std::filesystem::path& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "metrics: skipping unreadable history %s\n",
                   path.string().c_str());
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      history.push_back(parse_metrics_json(buffer.str()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "metrics: skipping history %s: %s\n",
                   path.string().c_str(), e.what());
    }
  }
  return history;
}

AssertResult check_assertion(const MetricsSnapshot& snap,
                             std::string_view expr) {
  // Split name OP value; two-char operators checked first.
  static constexpr std::string_view kOps[] = {"==", "!=", "<=",
                                              ">=", "<",  ">"};
  std::size_t op_pos = std::string_view::npos;
  std::string_view op;
  for (const std::string_view candidate : kOps) {
    const std::size_t at = expr.find(candidate);
    if (at != std::string_view::npos &&
        (op_pos == std::string_view::npos || at < op_pos ||
         (at == op_pos && candidate.size() > op.size()))) {
      op_pos = at;
      op = candidate;
    }
  }
  if (op_pos == std::string_view::npos || op_pos == 0) {
    return {false, "malformed assertion '" + std::string(expr) +
                       "' (want name OP value)"};
  }
  const std::string name(expr.substr(0, op_pos));
  const std::string value_text(expr.substr(op_pos + op.size()));
  char* end = nullptr;
  const long long expected = std::strtoll(value_text.c_str(), &end, 10);
  if (end == value_text.c_str() || *end != '\0') {
    return {false, "malformed assertion value '" + value_text + "'"};
  }

  std::int64_t actual = 0;
  bool found = false;
  if (const auto it = snap.counters.find(name); it != snap.counters.end()) {
    actual = static_cast<std::int64_t>(it->second);
    found = true;
  } else if (const auto git = snap.gauges.find(name);
             git != snap.gauges.end()) {
    actual = git->second;
    found = true;
  } else {
    // Histogram projections: <name>.count / <name>.sum.
    const std::size_t dot = name.rfind('.');
    if (dot != std::string::npos) {
      const std::string stem = name.substr(0, dot);
      const std::string field = name.substr(dot + 1);
      if (const auto hit = snap.histograms.find(stem);
          hit != snap.histograms.end()) {
        if (field == "count") {
          actual = static_cast<std::int64_t>(hit->second.count);
          found = true;
        } else if (field == "sum") {
          actual = static_cast<std::int64_t>(hit->second.sum);
          found = true;
        }
      }
    }
  }
  if (!found) {
    return {false, "metric '" + name + "' not found in snapshot"};
  }

  bool ok = false;
  if (op == "==") ok = actual == expected;
  else if (op == "!=") ok = actual != expected;
  else if (op == "<=") ok = actual <= expected;
  else if (op == ">=") ok = actual >= expected;
  else if (op == "<") ok = actual < expected;
  else ok = actual > expected;

  std::string message = name + " = " + std::to_string(actual) + " (want " +
                        std::string(op) + " " + std::to_string(expected) +
                        ")";
  return {ok, std::move(message)};
}

}  // namespace rdv::obs
