#include "obs/profile.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rdv::obs {

namespace {

std::uint64_t clamped_sub(std::uint64_t a, std::uint64_t b) noexcept {
  return a > b ? a - b : 0;
}

std::string format_ms(std::uint64_t micros) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", static_cast<double>(micros) / 1000.0);
  return buf;
}

std::string format_pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", fraction * 100.0);
  return buf;
}

// ---- rendering ------------------------------------------------------

void append_task_json(std::string& out, const TaskProfile& t) {
  out += "{\"id\":" + std::to_string(t.id);
  out += ",\"sweep\":" + std::to_string(t.sweep);
  out += ",\"chunk\":" + std::to_string(t.chunk);
  out += ",\"is_chunk\":";
  out += t.is_chunk ? "true" : "false";
  out += ",\"stolen\":";
  out += t.stolen ? "true" : "false";
  out += ",\"victim\":" + std::to_string(t.steal_victim);
  out += ",\"submit_tid\":" + std::to_string(t.submit_tid);
  out += ",\"exec_tid\":" + std::to_string(t.exec_tid);
  out += ",\"submit\":" + std::to_string(t.submit_t);
  out += ",\"dequeue\":" + std::to_string(t.dequeue_t);
  out += ",\"begin\":" + std::to_string(t.begin_t);
  out += ",\"end\":" + std::to_string(t.end_t);
  out += '}';
}

// ---- parsing --------------------------------------------------------
//
// Same deliberately small strict-parser shape as metrics_tools.cpp:
// one Cursor for the one JSON shape we emit, every error naming its
// offset so a truncated or hand-edited sidecar is diagnosable.

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("profile json: " + what + " at offset " +
                             std::to_string(pos));
  }
  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  [[nodiscard]] char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  [[nodiscard]] bool try_consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\') {
        if (pos >= text.size()) fail("dangling escape");
        c = text[pos++];
        if (c != '"' && c != '\\') fail("unsupported escape");
      }
      out += c;
    }
    if (pos >= text.size()) fail("unterminated string");
    ++pos;
    return out;
  }
  [[nodiscard]] std::uint64_t parse_uint() {
    skip_ws();
    if (pos >= text.size() ||
        std::isdigit(static_cast<unsigned char>(text[pos])) == 0) {
      fail("expected non-negative integer");
    }
    std::uint64_t value = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
      value = value * 10 + static_cast<std::uint64_t>(text[pos] - '0');
      ++pos;
    }
    return value;
  }
  [[nodiscard]] bool parse_bool() {
    skip_ws();
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      return false;
    }
    fail("expected boolean");
  }
};

template <typename OnEntry>
void parse_object(Cursor& cursor, const OnEntry& on_entry) {
  cursor.expect('{');
  if (cursor.try_consume('}')) return;
  do {
    std::string key = cursor.parse_string();
    cursor.expect(':');
    on_entry(std::move(key));
  } while (cursor.try_consume(','));
  cursor.expect('}');
}

template <typename OnElement>
void parse_array(Cursor& cursor, const OnElement& on_element) {
  cursor.expect('[');
  if (cursor.try_consume(']')) return;
  do {
    on_element();
  } while (cursor.try_consume(','));
  cursor.expect(']');
}

TaskProfile parse_task(Cursor& cursor) {
  TaskProfile t;
  parse_object(cursor, [&](std::string key) {
    if (key == "id") t.id = cursor.parse_uint();
    else if (key == "sweep") t.sweep = cursor.parse_uint();
    else if (key == "chunk") t.chunk = cursor.parse_uint();
    else if (key == "is_chunk") t.is_chunk = cursor.parse_bool();
    else if (key == "stolen") t.stolen = cursor.parse_bool();
    else if (key == "victim") t.steal_victim = cursor.parse_uint();
    else if (key == "submit_tid")
      t.submit_tid = static_cast<std::uint32_t>(cursor.parse_uint());
    else if (key == "exec_tid")
      t.exec_tid = static_cast<std::uint32_t>(cursor.parse_uint());
    else if (key == "submit") t.submit_t = cursor.parse_uint();
    else if (key == "dequeue") t.dequeue_t = cursor.parse_uint();
    else if (key == "begin") t.begin_t = cursor.parse_uint();
    else if (key == "end") t.end_t = cursor.parse_uint();
    else cursor.fail("unknown task field '" + key + "'");
  });
  return t;
}

MergeProfile parse_merge(Cursor& cursor) {
  MergeProfile m;
  parse_object(cursor, [&](std::string key) {
    if (key == "sweep") m.sweep = cursor.parse_uint();
    else if (key == "chunk") m.chunk = cursor.parse_uint();
    else if (key == "tid")
      m.tid = static_cast<std::uint32_t>(cursor.parse_uint());
    else if (key == "begin") m.begin_t = cursor.parse_uint();
    else if (key == "end") m.end_t = cursor.parse_uint();
    else cursor.fail("unknown merge field '" + key + "'");
  });
  return m;
}

ParkInterval parse_park(Cursor& cursor) {
  ParkInterval p;
  parse_object(cursor, [&](std::string key) {
    if (key == "tid")
      p.tid = static_cast<std::uint32_t>(cursor.parse_uint());
    else if (key == "begin") p.begin_t = cursor.parse_uint();
    else if (key == "end") p.end_t = cursor.parse_uint();
    else cursor.fail("unknown park field '" + key + "'");
  });
  return p;
}

SweepProfile parse_sweep(Cursor& cursor) {
  SweepProfile s;
  parse_object(cursor, [&](std::string key) {
    if (key == "id") s.id = cursor.parse_uint();
    else if (key == "chunks") s.chunks = cursor.parse_uint();
    else if (key == "items") s.items = cursor.parse_uint();
    else if (key == "tid")
      s.tid = static_cast<std::uint32_t>(cursor.parse_uint());
    else if (key == "begin") s.begin_t = cursor.parse_uint();
    else if (key == "end") s.end_t = cursor.parse_uint();
    else cursor.fail("unknown sweep field '" + key + "'");
  });
  return s;
}

constexpr std::uint64_t kProfileFormat = 1;

/// Flow ids for the chunk-end -> merge-begin arrows live in a distinct
/// id space from the submit -> begin arrows (which use the task id).
constexpr std::uint64_t kMergeFlowBase = 1ULL << 62;

/// log2 latency histogram over 65 buckets (bucket b = values of
/// bit_width b; bucket 0 = zero), matching obs::histogram_bucket.
struct LatencyHistogram {
  std::array<std::uint64_t, 65> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void observe(std::uint64_t value) {
    buckets[histogram_bucket(value)] += 1;
    ++count;
    sum += value;
  }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

void append_histogram_lines(std::string& out, const LatencyHistogram& hist) {
  if (hist.count == 0) {
    out += "  (empty)\n";
    return;
  }
  for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
    if (hist.buckets[b] == 0) continue;
    const std::uint64_t lo = b == 0 ? 0 : 1ULL << (b - 1);
    const std::uint64_t hi = b == 0 ? 1 : 1ULL << b;
    out += "  [" + std::to_string(lo) + "," + std::to_string(hi) +
           ") us: " + std::to_string(hist.buckets[b]) + "\n";
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", hist.mean());
  out += "  mean " + std::string(buf) + " us over " +
         std::to_string(hist.count) + " samples\n";
}

/// Per-thread busy/park aggregation shared by report and diff.
struct ThreadUsage {
  std::uint64_t busy_micros = 0;
  std::uint64_t park_micros = 0;
  std::uint64_t tasks = 0;
  std::uint64_t merges = 0;
};

std::map<std::uint32_t, ThreadUsage> thread_usage(const Profile& profile) {
  std::map<std::uint32_t, ThreadUsage> usage;
  for (const TaskProfile& t : profile.tasks) {
    if (t.begin_t == 0 || t.end_t == 0) continue;
    ThreadUsage& u = usage[t.exec_tid];
    u.busy_micros += t.exec_micros();
    ++u.tasks;
  }
  for (const MergeProfile& m : profile.merges) {
    ThreadUsage& u = usage[m.tid];
    u.busy_micros += m.micros();
    ++u.merges;
  }
  for (const ParkInterval& p : profile.parks) {
    usage[p.tid].park_micros += clamped_sub(p.end_t, p.begin_t);
  }
  return usage;
}

std::uint64_t executed_task_count(const Profile& profile) {
  std::uint64_t executed = 0;
  for (const TaskProfile& t : profile.tasks) {
    if (t.begin_t != 0) ++executed;
  }
  return executed;
}

std::uint64_t stolen_task_count(const Profile& profile) {
  std::uint64_t stolen = 0;
  for (const TaskProfile& t : profile.tasks) {
    if (t.stolen) ++stolen;
  }
  return stolen;
}

std::uint64_t total_exec_micros(const Profile& profile) {
  std::uint64_t total = 0;
  for (const TaskProfile& t : profile.tasks) total += t.exec_micros();
  return total;
}

}  // namespace

Profile build_profile(const std::vector<TaskEvent>& events) {
  Profile profile;
  profile.events = events.size();
  profile.dropped = task_events_dropped_count();

  std::unordered_map<std::uint64_t, TaskProfile> tasks;
  std::map<std::pair<std::uint64_t, std::uint64_t>, MergeProfile> merges;
  std::unordered_map<std::uint32_t, std::uint64_t> pending_park;
  std::map<std::uint64_t, SweepProfile> sweeps;

  for (const TaskEvent& e : events) {
    if (profile.t_min == 0 || e.t_micros < profile.t_min) {
      profile.t_min = e.t_micros;
    }
    profile.t_max = std::max(profile.t_max, e.t_micros);
    switch (e.kind) {
      case TaskEventKind::kSubmit: {
        TaskProfile& t = tasks[e.task];
        t.id = e.task;
        t.submit_t = e.t_micros;
        t.submit_tid = e.tid;
        break;
      }
      case TaskEventKind::kDequeue: {
        TaskProfile& t = tasks[e.task];
        t.id = e.task;
        t.dequeue_t = e.t_micros;
        break;
      }
      case TaskEventKind::kSteal: {
        TaskProfile& t = tasks[e.task];
        t.id = e.task;
        t.dequeue_t = e.t_micros;
        t.stolen = true;
        t.steal_victim = e.a;
        break;
      }
      case TaskEventKind::kBegin: {
        TaskProfile& t = tasks[e.task];
        t.id = e.task;
        t.begin_t = e.t_micros;
        t.exec_tid = e.tid;
        break;
      }
      case TaskEventKind::kEnd: {
        TaskProfile& t = tasks[e.task];
        t.id = e.task;
        t.end_t = e.t_micros;
        break;
      }
      case TaskEventKind::kPark:
        pending_park[e.tid] = e.t_micros;
        break;
      case TaskEventKind::kUnpark: {
        const auto it = pending_park.find(e.tid);
        // An unpark whose park was overwritten (ring wrap) has no
        // interval to close; skip it rather than invent one.
        if (it == pending_park.end()) break;
        profile.parks.push_back(ParkInterval{e.tid, it->second, e.t_micros});
        pending_park.erase(it);
        break;
      }
      case TaskEventKind::kSweepBegin: {
        SweepProfile& s = sweeps[e.a];
        s.id = e.a;
        s.chunks = e.b;
        s.tid = e.tid;
        s.begin_t = e.t_micros;
        break;
      }
      case TaskEventKind::kSweepEnd: {
        SweepProfile& s = sweeps[e.a];
        s.id = e.a;
        s.items = e.b;
        s.end_t = e.t_micros;
        break;
      }
      case TaskEventKind::kChunkTask: {
        TaskProfile& t = tasks[e.task];
        t.id = e.task;
        t.sweep = e.a;
        t.chunk = e.b;
        t.is_chunk = true;
        break;
      }
      case TaskEventKind::kMergeBegin: {
        MergeProfile& m = merges[{e.a, e.b}];
        m.sweep = e.a;
        m.chunk = e.b;
        m.tid = e.tid;
        m.begin_t = e.t_micros;
        break;
      }
      case TaskEventKind::kMergeEnd: {
        MergeProfile& m = merges[{e.a, e.b}];
        m.sweep = e.a;
        m.chunk = e.b;
        m.end_t = e.t_micros;
        break;
      }
    }
  }

  profile.tasks.reserve(tasks.size());
  for (const auto& [id, t] : tasks) profile.tasks.push_back(t);
  std::sort(profile.tasks.begin(), profile.tasks.end(),
            [](const TaskProfile& a, const TaskProfile& b) {
              return a.id < b.id;
            });
  profile.merges.reserve(merges.size());
  for (const auto& [key, m] : merges) profile.merges.push_back(m);
  profile.sweeps.reserve(sweeps.size());
  for (const auto& [id, s] : sweeps) profile.sweeps.push_back(s);
  std::sort(profile.parks.begin(), profile.parks.end(),
            [](const ParkInterval& a, const ParkInterval& b) {
              return a.begin_t != b.begin_t ? a.begin_t < b.begin_t
                                           : a.tid < b.tid;
            });
  return profile;
}

double herd_factor(const Profile& profile) noexcept {
  const std::uint64_t executed = executed_task_count(profile);
  if (executed == 0) return 0.0;
  return static_cast<double>(profile.parks.size()) /
         static_cast<double>(executed);
}

CriticalPath critical_path(const Profile& profile, std::uint64_t sweep) {
  CriticalPath path;
  const SweepProfile* sp = nullptr;
  for (const SweepProfile& s : profile.sweeps) {
    if (s.id == sweep) sp = &s;
  }
  if (sp == nullptr) return path;
  path.sweep = sweep;
  path.total_micros = sp->micros();

  std::vector<const MergeProfile*> merges;
  for (const MergeProfile& m : profile.merges) {
    if (m.sweep == sweep && m.end_t != 0) merges.push_back(&m);
  }
  std::unordered_map<std::uint64_t, const TaskProfile*> by_chunk;
  for (const TaskProfile& t : profile.tasks) {
    if (t.is_chunk && t.sweep == sweep) by_chunk[t.chunk] = &t;
  }

  if (merges.empty()) {
    // Nothing merged (a zero-chunk sweep): the whole wall is tail.
    path.tail_micros = path.total_micros;
    return path;
  }

  // Merges are sequential on the merging thread, in chunk order; walk
  // backward from the last one, at each hop following whichever
  // dependency was binding: the previous merge or the chunk's task.
  path.tail_micros = clamped_sub(sp->end_t, merges.back()->end_t);
  std::size_t i = merges.size() - 1;
  for (;;) {
    const MergeProfile& cur = *merges[i];
    path.merge_micros += cur.micros();
    path.steps.push_back({"merge", cur.chunk, cur.micros()});
    const TaskProfile* task = nullptr;
    if (const auto it = by_chunk.find(cur.chunk); it != by_chunk.end()) {
      if (it->second->complete()) task = it->second;
    }
    const std::uint64_t task_end = task != nullptr ? task->end_t : 0;
    const std::uint64_t prev_end = i > 0 ? merges[i - 1]->end_t : 0;
    if (i > 0 && prev_end >= task_end) {
      path.stall_micros += clamped_sub(cur.begin_t, prev_end);
      --i;
      continue;
    }
    if (task != nullptr) {
      path.stall_micros += clamped_sub(cur.begin_t, task->end_t);
      path.exec_micros = task->exec_micros();
      path.queue_micros = task->queue_micros();
      path.schedule_micros = clamped_sub(task->submit_t, sp->begin_t);
      path.steps.push_back(
          {"task", cur.chunk, path.queue_micros + path.exec_micros});
    } else {
      // No usable task lifecycle (dropped events): fold the rest into
      // schedule so the stages still partition the wall.
      path.schedule_micros = clamped_sub(cur.begin_t, sp->begin_t);
    }
    break;
  }
  return path;
}

std::string render_profile_json(const Profile& profile) {
  std::string out = "{\"format\":" + std::to_string(kProfileFormat);
  out += ",\"events\":" + std::to_string(profile.events);
  out += ",\"dropped\":" + std::to_string(profile.dropped);
  out += ",\"t_min\":" + std::to_string(profile.t_min);
  out += ",\"t_max\":" + std::to_string(profile.t_max);
  out += ",\"tasks\":[";
  for (std::size_t i = 0; i < profile.tasks.size(); ++i) {
    if (i != 0) out += ',';
    append_task_json(out, profile.tasks[i]);
  }
  out += "],\"merges\":[";
  for (std::size_t i = 0; i < profile.merges.size(); ++i) {
    const MergeProfile& m = profile.merges[i];
    if (i != 0) out += ',';
    out += "{\"sweep\":" + std::to_string(m.sweep);
    out += ",\"chunk\":" + std::to_string(m.chunk);
    out += ",\"tid\":" + std::to_string(m.tid);
    out += ",\"begin\":" + std::to_string(m.begin_t);
    out += ",\"end\":" + std::to_string(m.end_t);
    out += '}';
  }
  out += "],\"parks\":[";
  for (std::size_t i = 0; i < profile.parks.size(); ++i) {
    const ParkInterval& p = profile.parks[i];
    if (i != 0) out += ',';
    out += "{\"tid\":" + std::to_string(p.tid);
    out += ",\"begin\":" + std::to_string(p.begin_t);
    out += ",\"end\":" + std::to_string(p.end_t);
    out += '}';
  }
  out += "],\"sweeps\":[";
  for (std::size_t i = 0; i < profile.sweeps.size(); ++i) {
    const SweepProfile& s = profile.sweeps[i];
    if (i != 0) out += ',';
    out += "{\"id\":" + std::to_string(s.id);
    out += ",\"chunks\":" + std::to_string(s.chunks);
    out += ",\"items\":" + std::to_string(s.items);
    out += ",\"tid\":" + std::to_string(s.tid);
    out += ",\"begin\":" + std::to_string(s.begin_t);
    out += ",\"end\":" + std::to_string(s.end_t);
    out += '}';
  }
  out += "]}";
  return out;
}

bool parse_profile_json(const std::string& text, Profile* out) {
  try {
    Cursor cursor{text};
    Profile profile;
    bool saw_format = false;
    parse_object(cursor, [&](std::string key) {
      if (key == "format") {
        saw_format = true;
        const std::uint64_t format = cursor.parse_uint();
        if (format != kProfileFormat) {
          cursor.fail("unsupported format " + std::to_string(format));
        }
      } else if (key == "events") {
        profile.events = cursor.parse_uint();
      } else if (key == "dropped") {
        profile.dropped = cursor.parse_uint();
      } else if (key == "t_min") {
        profile.t_min = cursor.parse_uint();
      } else if (key == "t_max") {
        profile.t_max = cursor.parse_uint();
      } else if (key == "tasks") {
        parse_array(cursor, [&] {
          profile.tasks.push_back(parse_task(cursor));
        });
      } else if (key == "merges") {
        parse_array(cursor, [&] {
          profile.merges.push_back(parse_merge(cursor));
        });
      } else if (key == "parks") {
        parse_array(cursor, [&] {
          profile.parks.push_back(parse_park(cursor));
        });
      } else if (key == "sweeps") {
        parse_array(cursor, [&] {
          profile.sweeps.push_back(parse_sweep(cursor));
        });
      } else {
        cursor.fail("unknown top-level key '" + key + "'");
      }
    });
    if (!saw_format) cursor.fail("missing format field");
    cursor.skip_ws();
    if (cursor.pos != text.size()) cursor.fail("trailing garbage");
    *out = std::move(profile);
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "obs: %s\n", e.what());
    return false;
  }
}

std::string render_profile_report(const Profile& profile) {
  std::string out = "profile: " + std::to_string(profile.events) +
                    " events, " + std::to_string(profile.dropped) +
                    " dropped, span " +
                    format_ms(clamped_sub(profile.t_max, profile.t_min)) +
                    " ms\n";

  for (const SweepProfile& s : profile.sweeps) {
    out += "sweep " + std::to_string(s.id) + ": " +
           std::to_string(s.chunks) + " chunks, " +
           std::to_string(s.items) + " items, wall " +
           format_ms(s.micros()) + " ms\n";
    const CriticalPath cp = critical_path(profile, s.id);
    const double coverage =
        cp.total_micros == 0
            ? 1.0
            : static_cast<double>(cp.stage_sum()) /
                  static_cast<double>(cp.total_micros);
    out += "  critical path (stage sum " + format_ms(cp.stage_sum()) +
           " ms, " + format_pct(coverage) + "% of wall):\n";
    out += "    schedule " + format_ms(cp.schedule_micros) + " | queue " +
           format_ms(cp.queue_micros) + " | exec " +
           format_ms(cp.exec_micros) + " | stall " +
           format_ms(cp.stall_micros) + " | merge " +
           format_ms(cp.merge_micros) + " | tail " +
           format_ms(cp.tail_micros) + " ms\n";
    if (!cp.steps.empty()) {
      // Steps are walked last-merge-first; the binding hop is last.
      const CriticalPathStep& binding = cp.steps.back();
      std::uint64_t path_merges = 0;
      for (const CriticalPathStep& step : cp.steps) {
        if (step.kind == "merge") ++path_merges;
      }
      out += "    path: " + binding.kind + " chunk " +
             std::to_string(binding.chunk) + " (" +
             format_ms(binding.micros) + " ms) -> " +
             std::to_string(path_merges) + " merge(s)\n";
    }
  }

  const auto usage = thread_usage(profile);
  const std::uint64_t span = clamped_sub(profile.t_max, profile.t_min);
  out += "threads (" + std::to_string(usage.size()) + "):\n";
  for (const auto& [tid, u] : usage) {
    const double denom = span == 0 ? 1.0 : static_cast<double>(span);
    const std::uint64_t accounted =
        std::min(span, u.busy_micros + u.park_micros);
    const std::uint64_t idle = span - accounted;
    out += "  tid " + std::to_string(tid) + ": busy " +
           format_pct(static_cast<double>(u.busy_micros) / denom) +
           "% (" + format_ms(u.busy_micros) + " ms, " +
           std::to_string(u.tasks) + " tasks, " + std::to_string(u.merges) +
           " merges), parked " +
           format_pct(static_cast<double>(u.park_micros) / denom) +
           "%, idle " + format_pct(static_cast<double>(idle) / denom) +
           "%\n";
  }

  LatencyHistogram queue_hist;
  LatencyHistogram steal_hist;
  for (const TaskProfile& t : profile.tasks) {
    if (!t.complete()) continue;
    queue_hist.observe(t.queue_micros());
    if (t.stolen) {
      steal_hist.observe(clamped_sub(t.dequeue_t, t.submit_t));
    }
  }
  out += "queue latency (submit -> begin, log2 us):\n";
  append_histogram_lines(out, queue_hist);
  if (steal_hist.count != 0) {
    out += "steal latency (submit -> steal, log2 us):\n";
    append_histogram_lines(out, steal_hist);
  }

  const std::uint64_t executed = executed_task_count(profile);
  const std::uint64_t stolen = stolen_task_count(profile);
  out += "steals: " + std::to_string(stolen) + "/" +
         std::to_string(executed) + " tasks";
  if (executed != 0) {
    out += " (" +
           format_pct(static_cast<double>(stolen) /
                      static_cast<double>(executed)) +
           "%)";
  }
  out += "\n";
  char herd[64];
  std::snprintf(herd, sizeof herd, "%.2f", herd_factor(profile));
  out += "herd: " + std::to_string(profile.parks.size()) + " wakeups / " +
         std::to_string(executed) + " tasks executed = " + herd +
         " wakeups per useful task\n";
  return out;
}

std::string render_profile_top(const Profile& profile, std::size_t n) {
  std::vector<const TaskProfile*> ranked;
  for (const TaskProfile& t : profile.tasks) {
    if (t.begin_t != 0 && t.end_t != 0) ranked.push_back(&t);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const TaskProfile* a, const TaskProfile* b) {
              const std::uint64_t ea = a->exec_micros();
              const std::uint64_t eb = b->exec_micros();
              return ea != eb ? ea > eb : a->id < b->id;
            });
  if (ranked.size() > n) ranked.resize(n);
  std::string out = "top " + std::to_string(ranked.size()) +
                    " tasks by execution time:\n";
  for (const TaskProfile* t : ranked) {
    out += "  task " + std::to_string(t->id);
    if (t->is_chunk) {
      out += " (sweep " + std::to_string(t->sweep) + " chunk " +
             std::to_string(t->chunk) + ")";
    }
    out += ": exec " + format_ms(t->exec_micros()) + " ms, queue " +
           format_ms(t->queue_micros()) + " ms, tid " +
           std::to_string(t->exec_tid);
    if (t->stolen) {
      out += ", stolen from worker " + std::to_string(t->steal_victim);
    }
    out += "\n";
  }
  return out;
}

std::string render_profile_diff(const Profile& a, const Profile& b) {
  std::string out = "profile diff (a -> b):\n";
  const auto line = [&out](const char* name, double va, double vb,
                           const char* unit) {
    char buf[160];
    if (va == 0.0) {
      std::snprintf(buf, sizeof buf, "  %-18s %12.2f -> %12.2f %s\n", name,
                    va, vb, unit);
    } else {
      std::snprintf(buf, sizeof buf,
                    "  %-18s %12.2f -> %12.2f %s (%+.1f%%)\n", name, va, vb,
                    unit, (vb - va) / va * 100.0);
    }
    out += buf;
  };
  line("events", static_cast<double>(a.events),
       static_cast<double>(b.events), "");
  line("tasks executed", static_cast<double>(executed_task_count(a)),
       static_cast<double>(executed_task_count(b)), "");
  line("steals", static_cast<double>(stolen_task_count(a)),
       static_cast<double>(stolen_task_count(b)), "");
  line("wakeups", static_cast<double>(a.parks.size()),
       static_cast<double>(b.parks.size()), "");
  line("herd factor", herd_factor(a), herd_factor(b), "");
  line("total exec", static_cast<double>(total_exec_micros(a)) / 1000.0,
       static_cast<double>(total_exec_micros(b)) / 1000.0, "ms");
  line("span", static_cast<double>(clamped_sub(a.t_max, a.t_min)) / 1000.0,
       static_cast<double>(clamped_sub(b.t_max, b.t_min)) / 1000.0, "ms");
  line("sweeps", static_cast<double>(a.sweeps.size()),
       static_cast<double>(b.sweeps.size()), "");
  return out;
}

std::string render_task_trace_events(const Profile& profile) {
  std::string out;
  const auto append = [&out](const std::string& event) {
    if (!out.empty()) out += ',';
    out += event;
  };
  for (const SweepProfile& s : profile.sweeps) {
    if (s.end_t == 0) continue;
    append("{\"name\":\"sweep " + std::to_string(s.id) +
           "\",\"cat\":\"sweep\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(s.tid) + ",\"ts\":" + std::to_string(s.begin_t) +
           ",\"dur\":" + std::to_string(s.micros()) +
           ",\"args\":{\"chunks\":" + std::to_string(s.chunks) +
           ",\"items\":" + std::to_string(s.items) + "}}");
  }
  for (const TaskProfile& t : profile.tasks) {
    if (t.begin_t != 0 && t.end_t != 0) {
      std::string name = t.is_chunk
                             ? "chunk " + std::to_string(t.sweep) + ":" +
                                   std::to_string(t.chunk)
                             : "task " + std::to_string(t.id);
      append("{\"name\":\"" + name +
             "\",\"cat\":\"task\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
             std::to_string(t.exec_tid) +
             ",\"ts\":" + std::to_string(t.begin_t) +
             ",\"dur\":" + std::to_string(t.exec_micros()) +
             ",\"args\":{\"task\":" + std::to_string(t.id) + "}}");
    }
    // Flow arrows: submit ("s") -> optional steal step ("t") -> begin
    // ("f"). Chrome draws one arrow chain per flow id.
    if (t.submit_t != 0 && t.begin_t != 0) {
      const std::string id = std::to_string(t.id);
      append("{\"name\":\"task\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" +
             id + ",\"pid\":1,\"tid\":" + std::to_string(t.submit_tid) +
             ",\"ts\":" + std::to_string(t.submit_t) + "}");
      if (t.stolen && t.dequeue_t != 0) {
        append("{\"name\":\"task\",\"cat\":\"flow\",\"ph\":\"t\",\"id\":" +
               id + ",\"pid\":1,\"tid\":" + std::to_string(t.exec_tid) +
               ",\"ts\":" + std::to_string(t.dequeue_t) + "}");
      }
      append("{\"name\":\"task\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\""
             ",\"id\":" +
             id + ",\"pid\":1,\"tid\":" + std::to_string(t.exec_tid) +
             ",\"ts\":" + std::to_string(t.begin_t) + "}");
    }
  }
  std::map<std::pair<std::uint64_t, std::uint64_t>, const TaskProfile*>
      chunk_tasks;
  for (const TaskProfile& t : profile.tasks) {
    if (t.is_chunk && t.complete()) chunk_tasks[{t.sweep, t.chunk}] = &t;
  }
  for (const MergeProfile& m : profile.merges) {
    if (m.end_t == 0) continue;
    append("{\"name\":\"merge " + std::to_string(m.sweep) + ":" +
           std::to_string(m.chunk) +
           "\",\"cat\":\"sweep\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(m.tid) + ",\"ts\":" + std::to_string(m.begin_t) +
           ",\"dur\":" + std::to_string(m.micros()) +
           ",\"args\":{\"chunk\":" + std::to_string(m.chunk) + "}}");
    // Second flow: the chunk's task end -> its merge begin, in a
    // distinct id space so it never collides with the submit flows.
    if (const auto it = chunk_tasks.find({m.sweep, m.chunk});
        it != chunk_tasks.end()) {
      const TaskProfile& t = *it->second;
      const std::string id = std::to_string(kMergeFlowBase + t.id);
      append("{\"name\":\"merge\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" +
             id + ",\"pid\":1,\"tid\":" + std::to_string(t.exec_tid) +
             ",\"ts\":" + std::to_string(t.end_t) + "}");
      append("{\"name\":\"merge\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":"
             "\"e\",\"id\":" +
             id + ",\"pid\":1,\"tid\":" + std::to_string(m.tid) +
             ",\"ts\":" + std::to_string(std::max(m.begin_t, t.end_t)) +
             "}");
    }
  }
  return out;
}

bool write_profile(const std::string& path) {
  const Profile profile = build_profile(drain_task_events());
  const std::string json = render_profile_json(profile);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "obs: cannot write profile %s\n", path.c_str());
    return false;
  }
  out << json;
  if (!out.flush().good()) {
    std::fprintf(stderr, "obs: short write to profile %s\n", path.c_str());
    return false;
  }
  return true;
}

bool write_chrome_trace_with_tasks(const std::string& path) {
  const Profile profile = build_profile(drain_task_events());
  const std::string json =
      render_chrome_trace(drain_trace(), render_task_trace_events(profile));
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "obs: cannot write trace %s\n", path.c_str());
    return false;
  }
  out << json;
  if (!out.flush().good()) {
    std::fprintf(stderr, "obs: short write to trace %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace rdv::obs
