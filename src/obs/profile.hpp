#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/task_events.hpp"

/// Post-run scheduler profile analyzer (ISSUE 9 tentpole): turns the
/// raw task-event stream (obs/task_events.hpp) into a causal model of
/// a run — per-task lifecycles stitched across threads, per-sweep task
/// DAGs, critical paths with per-stage attribution, thread busy/park
/// timelines, queue/steal latency histograms, and the thundering-herd
/// factor (cv wakeups per useful task) that motivates the per-worker
/// parking rewrite on the roadmap.
///
/// The profile round-trips through a JSON sidecar (`rdv_bench
/// --profile-out`), so the `rdv_profile` CLI can re-analyze, compare,
/// and rank long after the run. Like every obs surface it is
/// sidecar-only: building or rendering a profile never touches stdout
/// or a result byte.
namespace rdv::obs {

/// One pool task's reconstructed lifecycle. Timestamps are micros on
/// the shared obs steady clock; 0 means the event was never seen
/// (incomplete lifecycle, e.g. drained mid-run).
struct TaskProfile {
  std::uint64_t id = 0;
  /// Sweep DAG membership (kChunkTask label); 0 = not a sweep chunk.
  std::uint64_t sweep = 0;
  std::uint64_t chunk = 0;
  bool is_chunk = false;
  /// True when the task was popped from another worker's deque.
  bool stolen = false;
  /// Victim worker index (valid when stolen).
  std::uint64_t steal_victim = 0;
  std::uint32_t submit_tid = 0;
  std::uint32_t exec_tid = 0;
  std::uint64_t submit_t = 0;
  /// Dequeue-or-steal timestamp (whichever popped it).
  std::uint64_t dequeue_t = 0;
  std::uint64_t begin_t = 0;
  std::uint64_t end_t = 0;

  /// Submit-to-begin (clamped; the begin always trails the submit on
  /// one clock, but incomplete lifecycles carry zeros).
  [[nodiscard]] std::uint64_t queue_micros() const noexcept {
    return begin_t > submit_t ? begin_t - submit_t : 0;
  }
  [[nodiscard]] std::uint64_t exec_micros() const noexcept {
    return end_t > begin_t ? end_t - begin_t : 0;
  }
  [[nodiscard]] bool complete() const noexcept {
    return submit_t != 0 && begin_t != 0 && end_t != 0;
  }
};

/// One merged chunk on a sweep's merging thread.
struct MergeProfile {
  std::uint64_t sweep = 0;
  std::uint64_t chunk = 0;
  std::uint32_t tid = 0;
  std::uint64_t begin_t = 0;
  std::uint64_t end_t = 0;

  [[nodiscard]] std::uint64_t micros() const noexcept {
    return end_t > begin_t ? end_t - begin_t : 0;
  }
};

/// One completed park (cv sleep) interval on a thread.
struct ParkInterval {
  std::uint32_t tid = 0;
  std::uint64_t begin_t = 0;
  std::uint64_t end_t = 0;
};

/// One sweep_map invocation.
struct SweepProfile {
  std::uint64_t id = 0;
  std::uint64_t chunks = 0;
  std::uint64_t items = 0;
  /// The scheduling/merging thread.
  std::uint32_t tid = 0;
  std::uint64_t begin_t = 0;
  std::uint64_t end_t = 0;

  [[nodiscard]] std::uint64_t micros() const noexcept {
    return end_t > begin_t ? end_t - begin_t : 0;
  }
};

struct Profile {
  /// Raw events consumed / events lost to ring overwrites at drain
  /// time. A nonzero dropped count means lifecycles may be incomplete;
  /// rdv_profile report --strict fails on it.
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  /// Observed time span (min/max event timestamp; 0/0 when empty).
  std::uint64_t t_min = 0;
  std::uint64_t t_max = 0;
  std::vector<TaskProfile> tasks;    ///< sorted by id
  std::vector<MergeProfile> merges;  ///< sorted by (sweep, chunk)
  std::vector<ParkInterval> parks;   ///< sorted by (begin_t, tid)
  std::vector<SweepProfile> sweeps;  ///< sorted by id
};

/// Reconstructs the profile from a drained event stream
/// (drain_task_events output; any (t, tid, seq)-sorted order works).
[[nodiscard]] Profile build_profile(const std::vector<TaskEvent>& events);

/// Cumulative cv wakeups divided by tasks actually executed — the
/// thundering-herd factor of the single-cv pool (1.0 would be the
/// ideal "one wakeup, one task"). Returns 0 when no task ran.
[[nodiscard]] double herd_factor(const Profile& profile) noexcept;

/// One hop of a sweep's critical path, walked backward from the last
/// merge. kind is "task" (the binding chunk's queue+exec) or "merge".
struct CriticalPathStep {
  std::string kind;
  std::uint64_t chunk = 0;
  std::uint64_t micros = 0;
};

/// Per-stage attribution of one sweep's wall time. The stages
/// partition [sweep begin, sweep end]:
///   schedule — sweep begin to the binding chunk's submit
///   queue    — that chunk's submit to execution begin
///   exec     — its execution
///   stall    — merge-loop waits on a not-yet-ready dependency
///   merge    — merges on the critical path
///   tail     — last merge end to sweep end
/// stage_sum() telescopes back to total_micros exactly, up to clamped
/// inversions (a chunk publishes its done-slot just before its kEnd is
/// recorded, so a merge begin may precede the task end by a hair).
struct CriticalPath {
  std::uint64_t sweep = 0;
  std::uint64_t total_micros = 0;
  std::uint64_t schedule_micros = 0;
  std::uint64_t queue_micros = 0;
  std::uint64_t exec_micros = 0;
  std::uint64_t stall_micros = 0;
  std::uint64_t merge_micros = 0;
  std::uint64_t tail_micros = 0;
  /// Walk order: last merge first.
  std::vector<CriticalPathStep> steps;

  [[nodiscard]] std::uint64_t stage_sum() const noexcept {
    return schedule_micros + queue_micros + exec_micros + stall_micros +
           merge_micros + tail_micros;
  }
};

/// Critical path of one sweep (by sweep id). Returns a zeroed path
/// (total 0) when the sweep is unknown.
[[nodiscard]] CriticalPath critical_path(const Profile& profile,
                                         std::uint64_t sweep);

/// Deterministic JSON sidecar (format 1): name-stable keys, integer
/// micros, arrays in the Profile's sorted orders.
[[nodiscard]] std::string render_profile_json(const Profile& profile);

/// Strict parser for render_profile_json output. Returns false (and
/// reports on stderr) on malformed input or an unknown format.
[[nodiscard]] bool parse_profile_json(const std::string& text,
                                      Profile* out);

/// Human report: sweeps with critical-path attribution, per-thread
/// utilization, queue/steal latency log2 histograms, steal ratio, and
/// the thundering-herd factor.
[[nodiscard]] std::string render_profile_report(const Profile& profile);

/// Top `n` tasks by execution time (descending, id ascending on ties).
[[nodiscard]] std::string render_profile_top(const Profile& profile,
                                             std::size_t n);

/// Side-by-side comparison of two profiles' aggregates (informational;
/// never fails the run).
[[nodiscard]] std::string render_profile_diff(const Profile& a,
                                              const Profile& b);

/// Chrome-trace fragment (comma-joined event objects, no brackets) for
/// render_chrome_trace's extra_events hook: an "X" slice per task
/// execution / merge / sweep, plus flow events ("s" at submit, "t" at
/// a steal, "f" at begin; a second flow from chunk end to its merge)
/// stitching each lifecycle across thread rows.
[[nodiscard]] std::string render_task_trace_events(const Profile& profile);

/// drain_task_events + build + render + write. Returns false when the
/// file cannot be written (reported on stderr, never stdout).
bool write_profile(const std::string& path);

/// Combined sidecar: span trace AND task-profile flow events in one
/// Chrome trace file (what --trace-out emits when --profile-out is
/// also active, so the timeline and the causal arrows line up).
bool write_chrome_trace_with_tasks(const std::string& path);

}  // namespace rdv::obs
