#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <vector>

namespace rdv::obs {

namespace {

/// Monotonic per-thread ids spread threads across stripes; the first
/// kStripes threads get distinct stripes, later ones wrap.
std::atomic<std::size_t> next_thread_slot{0};

std::size_t acquire_thread_slot() noexcept {
  return next_thread_slot.fetch_add(1, std::memory_order_relaxed) % kStripes;
}

}  // namespace

std::size_t thread_stripe() noexcept {
  thread_local const std::size_t slot = acquire_thread_slot();
  return slot;
}

std::size_t histogram_bucket(std::uint64_t value) noexcept {
  // bit_width(v) is 0..64; the top two widths share the last bucket so
  // the array stays a power of two.
  return std::min<std::size_t>(static_cast<std::size_t>(std::bit_width(value)),
                               kHistogramBuckets - 1);
}

std::uint64_t now_micros() noexcept {
  // One process-wide epoch: the first call pins t=0, every later call
  // (metrics and trace alike) is micros since then.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void Registry::register_source(std::string name, SnapshotSource source) {
  std::lock_guard lock(mutex_);
  sources_[std::move(name)] = std::move(source);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  // Sources are copied under the mutex but INVOKED outside it: they
  // read subsystem stats behind subsystem locks (cache shards, pool
  // sleep mutex), all of which rank BELOW the registry mutex — calling
  // them with the registry locked was the lock-order inversion the
  // RDV_CHECKED rank checker flagged when it first ran.
  std::vector<SnapshotSource> sources;
  {
    std::lock_guard lock(mutex_);
    for (const auto& [name, c] : counters_) out.counters[name] = c->value();
    for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
    for (const auto& [name, h] : histograms_) {
      out.histograms[name] = h->snapshot();
    }
    sources.reserve(sources_.size());
    for (const auto& [name, source] : sources_) sources.push_back(source);
  }
  for (const SnapshotSource& source : sources) source(out);
  return out;
}

void Registry::reset_for_tests() {
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
  sources_.clear();
}

Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}

Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

}  // namespace rdv::obs
