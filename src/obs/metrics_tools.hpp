#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

/// Snapshot serialization + the perf-trend gate logic behind the
/// `rdv_metrics` CLI (ISSUE 7). Library functions so tests drive the
/// exact code the CLI and the CI gate run.
namespace rdv::obs {

/// Snapshot format version (the "format" field of the JSON).
inline constexpr std::uint32_t kMetricsFormat = 1;

/// Deterministic JSON rendering (name-sorted; integers only, so two
/// identical snapshots render byte-identically):
/// {"format":1,"counters":{...},"gauges":{...},
///  "histograms":{"name":{"count":..,"sum":..,"buckets":[..64..]}}}
[[nodiscard]] std::string render_metrics_json(const MetricsSnapshot& snap);

/// Strict inverse of render_metrics_json (unknown top-level keys,
/// shape or format mismatches throw std::runtime_error).
[[nodiscard]] MetricsSnapshot parse_metrics_json(std::string_view json);

/// Human-readable dump (the `rdv_metrics dump` body).
[[nodiscard]] std::string render_metrics_dump(const MetricsSnapshot& snap);

struct DiffOptions {
  /// Allowed fractional growth of a wall-clock series before it counts
  /// as a regression: current mean must stay <= base mean * (1 +
  /// tolerance). Used as the flat fallback band when a series lacks
  /// enough history for the variance-aware band.
  double tolerance = 0.25;
  /// Noise floor: series whose base AND current means are below this
  /// many micros never regress (tiny experiments flap on CI runners).
  std::uint64_t min_micros = 0;
  /// Variance-aware band (diff_snapshots_with_history): a series with
  /// at least min_history_runs historical means gets the band
  /// mu + max(sigmas * sigma, mu * min_band_frac) — tight for stable
  /// series, naturally loose for noisy ones. min_band_frac keeps a
  /// zero-variance history from gating at exactly mu.
  double sigmas = 3.0;
  double min_band_frac = 0.05;
  std::size_t min_history_runs = 3;
};

struct DiffReport {
  /// Narrative lines, one per compared/changed series (regressions
  /// prefixed "REGRESSION", disappearances "MISSING").
  std::vector<std::string> lines;
  /// Wall-clock series beyond the tolerance band; nonzero means the
  /// gate fails.
  std::size_t regressions = 0;
};

/// The perf-trend comparison: every histogram in `base` whose name
/// ends in ".wall_micros" is checked against `current` with the
/// tolerance band; other counters/gauges are reported informationally
/// (they never fail the diff — use `check_assertion` for invariants).
[[nodiscard]] DiffReport diff_snapshots(const MetricsSnapshot& base,
                                        const MetricsSnapshot& current,
                                        const DiffOptions& options = {});

/// Variance-aware perf-trend gate (ISSUE 9): like diff_snapshots, but
/// a series with >= options.min_history_runs means across `history`
/// (prior runs' snapshots, e.g. the CI rolling-history artifact) is
/// gated against the distribution-derived band mu + max(sigmas*sigma,
/// mu*min_band_frac) instead of the flat baseline band. Series with
/// thin history fall back to the flat band vs `base` — a brand-new
/// series still gets gated on its first runs.
[[nodiscard]] DiffReport diff_snapshots_with_history(
    const MetricsSnapshot& base, const MetricsSnapshot& current,
    const std::vector<MetricsSnapshot>& history,
    const DiffOptions& options = {});

/// Loads every *.json in `dir` as a snapshot, name-sorted (so the
/// rolling history is order-stable across platforms). Unparsable or
/// unreadable files are skipped with a stderr note — one corrupt
/// history entry must not kill the gate. A missing directory is an
/// empty history.
[[nodiscard]] std::vector<MetricsSnapshot> load_snapshot_dir(
    const std::string& dir);

struct AssertResult {
  bool ok = false;
  std::string message;
};

/// Evaluates one invariant expression of the form `name OP value`
/// (OP in ==, !=, <=, >=, <, >; no spaces), e.g.
/// "views.shrink_pair_bfs==0". `name` resolves against counters, then
/// gauges, then histogram projections `<hist>.count` / `<hist>.sum`.
/// A missing name or malformed expression is a failed (ok=false)
/// result with a diagnostic message.
[[nodiscard]] AssertResult check_assertion(const MetricsSnapshot& snap,
                                           std::string_view expr);

}  // namespace rdv::obs
