#pragma once

#include <string_view>

/// The `rdv_bench` driver: list / describe / filter / run any
/// registered experiment, replacing the bespoke per-bench main()s.
namespace rdv::exp {

/// CLI entry point of the rdv_bench binary. Returns the process exit
/// code: 0 on success, 1 when an experiment failed (or --check found an
/// empty table), 2 on usage errors.
int run_main(int argc, const char* const* argv);

/// Back-compat entry for the thin per-experiment bench binaries: runs
/// one experiment by id with the environment-derived context
/// (REPRO_FULL scale, REPRO_CSV_DIR / REPRO_JSON_DIR emission).
int run_single(std::string_view id);

}  // namespace rdv::exp
