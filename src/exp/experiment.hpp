#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "store/result_log.hpp"
#include "support/table.hpp"
#include "sweep/sweep.hpp"

/// The experiment registry (ISSUE 3 tentpole).
///
/// Every experiment table/figure of the reproduction is one declarative
/// Experiment record: an id, its parameter axes, an output schema (the
/// table headers), and a kernel that renders one case into one row.
/// The registry runner executes every case through sweep::sweep_map on
/// the shared pool + artifact cache, merges rows in case order (the
/// sweep substrate's byte-identical-at-any-thread-count contract), and
/// emits the result uniformly as markdown / CSV / JSON. One driver
/// binary (`rdv_bench`) lists, filters, and runs everything registered.
namespace rdv::exp {

/// How big the parameter axes are instantiated.
enum class Scale {
  /// Tiny: a strict subset of kQuick sized for CI smoke jobs and the
  /// exp_test determinism matrix (seconds for the whole registry).
  kSmoke,
  /// The default bench run (the old no-REPRO_FULL behavior).
  kQuick,
  /// The paper-scale sweep (the old REPRO_FULL=1 behavior).
  kFull,
  /// Census: a strict superset of kFull growing the random-graph STIC
  /// censuses (REPRO_CENSUS=1 / --census). Opt-in only — never reached
  /// from tier-1 tests or CI smoke — so axes here may take minutes.
  kCensus,
};

/// Stable name of a scale ("smoke", "quick", "full", "census") — the
/// string logged into result records.
[[nodiscard]] const char* scale_name(Scale scale) noexcept;

/// Everything a case kernel may depend on besides its own parameters.
/// The sweep config carries the pool, the artifact cache, and the
/// chunking; kernels resolve shared artifacts through `cache()` so a
/// disabled cache degrades to recomputation without changing output.
struct ExpContext {
  Scale scale = Scale::kQuick;
  sweep::SweepConfig sweep;

  /// Census axes extend full axes, so full() is true at census too —
  /// scenarios guard their big branches with full() and add census-only
  /// growth behind census().
  [[nodiscard]] bool full() const noexcept { return scale >= Scale::kFull; }
  [[nodiscard]] bool census() const noexcept {
    return scale == Scale::kCensus;
  }
  [[nodiscard]] bool smoke() const noexcept {
    return scale == Scale::kSmoke;
  }
  /// Cache to resolve artifacts through; nullptr means the global one
  /// (the cached_* entry points accept exactly this).
  [[nodiscard]] cache::ArtifactCache* cache() const noexcept {
    return sweep.cache;
  }

  /// Detail-record sink for streaming scenarios (the censuses): a case
  /// kernel submits per-case records under its case index and they
  /// reach the result log incrementally in index order, regardless of
  /// completion order — no full-table materialization, byte-identical
  /// at every thread count (streamed records must not carry wall-clock
  /// fields). nullptr when no result log is attached; kernels skip
  /// streaming then.
  store::OrderedResultStream* stream = nullptr;
};

/// Computes one table row. Must be thread-safe: cases execute
/// concurrently on pool workers (including cases that run nested
/// sweeps — pool waits are work-assisting, so blocking on an inner
/// sweep from a pool task is safe). An empty return means "no row"
/// (the case is skipped in the table).
using CaseFn = std::function<std::vector<std::string>(const ExpContext&)>;

/// Declarative description of one experiment.
struct Experiment {
  /// Stable id ("t5_universal_time") — the CSV/JSON file stem and the
  /// driver's run argument.
  std::string id;
  /// Heading printed above the table.
  std::string title;
  /// One-liner for `rdv_bench --list`.
  std::string summary;
  /// Human-readable parameter axes for `--describe` (what varies per
  /// row, and how the scales differ).
  std::vector<std::string> axes;
  /// Output schema: the table headers every case row must match.
  std::vector<std::string> headers;
  /// Filter tags ("table", "figure", "ablation", "lower-bound", ...).
  std::vector<std::string> tags;
  /// Instantiates the case list for the context's scale. Runs serially;
  /// put per-case work in the returned kernels, not here.
  std::function<std::vector<CaseFn>(const ExpContext&)> cases;
  /// Optional note lines printed after the table (the old trailing
  /// printf commentary).
  std::function<std::vector<std::string>(const ExpContext&)> notes;
};

struct ExpOutput {
  support::Table table;
  std::vector<std::string> notes;
  sweep::SweepStats stats;
  /// Wall-clock of the whole run_experiment call (case generation +
  /// sweep + merge). Scheduling-dependent: reported via BENCH_sweep.json
  /// and the binary result log, never printed into the tables (those
  /// stay byte-identical across thread counts and warm/cold stores).
  std::uint64_t wall_micros = 0;
};

/// Instantiates the experiment's cases and executes them on the sweep
/// substrate (sweep_map, one case per chunk), merging rows in case
/// order. Output is byte-identical for any pool size and any cache
/// configuration (tests/exp_test.cpp pins this for every registered
/// experiment).
[[nodiscard]] ExpOutput run_experiment(const Experiment& experiment,
                                       const ExpContext& ctx);

/// Ordered collection of experiments; ids are unique.
class Registry {
 public:
  /// Registers; throws std::invalid_argument on a duplicate id.
  void add(Experiment experiment);

  [[nodiscard]] const Experiment* find(std::string_view id) const;

  /// Experiments whose id, title, or any tag contains `filter`
  /// (case-sensitive substring); empty filter matches everything.
  [[nodiscard]] std::vector<const Experiment*> match(
      std::string_view filter) const;

  [[nodiscard]] const std::vector<Experiment>& all() const noexcept {
    return experiments_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return experiments_.size();
  }

 private:
  std::vector<Experiment> experiments_;
};

/// Where run results go. Markdown (heading + table + notes) prints to
/// stdout; CSV/JSON files are written per experiment when the
/// directories are nonempty.
struct EmitOptions {
  bool markdown = true;
  /// Also print the JSON rendering to stdout (after the table).
  bool json_stdout = false;
  std::string csv_dir;
  std::string json_dir;
};

/// csv_dir/json_dir from REPRO_CSV_DIR / REPRO_JSON_DIR.
[[nodiscard]] EmitOptions emit_options_from_env();

/// Writes contents to path, reporting success only when the stream
/// flushed clean — a disk-full short write must not claim an emitted
/// file. Exposed so tests can drive the failure paths directly.
bool write_file(const std::string& path, const std::string& contents);

/// Emits one experiment's output; returns the file paths written.
std::vector<std::string> emit(const Experiment& experiment,
                              const ExpOutput& output,
                              const EmitOptions& options);

}  // namespace rdv::exp
