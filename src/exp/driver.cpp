#include "exp/driver.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "obs/metrics.hpp"
#include "obs/metrics_tools.hpp"
#include "obs/profile.hpp"
#include "obs/task_events.hpp"
#include "obs/trace.hpp"
#include "store/result_log.hpp"
#include "support/bench_json.hpp"
#include "support/env.hpp"
#include "support/thread_pool.hpp"
#include "uxs/corpus.hpp"
#include "views/refinement.hpp"
#include "views/refinement_worklist.hpp"
#include "views/shrink.hpp"

namespace rdv::exp {
namespace {

constexpr const char* kUsage = R"(usage: rdv_bench [options] [id-or-filter ...]

Runs registered experiments (positional arguments select by exact id
first, then by substring over ids/titles/tags). With no arguments,
lists the registry.

options:
  --list           list matching experiments and exit
  --describe       print axes / output schema of matching experiments and exit
  --all            select every registered experiment
  --smoke          smoke scale (tiny axes; CI-sized)
  --full           full scale (default comes from REPRO_FULL)
  --census         census scale (full + big random-graph STIC censuses;
                   default comes from REPRO_CENSUS)
  --threads N      run on a dedicated pool of N threads
  --chunk N        chunk size for the experiments' inner sweeps
  --csv-dir DIR    write <dir>/<id>.csv   (default: REPRO_CSV_DIR)
  --json-dir DIR   write <dir>/<id>.json  (default: REPRO_JSON_DIR)
  --json           also print each table as JSON to stdout
  --store-dir DIR  persistent artifact store (same as RDV_STORE_DIR):
                   warm runs skip recomputing view classes, quotients,
                   Shrink, and UXS corpus verification
  --result-log F   append every table to a compact binary log (round-
                   trip verified under --check)
  --metrics-out F  write the unified metrics snapshot (cache/store/
                   pool/sweep/exp series) as JSON after the run; feed
                   it to rdv_metrics dump|diff|assert
  --trace-out F    enable span tracing and write a Chrome-trace /
                   Perfetto JSON (chrome://tracing, ui.perfetto.dev)
  --profile-out F  enable task-lifecycle profiling and write the
                   scheduler profile (submit/steal/exec/park per task,
                   sweep DAGs) as JSON; analyze with rdv_profile
                   report|top|diff. Combined with --trace-out, the
                   trace gains flow arrows stitching each task's
                   submit -> steal -> execute -> merge across threads
  --check          fail (exit 1) if any experiment emits an empty table
  --help           this text

Value-taking options accept both `--opt VALUE` and `--opt=VALUE`.

After a run, per-experiment wall-clock timings are folded into
BENCH_sweep.json in the CSV dir (or the working directory) and store /
UXS-verification statistics are printed to stderr. Metrics and traces
are sidecar-only: stdout bytes are identical with and without them.
)";

struct Args {
  bool list = false;
  bool describe = false;
  bool all = false;
  bool json_stdout = false;
  bool check = false;
  Scale scale = Scale::kQuick;
  bool scale_forced = false;
  std::size_t threads = 0;
  std::size_t chunk = 0;
  std::string csv_dir;
  std::string json_dir;
  std::string store_dir;
  std::string result_log;
  std::string metrics_out;
  std::string trace_out;
  std::string profile_out;
  std::vector<std::string> selectors;
};

bool parse_size(std::string_view text, std::size_t& out) {
  const std::string copy(text);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(copy.c_str(), &end, 10);
  if (end == copy.c_str() || *end != '\0' || v == 0) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

int parse_args(int argc, const char* const* argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    // --opt=VALUE: split once here so every value-taking option accepts
    // both spellings.
    std::string_view inline_value;
    bool has_inline = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const std::size_t eq = arg.find('=');
      if (eq != std::string_view::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_inline = true;
      }
    }
    const auto value = [&](std::string_view& out) {
      if (has_inline) {
        out = inline_value;
        return true;
      }
      if (i + 1 >= argc) return false;
      out = argv[++i];
      return true;
    };
    const bool takes_value =
        arg == "--threads" || arg == "--chunk" || arg == "--csv-dir" ||
        arg == "--json-dir" || arg == "--store-dir" ||
        arg == "--result-log" || arg == "--metrics-out" ||
        arg == "--trace-out" || arg == "--profile-out";
    if (has_inline && !takes_value) {
      std::fprintf(stderr, "rdv_bench: option %s does not take a value\n",
                   std::string(arg).c_str());
      return 2;
    }
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return -1;
    } else if (arg == "--list") {
      args.list = true;
    } else if (arg == "--describe") {
      args.describe = true;
    } else if (arg == "--all") {
      args.all = true;
    } else if (arg == "--smoke") {
      args.scale = Scale::kSmoke;
      args.scale_forced = true;
    } else if (arg == "--full") {
      args.scale = Scale::kFull;
      args.scale_forced = true;
    } else if (arg == "--census") {
      args.scale = Scale::kCensus;
      args.scale_forced = true;
    } else if (arg == "--json") {
      args.json_stdout = true;
    } else if (arg == "--check") {
      args.check = true;
    } else if (arg == "--threads" || arg == "--chunk") {
      std::string_view v;
      std::size_t& slot = arg == "--threads" ? args.threads : args.chunk;
      if (!value(v) || !parse_size(v, slot)) {
        std::fprintf(stderr, "rdv_bench: %s needs a positive count\n",
                     std::string(arg).c_str());
        return 2;
      }
    } else if (arg == "--csv-dir" || arg == "--json-dir" ||
               arg == "--store-dir" || arg == "--result-log" ||
               arg == "--metrics-out" || arg == "--trace-out" ||
               arg == "--profile-out") {
      std::string_view v;
      if (!value(v) || v.empty()) {
        std::fprintf(stderr, "rdv_bench: %s needs a path\n",
                     std::string(arg).c_str());
        return 2;
      }
      std::string& slot = arg == "--csv-dir"      ? args.csv_dir
                          : arg == "--json-dir"   ? args.json_dir
                          : arg == "--store-dir"  ? args.store_dir
                          : arg == "--result-log" ? args.result_log
                          : arg == "--metrics-out" ? args.metrics_out
                          : arg == "--trace-out"  ? args.trace_out
                                                  : args.profile_out;
      slot = std::string(v);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rdv_bench: unknown option %s\n%s",
                   std::string(arg).c_str(), kUsage);
      return 2;
    } else {
      args.selectors.emplace_back(arg);
    }
  }
  return 0;
}

/// Resolves selectors against the registry, preserving registry order
/// and deduplicating. Returns false when a selector matched nothing.
bool select(const Registry& registry, const Args& args,
            std::vector<const Experiment*>& selected) {
  if (args.all || args.selectors.empty()) {
    for (const Experiment& e : registry.all()) selected.push_back(&e);
    return true;
  }
  std::vector<bool> picked(registry.size(), false);
  for (const std::string& selector : args.selectors) {
    std::vector<const Experiment*> matched;
    if (const Experiment* exact = registry.find(selector)) {
      matched.push_back(exact);
    } else {
      matched = registry.match(selector);
    }
    if (matched.empty()) {
      std::fprintf(stderr,
                   "rdv_bench: no experiment matches '%s' (try --list)\n",
                   selector.c_str());
      return false;
    }
    for (const Experiment* e : matched) {
      picked[static_cast<std::size_t>(e - registry.all().data())] = true;
    }
  }
  for (std::size_t i = 0; i < registry.size(); ++i) {
    if (picked[i]) selected.push_back(&registry.all()[i]);
  }
  return true;
}

std::string join(const std::vector<std::string>& parts,
                 const char* separator) {
  std::string out;
  for (const std::string& part : parts) {
    if (!out.empty()) out += separator;
    out += part;
  }
  return out;
}

void print_list(const std::vector<const Experiment*>& selected) {
  support::Table table({"id", "tags", "summary"});
  for (const Experiment* e : selected) {
    table.add_row({e->id, join(e->tags, ","), e->summary});
  }
  std::printf("%zu experiments registered\n%s", selected.size(),
              table.to_markdown().c_str());
}

/// One BENCH_sweep.json datapoint per executed experiment — the
/// per-scenario trend-tracking companion to micro_sweep's substrate
/// datapoint (the "bench" field tells the two apart).
struct Timing {
  std::string id;
  std::uint64_t wall_micros = 0;
  std::size_t cases = 0;
  std::size_t rows = 0;
};

void write_bench_json(const std::string& csv_dir, Scale scale,
                      std::size_t threads,
                      const std::vector<Timing>& timings) {
  const std::string path =
      (csv_dir.empty() ? std::string() : csv_dir + "/") + "BENCH_sweep.json";
  std::ostringstream json;
  json << "{\"bench\":\"rdv_bench\",\"scale\":\"" << scale_name(scale)
       << "\",\"threads\":" << threads << ",\"experiments\":[";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const Timing& t = timings[i];
    if (i != 0) json << ",";
    json << "{\"id\":\"" << t.id << "\",\"wall_ms\":"
         << static_cast<double>(t.wall_micros) / 1000.0
         << ",\"cases\":" << t.cases << ",\"rows\":" << t.rows << "}";
  }
  json << "]}";
  // JSON-lines update: replaces only the rdv_bench line, preserving
  // e.g. micro_sweep's substrate datapoint in a shared CSV dir.
  if (!support::update_bench_json(path, "rdv_bench", json.str())) {
    std::fprintf(stderr, "rdv_bench: warning: cannot write %s\n",
                 path.c_str());
    return;
  }
  std::fprintf(stderr, "rdv_bench: timings folded into %s\n", path.c_str());
}

/// Bridges subsystem-owned statistics into metrics snapshots. The
/// subsystems keep their counters (per-instance, directly testable);
/// the registry reads them through these sources at snapshot time, so
/// there is exactly one bookkeeper per number. register_source is
/// idempotent by name — run_main may execute repeatedly in one process
/// (tests) without stacking duplicate contributors.
void register_metric_sources() {
  obs::Registry::instance().register_source(
      "exp.cache", [](obs::MetricsSnapshot& snap) {
        const cache::CacheStats stats = cache::global_cache().stats();
        const auto tier = [&snap](const char* kind,
                                  const cache::StoreStats& s) {
          const std::string p = std::string("cache.") + kind;
          snap.counters[p + ".hits"] = s.hits;
          snap.counters[p + ".misses"] = s.misses;
          snap.counters[p + ".evictions"] = s.evictions;
          snap.gauges[p + ".entries"] = static_cast<std::int64_t>(s.entries);
          snap.gauges[p + ".bytes"] = static_cast<std::int64_t>(s.bytes);
        };
        tier("view_classes", stats.view_classes);
        tier("quotients", stats.quotients);
        tier("uxs", stats.uxs);
        tier("shrink", stats.shrink);
        tier("all_pairs_shrink", stats.all_pairs_shrink);
      });
  obs::Registry::instance().register_source(
      "exp.store", [](obs::MetricsSnapshot& snap) {
        const store::DiskStore* disk = cache::global_cache().disk();
        snap.gauges["store.attached"] = disk != nullptr ? 1 : 0;
        // Zero series when no store is attached: the store tier always
        // appears in a snapshot, so baselines and assertions keep one
        // schema across cold, warm, and storeless runs.
        for (std::size_t k = 0; k < store::kKindCount; ++k) {
          const auto kind = static_cast<store::Kind>(k);
          const store::DiskStats s =
              disk != nullptr ? disk->stats(kind) : store::DiskStats{};
          const std::string p =
              std::string("store.") + store::kind_name(kind);
          snap.counters[p + ".hits"] = s.hits;
          snap.counters[p + ".misses"] = s.misses;
          snap.counters[p + ".corrupt"] = s.corrupt;
          snap.counters[p + ".version_mismatch"] = s.version_mismatch;
          snap.counters[p + ".writes"] = s.writes;
          snap.counters[p + ".write_failures"] = s.write_failures;
          snap.counters[p + ".bytes_read"] = s.bytes;
          snap.counters[p + ".bytes_written"] = s.bytes_written;
        }
      });
  obs::Registry::instance().register_source(
      "exp.obs", [](obs::MetricsSnapshot& snap) {
        // Observability self-monitoring (ISSUE 9): ring overwrites in
        // the span tracer and the task-event log surface as counters,
        // so CI can assert obs.*_dropped==0 on smoke runs — a sidecar
        // that silently lost events is worse than none.
        snap.counters["obs.trace_dropped"] = obs::trace_dropped_count();
        snap.counters["obs.task_events_dropped"] =
            obs::task_events_dropped_count();
        snap.counters["obs.task_events_recorded"] =
            obs::task_events_recorded_count();
      });
  obs::Registry::instance().register_source(
      "exp.process", [](obs::MetricsSnapshot& snap) {
        // The CI invariant assertions read these: zero pair-BFS on the
        // batched census path, zero verifications on a warm store.
        snap.counters["uxs.corpus_verifications"] =
            uxs::corpus_verification_count();
        snap.counters["views.shrink_pair_bfs"] =
            views::shrink_pair_bfs_count();
        snap.counters["views.shrink_all_pairs_computes"] =
            views::shrink_all_pairs_compute_count();
        // Worklist refinement effort (ISSUE 8). refine_naive counts
        // oracle runs — CI asserts it stays zero on the census path
        // (production refinement never falls back to O(n^2 m)).
        snap.counters["views.refine_worklist_computes"] =
            views::refine_worklist_compute_count();
        snap.counters["views.refine_splits"] = views::refine_split_count();
        snap.counters["views.refine_worklist_pops"] =
            views::refine_worklist_pop_count();
        snap.counters["views.refine_naive"] = views::refine_naive_count();
      });
}

/// Store / UXS statistics on stderr (never stdout: warm and cold runs
/// must stay byte-identical there). The warm-run CI job greps
/// uxs_corpus_verifications=0 on the second invocation.
void print_run_stats() {
  std::fprintf(stderr, "rdv_bench: uxs_corpus_verifications=%llu\n",
               static_cast<unsigned long long>(
                   uxs::corpus_verification_count()));
  // The census acceptance greps these: the batched path must leave
  // shrink_pair_bfs at zero, and a warm store leaves the compute count
  // at zero too.
  std::fprintf(stderr,
               "rdv_bench: shrink_pair_bfs=%llu shrink_all_pairs_computes="
               "%llu\n",
               static_cast<unsigned long long>(views::shrink_pair_bfs_count()),
               static_cast<unsigned long long>(
                   views::shrink_all_pairs_compute_count()));
  // Worklist refinement effort; refine_naive must read 0 on the census
  // (the naive engine survives only as a test oracle), and a warm store
  // leaves refine_worklist_computes at zero.
  std::fprintf(stderr,
               "rdv_bench: refine_worklist_computes=%llu refine_splits=%llu "
               "refine_worklist_pops=%llu refine_naive=%llu\n",
               static_cast<unsigned long long>(
                   views::refine_worklist_compute_count()),
               static_cast<unsigned long long>(views::refine_split_count()),
               static_cast<unsigned long long>(
                   views::refine_worklist_pop_count()),
               static_cast<unsigned long long>(views::refine_naive_count()));
  const store::DiskStore* disk = cache::global_cache().disk();
  if (disk == nullptr) return;
  std::fprintf(stderr, "rdv_bench: store dir=%s salt=%s\n",
               disk->config().root.c_str(),
               disk->config().build_salt.c_str());
  for (std::size_t k = 0; k < store::kKindCount; ++k) {
    const auto kind = static_cast<store::Kind>(k);
    const store::DiskStats s = disk->stats(kind);
    std::fprintf(stderr,
                 "rdv_bench: store[%s] hits=%llu misses=%llu corrupt=%llu "
                 "version_mismatch=%llu writes=%llu write_failures=%llu "
                 "bytes_read=%llu bytes_written=%llu\n",
                 store::kind_name(kind),
                 static_cast<unsigned long long>(s.hits),
                 static_cast<unsigned long long>(s.misses),
                 static_cast<unsigned long long>(s.corrupt),
                 static_cast<unsigned long long>(s.version_mismatch),
                 static_cast<unsigned long long>(s.writes),
                 static_cast<unsigned long long>(s.write_failures),
                 static_cast<unsigned long long>(s.bytes),
                 static_cast<unsigned long long>(s.bytes_written));
  }
}

/// Round-trips the just-written binary log and compares it against the
/// records the run produced — the --result-log leg of --check.
bool verify_result_log(const std::string& path,
                       const std::vector<store::ResultRecord>& expected) {
  std::vector<store::ResultRecord> read;
  try {
    read = store::read_result_log(path);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "rdv_bench: result log %s unreadable: %s\n",
                 path.c_str(), ex.what());
    return false;
  }
  if (read.size() != expected.size()) {
    std::fprintf(stderr,
                 "rdv_bench: result log %s has %zu records, expected %zu\n",
                 path.c_str(), read.size(), expected.size());
    return false;
  }
  for (std::size_t i = 0; i < read.size(); ++i) {
    // Byte-level comparison through the canonical encoding: any field
    // drift (id, scale, counters, schema, cells) fails the check.
    if (store::encode_result_record(read[i]) !=
        store::encode_result_record(expected[i])) {
      std::fprintf(stderr,
                   "rdv_bench: result log %s record %zu (%s) does not "
                   "round-trip\n",
                   path.c_str(), i, expected[i].experiment_id.c_str());
      return false;
    }
  }
  return true;
}

void print_describe(const std::vector<const Experiment*>& selected) {
  for (const Experiment* e : selected) {
    std::printf("%s — %s\n", e->id.c_str(), e->title.c_str());
    std::printf("  tags: %s\n", join(e->tags, ", ").c_str());
    for (const std::string& axis : e->axes) {
      std::printf("  axis: %s\n", axis.c_str());
    }
    std::printf("  columns: %s\n", join(e->headers, " | ").c_str());
    std::printf("\n");
  }
}

}  // namespace

int run_main(int argc, const char* const* argv) {
  Args args;
  const int parse = parse_args(argc, argv, args);
  if (parse != 0) return parse < 0 ? 0 : parse;
  if (!args.scale_forced) {
    if (support::repro_census()) {
      args.scale = Scale::kCensus;
    } else if (support::repro_full()) {
      args.scale = Scale::kFull;
    }
  }
  // --store-dir is sugar for RDV_STORE_DIR; exported before anything
  // touches the global cache (which reads the knob exactly once).
  if (!args.store_dir.empty()) {
    support::env_export("RDV_STORE_DIR", args.store_dir);
  }
  // Tracing/profiling flip on only when a sink was requested (and
  // before the pool spins up, so worker park/assist events are
  // captured too).
  if (!args.trace_out.empty()) obs::set_trace_enabled(true);
  if (!args.profile_out.empty()) obs::set_task_events_enabled(true);
  register_metric_sources();

  const Registry& registry = builtin_registry();
  std::vector<const Experiment*> selected;
  if (!select(registry, args, selected)) return 2;

  if (args.describe) {
    print_describe(selected);
    return 0;
  }
  // Bare `rdv_bench` lists instead of running everything by surprise.
  if (args.list || (args.selectors.empty() && !args.all)) {
    print_list(selected);
    return 0;
  }

  ExpContext ctx;
  ctx.scale = args.scale;
  if (args.chunk != 0) ctx.sweep.chunk_size = args.chunk;
  std::unique_ptr<support::ThreadPool> pool;
  if (args.threads != 0) {
    pool = std::make_unique<support::ThreadPool>(args.threads);
    ctx.sweep.pool = pool.get();
  }

  EmitOptions emit_options = emit_options_from_env();
  if (!args.csv_dir.empty()) emit_options.csv_dir = args.csv_dir;
  if (!args.json_dir.empty()) emit_options.json_dir = args.json_dir;
  emit_options.json_stdout = args.json_stdout;

  std::unique_ptr<store::ResultLogWriter> log;
  if (!args.result_log.empty()) {
    log = std::make_unique<store::ResultLogWriter>(args.result_log);
    if (!log->ok()) {
      std::fprintf(stderr, "rdv_bench: cannot write result log %s\n",
                   args.result_log.c_str());
      return 2;
    }
  }

  int failures = 0;
  std::vector<Timing> timings;
  std::vector<store::ResultRecord> logged;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const Experiment& e = *selected[i];
    if (i != 0) std::printf("\n");
    std::printf("== %s [%s] ==\n", e.id.c_str(), scale_name(ctx.scale));
    try {
      // Streaming scenarios (the censuses) push per-case detail records
      // through this sink DURING the run; they land in the log in case
      // order, before the experiment's own summary record below.
      std::unique_ptr<store::OrderedResultStream> stream;
      if (log != nullptr) {
        stream = std::make_unique<store::OrderedResultStream>(
            *log, args.check ? &logged : nullptr);
      }
      ctx.stream = stream.get();
      const ExpOutput output = run_experiment(e, ctx);
      ctx.stream = nullptr;
      // Per-scenario wall-clock series — what the CI perf-trend gate
      // diffs against its committed baseline band.
      obs::histogram("exp." + e.id + ".wall_micros")
          .observe(output.wall_micros);
      if (stream != nullptr && stream->pending() != 0) {
        std::fprintf(stderr,
                     "rdv_bench: %s left %zu streamed records stranded "
                     "(non-contiguous case indices)\n",
                     e.id.c_str(), stream->pending());
        ++failures;
      }
      const std::vector<std::string> written =
          emit(e, output, emit_options);
      timings.push_back(Timing{e.id, output.wall_micros,
                               output.stats.items_total,
                               output.table.row_count()});
      if (log != nullptr) {
        store::ResultRecord record;
        record.experiment_id = e.id;
        record.scale = scale_name(ctx.scale);
        record.wall_micros = output.wall_micros;
        record.items_total = output.stats.items_total;
        record.items_produced = output.stats.items_produced;
        record.headers = output.table.headers();
        record.rows = output.table.rows();
        log->append(record);
        if (!log->ok()) {
          // One counted failure, then stop logging (and skip the final
          // round-trip, which could only re-report the same fault).
          std::fprintf(stderr, "rdv_bench: result log write failed at %s\n",
                       e.id.c_str());
          ++failures;
          log.reset();
        } else {
          logged.push_back(std::move(record));
        }
      }
      if (args.check && output.table.row_count() == 0) {
        std::fprintf(stderr, "rdv_bench: %s produced an empty table\n",
                     e.id.c_str());
        ++failures;
      }
      const std::size_t files_expected =
          (emit_options.csv_dir.empty() ? 0u : 1u) +
          (emit_options.json_dir.empty() ? 0u : 1u);
      if (args.check && written.size() != files_expected) {
        std::fprintf(stderr,
                     "rdv_bench: %s wrote %zu of %zu requested files\n",
                     e.id.c_str(), written.size(), files_expected);
        ++failures;
      }
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "rdv_bench: %s failed: %s\n", e.id.c_str(),
                   ex.what());
      ++failures;
    }
  }
  if (log != nullptr && args.check &&
      !verify_result_log(args.result_log, logged)) {
    ++failures;
  }
  write_bench_json(emit_options.csv_dir, ctx.scale,
                   args.threads != 0
                       ? args.threads
                       : support::default_pool().thread_count(),
                   timings);
  print_run_stats();
  // Sidecar emission last: a full run's worth of series, written after
  // every primary byte (stdout, CSV/JSON tables, result log) is out.
  if (!args.metrics_out.empty()) {
    const std::string json =
        obs::render_metrics_json(obs::Registry::instance().snapshot());
    if (!write_file(args.metrics_out, json)) {
      ++failures;
    } else {
      std::fprintf(stderr, "rdv_bench: metrics snapshot written to %s\n",
                   args.metrics_out.c_str());
    }
  }
  if (!args.trace_out.empty()) {
    // With profiling also on, the trace gains per-task flow arrows
    // (submit -> steal -> execute -> merge) on the same thread rows.
    const bool ok = args.profile_out.empty()
                        ? obs::write_chrome_trace(args.trace_out)
                        : obs::write_chrome_trace_with_tasks(args.trace_out);
    if (!ok) {
      ++failures;
    } else {
      std::fprintf(stderr, "rdv_bench: chrome trace written to %s\n",
                   args.trace_out.c_str());
    }
  }
  if (!args.profile_out.empty()) {
    if (!obs::write_profile(args.profile_out)) {
      ++failures;
    } else {
      std::fprintf(stderr, "rdv_bench: scheduler profile written to %s\n",
                   args.profile_out.c_str());
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "rdv_bench: %d of %zu experiments failed\n",
                 failures, selected.size());
    return 1;
  }
  return 0;
}

int run_single(std::string_view id) {
  const Registry& registry = builtin_registry();
  const Experiment* e = registry.find(id);
  if (e == nullptr) {
    std::fprintf(stderr, "unknown experiment id '%s'\n",
                 std::string(id).c_str());
    return 2;
  }
  ExpContext ctx;
  ctx.scale = support::repro_census()
                  ? Scale::kCensus
                  : (support::repro_full() ? Scale::kFull : Scale::kQuick);
  try {
    const ExpOutput output = run_experiment(*e, ctx);
    emit(*e, output, emit_options_from_env());
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "%s failed: %s\n", e->id.c_str(), ex.what());
    return 1;
  }
  return 0;
}

}  // namespace rdv::exp
