#include "exp/driver.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "exp/scenarios/scenarios.hpp"
#include "support/env.hpp"
#include "support/thread_pool.hpp"

namespace rdv::exp {
namespace {

constexpr const char* kUsage = R"(usage: rdv_bench [options] [id-or-filter ...]

Runs registered experiments (positional arguments select by exact id
first, then by substring over ids/titles/tags). With no arguments,
lists the registry.

options:
  --list           list matching experiments and exit
  --describe       print axes / output schema of matching experiments and exit
  --all            select every registered experiment
  --smoke          smoke scale (tiny axes; CI-sized)
  --full           full scale (default comes from REPRO_FULL)
  --threads N      run on a dedicated pool of N threads
  --chunk N        chunk size for the experiments' inner sweeps
  --csv-dir DIR    write <dir>/<id>.csv   (default: REPRO_CSV_DIR)
  --json-dir DIR   write <dir>/<id>.json  (default: REPRO_JSON_DIR)
  --json           also print each table as JSON to stdout
  --check          fail (exit 1) if any experiment emits an empty table
  --help           this text
)";

struct Args {
  bool list = false;
  bool describe = false;
  bool all = false;
  bool json_stdout = false;
  bool check = false;
  Scale scale = Scale::kQuick;
  bool scale_forced = false;
  std::size_t threads = 0;
  std::size_t chunk = 0;
  std::string csv_dir;
  std::string json_dir;
  std::vector<std::string> selectors;
};

bool parse_size_arg(int argc, const char* const* argv, int& i,
                    std::size_t& out) {
  if (i + 1 >= argc) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(argv[++i], &end, 10);
  if (end == argv[i] || *end != '\0' || v == 0) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

int parse_args(int argc, const char* const* argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return -1;
    } else if (arg == "--list") {
      args.list = true;
    } else if (arg == "--describe") {
      args.describe = true;
    } else if (arg == "--all") {
      args.all = true;
    } else if (arg == "--smoke") {
      args.scale = Scale::kSmoke;
      args.scale_forced = true;
    } else if (arg == "--full") {
      args.scale = Scale::kFull;
      args.scale_forced = true;
    } else if (arg == "--json") {
      args.json_stdout = true;
    } else if (arg == "--check") {
      args.check = true;
    } else if (arg == "--threads") {
      if (!parse_size_arg(argc, argv, i, args.threads)) {
        std::fprintf(stderr, "rdv_bench: --threads needs a positive count\n");
        return 2;
      }
    } else if (arg == "--chunk") {
      if (!parse_size_arg(argc, argv, i, args.chunk)) {
        std::fprintf(stderr, "rdv_bench: --chunk needs a positive count\n");
        return 2;
      }
    } else if (arg == "--csv-dir" || arg == "--json-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "rdv_bench: %s needs a directory\n",
                     std::string(arg).c_str());
        return 2;
      }
      (arg == "--csv-dir" ? args.csv_dir : args.json_dir) = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rdv_bench: unknown option %s\n%s",
                   std::string(arg).c_str(), kUsage);
      return 2;
    } else {
      args.selectors.emplace_back(arg);
    }
  }
  return 0;
}

/// Resolves selectors against the registry, preserving registry order
/// and deduplicating. Returns false when a selector matched nothing.
bool select(const Registry& registry, const Args& args,
            std::vector<const Experiment*>& selected) {
  if (args.all || args.selectors.empty()) {
    for (const Experiment& e : registry.all()) selected.push_back(&e);
    return true;
  }
  std::vector<bool> picked(registry.size(), false);
  for (const std::string& selector : args.selectors) {
    std::vector<const Experiment*> matched;
    if (const Experiment* exact = registry.find(selector)) {
      matched.push_back(exact);
    } else {
      matched = registry.match(selector);
    }
    if (matched.empty()) {
      std::fprintf(stderr,
                   "rdv_bench: no experiment matches '%s' (try --list)\n",
                   selector.c_str());
      return false;
    }
    for (const Experiment* e : matched) {
      picked[static_cast<std::size_t>(e - registry.all().data())] = true;
    }
  }
  for (std::size_t i = 0; i < registry.size(); ++i) {
    if (picked[i]) selected.push_back(&registry.all()[i]);
  }
  return true;
}

std::string join(const std::vector<std::string>& parts,
                 const char* separator) {
  std::string out;
  for (const std::string& part : parts) {
    if (!out.empty()) out += separator;
    out += part;
  }
  return out;
}

const char* scale_name(Scale scale) {
  switch (scale) {
    case Scale::kSmoke: return "smoke";
    case Scale::kQuick: return "quick";
    case Scale::kFull: return "full";
  }
  return "?";
}

void print_list(const std::vector<const Experiment*>& selected) {
  support::Table table({"id", "tags", "summary"});
  for (const Experiment* e : selected) {
    table.add_row({e->id, join(e->tags, ","), e->summary});
  }
  std::printf("%zu experiments registered\n%s", selected.size(),
              table.to_markdown().c_str());
}

void print_describe(const std::vector<const Experiment*>& selected) {
  for (const Experiment* e : selected) {
    std::printf("%s — %s\n", e->id.c_str(), e->title.c_str());
    std::printf("  tags: %s\n", join(e->tags, ", ").c_str());
    for (const std::string& axis : e->axes) {
      std::printf("  axis: %s\n", axis.c_str());
    }
    std::printf("  columns: %s\n", join(e->headers, " | ").c_str());
    if (e->nested_sweep) {
      std::printf("  execution: serial cases, parallel inner sweeps\n");
    }
    std::printf("\n");
  }
}

}  // namespace

int run_main(int argc, const char* const* argv) {
  Args args;
  const int parse = parse_args(argc, argv, args);
  if (parse != 0) return parse < 0 ? 0 : parse;
  if (!args.scale_forced && support::repro_full()) args.scale = Scale::kFull;

  const Registry& registry = builtin_registry();
  std::vector<const Experiment*> selected;
  if (!select(registry, args, selected)) return 2;

  if (args.describe) {
    print_describe(selected);
    return 0;
  }
  // Bare `rdv_bench` lists instead of running everything by surprise.
  if (args.list || (args.selectors.empty() && !args.all)) {
    print_list(selected);
    return 0;
  }

  ExpContext ctx;
  ctx.scale = args.scale;
  if (args.chunk != 0) ctx.sweep.chunk_size = args.chunk;
  std::unique_ptr<support::ThreadPool> pool;
  if (args.threads != 0) {
    pool = std::make_unique<support::ThreadPool>(args.threads);
    ctx.sweep.pool = pool.get();
  }

  EmitOptions emit_options = emit_options_from_env();
  if (!args.csv_dir.empty()) emit_options.csv_dir = args.csv_dir;
  if (!args.json_dir.empty()) emit_options.json_dir = args.json_dir;
  emit_options.json_stdout = args.json_stdout;

  int failures = 0;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const Experiment& e = *selected[i];
    if (i != 0) std::printf("\n");
    std::printf("== %s [%s] ==\n", e.id.c_str(), scale_name(ctx.scale));
    try {
      const ExpOutput output = run_experiment(e, ctx);
      const std::vector<std::string> written =
          emit(e, output, emit_options);
      if (args.check && output.table.row_count() == 0) {
        std::fprintf(stderr, "rdv_bench: %s produced an empty table\n",
                     e.id.c_str());
        ++failures;
      }
      const std::size_t files_expected =
          (emit_options.csv_dir.empty() ? 0u : 1u) +
          (emit_options.json_dir.empty() ? 0u : 1u);
      if (args.check && written.size() != files_expected) {
        std::fprintf(stderr,
                     "rdv_bench: %s wrote %zu of %zu requested files\n",
                     e.id.c_str(), written.size(), files_expected);
        ++failures;
      }
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "rdv_bench: %s failed: %s\n", e.id.c_str(),
                   ex.what());
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "rdv_bench: %d of %zu experiments failed\n",
                 failures, selected.size());
    return 1;
  }
  return 0;
}

int run_single(std::string_view id) {
  const Registry& registry = builtin_registry();
  const Experiment* e = registry.find(id);
  if (e == nullptr) {
    std::fprintf(stderr, "unknown experiment id '%s'\n",
                 std::string(id).c_str());
    return 2;
  }
  ExpContext ctx;
  ctx.scale = support::repro_full() ? Scale::kFull : Scale::kQuick;
  try {
    const ExpOutput output = run_experiment(*e, ctx);
    emit(*e, output, emit_options_from_env());
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "%s failed: %s\n", e->id.c_str(), ex.what());
    return 1;
  }
  return 0;
}

}  // namespace rdv::exp
