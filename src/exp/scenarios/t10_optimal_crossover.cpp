// T10 — the feasibility crossover, measured exactly.
// Corollary 3.1 predicts a sharp threshold at delta = Shrink(u, v) for
// symmetric pairs: below it NO algorithm meets, at it rendezvous is
// possible. The exhaustive searcher certifies both sides and emits the
// optimal witness string at the threshold, which is replayed through
// the simulation engine as an end-to-end consistency check. Each
// (graph, pair) is one case; the Shrink pair-BFS resolves through the
// artifact cache.
#include <memory>

#include "analysis/optimal_search.hpp"
#include "cache/artifact_cache.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"

namespace rdv::exp::scenarios {
namespace {

namespace families = rdv::graph::families;
using graph::Graph;
using graph::Node;

struct Case {
  Graph g;
  Node u, v;
};

std::string render_witness(
    const std::vector<analysis::ObliviousAction>& witness) {
  std::string out;
  for (const auto a : witness) {
    if (!out.empty()) out += ' ';
    out += (a == 0) ? "w" : "p" + std::to_string(a - 1);
  }
  return out.empty() ? "(empty)" : out;
}

std::vector<std::string> case_row(const Case& c, const ExpContext& ctx) {
  const std::uint32_t s =
      cache::cached_all_pairs_shrink(c.g, ctx.cache())->at(c.u, c.v);
  // Below the threshold: certified impossible.
  std::string below = "(S=0)";
  if (s >= 1) {
    analysis::OptimalSearchConfig config;
    config.horizon = 1u << 16;
    const auto r =
        analysis::optimal_oblivious(c.g, c.u, c.v, s - 1, config);
    below = r.outcome == analysis::OptimalOutcome::kProvenInfeasible
                ? "proven infeasible"
                : "UNEXPECTED";
  }
  // At the threshold: optimal time + witness + replay.
  analysis::OptimalSearchConfig config;
  config.horizon = 1u << 12;
  config.want_witness = true;
  const auto r = analysis::optimal_oblivious(c.g, c.u, c.v, s, config);
  std::string at = "UNEXPECTED";
  std::string witness = "-";
  std::string replay = "-";
  if (r.outcome == analysis::OptimalOutcome::kMet) {
    at = "met@" + std::to_string(r.rounds);
    witness = render_witness(r.witness);
    sim::RunConfig run_config;
    run_config.max_rounds = s + r.rounds + 8;
    const auto run = sim::run_anonymous(
        c.g, analysis::oblivious_program(r.witness), c.u, c.v, s,
        run_config);
    replay = (run.met && run.meet_from_later_start == r.rounds) ? "yes"
                                                                : "NO";
  }
  return {c.g.name(),
          std::to_string(c.u) + "," + std::to_string(c.v),
          std::to_string(s),
          below,
          at,
          witness,
          replay};
}

}  // namespace

void register_t10(Registry& registry) {
  Experiment e;
  e.id = "t10_optimal_crossover";
  e.title = "T10: the delta = Shrink crossover, certified on both sides";
  e.summary =
      "exhaustive certificates on both sides of the delta = Shrink "
      "threshold, with optimal witnesses replayed through the engine";
  e.axes = {"(graph, symmetric pair), certified at delta = Shrink-1 and "
            "delta = Shrink",
            "smoke: 2 pairs; quick: 5; full: +hypercube(3) +ring(8)"};
  e.headers = {"graph",  "pair",    "Shrink", "delta=S-1",
               "delta=S optimal", "witness", "replay ok"};
  e.tags = {"table", "feasibility", "optimal"};
  e.cases = [](const ExpContext& ctx) {
    auto cases = std::make_shared<std::vector<Case>>();
    cases->push_back({families::two_node_graph(), 0, 1});
    cases->push_back({families::oriented_ring(5), 0, 2});
    if (!ctx.smoke()) {
      cases->push_back({families::oriented_ring(6), 0, 3});
      cases->push_back({families::oriented_torus(3, 3), 0, 4});
      Graph g = families::symmetric_double_tree(2, 2);
      const Node m = families::double_tree_mirror(g, 5);
      cases->push_back({std::move(g), 5, m});
    }
    if (ctx.full()) {
      cases->push_back({families::hypercube(3), 0, 7});
      cases->push_back({families::oriented_ring(8), 0, 4});
    }
    std::vector<CaseFn> fns;
    fns.reserve(cases->size());
    for (std::size_t i = 0; i < cases->size(); ++i) {
      fns.push_back([cases, i](const ExpContext& run_ctx) {
        return case_row((*cases)[i], run_ctx);
      });
    }
    return fns;
  };
  registry.add(std::move(e));
}

}  // namespace rdv::exp::scenarios
