// C2 — implicit-family STIC census (ROADMAP "streaming million-STIC
// census engine", thousands-of-nodes leg). On the oriented ring, the
// oriented torus, and the hypercube a common port sequence applies the
// SAME translation to both endpoints (global orientation resp. XOR),
// so the pair's distance is invariant and Shrink(u, v) == dist(u, v)
// exactly — pinned against views::shrink_all_pairs on the explicit
// twins in tests. All three families are vertex-transitive with
// port-preserving translations, so every ordered pair is symmetric and
// the whole n^2-pair census folds to ONE closed-form distance
// histogram per family (graph/families/implicit.hpp) — no adjacency is
// ever materialized, which is how the census reaches n in the
// thousands. Each case streams its histogram into the result log.
#include <algorithm>
#include <memory>

#include "exp/scenarios/scenarios.hpp"
#include "graph/families/implicit.hpp"
#include "store/result_log.hpp"

namespace rdv::exp::scenarios {
namespace {

namespace families = rdv::graph::families;

struct FamilySummary {
  std::string name;
  std::uint64_t n = 0;
  std::uint64_t edges = 0;
  std::vector<std::uint64_t> histogram;  // per-source counts by distance
};

/// Which implicit family a case instantiates (the topology itself is
/// built inside the kernel — case generation stays trivial).
struct Spec {
  enum class Kind { kRing, kTorus, kHypercube } kind;
  std::uint32_t a = 0;  // ring n / torus w / hypercube dim
  std::uint32_t b = 0;  // torus h
};

FamilySummary summarize(const Spec& spec) {
  FamilySummary s;
  switch (spec.kind) {
    case Spec::Kind::kRing: {
      const families::OrientedRingTopology t(spec.a);
      s = {t.name(), t.size(), t.edge_count(), t.distance_histogram()};
      break;
    }
    case Spec::Kind::kTorus: {
      const families::OrientedTorusTopology t(spec.a, spec.b);
      s = {t.name(), t.size(), t.edge_count(), t.distance_histogram()};
      break;
    }
    case Spec::Kind::kHypercube: {
      const families::HypercubeTopology t(spec.a);
      s = {t.name(), t.size(), t.edge_count(), t.distance_histogram()};
      break;
    }
  }
  return s;
}

}  // namespace

void register_c2(Registry& registry) {
  Experiment e;
  e.id = "c2_implicit_census";
  e.title = "C2 (census): implicit-family STIC census (Shrink == dist)";
  e.summary =
      "classify every ordered STIC of ring/torus/hypercube at implicit "
      "scale via closed-form distance histograms (Shrink == dist, all "
      "pairs symmetric)";
  e.axes = {
      "family: implicit ring(n) / torus(w x h) / hypercube(dim) x "
      "delays 0..max_delay",
      "smoke: n<=16; quick: +n<=64; full: +n<=256; census: +n<=4096",
      "per-family Shrink histograms stream into the result log "
      "(--result-log) as the cases complete"};
  e.headers = {"family",   "n",        "edges",      "pairs",
               "STICs",    "feasible", "infeasible", "max Shrink"};
  e.tags = {"table", "census", "feasibility", "implicit", "streaming"};
  e.cases = [](const ExpContext& ctx) {
    auto specs = std::make_shared<std::vector<Spec>>();
    specs->push_back({Spec::Kind::kRing, 16, 0});
    specs->push_back({Spec::Kind::kHypercube, 4, 0});
    if (!ctx.smoke()) {
      specs->push_back({Spec::Kind::kRing, 64, 0});
      specs->push_back({Spec::Kind::kTorus, 8, 8});
      specs->push_back({Spec::Kind::kHypercube, 6, 0});
    }
    if (ctx.full()) {
      specs->push_back({Spec::Kind::kRing, 256, 0});
      specs->push_back({Spec::Kind::kTorus, 16, 16});
      specs->push_back({Spec::Kind::kHypercube, 8, 0});
    }
    if (ctx.census()) {
      specs->push_back({Spec::Kind::kRing, 1024, 0});
      specs->push_back({Spec::Kind::kRing, 4096, 0});
      specs->push_back({Spec::Kind::kTorus, 48, 48});
      specs->push_back({Spec::Kind::kHypercube, 12, 0});
    }
    const std::uint64_t max_delay =
        ctx.smoke() ? 1 : (ctx.census() ? 3 : 2);
    std::vector<CaseFn> fns;
    fns.reserve(specs->size());
    for (std::size_t i = 0; i < specs->size(); ++i) {
      fns.push_back([specs, i, max_delay](const ExpContext& run_ctx) {
        const FamilySummary s = summarize((*specs)[i]);
        const std::uint64_t pairs = s.n * (s.n - 1);
        // Vertex transitivity: the histogram holds for every source, so
        // ordered-pair counts are n * counts[d]; every pair is
        // symmetric, so Corollary 3.1 charges each pair at Shrink ==
        // dist exactly.
        std::uint64_t feasible = 0;
        std::uint32_t max_shrink = 0;
        for (std::uint32_t d = 1; d < s.histogram.size(); ++d) {
          if (s.histogram[d] == 0) continue;
          max_shrink = std::max(max_shrink, d);
          if (d <= max_delay) {
            feasible += s.n * s.histogram[d] * (max_delay + 1 - d);
          }
        }
        if (run_ctx.stream != nullptr) {
          store::ResultRecord detail;
          detail.experiment_id = "c2_implicit_census/" + s.name;
          detail.scale = scale_name(run_ctx.scale);
          detail.items_total = pairs;
          detail.headers = {"shrink", "ordered pairs"};
          for (std::uint32_t d = 1; d < s.histogram.size(); ++d) {
            if (s.histogram[d] == 0) continue;
            detail.rows.push_back(
                {std::to_string(d),
                 std::to_string(s.n * s.histogram[d])});
          }
          detail.items_produced = detail.rows.size();
          run_ctx.stream->submit(i, std::move(detail));
        }
        const std::uint64_t stics = pairs * (max_delay + 1);
        return std::vector<std::string>{
            s.name,
            std::to_string(s.n),
            std::to_string(s.edges),
            std::to_string(pairs),
            std::to_string(stics),
            std::to_string(feasible),
            std::to_string(stics - feasible),
            std::to_string(max_shrink)};
      });
    }
    return fns;
  };
  e.notes = [](const ExpContext& ctx) {
    return std::vector<std::string>{
        std::string("Census of every ordered STIC with delays 0..") +
        std::to_string(ctx.smoke() ? 1 : (ctx.census() ? 3 : 2)) +
        "; Shrink == dist on these families (a common port sequence "
        "translates both endpoints identically), every pair symmetric."};
  };
  registry.add(std::move(e));
}

}  // namespace rdv::exp::scenarios
