// T3 — Lemmas 3.2 and 3.3: SymmRV(n, d, delta) meets for every
// symmetric STIC with delta in [d, delta_param], within the bound
// T(n, d, delta) = [(d+delta)(n-1)^d](M+2) + 2(M+1).
// All cases' (u, v) x {d, d+1} delay grids flatten into one case list
// on the registry's sweep, so every row can run on a different pool
// worker; Shrink and the corpus-verified UXS resolve through the
// artifact cache at case-generation time (once per graph/size).
#include <memory>

#include "cache/artifact_cache.hpp"
#include "core/bounds.hpp"
#include "core/symm_rv.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"

namespace rdv::exp::scenarios {
namespace {

namespace families = rdv::graph::families;
using graph::Graph;
using graph::Node;

struct Case {
  Graph g;
  Node u, v;
};

struct Prepared {
  std::uint32_t d;
  std::shared_ptr<const uxs::Uxs> y;
};

}  // namespace

void register_t3(Registry& registry) {
  Experiment e;
  e.id = "t3_symm_rv_time";
  e.title = "T3 (Lemmas 3.2/3.3): SymmRV meets within T(n,d,delta)";
  e.summary =
      "SymmRV meeting times vs the T(n,d,delta) bound on symmetric "
      "pairs, delays d and d+1";
  e.axes = {"(graph, u, v) symmetric pair x delay in {Shrink, Shrink+1}",
            "smoke: ring(6); quick: 4 pairs; full: +torus(3,3) "
            "+hypercube(3) antipodal"};
  e.headers = {"graph", "pair",           "d=Shrink", "delay",
               "M",     "met",            "measured rounds",
               "bound T", "measured/bound"};
  e.tags = {"table", "symm-rv", "upper-bound"};
  e.cases = [](const ExpContext& ctx) {
    auto cases = std::make_shared<std::vector<Case>>();
    if (!ctx.smoke()) {
      Graph g = families::symmetric_double_tree(2, 2);
      const Node m = families::double_tree_mirror(g, g.size() / 2 - 1);
      cases->push_back({std::move(g), 6, m});
    }
    cases->push_back({families::oriented_ring(6), 0, 2});
    if (!ctx.smoke()) {
      cases->push_back({families::oriented_ring(6), 0, 3});
      cases->push_back({families::hypercube(3), 0, 5});
    }
    if (ctx.full()) {
      cases->push_back({families::oriented_torus(3, 3), 0, 4});
      cases->push_back({families::hypercube(3), 0, 7});
    }
    // Shrink and the UXS are resolved serially through the cache (each
    // artifact computed once no matter how many rows share it); the
    // simulations — the actual cost — run through the pool.
    auto prepared = std::make_shared<std::vector<Prepared>>();
    prepared->reserve(cases->size());
    for (const Case& c : *cases) {
      prepared->push_back(
          {cache::cached_all_pairs_shrink(c.g, ctx.cache())->at(c.u, c.v),
           cache::cached_uxs(c.g.size(), ctx.cache())});
    }
    // Case i = pair i/2 at delay d + i%2.
    std::vector<CaseFn> fns;
    fns.reserve(2 * cases->size());
    for (std::size_t i = 0; i < 2 * cases->size(); ++i) {
      fns.push_back([cases, prepared, i](const ExpContext&) {
        const Case& c = (*cases)[i / 2];
        const Prepared& p = (*prepared)[i / 2];
        const std::uint64_t delay =
            static_cast<std::uint64_t>(p.d) + i % 2;
        const std::uint64_t bound = core::symm_rv_time_bound(
            c.g.size(), p.d, delay, p.y->length());
        sim::RunConfig config;
        config.max_rounds = support::sat_mul(4, bound);
        const sim::RunResult r = sim::run_anonymous(
            c.g, core::symm_rv_program(c.g.size(), p.d, delay, *p.y),
            c.u, c.v, delay, config);
        return std::vector<std::string>{
            c.g.name(),
            std::to_string(c.u) + "," + std::to_string(c.v),
            std::to_string(p.d),
            std::to_string(delay),
            std::to_string(p.y->length()),
            r.met ? "yes" : "NO",
            support::format_rounds(r.meet_from_later_start),
            support::format_rounds(bound),
            r.met ? support::format_double(
                        static_cast<double>(r.meet_from_later_start) /
                        static_cast<double>(bound))
                  : "-"};
      });
    }
    return fns;
  };
  registry.add(std::move(e));
}

}  // namespace rdv::exp::scenarios
