// T7 — Lemma 3.1: symmetric STICs with delta < Shrink(u, v) are
// infeasible. The optimal-oblivious search exhausts the entire joint
// configuration space (for symmetric starts this covers ALL
// deterministic algorithms) and certifies that no algorithm meets;
// UniversalRV runs confirm by never meeting within large caps.
// Each (graph, delta) cell is one case; Shrink resolves once per pair
// through the cache at case-generation time.
#include <memory>

#include "analysis/optimal_search.hpp"
#include "cache/artifact_cache.hpp"
#include "core/universal_rv.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"

namespace rdv::exp::scenarios {
namespace {

namespace families = rdv::graph::families;
using graph::Graph;
using graph::Node;

struct Case {
  Graph g;
  Node u, v;
};

}  // namespace

void register_t7(Registry& registry) {
  Experiment e;
  e.id = "t7_infeasible_stics";
  e.title =
      "T7 (Lemma 3.1): delta < Shrink is infeasible — exhaustive "
      "certificates";
  e.summary =
      "exhaustive optimal-search certificates that delta < Shrink "
      "admits no deterministic rendezvous";
  e.axes = {"(graph, symmetric pair) x delta in 0..Shrink-1",
            "smoke: 2 graphs; quick: 4; full: +torus(3,3) +hypercube(3)"};
  e.headers = {"graph", "pair",  "Shrink",
               "delta", "exhaustive search", "states",
               "UniversalRV met?"};
  e.tags = {"table", "feasibility", "lower-bound"};
  e.cases = [](const ExpContext& ctx) {
    auto cases = std::make_shared<std::vector<Case>>();
    cases->push_back({families::two_node_graph(), 0, 1});
    if (!ctx.smoke()) {
      cases->push_back({families::oriented_ring(6), 0, 3});
    }
    cases->push_back({families::oriented_ring(5), 0, 2});
    if (!ctx.smoke()) {
      Graph g = families::symmetric_double_tree(2, 1);
      const Node m = families::double_tree_mirror(g, 1);
      cases->push_back({std::move(g), 1, m});
    }
    if (ctx.full()) {
      cases->push_back({families::oriented_torus(3, 3), 0, 4});
      cases->push_back({families::hypercube(3), 0, 7});
    }
    std::vector<CaseFn> fns;
    for (std::size_t i = 0; i < cases->size(); ++i) {
      const Case& c = (*cases)[i];
      const std::uint32_t s =
          cache::cached_all_pairs_shrink(c.g, ctx.cache())->at(c.u, c.v);
      for (std::uint64_t delta = 0; delta < s; ++delta) {
        fns.push_back([cases, i, s, delta](const ExpContext&) {
          const Case& c = (*cases)[i];
          analysis::OptimalSearchConfig search_config;
          search_config.horizon = 1u << 16;
          const auto opt = analysis::optimal_oblivious(c.g, c.u, c.v,
                                                       delta, search_config);
          const char* verdict =
              opt.outcome == analysis::OptimalOutcome::kProvenInfeasible
                  ? "proven infeasible"
                  : (opt.outcome == analysis::OptimalOutcome::kMet
                         ? "MET (bug!)"
                         : "horizon");
          core::UniversalOptions options;
          options.max_phases = 40;
          sim::RunConfig config;
          config.max_rounds = 1u << 21;
          const auto run = sim::run_anonymous(
              c.g, core::universal_rv_program(options), c.u, c.v, delta,
              config);
          return std::vector<std::string>{
              c.g.name(),
              std::to_string(c.u) + "," + std::to_string(c.v),
              std::to_string(s),
              std::to_string(delta),
              verdict,
              std::to_string(opt.states_explored),
              run.met ? "MET (bug!)" : "no"};
        });
      }
    }
    return fns;
  };
  registry.add(std::move(e));
}

}  // namespace rdv::exp::scenarios
