// T8 — ablation: UXS length vs corpus coverage and SymmRV cost.
// The paper only needs a polynomial-length UXS to exist; in practice
// the sequence length M multiplies SymmRV's cost (Lemma 3.3), so the
// corpus-verified construction's short sequences matter. This table
// shows coverage rate and SymmRV cost as the candidate length grows;
// each candidate length is one case on the registry sweep.
#include <memory>

#include "cache/artifact_cache.hpp"
#include "core/bounds.hpp"
#include "core/symm_rv.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "uxs/corpus.hpp"
#include "uxs/verifier.hpp"

namespace rdv::exp::scenarios {
namespace {

namespace families = rdv::graph::families;
using graph::Graph;

constexpr std::uint32_t kN = 8;

}  // namespace

void register_t8(Registry& registry) {
  Experiment e;
  e.id = "t8_uxs_ablation";
  e.title = "T8 (ablation): UXS length vs coverage and SymmRV cost (n=" +
            std::to_string(kN) + ")";
  e.summary =
      "pseudo-random UXS candidates: corpus coverage and SymmRV cost as "
      "the length M grows";
  e.axes = {"M (candidate UXS length), doubling from 4",
            "smoke: M<=16; quick: M<=128; full: M<=512"};
  e.headers = {"M (terms)",    "corpus graphs covered",
               "covers hypercube(3)?", "SymmRV met",
               "SymmRV rounds", "bound T(8,1,1)"};
  e.tags = {"table", "ablation", "uxs"};
  e.cases = [](const ExpContext& ctx) {
    const std::size_t max_len =
        ctx.smoke() ? 16u : (ctx.full() ? 512u : 128u);
    // The corpus and arena are shared read-only across the cases.
    auto corpus =
        std::make_shared<const std::vector<Graph>>(uxs::standard_corpus(kN));
    auto arena = std::make_shared<const Graph>(families::hypercube(3));
    std::vector<CaseFn> fns;
    for (std::size_t len = 4; len <= max_len; len *= 2) {
      fns.push_back([corpus, arena, len](const ExpContext&) {
        const uxs::Uxs y = uxs::Uxs::pseudo_random(len);
        std::size_t covered = 0;
        for (const Graph& g : *corpus) {
          if (uxs::is_uxs_for(g, y)) ++covered;
        }
        const bool arena_covered = uxs::is_uxs_for(*arena, y);

        std::string met = "-";
        std::string rounds = "-";
        const std::uint64_t bound =
            core::symm_rv_time_bound(kN, 1, 1, y.length());
        if (arena_covered) {
          sim::RunConfig config;
          config.max_rounds = support::sat_mul(4, bound);
          const auto r = sim::run_anonymous(
              *arena, core::symm_rv_program(kN, 1, 1, y), 0, 1, 1,
              config);
          met = r.met ? "yes" : "NO";
          rounds = support::format_rounds(r.meet_from_later_start);
        }
        return std::vector<std::string>{
            std::to_string(len),
            std::to_string(covered) + "/" + std::to_string(corpus->size()),
            arena_covered ? "yes" : "no", met, rounds,
            support::format_rounds(bound)};
      });
    }
    return fns;
  };
  e.notes = [](const ExpContext& ctx) {
    // The corpus-verified choice is the expensive artifact; in smoke
    // mode report it for the smallest interesting size instead so the
    // note stays cheap with the cache disabled.
    const std::uint32_t n = ctx.smoke() ? 6u : kN;
    const auto verified = cache::cached_uxs(n, ctx.cache());
    return std::vector<std::string>{"corpus-verified choice (n=" +
                                    std::to_string(n) +
                                    "): " + verified->provenance()};
  };
  registry.add(std::move(e));
}

}  // namespace rdv::exp::scenarios
