// T4 — Proposition 3.1 (substituted AsymmRV, DESIGN.md §2.2):
// rendezvous from nonsymmetric positions at any delay, in time
// polynomial in n and delta. Shows measured times against the
// asymm_rv_time_bound budget across sizes and delays; every
// (size, delay) cell is one case on the registry sweep, and the
// corpus-verified UXS resolves through the artifact cache (computed
// once per size no matter how many delay cases race for it).
#include <memory>

#include "cache/artifact_cache.hpp"
#include "core/asymm_rv.hpp"
#include "core/bounds.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"

namespace rdv::exp::scenarios {
namespace {

namespace families = rdv::graph::families;
using graph::Graph;

}  // namespace

void register_t4(Registry& registry) {
  Experiment e;
  e.id = "t4_asymm_rv_time";
  e.title = "T4 (Prop. 3.1 substitute): AsymmRV on nonsymmetric STICs";
  e.summary =
      "AsymmRV meeting times vs the polynomial budget on paths, across "
      "sizes and delays";
  e.axes = {"n (path size) x delay in {0, 2, 8}",
            "smoke: n=4; quick: n in {4,5,6,8}; full: +n=12"};
  e.headers = {"graph",           "n",   "delay",
               "M",               "met", "measured rounds",
               "budget bound",    "measured/bound"};
  e.tags = {"table", "asymm-rv", "upper-bound"};
  e.cases = [](const ExpContext& ctx) {
    std::vector<std::uint32_t> sizes = {4};
    if (!ctx.smoke()) {
      sizes.push_back(5);
      sizes.push_back(6);
      sizes.push_back(8);
    }
    if (ctx.full()) sizes.push_back(12);
    struct Cell {
      Graph g;
      std::uint32_t n;
      std::uint64_t delay;
    };
    auto cells = std::make_shared<std::vector<Cell>>();
    for (const std::uint32_t n : sizes) {
      for (const std::uint64_t delay : {0ull, 2ull, 8ull}) {
        cells->push_back({families::path_graph(n), n, delay});
      }
    }
    std::vector<CaseFn> fns;
    fns.reserve(cells->size());
    for (std::size_t i = 0; i < cells->size(); ++i) {
      fns.push_back([cells, i](const ExpContext& run_ctx) {
        const Cell& c = (*cells)[i];
        const std::shared_ptr<const uxs::Uxs> y =
            cache::cached_uxs(c.n, run_ctx.cache());
        const std::uint64_t bound =
            core::asymm_rv_time_bound(c.n, c.delay, y->length());
        sim::RunConfig config;
        config.max_rounds =
            support::sat_add(support::sat_mul(2, bound), c.delay);
        const sim::RunResult r = sim::run_anonymous(
            c.g, core::asymm_rv_program(c.n, *y, bound), 0, c.n / 2,
            c.delay, config);
        return std::vector<std::string>{
            c.g.name(),
            std::to_string(c.n),
            std::to_string(c.delay),
            std::to_string(y->length()),
            r.met ? "yes" : "NO",
            support::format_rounds(r.meet_from_later_start),
            support::format_rounds(bound),
            r.met ? support::format_double(
                        static_cast<double>(r.meet_from_later_start) /
                        static_cast<double>(bound))
                  : "-"};
      });
    }
    return fns;
  };
  e.notes = [](const ExpContext&) {
    return std::vector<std::string>{
        "Time grows polynomially with n and delta (contrast T5/T6)."};
  };
  registry.add(std::move(e));
}

}  // namespace rdv::exp::scenarios
