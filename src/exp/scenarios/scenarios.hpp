#pragma once

#include "exp/experiment.hpp"

/// Built-in experiment scenarios: every table/figure of the paper's
/// evidence battery as one declarative registration (one .cpp each).
/// Registration is explicit — no static-initializer tricks that a
/// static library would drop — and ordered t1..t11, fig1.
namespace rdv::exp::scenarios {

void register_t1(Registry& registry);
void register_t2(Registry& registry);
void register_t3(Registry& registry);
void register_t4(Registry& registry);
void register_t5(Registry& registry);
void register_t6(Registry& registry);
void register_t7(Registry& registry);
void register_t8(Registry& registry);
void register_t9(Registry& registry);
void register_t10(Registry& registry);
void register_t11(Registry& registry);
void register_fig1(Registry& registry);
void register_c1(Registry& registry);
void register_c2(Registry& registry);

/// All of the above, in table order.
void register_builtin(Registry& registry);

}  // namespace rdv::exp::scenarios

namespace rdv::exp {

/// Process-wide registry preloaded with the built-in scenarios.
[[nodiscard]] Registry& builtin_registry();

}  // namespace rdv::exp
