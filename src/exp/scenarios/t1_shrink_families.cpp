// T1 — Section 3 examples after Definition 3.1:
//   * oriented torus: Shrink(u,v) = dist(u,v) for every pair;
//   * symmetric double trees: Shrink = 1 for every symmetric pair,
//     at arbitrary distance.
//
// Each graph is one case whose kernel sweeps the graph's symmetric
// pairs on sweep::run_stic_sweep: the outer case loop fans out on the
// pool AND the per-pair Shrink product BFS runs chunked on the same
// pool (work-assisting waits make the nesting safe); the view
// partition is resolved once per graph through the cache.
#include <algorithm>
#include <memory>

#include "cache/artifact_cache.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "graph/families/families.hpp"
#include "views/refinement.hpp"

namespace rdv::exp::scenarios {
namespace {

namespace families = rdv::graph::families;
using analysis::Stic;
using graph::Graph;

std::vector<std::string> graph_row(const Graph& g, const ExpContext& ctx) {
  const std::shared_ptr<const views::ViewClasses> classes =
      cache::cached_view_classes(g, ctx.cache());
  std::vector<Stic> pairs;
  for (const auto& [u, v] : views::symmetric_pairs(g, *classes)) {
    pairs.push_back(Stic{u, v, 0});
  }
  // Kernel computes Shrink (record.cls.shrink) on the pool; the cheap
  // BFS distance rides along in the merge loop below.
  const sweep::SticKernel kernel = [&g, &classes](const Stic& stic) {
    sweep::SticRecord record;
    record.stic = stic;
    record.cls = analysis::classify_stic(g, *classes, stic);
    return record;
  };
  const sweep::SticSweepResult result =
      sweep::run_stic_sweep(pairs, kernel, ctx.sweep);

  std::uint32_t max_dist = 0;
  std::uint32_t max_shrink = 0;
  bool shrink_eq_dist = true;
  bool shrink_eq_one = true;
  for (const sweep::SticRecord& record : result.records) {
    const std::uint32_t dist =
        graph::distance(g, record.stic.u, record.stic.v);
    const std::uint32_t s = record.cls.shrink;
    max_dist = std::max(max_dist, dist);
    max_shrink = std::max(max_shrink, s);
    if (s != dist) shrink_eq_dist = false;
    if (s != 1) shrink_eq_one = false;
  }
  return {g.name(),
          std::to_string(pairs.size()),
          std::to_string(max_dist),
          std::to_string(max_shrink),
          shrink_eq_dist ? "yes" : "no",
          shrink_eq_one ? "yes" : "no"};
}

}  // namespace

void register_t1(Registry& registry) {
  Experiment e;
  e.id = "t1_shrink_families";
  e.title = "T1 (Section 3 examples): Shrink across families";
  e.summary =
      "Shrink(u,v) over all symmetric pairs of tori, rings, and "
      "symmetric double trees";
  e.axes = {
      "graph: oriented tori, oriented rings, symmetric double trees",
      "per graph: every symmetric (u, v) pair at delay 0",
      "smoke: 2 graphs; quick: 6; full: +torus(5,4) +double_tree(2,4)"};
  e.headers = {"graph",      "sym pairs",
               "max distance", "max Shrink",
               "Shrink==dist everywhere?", "Shrink==1 everywhere?"};
  e.tags = {"table", "shrink", "feasibility"};
  e.cases = [](const ExpContext& ctx) {
    auto graphs = std::make_shared<std::vector<Graph>>();
    graphs->push_back(families::oriented_torus(3, 3));
    if (!ctx.smoke()) {
      graphs->push_back(families::oriented_torus(4, 3));
      graphs->push_back(families::oriented_ring(8));
    }
    graphs->push_back(families::symmetric_double_tree(2, 1));
    if (!ctx.smoke()) {
      graphs->push_back(families::symmetric_double_tree(2, 2));
      graphs->push_back(families::symmetric_double_tree(3, 2));
    }
    if (ctx.full()) {
      graphs->push_back(families::oriented_torus(5, 4));
      graphs->push_back(families::symmetric_double_tree(2, 4));
    }
    std::vector<CaseFn> cases;
    cases.reserve(graphs->size());
    for (std::size_t i = 0; i < graphs->size(); ++i) {
      cases.push_back([graphs, i](const ExpContext& run_ctx) {
        return graph_row((*graphs)[i], run_ctx);
      });
    }
    return cases;
  };
  e.notes = [](const ExpContext&) {
    return std::vector<std::string>{
        "Paper: tori cannot shrink (Shrink = dist); symmetric double "
        "trees always shrink to 1."};
  };
  registry.add(std::move(e));
}

}  // namespace rdv::exp::scenarios
