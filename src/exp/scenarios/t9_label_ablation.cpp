// T9 — ablation: signature labels vs oracle labels in AsymmRV.
// The substitute AsymmRV derives labels from UXS observation traces
// (DESIGN.md §2.2); this table checks, per graph, that signature
// equality coincides exactly with the view-class oracle, and compares
// meeting times under signature labels vs exact-oracle labels. Each
// graph is one case; the UXS and view partition resolve through the
// artifact cache.
#include <memory>

#include "cache/artifact_cache.hpp"
#include "core/asymm_rv.hpp"
#include "core/bounds.hpp"
#include "core/signature.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "views/refinement.hpp"

namespace rdv::exp::scenarios {
namespace {

namespace families = rdv::graph::families;
using graph::Graph;
using graph::Node;

std::vector<std::string> graph_row(const Graph& g, const ExpContext& ctx) {
  const auto y_handle = cache::cached_uxs(g.size(), ctx.cache());
  const uxs::Uxs& y = *y_handle;
  const auto classes = cache::cached_view_classes(g, ctx.cache());

  // Agreement: signature equality == symmetry, over all pairs.
  std::size_t pairs = 0;
  std::size_t agreements = 0;
  for (Node u = 0; u < g.size(); ++u) {
    for (Node v = u + 1; v < g.size(); ++v) {
      ++pairs;
      const bool sig_equal =
          core::signature_offline(g, u, g.size(), y) ==
          core::signature_offline(g, v, g.size(), y);
      if (sig_equal == classes->symmetric(u, v)) ++agreements;
    }
  }

  // Meeting times on one nonsymmetric pair under both label modes.
  Node u = 0, v = 0;
  for (Node a = 0; a < g.size() && u == v; ++a) {
    for (Node b = a + 1; b < g.size(); ++b) {
      if (!classes->symmetric(a, b)) {
        u = a;
        v = b;
        break;
      }
    }
  }
  const std::uint64_t delay = 1;
  const std::uint64_t bound =
      core::asymm_rv_time_bound(g.size(), delay, y.length());
  sim::RunConfig config;
  config.max_rounds =
      support::sat_add(support::sat_mul(2, bound), delay);
  const auto sig_run = sim::run_anonymous(
      g, core::asymm_rv_program(g.size(), y, bound), u, v, delay, config);
  // Oracle labels: the class id in unary-ish binary, distinct per
  // class.
  auto label_for = [&](Node w) {
    std::vector<bool> bits;
    const std::uint32_t c = classes->class_of[w];
    for (int b = 7; b >= 0; --b) bits.push_back(((c >> b) & 1u) != 0);
    return bits;
  };
  const auto oracle_run = sim::run_pair(
      g, core::asymm_rv_program(g.size(), y, bound, label_for(u)),
      core::asymm_rv_program(g.size(), y, bound, label_for(v)), u, v,
      delay, config);

  return {g.name(), std::to_string(pairs),
          std::to_string(agreements) + "/" + std::to_string(pairs),
          sig_run.met
              ? support::format_rounds(sig_run.meet_from_later_start)
              : "no-meet",
          oracle_run.met
              ? support::format_rounds(oracle_run.meet_from_later_start)
              : "no-meet"};
}

}  // namespace

void register_t9(Registry& registry) {
  Experiment e;
  e.id = "t9_label_ablation";
  e.title = "T9 (ablation): signature labels vs view-class oracle labels";
  e.summary =
      "per-graph check that UXS signature equality matches the "
      "view-class oracle, plus meeting times under both label modes";
  e.axes = {"graph: paths, scrambled rings, complete, random connected",
            "smoke: 2 graphs; quick: 4; full: +random_connected(10,6,8) "
            "+random_connected(12,8,9); census: +random_connected(14,10,10)"};
  e.headers = {"graph", "pairs", "label==oracle agree",
               "signature-label rounds", "oracle-label rounds"};
  e.tags = {"table", "ablation", "asymm-rv"};
  e.cases = [](const ExpContext& ctx) {
    auto graphs = std::make_shared<std::vector<Graph>>();
    graphs->push_back(families::path_graph(5));
    if (!ctx.smoke()) {
      graphs->push_back(families::scrambled_ring(6, 19));
    }
    graphs->push_back(families::complete(4));
    if (!ctx.smoke()) {
      graphs->push_back(families::random_connected(7, 3, 6));
    }
    if (ctx.full()) {
      graphs->push_back(families::random_connected(10, 6, 8));
      graphs->push_back(families::random_connected(12, 8, 9));
    }
    if (ctx.census()) {
      graphs->push_back(families::random_connected(14, 10, 10));
    }
    std::vector<CaseFn> fns;
    fns.reserve(graphs->size());
    for (std::size_t i = 0; i < graphs->size(); ++i) {
      fns.push_back([graphs, i](const ExpContext& run_ctx) {
        return graph_row((*graphs)[i], run_ctx);
      });
    }
    return fns;
  };
  registry.add(std::move(e));
}

}  // namespace rdv::exp::scenarios
