// T6 — Theorem 4.1: on Q-hat-h with h = 2D, D = 2k, any algorithm
// serving every STIC [(r, v), D] with v in Z needs time >= 2^(k-1).
// Regenerates the exponential curve: certified floor, Steiner-walk
// floor for root-side strategies, the dedicated-Z algorithm's predicted
// worst case, and the simulated worst case on the (lazily materialized)
// theorem-regime graph. Each k is one case on the registry sweep with
// its own implicit topology, so the ks race on the pool.
#include <algorithm>

#include "analysis/steiner.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "graph/families/qhat.hpp"
#include "graph/families/qhat_implicit.hpp"
#include "sim/engine.hpp"

namespace rdv::exp::scenarios {
namespace {

namespace families = rdv::graph::families;

std::vector<std::string> k_row(std::uint32_t k) {
  const families::QhatImplicitTopology topo(4 * k);
  const auto z = families::qhat_z_set(topo, topo.root(), k);
  const auto program = analysis::dedicated_z_program(k);
  std::uint64_t worst = 0;
  bool all_met = true;
  sim::RunConfig config;
  config.max_rounds = 64ull * k * (std::uint64_t{2} << k);
  for (const auto v : z) {
    const auto r =
        sim::run_anonymous(topo, program, topo.root(), v, 2 * k, config);
    if (!r.met) {
      all_met = false;
      continue;
    }
    worst = std::max(worst, r.meet_from_later_start);
  }
  return {std::to_string(k),
          std::to_string(2 * k),
          std::to_string(4 * k),
          support::format_rounds(families::qhat_size(4 * k)),
          std::to_string(z.size()),
          std::to_string(analysis::theorem41_lower_bound(k)),
          std::to_string(analysis::steiner_closed_walk(k)),
          std::to_string(analysis::dedicated_z_predicted_rounds(
              k, analysis::midpoint_count(k))),
          all_met ? std::to_string(worst) : "MISSED",
          std::to_string(topo.materialized())};
}

}  // namespace

void register_t6(Registry& registry) {
  Experiment e;
  e.id = "t6_lower_bound_qhat";
  e.title = "T6 (Theorem 4.1): exponential lower bound on Q-hat";
  e.summary =
      "the 2^(k-1) rendezvous-time floor on Q-hat vs Steiner-walk and "
      "dedicated-Z simulations";
  e.axes = {"k = 1..max_k (D = 2k, h = 2D = 4k)",
            "smoke: max_k=2; quick: max_k=5; full: max_k=7"};
  e.headers = {"k",  "D=2k", "h=2D", "n (explicit)",
               "|Z|", "floor 2^(k-1)", "Steiner walk",
               "dedicated predicted worst", "simulated worst",
               "nodes materialized"};
  e.tags = {"table", "lower-bound", "qhat"};
  e.cases = [](const ExpContext& ctx) {
    const std::uint32_t max_k = ctx.smoke() ? 2u : (ctx.full() ? 7u : 5u);
    std::vector<CaseFn> fns;
    fns.reserve(max_k);
    for (std::uint32_t k = 1; k <= max_k; ++k) {
      fns.push_back([k](const ExpContext&) { return k_row(k); });
    }
    return fns;
  };
  e.notes = [](const ExpContext&) {
    return std::vector<std::string>{
        "All columns scale like 2^k: rendezvous time exponential in the "
        "initial distance D is unavoidable."};
  };
  registry.add(std::move(e));
}

}  // namespace rdv::exp::scenarios
