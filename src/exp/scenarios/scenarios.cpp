#include "exp/scenarios/scenarios.hpp"

namespace rdv::exp::scenarios {

void register_builtin(Registry& registry) {
  register_t1(registry);
  register_t2(registry);
  register_t3(registry);
  register_t4(registry);
  register_t5(registry);
  register_t6(registry);
  register_t7(registry);
  register_t8(registry);
  register_t9(registry);
  register_t10(registry);
  register_t11(registry);
  register_fig1(registry);
  register_c1(registry);
  register_c2(registry);
}

}  // namespace rdv::exp::scenarios

namespace rdv::exp {

Registry& builtin_registry() {
  static Registry* registry = [] {
    auto* r = new Registry();  // intentionally leaked: process-global
    scenarios::register_builtin(*r);
    return r;
  }();
  return *registry;
}

}  // namespace rdv::exp
