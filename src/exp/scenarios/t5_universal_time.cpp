// T5 — Theorem 3.1 + Proposition 4.1: UniversalRV meets every feasible
// STIC with zero knowledge; its time blows up like O(n+delta)^O(n+delta)
// (the guaranteed phase index and its budget grow super-exponentially).
// Each STIC is one case on the registry sweep; view classes, Shrink,
// and the per-phase UXS lengths resolve through the artifact cache.
#include <memory>

#include "cache/artifact_cache.hpp"
#include "core/bounds.hpp"
#include "core/universal_rv.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "views/refinement.hpp"

namespace rdv::exp::scenarios {
namespace {

namespace families = rdv::graph::families;
using graph::Graph;
using graph::Node;

struct Case {
  const char* label;
  Graph g;
  Node u, v;
  std::uint64_t delay;
};

std::uint64_t schedule_budget_through(std::uint64_t P,
                                      cache::ArtifactCache* cache) {
  std::uint64_t total = 0;
  for (std::uint64_t p = 1; p <= P; ++p) {
    const auto t = core::phase_decode(p);
    if (t.d >= t.n) continue;
    const auto y =
        cache::cached_uxs(static_cast<std::uint32_t>(t.n), cache);
    total = support::sat_add(
        total,
        core::universal_phase_duration(t.n, t.d, t.delta, y->length()));
  }
  return total;
}

}  // namespace

void register_t5(Registry& registry) {
  Experiment e;
  e.id = "t5_universal_time";
  e.title = "T5 (Thm 3.1 / Prop 4.1): UniversalRV, zero knowledge";
  e.summary =
      "UniversalRV meets every feasible STIC with zero knowledge; the "
      "guaranteed-phase budget blows up super-polynomially";
  e.axes = {"STIC: (graph, u, v, delay) with the guaranteed phase P and "
            "its schedule budget",
            "smoke: 2 STICs; quick: 5; full: +ring(4) +double_tree(1,1)"};
  e.headers = {"STIC",   "n",
               "delta",  "sym?",
               "Shrink", "guaranteed phase P",
               "schedule budget", "met",
               "measured rounds"};
  e.tags = {"table", "universal", "upper-bound"};
  e.cases = [](const ExpContext& ctx) {
    auto cases = std::make_shared<std::vector<Case>>();
    cases->push_back(
        {"two-node delta=1", families::two_node_graph(), 0, 1, 1});
    if (!ctx.smoke()) {
      cases->push_back(
          {"two-node delta=2", families::two_node_graph(), 0, 1, 2});
    }
    cases->push_back({"path(3) delta=0", families::path_graph(3), 0, 2, 0});
    if (!ctx.smoke()) {
      cases->push_back(
          {"path(4) delta=1", families::path_graph(4), 0, 3, 1});
      cases->push_back(
          {"ring(3) delta=1", families::oriented_ring(3), 0, 1, 1});
    }
    if (ctx.full()) {
      cases->push_back(
          {"ring(4) delta=2", families::oriented_ring(4), 0, 2, 2});
      cases->push_back({"double-tree(1,1) delta=1",
                        families::symmetric_double_tree(1, 1), 1, 3, 1});
    }
    std::vector<CaseFn> fns;
    fns.reserve(cases->size());
    for (std::size_t i = 0; i < cases->size(); ++i) {
      fns.push_back([cases, i](const ExpContext& run_ctx) {
        const Case& c = (*cases)[i];
        const auto classes =
            cache::cached_view_classes(c.g, run_ctx.cache());
        const bool sym = classes->symmetric(c.u, c.v);
        const std::uint32_t shrink =
            cache::cached_all_pairs_shrink(c.g, run_ctx.cache())
                ->at(c.u, c.v);
        const std::uint64_t P =
            sym ? core::guaranteed_phase_symmetric(c.g.size(), shrink,
                                                   c.delay)
                : core::guaranteed_phase_nonsymmetric(c.g.size(),
                                                      c.delay);
        core::UniversalOptions options;
        options.max_phases = P + 8;
        sim::RunConfig config;
        config.max_rounds = 1u << 24;
        const sim::RunResult r = sim::run_anonymous(
            c.g, core::universal_rv_program(options), c.u, c.v, c.delay,
            config);
        return std::vector<std::string>{
            c.label,
            std::to_string(c.g.size()),
            std::to_string(c.delay),
            sym ? "yes" : "no",
            std::to_string(shrink),
            std::to_string(P),
            support::format_rounds(
                schedule_budget_through(P, run_ctx.cache())),
            r.met ? "yes" : "NO",
            support::format_rounds(r.meet_from_later_start)};
      });
    }
    return fns;
  };
  e.notes = [](const ExpContext&) {
    return std::vector<std::string>{
        "The schedule budget through the guaranteed phase grows "
        "super-polynomially in n + delta."};
  };
  registry.add(std::move(e));
}

}  // namespace rdv::exp::scenarios
