// T2 — Corollary 3.1: a STIC [(u,v), delta] is feasible iff the nodes
// are nonsymmetric, or symmetric with delta >= Shrink(u, v).
// Cross-checks the predicate against full UniversalRV simulations over
// every ordered STIC of each graph on the sharded sweep runner; the
// outer case loop runs on the pool and feasibility_sweep parallelizes
// inside each case (nested on the same pool via work-assisting waits).
#include <memory>

#include "core/universal_rv.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "graph/families/families.hpp"

namespace rdv::exp::scenarios {
namespace {

namespace families = rdv::graph::families;
using graph::Graph;

struct Case {
  Graph g;
  std::uint64_t max_delay;
  std::uint64_t max_phases;
  std::uint64_t cap;
};

}  // namespace

void register_t2(Registry& registry) {
  Experiment e;
  e.id = "t2_feasibility_characterization";
  e.title =
      "T2 (Corollary 3.1): feasibility characterization vs UniversalRV";
  e.summary =
      "Corollary 3.1 predicate vs exhaustive UniversalRV simulation "
      "over every ordered STIC";
  e.axes = {
      "graph x max_delay: every ordered STIC with delays 0..max_delay",
      "smoke: two-node graph; quick: 3 graphs; full: +ring(4) "
      "+double_tree(1,1)"};
  e.headers = {"graph",      "STICs",      "feasible",
               "infeasible", "sim agrees", "inconsistencies"};
  e.tags = {"table", "feasibility", "universal"};
  e.cases = [](const ExpContext& ctx) {
    auto cases = std::make_shared<std::vector<Case>>();
    cases->push_back({families::two_node_graph(), 2, 60, 1u << 22});
    if (!ctx.smoke()) {
      cases->push_back({families::oriented_ring(3), 2, 120, 1u << 23});
      cases->push_back({families::path_graph(3), 1, 120, 1u << 23});
    }
    if (ctx.full()) {
      cases->push_back({families::oriented_ring(4), 2, 150, 1u << 24});
      cases->push_back(
          {families::symmetric_double_tree(1, 1), 1, 150, 1u << 24});
    }
    std::vector<CaseFn> fns;
    fns.reserve(cases->size());
    for (std::size_t i = 0; i < cases->size(); ++i) {
      fns.push_back([cases, i](const ExpContext& run_ctx) {
        const Case& c = (*cases)[i];
        core::UniversalOptions options;
        options.max_phases = c.max_phases;
        sim::RunConfig config;
        config.max_rounds = c.cap;
        const analysis::SweepSummary summary = sweep::feasibility_sweep(
            c.g, c.max_delay, core::universal_rv_program(options), config,
            run_ctx.sweep);
        return std::vector<std::string>{
            c.g.name(),
            std::to_string(summary.checks.size()),
            std::to_string(summary.feasible),
            std::to_string(summary.infeasible),
            summary.inconsistent == 0 ? "yes" : "NO",
            std::to_string(summary.inconsistent)};
      });
    }
    return fns;
  };
  e.notes = [](const ExpContext&) {
    return std::vector<std::string>{
        "Every feasible STIC met; no infeasible STIC met."};
  };
  registry.add(std::move(e));
}

}  // namespace rdv::exp::scenarios
