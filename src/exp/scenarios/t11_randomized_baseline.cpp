// T11 — the randomized baseline from the paper's conclusion:
// "the synchronous randomized counterpart ... is straightforward ...
// two random walks meet with high probability in time polynomial in
// the size of the graph." Independent lazy random walks are run on
// STICs that are deterministically FEASIBLE and, crucially, on
// symmetric simultaneous-start STICs that are deterministically
// IMPOSSIBLE (Lemma 3.1) — randomness breaks the symmetry that time
// alone cannot. Each STIC (with its fixed-seed run batch) is one case;
// symmetry/Shrink resolve through the artifact cache.
#include <algorithm>
#include <memory>

#include "cache/artifact_cache.hpp"
#include "core/random_walk.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "views/refinement.hpp"

namespace rdv::exp::scenarios {
namespace {

namespace families = rdv::graph::families;
using graph::Graph;
using graph::Node;

struct Case {
  Graph g;
  Node u, v;
  std::uint64_t delay;
};

}  // namespace

void register_t11(Registry& registry) {
  Experiment e;
  e.id = "t11_randomized_baseline";
  e.title = "T11 (Conclusion remark): independent lazy random walks";
  e.summary =
      "lazy random walks meet in polynomial time, even on STICs that "
      "are impossible for every deterministic algorithm";
  e.axes = {"STIC: rings, tori, double trees, hypercubes (fixed seeds "
            "per run index)",
            "runs per STIC: smoke 5, quick 20, full/census 50",
            "smoke: 2 STICs; quick: 5; full: +ring(32) +torus(5,5) "
            "+random_connected(24,12,5) +random_connected(32,20,6); "
            "census: +random_connected(48,36,7)"};
  e.headers = {"graph",    "n",           "STIC",      "deterministic",
               "runs met", "mean rounds", "max rounds"};
  e.tags = {"table", "randomized", "baseline"};
  e.cases = [](const ExpContext& ctx) {
    auto cases = std::make_shared<std::vector<Case>>();
    cases->push_back({families::oriented_ring(8), 0, 4, 0});
    if (!ctx.smoke()) {
      cases->push_back({families::oriented_ring(16), 0, 8, 0});
    }
    cases->push_back({families::oriented_torus(3, 3), 0, 4, 0});
    if (!ctx.smoke()) {
      cases->push_back({families::symmetric_double_tree(2, 2), 6, 13, 0});
      cases->push_back({families::hypercube(3), 0, 7, 2});
    }
    if (ctx.full()) {
      cases->push_back({families::oriented_ring(32), 0, 16, 0});
      cases->push_back({families::oriented_torus(5, 5), 0, 12, 0});
      cases->push_back({families::random_connected(24, 12, 5), 0, 12, 0});
      cases->push_back({families::random_connected(32, 20, 6), 0, 16, 0});
    }
    if (ctx.census()) {
      cases->push_back({families::random_connected(48, 36, 7), 0, 24, 0});
    }
    const int runs = ctx.smoke() ? 5 : (ctx.full() ? 50 : 20);
    std::vector<CaseFn> fns;
    fns.reserve(cases->size());
    for (std::size_t i = 0; i < cases->size(); ++i) {
      fns.push_back([cases, i, runs](const ExpContext& run_ctx) {
        const Case& c = (*cases)[i];
        const bool sym = cache::cached_view_classes(c.g, run_ctx.cache())
                             ->symmetric(c.u, c.v);
        const std::uint32_t s =
            cache::cached_all_pairs_shrink(c.g, run_ctx.cache())
                ->at(c.u, c.v);
        const bool feasible = !sym || c.delay >= s;
        int met = 0;
        std::uint64_t total = 0;
        std::uint64_t worst = 0;
        for (int run = 0; run < runs; ++run) {
          sim::RunConfig config;
          config.max_rounds = 1u << 22;
          const auto r = sim::run_pair(
              c.g, core::lazy_random_walk_program(1000 + 2 * run),
              core::lazy_random_walk_program(2000 + 2 * run + 1), c.u,
              c.v, c.delay, config);
          if (r.met) {
            ++met;
            total += r.meet_from_later_start;
            worst = std::max(worst, r.meet_from_later_start);
          }
        }
        return std::vector<std::string>{
            c.g.name(), std::to_string(c.g.size()),
            "[(" + std::to_string(c.u) + "," + std::to_string(c.v) +
                ")," + std::to_string(c.delay) + "]",
            feasible ? "feasible" : "IMPOSSIBLE (Lemma 3.1)",
            std::to_string(met) + "/" + std::to_string(runs),
            met ? support::format_double(
                      static_cast<double>(total) / met, 1)
                : "-",
            met ? std::to_string(worst) : "-"};
      });
    }
    return fns;
  };
  e.notes = [](const ExpContext&) {
    return std::vector<std::string>{
        "Randomized agents meet in polynomial time even on STICs that "
        "are impossible for every deterministic algorithm."};
  };
  registry.add(std::move(e));
}

}  // namespace rdv::exp::scenarios
