// F1 — Figure 1, Section 4: the Q-hat construction.
// Regenerates the structural facts the figure illustrates: node/edge
// counts, 4-regularity, the N-S / E-W port discipline on every edge,
// leaf counts per type, and full symmetry (one view class). Each h is
// one case; the view partition resolves through the artifact cache.
#include "cache/artifact_cache.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "graph/families/qhat.hpp"
#include "views/refinement.hpp"

namespace rdv::exp::scenarios {
namespace {

namespace families = rdv::graph::families;
using graph::Node;
using graph::Port;

std::vector<std::string> h_row(std::uint32_t h, const ExpContext& ctx) {
  const auto q = families::qhat_explicit(h);
  bool regular = true;
  bool opposite_ports = true;
  for (Node v = 0; v < q.graph.size(); ++v) {
    if (q.graph.degree(v) != 4) regular = false;
    for (Port p = 0; p < q.graph.degree(v); ++p) {
      if (q.graph.step(v, p).entry_port !=
          families::to_port(opposite(static_cast<families::Dir>(p)))) {
        opposite_ports = false;
      }
    }
  }
  bool leaf_counts = true;
  for (const auto& leaves : q.leaves_by_type) {
    if (leaves.size() != families::qhat_leaves_per_type(h)) {
      leaf_counts = false;
    }
  }
  const auto classes = cache::cached_view_classes(q.graph, ctx.cache());
  return {std::to_string(h),
          std::to_string(q.graph.size()),
          std::to_string(families::qhat_size(h)),
          std::to_string(q.graph.edge_count()),
          regular ? "yes" : "NO",
          opposite_ports ? "yes" : "NO",
          leaf_counts ? "yes" : "NO",
          std::to_string(classes->class_count)};
}

}  // namespace

void register_fig1(Registry& registry) {
  Experiment e;
  e.id = "f1_qhat_construction";
  e.title = "F1 (Figure 1, Section 4): Q-hat construction";
  e.summary =
      "structural facts of the Q-hat lower-bound graph: counts, "
      "regularity, port discipline, full symmetry";
  e.axes = {"h (Q-hat height), from 2",
            "smoke: h<=3; quick: h<=4; full: h<=6"};
  e.headers = {"h", "nodes", "= 1+2(3^h-1)", "edges", "4-regular",
               "N-S/E-W ports", "leaves/type = 3^(h-1)", "view classes"};
  e.tags = {"figure", "qhat", "lower-bound"};
  e.cases = [](const ExpContext& ctx) {
    const std::uint32_t max_h = ctx.smoke() ? 3u : (ctx.full() ? 6u : 4u);
    std::vector<CaseFn> fns;
    for (std::uint32_t h = 2; h <= max_h; ++h) {
      fns.push_back([h](const ExpContext& run_ctx) {
        return h_row(h, run_ctx);
      });
    }
    return fns;
  };
  registry.add(std::move(e));
}

}  // namespace rdv::exp::scenarios
