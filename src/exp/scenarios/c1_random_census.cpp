// C1 — random-graph STIC census (ROADMAP "streaming million-STIC
// census engine"). Classifies EVERY ordered STIC of seeded random
// connected graphs via Corollary 3.1 — no simulation, so the census
// scales to far larger graphs than the T-series sweeps: feasibility
// needs only the view partition (once per graph) and the BATCHED
// all-pairs Shrink table (views::shrink_all_pairs — one BFS sweep per
// source, never a per-pair product BFS), both resolved through the
// artifact cache and therefore persisted by the disk store (a warm
// census run recomputes nothing). One graph is one case; cases
// parallelize on the pool, and each case streams its Shrink histogram
// into the binary result log instead of materializing per-pair tables.
#include <algorithm>
#include <memory>

#include "cache/artifact_cache.hpp"
#include "exp/scenarios/scenarios.hpp"
#include "graph/families/families.hpp"
#include "store/result_log.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

namespace rdv::exp::scenarios {
namespace {

namespace families = rdv::graph::families;
using graph::Graph;
using graph::Node;

}  // namespace

void register_c1(Registry& registry) {
  Experiment e;
  e.id = "c1_random_census";
  e.title = "C1 (census): random-graph STIC census via Corollary 3.1";
  e.summary =
      "classify every ordered STIC of seeded random connected graphs "
      "(symmetry + batched all-pairs Shrink through the cache; no "
      "simulation)";
  e.axes = {
      "graph: random_connected(n, extra, seed) x delays 0..max_delay",
      "smoke: n<=7, delay<=1; quick: +n<=10, delay<=2; full: +n<=20; "
      "census: +n<=1024, delay<=3",
      "per-graph Shrink histograms stream into the result log "
      "(--result-log) as the cases complete"};
  e.headers = {"graph",     "n",       "edges",    "classes",
               "pairs",     "symmetric", "STICs",  "feasible",
               "infeasible", "max Shrink"};
  e.tags = {"table", "census", "feasibility", "random", "streaming"};
  e.cases = [](const ExpContext& ctx) {
    auto graphs = std::make_shared<std::vector<Graph>>();
    graphs->push_back(families::random_connected(6, 2, 21));
    graphs->push_back(families::random_connected(7, 4, 22));
    if (!ctx.smoke()) {
      graphs->push_back(families::random_connected(8, 5, 23));
      graphs->push_back(families::random_connected(10, 8, 24));
    }
    if (ctx.full()) {
      graphs->push_back(families::random_connected(12, 10, 25));
      graphs->push_back(families::random_connected(16, 16, 26));
      graphs->push_back(families::random_connected(20, 24, 27));
    }
    if (ctx.census()) {
      // The batched kernel prices the whole table at ONE product BFS,
      // and the worklist refiner (ISSUE 8) retires the old O(n^2 m)
      // partition bound, so the census climbs past n = 10^3.
      graphs->push_back(families::random_connected(24, 30, 28));
      graphs->push_back(families::random_connected(32, 48, 29));
      graphs->push_back(families::random_connected(40, 70, 30));
      graphs->push_back(families::random_connected(100, 160, 31));
      graphs->push_back(families::random_connected(200, 340, 32));
      graphs->push_back(families::random_connected(256, 440, 33));
      graphs->push_back(families::random_connected(512, 900, 34));
      graphs->push_back(families::random_connected(1024, 1792, 35));
    }
    // Prewarm the view partitions through the cache's batched entry:
    // chunks fan out on the sweep pool while each graph still resolves
    // through both tiers, so per-case cached_view_classes lookups below
    // are pure hits. Skipped when caching is off — the batch would
    // compute partitions that nothing retains (per-case output is
    // byte-identical either way; only WHEN refinement runs changes).
    if (ctx.cache() != nullptr && ctx.cache()->config().enabled) {
      std::vector<const Graph*> ptrs;
      ptrs.reserve(graphs->size());
      for (const Graph& g : *graphs) ptrs.push_back(&g);
      (void)ctx.cache()->view_classes_batch(ptrs, ctx.sweep.pool);
    }
    const std::uint64_t max_delay =
        ctx.smoke() ? 1 : (ctx.census() ? 3 : 2);
    std::vector<CaseFn> fns;
    fns.reserve(graphs->size());
    for (std::size_t i = 0; i < graphs->size(); ++i) {
      fns.push_back([graphs, i, max_delay](const ExpContext& run_ctx) {
        const Graph& g = (*graphs)[i];
        const auto classes =
            cache::cached_view_classes(g, run_ctx.cache());
        // The quotient is what an anonymous agent can learn about the
        // graph; its class count summarizes the census arena (and keeps
        // the artifact kinds flowing through cache + store).
        const auto quotient = cache::cached_quotient(g, run_ctx.cache());
        const auto all = cache::cached_all_pairs_shrink(g, run_ctx.cache());
        std::uint64_t pairs = 0;
        std::uint64_t symmetric_pairs = 0;
        std::uint64_t feasible = 0;
        std::uint32_t max_shrink = 0;
        // Shrink histogram over symmetric ordered pairs: the compact
        // streamed detail (a census row per VALUE, not per pair —
        // millions of STICs classify into a handful of rows).
        std::vector<std::uint64_t> histogram;
        for (Node u = 0; u < g.size(); ++u) {
          for (Node v = 0; v < g.size(); ++v) {
            if (u == v) continue;
            ++pairs;
            const bool sym = classes->symmetric(u, v);
            const std::uint32_t s = all->at(u, v);
            max_shrink = std::max(max_shrink, s);
            if (sym) {
              ++symmetric_pairs;
              if (s >= histogram.size()) histogram.resize(s + 1, 0);
              ++histogram[s];
            }
            // Corollary 3.1 per delay, counted arithmetically: delta in
            // [0, max_delay] is feasible iff nonsymmetric or delta >= s.
            if (!sym) {
              feasible += max_delay + 1;
            } else if (s <= max_delay) {
              feasible += max_delay + 1 - s;
            }
          }
        }
        if (run_ctx.stream != nullptr) {
          store::ResultRecord detail;
          detail.experiment_id = "c1_random_census/" + g.name();
          detail.scale = scale_name(run_ctx.scale);
          detail.items_total = pairs;
          detail.headers = {"shrink", "symmetric ordered pairs"};
          for (std::uint32_t s = 0; s < histogram.size(); ++s) {
            if (histogram[s] == 0) continue;
            detail.rows.push_back(
                {std::to_string(s), std::to_string(histogram[s])});
          }
          detail.rows.push_back(
              {"nonsymmetric", std::to_string(pairs - symmetric_pairs)});
          detail.items_produced = detail.rows.size();
          run_ctx.stream->submit(i, std::move(detail));
        }
        const std::uint64_t stics = pairs * (max_delay + 1);
        return std::vector<std::string>{
            g.name(),
            std::to_string(g.size()),
            std::to_string(g.edge_count()),
            std::to_string(quotient->class_count()),
            std::to_string(pairs),
            std::to_string(symmetric_pairs),
            std::to_string(stics),
            std::to_string(feasible),
            std::to_string(stics - feasible),
            std::to_string(max_shrink)};
      });
    }
    return fns;
  };
  e.notes = [](const ExpContext& ctx) {
    return std::vector<std::string>{
        std::string("Census of every ordered STIC with delays 0..") +
        std::to_string(ctx.smoke() ? 1 : (ctx.census() ? 3 : 2)) +
        "; feasibility by Corollary 3.1 (no simulation), Shrink from "
        "the batched all-pairs kernel."};
  };
  registry.add(std::move(e));
}

}  // namespace rdv::exp::scenarios
