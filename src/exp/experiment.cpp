#include "exp/experiment.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/trace.hpp"
#include "support/env.hpp"

namespace rdv::exp {

const char* scale_name(Scale scale) noexcept {
  switch (scale) {
    case Scale::kSmoke: return "smoke";
    case Scale::kQuick: return "quick";
    case Scale::kFull: return "full";
    case Scale::kCensus: return "census";
  }
  return "?";
}

ExpOutput run_experiment(const Experiment& experiment,
                         const ExpContext& ctx) {
  const auto t0 = std::chrono::steady_clock::now();
  // One span per experiment and one per case ("exp.case" category,
  // case index in args) — the per-scenario skeleton a Perfetto view of
  // a whole run hangs off. Sidecar-only: spans never touch the table.
  obs::Span exp_span("exp", experiment.id);
  const std::vector<CaseFn> cases = experiment.cases(ctx);
  exp_span.arg("cases", cases.size());
  ExpOutput output{support::Table(experiment.headers), {}, {}};
  // One case per chunk: cases are heavyweight (each renders a whole
  // row of simulations/searches), so per-case scheduling is the right
  // granularity no matter what chunk size the caller tuned for the
  // kernels' own inner sweeps. Kernels that sweep on the pool
  // themselves (t1/t2) fan out here too: TaskGroup::wait is
  // work-assisting, so a nested sweep blocking inside a pool task
  // executes its own chunks instead of deadlocking the worker.
  sweep::SweepConfig per_case = ctx.sweep;
  per_case.chunk_size = 1;
  std::vector<std::vector<std::string>> rows =
      sweep::sweep_map<std::vector<std::string>>(
          cases.size(),
          [&](std::size_t i) {
            obs::Span case_span("exp.case", experiment.id);
            case_span.arg("case", i);
            return cases[i](ctx);
          },
          per_case, {}, &output.stats);
  for (std::vector<std::string>& row : rows) {
    if (!row.empty()) output.table.add_row(std::move(row));
  }
  // A case may decline to produce a row (empty return), so the produced
  // count is the table's, not the sweep's.
  output.stats.items_produced = output.table.row_count();
  if (experiment.notes) output.notes = experiment.notes(ctx);
  output.wall_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  return output;
}

void Registry::add(Experiment experiment) {
  if (experiment.id.empty()) {
    throw std::invalid_argument("Registry::add: empty experiment id");
  }
  if (find(experiment.id) != nullptr) {
    throw std::invalid_argument("Registry::add: duplicate experiment id " +
                                experiment.id);
  }
  if (!experiment.cases) {
    throw std::invalid_argument("Registry::add: experiment " +
                                experiment.id + " has no case generator");
  }
  experiments_.push_back(std::move(experiment));
}

const Experiment* Registry::find(std::string_view id) const {
  for (const Experiment& e : experiments_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

std::vector<const Experiment*> Registry::match(
    std::string_view filter) const {
  std::vector<const Experiment*> matched;
  for (const Experiment& e : experiments_) {
    bool hit = filter.empty() ||
               e.id.find(filter) != std::string::npos ||
               e.title.find(filter) != std::string::npos;
    for (const std::string& tag : e.tags) {
      if (hit) break;
      hit = tag.find(filter) != std::string::npos;
    }
    if (hit) matched.push_back(&e);
  }
  return matched;
}

EmitOptions emit_options_from_env() {
  EmitOptions options;
  options.csv_dir = support::repro_csv_dir();
  options.json_dir = support::repro_json_dir();
  return options;
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << contents;
  // A disk-full short write surfaces here, not at open: only a clean
  // flush may report the path as successfully emitted.
  if (!out.flush().good()) {
    std::fprintf(stderr, "warning: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

std::vector<std::string> emit(const Experiment& experiment,
                              const ExpOutput& output,
                              const EmitOptions& options) {
  if (options.markdown) {
    std::printf("%s\n%s", experiment.title.c_str(),
                output.table.to_markdown().c_str());
    for (const std::string& note : output.notes) {
      std::printf("\n%s\n", note.c_str());
    }
  }
  if (options.json_stdout) {
    std::printf("%s", output.table.to_json().c_str());
  }
  std::vector<std::string> written;
  if (!options.csv_dir.empty()) {
    const std::string path =
        options.csv_dir + "/" + experiment.id + ".csv";
    if (write_file(path, output.table.to_csv())) written.push_back(path);
  }
  if (!options.json_dir.empty()) {
    const std::string path =
        options.json_dir + "/" + experiment.id + ".json";
    if (write_file(path, output.table.to_json())) written.push_back(path);
  }
  return written;
}

}  // namespace rdv::exp
