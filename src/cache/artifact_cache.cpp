#include "cache/artifact_cache.hpp"

#include <algorithm>
#include <string>

#include "store/codec.hpp"
#include "support/env.hpp"
#include "uxs/corpus.hpp"

namespace rdv::cache {

namespace {

/// Read-through/write-behind shim around one artifact compute: consult
/// the disk tier first (a validated payload short-circuits the
/// compute), else compute and persist. Runs inside the sharded store's
/// compute callback, i.e. outside the shard lock and at most once per
/// in-memory miss. A payload that validated but fails to decode (a
/// foreign codec under the same salt — should not happen) degrades to
/// recompute-and-overwrite rather than propagating.
template <typename T, typename Encode, typename Decode, typename Compute>
T through_disk(store::DiskStore* disk, store::Kind kind,
               const std::string& key, Encode&& encode, Decode&& decode,
               Compute&& compute) {
  if (disk != nullptr) {
    if (const auto payload = disk->load(kind, key)) {
      try {
        return decode(*payload);
      } catch (const store::CodecError&) {
      }
    }
  }
  T value = compute();
  if (disk != nullptr) (void)disk->save(kind, key, encode(value));
  return value;
}

std::uint64_t view_classes_bytes(const views::ViewClasses& c) {
  return c.class_of.size() * sizeof(std::uint32_t) + 2 * sizeof(std::uint32_t);
}

std::uint64_t quotient_bytes(const views::QuotientGraph& q) {
  std::uint64_t bytes = q.multiplicity.size() * sizeof(std::uint32_t);
  for (const auto& arcs : q.arcs) bytes += arcs.size() * sizeof(views::QuotientArc);
  return bytes;
}

std::uint64_t uxs_bytes(const uxs::Uxs& y) {
  return y.length() * sizeof(std::uint64_t) + y.provenance().size();
}

std::uint64_t shrink_bytes(const views::ShrinkResult& r) {
  return r.witness.size() * sizeof(graph::Port) + sizeof(views::ShrinkResult);
}

std::uint64_t all_pairs_shrink_bytes(const views::AllPairsShrink& a) {
  return a.values.size() * sizeof(std::uint32_t) +
         sizeof(views::AllPairsShrink);
}

/// Fixed-width lowercase hex (16 digits), with no intermediate
/// fixed-size buffer anywhere in the key path.
std::string hex16(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

ArtifactCache::ArtifactCache(const CacheConfig& config)
    : config_(config),
      view_classes_(config.shards, config.capacity_per_shard, config.enabled,
                    config.bytes_per_shard),
      quotients_(config.shards, config.capacity_per_shard, config.enabled,
                 config.bytes_per_shard),
      uxs_(config.shards, config.capacity_per_shard, config.enabled,
           config.bytes_per_shard),
      shrink_(config.shards, config.capacity_per_shard, config.enabled,
              config.bytes_per_shard),
      all_pairs_shrink_(config.shards, config.capacity_per_shard,
                        config.enabled, config.bytes_per_shard) {}

std::shared_ptr<const views::ViewClasses> ArtifactCache::view_classes(
    const graph::Graph& g) {
  return view_classes(g, fingerprint(g));
}

std::string ArtifactCache::disk_key(const GraphFingerprint& fp) {
  return "fp-" + hex16(fp.hi) + "-" + hex16(fp.lo) + "-n" +
         std::to_string(fp.n);
}

std::string ArtifactCache::disk_key(const ShrinkKey& key) {
  return disk_key(key.fp) + "-u" + std::to_string(key.u) + "-v" +
         std::to_string(key.v);
}

std::shared_ptr<const views::ViewClasses> ArtifactCache::view_classes(
    const graph::Graph& g, const GraphFingerprint& fp) {
  return view_classes_.get_or_compute(
      fp,
      [this, &g, &fp] {
        return through_disk<views::ViewClasses>(
            disk(), store::Kind::kViewClasses, disk_key(fp),
            store::encode_view_classes, store::decode_view_classes,
            [&g] { return views::compute_view_classes(g); });
      },
      view_classes_bytes);
}

std::vector<std::shared_ptr<const views::ViewClasses>>
ArtifactCache::view_classes_batch(
    std::span<const graph::Graph* const> graphs,
    support::ThreadPool* pool) {
  std::vector<std::shared_ptr<const views::ViewClasses>> out(graphs.size());
  if (graphs.empty()) return out;
  support::ThreadPool& p =
      pool != nullptr ? *pool : support::default_pool();
  // Same chunking rationale as views::view_classes_batch: small chunks
  // load-balance censuses mixing tiny and n>=1024 graphs.
  constexpr std::size_t kChunk = 4;
  if (graphs.size() <= kChunk || p.thread_count() <= 1) {
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      out[i] = view_classes(*graphs[i]);
    }
    return out;
  }
  support::TaskGroup group(p);
  for (std::size_t begin = 0; begin < graphs.size(); begin += kChunk) {
    const std::size_t end = std::min(begin + kChunk, graphs.size());
    group.submit([this, &graphs, &out, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = view_classes(*graphs[i]);
      }
    });
  }
  group.wait();
  return out;
}

std::shared_ptr<const views::QuotientGraph> ArtifactCache::quotient(
    const graph::Graph& g) {
  return quotient(g, fingerprint(g));
}

std::shared_ptr<const views::QuotientGraph> ArtifactCache::quotient(
    const graph::Graph& g, const GraphFingerprint& fp) {
  return quotients_.get_or_compute(
      fp,
      [this, &g, &fp] {
        return through_disk<views::QuotientGraph>(
            disk(), store::Kind::kQuotients, disk_key(fp),
            store::encode_quotient, store::decode_quotient, [this, &g, &fp] {
              return views::build_quotient(g, *view_classes(g, fp));
            });
      },
      quotient_bytes);
}

std::shared_ptr<const uxs::Uxs> ArtifactCache::uxs(std::uint32_t n) {
  return uxs_.get_or_compute(
      n,
      [this, n] {
        return through_disk<uxs::Uxs>(
            disk(), store::Kind::kUxs, "n" + std::to_string(n),
            store::encode_uxs, store::decode_uxs,
            [n] { return uxs::corpus_verified_uxs(n); });
      },
      uxs_bytes);
}

std::shared_ptr<const views::ShrinkResult> ArtifactCache::shrink(
    const graph::Graph& g, graph::Node u, graph::Node v) {
  return shrink(g, fingerprint(g), u, v);
}

std::shared_ptr<const views::ShrinkResult> ArtifactCache::shrink(
    const graph::Graph& g, const GraphFingerprint& fp, graph::Node u,
    graph::Node v) {
  const ShrinkKey key{fp, u, v};
  return shrink_.get_or_compute(
      key,
      [this, &g, u, v, &key] {
        return through_disk<views::ShrinkResult>(
            disk(), store::Kind::kShrink, disk_key(key),
            store::encode_shrink, store::decode_shrink,
            [&g, u, v] { return views::shrink_with_witness(g, u, v); });
      },
      shrink_bytes);
}

std::shared_ptr<const views::AllPairsShrink> ArtifactCache::all_pairs_shrink(
    const graph::Graph& g) {
  return all_pairs_shrink(g, fingerprint(g));
}

std::shared_ptr<const views::AllPairsShrink> ArtifactCache::all_pairs_shrink(
    const graph::Graph& g, const GraphFingerprint& fp) {
  return all_pairs_shrink_.get_or_compute(
      fp,
      [this, &g, &fp] {
        return through_disk<views::AllPairsShrink>(
            disk(), store::Kind::kShrinkAllPairs, disk_key(fp),
            store::encode_all_pairs_shrink, store::decode_all_pairs_shrink,
            [&g] { return views::shrink_all_pairs(g); });
      },
      all_pairs_shrink_bytes);
}

CacheStats ArtifactCache::stats() const {
  CacheStats stats;
  stats.view_classes = view_classes_.stats();
  stats.quotients = quotients_.stats();
  stats.uxs = uxs_.stats();
  stats.shrink = shrink_.stats();
  stats.all_pairs_shrink = all_pairs_shrink_.stats();
  return stats;
}

void ArtifactCache::clear() {
  view_classes_.clear();
  quotients_.clear();
  uxs_.clear();
  shrink_.clear();
  all_pairs_shrink_.clear();
}

ArtifactCache& global_cache() {
  static ArtifactCache* cache = [] {
    CacheConfig config;
    config.shards = support::env_size_t("RDV_CACHE_SHARDS", config.shards);
    config.capacity_per_shard = support::env_size_t(
        "RDV_CACHE_CAPACITY", config.capacity_per_shard);
    // RDV_CACHE_BYTES is the per-store budget; split it across shards
    // (each shard gets at least 1 byte, i.e. "keep only the newest").
    const std::size_t total_bytes = support::env_size_t("RDV_CACHE_BYTES", 0);
    if (total_bytes != 0) {
      config.bytes_per_shard =
          std::max<std::uint64_t>(1, total_bytes / config.shards);
    }
    config.enabled = !support::env_flag("RDV_CACHE_DISABLE");
    const std::string store_dir = support::rdv_store_dir();
    if (!store_dir.empty()) {
      store::DiskConfig disk_config;
      disk_config.root = store_dir;
      const std::string salt = support::rdv_store_salt();
      if (!salt.empty()) disk_config.build_salt = salt;
      disk_config.read_only = support::rdv_store_readonly();
      config.disk = std::make_shared<store::DiskStore>(disk_config);
    }
    return new ArtifactCache(config);  // intentionally leaked: process-global
  }();
  return *cache;
}

std::shared_ptr<const views::ViewClasses> cached_view_classes(
    const graph::Graph& g, ArtifactCache* cache) {
  return (cache != nullptr ? *cache : global_cache()).view_classes(g);
}

std::vector<std::pair<graph::Node, graph::Node>> cached_symmetric_pairs(
    const graph::Graph& g, ArtifactCache* cache) {
  return views::symmetric_pairs(g, *cached_view_classes(g, cache));
}

std::shared_ptr<const views::QuotientGraph> cached_quotient(
    const graph::Graph& g, ArtifactCache* cache) {
  return (cache != nullptr ? *cache : global_cache()).quotient(g);
}

std::shared_ptr<const uxs::Uxs> cached_uxs(std::uint32_t n,
                                           ArtifactCache* cache) {
  return (cache != nullptr ? *cache : global_cache()).uxs(n);
}

std::shared_ptr<const views::ShrinkResult> cached_shrink(
    const graph::Graph& g, graph::Node u, graph::Node v,
    ArtifactCache* cache) {
  return (cache != nullptr ? *cache : global_cache()).shrink(g, u, v);
}

std::shared_ptr<const views::AllPairsShrink> cached_all_pairs_shrink(
    const graph::Graph& g, ArtifactCache* cache) {
  return (cache != nullptr ? *cache : global_cache()).all_pairs_shrink(g);
}

uxs::UxsProvider cached_uxs_provider(ArtifactCache* cache) {
  return [cache](std::uint32_t n) { return *cached_uxs(n, cache); };
}

}  // namespace rdv::cache
