#include "cache/artifact_cache.hpp"

#include <cstdlib>
#include <string_view>

#include "uxs/corpus.hpp"

namespace rdv::cache {

namespace {

std::uint64_t view_classes_bytes(const views::ViewClasses& c) {
  return c.class_of.size() * sizeof(std::uint32_t) + 2 * sizeof(std::uint32_t);
}

std::uint64_t quotient_bytes(const views::QuotientGraph& q) {
  std::uint64_t bytes = q.multiplicity.size() * sizeof(std::uint32_t);
  for (const auto& arcs : q.arcs) bytes += arcs.size() * sizeof(views::QuotientArc);
  return bytes;
}

std::uint64_t uxs_bytes(const uxs::Uxs& y) {
  return y.length() * sizeof(std::uint64_t) + y.provenance().size();
}

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  return (end == raw || v == 0) ? fallback : static_cast<std::size_t>(v);
}

}  // namespace

ArtifactCache::ArtifactCache(const CacheConfig& config)
    : config_(config),
      view_classes_(config.shards, config.capacity_per_shard, config.enabled),
      quotients_(config.shards, config.capacity_per_shard, config.enabled),
      uxs_(config.shards, config.capacity_per_shard, config.enabled) {}

std::shared_ptr<const views::ViewClasses> ArtifactCache::view_classes(
    const graph::Graph& g) {
  return view_classes(g, fingerprint(g));
}

std::shared_ptr<const views::ViewClasses> ArtifactCache::view_classes(
    const graph::Graph& g, const GraphFingerprint& fp) {
  return view_classes_.get_or_compute(
      fp, [&g] { return views::compute_view_classes(g); },
      view_classes_bytes);
}

std::shared_ptr<const views::QuotientGraph> ArtifactCache::quotient(
    const graph::Graph& g) {
  return quotient(g, fingerprint(g));
}

std::shared_ptr<const views::QuotientGraph> ArtifactCache::quotient(
    const graph::Graph& g, const GraphFingerprint& fp) {
  return quotients_.get_or_compute(
      fp,
      [this, &g, &fp] { return views::build_quotient(g, *view_classes(g, fp)); },
      quotient_bytes);
}

std::shared_ptr<const uxs::Uxs> ArtifactCache::uxs(std::uint32_t n) {
  return uxs_.get_or_compute(
      n, [n] { return uxs::corpus_verified_uxs(n); }, uxs_bytes);
}

CacheStats ArtifactCache::stats() const {
  CacheStats stats;
  stats.view_classes = view_classes_.stats();
  stats.quotients = quotients_.stats();
  stats.uxs = uxs_.stats();
  return stats;
}

void ArtifactCache::clear() {
  view_classes_.clear();
  quotients_.clear();
  uxs_.clear();
}

ArtifactCache& global_cache() {
  static ArtifactCache* cache = [] {
    CacheConfig config;
    config.shards = env_size_t("RDV_CACHE_SHARDS", config.shards);
    config.capacity_per_shard =
        env_size_t("RDV_CACHE_CAPACITY", config.capacity_per_shard);
    // Any value except empty/"0" disables (so =1, =true, =yes all work).
    const char* disable = std::getenv("RDV_CACHE_DISABLE");
    config.enabled = disable == nullptr || std::string_view(disable).empty() ||
                     std::string_view(disable) == "0";
    return new ArtifactCache(config);  // intentionally leaked: process-global
  }();
  return *cache;
}

std::shared_ptr<const views::ViewClasses> cached_view_classes(
    const graph::Graph& g, ArtifactCache* cache) {
  return (cache != nullptr ? *cache : global_cache()).view_classes(g);
}

std::shared_ptr<const views::QuotientGraph> cached_quotient(
    const graph::Graph& g, ArtifactCache* cache) {
  return (cache != nullptr ? *cache : global_cache()).quotient(g);
}

std::shared_ptr<const uxs::Uxs> cached_uxs(std::uint32_t n,
                                           ArtifactCache* cache) {
  return (cache != nullptr ? *cache : global_cache()).uxs(n);
}

uxs::UxsProvider cached_uxs_provider(ArtifactCache* cache) {
  return [cache](std::uint32_t n) { return *cached_uxs(n, cache); };
}

}  // namespace rdv::cache
