#include "cache/artifact_cache.hpp"

#include <algorithm>

#include "support/env.hpp"
#include "uxs/corpus.hpp"

namespace rdv::cache {

namespace {

std::uint64_t view_classes_bytes(const views::ViewClasses& c) {
  return c.class_of.size() * sizeof(std::uint32_t) + 2 * sizeof(std::uint32_t);
}

std::uint64_t quotient_bytes(const views::QuotientGraph& q) {
  std::uint64_t bytes = q.multiplicity.size() * sizeof(std::uint32_t);
  for (const auto& arcs : q.arcs) bytes += arcs.size() * sizeof(views::QuotientArc);
  return bytes;
}

std::uint64_t uxs_bytes(const uxs::Uxs& y) {
  return y.length() * sizeof(std::uint64_t) + y.provenance().size();
}

std::uint64_t shrink_bytes(const views::ShrinkResult& r) {
  return r.witness.size() * sizeof(graph::Port) + sizeof(views::ShrinkResult);
}

}  // namespace

ArtifactCache::ArtifactCache(const CacheConfig& config)
    : config_(config),
      view_classes_(config.shards, config.capacity_per_shard, config.enabled,
                    config.bytes_per_shard),
      quotients_(config.shards, config.capacity_per_shard, config.enabled,
                 config.bytes_per_shard),
      uxs_(config.shards, config.capacity_per_shard, config.enabled,
           config.bytes_per_shard),
      shrink_(config.shards, config.capacity_per_shard, config.enabled,
              config.bytes_per_shard) {}

std::shared_ptr<const views::ViewClasses> ArtifactCache::view_classes(
    const graph::Graph& g) {
  return view_classes(g, fingerprint(g));
}

std::shared_ptr<const views::ViewClasses> ArtifactCache::view_classes(
    const graph::Graph& g, const GraphFingerprint& fp) {
  return view_classes_.get_or_compute(
      fp, [&g] { return views::compute_view_classes(g); },
      view_classes_bytes);
}

std::shared_ptr<const views::QuotientGraph> ArtifactCache::quotient(
    const graph::Graph& g) {
  return quotient(g, fingerprint(g));
}

std::shared_ptr<const views::QuotientGraph> ArtifactCache::quotient(
    const graph::Graph& g, const GraphFingerprint& fp) {
  return quotients_.get_or_compute(
      fp,
      [this, &g, &fp] { return views::build_quotient(g, *view_classes(g, fp)); },
      quotient_bytes);
}

std::shared_ptr<const uxs::Uxs> ArtifactCache::uxs(std::uint32_t n) {
  return uxs_.get_or_compute(
      n, [n] { return uxs::corpus_verified_uxs(n); }, uxs_bytes);
}

std::shared_ptr<const views::ShrinkResult> ArtifactCache::shrink(
    const graph::Graph& g, graph::Node u, graph::Node v) {
  return shrink(g, fingerprint(g), u, v);
}

std::shared_ptr<const views::ShrinkResult> ArtifactCache::shrink(
    const graph::Graph& g, const GraphFingerprint& fp, graph::Node u,
    graph::Node v) {
  return shrink_.get_or_compute(
      ShrinkKey{fp, u, v},
      [&g, u, v] { return views::shrink_with_witness(g, u, v); },
      shrink_bytes);
}

CacheStats ArtifactCache::stats() const {
  CacheStats stats;
  stats.view_classes = view_classes_.stats();
  stats.quotients = quotients_.stats();
  stats.uxs = uxs_.stats();
  stats.shrink = shrink_.stats();
  return stats;
}

void ArtifactCache::clear() {
  view_classes_.clear();
  quotients_.clear();
  uxs_.clear();
  shrink_.clear();
}

ArtifactCache& global_cache() {
  static ArtifactCache* cache = [] {
    CacheConfig config;
    config.shards = support::env_size_t("RDV_CACHE_SHARDS", config.shards);
    config.capacity_per_shard = support::env_size_t(
        "RDV_CACHE_CAPACITY", config.capacity_per_shard);
    // RDV_CACHE_BYTES is the per-store budget; split it across shards
    // (each shard gets at least 1 byte, i.e. "keep only the newest").
    const std::size_t total_bytes = support::env_size_t("RDV_CACHE_BYTES", 0);
    if (total_bytes != 0) {
      config.bytes_per_shard =
          std::max<std::uint64_t>(1, total_bytes / config.shards);
    }
    config.enabled = !support::env_flag("RDV_CACHE_DISABLE");
    return new ArtifactCache(config);  // intentionally leaked: process-global
  }();
  return *cache;
}

std::shared_ptr<const views::ViewClasses> cached_view_classes(
    const graph::Graph& g, ArtifactCache* cache) {
  return (cache != nullptr ? *cache : global_cache()).view_classes(g);
}

std::shared_ptr<const views::QuotientGraph> cached_quotient(
    const graph::Graph& g, ArtifactCache* cache) {
  return (cache != nullptr ? *cache : global_cache()).quotient(g);
}

std::shared_ptr<const uxs::Uxs> cached_uxs(std::uint32_t n,
                                           ArtifactCache* cache) {
  return (cache != nullptr ? *cache : global_cache()).uxs(n);
}

std::shared_ptr<const views::ShrinkResult> cached_shrink(
    const graph::Graph& g, graph::Node u, graph::Node v,
    ArtifactCache* cache) {
  return (cache != nullptr ? *cache : global_cache()).shrink(g, u, v);
}

uxs::UxsProvider cached_uxs_provider(ArtifactCache* cache) {
  return [cache](std::uint32_t n) { return *cached_uxs(n, cache); };
}

}  // namespace rdv::cache
