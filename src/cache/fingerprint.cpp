#include "cache/fingerprint.hpp"

#include <cstdio>

namespace rdv::cache {

namespace {

/// SplitMix64 finalizer (same scramble as support::SplitMix64) applied
/// as a compression function: position-salted so permuted word streams
/// hash differently.
constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ULL;

constexpr std::uint64_t scramble(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

struct Lane {
  std::uint64_t state;
  std::uint64_t position = 0;

  void absorb(std::uint64_t word) noexcept {
    state = scramble(state ^ (word + kGamma * ++position));
  }
};

}  // namespace

GraphFingerprint fingerprint(const graph::Graph& g) {
  Lane hi{/*state=*/0x8BADF00D5EED0001ULL};
  Lane lo{/*state=*/0xC0FFEE0DDF00D002ULL};
  const auto absorb = [&](std::uint64_t word) {
    hi.absorb(word);
    lo.absorb(word);
  };
  absorb(g.size());
  for (graph::Node v = 0; v < g.size(); ++v) {
    const auto edges = g.edges(v);
    absorb(edges.size());
    for (const graph::HalfEdge& e : edges) {
      absorb((static_cast<std::uint64_t>(e.to) << 32) | e.rev_port);
    }
  }
  GraphFingerprint fp;
  fp.hi = scramble(hi.state);
  fp.lo = scramble(lo.state);
  fp.n = g.size();
  return fp;
}

std::string to_string(const GraphFingerprint& fp) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "n=%u:%016llx/%016llx", fp.n,
                static_cast<unsigned long long>(fp.hi),
                static_cast<unsigned long long>(fp.lo));
  return buffer;
}

}  // namespace rdv::cache
