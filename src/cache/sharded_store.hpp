#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/stats.hpp"
#include "support/check.hpp"

/// Sharded, mutex-per-shard LRU store — the concurrency engine behind
/// ArtifactCache. Generic over (Key, Value) so each artifact kind gets
/// its own instance with its own statistics.
namespace rdv::cache {

/// Counters for one store; snapshot via ShardedLruStore::stats(). The
/// hits/misses/bytes vocabulary is the shared obs::TierStats (`bytes`
/// = currently resident approximate payload bytes); this adds the
/// memory-tier-only fields. Evicted values stay alive while callers
/// hold their shared_ptr, but stop counting under entries/bytes.
struct StoreStats : obs::TierStats {
  std::uint64_t evictions = 0;
  /// Currently resident entries.
  std::uint64_t entries = 0;
};

/// Values are handed out as shared_ptr<const V>: eviction never
/// invalidates a pointer a caller already holds; it only drops the
/// store's own reference.
///
/// Concurrency contract: a missing key is computed exactly once, OUTSIDE
/// the shard lock. The first requester registers an in-flight future
/// under the lock, releases it, and computes; concurrent requests for
/// the same key wait on that future, while requests for other keys of
/// the same shard (hits and misses alike) proceed unblocked — a
/// seconds-long UXS verification never stalls the shard. The compute
/// callback must not reenter the same store (other stores are fine —
/// ArtifactCache's quotient store calls into its view store).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruStore {
 public:
  /// `shards` concurrent stripes of up to `capacity_per_shard` entries
  /// each (both clamped to >= 1). `max_bytes_per_shard` additionally
  /// bounds the resident payload bytes per shard (0 = unbounded);
  /// eviction keeps at least the most recent entry, so one artifact
  /// larger than the whole budget still caches (and evicts everything
  /// else). When `enabled` is false the store never retains anything:
  /// every request computes a fresh value and counts as a miss (the
  /// determinism baseline for cache-off runs).
  ShardedLruStore(std::size_t shards, std::size_t capacity_per_shard,
                  bool enabled = true,
                  std::uint64_t max_bytes_per_shard = 0)
      : shards_(std::max<std::size_t>(1, shards)),
        capacity_per_shard_(std::max<std::size_t>(1, capacity_per_shard)),
        max_bytes_per_shard_(max_bytes_per_shard),
        enabled_(enabled) {}

  /// Returns the cached value for key, or computes, stores, and returns
  /// it. `size_of` estimates resident payload bytes for the stats.
  /// In-flight waiters count as hits (they share the single compute);
  /// a throwing compute propagates to the computing caller and every
  /// waiter, and leaves nothing cached. Templated over the callables so
  /// the hot hit path pays no type erasure and no promise allocation.
  template <typename Compute, typename SizeOf>
  std::shared_ptr<const Value> get_or_compute(const Key& key,
                                              Compute&& compute,
                                              SizeOf&& size_of) {
    Shard& shard = shard_for(key);
    if (!enabled_) {
      auto value = std::make_shared<const Value>(compute());
      std::lock_guard lock(shard.mutex);
      ++shard.misses;
      return value;
    }
    std::optional<std::promise<std::shared_ptr<const Value>>> promise;
    std::shared_future<std::shared_ptr<const Value>> pending;
    {
      std::lock_guard lock(shard.mutex);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        ++shard.hits;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
        return it->second.value;
      }
      auto in_flight = shard.in_flight.find(key);
      if (in_flight != shard.in_flight.end()) {
        ++shard.hits;
        pending = in_flight->second;
      } else {
        ++shard.misses;
        promise.emplace();
        shard.in_flight.emplace(key, promise->get_future().share());
      }
    }
    // Another caller is computing this key: wait for it unlocked.
    if (pending.valid()) return pending.get();
    // Compute with the shard unlocked: other keys of this shard stay
    // serviceable for the whole (possibly long) computation. Any
    // failure up to and including insertion must resolve the promise,
    // or waiters on the in-flight future would hang forever.
    std::shared_ptr<const Value> value;
    try {
      value = std::make_shared<const Value>(compute());
      const std::uint64_t bytes = size_of(*value);
      std::lock_guard lock(shard.mutex);
      shard.in_flight.erase(key);
      shard.lru.push_front(key);
      try {
        shard.map.emplace(key, Entry{value, shard.lru.begin(), bytes});
      } catch (...) {
        shard.lru.pop_front();
        throw;
      }
      shard.bytes += bytes;
      while (shard.map.size() > capacity_per_shard_ ||
             (max_bytes_per_shard_ != 0 &&
              shard.bytes > max_bytes_per_shard_ &&
              shard.map.size() > 1)) {
        const Key& victim = shard.lru.back();
        auto victim_it = shard.map.find(victim);
        RDV_CHECK_MSG(victim_it != shard.map.end(),
                      "LRU victim missing from shard map");
        RDV_CHECK_MSG(shard.bytes >= victim_it->second.bytes,
                      "shard byte accounting underflow");
        shard.bytes -= victim_it->second.bytes;
        shard.map.erase(victim_it);
        shard.lru.pop_back();
        ++shard.evictions;
      }
    } catch (...) {
      {
        std::lock_guard lock(shard.mutex);
        shard.in_flight.erase(key);
      }
      promise->set_exception(std::current_exception());
      throw;
    }
    promise->set_value(value);
    return value;
  }

  [[nodiscard]] StoreStats stats() const {
    StoreStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard lock(shard.mutex);
      total.hits += shard.hits;
      total.misses += shard.misses;
      total.evictions += shard.evictions;
      total.entries += shard.map.size();
      total.bytes += shard.bytes;
    }
    return total;
  }

  /// Drops every resident entry (counters are kept).
  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard lock(shard.mutex);
      shard.map.clear();
      shard.lru.clear();
      shard.bytes = 0;
    }
  }

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  struct Entry {
    std::shared_ptr<const Value> value;
    typename std::list<Key>::iterator lru_it;
    std::uint64_t bytes = 0;
  };

  struct Shard {
    mutable support::RankedMutex mutex{support::LockRank::kCacheShard};
    std::unordered_map<Key, Entry, Hash> map;
    /// Keys being computed right now; requesters wait on the future.
    std::unordered_map<Key, std::shared_future<std::shared_ptr<const Value>>,
                       Hash>
        in_flight;
    /// Front = most recently used; back = eviction victim.
    std::list<Key> lru;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;
  };

  Shard& shard_for(const Key& key) {
    // Re-scramble the hash so stores keyed by small integers (UXS sizes)
    // still spread across shards.
    std::uint64_t h = Hash{}(key) * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 32;
    return shards_[h % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::size_t capacity_per_shard_;
  std::uint64_t max_bytes_per_shard_;
  bool enabled_;
};

}  // namespace rdv::cache
