#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/graph.hpp"

/// Canonical graph fingerprints — the cache key of the artifact cache.
///
/// The fingerprint is a 128-bit hash over the graph's STRUCTURE: size,
/// per-node degrees, and every (neighbor, reverse port) half-edge in
/// port order. The name is deliberately excluded, so two differently
/// named copies of the same port-labeled graph share one cache entry
/// (every cached artifact — view classes, quotients — is a pure
/// function of the structure). Isomorphic but relabelled graphs have
/// different adjacency streams and therefore distinct keys: the cache
/// never canonicalizes up to isomorphism, it only deduplicates exact
/// structural repeats, which is what sweep workloads produce.
namespace rdv::cache {

struct GraphFingerprint {
  /// Two independently seeded 64-bit lanes over the same word stream;
  /// a collision requires both to collide simultaneously.
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  /// Graph size, kept in the clear for stats and sanity checks.
  std::uint32_t n = 0;

  friend bool operator==(const GraphFingerprint&,
                         const GraphFingerprint&) = default;
};

/// Hashes the structural word stream of g (name excluded; see above).
[[nodiscard]] GraphFingerprint fingerprint(const graph::Graph& g);

/// "n=8:0123456789abcdef/fedcba9876543210" for logs and tests.
[[nodiscard]] std::string to_string(const GraphFingerprint& fp);

struct FingerprintHash {
  [[nodiscard]] std::size_t operator()(
      const GraphFingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9E3779B97F4A7C15ULL));
  }
};

}  // namespace rdv::cache
