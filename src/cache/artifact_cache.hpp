#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "cache/fingerprint.hpp"
#include "cache/sharded_store.hpp"
#include "graph/graph.hpp"
#include "store/disk_store.hpp"
#include "support/thread_pool.hpp"
#include "uxs/uxs.hpp"
#include "views/quotient.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

/// Concurrent per-graph artifact cache (ISSUE 2 tentpole).
///
/// Sweep workloads evaluate thousands of (u, v, delay) cases over a
/// handful of distinct graphs; the expensive per-GRAPH artifacts —
/// ViewClasses partition refinement (O(n^2 m)), quotient graphs, and
/// corpus-verified UXS construction — are pure functions of the graph
/// structure (resp. the size n), so they are computed once per distinct
/// fingerprint and shared as shared_ptr<const T> across all threads of
/// all sweeps. Determinism contract: every artifact is a deterministic
/// function of its key, so sweep output is byte-identical with the
/// cache enabled, disabled, or at any thread count — the cache can only
/// change WHEN artifacts are computed, never their values.
namespace rdv::cache {

struct CacheConfig {
  /// Concurrency stripes per artifact store (>= 1).
  std::size_t shards = 8;
  /// LRU capacity per shard per store, in entries (>= 1); long sweeps
  /// over streams of distinct graphs stay bounded at
  /// shards * capacity_per_shard entries per artifact kind.
  std::size_t capacity_per_shard = 64;
  /// Resident payload byte budget per shard per store (0 = unbounded).
  /// Evicts LRU-first down to the budget, always keeping the most
  /// recent entry, so residency is bounded by BYTES — not just entry
  /// count — no matter how large individual artifacts are.
  std::uint64_t bytes_per_shard = 0;
  /// When false, nothing is retained and every request recomputes —
  /// the reference configuration for determinism tests.
  bool enabled = true;
  /// Persistent second tier (ISSUE 4): on a memory miss the compute
  /// path first consults the disk store (read-through) and persists
  /// freshly computed artifacts (write-behind, atomic temp+rename).
  /// nullptr = memory-only. Artifacts are pure functions of their keys
  /// and the codec is deterministic, so the disk tier — like the memory
  /// tier — can only change WHEN artifacts are computed, never their
  /// values; a corrupt or version-mismatched file degrades to
  /// recompute. Shared so several caches may back onto one store.
  std::shared_ptr<store::DiskStore> disk;
};

struct CacheStats {
  StoreStats view_classes;
  StoreStats quotients;
  StoreStats uxs;
  StoreStats shrink;
  StoreStats all_pairs_shrink;

  [[nodiscard]] std::uint64_t total_hits() const {
    return view_classes.hits + quotients.hits + uxs.hits + shrink.hits +
           all_pairs_shrink.hits;
  }
  [[nodiscard]] std::uint64_t total_misses() const {
    return view_classes.misses + quotients.misses + uxs.misses +
           shrink.misses + all_pairs_shrink.misses;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    return view_classes.bytes + quotients.bytes + uxs.bytes + shrink.bytes +
           all_pairs_shrink.bytes;
  }
};

/// Key of the Shrink store: one pair-BFS result per (graph structure,
/// ordered (u, v) start pair).
struct ShrinkKey {
  GraphFingerprint fp;
  graph::Node u = 0;
  graph::Node v = 0;

  friend bool operator==(const ShrinkKey&, const ShrinkKey&) = default;
};

struct ShrinkKeyHash {
  [[nodiscard]] std::size_t operator()(const ShrinkKey& k) const noexcept {
    std::uint64_t h = FingerprintHash{}(k.fp);
    h ^= (static_cast<std::uint64_t>(k.u) << 32 | k.v) *
         0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(h ^ (h >> 29));
  }
};

/// Thread-safe memoizing store for the three artifact kinds. Share one
/// instance across every sweep touching the same graphs (the default
/// entry points below use a process-global instance).
class ArtifactCache {
 public:
  explicit ArtifactCache(const CacheConfig& config = {});

  /// View-equivalence partition of g, computed at most once per
  /// structural fingerprint. The overloads taking a precomputed
  /// fingerprint skip the O(n+m) re-hash — resolve fingerprint(g) once
  /// per graph when a sweep kernel looks artifacts up per case.
  [[nodiscard]] std::shared_ptr<const views::ViewClasses> view_classes(
      const graph::Graph& g);
  [[nodiscard]] std::shared_ptr<const views::ViewClasses> view_classes(
      const graph::Graph& g, const GraphFingerprint& fp);

  /// Cache-aware face of views::view_classes_batch (ISSUE 8): refines
  /// many graphs at once, fanning contiguous chunks onto `pool`
  /// (nullptr: the process default) while every graph still resolves
  /// through both tiers — memory hits and disk read-throughs skip the
  /// refiner entirely, so a warm store keeps its zero-recompute
  /// invariant, and actual computes land on the pool workers' reusable
  /// worklist arenas. Results come back in input order; deterministic
  /// regardless of schedule or cache state.
  [[nodiscard]] std::vector<std::shared_ptr<const views::ViewClasses>>
  view_classes_batch(std::span<const graph::Graph* const> graphs,
                     support::ThreadPool* pool = nullptr);

  /// Quotient of g by view equivalence; resolves the partition through
  /// the view-classes store (reusing one fingerprint for both), so a
  /// quotient miss warms both.
  [[nodiscard]] std::shared_ptr<const views::QuotientGraph> quotient(
      const graph::Graph& g);
  [[nodiscard]] std::shared_ptr<const views::QuotientGraph> quotient(
      const graph::Graph& g, const GraphFingerprint& fp);

  /// Corpus-verified UXS for size n (uxs::corpus_verified_uxs), keyed
  /// by n.
  [[nodiscard]] std::shared_ptr<const uxs::Uxs> uxs(std::uint32_t n);

  /// Shrink pair-BFS result for (u, v) on g (views::shrink_with_witness,
  /// O(n^2 * max_degree)), keyed by (fingerprint, u, v) so repeated
  /// queries for the same pair — across experiment kernels and scales —
  /// run the product BFS once.
  [[nodiscard]] std::shared_ptr<const views::ShrinkResult> shrink(
      const graph::Graph& g, graph::Node u, graph::Node v);
  [[nodiscard]] std::shared_ptr<const views::ShrinkResult> shrink(
      const graph::Graph& g, const GraphFingerprint& fp, graph::Node u,
      graph::Node v);

  /// Batched all-pairs Shrink table of g (views::shrink_all_pairs),
  /// keyed by fingerprint alone — ONE artifact per graph replacing n^2
  /// tiny per-pair entries on the census hot path. Same two-tier
  /// behavior as the other per-graph artifacts.
  [[nodiscard]] std::shared_ptr<const views::AllPairsShrink>
  all_pairs_shrink(const graph::Graph& g);
  [[nodiscard]] std::shared_ptr<const views::AllPairsShrink>
  all_pairs_shrink(const graph::Graph& g, const GraphFingerprint& fp);

  [[nodiscard]] CacheStats stats() const;
  void clear();
  [[nodiscard]] const CacheConfig& config() const noexcept {
    return config_;
  }
  /// The persistent tier, or nullptr when memory-only.
  [[nodiscard]] store::DiskStore* disk() const noexcept {
    return config_.disk.get();
  }

  /// Disk-store key strings (filename-safe): the fingerprint for
  /// per-graph artifacts, "n<k>" for UXS sizes, fingerprint + pair for
  /// Shrink. Built via std::string — no fixed-width buffer, so no key
  /// component can ever be truncated into a colliding prefix (public so
  /// tests can pin that property on adversarially wide keys).
  [[nodiscard]] static std::string disk_key(const GraphFingerprint& fp);
  [[nodiscard]] static std::string disk_key(const ShrinkKey& key);

 private:

  CacheConfig config_;
  ShardedLruStore<GraphFingerprint, views::ViewClasses, FingerprintHash>
      view_classes_;
  ShardedLruStore<GraphFingerprint, views::QuotientGraph, FingerprintHash>
      quotients_;
  ShardedLruStore<std::uint32_t, uxs::Uxs> uxs_;
  ShardedLruStore<ShrinkKey, views::ShrinkResult, ShrinkKeyHash> shrink_;
  ShardedLruStore<GraphFingerprint, views::AllPairsShrink, FingerprintHash>
      all_pairs_shrink_;
};

/// Process-global cache used when no explicit cache is supplied.
/// Knobs (read once, at first use): RDV_CACHE_SHARDS,
/// RDV_CACHE_CAPACITY (entries per shard), RDV_CACHE_BYTES (resident
/// payload bytes per store, split across shards; 0/unset = unbounded),
/// RDV_CACHE_DISABLE=1; RDV_STORE_DIR attaches the persistent disk
/// tier (RDV_STORE_SALT overrides its build salt, RDV_STORE_READONLY
/// serves hits without writing).
[[nodiscard]] ArtifactCache& global_cache();

/// Typed entry points: resolve through `cache`, or through
/// global_cache() when cache is nullptr.
[[nodiscard]] std::shared_ptr<const views::ViewClasses> cached_view_classes(
    const graph::Graph& g, ArtifactCache* cache = nullptr);

/// All symmetric pairs (u, v) with u < v, with the partition resolved
/// through the artifact cache instead of recomputed per call (ISSUE 8
/// satellite: views::symmetric_pairs(g) refines from scratch every
/// time — fine inside views, wasteful anywhere a cache is in reach).
[[nodiscard]] std::vector<std::pair<graph::Node, graph::Node>>
cached_symmetric_pairs(const graph::Graph& g, ArtifactCache* cache = nullptr);
[[nodiscard]] std::shared_ptr<const views::QuotientGraph> cached_quotient(
    const graph::Graph& g, ArtifactCache* cache = nullptr);
[[nodiscard]] std::shared_ptr<const uxs::Uxs> cached_uxs(
    std::uint32_t n, ArtifactCache* cache = nullptr);
[[nodiscard]] std::shared_ptr<const views::ShrinkResult> cached_shrink(
    const graph::Graph& g, graph::Node u, graph::Node v,
    ArtifactCache* cache = nullptr);
[[nodiscard]] std::shared_ptr<const views::AllPairsShrink>
cached_all_pairs_shrink(const graph::Graph& g, ArtifactCache* cache = nullptr);

/// uxs::UxsProvider resolving through `cache` (nullptr: the global
/// cache) — the canonical provider for the algorithms in core/
/// (deterministic, so both anonymous agents derive identical
/// sequences). The returned provider holds the raw pointer: a non-null
/// `cache` must outlive every copy of the provider (pass nullptr when
/// stashing it in long-lived options).
[[nodiscard]] uxs::UxsProvider cached_uxs_provider(
    ArtifactCache* cache = nullptr);

}  // namespace rdv::cache
