#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "cache/fingerprint.hpp"
#include "cache/sharded_store.hpp"
#include "graph/graph.hpp"
#include "uxs/uxs.hpp"
#include "views/quotient.hpp"
#include "views/refinement.hpp"

/// Concurrent per-graph artifact cache (ISSUE 2 tentpole).
///
/// Sweep workloads evaluate thousands of (u, v, delay) cases over a
/// handful of distinct graphs; the expensive per-GRAPH artifacts —
/// ViewClasses partition refinement (O(n^2 m)), quotient graphs, and
/// corpus-verified UXS construction — are pure functions of the graph
/// structure (resp. the size n), so they are computed once per distinct
/// fingerprint and shared as shared_ptr<const T> across all threads of
/// all sweeps. Determinism contract: every artifact is a deterministic
/// function of its key, so sweep output is byte-identical with the
/// cache enabled, disabled, or at any thread count — the cache can only
/// change WHEN artifacts are computed, never their values.
namespace rdv::cache {

struct CacheConfig {
  /// Concurrency stripes per artifact store (>= 1).
  std::size_t shards = 8;
  /// LRU capacity per shard per store, in entries (>= 1); long sweeps
  /// over streams of distinct graphs stay bounded at
  /// shards * capacity_per_shard entries per artifact kind.
  std::size_t capacity_per_shard = 64;
  /// When false, nothing is retained and every request recomputes —
  /// the reference configuration for determinism tests.
  bool enabled = true;
};

struct CacheStats {
  StoreStats view_classes;
  StoreStats quotients;
  StoreStats uxs;

  [[nodiscard]] std::uint64_t total_hits() const {
    return view_classes.hits + quotients.hits + uxs.hits;
  }
  [[nodiscard]] std::uint64_t total_misses() const {
    return view_classes.misses + quotients.misses + uxs.misses;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    return view_classes.bytes + quotients.bytes + uxs.bytes;
  }
};

/// Thread-safe memoizing store for the three artifact kinds. Share one
/// instance across every sweep touching the same graphs (the default
/// entry points below use a process-global instance).
class ArtifactCache {
 public:
  explicit ArtifactCache(const CacheConfig& config = {});

  /// View-equivalence partition of g, computed at most once per
  /// structural fingerprint. The overloads taking a precomputed
  /// fingerprint skip the O(n+m) re-hash — resolve fingerprint(g) once
  /// per graph when a sweep kernel looks artifacts up per case.
  [[nodiscard]] std::shared_ptr<const views::ViewClasses> view_classes(
      const graph::Graph& g);
  [[nodiscard]] std::shared_ptr<const views::ViewClasses> view_classes(
      const graph::Graph& g, const GraphFingerprint& fp);

  /// Quotient of g by view equivalence; resolves the partition through
  /// the view-classes store (reusing one fingerprint for both), so a
  /// quotient miss warms both.
  [[nodiscard]] std::shared_ptr<const views::QuotientGraph> quotient(
      const graph::Graph& g);
  [[nodiscard]] std::shared_ptr<const views::QuotientGraph> quotient(
      const graph::Graph& g, const GraphFingerprint& fp);

  /// Corpus-verified UXS for size n (uxs::corpus_verified_uxs), keyed
  /// by n.
  [[nodiscard]] std::shared_ptr<const uxs::Uxs> uxs(std::uint32_t n);

  [[nodiscard]] CacheStats stats() const;
  void clear();
  [[nodiscard]] const CacheConfig& config() const noexcept {
    return config_;
  }

 private:
  CacheConfig config_;
  ShardedLruStore<GraphFingerprint, views::ViewClasses, FingerprintHash>
      view_classes_;
  ShardedLruStore<GraphFingerprint, views::QuotientGraph, FingerprintHash>
      quotients_;
  ShardedLruStore<std::uint32_t, uxs::Uxs> uxs_;
};

/// Process-global cache used when no explicit cache is supplied.
/// Knobs (read once, at first use): RDV_CACHE_SHARDS,
/// RDV_CACHE_CAPACITY (entries per shard), RDV_CACHE_DISABLE=1.
[[nodiscard]] ArtifactCache& global_cache();

/// Typed entry points: resolve through `cache`, or through
/// global_cache() when cache is nullptr.
[[nodiscard]] std::shared_ptr<const views::ViewClasses> cached_view_classes(
    const graph::Graph& g, ArtifactCache* cache = nullptr);
[[nodiscard]] std::shared_ptr<const views::QuotientGraph> cached_quotient(
    const graph::Graph& g, ArtifactCache* cache = nullptr);
[[nodiscard]] std::shared_ptr<const uxs::Uxs> cached_uxs(
    std::uint32_t n, ArtifactCache* cache = nullptr);

/// uxs::UxsProvider resolving through `cache` (nullptr: the global
/// cache) — the canonical provider for the algorithms in core/
/// (deterministic, so both anonymous agents derive identical
/// sequences). The returned provider holds the raw pointer: a non-null
/// `cache` must outlive every copy of the provider (pass nullptr when
/// stashing it in long-lived options).
[[nodiscard]] uxs::UxsProvider cached_uxs_provider(
    ArtifactCache* cache = nullptr);

}  // namespace rdv::cache
