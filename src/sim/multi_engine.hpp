#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/topology.hpp"
#include "sim/agent.hpp"
#include "sim/trace.hpp"

/// k-agent synchronous engine — the substrate for the paper's
/// "gathering" generalization (Section 1 cites [25, 37, 43]): several
/// anonymous agents with adversarial starting rounds; gathering is all
/// of them at one node in one round. The two-agent engine
/// (sim/engine.hpp) is a thin wrapper over this runner.
namespace rdv::sim {

struct AgentSpec {
  AgentProgram program;
  graph::Node start = 0;
  std::uint64_t start_round = 0;
};

struct MultiRunConfig {
  std::uint64_t max_rounds = 1'000'000;
  std::uint32_t max_zero_wait_spin = 1u << 20;
  bool record_trace = false;
  std::size_t trace_limit = 4096;
  /// Stop as soon as the given pair (indices into the spec vector) has
  /// met; -1 disables. Used by the pairwise wrapper.
  int stop_on_pair_a = -1;
  int stop_on_pair_b = -1;
};

inline constexpr std::uint64_t kNever = static_cast<std::uint64_t>(-1);

struct MultiRunResult {
  /// All agents present at the same node in the same round.
  bool gathered = false;
  std::uint64_t gather_round_absolute = 0;
  /// Rounds from the LAST agent's start to the gathering.
  std::uint64_t gather_from_last_start = 0;
  /// first_meeting[i * k + j] (i < j): absolute round agents i and j
  /// first shared a node (both present), or kNever.
  std::vector<std::uint64_t> first_meeting;
  std::uint64_t rounds_simulated = 0;
  std::uint64_t edge_crossings = 0;
  std::vector<std::uint64_t> moves;
  std::vector<graph::Node> final_pos;
  bool programs_finished = false;
  std::string error;
  Trace trace;

  [[nodiscard]] bool ok() const { return error.empty(); }
  [[nodiscard]] std::uint64_t meeting_of(std::size_t i, std::size_t j,
                                         std::size_t k) const {
    if (i > j) std::swap(i, j);
    return first_meeting[i * k + j];
  }
};

/// Runs all agents; terminates on gathering, on the configured pair
/// meeting, on every program finishing, or at the round cap.
[[nodiscard]] MultiRunResult run_multi(const graph::ITopology& g,
                                       const std::vector<AgentSpec>& agents,
                                       const MultiRunConfig& config = {});

}  // namespace rdv::sim
