#include "sim/engine.hpp"

#include "sim/multi_engine.hpp"

namespace rdv::sim {

// The two-agent engine is the k = 2 specialization of run_multi with a
// stop-on-first-meeting policy; all Section 1 semantics (meeting =
// same node same round, unnoticed crossings, time from the later
// agent's start) live in MultiRunner.
RunResult run_pair(const graph::ITopology& g,
                   const AgentProgram& program_earlier,
                   const AgentProgram& program_later, graph::Node start_earlier,
                   graph::Node start_later, std::uint64_t delay,
                   const RunConfig& config) {
  MultiRunConfig multi_config;
  multi_config.max_rounds = config.max_rounds;
  multi_config.max_zero_wait_spin = config.max_zero_wait_spin;
  multi_config.record_trace = config.record_trace;
  multi_config.trace_limit = config.trace_limit;
  multi_config.stop_on_pair_a = 0;
  multi_config.stop_on_pair_b = 1;

  std::vector<AgentSpec> specs;
  specs.push_back(AgentSpec{program_earlier, start_earlier, 0});
  specs.push_back(AgentSpec{program_later, start_later, delay});
  MultiRunResult multi = run_multi(g, specs, multi_config);

  RunResult out;
  const std::uint64_t meeting = multi.meeting_of(0, 1, 2);
  out.met = meeting != kNever;
  if (out.met) {
    out.meet_round_absolute = meeting;
    out.meet_from_later_start = meeting - delay;
  }
  out.rounds_simulated = multi.rounds_simulated;
  out.edge_crossings = multi.edge_crossings;
  out.moves = {multi.moves[0], multi.moves[1]};
  out.final_pos = {multi.final_pos[0], multi.final_pos[1]};
  out.programs_finished = multi.programs_finished;
  out.error = std::move(multi.error);
  out.trace = std::move(multi.trace);
  return out;
}

RunResult run_anonymous(const graph::ITopology& g, const AgentProgram& program,
                        graph::Node start_earlier, graph::Node start_later,
                        std::uint64_t delay, const RunConfig& config) {
  return run_pair(g, program, program, start_earlier, start_later, delay,
                  config);
}

}  // namespace rdv::sim
