#include "sim/multi_engine.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "support/saturating.hpp"

namespace rdv::sim {
namespace {

using graph::ITopology;
using graph::Node;
using graph::Port;
using support::kRoundInfinity;
using support::sat_add;

struct AgentState {
  Mailbox mailbox;
  std::optional<Proc> proc;
  Node pos = graph::kNoNode;
  Node start_node = graph::kNoNode;
  std::uint64_t start_round = 0;
  std::uint64_t busy_until = kRoundInfinity;
  Node move_target = graph::kNoNode;
  Port move_port = 0;
  Port move_entry = 0;
  bool started = false;
  bool finished = false;
  bool action_is_move = false;
  bool has_action = false;
  std::uint64_t moves = 0;
  std::uint32_t zero_wait_spin = 0;
};

class MultiRunner {
 public:
  MultiRunner(const ITopology& g, const MultiRunConfig& config,
              std::size_t k)
      : g_(g), config_(config), agents_(k) {
    if (config.record_trace) result_.trace.enable(config.trace_limit);
    result_.first_meeting.assign(k * k, kNever);
    result_.moves.assign(k, 0);
    result_.final_pos.assign(k, graph::kNoNode);
  }

  MultiRunResult run(const std::vector<AgentSpec>& specs) {
    const std::size_t k = agents_.size();
    for (std::size_t i = 0; i < k; ++i) {
      agents_[i].start_node = specs[i].start;
      agents_[i].start_round = specs[i].start_round;
    }

    std::uint64_t round = 0;
    for (;;) {
      // Spawn agents whose starting round arrived.
      for (std::size_t i = 0; i < k; ++i) {
        AgentState& a = agents_[i];
        if (!a.started && a.start_round == round) {
          a.started = true;
          a.pos = a.start_node;
          result_.trace.record(round, static_cast<std::uint8_t>(i), a.pos,
                               kNoPort);
          const Observation initial{g_.degree(a.pos), std::nullopt, 0};
          a.mailbox.set_initial(initial);
          a.proc.emplace(specs[i].program(a.mailbox, initial));
          a.proc->start();
          collect(i, round);
          if (!result_.ok()) return finish(round);
        }
      }

      // Meeting bookkeeping + termination checks.
      bool all_present = true;
      bool all_same = true;
      for (std::size_t i = 0; i < k; ++i) {
        if (!agents_[i].started) {
          all_present = false;
          break;
        }
        if (agents_[i].pos != agents_[0].pos) all_same = false;
      }
      bool stop_pair_met = false;
      for (std::size_t i = 0; i < k; ++i) {
        if (!agents_[i].started) continue;
        for (std::size_t j = i + 1; j < k; ++j) {
          if (!agents_[j].started) continue;
          if (agents_[i].pos == agents_[j].pos) {
            auto& cell = result_.first_meeting[i * k + j];
            if (cell == kNever) cell = round;
            if (static_cast<int>(i) == config_.stop_on_pair_a &&
                static_cast<int>(j) == config_.stop_on_pair_b) {
              stop_pair_met = true;
            }
          }
        }
      }
      if (all_present && all_same) {
        result_.gathered = true;
        result_.gather_round_absolute = round;
        std::uint64_t last_start = 0;
        for (const AgentState& a : agents_) {
          last_start = std::max(last_start, a.start_round);
        }
        result_.gather_from_last_start = round - last_start;
        return finish(round);
      }
      if (stop_pair_met) return finish(round);

      bool everything_done = true;
      for (const AgentState& a : agents_) {
        if (!a.started || !a.finished) {
          everything_done = false;
          break;
        }
      }
      if (everything_done) {
        result_.programs_finished = true;
        return finish(round);
      }

      // Next event.
      std::uint64_t next = kRoundInfinity;
      for (const AgentState& a : agents_) {
        if (!a.started) {
          next = std::min(next, a.start_round);
        } else if (!a.finished && a.has_action) {
          next = std::min(next, a.busy_until);
        }
      }
      if (next > config_.max_rounds || next == kRoundInfinity) {
        return finish(config_.max_rounds);
      }
      round = next;

      // Apply move completions, then detect pairwise swaps, then
      // resume.
      std::vector<Node> old_pos(k);
      std::vector<bool> moved(k, false);
      for (std::size_t i = 0; i < k; ++i) old_pos[i] = agents_[i].pos;
      for (std::size_t i = 0; i < k; ++i) {
        AgentState& a = agents_[i];
        if (!a.started || a.finished || !a.has_action ||
            a.busy_until != round) {
          continue;
        }
        if (a.action_is_move) {
          a.pos = a.move_target;
          ++a.moves;
          moved[i] = true;
          result_.trace.record(round, static_cast<std::uint8_t>(i), a.pos,
                               a.move_port);
        }
      }
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = i + 1; j < k; ++j) {
          if (moved[i] && moved[j] && agents_[i].pos == old_pos[j] &&
              agents_[j].pos == old_pos[i] &&
              agents_[i].pos != agents_[j].pos) {
            ++result_.edge_crossings;
          }
        }
      }
      for (std::size_t i = 0; i < k; ++i) {
        AgentState& a = agents_[i];
        if (!a.started || a.finished || !a.has_action ||
            a.busy_until != round) {
          continue;
        }
        a.has_action = false;
        Observation obs;
        obs.degree = g_.degree(a.pos);
        obs.entry_port = a.action_is_move
                             ? std::optional<Port>(a.move_entry)
                             : std::nullopt;
        obs.clock = round - a.start_round;
        a.mailbox.deliver_and_resume(obs);
        collect(i, round);
        if (!result_.ok()) return finish(round);
      }
    }
  }

 private:
  void collect(std::size_t i, std::uint64_t round) {
    AgentState& a = agents_[i];
    for (;;) {
      if (a.proc->done()) {
        try {
          a.proc->rethrow_if_failed();
        } catch (const std::exception& e) {
          std::ostringstream err;
          err << "agent " << i << " threw: " << e.what();
          result_.error = err.str();
        }
        a.finished = true;
        a.busy_until = kRoundInfinity;
        return;
      }
      if (!a.mailbox.has_pending()) {
        result_.error = "agent suspended without an action";
        a.finished = true;
        return;
      }
      const Action action = a.mailbox.take_action();
      if (action.kind == Action::Kind::kMove) {
        if (action.port >= g_.degree(a.pos)) {
          std::ostringstream err;
          err << "agent " << i << " used port " << action.port
              << " at a degree-" << g_.degree(a.pos) << " node";
          result_.error = err.str();
          a.finished = true;
          return;
        }
        const graph::Step s = g_.step(a.pos, action.port);
        a.move_target = s.to;
        a.move_port = action.port;
        a.move_entry = s.entry_port;
        a.action_is_move = true;
        a.has_action = true;
        a.busy_until = round + 1;
        a.zero_wait_spin = 0;
        return;
      }
      if (action.wait_rounds == 0) {
        if (++a.zero_wait_spin > config_.max_zero_wait_spin) {
          result_.error = "agent spun on zero-length waits";
          a.finished = true;
          return;
        }
        const Observation obs{g_.degree(a.pos), std::nullopt,
                              round - a.start_round};
        a.mailbox.deliver_and_resume(obs);
        continue;
      }
      a.action_is_move = false;
      a.has_action = true;
      a.busy_until = sat_add(round, action.wait_rounds);
      a.zero_wait_spin = 0;
      return;
    }
  }

  MultiRunResult finish(std::uint64_t rounds) {
    result_.rounds_simulated = rounds;
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      result_.moves[i] = agents_[i].moves;
      result_.final_pos[i] = agents_[i].pos;
    }
    return std::move(result_);
  }

  const ITopology& g_;
  const MultiRunConfig& config_;
  MultiRunResult result_;
  std::vector<AgentState> agents_;
};

}  // namespace

MultiRunResult run_multi(const ITopology& g,
                         const std::vector<AgentSpec>& agents,
                         const MultiRunConfig& config) {
  // The meeting scan only visits ordered pairs (i < j); normalize the
  // stop pair so callers may pass it in either order.
  MultiRunConfig normalized = config;
  if (normalized.stop_on_pair_a > normalized.stop_on_pair_b) {
    std::swap(normalized.stop_on_pair_a, normalized.stop_on_pair_b);
  }
  MultiRunner runner(g, normalized, agents.size());
  return runner.run(agents);
}

}  // namespace rdv::sim
