#include "sim/agent.hpp"

// The agent machinery is header-only (templates/awaiters); this TU
// exists to compile the header standalone and host shared static
// checks.
namespace rdv::sim {

static_assert(sizeof(Action) <= 16, "Action should stay small");

}  // namespace rdv::sim
