#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <utility>

#include "graph/topology.hpp"

/// Coroutine-based agent API.
///
/// Algorithms are written as straight-line C++20 coroutines mirroring
/// the paper's pseudocode:
///
///   Proc my_algorithm(Mailbox& mb, Observation start) {
///     Observation o = co_await mb.move(0);   // take port 0
///     o = co_await mb.wait(5);               // stay put 5 rounds
///     co_await some_subprocedure(mb, o);     // procedures compose
///   }
///
/// The engine resumes the coroutine chain once per completed action and
/// delivers the resulting Observation — exactly the model of Section 1:
/// per round an agent either stays or moves by a chosen port, and on
/// arrival sees the degree and the entry port.
namespace rdv::sim {

/// What an agent perceives at a node (Section 1). Agents never see node
/// identities.
struct Observation {
  graph::Port degree = 0;  ///< Degree of the current node.
  /// Port by which the node was entered; nullopt at the start node and
  /// after waiting.
  std::optional<graph::Port> entry_port;
  /// Agent-local clock: rounds since this agent's start.
  std::uint64_t clock = 0;
};

/// One decision: move through a port, or stay put for `rounds` rounds
/// (the engine fast-forwards multi-round waits).
struct Action {
  enum class Kind : std::uint8_t { kMove, kWait };
  Kind kind = Kind::kWait;
  graph::Port port = 0;          ///< For kMove.
  std::uint64_t wait_rounds = 0; ///< For kWait; may be huge (saturating).

  static Action move(graph::Port p) {
    return Action{Kind::kMove, p, 0};
  }
  static Action wait(std::uint64_t rounds) {
    return Action{Kind::kWait, 0, rounds};
  }
};

class Mailbox;

/// A composable agent procedure (a coroutine task). Procedures suspend
/// whenever they act through the Mailbox and may co_await
/// sub-procedures; the engine always resumes the innermost suspended
/// frame. Move-only; destroying a Proc destroys its whole frame chain.
class [[nodiscard]] Proc {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;  // parent frame, if any
    std::exception_ptr error;

    Proc get_return_object() {
      return Proc(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        // Hand control back to the awaiting parent; for the root, back
        // to the engine's resume() call.
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  Proc() = default;
  explicit Proc(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Proc(Proc&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Proc& operator=(Proc&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;
  ~Proc() { destroy(); }

  /// Awaiting a Proc runs it to completion as a sub-procedure.
  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;  // symmetric transfer into the child
  }
  void await_resume() { rethrow_if_failed(); }

  /// Engine side: kick off / query the root procedure.
  void start() {
    assert(handle_ && !handle_.done());
    handle_.resume();
  }
  [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Per-agent communication cell between the engine and the coroutine
/// chain. The innermost frame that acts registers itself as the leaf;
/// the engine consumes the pending action, computes the observation and
/// resumes the leaf.
class Mailbox {
 public:
  /// co_await mb.move(p): traverse port p this round; resumes with the
  /// arrival observation.
  [[nodiscard]] auto move(graph::Port p) {
    return ActionAwaiter{this, Action::move(p)};
  }
  /// co_await mb.wait(k): stay put for k rounds (k may be 0 — a no-op
  /// round-wise; the engine re-resumes immediately but guards against
  /// unbounded zero-wait spinning).
  [[nodiscard]] auto wait(std::uint64_t rounds) {
    return ActionAwaiter{this, Action::wait(rounds)};
  }

  /// Last delivered observation (also the initial one).
  [[nodiscard]] const Observation& last() const noexcept { return last_; }
  /// Agent-local clock of the last observation.
  [[nodiscard]] std::uint64_t clock() const noexcept { return last_.clock; }

  // --- engine side ---
  [[nodiscard]] bool has_pending() const noexcept { return has_pending_; }
  [[nodiscard]] Action take_action() {
    assert(has_pending_);
    has_pending_ = false;
    return pending_;
  }
  void deliver_and_resume(const Observation& obs) {
    last_ = obs;
    auto leaf = std::exchange(leaf_, nullptr);
    assert(leaf);
    leaf.resume();
  }
  void set_initial(const Observation& obs) { last_ = obs; }

 private:
  struct ActionAwaiter {
    Mailbox* mailbox;
    Action action;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      mailbox->pending_ = action;
      mailbox->has_pending_ = true;
      mailbox->leaf_ = h;
    }
    Observation await_resume() const noexcept { return mailbox->last_; }
  };

  Action pending_{};
  bool has_pending_ = false;
  Observation last_{};
  std::coroutine_handle<> leaf_;
};

/// An anonymous-agent algorithm: given the agent's mailbox and its
/// initial observation, yields the procedure to run. Both agents of a
/// run execute the same program (the model's anonymity); labeled
/// variants for ablations pass different programs explicitly.
using AgentProgram = std::function<Proc(Mailbox&, Observation)>;

}  // namespace rdv::sim
