#include "sim/trace.hpp"

#include <sstream>

namespace rdv::sim {

std::string Trace::to_string() const {
  std::ostringstream out;
  for (const TraceEvent& e : events_) {
    out << "round " << e.round << ": agent " << int(e.agent);
    if (e.via_port == kNoPort) {
      out << " appears at node " << e.node;
    } else {
      out << " moves via port " << e.via_port << " to node " << e.node;
    }
    out << '\n';
  }
  if (truncated_) out << "... (trace truncated)\n";
  return out.str();
}

}  // namespace rdv::sim
