#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "graph/topology.hpp"
#include "sim/agent.hpp"
#include "sim/trace.hpp"

/// Synchronous two-agent rendezvous engine (the model of Section 1).
///
/// The earlier agent appears at its start node at absolute round 0, the
/// later agent at absolute round `delay`; each agent's local clock
/// starts at its own appearance. Rendezvous happens when both agents
/// occupy the same node in the same round; agents crossing the same
/// edge in opposite directions do NOT meet (but the engine counts such
/// crossings for diagnostics). The reported rendezvous time is counted
/// from the later agent's start, the paper's cost measure.
namespace rdv::sim {

struct RunConfig {
  /// Hard cap on absolute rounds; runs that do not meet by the cap are
  /// reported as not met. (Budgets inside algorithms saturate, so the
  /// cap is the only thing bounding a run on an infeasible STIC.)
  std::uint64_t max_rounds = 1'000'000;
  /// Abort threshold for agents issuing zero-round waits back-to-back.
  std::uint32_t max_zero_wait_spin = 1u << 20;
  /// Record a bounded move trace for diagnostics.
  bool record_trace = false;
  std::size_t trace_limit = 4096;
};

struct RunResult {
  bool met = false;
  /// Absolute round of the meeting (valid when met).
  std::uint64_t meet_round_absolute = 0;
  /// Rounds from the later agent's start to the meeting — the paper's
  /// rendezvous time (valid when met).
  std::uint64_t meet_from_later_start = 0;
  /// Absolute rounds actually simulated.
  std::uint64_t rounds_simulated = 0;
  /// Times the agents swapped positions through one edge in one round.
  std::uint64_t edge_crossings = 0;
  std::array<std::uint64_t, 2> moves{0, 0};
  std::array<graph::Node, 2> final_pos{graph::kNoNode, graph::kNoNode};
  /// Both agent programs ran to completion without meeting (they halt
  /// in place forever; a meet can still have happened earlier).
  bool programs_finished = false;
  /// Diagnostics: nonempty if a program misbehaved (threw, spun on
  /// zero-length waits, or used an out-of-range port).
  std::string error;
  Trace trace;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Runs `program_earlier` from `start_earlier` (appearing at round 0)
/// and `program_later` from `start_later` (appearing at round `delay`).
/// For the anonymous model pass the same program twice (see
/// run_anonymous).
[[nodiscard]] RunResult run_pair(const graph::ITopology& g,
                                 const AgentProgram& program_earlier,
                                 const AgentProgram& program_later,
                                 graph::Node start_earlier,
                                 graph::Node start_later,
                                 std::uint64_t delay,
                                 const RunConfig& config = {});

/// The paper's setting: both agents execute the same deterministic
/// program; the STIC is [(start_earlier, start_later), delay].
[[nodiscard]] RunResult run_anonymous(const graph::ITopology& g,
                                      const AgentProgram& program,
                                      graph::Node start_earlier,
                                      graph::Node start_later,
                                      std::uint64_t delay,
                                      const RunConfig& config = {});

}  // namespace rdv::sim
