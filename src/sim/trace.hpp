#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/topology.hpp"

/// Bounded diagnostic traces of agent movement.
namespace rdv::sim {

struct TraceEvent {
  std::uint64_t round;   ///< Absolute round the event takes effect.
  std::uint8_t agent;    ///< 0 = earlier, 1 = later.
  graph::Node node;      ///< Node occupied from this round on.
  graph::Port via_port;  ///< Outgoing port taken (kNoPort for spawn).
};

inline constexpr graph::Port kNoPort = static_cast<graph::Port>(-1);

class Trace {
 public:
  void enable(std::size_t limit) {
    enabled_ = true;
    limit_ = limit;
  }
  void record(std::uint64_t round, std::uint8_t agent, graph::Node node,
              graph::Port via_port) {
    if (!enabled_) return;
    if (events_.size() < limit_) {
      events_.push_back(TraceEvent{round, agent, node, via_port});
    } else {
      truncated_ = true;
    }
  }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool truncated() const { return truncated_; }

  /// Multi-line human-readable rendering (for examples).
  [[nodiscard]] std::string to_string() const;

 private:
  bool enabled_ = false;
  bool truncated_ = false;
  std::size_t limit_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace rdv::sim
