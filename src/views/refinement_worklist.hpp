#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "support/thread_pool.hpp"
#include "views/refinement.hpp"

/// Splitter-worklist partition refinement (ISSUE 8 tentpole).
///
/// The naive engine in refinement.cpp re-hashes every node's full
/// signature every round — O(n^2 * m) on graphs whose partition takes
/// many rounds to stabilize, and the census bottleneck once Shrink went
/// batched. This engine is the classic smaller-half worklist scheme
/// (Hopcroft / Paige–Tarjan, as used by DFA-minimization and
/// bisimulation engines): blocks are contiguous index ranges over one
/// flat node permutation, the partition is seeded with the full
/// degree/port-signature classes, and each popped block is used as a
/// splitter against the port-labeled reverse adjacency (the same flat
/// (node, port)-keyed CSR idiom as shrink_all_pairs). When a block
/// splits, the SMALLER half becomes the new block and is the only one
/// (re-)queued, so every node changes queued-block at most O(log n)
/// times and the total splitter work is O(m log n).
///
/// Contract: the stable partition is the same coarsest one the naive
/// engine computes, and class ids are canonicalized the same way
/// (dense, first occurrence in node order), so `class_of` and
/// `class_count` are byte-identical to the oracle — fingerprints, the
/// kViewClasses codec, cached artifacts, and every quotient/UXS
/// consumer are untouched. `rounds` is the engine's own work measure
/// (worklist waves; see ViewClasses::rounds).
namespace rdv::views {

/// Reusable refinement engine: all block/worklist/reverse-CSR scratch
/// buffers live in the instance and are recycled across refine() calls,
/// so batch workloads (census sweeps, fuzz loops) do no per-graph
/// allocation churn once the high-water graph size has been seen.
/// Not thread-safe; use one instance per thread (view_classes_batch
/// keeps one per pool worker).
class WorklistRefiner {
 public:
  /// Computes the stable view-equivalence partition of g.
  [[nodiscard]] ViewClasses refine(const graph::Graph& g);

 private:
  /// One block: the contiguous range nodes_[begin, end); the marked
  /// prefix nodes_[begin, begin + marked) holds the members hit by the
  /// current splitter letter. `gen` is the worklist wave that queued
  /// the block (seed blocks are wave 1) — max over popped blocks is
  /// the reported `rounds`.
  struct Block {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::uint32_t marked = 0;
    std::uint32_t gen = 0;
  };

  // Flat partition state: nodes_ is a permutation of 0..n-1 grouped by
  // block, pos_ its inverse, block_of_[v] the block id owning v.
  std::vector<std::uint32_t> nodes_;
  std::vector<std::uint32_t> pos_;
  std::vector<std::uint32_t> block_of_;
  std::vector<Block> blocks_;
  /// FIFO worklist of block ids; every block is queued exactly once
  /// (at creation), so a plain vector + head cursor suffices.
  std::vector<std::uint32_t> queue_;
  // Reverse adjacency CSR keyed by (node, port), shrink_all_pairs
  // style: rev_nodes_[rev_off_[w * maxdeg + p] ..] = all v with
  // succ(v, p) == w.
  std::vector<std::uint32_t> rev_off_;
  std::vector<graph::Node> rev_nodes_;
  /// Splitter scratch: the letter's preimage snapshot and the blocks it
  /// marked.
  std::vector<graph::Node> preimage_;
  std::vector<std::uint32_t> touched_;
  /// Canonical relabel table (block id -> dense first-occurrence id).
  std::vector<std::uint32_t> canon_;
};

/// Worklist refinement through a per-thread reusable WorklistRefiner
/// (the production engine behind compute_view_classes).
[[nodiscard]] ViewClasses compute_view_classes_worklist(const graph::Graph& g);

/// Batched refinement: refines every graph in `graphs` and returns the
/// partitions in input order. Fans out on `pool` (nullptr: the process
/// default pool) in contiguous chunks through a TaskGroup, one reused
/// per-worker scratch arena serving each chunk — the entry point for
/// census pipelines that refine many graphs before streaming rows.
/// Deterministic: output depends only on the graphs, never on the
/// schedule.
struct ViewClassesBatchOptions {
  support::ThreadPool* pool = nullptr;
  /// Graphs per task; small enough to load-balance a census mixing
  /// n=6 and n=1024 graphs, large enough to amortize task dispatch.
  std::size_t chunk_size = 4;
};
[[nodiscard]] std::vector<ViewClasses> view_classes_batch(
    std::span<const graph::Graph* const> graphs,
    const ViewClassesBatchOptions& options = {});

/// Process counters (cumulative, monotone), shrink.cpp style: the
/// driver bridges them into metrics snapshots as views.refine_* and the
/// CI warm-store invariant asserts refine_worklist_computes == 0 when
/// every partition is served from the store.
[[nodiscard]] std::uint64_t refine_worklist_compute_count();
[[nodiscard]] std::uint64_t refine_split_count();
[[nodiscard]] std::uint64_t refine_worklist_pop_count();

}  // namespace rdv::views
