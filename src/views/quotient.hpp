#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "views/refinement.hpp"

/// Quotient of a graph by view equivalence.
///
/// The quotient is what an anonymous agent can at best learn about its
/// environment (it may have self-loops and parallel arcs, so it is not a
/// `Graph`). Used by analysis and the label ablation (T9).
namespace rdv::views {

struct QuotientArc {
  std::uint32_t to_class;
  graph::Port rev_port;
};

struct QuotientGraph {
  /// arcs[c][p] = where port p leads from class c.
  std::vector<std::vector<QuotientArc>> arcs;
  /// Number of original nodes in each class.
  std::vector<std::uint32_t> multiplicity;

  [[nodiscard]] std::uint32_t class_count() const {
    return static_cast<std::uint32_t>(arcs.size());
  }
};

/// Builds the quotient from a stable partition. Well-defined because
/// same-class nodes have identical (class, reverse-port) port profiles.
[[nodiscard]] QuotientGraph build_quotient(const graph::Graph& g,
                                           const ViewClasses& classes);

}  // namespace rdv::views
