#include "views/refinement.hpp"

#include <algorithm>
#include <atomic>
#include <map>

#include "views/refinement_worklist.hpp"

namespace rdv::views {

using graph::Graph;
using graph::Node;
using graph::Port;

namespace {

std::atomic<std::uint64_t> naive_runs{0};

}  // namespace

std::uint64_t refine_naive_count() {
  return naive_runs.load(std::memory_order_relaxed);
}

ViewClasses compute_view_classes(const Graph& g) {
  return compute_view_classes_worklist(g);
}

ViewClasses compute_view_classes_naive(const Graph& g) {
  naive_runs.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t n = g.size();
  ViewClasses out;
  out.class_of.assign(n, 0);

  // Initial partition: by degree.
  {
    std::map<Port, std::uint32_t> ids;
    for (Node v = 0; v < n; ++v) {
      auto [it, _] = ids.try_emplace(g.degree(v),
                                     static_cast<std::uint32_t>(ids.size()));
      out.class_of[v] = it->second;
    }
    out.class_count = static_cast<std::uint32_t>(ids.size());
  }

  // Refine: the signature of v is its class plus, per port in order, the
  // (neighbor class, reverse port) pair. Iterate to a fixpoint; one
  // extra confirming round is implicit in the "count unchanged" exit.
  using Signature = std::vector<std::uint64_t>;
  for (;;) {
    ++out.rounds;
    std::map<Signature, std::uint32_t> ids;
    std::vector<std::uint32_t> next(n);
    for (Node v = 0; v < n; ++v) {
      Signature sig;
      sig.reserve(1 + g.degree(v));
      sig.push_back(out.class_of[v]);
      for (const graph::HalfEdge& e : g.edges(v)) {
        sig.push_back((static_cast<std::uint64_t>(out.class_of[e.to]) << 32) |
                      e.rev_port);
      }
      auto [it, _] =
          ids.try_emplace(std::move(sig), static_cast<std::uint32_t>(ids.size()));
      next[v] = it->second;
    }
    const auto count = static_cast<std::uint32_t>(ids.size());
    if (count == out.class_count) break;  // partition stable
    out.class_of = std::move(next);
    out.class_count = count;
  }
  return out;
}

bool symmetric(const Graph& g, Node u, Node v) {
  return compute_view_classes(g).symmetric(u, v);
}

std::uint32_t view_distance(const Graph& g, Node u, Node v) {
  // Depth-k view equality is exactly equality after k refinement
  // rounds starting from the degree partition.
  const std::uint32_t n = g.size();
  std::vector<std::uint32_t> classes(n);
  {
    std::map<Port, std::uint32_t> ids;
    for (Node w = 0; w < n; ++w) {
      auto [it, _] = ids.try_emplace(g.degree(w),
                                     static_cast<std::uint32_t>(ids.size()));
      classes[w] = it->second;
    }
  }
  if (classes[u] != classes[v]) return 0;
  std::uint32_t count =
      *std::max_element(classes.begin(), classes.end()) + 1;
  // One signature buffer and one next-classes buffer, reused across
  // every depth: the map copies a key only when the signature is new,
  // so steady-state depths allocate nothing per node.
  using Signature = std::vector<std::uint64_t>;
  Signature sig;
  std::vector<std::uint32_t> next(n);
  for (std::uint32_t depth = 1;; ++depth) {
    std::map<Signature, std::uint32_t> ids;
    for (Node w = 0; w < n; ++w) {
      sig.clear();
      sig.push_back(classes[w]);
      for (const graph::HalfEdge& e : g.edges(w)) {
        sig.push_back((static_cast<std::uint64_t>(classes[e.to]) << 32) |
                      e.rev_port);
      }
      auto [it, _] =
          ids.try_emplace(sig, static_cast<std::uint32_t>(ids.size()));
      next[w] = it->second;
    }
    if (next[u] != next[v]) return depth;
    const auto new_count = static_cast<std::uint32_t>(ids.size());
    if (new_count == count) return kViewsEqual;  // stable: symmetric
    classes.swap(next);
    count = new_count;
  }
}

std::vector<std::pair<Node, Node>> symmetric_pairs(
    const Graph& g, const ViewClasses& classes) {
  std::vector<std::pair<Node, Node>> pairs;
  for (Node u = 0; u < g.size(); ++u) {
    for (Node v = u + 1; v < g.size(); ++v) {
      if (classes.symmetric(u, v)) pairs.emplace_back(u, v);
    }
  }
  return pairs;
}

std::vector<std::pair<Node, Node>> symmetric_pairs(const Graph& g) {
  return symmetric_pairs(g, compute_view_classes(g));
}

}  // namespace rdv::views
