#include "views/shrink.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <queue>

namespace rdv::views {

using graph::Graph;
using graph::Node;
using graph::Port;

namespace {

std::atomic<std::uint64_t> pair_bfs_runs{0};
std::atomic<std::uint64_t> all_pairs_runs{0};

/// Sentinel "no parent yet" marker for the flat parent table.
constexpr std::uint64_t kNoPair = static_cast<std::uint64_t>(-1);

}  // namespace

ShrinkResult shrink_with_witness(const Graph& g, Node u, Node v) {
  pair_bfs_runs.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t n = g.size();
  const auto pair_id = [n](Node a, Node b) -> std::uint64_t {
    return static_cast<std::uint64_t>(a) * n + b;
  };

  // Product BFS over ordered pairs; parent pointers (pair, port) let us
  // reconstruct the witness sequence. n^2 is known up front, so the
  // parent table is a flat vector keyed by pair id, not a hash map.
  struct Parent {
    std::uint64_t from = kNoPair;
    Port port = 0;
  };
  std::vector<Parent> parents(n * n);
  std::queue<std::uint64_t> queue;
  const std::uint64_t start = pair_id(u, v);
  parents[start] = Parent{start, 0};
  queue.push(start);

  // Distances to every node from every *distinct second coordinate* we
  // meet would be wasteful; instead gather reachable pairs first, then
  // BFS per distinct first coordinate.
  std::vector<std::uint64_t> reachable;
  while (!queue.empty()) {
    const std::uint64_t id = queue.front();
    queue.pop();
    reachable.push_back(id);
    const Node a = static_cast<Node>(id / n);
    const Node b = static_cast<Node>(id % n);
    const Port common = std::min(g.degree(a), g.degree(b));
    for (Port p = 0; p < common; ++p) {
      const Node a2 = g.step(a, p).to;
      const Node b2 = g.step(b, p).to;
      const std::uint64_t id2 = pair_id(a2, b2);
      if (parents[id2].from == kNoPair) {
        parents[id2] = Parent{id, p};
        queue.push(id2);
      }
    }
  }

  // Minimum distance over reachable pairs, grouped by first coordinate
  // so each BFS is reused.
  std::sort(reachable.begin(), reachable.end());
  ShrinkResult out;
  out.shrink = graph::kUnreachable;
  out.pairs_explored = reachable.size();
  std::uint64_t best_pair = start;
  std::vector<std::uint32_t> dist;
  Node dist_source = graph::kNoNode;
  for (const std::uint64_t id : reachable) {
    const Node a = static_cast<Node>(id / n);
    const Node b = static_cast<Node>(id % n);
    if (a != dist_source) {
      dist = graph::bfs_distances(g, a);
      dist_source = a;
    }
    if (dist[b] < out.shrink) {
      out.shrink = dist[b];
      best_pair = id;
      if (out.shrink == 0) break;
    }
  }

  if (out.shrink == graph::kUnreachable) {
    // Disconnected input: the two coordinates stay in their own
    // components under every port sequence, so no reachable pair is at
    // finite distance. Per the ShrinkResult contract there is no
    // closest pair and no witness.
    return out;
  }

  // Reconstruct the witness port sequence.
  out.closest_u = static_cast<Node>(best_pair / n);
  out.closest_v = static_cast<Node>(best_pair % n);
  std::uint64_t cursor = best_pair;
  while (cursor != start) {
    const Parent& p = parents[cursor];
    out.witness.push_back(p.port);
    cursor = p.from;
  }
  std::reverse(out.witness.begin(), out.witness.end());
  return out;
}

std::uint32_t shrink(const Graph& g, Node u, Node v) {
  return shrink_with_witness(g, u, v).shrink;
}

AllPairsShrink shrink_all_pairs(const Graph& g) {
  all_pairs_runs.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t n = g.size();
  AllPairsShrink out;
  out.n = n;
  out.values.assign(static_cast<std::size_t>(n) * n, graph::kUnreachable);
  if (n == 0) return out;

  // Canonical (unordered) pair id: min coordinate first. Swapping
  // coordinates maps product walks onto product walks and dist is
  // symmetric, so Shrink(u, v) == Shrink(v, u); the sweep works on
  // unordered pairs and mirrors both orders at the end.
  const auto canon_id = [n](Node a, Node b) -> std::uint64_t {
    return a <= b ? static_cast<std::uint64_t>(a) * n + b
                  : static_cast<std::uint64_t>(b) * n + a;
  };

  // Pass 1: one flat BFS row per source a fills D(a, b) for every b —
  // the row serves both (a, b) and (b, a). Pairs are bucketed by their
  // own distance; bucket d seeds the sweep's level d.
  std::vector<std::vector<std::uint64_t>> buckets;
  for (Node a = 0; a < n; ++a) {
    const std::vector<std::uint32_t> dist = graph::bfs_distances(g, a);
    for (Node b = a; b < n; ++b) {
      const std::uint32_t d = dist[b];
      if (d == graph::kUnreachable) continue;
      if (d >= buckets.size()) buckets.resize(d + 1);
      buckets[d].push_back(static_cast<std::uint64_t>(a) * n + b);
    }
  }

  // Pass 2: reverse product adjacency as a flat CSR keyed by
  // (node, port): rev_nodes[rev_off[x*maxdeg+p] ..] = all a with
  // succ(a, p) == x. The ordered predecessors of a pair (a', b') under
  // port p are exactly rev[a'][p] x rev[b'][p] (p is applicable at a
  // predecessor iff both nodes own port p, which membership implies).
  const Port maxdeg = g.max_degree();
  std::vector<std::uint32_t> rev_off(
      static_cast<std::size_t>(n) * maxdeg + 1, 0);
  for (Node a = 0; a < n; ++a)
    for (Port p = 0; p < g.degree(a); ++p)
      ++rev_off[static_cast<std::size_t>(g.step(a, p).to) * maxdeg + p + 1];
  for (std::size_t i = 1; i < rev_off.size(); ++i) rev_off[i] += rev_off[i - 1];
  std::vector<Node> rev_nodes(rev_off.back());
  {
    std::vector<std::uint32_t> cursor(rev_off.begin(), rev_off.end() - 1);
    for (Node a = 0; a < n; ++a)
      for (Port p = 0; p < g.degree(a); ++p)
        rev_nodes[cursor[static_cast<std::size_t>(g.step(a, p).to) * maxdeg +
                         p]++] = a;
  }

  // Pass 3: level-ordered backward closure over the pair space.
  // Processing levels in increasing d keeps the assignment exact: any
  // pair that can reach some pair at distance d' < d was already
  // finalized while level d' drained, so a pair first reached at level
  // d has minimum reachable distance exactly d. Each product edge is
  // traversed once, giving the O(n^2 * max_degree) total.
  std::vector<std::uint64_t> queue;
  std::uint64_t visited = 0;
  for (std::uint32_t d = 0; d < buckets.size(); ++d) {
    queue.clear();
    for (const std::uint64_t id : buckets[d])
      if (out.values[id] == graph::kUnreachable) {
        out.values[id] = d;
        queue.push_back(id);
      }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint64_t id = queue[head];
      ++visited;
      const Node a2 = static_cast<Node>(id / n);
      const Node b2 = static_cast<Node>(id % n);
      for (Port p = 0; p < maxdeg; ++p) {
        const std::uint32_t a_begin =
            rev_off[static_cast<std::size_t>(a2) * maxdeg + p];
        const std::uint32_t a_end =
            rev_off[static_cast<std::size_t>(a2) * maxdeg + p + 1];
        const std::uint32_t b_begin =
            rev_off[static_cast<std::size_t>(b2) * maxdeg + p];
        const std::uint32_t b_end =
            rev_off[static_cast<std::size_t>(b2) * maxdeg + p + 1];
        for (std::uint32_t i = a_begin; i < a_end; ++i)
          for (std::uint32_t j = b_begin; j < b_end; ++j) {
            const std::uint64_t id2 = canon_id(rev_nodes[i], rev_nodes[j]);
            if (out.values[id2] == graph::kUnreachable) {
              out.values[id2] = d;
              queue.push_back(id2);
            }
          }
      }
    }
  }
  out.pairs_explored = visited;

  // Mirror the canonical triangle onto both orders (cross-component
  // pairs stay kUnreachable on both sides).
  for (Node a = 0; a < n; ++a)
    for (Node b = a + 1; b < n; ++b)
      out.values[static_cast<std::size_t>(b) * n + a] =
          out.values[static_cast<std::size_t>(a) * n + b];
  return out;
}

std::uint64_t shrink_pair_bfs_count() noexcept {
  return pair_bfs_runs.load(std::memory_order_relaxed);
}

std::uint64_t shrink_all_pairs_compute_count() noexcept {
  return all_pairs_runs.load(std::memory_order_relaxed);
}

}  // namespace rdv::views
