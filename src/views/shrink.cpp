#include "views/shrink.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace rdv::views {

using graph::Graph;
using graph::Node;
using graph::Port;

ShrinkResult shrink_with_witness(const Graph& g, Node u, Node v) {
  const std::uint64_t n = g.size();
  const auto pair_id = [n](Node a, Node b) -> std::uint64_t {
    return static_cast<std::uint64_t>(a) * n + b;
  };

  // Product BFS over ordered pairs; parent pointers (pair, port) let us
  // reconstruct the witness sequence.
  struct Parent {
    std::uint64_t from;
    Port port;
  };
  std::unordered_map<std::uint64_t, Parent> parents;
  std::queue<std::uint64_t> queue;
  const std::uint64_t start = pair_id(u, v);
  parents.emplace(start, Parent{start, 0});
  queue.push(start);

  // Distances to every node from every *distinct second coordinate* we
  // meet would be wasteful; instead gather reachable pairs first, then
  // BFS per distinct first coordinate.
  std::vector<std::uint64_t> reachable;
  while (!queue.empty()) {
    const std::uint64_t id = queue.front();
    queue.pop();
    reachable.push_back(id);
    const Node a = static_cast<Node>(id / n);
    const Node b = static_cast<Node>(id % n);
    const Port common = std::min(g.degree(a), g.degree(b));
    for (Port p = 0; p < common; ++p) {
      const Node a2 = g.step(a, p).to;
      const Node b2 = g.step(b, p).to;
      const std::uint64_t id2 = pair_id(a2, b2);
      if (parents.emplace(id2, Parent{id, p}).second) queue.push(id2);
    }
  }

  // Minimum distance over reachable pairs, grouped by first coordinate
  // so each BFS is reused.
  std::sort(reachable.begin(), reachable.end());
  ShrinkResult out;
  out.shrink = graph::kUnreachable;
  out.pairs_explored = reachable.size();
  std::uint64_t best_pair = start;
  std::vector<std::uint32_t> dist;
  Node dist_source = graph::kNoNode;
  for (const std::uint64_t id : reachable) {
    const Node a = static_cast<Node>(id / n);
    const Node b = static_cast<Node>(id % n);
    if (a != dist_source) {
      dist = graph::bfs_distances(g, a);
      dist_source = a;
    }
    if (dist[b] < out.shrink) {
      out.shrink = dist[b];
      best_pair = id;
      if (out.shrink == 0) break;
    }
  }

  // Reconstruct the witness port sequence.
  out.closest_u = static_cast<Node>(best_pair / n);
  out.closest_v = static_cast<Node>(best_pair % n);
  std::uint64_t cursor = best_pair;
  while (cursor != start) {
    const Parent& p = parents.at(cursor);
    out.witness.push_back(p.port);
    cursor = p.from;
  }
  std::reverse(out.witness.begin(), out.witness.end());
  return out;
}

std::uint32_t shrink(const Graph& g, Node u, Node v) {
  return shrink_with_witness(g, u, v).shrink;
}

}  // namespace rdv::views
