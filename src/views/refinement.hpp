#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

/// Symmetry detection via partition refinement.
///
/// Two nodes are symmetric (Section 2) when their views — the infinite
/// trees of port-coded paths of Yamashita–Kameda — are equal. Views are
/// equal iff they agree to depth n-1, and the classes of the iterated
/// degree/port refinement below stabilize to exactly the
/// view-equivalence classes, so symmetry is decidable in O(n^2 * m)
/// without materializing views.
namespace rdv::views {

struct ViewClasses {
  /// class_of[v] = stable class id; ids are dense, ordered by first
  /// occurrence in node order (so they are canonical for a given graph).
  std::vector<std::uint32_t> class_of;
  std::uint32_t class_count = 0;
  /// Number of refinement rounds until the partition stabilized.
  std::uint32_t rounds = 0;

  [[nodiscard]] bool symmetric(graph::Node u, graph::Node v) const {
    return class_of[u] == class_of[v];
  }
};

/// Computes the stable view-equivalence partition.
[[nodiscard]] ViewClasses compute_view_classes(const graph::Graph& g);

/// Convenience: are u and v symmetric in g?
[[nodiscard]] bool symmetric(const graph::Graph& g, graph::Node u,
                             graph::Node v);

/// All symmetric pairs (u, v) with u < v.
[[nodiscard]] std::vector<std::pair<graph::Node, graph::Node>>
symmetric_pairs(const graph::Graph& g);

/// Same, against a precomputed (possibly cached) partition.
[[nodiscard]] std::vector<std::pair<graph::Node, graph::Node>>
symmetric_pairs(const graph::Graph& g, const ViewClasses& classes);

/// Sentinel for view_distance on symmetric pairs.
inline constexpr std::uint32_t kViewsEqual = static_cast<std::uint32_t>(-1);

/// The smallest depth at which the views of u and v differ (0 = their
/// degrees already differ), or kViewsEqual when symmetric. Quantifies
/// how much exploration an agent needs before its observations can
/// distinguish the two starting positions.
[[nodiscard]] std::uint32_t view_distance(const graph::Graph& g,
                                          graph::Node u, graph::Node v);

}  // namespace rdv::views
