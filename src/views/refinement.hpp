#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

/// Symmetry detection via partition refinement.
///
/// Two nodes are symmetric (Section 2) when their views — the infinite
/// trees of port-coded paths of Yamashita–Kameda — are equal. Views are
/// equal iff they agree to depth n-1, and the classes of iterated
/// degree/port refinement stabilize to exactly the view-equivalence
/// classes, so symmetry is decidable without materializing views.
///
/// Two engines compute the partition:
/// - compute_view_classes (production): the smaller-half worklist
///   refinement in refinement_worklist.hpp, O(m log n);
/// - compute_view_classes_naive (oracle): the original synchronous
///   re-refinement, O(n^2 * m) worst case, kept as the independent
///   reference the worklist engine is tested byte-identical against.
namespace rdv::views {

struct ViewClasses {
  /// class_of[v] = stable class id; ids are dense, ordered by first
  /// occurrence in node order (so they are canonical for a given graph
  /// REGARDLESS of the computing engine — the canonical contract every
  /// codec byte, cached artifact, and quotient consumer relies on).
  std::vector<std::uint32_t> class_of;
  std::uint32_t class_count = 0;
  /// Refinement-effort diagnostic of the engine that produced the
  /// partition: worklist waves until the splitter queue drained for the
  /// production engine, synchronous re-refinement rounds for the naive
  /// oracle. NOT part of the canonical contract above (the two engines
  /// may legitimately differ here); only ever read by humans and
  /// histograms.
  std::uint32_t rounds = 0;

  [[nodiscard]] bool symmetric(graph::Node u, graph::Node v) const {
    return class_of[u] == class_of[v];
  }
};

/// Computes the stable view-equivalence partition (worklist engine).
[[nodiscard]] ViewClasses compute_view_classes(const graph::Graph& g);

/// The original synchronous O(n^2 * m) refinement, retained verbatim as
/// the test oracle: every round rebuilds every node's full signature.
/// class_of/class_count are byte-identical to compute_view_classes.
[[nodiscard]] ViewClasses compute_view_classes_naive(const graph::Graph& g);

/// Naive-oracle invocations (cumulative process counter) — CI asserts
/// this stays ZERO on census runs: nothing on a production path may
/// fall back to the O(n^2 m) engine.
[[nodiscard]] std::uint64_t refine_naive_count();

/// Convenience: are u and v symmetric in g?
[[nodiscard]] bool symmetric(const graph::Graph& g, graph::Node u,
                             graph::Node v);

/// All symmetric pairs (u, v) with u < v.
[[nodiscard]] std::vector<std::pair<graph::Node, graph::Node>>
symmetric_pairs(const graph::Graph& g);

/// Same, against a precomputed (possibly cached) partition.
[[nodiscard]] std::vector<std::pair<graph::Node, graph::Node>>
symmetric_pairs(const graph::Graph& g, const ViewClasses& classes);

/// Sentinel for view_distance on symmetric pairs.
inline constexpr std::uint32_t kViewsEqual = static_cast<std::uint32_t>(-1);

/// The smallest depth at which the views of u and v differ (0 = their
/// degrees already differ), or kViewsEqual when symmetric. Quantifies
/// how much exploration an agent needs before its observations can
/// distinguish the two starting positions.
[[nodiscard]] std::uint32_t view_distance(const graph::Graph& g,
                                          graph::Node u, graph::Node v);

}  // namespace rdv::views
