#include "views/refinement_worklist.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <map>
#include <memory>

#include "obs/metrics.hpp"

namespace rdv::views {

using graph::Graph;
using graph::Node;
using graph::Port;

namespace {

std::atomic<std::uint64_t> worklist_computes{0};
std::atomic<std::uint64_t> splits{0};
std::atomic<std::uint64_t> pops{0};

}  // namespace

std::uint64_t refine_worklist_compute_count() {
  return worklist_computes.load(std::memory_order_relaxed);
}
std::uint64_t refine_split_count() {
  return splits.load(std::memory_order_relaxed);
}
std::uint64_t refine_worklist_pop_count() {
  return pops.load(std::memory_order_relaxed);
}

ViewClasses WorklistRefiner::refine(const Graph& g) {
  const std::uint32_t n = g.size();
  ViewClasses out;
  out.class_of.assign(n, 0);
  if (n == 0) return out;
  worklist_computes.fetch_add(1, std::memory_order_relaxed);
  const Port maxdeg = g.max_degree();

  // Seed: the full degree/port-signature partition. The final stable
  // partition refines it (stable classes agree on degree and on every
  // reverse port), and folding the reverse ports into the seed is what
  // lets the splitter letters track only succ(v, p)'s class — the
  // letter alphabet is just the ports. Ids come from a first-occurrence
  // map over the per-node reverse-port vectors (degree is implicit in
  // the vector length); seed id order does not matter, the final
  // relabel re-canonicalizes.
  blocks_.clear();
  {
    std::map<std::vector<std::uint32_t>, std::uint32_t> seed_ids;
    std::vector<std::uint32_t> sig;
    block_of_.assign(n, 0);
    for (Node v = 0; v < n; ++v) {
      sig.clear();
      for (const graph::HalfEdge& e : g.edges(v)) sig.push_back(e.rev_port);
      const auto [it, _] =
          seed_ids.try_emplace(sig, static_cast<std::uint32_t>(seed_ids.size()));
      block_of_[v] = it->second;
    }
    const auto seed_count = static_cast<std::uint32_t>(seed_ids.size());
    // Group nodes_ by seed block (node order within a block) via one
    // counting pass; canon_ doubles as the size/cursor scratch here.
    canon_.assign(seed_count + 1, 0);
    for (Node v = 0; v < n; ++v) ++canon_[block_of_[v] + 1];
    std::uint32_t off = 0;
    for (std::uint32_t b = 0; b < seed_count; ++b) {
      const std::uint32_t size = canon_[b + 1];
      blocks_.push_back(Block{off, off + size, 0, 1});
      canon_[b] = off;  // running fill cursor per block
      off += size;
    }
    nodes_.resize(n);
    pos_.resize(n);
    for (Node v = 0; v < n; ++v) {
      const std::uint32_t slot = canon_[block_of_[v]]++;
      nodes_[slot] = v;
      pos_[v] = slot;
    }
  }

  // Reverse adjacency as a flat CSR keyed by (node, port), the
  // shrink_all_pairs layout: rev_nodes_[rev_off_[w*maxdeg+p] ..] holds
  // every v with succ(v, p) == w.
  rev_off_.assign(static_cast<std::size_t>(n) * maxdeg + 1, 0);
  for (Node v = 0; v < n; ++v)
    for (Port p = 0; p < g.degree(v); ++p)
      ++rev_off_[static_cast<std::size_t>(g.step(v, p).to) * maxdeg + p + 1];
  for (std::size_t i = 1; i < rev_off_.size(); ++i)
    rev_off_[i] += rev_off_[i - 1];
  rev_nodes_.resize(rev_off_.back());
  {
    std::vector<std::uint32_t> cursor(rev_off_.begin(), rev_off_.end() - 1);
    for (Node v = 0; v < n; ++v)
      for (Port p = 0; p < g.degree(v); ++p)
        rev_nodes_[cursor[static_cast<std::size_t>(g.step(v, p).to) * maxdeg +
                          p]++] = v;
  }

  // Every block enters the worklist exactly once, when it is created
  // (all seed blocks now, later only the smaller half of each split),
  // and is processed against every letter when popped. This coarsens
  // the classic (block, letter) bookkeeping to block granularity:
  // - split of an UNPROCESSED block: the shrunk original is still
  //   queued and the new half is pushed, so both halves get processed
  //   (the classic "replace by both") ;
  // - split of a PROCESSED block: only the new half — which is always
  //   the smaller — is pushed (the classic "add the smaller half").
  // A node's queued block at least halves between consecutive pushes,
  // so each node is scanned as splitter material O(log n) times:
  // O(m log n) total splitter work.
  queue_.clear();
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) queue_.push_back(b);
  std::uint64_t local_pops = 0;
  std::uint64_t local_splits = 0;
  std::uint32_t waves = 0;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const std::uint32_t b = queue_[head];
    ++local_pops;
    waves = std::max(waves, blocks_[b].gen);
    for (Port p = 0; p < maxdeg; ++p) {
      // Snapshot the letter's preimage of b BEFORE any split: b itself
      // may be among the touched blocks, and splitting it mid-scan
      // would corrupt the iteration.
      preimage_.clear();
      const std::uint32_t sb = blocks_[b].begin;
      const std::uint32_t se = blocks_[b].end;
      for (std::uint32_t i = sb; i < se; ++i) {
        const std::size_t base =
            static_cast<std::size_t>(nodes_[i]) * maxdeg + p;
        for (std::uint32_t j = rev_off_[base]; j < rev_off_[base + 1]; ++j) {
          preimage_.push_back(rev_nodes_[j]);
        }
      }
      if (preimage_.empty()) continue;
      // Mark: move each preimage node into its block's marked prefix.
      touched_.clear();
      for (const Node v : preimage_) {
        const std::uint32_t d = block_of_[v];
        Block& blk = blocks_[d];
        if (blk.end - blk.begin == 1) continue;  // singletons never split
        if (blk.marked == 0) touched_.push_back(d);
        const std::uint32_t i = pos_[v];
        const std::uint32_t j = blk.begin + blk.marked;
        if (i != j) {
          const Node other = nodes_[j];
          nodes_[j] = v;
          nodes_[i] = other;
          pos_[v] = j;
          pos_[other] = i;
        }
        ++blk.marked;
      }
      // Split every partially-marked block; the smaller half becomes
      // the NEW block (and the only one pushed).
      for (const std::uint32_t d : touched_) {
        const std::uint32_t size = blocks_[d].end - blocks_[d].begin;
        const std::uint32_t marked = blocks_[d].marked;
        blocks_[d].marked = 0;
        if (marked == size) continue;  // the whole block moved together
        ++local_splits;
        const std::uint32_t mid = blocks_[d].begin + marked;
        const auto nb = static_cast<std::uint32_t>(blocks_.size());
        const std::uint32_t next_gen = blocks_[b].gen + 1;
        Block fresh;
        if (marked <= size - marked) {
          fresh = Block{blocks_[d].begin, mid, 0, next_gen};
          blocks_[d].begin = mid;
        } else {
          fresh = Block{mid, blocks_[d].end, 0, next_gen};
          blocks_[d].end = mid;
        }
        blocks_.push_back(fresh);  // may invalidate refs; none held
        for (std::uint32_t i = fresh.begin; i < fresh.end; ++i) {
          block_of_[nodes_[i]] = nb;
        }
        queue_.push_back(nb);
      }
    }
  }
  pops.fetch_add(local_pops, std::memory_order_relaxed);
  splits.fetch_add(local_splits, std::memory_order_relaxed);

  // Canonical relabel: dense ids by first occurrence in node order —
  // the same rule the naive engine's per-round signature maps apply, so
  // class_of/class_count match it byte for byte.
  canon_.assign(blocks_.size(), static_cast<std::uint32_t>(-1));
  std::uint32_t next_id = 0;
  for (Node v = 0; v < n; ++v) {
    std::uint32_t& id = canon_[block_of_[v]];
    if (id == static_cast<std::uint32_t>(-1)) id = next_id++;
    out.class_of[v] = id;
  }
  out.class_count = next_id;
  out.rounds = waves;

  static obs::Histogram& rounds_hist = obs::histogram("views.refine_rounds");
  rounds_hist.observe(waves);
  return out;
}

ViewClasses compute_view_classes_worklist(const Graph& g) {
  // One refiner per thread: the pool's workers (and any caller thread)
  // keep their scratch arenas warm across cache computes and batch
  // chunks alike.
  thread_local WorklistRefiner refiner;
  return refiner.refine(g);
}

std::vector<ViewClasses> view_classes_batch(
    std::span<const graph::Graph* const> graphs,
    const ViewClassesBatchOptions& options) {
  std::vector<ViewClasses> out(graphs.size());
  if (graphs.empty()) return out;
  support::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : support::default_pool();
  const std::size_t chunk = options.chunk_size == 0 ? 1 : options.chunk_size;
  if (graphs.size() <= chunk || pool.thread_count() <= 1) {
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      out[i] = compute_view_classes_worklist(*graphs[i]);
    }
    return out;
  }
  support::TaskGroup group(pool);
  for (std::size_t begin = 0; begin < graphs.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, graphs.size());
    group.submit([&graphs, &out, begin, end] {
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = compute_view_classes_worklist(*graphs[i]);
      }
    });
  }
  group.wait();
  return out;
}

}  // namespace rdv::views
