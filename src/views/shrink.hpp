#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

/// Shrink(u, v) — Definition 3.1: the smallest distance between
/// alpha(u) and alpha(v) over all port sequences alpha (applying the
/// SAME outgoing ports at both nodes). The feasibility characterization
/// (Corollary 3.1) is: a STIC [(u,v), delta] with symmetric u, v is
/// feasible iff delta >= Shrink(u, v).
namespace rdv::views {

struct ShrinkResult {
  /// The Shrink value (graph::kUnreachable never occurs: the empty
  /// sequence witnesses dist(u, v)).
  std::uint32_t shrink = 0;
  /// A shortest-in-BFS-order port sequence achieving it.
  std::vector<graph::Port> witness;
  /// The closest reachable pair (alpha(u), alpha(v)).
  graph::Node closest_u = graph::kNoNode;
  graph::Node closest_v = graph::kNoNode;
  /// Number of ordered pairs explored by the product BFS (cost metric).
  std::uint64_t pairs_explored = 0;
};

/// Exact Shrink by BFS over the pair space {(alpha(u), alpha(v))}. A
/// port p is applicable at a pair (a, b) when p < min(deg(a), deg(b)) —
/// along symmetric pairs degrees always agree, so nothing is lost.
/// Cost: O(n^2 * max_degree) time, O(n^2) space.
[[nodiscard]] ShrinkResult shrink_with_witness(const graph::Graph& g,
                                               graph::Node u,
                                               graph::Node v);

/// Just the value.
[[nodiscard]] std::uint32_t shrink(const graph::Graph& g, graph::Node u,
                                   graph::Node v);

}  // namespace rdv::views
