#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

/// Shrink(u, v) — Definition 3.1: the smallest distance between
/// alpha(u) and alpha(v) over all port sequences alpha (applying the
/// SAME outgoing ports at both nodes). The feasibility characterization
/// (Corollary 3.1) is: a STIC [(u,v), delta] with symmetric u, v is
/// feasible iff delta >= Shrink(u, v).
namespace rdv::views {

struct ShrinkResult {
  /// The Shrink value. On a connected graph this is finite (the empty
  /// sequence already witnesses dist(u, v)); when u and v lie in
  /// different components every reachable pair stays split across them,
  /// so shrink == graph::kUnreachable, the witness is empty, and
  /// closest_u/closest_v are graph::kNoNode.
  std::uint32_t shrink = 0;
  /// A shortest-in-BFS-order port sequence achieving it (empty when
  /// unreachable).
  std::vector<graph::Port> witness;
  /// The closest reachable pair (alpha(u), alpha(v)); graph::kNoNode
  /// when unreachable.
  graph::Node closest_u = graph::kNoNode;
  graph::Node closest_v = graph::kNoNode;
  /// Number of ordered pairs explored by the product BFS (cost metric).
  std::uint64_t pairs_explored = 0;
};

/// Exact Shrink by BFS over the pair space {(alpha(u), alpha(v))}. A
/// port p is applicable at a pair (a, b) when p < min(deg(a), deg(b)) —
/// along symmetric pairs degrees always agree, so nothing is lost.
/// Cost: O(n^2 * max_degree) time, O(n^2) space.
[[nodiscard]] ShrinkResult shrink_with_witness(const graph::Graph& g,
                                               graph::Node u,
                                               graph::Node v);

/// Just the value.
[[nodiscard]] std::uint32_t shrink(const graph::Graph& g, graph::Node u,
                                   graph::Node v);

/// Shrink for every ordered pair of one graph, as a flat n x n table.
struct AllPairsShrink {
  std::uint32_t n = 0;
  /// values[u * n + v] = Shrink(u, v). Symmetric (Shrink(u, v) ==
  /// Shrink(v, u): swapping coordinates maps product walks onto product
  /// walks and dist is symmetric); diagonal is 0; cross-component pairs
  /// hold graph::kUnreachable.
  std::vector<std::uint32_t> values;
  /// Unordered pairs visited by the level sweep (cost metric, the
  /// batched analog of ShrinkResult::pairs_explored).
  std::uint64_t pairs_explored = 0;

  [[nodiscard]] std::uint32_t at(graph::Node u, graph::Node v) const {
    return values[static_cast<std::size_t>(u) * n + v];
  }
};

/// Batched all-pairs Shrink: one flat-array BFS sweep per source fills
/// the distance rows (each row serves both (u,v) and (v,u)), then a
/// single level-ordered backward propagation over the unordered pair
/// space assigns Shrink(u, v) = d to every pair first reached at level
/// d. Each product edge is traversed once, so the whole table costs
/// O(n^2 * max_degree) — the price of ONE per-pair product BFS — with
/// flat vectors and a bitset instead of hash maps on the hot path.
/// shrink_with_witness remains the witness-reconstruction fallback and
/// the oracle this kernel is verified against.
[[nodiscard]] AllPairsShrink shrink_all_pairs(const graph::Graph& g);

/// Process-wide counters (monotone, thread-safe) so tests and CI can
/// assert the census path never falls back to per-pair product BFS and
/// that warm store runs recompute nothing.
[[nodiscard]] std::uint64_t shrink_pair_bfs_count() noexcept;
[[nodiscard]] std::uint64_t shrink_all_pairs_compute_count() noexcept;

}  // namespace rdv::views
