#include "views/view_tree.hpp"

#include <sstream>

namespace rdv::views {
namespace {

void encode(const graph::Graph& g, graph::Node v, std::uint32_t depth,
            std::ostringstream& out) {
  out << '(' << g.degree(v) << ':';
  if (depth > 0) {
    for (const graph::HalfEdge& e : g.edges(v)) {
      out << '[' << e.rev_port << ']';
      encode(g, e.to, depth - 1, out);
    }
  }
  out << ')';
}

}  // namespace

std::string view_encoding(const graph::Graph& g, graph::Node v,
                          std::uint32_t depth) {
  std::ostringstream out;
  encode(g, v, depth, out);
  return out.str();
}

bool views_equal_to_depth(const graph::Graph& g, graph::Node u,
                          graph::Node v, std::uint32_t depth) {
  return view_encoding(g, u, depth) == view_encoding(g, v, depth);
}

}  // namespace rdv::views
