#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

/// Explicit truncated views V(v, G) (Section 2 / Yamashita–Kameda).
///
/// The refinement oracle (refinement.hpp) is the production symmetry
/// test; explicit views exist to cross-validate it in tests and to power
/// the diagnostics in examples (printing *why* two nodes are symmetric).
namespace rdv::views {

/// Canonical serialization of the view from v truncated at `depth`
/// edges. Two nodes have equal depth-D views iff their encodings are
/// equal. Encoding: "(d:" + for each port p in order, the reverse port
/// and the child encoding + ")". Cost is Theta((max degree)^depth) — use
/// small depths.
[[nodiscard]] std::string view_encoding(const graph::Graph& g,
                                        graph::Node v, std::uint32_t depth);

/// True iff the depth-D views of u and v are equal.
[[nodiscard]] bool views_equal_to_depth(const graph::Graph& g,
                                        graph::Node u, graph::Node v,
                                        std::uint32_t depth);

}  // namespace rdv::views
