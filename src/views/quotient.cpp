#include "views/quotient.hpp"

namespace rdv::views {

QuotientGraph build_quotient(const graph::Graph& g,
                             const ViewClasses& classes) {
  QuotientGraph q;
  q.arcs.resize(classes.class_count);
  q.multiplicity.assign(classes.class_count, 0);
  std::vector<bool> seen(classes.class_count, false);
  for (graph::Node v = 0; v < g.size(); ++v) {
    const std::uint32_t c = classes.class_of[v];
    ++q.multiplicity[c];
    if (seen[c]) continue;
    seen[c] = true;
    q.arcs[c].reserve(g.degree(v));
    for (const graph::HalfEdge& e : g.edges(v)) {
      q.arcs[c].push_back(QuotientArc{classes.class_of[e.to], e.rev_port});
    }
  }
  return q;
}

}  // namespace rdv::views
