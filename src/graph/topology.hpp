#pragma once

#include <cstdint>
#include <string>

/// Core vocabulary for port-labeled anonymous graphs (the paper's model,
/// Section 1): nodes are unlabeled; at a node of degree d the incident
/// edges carry distinct local port numbers 0..d-1; there is no coherence
/// between the two port numbers of an edge.
namespace rdv::graph {

/// Node handle. Nodes are anonymous in the model; indices exist only on
/// the simulator side (the adversary/observer), never visible to agents.
using Node = std::uint32_t;
/// Local port number at a node (0..degree-1).
using Port = std::uint32_t;

inline constexpr Node kNoNode = static_cast<Node>(-1);

/// Result of traversing one edge: the node reached and the port by which
/// it is entered (what an agent observes on arrival, Section 1: "when an
/// agent arrives at a node, it sees its degree and the port number by
/// which it enters").
struct Step {
  Node to;
  Port entry_port;

  friend bool operator==(const Step&, const Step&) = default;
};

/// Abstract navigable topology.
///
/// The simulation engine and every algorithm consume this interface, so
/// graphs may be explicit (`Graph`) or lazily materialized (e.g.
/// `QhatImplicitTopology` for Section 4's Q-hat at h = 2D, whose explicit
/// size 1 + 2(3^h - 1) is astronomically large while any bounded-time
/// walk touches only a small ball).
class ITopology {
 public:
  virtual ~ITopology() = default;

  /// Degree of node v.
  [[nodiscard]] virtual Port degree(Node v) const = 0;

  /// Traverse the edge with local port p (p < degree(v)) at node v.
  [[nodiscard]] virtual Step step(Node v, Port p) const = 0;

  /// Human-readable family name for tables and traces.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// succ(v, p) from the paper's Section 2: the neighbor of v across the
/// edge with port p at v.
[[nodiscard]] inline Node succ(const ITopology& g, Node v, Port p) {
  return g.step(v, p).to;
}

}  // namespace rdv::graph
