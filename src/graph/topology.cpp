#include "graph/walk.hpp"

namespace rdv::graph {

std::optional<Node> apply_ports(const ITopology& g, Node x,
                                std::span<const Port> alpha) {
  Node v = x;
  for (Port p : alpha) {
    if (p >= g.degree(v)) return std::nullopt;
    v = g.step(v, p).to;
  }
  return v;
}

std::vector<Node> walk_ports(const ITopology& g, Node x,
                             std::span<const Port> alpha) {
  std::vector<Node> nodes;
  nodes.reserve(alpha.size() + 1);
  nodes.push_back(x);
  Node v = x;
  for (Port p : alpha) {
    if (p >= g.degree(v)) return {};
    v = g.step(v, p).to;
    nodes.push_back(v);
  }
  return nodes;
}

std::vector<Port> entry_ports_along(const ITopology& g, Node x,
                                    std::span<const Port> alpha) {
  std::vector<Port> entries;
  entries.reserve(alpha.size());
  Node v = x;
  for (Port p : alpha) {
    if (p >= g.degree(v)) return {};
    const Step s = g.step(v, p);
    entries.push_back(s.entry_port);
    v = s.to;
  }
  return entries;
}

std::vector<Port> reverse_path(std::span<const Port> entry_ports) {
  return {entry_ports.rbegin(), entry_ports.rend()};
}

}  // namespace rdv::graph
