#include "graph/serialize.hpp"

#include <sstream>

#include "graph/builder.hpp"

namespace rdv::graph {

std::string to_dot(const Graph& g) {
  std::ostringstream out;
  out << "graph \"" << g.name() << "\" {\n";
  out << "  node [shape=circle];\n";
  for (Node v = 0; v < g.size(); ++v) {
    const auto edges = g.edges(v);
    for (Port p = 0; p < edges.size(); ++p) {
      const HalfEdge& e = edges[p];
      if (v < e.to) {
        out << "  " << v << " -- " << e.to << " [taillabel=\"" << p
            << "\", headlabel=\"" << e.rev_port << "\"];\n";
      }
    }
  }
  out << "}\n";
  return out.str();
}

std::string to_text(const Graph& g) {
  std::ostringstream out;
  out << "rdv-graph " << g.size() << ' ' << g.name() << '\n';
  for (Node v = 0; v < g.size(); ++v) {
    const auto edges = g.edges(v);
    for (Port p = 0; p < edges.size(); ++p) {
      const HalfEdge& e = edges[p];
      if (v < e.to) {
        out << v << ' ' << p << ' ' << e.to << ' ' << e.rev_port << '\n';
      }
    }
  }
  return out.str();
}

Graph from_text(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  std::uint32_t n = 0;
  std::string name;
  in >> magic >> n;
  std::getline(in, name);
  if (magic != "rdv-graph" || n == 0) {
    throw std::invalid_argument("from_text: bad header");
  }
  if (!name.empty() && name.front() == ' ') name.erase(0, 1);
  GraphBuilder builder(n, name.empty() ? "unnamed" : name);
  Node u = 0;
  Port pu = 0;
  Node v = 0;
  Port pv = 0;
  while (in >> u >> pu >> v >> pv) {
    builder.connect(u, pu, v, pv);
  }
  if (!in.eof()) throw std::invalid_argument("from_text: trailing junk");
  return std::move(builder).build();
}

}  // namespace rdv::graph
