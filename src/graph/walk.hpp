#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/topology.hpp"

/// Path/walk helpers shared by the view machinery, Shrink computation,
/// and the algorithms (Section 2 of the paper).
namespace rdv::graph {

/// alpha(x) from Section 2: follow the sequence of outgoing port numbers
/// from x. Returns nullopt if some port is out of range at the node
/// reached (the sequence is then undefined at x).
[[nodiscard]] std::optional<Node> apply_ports(const ITopology& g, Node x,
                                              std::span<const Port> alpha);

/// The full node sequence of apply_ports (x included). Empty on failure.
[[nodiscard]] std::vector<Node> walk_ports(const ITopology& g, Node x,
                                           std::span<const Port> alpha);

/// Entry ports observed along apply_ports (one per step). Empty on
/// failure. reverse_path() consumes this to compute the paper's
/// "reverse path pi-bar".
[[nodiscard]] std::vector<Port> entry_ports_along(
    const ITopology& g, Node x, std::span<const Port> alpha);

/// Given the entry ports of a traversed path, the outgoing port sequence
/// that walks it backwards (Section 2's reverse path): the reversal of
/// the entry-port list.
[[nodiscard]] std::vector<Port> reverse_path(std::span<const Port> entry_ports);

}  // namespace rdv::graph
