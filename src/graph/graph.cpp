#include "graph/graph.hpp"

#include <cassert>
#include <queue>
#include <sstream>

namespace rdv::graph {

Graph::Graph(std::vector<std::vector<HalfEdge>> adjacency, std::string name)
    : adjacency_(std::move(adjacency)), name_(std::move(name)) {}

std::uint64_t Graph::edge_count() const noexcept {
  std::uint64_t half = 0;
  for (const auto& adj : adjacency_) half += adj.size();
  return half / 2;
}

Port Graph::max_degree() const noexcept {
  std::size_t d = 0;
  for (const auto& adj : adjacency_) d = std::max(d, adj.size());
  return static_cast<Port>(d);
}

Port Graph::degree(Node v) const {
  assert(v < adjacency_.size());
  return static_cast<Port>(adjacency_[v].size());
}

Step Graph::step(Node v, Port p) const {
  assert(v < adjacency_.size());
  assert(p < adjacency_[v].size());
  const HalfEdge& e = adjacency_[v][p];
  return Step{e.to, e.rev_port};
}

std::span<const HalfEdge> Graph::edges(Node v) const {
  assert(v < adjacency_.size());
  return adjacency_[v];
}

std::string Graph::validate() const {
  std::ostringstream err;
  const auto n = adjacency_.size();
  if (n == 0) return "graph has no nodes";
  for (std::size_t v = 0; v < n; ++v) {
    std::vector<bool> seen_neighbor(n, false);
    for (std::size_t p = 0; p < adjacency_[v].size(); ++p) {
      const HalfEdge& e = adjacency_[v][p];
      if (e.to >= n) {
        err << "node " << v << " port " << p << " points past node count";
        return err.str();
      }
      if (e.to == v) {
        err << "self-loop at node " << v << " port " << p;
        return err.str();
      }
      if (seen_neighbor[e.to]) {
        err << "parallel edge between " << v << " and " << e.to;
        return err.str();
      }
      seen_neighbor[e.to] = true;
      if (e.rev_port >= adjacency_[e.to].size()) {
        err << "node " << v << " port " << p << " reverse port "
            << e.rev_port << " out of range at node " << e.to;
        return err.str();
      }
      const HalfEdge& back = adjacency_[e.to][e.rev_port];
      if (back.to != v || back.rev_port != p) {
        err << "non-reciprocal ports on edge " << v << "/" << p << " -> "
            << e.to << "/" << e.rev_port;
        return err.str();
      }
    }
  }
  if (!is_connected(*this)) return "graph is not connected";
  return {};
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, Node source) {
  std::vector<std::uint32_t> dist(g.size(), kUnreachable);
  std::queue<Node> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const Node v = queue.front();
    queue.pop();
    for (const HalfEdge& e : g.edges(v)) {
      if (dist[e.to] == kUnreachable) {
        dist[e.to] = dist[v] + 1;
        queue.push(e.to);
      }
    }
  }
  return dist;
}

std::uint32_t distance(const Graph& g, Node a, Node b) {
  return bfs_distances(g, a)[b];
}

bool is_connected(const Graph& g) {
  const auto dist = bfs_distances(g, 0);
  for (std::uint32_t d : dist) {
    if (d == kUnreachable) return false;
  }
  return true;
}

}  // namespace rdv::graph
