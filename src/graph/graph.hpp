#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/topology.hpp"

namespace rdv::graph {

/// One directed half of an undirected edge as stored at a node: the port
/// index is implicit (position in the node's adjacency vector).
struct HalfEdge {
  Node to;        ///< Neighbor across this edge.
  Port rev_port;  ///< Port number of this edge at the neighbor's side.

  friend bool operator==(const HalfEdge&, const HalfEdge&) = default;
};

/// Explicit immutable port-labeled graph.
///
/// Invariants (checked by validate(), established by GraphBuilder):
///  * simple: no self-loops, no parallel edges;
///  * connected;
///  * reciprocal ports: following port p from v and then the reported
///    reverse port leads back to v via port p.
class Graph final : public ITopology {
 public:
  Graph(std::vector<std::vector<HalfEdge>> adjacency, std::string name);

  /// Number of nodes (the paper's "size" n).
  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(adjacency_.size());
  }

  /// Number of undirected edges.
  [[nodiscard]] std::uint64_t edge_count() const noexcept;

  /// Maximum degree over all nodes.
  [[nodiscard]] Port max_degree() const noexcept;

  [[nodiscard]] Port degree(Node v) const override;
  [[nodiscard]] Step step(Node v, Port p) const override;
  [[nodiscard]] std::string name() const override { return name_; }

  /// All half-edges at v, indexed by port.
  [[nodiscard]] std::span<const HalfEdge> edges(Node v) const;

  /// Checks all structural invariants; returns an empty string when
  /// valid, otherwise a description of the first violation.
  [[nodiscard]] std::string validate() const;

 private:
  std::vector<std::vector<HalfEdge>> adjacency_;
  std::string name_;
};

/// BFS distances from `source` (hop metric). Unreachable nodes get
/// kUnreachable.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       Node source);

/// Distance between two nodes (BFS); kUnreachable if disconnected.
[[nodiscard]] std::uint32_t distance(const Graph& g, Node a, Node b);

/// True if the graph is connected (every model graph must be).
[[nodiscard]] bool is_connected(const Graph& g);

}  // namespace rdv::graph
