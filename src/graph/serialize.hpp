#pragma once

#include <string>

#include "graph/graph.hpp"

/// Text serialization of port-labeled graphs.
namespace rdv::graph {

/// Graphviz DOT with ports rendered as edge head/tail labels.
[[nodiscard]] std::string to_dot(const Graph& g);

/// Line format:
///   rdv-graph <n> <name>
///   <u> <pu> <v> <pv>     (one line per undirected edge, u < v)
[[nodiscard]] std::string to_text(const Graph& g);

/// Parse the to_text() format. Throws std::invalid_argument on malformed
/// input or invalid wiring.
[[nodiscard]] Graph from_text(const std::string& text);

}  // namespace rdv::graph
