#include "graph/builder.hpp"

#include <sstream>

namespace rdv::graph {

GraphBuilder::GraphBuilder(std::uint32_t node_count, std::string name)
    : node_count_(node_count),
      name_(std::move(name)),
      pending_(node_count) {}

GraphBuilder& GraphBuilder::connect(Node u, Port pu, Node v, Port pv) {
  auto fail = [&](const std::string& what) {
    std::ostringstream err;
    err << name_ << ": connect(" << u << "," << pu << "," << v << "," << pv
        << "): " << what;
    throw std::invalid_argument(err.str());
  };
  if (u >= node_count_ || v >= node_count_) fail("node out of range");
  if (u == v) fail("self-loop");
  if (pending_[u].contains(pu)) fail("port already used at first node");
  if (pending_[v].contains(pv)) fail("port already used at second node");
  pending_[u].emplace(pu, HalfEdge{v, pv});
  pending_[v].emplace(pv, HalfEdge{u, pu});
  return *this;
}

bool GraphBuilder::port_used(Node u, Port p) const {
  return u < node_count_ && pending_[u].contains(p);
}

Graph GraphBuilder::build() && {
  std::vector<std::vector<HalfEdge>> adjacency(node_count_);
  for (std::uint32_t v = 0; v < node_count_; ++v) {
    Port expected = 0;
    adjacency[v].reserve(pending_[v].size());
    for (const auto& [port, edge] : pending_[v]) {
      if (port != expected) {
        std::ostringstream err;
        err << name_ << ": node " << v << " has a port gap at "
            << expected;
        throw std::invalid_argument(err.str());
      }
      ++expected;
      adjacency[v].push_back(edge);
    }
    if (adjacency[v].empty()) {
      std::ostringstream err;
      err << name_ << ": node " << v << " is isolated";
      throw std::invalid_argument(err.str());
    }
  }
  Graph g(std::move(adjacency), std::move(name_));
  if (std::string problem = g.validate(); !problem.empty()) {
    throw std::invalid_argument(g.name() + ": " + problem);
  }
  return g;
}

}  // namespace rdv::graph
