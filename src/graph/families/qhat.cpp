#include "graph/families/qhat.hpp"

#include <cassert>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/walk.hpp"
#include "support/saturating.hpp"

namespace rdv::graph::families {
namespace {

/// Forward port of the leaf cycles on the axis of `type`: the N/S-axis
/// cycles use ports E (earlier element) / W (later), the E/W-axis cycles
/// use N (earlier) / S (later).
constexpr Dir cycle_forward(Dir type) {
  return (type == Dir::N || type == Dir::S) ? Dir::E : Dir::N;
}

}  // namespace

std::uint64_t qhat_size(std::uint32_t h) {
  const std::uint64_t pow3 = support::sat_pow(3, h);
  return support::sat_add(1, support::sat_mul(2, support::sat_sub(pow3, 1)));
}

std::uint64_t qhat_leaves_per_type(std::uint32_t h) {
  if (h == 0) return 0;
  return support::sat_pow(3, h - 1);
}

LeafLink leaf_link(Dir type, std::uint64_t index, std::uint64_t x,
                   Dir port) {
  assert(index >= 1 && index <= x);
  assert(port != type);  // the tree-edge port is handled by the caller
  const Dir partner = opposite(type);
  if (port == partner) {
    // Partner edge Ni--Si / Ei--Wi: the target is entered by its own
    // tree-edge-opposite port, i.e. by `type`.
    return LeafLink{partner, index, type};
  }
  const Dir fwd = cycle_forward(type);
  const Dir bwd = opposite(fwd);
  if (port == fwd) {
    if (index == x) return LeafLink{type, 1, bwd};  // closing edge
    return LeafLink{partner, index + 1, bwd};
  }
  assert(port == bwd);
  if (index == 1) return LeafLink{type, x, fwd};  // closing edge
  return LeafLink{partner, index - 1, fwd};
}

QhatGraph qhat_explicit(std::uint32_t h) {
  if (h < 2 || h > 9) {
    throw std::invalid_argument("qhat_explicit: h must be in [2, 9]");
  }
  const std::uint64_t n64 = qhat_size(h);
  const auto n = static_cast<std::uint32_t>(n64);

  std::vector<std::vector<Node>> leaves_by_type(4);
  std::vector<std::vector<Dir>> node_paths;
  node_paths.reserve(n);

  GraphBuilder builder(n, "qhat(" + std::to_string(h) + ")");

  // Depth-first enumeration in lexicographic direction order; this makes
  // node id 0 the root and lists each type's leaves in lexicographic
  // path order, which is the leaf order the cycle wiring uses.
  Node next_id = 0;
  std::vector<Dir> path;
  auto dfs = [&](auto&& self, Node parent_id) -> void {
    const Node my_id = next_id++;
    node_paths.push_back(path);
    if (!path.empty()) {
      const Dir d = path.back();
      builder.connect(parent_id, to_port(d), my_id, to_port(opposite(d)));
    }
    if (path.size() == h) {
      const Dir type = opposite(path.back());
      leaves_by_type[static_cast<std::size_t>(type)].push_back(my_id);
      return;
    }
    for (std::uint8_t d = 0; d < 4; ++d) {
      const Dir dir = static_cast<Dir>(d);
      if (!path.empty() && dir == opposite(path.back())) continue;
      path.push_back(dir);
      self(self, my_id);
      path.pop_back();
    }
  };
  dfs(dfs, 0);
  assert(next_id == n);

  // Leaf-to-leaf edges: resolve every (leaf, non-tree port) through the
  // shared wiring rule; connect each undirected edge on first sight.
  const std::uint64_t x = qhat_leaves_per_type(h);
  for (std::uint8_t t = 0; t < 4; ++t) {
    const Dir type = static_cast<Dir>(t);
    const auto& leaves = leaves_by_type[t];
    for (std::uint64_t i = 1; i <= x; ++i) {
      const Node u = leaves[i - 1];
      for (std::uint8_t p = 0; p < 4; ++p) {
        const Dir port = static_cast<Dir>(p);
        if (port == type) continue;  // tree edge
        if (builder.port_used(u, to_port(port))) continue;
        const LeafLink link = leaf_link(type, i, x, port);
        const Node v = leaves_by_type[static_cast<std::size_t>(link.type)]
                                     [link.index - 1];
        builder.connect(u, to_port(port), v, to_port(link.entry));
      }
    }
  }

  return QhatGraph{std::move(builder).build(), h, 0,
                   std::move(leaves_by_type), std::move(node_paths)};
}

std::vector<std::vector<Port>> qhat_gamma_strings(std::uint32_t k) {
  std::vector<std::vector<Port>> gammas;
  gammas.reserve(std::size_t{1} << k);
  for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << k); ++bits) {
    std::vector<Port> gamma(k);
    for (std::uint32_t j = 0; j < k; ++j) {
      // Lexicographic in (N=0, E=1): most significant bit first.
      const bool east = (bits >> (k - 1 - j)) & 1u;
      gamma[j] = to_port(east ? Dir::E : Dir::N);
    }
    gammas.push_back(std::move(gamma));
  }
  return gammas;
}

std::vector<Node> qhat_z_set(const ITopology& g, Node root, std::uint32_t k) {
  std::vector<Node> z;
  for (const auto& gamma : qhat_gamma_strings(k)) {
    std::vector<Port> twice = gamma;
    twice.insert(twice.end(), gamma.begin(), gamma.end());
    const auto node = apply_ports(g, root, twice);
    if (!node) throw std::invalid_argument("qhat_z_set: walk failed");
    z.push_back(*node);
  }
  return z;
}

std::vector<Node> qhat_mid_set(const ITopology& g, Node root,
                               std::uint32_t k) {
  std::vector<Node> mids;
  for (const auto& gamma : qhat_gamma_strings(k)) {
    const auto node = apply_ports(g, root, gamma);
    if (!node) throw std::invalid_argument("qhat_mid_set: walk failed");
    mids.push_back(*node);
  }
  return mids;
}

}  // namespace rdv::graph::families
