#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/families/families.hpp"

namespace rdv::graph::families {

Graph path_graph(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("path_graph: n must be >= 2");
  GraphBuilder b(n, "path(" + std::to_string(n) + ")");
  for (Node v = 0; v + 1 < n; ++v) {
    const Port at_left = (v == 0) ? 0 : 1;  // interior: port 1 -> right
    b.connect(v, at_left, v + 1, 0);        // port 0 always -> left
  }
  return std::move(b).build();
}

Graph two_node_graph() { return path_graph(2); }

}  // namespace rdv::graph::families
