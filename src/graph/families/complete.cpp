#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/families/families.hpp"

namespace rdv::graph::families {

Graph complete(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("complete: n must be >= 2");
  GraphBuilder b(n, "complete(" + std::to_string(n) + ")");
  for (Node u = 0; u < n; ++u) {
    for (Node v = u + 1; v < n; ++v) {
      // Port of v at u: v's rank among {0..n-1} \ {u}; since v > u this
      // is v - 1. Port of u at v is u (u < v).
      b.connect(u, v - 1, v, u);
    }
  }
  return std::move(b).build();
}

}  // namespace rdv::graph::families
