#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/families/families.hpp"

namespace rdv::graph::families {

Graph oriented_torus(std::uint32_t w, std::uint32_t h) {
  if (w < 3 || h < 3) {
    throw std::invalid_argument("oriented_torus: w and h must be >= 3");
  }
  const auto id = [w](std::uint32_t x, std::uint32_t y) -> Node {
    return y * w + x;
  };
  // Ports: 0 = East, 1 = South, 2 = West, 3 = North, globally oriented.
  constexpr Port kEast = 0, kSouth = 1, kWest = 2, kNorth = 3;
  GraphBuilder b(w * h, "oriented_torus(" + std::to_string(w) + "x" +
                            std::to_string(h) + ")");
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      b.connect(id(x, y), kEast, id((x + 1) % w, y), kWest);
      b.connect(id(x, y), kSouth, id(x, (y + 1) % h), kNorth);
    }
  }
  return std::move(b).build();
}

}  // namespace rdv::graph::families
