#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/families/families.hpp"
#include "support/splitmix.hpp"

namespace rdv::graph::families {

Graph oriented_ring(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("oriented_ring: n must be >= 3");
  GraphBuilder b(n, "oriented_ring(" + std::to_string(n) + ")");
  for (Node v = 0; v < n; ++v) {
    // Port 0 at v = clockwise edge; it is port 1 (counterclockwise) at
    // the successor.
    b.connect(v, 0, (v + 1) % n, 1);
  }
  return std::move(b).build();
}

Graph scrambled_ring(std::uint32_t n, std::uint64_t seed) {
  if (n < 3) throw std::invalid_argument("scrambled_ring: n must be >= 3");
  support::SplitMix64 rng(seed);
  // flip[v] == true: v's port 0 points counterclockwise instead.
  std::vector<bool> flip(n);
  for (std::uint32_t v = 0; v < n; ++v) flip[v] = (rng.next() & 1u) != 0;
  GraphBuilder b(n, "scrambled_ring(" + std::to_string(n) + "," +
                        std::to_string(seed) + ")");
  for (Node v = 0; v < n; ++v) {
    const Node w = (v + 1) % n;
    const Port pv = flip[v] ? 1 : 0;  // clockwise port at v
    const Port pw = flip[w] ? 0 : 1;  // counterclockwise port at w
    b.connect(v, pv, w, pw);
  }
  return std::move(b).build();
}

}  // namespace rdv::graph::families
