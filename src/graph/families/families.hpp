#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

/// Generators for the port-labeled graph families used across tests,
/// examples and the experiment harness. Every generator documents its
/// port-numbering convention, because symmetry (and hence feasibility of
/// rendezvous) depends on ports, not only on the underlying graph.
namespace rdv::graph::families {

/// Oriented ring on n >= 3 nodes: at every node, port 0 points clockwise
/// and port 1 counterclockwise. Every pair of nodes is symmetric;
/// Shrink(u,v) = dist(u,v) (rotations are the only same-sequence moves).
[[nodiscard]] Graph oriented_ring(std::uint32_t n);

/// Ring on n >= 3 nodes with ports assigned per-node from a seeded
/// stream (each node independently decides which incident edge is port
/// 0). Generally breaks the rotational symmetry of the oriented ring.
[[nodiscard]] Graph scrambled_ring(std::uint32_t n, std::uint64_t seed);

/// Oriented torus: w x h grid with wraparound, w,h >= 3 (keeps the
/// graph simple). Ports at every node: 0=East, 1=South, 2=West, 3=North,
/// consistently oriented; all node pairs are symmetric and
/// Shrink(u,v) = dist(u,v) — the paper's "cannot shrink" example.
[[nodiscard]] Graph oriented_torus(std::uint32_t w, std::uint32_t h);

/// Hypercube of dimension dim >= 1: node = bitmask; port i flips bit i
/// (so the reverse port equals the forward port). Vertex-transitive with
/// port-preserving automorphisms: all pairs symmetric.
[[nodiscard]] Graph hypercube(std::uint32_t dim);

/// Complete graph on n >= 2 nodes; port p at node u leads to the p-th
/// smallest node id other than u. (Not symmetric as a port-labeled
/// graph for n >= 3 despite Kn's rich automorphisms.)
[[nodiscard]] Graph complete(std::uint32_t n);

/// Path on n >= 2 nodes; interior node i has port 0 toward i-1 and port
/// 1 toward i+1; endpoints have the single port 0. n = 2 is the paper's
/// introductory two-node graph. Midpoint reflection is NOT
/// port-preserving here, so most pairs are nonsymmetric.
[[nodiscard]] Graph path_graph(std::uint32_t n);

/// The two-node graph from the paper's introduction (delay example).
[[nodiscard]] Graph two_node_graph();

/// Balanced b-ary rooted tree of the given height (height 0 = single
/// edge pair is invalid; height >= 1). Root has ports 0..b-1 to
/// children; non-root nodes have port 0 toward the parent and ports
/// 1..b to children.
[[nodiscard]] Graph balanced_tree(std::uint32_t branching,
                                  std::uint32_t height);

/// The paper's Shrink = 1 example (Section 3): a central edge with
/// port-preserving isomorphic balanced b-ary trees of height t attached
/// to both ends. Mirror nodes (i, i + half) are symmetric and
/// Shrink(u, mirror(u)) = 1 regardless of their distance.
/// Node ids: 0..half-1 = first copy (0 = its root), half..2*half-1 =
/// second copy (half = its root).
[[nodiscard]] Graph symmetric_double_tree(std::uint32_t branching,
                                          std::uint32_t height);

/// Mirror partner of v in symmetric_double_tree(b, t).
[[nodiscard]] Node double_tree_mirror(const Graph& g, Node v);

/// Random connected simple graph: a random attachment tree plus
/// `extra_edges` additional random non-parallel edges; ports assigned by
/// incidence order. Deterministic in (n, extra_edges, seed).
[[nodiscard]] Graph random_connected(std::uint32_t n,
                                     std::uint32_t extra_edges,
                                     std::uint64_t seed);

/// Non-wrapping w x h grid, w,h >= 2. Interior nodes have 4 ports,
/// edges/corners fewer; ports are assigned in E,S,W,N scan order of the
/// existing neighbors (so port numbering varies with position — most
/// pairs are nonsymmetric).
[[nodiscard]] Graph grid(std::uint32_t w, std::uint32_t h);

/// Star: one hub (node 0, degree n-1, port i to leaf 1+i) and n-1
/// leaves (single port 0). Leaves are NOT symmetric: each enters the
/// hub by a different port, so their views differ at depth 1 — the
/// hub's port numbering acts as implicit leaf labels.
[[nodiscard]] Graph star(std::uint32_t n);

/// Complete bipartite K_{a,b}: left nodes 0..a-1 (port j to right j),
/// right nodes a..a+b-1 (port i to left i).
[[nodiscard]] Graph complete_bipartite(std::uint32_t a, std::uint32_t b);

/// Oriented ring with one chord between nodes 0 and n/2 (port 2 at both
/// ends); breaks most of the ring's symmetry while keeping the
/// chord-endpoint pair symmetric for even splits.
[[nodiscard]] Graph ring_with_chord(std::uint32_t n);

}  // namespace rdv::graph::families
