#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/families/families.hpp"

namespace rdv::graph::families {
namespace {

/// Number of nodes in a balanced b-ary tree of the given height.
std::uint64_t tree_size(std::uint64_t b, std::uint32_t height) {
  std::uint64_t total = 1;
  std::uint64_t level = 1;
  for (std::uint32_t i = 0; i < height; ++i) {
    level *= b;
    total += level;
  }
  return total;
}

/// Wires a balanced b-ary tree rooted at `root` into `builder` using
/// consecutive node ids starting at `root`. Root children use ports
/// 0..b-1 at the root; every non-root node reserves port 0 for its
/// parent and uses ports 1..b for children. Returns the count of nodes
/// wired.
std::uint32_t wire_tree(GraphBuilder& builder, Node root, std::uint32_t b,
                        std::uint32_t height) {
  std::uint32_t next = root + 1;
  // (node, depth) in BFS order; children allocated contiguously.
  std::vector<std::pair<Node, std::uint32_t>> frontier{{root, 0}};
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const auto [v, depth] = frontier[i];
    if (depth == height) continue;
    for (std::uint32_t c = 0; c < b; ++c) {
      const Node child = next++;
      const Port at_parent = (v == root) ? c : c + 1;
      builder.connect(v, at_parent, child, 0);
      frontier.emplace_back(child, depth + 1);
    }
  }
  return next - root;
}

}  // namespace

Graph balanced_tree(std::uint32_t branching, std::uint32_t height) {
  if (branching < 1 || height < 1) {
    throw std::invalid_argument("balanced_tree: branching, height >= 1");
  }
  const std::uint64_t n = tree_size(branching, height);
  if (n > 2'000'000) {
    throw std::invalid_argument("balanced_tree: too large");
  }
  GraphBuilder b(static_cast<std::uint32_t>(n),
                 "balanced_tree(" + std::to_string(branching) + "," +
                     std::to_string(height) + ")");
  wire_tree(b, 0, branching, height);
  return std::move(b).build();
}

Graph symmetric_double_tree(std::uint32_t branching, std::uint32_t height) {
  if (branching < 1 || height < 1) {
    throw std::invalid_argument("symmetric_double_tree: params >= 1");
  }
  const std::uint64_t half = tree_size(branching, height);
  if (half * 2 > 2'000'000) {
    throw std::invalid_argument("symmetric_double_tree: too large");
  }
  GraphBuilder b(static_cast<std::uint32_t>(2 * half),
                 "symmetric_double_tree(" + std::to_string(branching) + "," +
                     std::to_string(height) + ")");
  wire_tree(b, 0, branching, height);
  wire_tree(b, static_cast<Node>(half), branching, height);
  // Central edge between the two roots; the same port number (branching)
  // at both extremities makes the half-swapping map a port-preserving
  // automorphism — the source of the symmetry.
  b.connect(0, branching, static_cast<Node>(half), branching);
  return std::move(b).build();
}

Node double_tree_mirror(const Graph& g, Node v) {
  const Node half = g.size() / 2;
  return v < half ? v + half : v - half;
}

}  // namespace rdv::graph::families
