#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/families/families.hpp"

namespace rdv::graph::families {

Graph hypercube(std::uint32_t dim) {
  if (dim < 1 || dim > 20) {
    throw std::invalid_argument("hypercube: dim must be in [1, 20]");
  }
  const std::uint32_t n = 1u << dim;
  GraphBuilder b(n, "hypercube(" + std::to_string(dim) + ")");
  for (Node v = 0; v < n; ++v) {
    for (Port i = 0; i < dim; ++i) {
      const Node w = v ^ (1u << i);
      if (v < w) b.connect(v, i, w, i);
    }
  }
  return std::move(b).build();
}

}  // namespace rdv::graph::families
