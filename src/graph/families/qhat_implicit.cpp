#include "graph/families/qhat_implicit.hpp"

#include <array>
#include <cassert>
#include <stdexcept>

namespace rdv::graph::families {
namespace {

std::string key_of(std::span<const Dir> path) {
  std::string key;
  key.reserve(path.size());
  for (Dir d : path) key.push_back(static_cast<char>(d));
  return key;
}

}  // namespace

QhatImplicitTopology::QhatImplicitTopology(std::uint32_t h) : h_(h) {
  if (h < 2 || h > 39) {
    throw std::invalid_argument(
        "QhatImplicitTopology: h must be in [2, 39]");
  }
  x_ = qhat_leaves_per_type(h);
  // dp_[r][c][l]; dp_[0][c][l] = (c == l).
  dp_.resize(h_);
  for (std::uint8_t c = 0; c < 4; ++c) {
    for (std::uint8_t l = 0; l < 4; ++l) dp_[0][c][l] = (c == l) ? 1 : 0;
  }
  for (std::uint32_t r = 1; r < h_; ++r) {
    for (std::uint8_t c = 0; c < 4; ++c) {
      for (std::uint8_t l = 0; l < 4; ++l) {
        std::uint64_t total = 0;
        for (std::uint8_t d = 0; d < 4; ++d) {
          if (static_cast<Dir>(d) == opposite(static_cast<Dir>(c))) continue;
          total += dp_[r - 1][d][l];
        }
        dp_[r][c][l] = total;
      }
    }
  }
  // Materialize the root.
  paths_.emplace_back();
  index_.emplace(std::string{}, 0);
}

Port QhatImplicitTopology::degree(Node v) const {
  assert(v < paths_.size());
  (void)v;
  return 4;  // Q-hat is 4-regular by construction.
}

std::string QhatImplicitTopology::name() const {
  return "qhat_implicit(" + std::to_string(h_) + ")";
}

const std::vector<Dir>& QhatImplicitTopology::path_of(Node v) const {
  assert(v < paths_.size());
  return paths_[v];
}

Node QhatImplicitTopology::node_at(std::span<const Dir> path) const {
  if (path.size() > h_) {
    throw std::invalid_argument("node_at: path longer than height");
  }
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0 && path[i] == opposite(path[i - 1])) {
      throw std::invalid_argument("node_at: path steps back to parent");
    }
  }
  return intern(std::vector<Dir>(path.begin(), path.end()));
}

Node QhatImplicitTopology::intern(const std::vector<Dir>& path) const {
  auto [it, inserted] = index_.try_emplace(
      key_of(path), static_cast<Node>(paths_.size()));
  if (inserted) paths_.push_back(path);
  return it->second;
}

std::uint64_t QhatImplicitTopology::completions(std::uint32_t remaining,
                                                Dir at, Dir last) const {
  return dp_[remaining][static_cast<std::uint8_t>(at)]
            [static_cast<std::uint8_t>(last)];
}

std::uint64_t QhatImplicitTopology::leaf_rank(
    std::span<const Dir> path) const {
  assert(path.size() == h_);
  const Dir last = path.back();
  std::uint64_t rank = 1;
  for (std::uint32_t j = 0; j < h_; ++j) {
    for (std::uint8_t c = 0; c < static_cast<std::uint8_t>(path[j]); ++c) {
      const Dir dir = static_cast<Dir>(c);
      if (j > 0 && dir == opposite(path[j - 1])) continue;
      rank += completions(h_ - 1 - j, dir, last);
    }
  }
  return rank;
}

std::vector<Dir> QhatImplicitTopology::leaf_unrank(
    Dir last, std::uint64_t rank) const {
  assert(rank >= 1 && rank <= x_);
  std::vector<Dir> path;
  path.reserve(h_);
  for (std::uint32_t j = 0; j < h_; ++j) {
    for (std::uint8_t c = 0; c < 4; ++c) {
      const Dir dir = static_cast<Dir>(c);
      if (j > 0 && dir == opposite(path.back())) continue;
      const std::uint64_t count = completions(h_ - 1 - j, dir, last);
      if (rank <= count) {
        path.push_back(dir);
        break;
      }
      rank -= count;
    }
    assert(path.size() == j + 1);
  }
  assert(rank == 1);
  return path;
}

Step QhatImplicitTopology::step(Node v, Port p) const {
  assert(v < paths_.size());
  assert(p < 4);
  const std::vector<Dir> path = paths_[v];  // copy: intern may reallocate
  const Dir port = static_cast<Dir>(p);

  // Tree edge toward the parent (the root has none).
  if (!path.empty() && port == opposite(path.back())) {
    std::vector<Dir> parent(path.begin(), path.end() - 1);
    const Dir came_from = path.back();
    return Step{intern(parent), to_port(came_from)};
  }

  // Tree edge toward a child.
  if (path.size() < h_) {
    std::vector<Dir> child = path;
    child.push_back(port);
    return Step{intern(child), to_port(opposite(port))};
  }

  // Leaf-to-leaf edge: resolve through the shared Section-4 wiring rule.
  const Dir type = opposite(path.back());
  assert(port != type);  // type == tree-edge port, handled above
  const std::uint64_t index = leaf_rank(path);
  const LeafLink link = leaf_link(type, index, x_, port);
  // A leaf of type T has final direction opposite(T).
  std::vector<Dir> target = leaf_unrank(opposite(link.type), link.index);
  return Step{intern(target), to_port(link.entry)};
}

}  // namespace rdv::graph::families
