#include <array>
#include <stdexcept>

#include "graph/builder.hpp"
#include "graph/families/families.hpp"

namespace rdv::graph::families {

Graph grid(std::uint32_t w, std::uint32_t h) {
  if (w < 2 || h < 2) {
    throw std::invalid_argument("grid: w and h must be >= 2");
  }
  const auto id = [w](std::uint32_t x, std::uint32_t y) -> Node {
    return y * w + x;
  };
  GraphBuilder b(w * h, "grid(" + std::to_string(w) + "x" +
                            std::to_string(h) + ")");
  // Each node numbers its existing neighbors contiguously from 0 in
  // E,S,W,N order (dir indices 0..3 below).
  std::vector<std::array<int, 4>> port_table(
      static_cast<std::size_t>(w) * h, {-1, -1, -1, -1});
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      const bool exists[4] = {x + 1 < w, y + 1 < h, x > 0, y > 0};
      Port p = 0;
      for (int dir = 0; dir < 4; ++dir) {
        if (exists[dir]) port_table[id(x, y)][dir] = static_cast<int>(p++);
      }
    }
  }
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      const Node v = id(x, y);
      if (x + 1 < w) {  // E edge; the neighbor sees it as W (index 2)
        b.connect(v, static_cast<Port>(port_table[v][0]), id(x + 1, y),
                  static_cast<Port>(port_table[id(x + 1, y)][2]));
      }
      if (y + 1 < h) {  // S edge; the neighbor sees it as N (index 3)
        b.connect(v, static_cast<Port>(port_table[v][1]), id(x, y + 1),
                  static_cast<Port>(port_table[id(x, y + 1)][3]));
      }
    }
  }
  return std::move(b).build();
}

Graph star(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("star: n must be >= 3");
  GraphBuilder b(n, "star(" + std::to_string(n) + ")");
  for (Node leaf = 1; leaf < n; ++leaf) {
    b.connect(0, leaf - 1, leaf, 0);
  }
  return std::move(b).build();
}

Graph complete_bipartite(std::uint32_t a, std::uint32_t b_count) {
  if (a < 1 || b_count < 1 || a + b_count < 3) {
    throw std::invalid_argument("complete_bipartite: sides too small");
  }
  GraphBuilder b(a + b_count, "complete_bipartite(" + std::to_string(a) +
                                  "," + std::to_string(b_count) + ")");
  for (Node left = 0; left < a; ++left) {
    for (Node right = 0; right < b_count; ++right) {
      b.connect(left, right, a + right, left);
    }
  }
  return std::move(b).build();
}

Graph ring_with_chord(std::uint32_t n) {
  if (n < 6 || n % 2 != 0) {
    throw std::invalid_argument("ring_with_chord: n must be even, >= 6");
  }
  GraphBuilder b(n, "ring_with_chord(" + std::to_string(n) + ")");
  for (Node v = 0; v < n; ++v) {
    b.connect(v, 0, (v + 1) % n, 1);
  }
  b.connect(0, 2, n / 2, 2);
  return std::move(b).build();
}

}  // namespace rdv::graph::families
