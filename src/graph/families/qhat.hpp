#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

/// The lower-bound construction of Section 4 (Figure 1, Theorem 4.1).
///
/// Qh is the tree of height h whose non-leaf nodes have degree 4 with
/// ports labeled by cardinal directions N,E,S,W; every edge carries
/// opposite directions (N-S or E-W) at its two extremities. Q-hat-h
/// adds edges between the leaves (partner edges Ni-Si / Ei-Wi plus four
/// alternating cycles) so that every node has degree 4 and every pair of
/// nodes is symmetric.
namespace rdv::graph::families {

/// Direction = port number: all Q-hat nodes have degree 4 and their
/// ports follow this fixed convention.
enum class Dir : std::uint8_t { N = 0, E = 1, S = 2, W = 3 };

[[nodiscard]] constexpr Port to_port(Dir d) noexcept {
  return static_cast<Port>(d);
}
[[nodiscard]] constexpr Dir opposite(Dir d) noexcept {
  return static_cast<Dir>((static_cast<std::uint8_t>(d) + 2) % 4);
}
[[nodiscard]] constexpr char dir_letter(Dir d) noexcept {
  constexpr char kLetters[4] = {'N', 'E', 'S', 'W'};
  return kLetters[static_cast<std::uint8_t>(d)];
}

/// Number of nodes of Q-hat-h: 1 + 2(3^h - 1). Saturates (uint64) for
/// h > 40.
[[nodiscard]] std::uint64_t qhat_size(std::uint32_t h);

/// Leaves per type: x = 3^(h-1).
[[nodiscard]] std::uint64_t qhat_leaves_per_type(std::uint32_t h);

/// Where a leaf-to-leaf port leads (the Section 4 wiring, shared between
/// the explicit and the implicit generator so both provably agree).
struct LeafLink {
  Dir type;             ///< Type of the target leaf.
  std::uint64_t index;  ///< 1-based index of the target within its type.
  Dir entry;            ///< Port by which the target is entered.
};

/// For the leaf with the given `type` and 1-based `index` (of `x` =
/// 3^(h-1) leaves per type), resolves the non-parent port `port`
/// (which must differ from `type`, the port of the tree edge).
///
/// Wiring per the paper: partner edges Ni--Si (ports S/N) and Ei--Wi
/// (ports W/E); two alternating cycles per axis with ports E(at the
/// earlier element)/W for the N/S axis and N/S for the E/W axis; the
/// closing edge of each cycle joins the last and first element of the
/// same type.
[[nodiscard]] LeafLink leaf_link(Dir type, std::uint64_t index,
                                 std::uint64_t x, Dir port);

/// Explicit Q-hat-h together with construction metadata for tests and
/// the Figure-1 bench.
struct QhatGraph {
  Graph graph;
  std::uint32_t h = 0;
  Node root = 0;
  /// leaves_by_type[d][i-1] = node id of the i-th leaf of type d, in
  /// lexicographic order of root-to-leaf direction strings.
  std::vector<std::vector<Node>> leaves_by_type;
  /// Root-to-node direction strings, indexed by node id.
  std::vector<std::vector<Dir>> node_paths;
};

/// Builds the explicit graph; h must be in [2, 9] (size 1+2(3^9-1) =
/// 39365 at the top).
[[nodiscard]] QhatGraph qhat_explicit(std::uint32_t h);

/// The set Z of Section 4: nodes (gamma gamma)(root) for all gamma over
/// {N, E}^k, in lexicographic order of gamma. Valid on any topology
/// following the direction/port convention with height >= 2k.
[[nodiscard]] std::vector<Node> qhat_z_set(const ITopology& g, Node root,
                                           std::uint32_t k);

/// The corresponding midpoints M(v) = gamma(root), in the same order.
[[nodiscard]] std::vector<Node> qhat_mid_set(const ITopology& g, Node root,
                                             std::uint32_t k);

/// Enumerates gamma over {N,E}^k in lexicographic order as port strings.
[[nodiscard]] std::vector<std::vector<Port>> qhat_gamma_strings(
    std::uint32_t k);

}  // namespace rdv::graph::families
