#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/families/qhat.hpp"
#include "graph/topology.hpp"

namespace rdv::graph::families {

/// Lazily materialized Q-hat-h (Section 4).
///
/// Explicit Q-hat-h has 1 + 2(3^h - 1) nodes — far beyond memory at the
/// theorem's regime h = 2D. Any T-round walk, however, touches at most
/// 2T + 1 nodes, so this topology interns nodes on demand: a node is its
/// root-relative direction string; leaf-to-leaf edges are resolved
/// combinatorially (rank/unrank of leaf paths in lexicographic order)
/// through the exact same `leaf_link` wiring rule as the explicit
/// generator, which the test suite cross-checks node by node.
///
/// Supports h in [2, 39] (leaf ranks fit in uint64: 3^38 < 2^63).
class QhatImplicitTopology final : public ITopology {
 public:
  explicit QhatImplicitTopology(std::uint32_t h);

  [[nodiscard]] Port degree(Node v) const override;
  [[nodiscard]] Step step(Node v, Port p) const override;
  [[nodiscard]] std::string name() const override;

  /// The root r of the construction (node id 0).
  [[nodiscard]] Node root() const noexcept { return 0; }
  [[nodiscard]] std::uint32_t height() const noexcept { return h_; }

  /// Root-relative direction string of a materialized node.
  [[nodiscard]] const std::vector<Dir>& path_of(Node v) const;

  /// Node for a direction string (materializing it if needed). The
  /// string must be a valid simple tree path of length <= h.
  [[nodiscard]] Node node_at(std::span<const Dir> path) const;

  /// Number of nodes materialized so far (observability for tests and
  /// the T6 bench).
  [[nodiscard]] std::size_t materialized() const noexcept {
    return paths_.size();
  }

  /// 1-based lexicographic rank of a leaf path among leaves with the
  /// same final direction. Exposed for tests.
  [[nodiscard]] std::uint64_t leaf_rank(std::span<const Dir> path) const;

  /// Inverse of leaf_rank: the leaf path with the given final direction
  /// and 1-based rank. Exposed for tests.
  [[nodiscard]] std::vector<Dir> leaf_unrank(Dir last, std::uint64_t rank)
      const;

 private:
  [[nodiscard]] Node intern(const std::vector<Dir>& path) const;
  [[nodiscard]] std::uint64_t completions(std::uint32_t remaining, Dir at,
                                          Dir last) const;

  std::uint32_t h_;
  std::uint64_t x_;  // leaves per type = 3^(h-1)
  // completions_[r][c][l]: number of valid direction strings of length r
  // appended after a position holding c such that the final direction is
  // l (r = 0: c == l). "Valid" = never stepping back toward the parent.
  std::vector<std::array<std::array<std::uint64_t, 4>, 4>> dp_;
  // Interning tables; mutated on traversal, hence mutable (the topology
  // is logically immutable — interning is a cache).
  mutable std::vector<std::vector<Dir>> paths_;
  mutable std::unordered_map<std::string, Node> index_;
};

}  // namespace rdv::graph::families
