#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/topology.hpp"

namespace rdv::graph::families {

/// Non-materialized twins of the structured generators, in the
/// `QhatImplicitTopology` mold: adjacency is computed, never stored, so
/// the census scale is bounded by arithmetic, not memory. Each class
/// matches its explicit generator's port convention EXACTLY (the test
/// suite cross-checks step/degree node by node at small sizes) and adds
/// two closed forms the implicit census runs on:
///
///  * distance(u, v) — the hop metric, in O(1)/O(dim);
///  * distance_histogram() — counts by distance from any one source
///    (all three families are vertex-transitive, so the histogram is
///    the same at every node and a census over all n^2 ordered pairs is
///    n times one histogram).
///
/// On these families every distinct pair is symmetric and translations
/// realize every approach, so Shrink(u, v) == dist(u, v) — pinned
/// against views::shrink_all_pairs on the explicit twin in tests —
/// which is what lets the implicit census classify millions of STICs
/// without ever materializing the graph.

/// families::oriented_ring(n) without the adjacency vectors: port 0 =
/// clockwise (enters the successor by port 1), port 1 = counter-
/// clockwise. Any n >= 3.
class OrientedRingTopology final : public ITopology {
 public:
  explicit OrientedRingTopology(std::uint32_t n);

  [[nodiscard]] Port degree(Node v) const override;
  [[nodiscard]] Step step(Node v, Port p) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::uint32_t size() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t edge_count() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t distance(Node u, Node v) const;
  [[nodiscard]] std::vector<std::uint64_t> distance_histogram() const;

 private:
  std::uint32_t n_;
};

/// families::oriented_torus(w, h) without the adjacency vectors: ports
/// 0 = East, 1 = South, 2 = West, 3 = North, globally oriented; nodes
/// are y * w + x. Any w, h >= 3.
class OrientedTorusTopology final : public ITopology {
 public:
  OrientedTorusTopology(std::uint32_t w, std::uint32_t h);

  [[nodiscard]] Port degree(Node v) const override;
  [[nodiscard]] Step step(Node v, Port p) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::uint32_t size() const noexcept { return w_ * h_; }
  [[nodiscard]] std::uint64_t edge_count() const noexcept {
    return 2ull * w_ * h_;
  }
  [[nodiscard]] std::uint32_t distance(Node u, Node v) const;
  [[nodiscard]] std::vector<std::uint64_t> distance_histogram() const;

 private:
  std::uint32_t w_;
  std::uint32_t h_;
};

/// families::hypercube(dim) without the adjacency vectors: port i flips
/// bit i (and is port i on both sides). dim in [1, 25] — n and the
/// binomial histogram stay comfortably inside uint32/uint64, well past
/// the explicit generator's dim <= 20.
class HypercubeTopology final : public ITopology {
 public:
  explicit HypercubeTopology(std::uint32_t dim);

  [[nodiscard]] Port degree(Node v) const override;
  [[nodiscard]] Step step(Node v, Port p) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::uint32_t size() const noexcept { return 1u << dim_; }
  [[nodiscard]] std::uint64_t edge_count() const noexcept {
    return (static_cast<std::uint64_t>(size()) * dim_) / 2;
  }
  [[nodiscard]] std::uint32_t distance(Node u, Node v) const;
  [[nodiscard]] std::vector<std::uint64_t> distance_histogram() const;

 private:
  std::uint32_t dim_;
};

}  // namespace rdv::graph::families
