#include <set>
#include <stdexcept>
#include <utility>

#include "graph/builder.hpp"
#include "graph/families/families.hpp"
#include "support/splitmix.hpp"

namespace rdv::graph::families {

Graph random_connected(std::uint32_t n, std::uint32_t extra_edges,
                       std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("random_connected: n must be >= 2");
  const std::uint64_t max_extra =
      static_cast<std::uint64_t>(n) * (n - 1) / 2 - (n - 1);
  if (extra_edges > max_extra) {
    throw std::invalid_argument("random_connected: too many extra edges");
  }
  support::SplitMix64 rng(seed);
  GraphBuilder b(n, "random_connected(" + std::to_string(n) + "," +
                        std::to_string(extra_edges) + ",seed=" +
                        std::to_string(seed) + ")");
  // Ports are assigned by incidence order: each node's next free port.
  std::vector<Port> next_port(n, 0);
  std::set<std::pair<Node, Node>> used;
  auto add_edge = [&](Node u, Node v) {
    b.connect(u, next_port[u]++, v, next_port[v]++);
    used.emplace(std::min(u, v), std::max(u, v));
  };
  // Random attachment tree guarantees connectivity.
  for (Node v = 1; v < n; ++v) {
    add_edge(v, static_cast<Node>(rng.next_below(v)));
  }
  std::uint32_t added = 0;
  while (added < extra_edges) {
    const Node u = static_cast<Node>(rng.next_below(n));
    const Node v = static_cast<Node>(rng.next_below(n));
    if (u == v) continue;
    if (used.contains({std::min(u, v), std::max(u, v)})) continue;
    add_edge(u, v);
    ++added;
  }
  return std::move(b).build();
}

}  // namespace rdv::graph::families
