#include "graph/families/implicit.hpp"

#include <algorithm>
#include <stdexcept>

namespace rdv::graph::families {

namespace {

std::uint32_t ring_distance(std::uint32_t n, std::uint32_t a,
                            std::uint32_t b) {
  const std::uint32_t forward = a <= b ? b - a : n - (a - b);
  return std::min(forward, n - forward);
}

}  // namespace

OrientedRingTopology::OrientedRingTopology(std::uint32_t n) : n_(n) {
  if (n < 3) {
    throw std::invalid_argument("OrientedRingTopology: n must be >= 3");
  }
}

Port OrientedRingTopology::degree(Node) const { return 2; }

Step OrientedRingTopology::step(Node v, Port p) const {
  // Same wiring as oriented_ring: port 0 clockwise entering by port 1,
  // port 1 counterclockwise entering by port 0.
  if (p == 0) return Step{(v + 1) % n_, 1};
  return Step{(v + n_ - 1) % n_, 0};
}

std::string OrientedRingTopology::name() const {
  return "implicit_ring(" + std::to_string(n_) + ")";
}

std::uint32_t OrientedRingTopology::distance(Node u, Node v) const {
  return ring_distance(n_, u, v);
}

std::vector<std::uint64_t> OrientedRingTopology::distance_histogram() const {
  // Offsets 1..n-1 from any source; dist = min(o, n - o). Every
  // distance 1..floor(n/2) occurs twice except the antipode of an even
  // ring, which occurs once.
  std::vector<std::uint64_t> counts(n_ / 2 + 1, 0);
  for (std::uint32_t d = 1; d <= n_ / 2; ++d) {
    counts[d] = (n_ % 2 == 0 && d == n_ / 2) ? 1 : 2;
  }
  return counts;
}

OrientedTorusTopology::OrientedTorusTopology(std::uint32_t w,
                                             std::uint32_t h)
    : w_(w), h_(h) {
  if (w < 3 || h < 3) {
    throw std::invalid_argument(
        "OrientedTorusTopology: w and h must be >= 3");
  }
}

Port OrientedTorusTopology::degree(Node) const { return 4; }

Step OrientedTorusTopology::step(Node v, Port p) const {
  // Same wiring as oriented_torus: 0 = East (entered by West), 1 =
  // South (entered by North), 2 = West, 3 = North.
  const std::uint32_t x = v % w_;
  const std::uint32_t y = v / w_;
  switch (p) {
    case 0: return Step{y * w_ + (x + 1) % w_, 2};
    case 1: return Step{((y + 1) % h_) * w_ + x, 3};
    case 2: return Step{y * w_ + (x + w_ - 1) % w_, 0};
    default: return Step{((y + h_ - 1) % h_) * w_ + x, 1};
  }
}

std::string OrientedTorusTopology::name() const {
  return "implicit_torus(" + std::to_string(w_) + "x" + std::to_string(h_) +
         ")";
}

std::uint32_t OrientedTorusTopology::distance(Node u, Node v) const {
  return ring_distance(w_, u % w_, v % w_) +
         ring_distance(h_, u / w_, v / w_);
}

std::vector<std::uint64_t> OrientedTorusTopology::distance_histogram()
    const {
  // Sum of two independent ring offsets; O(w * h) enumeration of the
  // offset grid (tiny next to the n^2 pair census it summarizes).
  std::vector<std::uint64_t> counts(w_ / 2 + h_ / 2 + 1, 0);
  for (std::uint32_t dx = 0; dx < w_; ++dx) {
    for (std::uint32_t dy = 0; dy < h_; ++dy) {
      if (dx == 0 && dy == 0) continue;
      ++counts[ring_distance(w_, 0, dx) + ring_distance(h_, 0, dy)];
    }
  }
  return counts;
}

HypercubeTopology::HypercubeTopology(std::uint32_t dim) : dim_(dim) {
  if (dim < 1 || dim > 25) {
    throw std::invalid_argument(
        "HypercubeTopology: dim must be in [1, 25]");
  }
}

Port HypercubeTopology::degree(Node) const { return dim_; }

Step HypercubeTopology::step(Node v, Port p) const {
  // Same wiring as hypercube: port i flips bit i on both sides.
  return Step{v ^ (1u << p), p};
}

std::string HypercubeTopology::name() const {
  return "implicit_hypercube(" + std::to_string(dim_) + ")";
}

std::uint32_t HypercubeTopology::distance(Node u, Node v) const {
  std::uint32_t x = u ^ v;
  std::uint32_t d = 0;
  while (x != 0) {
    x &= x - 1;
    ++d;
  }
  return d;
}

std::vector<std::uint64_t> HypercubeTopology::distance_histogram() const {
  // counts[d] = C(dim, d), built by the Pascal recurrence (exact in
  // uint64 for dim <= 25).
  std::vector<std::uint64_t> counts(dim_ + 1, 0);
  std::uint64_t c = 1;
  for (std::uint32_t d = 1; d <= dim_; ++d) {
    c = c * (dim_ - d + 1) / d;
    counts[d] = c;
  }
  return counts;
}

}  // namespace rdv::graph::families
