#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace rdv::graph {

/// Incremental construction of port-labeled graphs.
///
/// Usage:
///   GraphBuilder b(4, "square");
///   b.connect(0, /*port*/0, 1, /*port*/1);  // both half-edges at once
///   ...
///   Graph g = b.build();  // throws std::invalid_argument on bad wiring
///
/// build() requires every node's assigned ports to be exactly
/// 0..degree-1 (the model's port-numbering discipline) and validates the
/// resulting graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::uint32_t node_count, std::string name);

  /// Wire an undirected edge: port pu at u, port pv at v. Throws if
  /// either port is already in use, on self-loops, or on out-of-range
  /// nodes.
  GraphBuilder& connect(Node u, Port pu, Node v, Port pv);

  /// True if the given port at u is already wired.
  [[nodiscard]] bool port_used(Node u, Port p) const;

  /// Finalize; throws std::invalid_argument if ports are not contiguous
  /// from 0 at some node, or if validation fails.
  [[nodiscard]] Graph build() &&;

 private:
  std::uint32_t node_count_;
  std::string name_;
  // port -> half edge, per node; map keeps ports sorted for the
  // contiguity check.
  std::vector<std::map<Port, HalfEdge>> pending_;
};

}  // namespace rdv::graph
