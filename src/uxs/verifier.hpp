#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "uxs/uxs.hpp"

/// Verification of the UXS property on concrete graphs.
namespace rdv::uxs {

struct CoverageReport {
  /// True iff the application from every start node visits all nodes.
  bool universal = false;
  /// Start nodes whose application missed at least one node.
  std::vector<graph::Node> failing_starts;
  /// Over all starts, the maximum number of nodes left unvisited.
  std::uint32_t worst_missing = 0;
  /// Smallest prefix length (number of terms) sufficient for full
  /// coverage from every start; only meaningful when universal.
  std::size_t sufficient_prefix = 0;
};

/// Full coverage check of y on g.
[[nodiscard]] CoverageReport check_coverage(const graph::Graph& g,
                                            const Uxs& y);

/// Convenience: is y a UXS for this particular graph?
[[nodiscard]] bool is_uxs_for(const graph::Graph& g, const Uxs& y);

}  // namespace rdv::uxs
