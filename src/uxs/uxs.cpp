#include "uxs/uxs.hpp"

#include <algorithm>

#include "support/saturating.hpp"
#include "support/splitmix.hpp"

namespace rdv::uxs {

Uxs::Uxs(std::vector<std::uint64_t> terms, std::string provenance)
    : terms_(std::move(terms)), provenance_(std::move(provenance)) {}

Uxs Uxs::pseudo_random(std::size_t length, std::uint64_t seed) {
  support::SplitMix64 rng(seed);
  std::vector<std::uint64_t> terms(length);
  for (auto& t : terms) t = rng.next();
  return Uxs(std::move(terms), "splitmix64(seed=" + std::to_string(seed) +
                                   ",len=" + std::to_string(length) + ")");
}

std::size_t Uxs::default_length(std::uint32_t n) {
  const std::uint64_t bits = support::bits_for(std::max<std::uint32_t>(n, 1));
  return static_cast<std::size_t>(
      std::max<std::uint64_t>(8, 4ull * n * n * bits));
}

std::vector<graph::Node> apply_uxs(const graph::ITopology& g, graph::Node u,
                                   const Uxs& y) {
  std::vector<graph::Node> nodes;
  nodes.reserve(y.length() + 2);
  nodes.push_back(u);
  // First step: port 0 (Algorithm 1 line 5; degree >= 1 in connected
  // graphs of size >= 2).
  graph::Step s = g.step(u, 0);
  nodes.push_back(s.to);
  for (std::uint64_t a : y.terms()) {
    const graph::Port d = g.degree(s.to);
    const graph::Port next_port =
        static_cast<graph::Port>((s.entry_port + a) % d);
    s = g.step(s.to, next_port);
    nodes.push_back(s.to);
  }
  return nodes;
}

}  // namespace rdv::uxs
