#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "graph/topology.hpp"

/// Universal Exploration Sequences (Section 2, after Koucky/Reingold).
///
/// A sequence Y(n) = (a_1..a_M) of relative port increments is a UXS for
/// graphs of size n when its application R(u) from ANY start node u of
/// ANY such graph visits all nodes. Application semantics: u_0 = u,
/// u_1 = succ(u_0, 0), then u_{i+1} = succ(u_i, (p + a_i) mod d(u_i))
/// where p is the port by which u_i was entered.
///
/// The paper only needs existence (polynomial length, Reingold); no
/// practical explicit construction exists, so this library substitutes
/// deterministic fixed-seed pseudorandom streams plus an explicit
/// verifier and a corpus-verified builder (see DESIGN.md §2.1). Every
/// experiment validates the UXS property on the graphs it touches.
namespace rdv::uxs {

inline constexpr std::uint64_t kDefaultSeed = 0x5EEDUL;

class Uxs {
 public:
  Uxs(std::vector<std::uint64_t> terms, std::string provenance);

  [[nodiscard]] std::span<const std::uint64_t> terms() const noexcept {
    return terms_;
  }
  /// M — the number of relative-increment terms. The application path
  /// has M + 1 edges (the initial port-0 step plus one per term).
  [[nodiscard]] std::size_t length() const noexcept { return terms_.size(); }
  [[nodiscard]] const std::string& provenance() const noexcept {
    return provenance_;
  }

  /// Deterministic pseudorandom candidate stream of the given length.
  [[nodiscard]] static Uxs pseudo_random(std::size_t length,
                                         std::uint64_t seed = kDefaultSeed);

  /// The "safe" default length for size-n graphs used when no
  /// corpus-verified sequence is requested: 4 n^2 (floor(log2 n) + 1),
  /// min 8. (Polynomial, matching the paper's requirement; far shorter
  /// than worst-case constructions, hence the verifier.)
  [[nodiscard]] static std::size_t default_length(std::uint32_t n);

 private:
  std::vector<std::uint64_t> terms_;
  std::string provenance_;
};

/// The application R(u) of Y at u: the full node sequence
/// (u_0 .. u_{M+1}). Offline observer-side walk (agents traverse the
/// same application physically through the engine).
[[nodiscard]] std::vector<graph::Node> apply_uxs(const graph::ITopology& g,
                                                 graph::Node u,
                                                 const Uxs& y);

/// A provider maps an assumed graph size n to the canonical Y(n) both
/// agents use. Must be deterministic: agents are anonymous copies.
using UxsProvider = std::function<Uxs(std::uint32_t)>;

}  // namespace rdv::uxs
