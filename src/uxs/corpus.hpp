#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "uxs/uxs.hpp"

/// Corpus-verified UXS construction (DESIGN.md §2.1).
///
/// standard_corpus(n) gathers every library family instance of size
/// exactly n plus seeded random connected graphs; corpus_verified_uxs(n)
/// deterministically grows a fixed-seed pseudorandom stream until it
/// covers the whole corpus. The result is typically dramatically
/// shorter than worst-case constructions, which matters because
/// SymmRV's cost is multiplicative in the UXS length (Lemma 3.3).
/// Memoization lives one layer up: cache::cached_uxs /
/// cache::cached_uxs_provider resolve these through the process-global
/// artifact cache.
namespace rdv::uxs {

/// All library graphs of size exactly n: ring variants, path, complete,
/// torus/hypercube/trees/Q-hat when n matches their size formulas, and
/// `random_instances` seeded random connected graphs at several
/// densities. n >= 2.
[[nodiscard]] std::vector<graph::Graph> standard_corpus(
    std::uint32_t n, std::uint32_t random_instances = 6);

/// Smallest power-of-two-length fixed-seed stream (doubling from
/// max(8, 2n)) that covers every corpus graph from every start; throws
/// std::runtime_error if none up to max_length works (never observed;
/// the bound exists to keep the search total).
[[nodiscard]] Uxs corpus_verified_uxs(std::uint32_t n,
                                      std::uint64_t seed = kDefaultSeed,
                                      std::size_t max_length = 1u << 22);

/// Process-wide count of corpus_verified_uxs invocations (i.e. full
/// corpus verifications actually performed, cache/store hits excluded).
/// `rdv_bench` reports it so the warm-store CI job can assert a second
/// invocation performs ZERO verifications.
[[nodiscard]] std::uint64_t corpus_verification_count();

/// Smallest doubling-length fixed-seed stream covering one specific
/// graph (for experiments whose arena is known up front — e.g. sweeps
/// over seeded random graphs outside the standard corpus). Starts at
/// the cached corpus-verified sequence's length when available.
[[nodiscard]] Uxs covering_uxs(const graph::Graph& g,
                               std::uint64_t seed = kDefaultSeed,
                               std::size_t max_length = 1u << 22);

}  // namespace rdv::uxs
