#include "uxs/verifier.hpp"

#include <algorithm>

namespace rdv::uxs {

CoverageReport check_coverage(const graph::Graph& g, const Uxs& y) {
  CoverageReport report;
  report.universal = true;
  const std::uint32_t n = g.size();
  for (graph::Node u = 0; u < n; ++u) {
    const std::vector<graph::Node> walk = apply_uxs(g, u, y);
    std::vector<bool> seen(n, false);
    std::uint32_t covered = 0;
    std::size_t steps_needed = 0;
    for (std::size_t i = 0; i < walk.size(); ++i) {
      if (!seen[walk[i]]) {
        seen[walk[i]] = true;
        ++covered;
        steps_needed = i;
      }
      if (covered == n) break;
    }
    if (covered < n) {
      report.universal = false;
      report.failing_starts.push_back(u);
      report.worst_missing = std::max(report.worst_missing, n - covered);
    } else {
      // walk index i corresponds to i-1 terms consumed (index 1 is the
      // initial port-0 step).
      const std::size_t terms_used = steps_needed > 0 ? steps_needed - 1 : 0;
      report.sufficient_prefix =
          std::max(report.sufficient_prefix, terms_used);
    }
  }
  if (!report.universal) report.sufficient_prefix = 0;
  return report;
}

bool is_uxs_for(const graph::Graph& g, const Uxs& y) {
  return check_coverage(g, y).universal;
}

}  // namespace rdv::uxs
