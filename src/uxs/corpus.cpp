#include "uxs/corpus.hpp"

#include <atomic>
#include <stdexcept>

#include "graph/families/families.hpp"
#include "graph/families/qhat.hpp"
#include "uxs/verifier.hpp"

namespace rdv::uxs {

using graph::Graph;
namespace families = rdv::graph::families;

std::vector<Graph> standard_corpus(std::uint32_t n,
                                   std::uint32_t random_instances) {
  if (n < 2) throw std::invalid_argument("standard_corpus: n >= 2");
  std::vector<Graph> corpus;
  corpus.push_back(families::path_graph(n));
  corpus.push_back(families::complete(n));
  if (n >= 3) {
    corpus.push_back(families::oriented_ring(n));
    corpus.push_back(families::scrambled_ring(n, /*seed=*/11));
    corpus.push_back(families::scrambled_ring(n, /*seed=*/12));
    corpus.push_back(families::star(n));
    corpus.push_back(families::complete_bipartite(n / 2, n - n / 2));
  }
  if (n >= 6 && n % 2 == 0) {
    corpus.push_back(families::ring_with_chord(n));
  }
  for (std::uint32_t w = 2; w * 2 <= n; ++w) {
    if (n % w == 0 && n / w >= 2 && n / w >= w) {
      corpus.push_back(families::grid(w, n / w));
      break;  // one grid aspect suffices
    }
  }
  // Families with constrained size formulas.
  for (std::uint32_t w = 3; w * 3 <= n; ++w) {
    if (n % w == 0 && n / w >= 3) {
      corpus.push_back(families::oriented_torus(w, n / w));
      break;  // one torus aspect is enough for the corpus
    }
  }
  for (std::uint32_t dim = 1; (1u << dim) <= n; ++dim) {
    if ((1u << dim) == n) corpus.push_back(families::hypercube(dim));
  }
  for (std::uint32_t b = 1; b <= 4; ++b) {
    for (std::uint32_t t = 1; t <= 10; ++t) {
      std::uint64_t size = 1;
      std::uint64_t level = 1;
      for (std::uint32_t i = 0; i < t; ++i) {
        level *= b;
        size += level;
      }
      if (size == n) corpus.push_back(families::balanced_tree(b, t));
      if (2 * size == n) {
        corpus.push_back(families::symmetric_double_tree(b, t));
      }
      if (size > n) break;
    }
  }
  for (std::uint32_t h = 2; h <= 6; ++h) {
    if (families::qhat_size(h) == n) {
      corpus.push_back(families::qhat_explicit(h).graph);
    }
  }
  // Seeded random graphs across densities.
  const std::uint64_t max_extra =
      static_cast<std::uint64_t>(n) * (n - 1) / 2 - (n - 1);
  for (std::uint32_t i = 0; i < random_instances; ++i) {
    const std::uint32_t extra = static_cast<std::uint32_t>(
        max_extra == 0 ? 0 : (max_extra * i) / std::max(1u, 2 * random_instances));
    corpus.push_back(families::random_connected(n, extra, /*seed=*/100 + i));
  }
  return corpus;
}

namespace {
std::atomic<std::uint64_t> g_corpus_verifications{0};
}  // namespace

std::uint64_t corpus_verification_count() {
  return g_corpus_verifications.load(std::memory_order_relaxed);
}

Uxs corpus_verified_uxs(std::uint32_t n, std::uint64_t seed,
                        std::size_t max_length) {
  g_corpus_verifications.fetch_add(1, std::memory_order_relaxed);
  const std::vector<Graph> corpus = standard_corpus(n);
  std::size_t length = std::max<std::size_t>(8, 2 * n);
  while (length <= max_length) {
    Uxs candidate = Uxs::pseudo_random(length, seed);
    bool covers = true;
    for (const Graph& g : corpus) {
      if (!is_uxs_for(g, candidate)) {
        covers = false;
        break;
      }
    }
    if (covers) {
      return Uxs(std::vector<std::uint64_t>(candidate.terms().begin(),
                                            candidate.terms().end()),
                 "corpus-verified(n=" + std::to_string(n) +
                     ",seed=" + std::to_string(seed) +
                     ",len=" + std::to_string(length) + ")");
    }
    length *= 2;
  }
  throw std::runtime_error("corpus_verified_uxs: no covering length up to cap");
}

Uxs covering_uxs(const graph::Graph& g, std::uint64_t seed,
                 std::size_t max_length) {
  std::size_t length = std::max<std::size_t>(8, 2 * g.size());
  while (length <= max_length) {
    Uxs candidate = Uxs::pseudo_random(length, seed);
    if (is_uxs_for(g, candidate)) {
      return Uxs(std::vector<std::uint64_t>(candidate.terms().begin(),
                                            candidate.terms().end()),
                 "graph-verified(" + g.name() +
                     ",seed=" + std::to_string(seed) +
                     ",len=" + std::to_string(length) + ")");
    }
    length *= 2;
  }
  throw std::runtime_error("covering_uxs: no covering length up to cap");
}

}  // namespace rdv::uxs
