// T6 — Theorem 4.1: on Q-hat-h with h = 2D, D = 2k, any algorithm
// serving every STIC [(r, v), D] with v in Z needs time >= 2^(k-1).
// Regenerates the exponential curve: certified floor, Steiner-walk
// floor for root-side strategies, the dedicated-Z algorithm's predicted
// worst case, and the simulated worst case on the (lazily materialized)
// theorem-regime graph.
#include <algorithm>
#include <cstdio>

#include "analysis/experiments.hpp"
#include "analysis/steiner.hpp"
#include "graph/families/qhat.hpp"
#include "graph/families/qhat_implicit.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"

int main() {
  namespace families = rdv::graph::families;

  rdv::support::Table table({"k", "D=2k", "h=2D", "n (explicit)", "|Z|",
                             "floor 2^(k-1)", "Steiner walk",
                             "dedicated predicted worst",
                             "simulated worst", "nodes materialized"});

  const std::uint32_t max_k = rdv::analysis::full_mode() ? 7u : 5u;
  for (std::uint32_t k = 1; k <= max_k; ++k) {
    const families::QhatImplicitTopology topo(4 * k);
    const auto z = families::qhat_z_set(topo, topo.root(), k);
    const auto program = rdv::analysis::dedicated_z_program(k);
    std::uint64_t worst = 0;
    bool all_met = true;
    rdv::sim::RunConfig config;
    config.max_rounds = 64ull * k * (std::uint64_t{2} << k);
    for (const auto v : z) {
      const auto r = rdv::sim::run_anonymous(topo, program, topo.root(),
                                             v, 2 * k, config);
      if (!r.met) {
        all_met = false;
        continue;
      }
      worst = std::max(worst, r.meet_from_later_start);
    }
    table.add_row(
        {std::to_string(k), std::to_string(2 * k), std::to_string(4 * k),
         rdv::support::format_rounds(families::qhat_size(4 * k)),
         std::to_string(z.size()),
         std::to_string(rdv::analysis::theorem41_lower_bound(k)),
         std::to_string(rdv::analysis::steiner_closed_walk(k)),
         std::to_string(rdv::analysis::dedicated_z_predicted_rounds(
             k, rdv::analysis::midpoint_count(k))),
         all_met ? std::to_string(worst) : "MISSED",
         std::to_string(topo.materialized())});
  }
  rdv::analysis::emit_table(
      "t6_lower_bound_qhat",
      "T6 (Theorem 4.1): exponential lower bound on Q-hat", table);
  std::printf(
      "\nAll columns scale like 2^k: rendezvous time exponential in the "
      "initial distance D is unavoidable.\n");
  return 0;
}
