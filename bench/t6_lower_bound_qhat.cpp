// Thin shim: T6 now lives in src/exp/scenarios/t6_lower_bound_qhat.cpp
// and runs on the experiment registry (see bench/rdv_bench.cpp for the
// unified driver).
#include "exp/driver.hpp"

int main() { return rdv::exp::run_single("t6_lower_bound_qhat"); }
