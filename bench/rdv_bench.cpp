// The unified experiment driver: lists, filters, and runs every
// experiment registered in src/exp/ on the parallel sweep substrate.
//   rdv_bench --list
//   rdv_bench t5_universal_time fig1
//   rdv_bench --all --smoke --check
#include "exp/driver.hpp"

int main(int argc, char** argv) { return rdv::exp::run_main(argc, argv); }
