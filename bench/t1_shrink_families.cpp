// Thin shim: T1 now lives in src/exp/scenarios/t1_shrink_families.cpp
// and runs on the experiment registry (see bench/rdv_bench.cpp for the
// unified driver).
#include "exp/driver.hpp"

int main() { return rdv::exp::run_single("t1_shrink_families"); }
