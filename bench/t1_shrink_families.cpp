// T1 — Section 3 examples after Definition 3.1:
//   * oriented torus: Shrink(u,v) = dist(u,v) for every pair;
//   * symmetric double trees: Shrink = 1 for every symmetric pair,
//     at arbitrary distance.
//
// Runs on sweep::run_stic_sweep: each graph's symmetric pairs become a
// STIC case list whose per-pair Shrink (the expensive product BFS)
// executes chunked on the shared pool; the view partition is resolved
// once per graph through the artifact cache.
#include <cstdio>
#include <memory>

#include "analysis/experiments.hpp"
#include "cache/artifact_cache.hpp"
#include "graph/families/families.hpp"
#include "support/table.hpp"
#include "sweep/sweep.hpp"
#include "views/refinement.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::analysis::Stic;
  using rdv::graph::Graph;
  using rdv::graph::Node;

  rdv::support::Table table({"graph", "sym pairs", "max distance",
                             "max Shrink", "Shrink==dist everywhere?",
                             "Shrink==1 everywhere?"});

  std::vector<Graph> graphs;
  graphs.push_back(families::oriented_torus(3, 3));
  graphs.push_back(families::oriented_torus(4, 3));
  graphs.push_back(families::oriented_ring(8));
  graphs.push_back(families::symmetric_double_tree(2, 1));
  graphs.push_back(families::symmetric_double_tree(2, 2));
  graphs.push_back(families::symmetric_double_tree(3, 2));
  if (rdv::analysis::full_mode()) {
    graphs.push_back(families::oriented_torus(5, 4));
    graphs.push_back(families::symmetric_double_tree(2, 4));
  }

  for (const Graph& g : graphs) {
    const std::shared_ptr<const rdv::views::ViewClasses> classes =
        rdv::cache::cached_view_classes(g);
    std::vector<Stic> pairs;
    for (const auto& [u, v] : rdv::views::symmetric_pairs(g, *classes)) {
      pairs.push_back(Stic{u, v, 0});
    }
    // Kernel computes Shrink (record.cls.shrink) on the pool; the cheap
    // BFS distance rides along in the merge loop below.
    const rdv::sweep::SticKernel kernel = [&g, &classes](const Stic& stic) {
      rdv::sweep::SticRecord record;
      record.stic = stic;
      record.cls = rdv::analysis::classify_stic(g, *classes, stic);
      return record;
    };
    const rdv::sweep::SticSweepResult result =
        rdv::sweep::run_stic_sweep(pairs, kernel);

    std::uint32_t max_dist = 0;
    std::uint32_t max_shrink = 0;
    bool shrink_eq_dist = true;
    bool shrink_eq_one = true;
    for (const rdv::sweep::SticRecord& record : result.records) {
      const std::uint32_t dist =
          rdv::graph::distance(g, record.stic.u, record.stic.v);
      const std::uint32_t s = record.cls.shrink;
      max_dist = std::max(max_dist, dist);
      max_shrink = std::max(max_shrink, s);
      if (s != dist) shrink_eq_dist = false;
      if (s != 1) shrink_eq_one = false;
    }
    table.add_row({g.name(), std::to_string(pairs.size()),
                   std::to_string(max_dist), std::to_string(max_shrink),
                   shrink_eq_dist ? "yes" : "no",
                   shrink_eq_one ? "yes" : "no"});
  }
  rdv::analysis::emit_table("t1_shrink_families",
                            "T1 (Section 3 examples): Shrink across "
                            "families",
                            table);
  std::printf(
      "\nPaper: tori cannot shrink (Shrink = dist); symmetric double "
      "trees always shrink to 1.\n");
  return 0;
}
