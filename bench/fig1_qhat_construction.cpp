// F1 — Figure 1, Section 4: the Q-hat construction.
// Regenerates the structural facts the figure illustrates: node/edge
// counts, 4-regularity, the N-S / E-W port discipline on every edge,
// leaf counts per type, and full symmetry (one view class).
#include <cstdio>

#include "analysis/experiments.hpp"
#include "graph/families/qhat.hpp"
#include "support/table.hpp"
#include "views/refinement.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::graph::Node;
  using rdv::graph::Port;

  rdv::support::Table table({"h", "nodes", "= 1+2(3^h-1)", "edges",
                             "4-regular", "N-S/E-W ports",
                             "leaves/type = 3^(h-1)", "view classes"});
  const std::uint32_t max_h = rdv::analysis::full_mode() ? 6u : 4u;
  for (std::uint32_t h = 2; h <= max_h; ++h) {
    const auto q = families::qhat_explicit(h);
    bool regular = true;
    bool opposite_ports = true;
    for (Node v = 0; v < q.graph.size(); ++v) {
      if (q.graph.degree(v) != 4) regular = false;
      for (Port p = 0; p < q.graph.degree(v); ++p) {
        if (q.graph.step(v, p).entry_port !=
            rdv::graph::families::to_port(
                opposite(static_cast<families::Dir>(p)))) {
          opposite_ports = false;
        }
      }
    }
    bool leaf_counts = true;
    for (const auto& leaves : q.leaves_by_type) {
      if (leaves.size() != families::qhat_leaves_per_type(h)) {
        leaf_counts = false;
      }
    }
    const auto classes = rdv::views::compute_view_classes(q.graph);
    table.add_row(
        {std::to_string(h), std::to_string(q.graph.size()),
         std::to_string(families::qhat_size(h)),
         std::to_string(q.graph.edge_count()), regular ? "yes" : "NO",
         opposite_ports ? "yes" : "NO", leaf_counts ? "yes" : "NO",
         std::to_string(classes.class_count)});
  }
  rdv::analysis::emit_table(
      "f1_qhat_construction",
      "F1 (Figure 1, Section 4): Q-hat construction", table);
  return 0;
}
