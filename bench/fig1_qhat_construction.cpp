// Thin shim: F1 now lives in
// src/exp/scenarios/fig1_qhat_construction.cpp and runs on the
// experiment registry (see bench/rdv_bench.cpp for the unified driver).
#include "exp/driver.hpp"

int main() { return rdv::exp::run_single("f1_qhat_construction"); }
