// Thin shim: T4 now lives in src/exp/scenarios/t4_asymm_rv_time.cpp and
// runs on the experiment registry (see bench/rdv_bench.cpp for the
// unified driver).
#include "exp/driver.hpp"

int main() { return rdv::exp::run_single("t4_asymm_rv_time"); }
