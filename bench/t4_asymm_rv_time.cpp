// T4 — Proposition 3.1 (substituted AsymmRV, DESIGN.md §2.2):
// rendezvous from nonsymmetric positions at any delay, in time
// polynomial in n and delta. Shows measured times against the
// asymm_rv_time_bound budget across sizes and delays.
#include <cstdio>

#include "analysis/experiments.hpp"
#include "core/asymm_rv.hpp"
#include "core/bounds.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "support/table.hpp"
#include "uxs/corpus.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::graph::Graph;

  rdv::support::Table table({"graph", "n", "delay", "M", "met",
                             "measured rounds", "budget bound",
                             "measured/bound"});

  std::vector<std::uint32_t> sizes = {4, 5, 6, 8};
  if (rdv::analysis::full_mode()) sizes.push_back(12);

  for (const std::uint32_t n : sizes) {
    const Graph g = families::path_graph(n);
    const auto& y = rdv::uxs::cached_uxs(n);
    for (const std::uint64_t delay : {0ull, 2ull, 8ull}) {
      const std::uint64_t bound =
          rdv::core::asymm_rv_time_bound(n, delay, y.length());
      rdv::sim::RunConfig config;
      config.max_rounds =
          rdv::support::sat_add(rdv::support::sat_mul(2, bound), delay);
      const auto r = rdv::sim::run_anonymous(
          g, rdv::core::asymm_rv_program(n, y, bound), 0, n / 2, delay,
          config);
      table.add_row(
          {g.name(), std::to_string(n), std::to_string(delay),
           std::to_string(y.length()), r.met ? "yes" : "NO",
           rdv::support::format_rounds(r.meet_from_later_start),
           rdv::support::format_rounds(bound),
           r.met ? rdv::support::format_double(
                       static_cast<double>(r.meet_from_later_start) /
                       static_cast<double>(bound))
                 : "-"});
    }
  }
  rdv::analysis::emit_table(
      "t4_asymm_rv_time",
      "T4 (Prop. 3.1 substitute): AsymmRV on nonsymmetric STICs",
      table);
  std::printf(
      "\nTime grows polynomially with n and delta (contrast T5/T6).\n");
  return 0;
}
