// T4 — Proposition 3.1 (substituted AsymmRV, DESIGN.md §2.2):
// rendezvous from nonsymmetric positions at any delay, in time
// polynomial in n and delta. Shows measured times against the
// asymm_rv_time_bound budget across sizes and delays.
//
// Runs on sweep::run_stic_sweep: each size's delay cases execute as one
// chunked sweep on the shared pool, and the corpus-verified UXS is
// resolved through the artifact cache (computed once per size no matter
// how many delay cases race for it).
#include <cstdio>
#include <memory>

#include "analysis/experiments.hpp"
#include "cache/artifact_cache.hpp"
#include "core/asymm_rv.hpp"
#include "core/bounds.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "support/table.hpp"
#include "sweep/sweep.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::analysis::Stic;
  using rdv::graph::Graph;

  rdv::support::Table table({"graph", "n", "delay", "M", "met",
                             "measured rounds", "budget bound",
                             "measured/bound"});

  std::vector<std::uint32_t> sizes = {4, 5, 6, 8};
  if (rdv::analysis::full_mode()) sizes.push_back(12);

  for (const std::uint32_t n : sizes) {
    const Graph g = families::path_graph(n);
    std::vector<Stic> stics;
    for (const std::uint64_t delay : {0ull, 2ull, 8ull}) {
      stics.push_back(Stic{0, n / 2, delay});
    }
    const rdv::sweep::SticKernel kernel = [&g, n](const Stic& stic) {
      const std::shared_ptr<const rdv::uxs::Uxs> y =
          rdv::cache::cached_uxs(n);
      const std::uint64_t bound =
          rdv::core::asymm_rv_time_bound(n, stic.delay, y->length());
      rdv::sim::RunConfig config;
      config.max_rounds = rdv::support::sat_add(
          rdv::support::sat_mul(2, bound), stic.delay);
      rdv::sweep::SticRecord record;
      record.stic = stic;
      record.run = rdv::sim::run_anonymous(
          g, rdv::core::asymm_rv_program(n, *y, bound), stic.u, stic.v,
          stic.delay, config);
      const rdv::sim::RunResult& r = record.run;
      record.cells = {
          g.name(), std::to_string(n), std::to_string(stic.delay),
          std::to_string(y->length()), r.met ? "yes" : "NO",
          rdv::support::format_rounds(r.meet_from_later_start),
          rdv::support::format_rounds(bound),
          r.met ? rdv::support::format_double(
                      static_cast<double>(r.meet_from_later_start) /
                      static_cast<double>(bound))
                : "-"};
      return record;
    };
    const rdv::sweep::SticSweepResult result =
        rdv::sweep::run_stic_sweep(stics, kernel);
    for (const rdv::sweep::SticRecord& record : result.records) {
      table.add_row(record.cells);
    }
  }
  rdv::analysis::emit_table(
      "t4_asymm_rv_time",
      "T4 (Prop. 3.1 substitute): AsymmRV on nonsymmetric STICs",
      table);
  std::printf(
      "\nTime grows polynomially with n and delta (contrast T5/T6).\n");
  return 0;
}
