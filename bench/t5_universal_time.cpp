// Thin shim: T5 now lives in src/exp/scenarios/t5_universal_time.cpp
// and runs on the experiment registry (see bench/rdv_bench.cpp for the
// unified driver).
#include "exp/driver.hpp"

int main() { return rdv::exp::run_single("t5_universal_time"); }
