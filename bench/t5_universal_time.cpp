// T5 — Theorem 3.1 + Proposition 4.1: UniversalRV meets every feasible
// STIC with zero knowledge; its time blows up like O(n+delta)^O(n+delta)
// (the guaranteed phase index and its budget grow super-exponentially).
#include <cstdio>

#include "analysis/experiments.hpp"
#include "cache/artifact_cache.hpp"
#include "core/bounds.hpp"
#include "core/universal_rv.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "support/table.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

namespace {

std::uint64_t schedule_budget_through(std::uint64_t P) {
  std::uint64_t total = 0;
  for (std::uint64_t p = 1; p <= P; ++p) {
    const auto t = rdv::core::phase_decode(p);
    if (t.d >= t.n) continue;
    const auto y =
        rdv::cache::cached_uxs(static_cast<std::uint32_t>(t.n));
    total = rdv::support::sat_add(
        total,
        rdv::core::universal_phase_duration(t.n, t.d, t.delta,
                                            y->length()));
  }
  return total;
}

}  // namespace

int main() {
  namespace families = rdv::graph::families;
  using rdv::graph::Graph;
  using rdv::graph::Node;

  rdv::support::Table table({"STIC", "n", "delta", "sym?", "Shrink",
                             "guaranteed phase P", "schedule budget",
                             "met", "measured rounds"});

  struct Case {
    const char* label;
    Graph g;
    Node u, v;
    std::uint64_t delay;
  };
  std::vector<Case> cases;
  cases.push_back(
      {"two-node delta=1", families::two_node_graph(), 0, 1, 1});
  cases.push_back(
      {"two-node delta=2", families::two_node_graph(), 0, 1, 2});
  cases.push_back({"path(3) delta=0", families::path_graph(3), 0, 2, 0});
  cases.push_back({"path(4) delta=1", families::path_graph(4), 0, 3, 1});
  cases.push_back(
      {"ring(3) delta=1", families::oriented_ring(3), 0, 1, 1});
  if (rdv::analysis::full_mode()) {
    cases.push_back(
        {"ring(4) delta=2", families::oriented_ring(4), 0, 2, 2});
    cases.push_back({"double-tree(1,1) delta=1",
                     families::symmetric_double_tree(1, 1), 1, 3, 1});
  }

  for (Case& c : cases) {
    const auto classes = rdv::views::compute_view_classes(c.g);
    const bool sym = classes.symmetric(c.u, c.v);
    const std::uint32_t shrink = rdv::views::shrink(c.g, c.u, c.v);
    const std::uint64_t P =
        sym ? rdv::core::guaranteed_phase_symmetric(c.g.size(), shrink,
                                                    c.delay)
            : rdv::core::guaranteed_phase_nonsymmetric(c.g.size(),
                                                       c.delay);
    rdv::core::UniversalOptions options;
    options.max_phases = P + 8;
    rdv::sim::RunConfig config;
    config.max_rounds = 1u << 24;
    const auto r = rdv::sim::run_anonymous(
        c.g, rdv::core::universal_rv_program(options), c.u, c.v, c.delay,
        config);
    table.add_row({c.label, std::to_string(c.g.size()),
                   std::to_string(c.delay), sym ? "yes" : "no",
                   std::to_string(shrink), std::to_string(P),
                   rdv::support::format_rounds(schedule_budget_through(P)),
                   r.met ? "yes" : "NO",
                   rdv::support::format_rounds(r.meet_from_later_start)});
  }
  rdv::analysis::emit_table(
      "t5_universal_time",
      "T5 (Thm 3.1 / Prop 4.1): UniversalRV, zero knowledge", table);
  std::printf(
      "\nThe schedule budget through the guaranteed phase grows "
      "super-polynomially in n + delta.\n");
  return 0;
}
