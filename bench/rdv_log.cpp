// rdv_log — result-log consumer CLI (ROADMAP "consumer CLI for the
// binary result log"): dump a log written by `rdv_bench --result-log`
// as CSV or JSON, or diff two logs. wall_micros is scheduling noise
// and is excluded by default, so two runs of the same workload at
// different thread counts dump AND diff identically — the property the
// CI census-log step byte-checks.
#include <cstdio>
#include <exception>
#include <string>
#include <string_view>
#include <vector>

#include "store/log_tools.hpp"
#include "store/result_log.hpp"

namespace {

constexpr const char* kUsage = R"(usage: rdv_log dump <log> [--json] [--wall]
       rdv_log diff <a> <b> [--strict]

dump  renders every record of a binary result log to stdout as CSV
      (default) or JSON (--json); --wall includes the wall-clock field
      (excluded by default so dumps are run-to-run comparable).
diff  compares two logs record by record through their canonical
      encodings, ignoring wall-clock unless --strict. Exit 0 when
      identical, 1 when they differ.

Logs are written by `rdv_bench --result-log <file>`.
)";

std::vector<rdv::store::ResultRecord> load_or_die(const std::string& path) {
  try {
    return rdv::store::read_result_log(path);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "rdv_log: cannot read %s: %s\n", path.c_str(),
                 ex.what());
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string_view> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    std::fputs(kUsage, args.empty() ? stderr : stdout);
    return args.empty() ? 2 : 0;
  }

  if (args[0] == "dump") {
    std::string path;
    bool json = false;
    bool wall = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--json") {
        json = true;
      } else if (args[i] == "--wall") {
        wall = true;
      } else if (!args[i].empty() && args[i][0] == '-') {
        std::fprintf(stderr, "rdv_log: unknown dump option %.*s\n%s",
                     static_cast<int>(args[i].size()), args[i].data(),
                     kUsage);
        return 2;
      } else if (path.empty()) {
        path = args[i];
      } else {
        std::fprintf(stderr, "rdv_log: dump takes one log\n%s", kUsage);
        return 2;
      }
    }
    if (path.empty()) {
      std::fprintf(stderr, "rdv_log: dump needs a log path\n%s", kUsage);
      return 2;
    }
    const auto records = load_or_die(path);
    const std::string rendered =
        json ? rdv::store::render_log_json(records, wall)
             : rdv::store::render_log_csv(records, wall);
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
    return 0;
  }

  if (args[0] == "diff") {
    std::vector<std::string> paths;
    bool strict = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i] == "--strict") {
        strict = true;
      } else if (!args[i].empty() && args[i][0] == '-') {
        std::fprintf(stderr, "rdv_log: unknown diff option %.*s\n%s",
                     static_cast<int>(args[i].size()), args[i].data(),
                     kUsage);
        return 2;
      } else {
        paths.emplace_back(args[i]);
      }
    }
    if (paths.size() != 2) {
      std::fprintf(stderr, "rdv_log: diff takes exactly two logs\n%s",
                   kUsage);
      return 2;
    }
    const auto a = load_or_die(paths[0]);
    const auto b = load_or_die(paths[1]);
    const rdv::store::LogDiff diff =
        rdv::store::diff_logs(a, b, /*ignore_wall=*/!strict);
    if (!diff.identical) {
      std::fprintf(stderr, "rdv_log: %s and %s differ:\n%s",
                   paths[0].c_str(), paths[1].c_str(), diff.report.c_str());
      return 1;
    }
    std::printf("identical: %zu records\n", a.size());
    return 0;
  }

  std::fprintf(stderr, "rdv_log: unknown command %.*s\n%s",
               static_cast<int>(args[0].size()), args[0].data(), kUsage);
  return 2;
}
