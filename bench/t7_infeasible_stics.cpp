// Thin shim: T7 now lives in src/exp/scenarios/t7_infeasible_stics.cpp
// and runs on the experiment registry (see bench/rdv_bench.cpp for the
// unified driver).
#include "exp/driver.hpp"

int main() { return rdv::exp::run_single("t7_infeasible_stics"); }
