// T7 — Lemma 3.1: symmetric STICs with delta < Shrink(u, v) are
// infeasible. The optimal-oblivious search exhausts the entire joint
// configuration space (for symmetric starts this covers ALL
// deterministic algorithms) and certifies that no algorithm meets;
// UniversalRV runs confirm by never meeting within large caps.
#include <cstdio>

#include "analysis/experiments.hpp"
#include "analysis/optimal_search.hpp"
#include "core/universal_rv.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"
#include "views/shrink.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::graph::Graph;
  using rdv::graph::Node;

  rdv::support::Table table({"graph", "pair", "Shrink", "delta",
                             "exhaustive search", "states",
                             "UniversalRV met?"});

  struct Case {
    Graph g;
    Node u, v;
  };
  std::vector<Case> cases;
  cases.push_back({families::two_node_graph(), 0, 1});
  cases.push_back({families::oriented_ring(6), 0, 3});
  cases.push_back({families::oriented_ring(5), 0, 2});
  {
    Graph g = families::symmetric_double_tree(2, 1);
    const Node m = families::double_tree_mirror(g, 1);
    cases.push_back({std::move(g), 1, m});
  }
  if (rdv::analysis::full_mode()) {
    cases.push_back({families::oriented_torus(3, 3), 0, 4});
    cases.push_back({families::hypercube(3), 0, 7});
  }

  for (const Case& c : cases) {
    const std::uint32_t s = rdv::views::shrink(c.g, c.u, c.v);
    for (std::uint64_t delta = 0; delta < s; ++delta) {
      rdv::analysis::OptimalSearchConfig search_config;
      search_config.horizon = 1u << 16;
      const auto opt =
          rdv::analysis::optimal_oblivious(c.g, c.u, c.v, delta,
                                           search_config);
      const char* verdict =
          opt.outcome == rdv::analysis::OptimalOutcome::kProvenInfeasible
              ? "proven infeasible"
              : (opt.outcome == rdv::analysis::OptimalOutcome::kMet
                     ? "MET (bug!)"
                     : "horizon");
      rdv::core::UniversalOptions options;
      options.max_phases = 40;
      rdv::sim::RunConfig config;
      config.max_rounds = 1u << 21;
      const auto run = rdv::sim::run_anonymous(
          c.g, rdv::core::universal_rv_program(options), c.u, c.v, delta,
          config);
      table.add_row({c.g.name(),
                     std::to_string(c.u) + "," + std::to_string(c.v),
                     std::to_string(s), std::to_string(delta), verdict,
                     std::to_string(opt.states_explored),
                     run.met ? "MET (bug!)" : "no"});
    }
  }
  rdv::analysis::emit_table(
      "t7_infeasible_stics",
      "T7 (Lemma 3.1): delta < Shrink is infeasible — exhaustive "
      "certificates",
      table);
  return 0;
}
