// M1 — substrate micro-benchmarks (google-benchmark): view refinement,
// Shrink product-BFS, UXS verification, engine round throughput, and
// the implicit Q-hat step resolution.
#include <benchmark/benchmark.h>

#include "core/asymm_rv.hpp"
#include "graph/families/families.hpp"
#include "graph/families/qhat.hpp"
#include "graph/families/qhat_implicit.hpp"
#include "sim/engine.hpp"
#include "uxs/uxs.hpp"
#include "uxs/verifier.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

namespace {

namespace families = rdv::graph::families;

void BM_ViewRefinement(benchmark::State& state) {
  const auto g = families::random_connected(
      static_cast<std::uint32_t>(state.range(0)), 2 * state.range(0), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rdv::views::compute_view_classes(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ViewRefinement)->Range(8, 512)->Complexity();

void BM_ShrinkProductBfs(benchmark::State& state) {
  const auto g = families::oriented_torus(
      static_cast<std::uint32_t>(state.range(0)),
      static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rdv::views::shrink(g, 0, 1));
  }
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_ShrinkProductBfs)->DenseRange(3, 9, 2)->Complexity();

void BM_UxsVerification(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto g = families::random_connected(n, 2 * n, 5);
  const auto y = rdv::uxs::Uxs::pseudo_random(8ull * n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rdv::uxs::check_coverage(g, y));
  }
}
BENCHMARK(BM_UxsVerification)->Range(8, 256);

void BM_EngineRoundThroughput(benchmark::State& state) {
  const auto g = families::oriented_ring(64);
  rdv::sim::AgentProgram mover = [](rdv::sim::Mailbox& mb,
                                    rdv::sim::Observation) ->
      rdv::sim::Proc {
        return [](rdv::sim::Mailbox& mb2) -> rdv::sim::Proc {
          for (;;) co_await mb2.move(0);
        }(mb);
      };
  rdv::sim::RunConfig config;
  config.max_rounds = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rdv::sim::run_anonymous(g, mover, 0, 32, 0, config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineRoundThroughput)->Range(1 << 10, 1 << 16);

void BM_QhatImplicitStep(benchmark::State& state) {
  const families::QhatImplicitTopology topo(20);
  rdv::graph::Node v = topo.root();
  std::uint32_t dir = 0;
  for (auto _ : state) {
    const auto s = topo.step(v, dir % 4);
    v = s.to;
    ++dir;
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_QhatImplicitStep);

}  // namespace

BENCHMARK_MAIN();
