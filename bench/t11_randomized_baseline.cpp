// T11 — the randomized baseline from the paper's conclusion:
// "the synchronous randomized counterpart ... is straightforward ...
// two random walks meet with high probability in time polynomial in
// the size of the graph." Independent lazy random walks are run on
// STICs that are deterministically FEASIBLE and, crucially, on
// symmetric simultaneous-start STICs that are deterministically
// IMPOSSIBLE (Lemma 3.1) — randomness breaks the symmetry that time
// alone cannot.
#include <cstdio>

#include "analysis/experiments.hpp"
#include "analysis/stics.hpp"
#include "core/random_walk.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::graph::Graph;
  using rdv::graph::Node;

  rdv::support::Table table({"graph", "n", "STIC", "deterministic",
                             "runs met", "mean rounds", "max rounds"});

  struct Case {
    Graph g;
    Node u, v;
    std::uint64_t delay;
  };
  std::vector<Case> cases;
  cases.push_back({families::oriented_ring(8), 0, 4, 0});
  cases.push_back({families::oriented_ring(16), 0, 8, 0});
  cases.push_back({families::oriented_torus(3, 3), 0, 4, 0});
  cases.push_back({families::symmetric_double_tree(2, 2), 6, 13, 0});
  cases.push_back({families::hypercube(3), 0, 7, 2});
  if (rdv::analysis::full_mode()) {
    cases.push_back({families::oriented_ring(32), 0, 16, 0});
    cases.push_back({families::oriented_torus(5, 5), 0, 12, 0});
    cases.push_back({families::random_connected(24, 12, 5), 0, 12, 0});
  }

  const int kRuns = rdv::analysis::full_mode() ? 50 : 20;
  for (const Case& c : cases) {
    const bool sym = rdv::views::symmetric(c.g, c.u, c.v);
    const std::uint32_t s = rdv::views::shrink(c.g, c.u, c.v);
    const bool feasible = !sym || c.delay >= s;
    int met = 0;
    std::uint64_t total = 0;
    std::uint64_t worst = 0;
    for (int run = 0; run < kRuns; ++run) {
      rdv::sim::RunConfig config;
      config.max_rounds = 1u << 22;
      const auto r = rdv::sim::run_pair(
          c.g,
          rdv::core::lazy_random_walk_program(1000 + 2 * run),
          rdv::core::lazy_random_walk_program(2000 + 2 * run + 1), c.u,
          c.v, c.delay, config);
      if (r.met) {
        ++met;
        total += r.meet_from_later_start;
        worst = std::max(worst, r.meet_from_later_start);
      }
    }
    table.add_row(
        {c.g.name(), std::to_string(c.g.size()),
         "[(" + std::to_string(c.u) + "," + std::to_string(c.v) + ")," +
             std::to_string(c.delay) + "]",
         feasible ? "feasible" : "IMPOSSIBLE (Lemma 3.1)",
         std::to_string(met) + "/" + std::to_string(kRuns),
         met ? rdv::support::format_double(
                   static_cast<double>(total) / met, 1)
             : "-",
         met ? std::to_string(worst) : "-"});
  }
  rdv::analysis::emit_table(
      "t11_randomized_baseline",
      "T11 (Conclusion remark): independent lazy random walks", table);
  std::printf(
      "\nRandomized agents meet in polynomial time even on STICs that "
      "are impossible for every deterministic algorithm.\n");
  return 0;
}
