// Thin shim: T11 now lives in
// src/exp/scenarios/t11_randomized_baseline.cpp and runs on the
// experiment registry (see bench/rdv_bench.cpp for the unified driver).
#include "exp/driver.hpp"

int main() { return rdv::exp::run_single("t11_randomized_baseline"); }
