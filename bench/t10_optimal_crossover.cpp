// T10 — the feasibility crossover, measured exactly.
// Corollary 3.1 predicts a sharp threshold at delta = Shrink(u, v) for
// symmetric pairs: below it NO algorithm meets, at it rendezvous is
// possible. The exhaustive searcher certifies both sides and emits the
// optimal witness string at the threshold, which is replayed through
// the simulation engine as an end-to-end consistency check.
#include <cstdio>

#include "analysis/experiments.hpp"
#include "analysis/optimal_search.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"
#include "views/refinement.hpp"
#include "views/shrink.hpp"

namespace {

std::string render_witness(
    const std::vector<rdv::analysis::ObliviousAction>& witness) {
  std::string out;
  for (const auto a : witness) {
    if (!out.empty()) out += ' ';
    out += (a == 0) ? "w" : "p" + std::to_string(a - 1);
  }
  return out.empty() ? "(empty)" : out;
}

}  // namespace

int main() {
  namespace families = rdv::graph::families;
  using rdv::graph::Graph;
  using rdv::graph::Node;

  rdv::support::Table table({"graph", "pair", "Shrink", "delta=S-1",
                             "delta=S optimal", "witness", "replay ok"});

  struct Case {
    Graph g;
    Node u, v;
  };
  std::vector<Case> cases;
  cases.push_back({families::two_node_graph(), 0, 1});
  cases.push_back({families::oriented_ring(5), 0, 2});
  cases.push_back({families::oriented_ring(6), 0, 3});
  cases.push_back({families::oriented_torus(3, 3), 0, 4});
  {
    Graph g = families::symmetric_double_tree(2, 2);
    const Node m = families::double_tree_mirror(g, 5);
    cases.push_back({std::move(g), 5, m});
  }
  if (rdv::analysis::full_mode()) {
    cases.push_back({families::hypercube(3), 0, 7});
    cases.push_back({families::oriented_ring(8), 0, 4});
  }

  for (const Case& c : cases) {
    const std::uint32_t s = rdv::views::shrink(c.g, c.u, c.v);
    // Below the threshold: certified impossible.
    std::string below = "(S=0)";
    if (s >= 1) {
      rdv::analysis::OptimalSearchConfig config;
      config.horizon = 1u << 16;
      const auto r =
          rdv::analysis::optimal_oblivious(c.g, c.u, c.v, s - 1, config);
      below = r.outcome ==
                      rdv::analysis::OptimalOutcome::kProvenInfeasible
                  ? "proven infeasible"
                  : "UNEXPECTED";
    }
    // At the threshold: optimal time + witness + replay.
    rdv::analysis::OptimalSearchConfig config;
    config.horizon = 1u << 12;
    config.want_witness = true;
    const auto r = rdv::analysis::optimal_oblivious(c.g, c.u, c.v, s,
                                                    config);
    std::string at = "UNEXPECTED";
    std::string witness = "-";
    std::string replay = "-";
    if (r.outcome == rdv::analysis::OptimalOutcome::kMet) {
      at = "met@" + std::to_string(r.rounds);
      witness = render_witness(r.witness);
      rdv::sim::RunConfig run_config;
      run_config.max_rounds = s + r.rounds + 8;
      const auto run = rdv::sim::run_anonymous(
          c.g, rdv::analysis::oblivious_program(r.witness), c.u, c.v, s,
          run_config);
      replay = (run.met && run.meet_from_later_start == r.rounds)
                   ? "yes"
                   : "NO";
    }
    table.add_row({c.g.name(),
                   std::to_string(c.u) + "," + std::to_string(c.v),
                   std::to_string(s), below, at, witness, replay});
  }
  rdv::analysis::emit_table(
      "t10_optimal_crossover",
      "T10: the delta = Shrink crossover, certified on both sides",
      table);
  return 0;
}
