// Thin shim: T10 now lives in
// src/exp/scenarios/t10_optimal_crossover.cpp and runs on the
// experiment registry (see bench/rdv_bench.cpp for the unified driver).
#include "exp/driver.hpp"

int main() { return rdv::exp::run_single("t10_optimal_crossover"); }
