// T3 — Lemmas 3.2 and 3.3: SymmRV(n, d, delta) meets for every
// symmetric STIC with delta in [d, delta_param], within the bound
// T(n, d, delta) = [(d+delta)(n-1)^d](M+2) + 2(M+1).
#include <cstdio>

#include "analysis/experiments.hpp"
#include "core/bounds.hpp"
#include "core/symm_rv.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "support/table.hpp"
#include "uxs/corpus.hpp"
#include "views/shrink.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::graph::Graph;
  using rdv::graph::Node;

  rdv::support::Table table({"graph", "pair", "d=Shrink", "delay", "M",
                             "met", "measured rounds", "bound T",
                             "measured/bound"});

  struct Case {
    Graph g;
    Node u, v;
  };
  std::vector<Case> cases;
  {
    Graph g = families::symmetric_double_tree(2, 2);
    const Node m = families::double_tree_mirror(g, g.size() / 2 - 1);
    cases.push_back({std::move(g), 6, m});
  }
  cases.push_back({families::oriented_ring(6), 0, 2});
  cases.push_back({families::oriented_ring(6), 0, 3});
  cases.push_back({families::hypercube(3), 0, 5});
  if (rdv::analysis::full_mode()) {
    cases.push_back({families::oriented_torus(3, 3), 0, 4});
    cases.push_back({families::hypercube(3), 0, 7});
  }

  for (const Case& c : cases) {
    const std::uint32_t d = rdv::views::shrink(c.g, c.u, c.v);
    const auto& y = rdv::uxs::cached_uxs(c.g.size());
    for (const std::uint64_t delay :
         {static_cast<std::uint64_t>(d), static_cast<std::uint64_t>(d + 1)}) {
      const std::uint64_t bound = rdv::core::symm_rv_time_bound(
          c.g.size(), d, delay, y.length());
      rdv::sim::RunConfig config;
      config.max_rounds = rdv::support::sat_mul(4, bound);
      const auto r = rdv::sim::run_anonymous(
          c.g, rdv::core::symm_rv_program(c.g.size(), d, delay, y), c.u,
          c.v, delay, config);
      table.add_row(
          {c.g.name(),
           std::to_string(c.u) + "," + std::to_string(c.v),
           std::to_string(d), std::to_string(delay),
           std::to_string(y.length()), r.met ? "yes" : "NO",
           rdv::support::format_rounds(r.meet_from_later_start),
           rdv::support::format_rounds(bound),
           r.met ? rdv::support::format_double(
                       static_cast<double>(r.meet_from_later_start) /
                       static_cast<double>(bound))
                 : "-"});
    }
  }
  rdv::analysis::emit_table(
      "t3_symm_rv_time",
      "T3 (Lemmas 3.2/3.3): SymmRV meets within T(n,d,delta)", table);
  return 0;
}
