// T3 — Lemmas 3.2 and 3.3: SymmRV(n, d, delta) meets for every
// symmetric STIC with delta in [d, delta_param], within the bound
// T(n, d, delta) = [(d+delta)(n-1)^d](M+2) + 2(M+1).
// All cases' (u, v) x {d, d+1} delay grids flatten into ONE batch on
// the sharded sweep runner, so every row can run on a different pool
// worker; the merge-by-index contract keeps the table in case order.
#include <cstdio>
#include <memory>

#include "analysis/experiments.hpp"
#include "cache/artifact_cache.hpp"
#include "core/bounds.hpp"
#include "core/symm_rv.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "support/table.hpp"
#include "sweep/sweep.hpp"
#include "views/shrink.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::graph::Graph;
  using rdv::graph::Node;

  struct Case {
    Graph g;
    Node u, v;
  };
  std::vector<Case> cases;
  {
    Graph g = families::symmetric_double_tree(2, 2);
    const Node m = families::double_tree_mirror(g, g.size() / 2 - 1);
    cases.push_back({std::move(g), 6, m});
  }
  cases.push_back({families::oriented_ring(6), 0, 2});
  cases.push_back({families::oriented_ring(6), 0, 3});
  cases.push_back({families::hypercube(3), 0, 5});
  if (rdv::analysis::full_mode()) {
    cases.push_back({families::oriented_torus(3, 3), 0, 4});
    cases.push_back({families::hypercube(3), 0, 7});
  }

  // Item i = case i/2 at delay d + i%2. Shrink and the UXS are
  // precomputed serially (the artifact cache computes each size once);
  // the simulations — the actual cost — run through the pool.
  struct Prepared {
    std::uint32_t d;
    std::shared_ptr<const rdv::uxs::Uxs> y;
  };
  std::vector<Prepared> prepared;
  prepared.reserve(cases.size());
  for (const Case& c : cases) {
    prepared.push_back({rdv::views::shrink(c.g, c.u, c.v),
                        rdv::cache::cached_uxs(c.g.size())});
  }

  const std::function<std::vector<std::string>(std::size_t)> row_for =
      [&](std::size_t i) {
        const Case& c = cases[i / 2];
        const Prepared& p = prepared[i / 2];
        const std::uint64_t delay =
            static_cast<std::uint64_t>(p.d) + i % 2;
        const std::uint64_t bound = rdv::core::symm_rv_time_bound(
            c.g.size(), p.d, delay, p.y->length());
        rdv::sim::RunConfig config;
        config.max_rounds = rdv::support::sat_mul(4, bound);
        const rdv::sim::RunResult r = rdv::sim::run_anonymous(
            c.g, rdv::core::symm_rv_program(c.g.size(), p.d, delay, *p.y),
            c.u, c.v, delay, config);
        return std::vector<std::string>{
            c.g.name(),
            std::to_string(c.u) + "," + std::to_string(c.v),
            std::to_string(p.d), std::to_string(delay),
            std::to_string(p.y->length()), r.met ? "yes" : "NO",
            rdv::support::format_rounds(r.meet_from_later_start),
            rdv::support::format_rounds(bound),
            r.met ? rdv::support::format_double(
                        static_cast<double>(r.meet_from_later_start) /
                        static_cast<double>(bound))
                  : "-"};
      };
  rdv::sweep::SweepConfig sweep_config;
  sweep_config.chunk_size = 1;  // one simulation per pool task
  const auto rows = rdv::sweep::sweep_map<std::vector<std::string>>(
      2 * cases.size(), row_for, sweep_config);

  rdv::support::Table table({"graph", "pair", "d=Shrink", "delay", "M",
                             "met", "measured rounds", "bound T",
                             "measured/bound"});
  for (const auto& row : rows) table.add_row(row);
  rdv::analysis::emit_table(
      "t3_symm_rv_time",
      "T3 (Lemmas 3.2/3.3): SymmRV meets within T(n,d,delta)", table);
  return 0;
}
