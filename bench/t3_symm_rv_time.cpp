// Thin shim: T3 now lives in src/exp/scenarios/t3_symm_rv_time.cpp and
// runs on the experiment registry (see bench/rdv_bench.cpp for the
// unified driver).
#include "exp/driver.hpp"

int main() { return rdv::exp::run_single("t3_symm_rv_time"); }
