// M2 — sweep-runner micro-benchmark: the same STIC feasibility kernel
// executed through sweep::run_stic_sweep on a 1-thread pool
// (sequential baseline) and on the default pool.
//
// M3 — artifact-cache micro-benchmark: a repeated-graph classification
// sweep (per-case ViewClasses + quotient resolution over a small set of
// graphs) run uncached (recompute per case) vs through a
// cache::ArtifactCache, with a byte-identity cross-check between the
// two outputs.
//
// M4 — batched-Shrink micro-benchmark: every ordered pair of the n=40
// census graph through the per-pair product BFS vs one
// views::shrink_all_pairs sweep, values cross-checked (the >= 10x
// acceptance bar of the batched census engine).
//
// M5 — refinement-engine micro-benchmark: the naive fixpoint oracle vs
// the splitter-worklist partition refinement on census-density random
// graphs, n = 64..2048, with a cell-by-cell class equality check per
// size (the >= 10x @ n=1024 acceptance bar of the worklist engine).
//
// M6 — task-profiler overhead: the M2 kernel on a dedicated 4-thread
// pool with task-lifecycle events off vs on (interleaved best-of-5),
// gated at <= 2% overhead with zero dropped events, and the
// reconstructed critical path must account for the sweep wall within
// 5% — the "observability must not perturb what it observes" bar.
//
// Emits one BENCH_sweep.json datapoint (into REPRO_CSV_DIR when set,
// else the working directory) covering all comparisons for trend
// tracking.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "analysis/experiments.hpp"
#include "cache/artifact_cache.hpp"
#include "obs/profile.hpp"
#include "obs/task_events.hpp"
#include "core/universal_rv.hpp"
#include "graph/families/families.hpp"
#include "support/bench_json.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "sweep/sweep.hpp"
#include "views/quotient.hpp"
#include "views/refinement.hpp"
#include "views/refinement_worklist.hpp"
#include "views/shrink.hpp"

namespace {

double best_of_ms(int repeats, const std::function<void()>& fn) {
  double best = 0;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

/// One M3 case: a (graph, STIC) pair. Cases repeat graphs many times —
/// the workload shape the cache exists for.
struct CacheCase {
  std::size_t graph = 0;
  rdv::analysis::Stic stic;
};

}  // namespace

int main() {
  namespace families = rdv::graph::families;
  using rdv::analysis::Stic;

  // ---- M2: sequential vs pooled feasibility kernel -------------------
  const auto g = families::oriented_ring(rdv::analysis::full_mode() ? 8 : 6);
  const std::uint64_t max_delay = rdv::analysis::full_mode() ? 6 : 4;
  const auto classes = rdv::views::compute_view_classes(g);
  const std::vector<Stic> stics =
      rdv::analysis::enumerate_stics(g, max_delay);

  rdv::core::UniversalOptions options;
  options.max_phases = 40;
  const auto program = rdv::core::universal_rv_program(options);
  rdv::sim::RunConfig run_config;
  run_config.max_rounds = 1u << 18;

  const rdv::sweep::SticKernel kernel = [&](const Stic& stic) {
    const auto check =
        rdv::analysis::verify_stic(g, classes, stic, program, run_config);
    return rdv::sweep::SticRecord{stic, check.cls, check.run, {}};
  };

  const int repeats = 3;
  rdv::support::ThreadPool sequential(1);
  rdv::sweep::SweepConfig seq_config;
  seq_config.pool = &sequential;
  seq_config.chunk_size = 16;
  const double seq_ms = best_of_ms(repeats, [&] {
    (void)rdv::sweep::run_stic_sweep(stics, kernel, seq_config);
  });

  rdv::sweep::SweepConfig pool_config;
  pool_config.chunk_size = 16;
  const double pool_ms = best_of_ms(repeats, [&] {
    (void)rdv::sweep::run_stic_sweep(stics, kernel, pool_config);
  });
  const std::size_t pool_threads =
      rdv::support::default_pool().thread_count();

  rdv::support::Table table(
      {"config", "threads", "STICs", "best ms", "STICs/s"});
  const auto rate = [](double ms, std::size_t items) {
    return rdv::support::format_double(
        ms > 0 ? 1000.0 * static_cast<double>(items) / ms : 0, 1);
  };
  table.add_row({"sequential", "1", std::to_string(stics.size()),
                 rdv::support::format_double(seq_ms, 3),
                 rate(seq_ms, stics.size())});
  table.add_row({"pooled", std::to_string(pool_threads),
                 std::to_string(stics.size()),
                 rdv::support::format_double(pool_ms, 3),
                 rate(pool_ms, stics.size())});
  rdv::analysis::emit_table(
      "micro_sweep", "M2: sweep runner, sequential vs pooled", table);

  // ---- M2b: pool scaling of the work-stealing scheduler --------------
  // The same kernel on dedicated pools of 1..16 workers (deliberately
  // past the core count: oversubscription must degrade gracefully, not
  // collapse), plus a nested variant — an outer sweep whose kernel
  // runs an inner sweep on the SAME pool, the t1/t2 shape that the
  // work-assisting wait unlocked. One JSON datapoint per thread count,
  // carrying the scheduler counters (steals, parks, wakeups) the pool
  // accumulated across both sweeps — the park/wakeup ratio is how a
  // trend reader spots thundering-herd regressions at high counts.
  struct ScalePoint {
    std::size_t threads;
    double flat_ms;
    double nested_ms;
    std::uint64_t steals;
    std::uint64_t parks;
    std::uint64_t wakeups;
  };
  std::vector<ScalePoint> scaling;
  rdv::support::Table scale_table({"threads", "flat best ms",
                                   "flat STICs/s", "nested best ms",
                                   "steals", "parks", "wakeups"});
  for (const std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
    rdv::support::ThreadPool pool(threads);
    rdv::sweep::SweepConfig config;
    config.pool = &pool;
    config.chunk_size = 16;
    const double flat_ms = best_of_ms(repeats, [&] {
      (void)rdv::sweep::run_stic_sweep(stics, kernel, config);
    });
    // Nested: outer cases fan out on the pool AND each runs a chunked
    // inner sweep on it (blocking, work-assisting).
    rdv::sweep::SweepConfig outer_config = config;
    outer_config.chunk_size = 1;
    const std::size_t outer_cases = 8;
    const std::size_t inner_span = stics.size();
    const std::function<std::uint64_t(std::size_t)> outer_case =
        [&](std::size_t) {
          const std::function<std::uint64_t(std::size_t)> inner =
              [&](std::size_t i) {
                const auto check = rdv::analysis::verify_stic(
                    g, classes, stics[i], program, run_config);
                return check.run.met ? check.run.meet_round_absolute : 0;
              };
          const std::vector<std::uint64_t> rounds =
              rdv::sweep::sweep_map<std::uint64_t>(inner_span, inner,
                                                   config);
          std::uint64_t sum = 0;
          for (const std::uint64_t r : rounds) sum += r;
          return sum;
        };
    const double nested_ms = best_of_ms(repeats, [&] {
      (void)rdv::sweep::sweep_map<std::uint64_t>(outer_cases, outer_case,
                                                 outer_config);
    });
    scaling.push_back(ScalePoint{threads, flat_ms, nested_ms,
                                 pool.steal_count(), pool.park_count(),
                                 pool.wakeup_count()});
    scale_table.add_row({std::to_string(threads),
                         rdv::support::format_double(flat_ms, 3),
                         rate(flat_ms, stics.size()),
                         rdv::support::format_double(nested_ms, 3),
                         std::to_string(pool.steal_count()),
                         std::to_string(pool.park_count()),
                         std::to_string(pool.wakeup_count())});
  }
  rdv::analysis::emit_table(
      "micro_sweep_scaling",
      "M2b: work-stealing pool scaling, flat and nested sweeps",
      scale_table);

  // ---- M3: uncached vs cached per-graph artifact resolution ----------
  // A small set of distinct graphs, each appearing in many cases: the
  // shape of every T-series sweep. The kernel resolves the graph's view
  // partition and quotient PER CASE; uncached that is O(n^2 m) each
  // time, cached it is one compute per distinct graph.
  const std::uint32_t cache_n = rdv::analysis::full_mode() ? 10 : 8;
  std::vector<rdv::graph::Graph> cache_graphs;
  cache_graphs.push_back(families::oriented_ring(cache_n));
  cache_graphs.push_back(families::scrambled_ring(cache_n, /*seed=*/11));
  cache_graphs.push_back(families::path_graph(cache_n));
  cache_graphs.push_back(families::complete(cache_n));
  cache_graphs.push_back(families::oriented_torus(3, 3));

  std::vector<CacheCase> cases;
  for (std::size_t gi = 0; gi < cache_graphs.size(); ++gi) {
    const rdv::graph::Graph& cg = cache_graphs[gi];
    for (rdv::graph::Node u = 0; u < cg.size(); ++u) {
      for (rdv::graph::Node v = 0; v < cg.size(); ++v) {
        if (u != v) cases.push_back(CacheCase{gi, Stic{u, v, 0}});
      }
    }
  }

  // Rows carry (graph, u, v, symmetric?, quotient class count) — enough
  // to prove the cached and uncached sweeps produce identical bytes.
  const auto case_row = [&](const CacheCase& c,
                            const rdv::views::ViewClasses& vc,
                            const rdv::views::QuotientGraph& q) {
    return std::vector<std::string>{
        cache_graphs[c.graph].name(), std::to_string(c.stic.u),
        std::to_string(c.stic.v),
        vc.symmetric(c.stic.u, c.stic.v) ? "yes" : "no",
        std::to_string(q.class_count())};
  };
  const std::function<std::vector<std::string>(std::size_t)> uncached_fn =
      [&](std::size_t i) {
        const CacheCase& c = cases[i];
        const auto vc =
            rdv::views::compute_view_classes(cache_graphs[c.graph]);
        const auto q = rdv::views::build_quotient(cache_graphs[c.graph], vc);
        return case_row(c, vc, q);
      };
  rdv::cache::ArtifactCache cache;
  // Fingerprints resolved once per distinct graph (the pattern the
  // fingerprint-reuse overloads exist for), so the cached timing
  // measures artifact resolution, not redundant re-hashing.
  std::vector<rdv::cache::GraphFingerprint> fingerprints;
  fingerprints.reserve(cache_graphs.size());
  for (const rdv::graph::Graph& cg : cache_graphs) {
    fingerprints.push_back(rdv::cache::fingerprint(cg));
  }
  const std::function<std::vector<std::string>(std::size_t)> cached_fn =
      [&](std::size_t i) {
        const CacheCase& c = cases[i];
        const auto vc =
            cache.view_classes(cache_graphs[c.graph], fingerprints[c.graph]);
        const auto q =
            cache.quotient(cache_graphs[c.graph], fingerprints[c.graph]);
        return case_row(c, *vc, *q);
      };

  using Rows = std::vector<std::vector<std::string>>;
  Rows uncached_rows;
  Rows cached_rows;
  const double uncached_ms = best_of_ms(repeats, [&] {
    uncached_rows = rdv::sweep::sweep_map<std::vector<std::string>>(
        cases.size(), uncached_fn, pool_config);
  });
  // One un-timed pass yields PER-SWEEP hit/miss counters (best_of_ms
  // would accumulate stats across every repeat) and warms the cache, so
  // cached_ms below is the steady-state number.
  cached_rows = rdv::sweep::sweep_map<std::vector<std::string>>(
      cases.size(), cached_fn, pool_config);
  const rdv::cache::CacheStats cache_stats = cache.stats();
  const double cached_ms = best_of_ms(repeats, [&] {
    cached_rows = rdv::sweep::sweep_map<std::vector<std::string>>(
        cases.size(), cached_fn, pool_config);
  });
  // Determinism cross-check: the cache must not change a single byte.
  const std::vector<std::string> cache_headers = {"graph", "u", "v",
                                                  "symmetric", "classes"};
  rdv::support::Table uncached_table(cache_headers);
  rdv::support::Table cached_table(cache_headers);
  for (const auto& row : uncached_rows) uncached_table.add_row(row);
  for (const auto& row : cached_rows) cached_table.add_row(row);
  if (uncached_table.to_csv() != cached_table.to_csv()) {
    std::fprintf(stderr,
                 "error: cached sweep output differs from uncached\n");
    return 1;
  }

  rdv::support::Table cache_cmp(
      {"config", "cases", "graphs", "best ms", "cases/s", "hits", "misses"});
  cache_cmp.add_row({"uncached", std::to_string(cases.size()),
                     std::to_string(cache_graphs.size()),
                     rdv::support::format_double(uncached_ms, 3),
                     rate(uncached_ms, cases.size()), "-", "-"});
  cache_cmp.add_row({"cached", std::to_string(cases.size()),
                     std::to_string(cache_graphs.size()),
                     rdv::support::format_double(cached_ms, 3),
                     rate(cached_ms, cases.size()),
                     std::to_string(cache_stats.total_hits()),
                     std::to_string(cache_stats.total_misses())});
  rdv::analysis::emit_table(
      "micro_sweep_cache",
      "M3: repeated-graph artifact sweep, uncached vs cached", cache_cmp);

  // ---- M4: batched all-pairs Shrink vs per-pair product BFS ----------
  // The n=40 census graph that was the per-pair ceiling: every ordered
  // pair through shrink_with_witness (one product BFS each — the old
  // census path) vs ONE views::shrink_all_pairs sweep, values
  // cross-checked cell by cell. The acceptance bar is a >= 10x speedup.
  const auto shrink_g = families::random_connected(40, 70, 30);
  const std::uint32_t sn = shrink_g.size();
  std::vector<std::uint32_t> per_pair_values(
      static_cast<std::size_t>(sn) * sn, 0);
  // One timed pass only: this is the slow side being retired.
  const double per_pair_ms = best_of_ms(1, [&] {
    for (rdv::graph::Node u = 0; u < sn; ++u) {
      for (rdv::graph::Node v = 0; v < sn; ++v) {
        if (u == v) continue;
        per_pair_values[static_cast<std::size_t>(u) * sn + v] =
            rdv::views::shrink(shrink_g, u, v);
      }
    }
  });
  rdv::views::AllPairsShrink batched;
  const double batched_ms = best_of_ms(repeats, [&] {
    batched = rdv::views::shrink_all_pairs(shrink_g);
  });
  for (rdv::graph::Node u = 0; u < sn; ++u) {
    for (rdv::graph::Node v = 0; v < sn; ++v) {
      if (u != v && batched.at(u, v) !=
                        per_pair_values[static_cast<std::size_t>(u) * sn + v]) {
        std::fprintf(stderr,
                     "error: batched Shrink(%u, %u) disagrees with the "
                     "per-pair oracle\n",
                     u, v);
        return 1;
      }
    }
  }
  const double batched_speedup =
      batched_ms > 0 ? per_pair_ms / batched_ms : 0;
  const std::uint64_t shrink_pairs =
      static_cast<std::uint64_t>(sn) * (sn - 1);
  rdv::support::Table shrink_cmp(
      {"kernel", "ordered pairs", "best ms", "speedup"});
  shrink_cmp.add_row({"per-pair product BFS", std::to_string(shrink_pairs),
                      rdv::support::format_double(per_pair_ms, 3), "1.0"});
  shrink_cmp.add_row({"batched all-pairs", std::to_string(shrink_pairs),
                      rdv::support::format_double(batched_ms, 3),
                      rdv::support::format_double(batched_speedup, 1)});
  rdv::analysis::emit_table(
      "micro_sweep_shrink",
      "M4: all-pairs Shrink, per-pair product BFS vs batched sweep",
      shrink_cmp);

  // ---- M5: naive fixpoint vs splitter-worklist refinement ------------
  // Two families through both engines at n = 64..2048, every size
  // cross-checked cell by cell on class ids and count — the canonical
  // contract the facade swap rests on. "random" rows use census
  // density (extra ~ 1.75 n, the c1 ratio); those converge in ~diam
  // rounds, so both engines are near-linear and the speedup is modest.
  // "path" rows are the naive engine's worst case — refinement peels
  // one distance-to-end layer per round, Theta(n) rounds, the O(n^2 m)
  // bound realized — where the worklist's O(m log n) shows up as the
  // acceptance-bar speedup (refine_speedup_1024 below is the path row).
  // The naive side is timed once (it is the engine being retired); the
  // worklist side gets the usual best-of repeats.
  struct RefinePoint {
    const char* family;
    std::uint32_t n;
    std::uint64_t edges;
    std::uint32_t classes;
    double naive_ms;
    double worklist_ms;
    double speedup;
  };
  std::vector<RefinePoint> refine_points;
  double refine_speedup_1024 = 0;
  rdv::support::Table refine_cmp({"family", "n", "edges", "classes",
                                  "naive ms", "worklist ms", "speedup"});
  for (const char* family : {"random", "path"}) {
    const bool is_path = std::string("path") == family;
    for (const std::uint32_t rn : {64u, 128u, 256u, 512u, 1024u, 2048u}) {
      const auto rg =
          is_path ? families::path_graph(rn)
                  : families::random_connected(rn, (rn * 7) / 4,
                                               /*seed=*/40 + rn);
      rdv::views::ViewClasses naive;
      const double naive_ms = best_of_ms(1, [&] {
        naive = rdv::views::compute_view_classes_naive(rg);
      });
      rdv::views::ViewClasses worklist;
      const double worklist_ms = best_of_ms(repeats, [&] {
        worklist = rdv::views::compute_view_classes_worklist(rg);
      });
      if (worklist.class_count != naive.class_count ||
          worklist.class_of != naive.class_of) {
        std::fprintf(stderr,
                     "error: worklist refinement disagrees with the naive "
                     "oracle on %s\n",
                     rg.name().c_str());
        return 1;
      }
      const double speedup = worklist_ms > 0 ? naive_ms / worklist_ms : 0;
      if (is_path && rn == 1024) refine_speedup_1024 = speedup;
      refine_points.push_back(RefinePoint{family, rn, rg.edge_count(),
                                          worklist.class_count, naive_ms,
                                          worklist_ms, speedup});
      refine_cmp.add_row({family, std::to_string(rn),
                          std::to_string(rg.edge_count()),
                          std::to_string(worklist.class_count),
                          rdv::support::format_double(naive_ms, 3),
                          rdv::support::format_double(worklist_ms, 3),
                          rdv::support::format_double(speedup, 1)});
    }
  }
  rdv::analysis::emit_table(
      "micro_sweep_refine",
      "M5: view refinement, naive fixpoint vs splitter worklist",
      refine_cmp);

  // ---- M6: task-profiler overhead, off vs on -------------------------
  // Interleaved off/on pairs so thermal and cache drift hit both sides
  // equally; best-of-5 each. clear_task_events before every profiled
  // run keeps the final drain to exactly one run's events.
  rdv::obs::set_task_event_ring_capacity(1u << 16);
  rdv::support::ThreadPool profile_pool(4);
  rdv::sweep::SweepConfig profile_config;
  profile_config.pool = &profile_pool;
  profile_config.chunk_size = 16;
  const int profile_repeats = 5;
  double profile_off_ms = 0;
  double profile_on_ms = 0;
  for (int i = 0; i < profile_repeats; ++i) {
    rdv::obs::set_task_events_enabled(false);
    const double off = best_of_ms(1, [&] {
      (void)rdv::sweep::run_stic_sweep(stics, kernel, profile_config);
    });
    if (i == 0 || off < profile_off_ms) profile_off_ms = off;
    rdv::obs::set_task_events_enabled(true);
    rdv::obs::clear_task_events();
    const double on = best_of_ms(1, [&] {
      (void)rdv::sweep::run_stic_sweep(stics, kernel, profile_config);
    });
    if (i == 0 || on < profile_on_ms) profile_on_ms = on;
  }
  rdv::obs::set_task_events_enabled(false);
  const rdv::obs::Profile profile =
      rdv::obs::build_profile(rdv::obs::drain_task_events());
  const double profile_overhead_pct =
      profile_off_ms > 0
          ? (profile_on_ms - profile_off_ms) / profile_off_ms * 100.0
          : 0;
  if (profile.dropped != 0) {
    std::fprintf(stderr,
                 "error: task profiler dropped %llu events (ring too "
                 "small for the workload)\n",
                 static_cast<unsigned long long>(profile.dropped));
    return 1;
  }
  // The 0.5 ms absolute floor keeps a sub-millisecond smoke kernel
  // from failing the relative gate on scheduler noise alone.
  if (profile_overhead_pct > 2.0 &&
      (profile_on_ms - profile_off_ms) > 0.5) {
    std::fprintf(stderr,
                 "error: task profiler overhead %.2f%% exceeds the 2%% "
                 "gate (off %.3f ms, on %.3f ms)\n",
                 profile_overhead_pct, profile_off_ms, profile_on_ms);
    return 1;
  }
  for (const rdv::obs::SweepProfile& sp : profile.sweeps) {
    if (sp.micros() == 0) continue;
    const rdv::obs::CriticalPath cp =
        rdv::obs::critical_path(profile, sp.id);
    const double deviation =
        (cp.stage_sum() > cp.total_micros
             ? static_cast<double>(cp.stage_sum() - cp.total_micros)
             : static_cast<double>(cp.total_micros - cp.stage_sum())) /
        static_cast<double>(cp.total_micros);
    if (deviation > 0.05) {
      std::fprintf(stderr,
                   "error: sweep %llu critical-path stage sum %llu us "
                   "deviates %.1f%% from wall %llu us\n",
                   static_cast<unsigned long long>(sp.id),
                   static_cast<unsigned long long>(cp.stage_sum()),
                   deviation * 100.0,
                   static_cast<unsigned long long>(cp.total_micros));
      return 1;
    }
  }
  rdv::support::Table profile_cmp(
      {"config", "threads", "best ms", "overhead %", "events", "dropped"});
  profile_cmp.add_row({"profile off", "4",
                       rdv::support::format_double(profile_off_ms, 3), "-",
                       "-", "-"});
  profile_cmp.add_row({"profile on", "4",
                       rdv::support::format_double(profile_on_ms, 3),
                       rdv::support::format_double(profile_overhead_pct, 2),
                       std::to_string(profile.events),
                       std::to_string(profile.dropped)});
  rdv::analysis::emit_table(
      "micro_sweep_profile",
      "M6: task-lifecycle profiler overhead, off vs on", profile_cmp);

  // Through support/env like every other binary (the invariant
  // linter's first catch was a naked getenv here).
  const std::string dir = rdv::support::repro_csv_dir();
  const std::string json_path =
      (dir.empty() ? std::string() : dir + "/") + "BENCH_sweep.json";
  std::ostringstream json;
  json << "{\"bench\":\"micro_sweep\",\"graph\":\"" << g.name()
       << "\",\"items\":" << stics.size()
       << ",\"chunk_size\":" << pool_config.chunk_size
       << ",\"seq_ms\":" << seq_ms << ",\"pool_ms\":" << pool_ms
       << ",\"pool_threads\":" << pool_threads << ",\"speedup\":"
       << (pool_ms > 0 ? seq_ms / pool_ms : 0)
       << ",\"cache_items\":" << cases.size()
       << ",\"cache_graphs\":" << cache_graphs.size()
       << ",\"uncached_ms\":" << uncached_ms
       << ",\"cached_ms\":" << cached_ms << ",\"cache_speedup\":"
       << (cached_ms > 0 ? uncached_ms / cached_ms : 0)
       << ",\"cache_hits\":" << cache_stats.total_hits()
       << ",\"cache_misses\":" << cache_stats.total_misses()
       << ",\"cache_bytes\":" << cache_stats.total_bytes()
       << ",\"shrink_n\":" << sn
       << ",\"shrink_pairs\":" << shrink_pairs
       << ",\"per_pair_ms\":" << per_pair_ms
       << ",\"batched_ms\":" << batched_ms
       << ",\"batched_speedup\":" << batched_speedup
       << ",\"refine_speedup_1024\":" << refine_speedup_1024
       << ",\"profile_off_ms\":" << profile_off_ms
       << ",\"profile_on_ms\":" << profile_on_ms
       << ",\"profile_overhead_pct\":" << profile_overhead_pct
       << ",\"profile_events\":" << profile.events
       << ",\"profile_dropped\":" << profile.dropped
       << ",\"refine\":[";
  for (std::size_t i = 0; i < refine_points.size(); ++i) {
    if (i != 0) json << ",";
    json << "{\"family\":\"" << refine_points[i].family
         << "\",\"n\":" << refine_points[i].n
         << ",\"edges\":" << refine_points[i].edges
         << ",\"classes\":" << refine_points[i].classes
         << ",\"naive_ms\":" << refine_points[i].naive_ms
         << ",\"worklist_ms\":" << refine_points[i].worklist_ms
         << ",\"speedup\":" << refine_points[i].speedup << "}";
  }
  json << "],\"scaling\":[";
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    if (i != 0) json << ",";
    json << "{\"threads\":" << scaling[i].threads
         << ",\"flat_ms\":" << scaling[i].flat_ms
         << ",\"nested_ms\":" << scaling[i].nested_ms
         << ",\"steals\":" << scaling[i].steals
         << ",\"parks\":" << scaling[i].parks
         << ",\"wakeups\":" << scaling[i].wakeups << "}";
  }
  json << "]}";
  // JSON-lines update: other benches' datapoints (rdv_bench's
  // per-experiment timings) sharing this file are preserved.
  if (!rdv::support::update_bench_json(json_path, "micro_sweep",
                                       json.str())) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
