// M2 — sweep-runner micro-benchmark: the same STIC feasibility kernel
// executed through sweep::run_stic_sweep on a 1-thread pool
// (sequential baseline) and on the default pool. Emits one
// BENCH_sweep.json datapoint (into REPRO_CSV_DIR when set, else the
// working directory) for trend tracking.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "analysis/experiments.hpp"
#include "core/universal_rv.hpp"
#include "graph/families/families.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "sweep/sweep.hpp"
#include "views/refinement.hpp"

namespace {

double best_of_ms(int repeats, const std::function<void()>& fn) {
  double best = 0;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main() {
  namespace families = rdv::graph::families;
  using rdv::analysis::Stic;

  const auto g = families::oriented_ring(rdv::analysis::full_mode() ? 8 : 6);
  const std::uint64_t max_delay = rdv::analysis::full_mode() ? 6 : 4;
  const auto classes = rdv::views::compute_view_classes(g);
  const std::vector<Stic> stics =
      rdv::analysis::enumerate_stics(g, max_delay);

  rdv::core::UniversalOptions options;
  options.max_phases = 40;
  const auto program = rdv::core::universal_rv_program(options);
  rdv::sim::RunConfig run_config;
  run_config.max_rounds = 1u << 18;

  const rdv::sweep::SticKernel kernel = [&](const Stic& stic) {
    const auto check =
        rdv::analysis::verify_stic(g, classes, stic, program, run_config);
    return rdv::sweep::SticRecord{stic, check.cls, check.run, {}};
  };

  const int repeats = 3;
  rdv::support::ThreadPool sequential(1);
  rdv::sweep::SweepConfig seq_config;
  seq_config.pool = &sequential;
  seq_config.chunk_size = 16;
  const double seq_ms = best_of_ms(repeats, [&] {
    (void)rdv::sweep::run_stic_sweep(stics, kernel, seq_config);
  });

  rdv::sweep::SweepConfig pool_config;
  pool_config.chunk_size = 16;
  const double pool_ms = best_of_ms(repeats, [&] {
    (void)rdv::sweep::run_stic_sweep(stics, kernel, pool_config);
  });
  const std::size_t pool_threads =
      rdv::support::default_pool().thread_count();

  rdv::support::Table table(
      {"config", "threads", "STICs", "best ms", "STICs/s"});
  const auto rate = [&](double ms) {
    return rdv::support::format_double(
        ms > 0 ? 1000.0 * static_cast<double>(stics.size()) / ms : 0, 1);
  };
  table.add_row({"sequential", "1", std::to_string(stics.size()),
                 rdv::support::format_double(seq_ms, 3), rate(seq_ms)});
  table.add_row({"pooled", std::to_string(pool_threads),
                 std::to_string(stics.size()),
                 rdv::support::format_double(pool_ms, 3), rate(pool_ms)});
  rdv::analysis::emit_table(
      "micro_sweep", "M2: sweep runner, sequential vs pooled", table);

  const char* dir = std::getenv("REPRO_CSV_DIR");
  const std::string json_path =
      (dir != nullptr ? std::string(dir) + "/" : std::string()) +
      "BENCH_sweep.json";
  std::ofstream json(json_path);
  json << "{\"bench\":\"micro_sweep\",\"graph\":\"" << g.name()
       << "\",\"items\":" << stics.size()
       << ",\"chunk_size\":" << pool_config.chunk_size
       << ",\"seq_ms\":" << seq_ms << ",\"pool_ms\":" << pool_ms
       << ",\"pool_threads\":" << pool_threads << ",\"speedup\":"
       << (pool_ms > 0 ? seq_ms / pool_ms : 0) << "}\n";
  json.flush();
  if (!json) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
