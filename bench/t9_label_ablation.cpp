// Thin shim: T9 now lives in src/exp/scenarios/t9_label_ablation.cpp
// and runs on the experiment registry (see bench/rdv_bench.cpp for the
// unified driver).
#include "exp/driver.hpp"

int main() { return rdv::exp::run_single("t9_label_ablation"); }
