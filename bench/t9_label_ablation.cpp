// T9 — ablation: signature labels vs oracle labels in AsymmRV.
// The substitute AsymmRV derives labels from UXS observation traces
// (DESIGN.md §2.2); this table checks, per graph, that signature
// equality coincides exactly with the view-class oracle, and compares
// meeting times under signature labels vs exact-oracle labels.
#include <cstdio>

#include "analysis/experiments.hpp"
#include "cache/artifact_cache.hpp"
#include "core/asymm_rv.hpp"
#include "core/bounds.hpp"
#include "core/signature.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "support/table.hpp"
#include "views/refinement.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::graph::Graph;
  using rdv::graph::Node;

  rdv::support::Table table({"graph", "pairs", "label==oracle agree",
                             "signature-label rounds",
                             "oracle-label rounds"});

  std::vector<Graph> graphs;
  graphs.push_back(families::path_graph(5));
  graphs.push_back(families::scrambled_ring(6, 19));
  graphs.push_back(families::complete(4));
  graphs.push_back(families::random_connected(7, 3, 6));
  if (rdv::analysis::full_mode()) {
    graphs.push_back(families::random_connected(10, 6, 8));
  }

  for (const Graph& g : graphs) {
    const auto y_handle = rdv::cache::cached_uxs(g.size());
    const rdv::uxs::Uxs& y = *y_handle;
    const auto classes = rdv::views::compute_view_classes(g);

    // Agreement: signature equality == symmetry, over all pairs.
    std::size_t pairs = 0;
    std::size_t agreements = 0;
    for (Node u = 0; u < g.size(); ++u) {
      for (Node v = u + 1; v < g.size(); ++v) {
        ++pairs;
        const bool sig_equal =
            rdv::core::signature_offline(g, u, g.size(), y) ==
            rdv::core::signature_offline(g, v, g.size(), y);
        if (sig_equal == classes.symmetric(u, v)) ++agreements;
      }
    }

    // Meeting times on one nonsymmetric pair under both label modes.
    Node u = 0, v = 0;
    for (Node a = 0; a < g.size() && u == v; ++a) {
      for (Node b = a + 1; b < g.size(); ++b) {
        if (!classes.symmetric(a, b)) {
          u = a;
          v = b;
          break;
        }
      }
    }
    const std::uint64_t delay = 1;
    const std::uint64_t bound =
        rdv::core::asymm_rv_time_bound(g.size(), delay, y.length());
    rdv::sim::RunConfig config;
    config.max_rounds =
        rdv::support::sat_add(rdv::support::sat_mul(2, bound), delay);
    const auto sig_run = rdv::sim::run_anonymous(
        g, rdv::core::asymm_rv_program(g.size(), y, bound), u, v, delay,
        config);
    // Oracle labels: the class id in unary-ish binary, distinct per
    // class.
    auto label_for = [&](Node w) {
      std::vector<bool> bits;
      const std::uint32_t c = classes.class_of[w];
      for (int b = 7; b >= 0; --b) bits.push_back(((c >> b) & 1u) != 0);
      return bits;
    };
    const auto oracle_run = rdv::sim::run_pair(
        g, rdv::core::asymm_rv_program(g.size(), y, bound, label_for(u)),
        rdv::core::asymm_rv_program(g.size(), y, bound, label_for(v)), u,
        v, delay, config);

    table.add_row(
        {g.name(), std::to_string(pairs),
         std::to_string(agreements) + "/" + std::to_string(pairs),
         sig_run.met
             ? rdv::support::format_rounds(sig_run.meet_from_later_start)
             : "no-meet",
         oracle_run.met ? rdv::support::format_rounds(
                              oracle_run.meet_from_later_start)
                        : "no-meet"});
  }
  rdv::analysis::emit_table(
      "t9_label_ablation",
      "T9 (ablation): signature labels vs view-class oracle labels",
      table);
  return 0;
}
