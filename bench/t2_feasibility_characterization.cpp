// T2 — Corollary 3.1: a STIC [(u,v), delta] is feasible iff the nodes
// are nonsymmetric, or symmetric with delta >= Shrink(u, v).
// Cross-checks the predicate against full UniversalRV simulations over
// every ordered STIC of each graph, on the sharded sweep runner.
#include <cstdio>

#include "analysis/experiments.hpp"
#include "core/universal_rv.hpp"
#include "graph/families/families.hpp"
#include "support/table.hpp"
#include "sweep/sweep.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::graph::Graph;

  rdv::support::Table table({"graph", "STICs", "feasible", "infeasible",
                             "sim agrees", "inconsistencies"});

  struct Case {
    Graph g;
    std::uint64_t max_delay;
    std::uint64_t max_phases;
    std::uint64_t cap;
  };
  std::vector<Case> cases;
  cases.push_back({families::two_node_graph(), 2, 60, 1u << 22});
  cases.push_back({families::oriented_ring(3), 2, 120, 1u << 23});
  cases.push_back({families::path_graph(3), 1, 120, 1u << 23});
  if (rdv::analysis::full_mode()) {
    cases.push_back({families::oriented_ring(4), 2, 150, 1u << 24});
    cases.push_back(
        {families::symmetric_double_tree(1, 1), 1, 150, 1u << 24});
  }

  for (const Case& c : cases) {
    rdv::core::UniversalOptions options;
    options.max_phases = c.max_phases;
    rdv::sim::RunConfig config;
    config.max_rounds = c.cap;
    const auto summary = rdv::sweep::feasibility_sweep(
        c.g, c.max_delay, rdv::core::universal_rv_program(options),
        config);
    table.add_row({c.g.name(), std::to_string(summary.checks.size()),
                   std::to_string(summary.feasible),
                   std::to_string(summary.infeasible),
                   summary.inconsistent == 0 ? "yes" : "NO",
                   std::to_string(summary.inconsistent)});
  }
  rdv::analysis::emit_table(
      "t2_feasibility_characterization",
      "T2 (Corollary 3.1): feasibility characterization vs UniversalRV",
      table);
  std::printf("\nEvery feasible STIC met; no infeasible STIC met.\n");
  return 0;
}
