// Thin shim: T2 now lives in
// src/exp/scenarios/t2_feasibility_characterization.cpp and runs on the
// experiment registry (see bench/rdv_bench.cpp for the unified driver).
#include "exp/driver.hpp"

int main() { return rdv::exp::run_single("t2_feasibility_characterization"); }
