// rdv_metrics — inspect and gate on rdv_bench metrics snapshots.
//
// The CI perf-trend gate is `rdv_metrics diff baseline.json current.json
// --tolerance 0.5`: every per-experiment wall-clock series in the
// baseline must stay within the tolerance band, or the exit code goes
// nonzero and the push fails. `assert` checks counter invariants the
// same way (e.g. views.shrink_pair_bfs==0 after a census run).
//
// All logic lives in obs/metrics_tools.* so tests exercise exactly the
// code this CLI and the CI gate run; this file is argv plumbing.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics_tools.hpp"

namespace {

constexpr const char* kUsage = R"(usage: rdv_metrics <command> ...

commands:
  dump FILE
      print a metrics snapshot (as written by rdv_bench --metrics-out)
      in human-readable form
  diff BASE CURRENT [--tolerance F] [--min-micros N]
       [--history DIR] [--sigmas F] [--min-runs N]
      perf-trend gate: compare every *.wall_micros series in BASE
      against CURRENT; exit 1 when any current mean exceeds its band.
      Without history the band is flat: base * (1 + tolerance)
      (default 0.25). With --history DIR (prior runs' snapshots,
      *.json), a series seen in at least --min-runs history files
      (default 3) is gated against the variance-aware band
      mu + max(sigmas * sigma, mu * 0.05) over its historical means
      (--sigmas default 3.0); thinner series fall back to the flat
      band. --min-micros sets a noise floor below which series never
      regress.
  assert FILE EXPR...
      evaluate invariant expressions (name OP value, OP one of
      == != <= >= < >) against the snapshot, e.g.
      `rdv_metrics assert m.json views.shrink_pair_bfs==0`;
      exit 1 when any fails

exit status: 0 ok, 1 regression/violation, 2 usage or parse error
)";

int usage_error(const char* message) {
  std::fprintf(stderr, "rdv_metrics: %s\n%s", message, kUsage);
  return 2;
}

bool read_snapshot(const std::string& path, rdv::obs::MetricsSnapshot& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rdv_metrics: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    out = rdv::obs::parse_metrics_json(buffer.str());
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "rdv_metrics: %s: %s\n", path.c_str(), ex.what());
    return false;
  }
  return true;
}

int cmd_dump(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage_error("dump takes exactly one file");
  rdv::obs::MetricsSnapshot snap;
  if (!read_snapshot(args[0], snap)) return 2;
  std::fputs(rdv::obs::render_metrics_dump(snap).c_str(), stdout);
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  rdv::obs::DiffOptions options;
  std::string history_dir;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--history") {
      if (i + 1 >= args.size()) {
        return usage_error("--history needs a directory");
      }
      history_dir = args[++i];
    } else if (args[i] == "--sigmas") {
      if (i + 1 >= args.size()) {
        return usage_error("--sigmas needs a value");
      }
      char* end = nullptr;
      options.sigmas = std::strtod(args[++i].c_str(), &end);
      if (end == args[i].c_str() || *end != '\0' || options.sigmas <= 0.0) {
        return usage_error("--sigmas needs a positive number");
      }
    } else if (args[i] == "--min-runs") {
      if (i + 1 >= args.size()) {
        return usage_error("--min-runs needs a value");
      }
      char* end = nullptr;
      const unsigned long long v =
          std::strtoull(args[++i].c_str(), &end, 10);
      if (end == args[i].c_str() || *end != '\0' || v == 0) {
        return usage_error("--min-runs needs a positive integer");
      }
      options.min_history_runs = v;
    } else if (args[i] == "--tolerance") {
      if (i + 1 >= args.size()) {
        return usage_error("--tolerance needs a value");
      }
      char* end = nullptr;
      options.tolerance = std::strtod(args[++i].c_str(), &end);
      if (end == args[i].c_str() || *end != '\0' ||
          options.tolerance < 0.0) {
        return usage_error("--tolerance needs a non-negative number");
      }
    } else if (args[i] == "--min-micros") {
      if (i + 1 >= args.size()) {
        return usage_error("--min-micros needs a value");
      }
      char* end = nullptr;
      const unsigned long long v =
          std::strtoull(args[++i].c_str(), &end, 10);
      if (end == args[i].c_str() || *end != '\0') {
        return usage_error("--min-micros needs a non-negative integer");
      }
      options.min_micros = v;
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage_error("unknown diff option");
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 2) {
    return usage_error("diff takes a baseline file and a current file");
  }
  rdv::obs::MetricsSnapshot base;
  rdv::obs::MetricsSnapshot current;
  if (!read_snapshot(files[0], base) || !read_snapshot(files[1], current)) {
    return 2;
  }
  std::vector<rdv::obs::MetricsSnapshot> history;
  if (!history_dir.empty()) {
    history = rdv::obs::load_snapshot_dir(history_dir);
    std::printf("history: %zu usable snapshot(s) from %s\n", history.size(),
                history_dir.c_str());
  }
  const rdv::obs::DiffReport report =
      rdv::obs::diff_snapshots_with_history(base, current, history, options);
  for (const std::string& line : report.lines) {
    std::printf("%s\n", line.c_str());
  }
  if (report.regressions != 0) {
    std::printf("%zu series regressed beyond tolerance %.2f\n",
                report.regressions, options.tolerance);
    return 1;
  }
  return 0;
}

int cmd_assert(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return usage_error("assert takes a file and at least one expression");
  }
  rdv::obs::MetricsSnapshot snap;
  if (!read_snapshot(args[0], snap)) return 2;
  int failed = 0;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const rdv::obs::AssertResult result =
        rdv::obs::check_assertion(snap, args[i]);
    std::printf("%s %s\n", result.ok ? "OK  " : "FAIL",
                result.message.c_str());
    if (!result.ok) ++failed;
  }
  if (failed != 0) {
    std::printf("%d assertion%s failed\n", failed, failed == 1 ? "" : "s");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage_error("missing command");
  const std::string_view command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "dump") return cmd_dump(args);
  if (command == "diff") return cmd_diff(args);
  if (command == "assert") return cmd_assert(args);
  return usage_error("unknown command");
}
