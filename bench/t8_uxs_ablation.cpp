// Thin shim: T8 now lives in src/exp/scenarios/t8_uxs_ablation.cpp and
// runs on the experiment registry (see bench/rdv_bench.cpp for the
// unified driver).
#include "exp/driver.hpp"

int main() { return rdv::exp::run_single("t8_uxs_ablation"); }
