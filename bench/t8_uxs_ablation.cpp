// T8 — ablation: UXS length vs corpus coverage and SymmRV cost.
// The paper only needs a polynomial-length UXS to exist; in practice
// the sequence length M multiplies SymmRV's cost (Lemma 3.3), so the
// corpus-verified construction's short sequences matter. This table
// shows coverage rate and SymmRV cost as the candidate length grows.
#include <cstdio>

#include "analysis/experiments.hpp"
#include "cache/artifact_cache.hpp"
#include "core/bounds.hpp"
#include "core/symm_rv.hpp"
#include "graph/families/families.hpp"
#include "sim/engine.hpp"
#include "support/saturating.hpp"
#include "support/table.hpp"
#include "uxs/corpus.hpp"
#include "uxs/verifier.hpp"

int main() {
  namespace families = rdv::graph::families;
  using rdv::graph::Graph;

  const std::uint32_t n = 8;
  const auto corpus = rdv::uxs::standard_corpus(n);
  const Graph arena = families::hypercube(3);

  rdv::support::Table table({"M (terms)", "corpus graphs covered",
                             "covers hypercube(3)?", "SymmRV met",
                             "SymmRV rounds", "bound T(8,1,1)"});

  const std::size_t max_len = rdv::analysis::full_mode() ? 512u : 128u;
  for (std::size_t len = 4; len <= max_len; len *= 2) {
    const rdv::uxs::Uxs y = rdv::uxs::Uxs::pseudo_random(len);
    std::size_t covered = 0;
    for (const Graph& g : corpus) {
      if (rdv::uxs::is_uxs_for(g, y)) ++covered;
    }
    const bool arena_covered = rdv::uxs::is_uxs_for(arena, y);

    std::string met = "-";
    std::string rounds = "-";
    const std::uint64_t bound =
        rdv::core::symm_rv_time_bound(n, 1, 1, y.length());
    if (arena_covered) {
      rdv::sim::RunConfig config;
      config.max_rounds = rdv::support::sat_mul(4, bound);
      const auto r = rdv::sim::run_anonymous(
          arena, rdv::core::symm_rv_program(n, 1, 1, y), 0, 1, 1,
          config);
      met = r.met ? "yes" : "NO";
      rounds = rdv::support::format_rounds(r.meet_from_later_start);
    }
    table.add_row({std::to_string(len),
                   std::to_string(covered) + "/" +
                       std::to_string(corpus.size()),
                   arena_covered ? "yes" : "no", met, rounds,
                   rdv::support::format_rounds(bound)});
  }
  const auto verified = rdv::cache::cached_uxs(n);
  rdv::analysis::emit_table(
      "t8_uxs_ablation",
      "T8 (ablation): UXS length vs coverage and SymmRV cost (n=" +
          std::to_string(n) + ")",
      table);
  std::printf("\ncorpus-verified choice: %s\n",
              verified->provenance().c_str());
  return 0;
}
