// rdv_profile — analyze rdv_bench scheduler-profile sidecars.
//
// `rdv_bench --profile-out p.json` writes the reconstructed task
// lifecycles (obs/profile.hpp, format 1); this CLI re-analyzes them:
// `report` prints critical-path attribution, thread utilization,
// latency histograms and the thundering-herd factor; `top` ranks tasks
// by execution time; `diff` compares two profiles' aggregates.
// `report --strict` is the CI shape: it fails when events were dropped
// or a sweep's critical-path stages do not add back up to its wall.
//
// All logic lives in obs/profile.* so tests exercise exactly the code
// this CLI runs; this file is argv plumbing.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/profile.hpp"

namespace {

constexpr const char* kUsage = R"(usage: rdv_profile <command> ...

commands:
  report FILE [--strict]
      print the full scheduler report: per-sweep critical-path stage
      attribution, per-thread busy/park/idle shares, queue- and
      steal-latency histograms, steal ratio, thundering-herd factor.
      --strict exits 1 when events were dropped or any sweep's stage
      sum deviates from its measured wall by more than 5%
  top FILE [-n N]
      the N longest-executing tasks (default 10)
  diff A B
      compare two profiles' aggregates (informational, always exit 0)

exit status: 0 ok, 1 strict-mode violation, 2 usage or parse error
)";

int usage_error(const char* message) {
  std::fprintf(stderr, "rdv_profile: %s\n%s", message, kUsage);
  return 2;
}

bool read_profile(const std::string& path, rdv::obs::Profile& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rdv_profile: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return rdv::obs::parse_profile_json(buffer.str(), &out);
}

int cmd_report(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  bool strict = false;
  for (const std::string& arg : args) {
    if (arg == "--strict") {
      strict = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage_error("unknown report option");
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 1) return usage_error("report takes exactly one file");
  rdv::obs::Profile profile;
  if (!read_profile(files[0], profile)) return 2;
  std::fputs(rdv::obs::render_profile_report(profile).c_str(), stdout);
  if (!strict) return 0;

  int violations = 0;
  if (profile.dropped != 0) {
    std::printf("STRICT: %llu events dropped (lifecycles incomplete)\n",
                static_cast<unsigned long long>(profile.dropped));
    ++violations;
  }
  for (const rdv::obs::SweepProfile& s : profile.sweeps) {
    const rdv::obs::CriticalPath cp =
        rdv::obs::critical_path(profile, s.id);
    if (cp.total_micros == 0) continue;
    const double deviation =
        std::fabs(static_cast<double>(cp.stage_sum()) -
                  static_cast<double>(cp.total_micros)) /
        static_cast<double>(cp.total_micros);
    if (deviation > 0.05) {
      std::printf("STRICT: sweep %llu stage sum %llu us vs wall %llu us "
                  "(%.1f%% deviation > 5%%)\n",
                  static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(cp.stage_sum()),
                  static_cast<unsigned long long>(cp.total_micros),
                  deviation * 100.0);
      ++violations;
    }
  }
  if (violations != 0) {
    std::printf("%d strict violation%s\n", violations,
                violations == 1 ? "" : "s");
    return 1;
  }
  std::printf("strict: ok\n");
  return 0;
}

int cmd_top(const std::vector<std::string>& args) {
  std::vector<std::string> files;
  std::size_t n = 10;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-n") {
      if (i + 1 >= args.size()) return usage_error("-n needs a value");
      char* end = nullptr;
      const unsigned long long v = std::strtoull(args[++i].c_str(), &end, 10);
      if (end == args[i].c_str() || *end != '\0' || v == 0) {
        return usage_error("-n needs a positive integer");
      }
      n = v;
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage_error("unknown top option");
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 1) return usage_error("top takes exactly one file");
  rdv::obs::Profile profile;
  if (!read_profile(files[0], profile)) return 2;
  std::fputs(rdv::obs::render_profile_top(profile, n).c_str(), stdout);
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage_error("diff takes two files");
  rdv::obs::Profile a;
  rdv::obs::Profile b;
  if (!read_profile(args[0], a) || !read_profile(args[1], b)) return 2;
  std::fputs(rdv::obs::render_profile_diff(a, b).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage_error("missing command");
  const std::string_view command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "report") return cmd_report(args);
  if (command == "top") return cmd_top(args);
  if (command == "diff") return cmd_diff(args);
  return usage_error("unknown command");
}
