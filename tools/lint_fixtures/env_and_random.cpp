// lint-path: src/core/fixture.cpp
// Self-test fixture: each violating line carries a `lint-expect`
// marker naming the rule that must fire there (and ONLY there).
#include <cstdlib>
#include <random>

namespace rdv::fixture {

const char* read_knob() {
  return std::getenv("RDV_FIXTURE");  // lint-expect: env-access
}

unsigned roll() {
  std::random_device rd;  // lint-expect: unseeded-random
  return rd();
}

unsigned roll_legacy() {
  return static_cast<unsigned>(rand());  // lint-expect: unseeded-random
}

// Clean lines for contrast: seeded SplitMix-style use and a comment
// mentioning getenv("X") that must NOT fire.
unsigned seeded(unsigned long long seed) { return seed * 2654435769u; }

}  // namespace rdv::fixture
