// lint-path: src/support/fixture.cpp
// Self-test fixture for the library-code rules: naked allocation,
// stdout in a library, and an include that points UP the layer DAG
// (support including cache). The smart-pointer and stderr lines are
// the negative cases.
#include <cstdio>
#include <iostream>
#include <memory>

#include "cache/artifact_cache.hpp"  // lint-expect: layer-dag

namespace rdv::fixture {

int* leak() {
  return new int(7);  // lint-expect: naked-new
}

void* raw(std::size_t n) {
  return malloc(n);  // lint-expect: naked-new
}

void shout() {
  std::cout << "library code must not own stdout\n";  // lint-expect: cout-in-lib
}

// Negative cases: these must stay silent.
std::unique_ptr<int> owned() { return std::make_unique<int>(7); }
void grumble() { std::fprintf(stderr, "stderr is fine\n"); }

}  // namespace rdv::fixture
